// Tests for the CLI flag parser used by the tools.
#include <gtest/gtest.h>

#include "tools/flags.hpp"

using crowdml::tools::Flags;

namespace {

Flags parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

}  // namespace

TEST(Flags, EqualsForm) {
  const Flags f = parse({"--port=9000", "--host=localhost"});
  EXPECT_EQ(f.get_int("port", 0), 9000);
  EXPECT_EQ(f.get("host", ""), "localhost");
}

TEST(Flags, SpaceForm) {
  const Flags f = parse({"--port", "9000", "--lr", "0.5"});
  EXPECT_EQ(f.get_int("port", 0), 9000);
  EXPECT_DOUBLE_EQ(f.get_double("lr", 0.0), 0.5);
}

TEST(Flags, BareBoolean) {
  const Flags f = parse({"--verbose", "--port", "1"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_FALSE(f.get_bool("quiet"));
}

TEST(Flags, BooleanValues) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x"));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x"));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x"));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
}

TEST(Flags, Fallbacks) {
  const Flags f = parse({});
  EXPECT_EQ(f.get("missing", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
}

TEST(Flags, NegativeNumbersAsValues) {
  const Flags f = parse({"--target-error=-1.0", "--max-iterations=-1"});
  EXPECT_DOUBLE_EQ(f.get_double("target-error", 0.0), -1.0);
  EXPECT_EQ(f.get_int("max-iterations", 0), -1);
}

TEST(Flags, PositionalArgumentRejected) {
  EXPECT_THROW(parse({"oops"}), std::runtime_error);
}

TEST(Flags, LastValueWins) {
  const Flags f = parse({"--port=1", "--port=2"});
  EXPECT_EQ(f.get_int("port", 0), 2);
}

TEST(Flags, EmptyValueViaEquals) {
  const Flags f = parse({"--name="});
  EXPECT_TRUE(f.has("name"));
  EXPECT_EQ(f.get("name", "x"), "");
}

// --------------------------------------------- replication flag bundle

using crowdml::tools::ReplicaFlags;
using crowdml::tools::parse_replica_flags;

namespace {

ReplicaFlags replica(std::vector<std::string> args) {
  return parse_replica_flags(parse(std::move(args)));
}

}  // namespace

TEST(ReplicaFlags, LeaderDefaultsToNoReplication) {
  const ReplicaFlags r = replica({});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.role, "leader");
  EXPECT_FALSE(r.repl_enabled);
}

TEST(ReplicaFlags, LeaderQuorumSetup) {
  const ReplicaFlags r =
      replica({"--engine=epoll", "--wal-dir=wal", "--repl-ack=quorum",
               "--repl-followers=3", "--repl-port=7000"});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.repl_enabled);
  EXPECT_EQ(r.ack_mode, "quorum");
  EXPECT_EQ(r.followers, 3);
  EXPECT_EQ(r.repl_port, 7000);
}

TEST(ReplicaFlags, FollowerParsesLeaderAddr) {
  const ReplicaFlags r =
      replica({"--role=follower", "--leader-addr=10.1.2.3:9100",
               "--engine=epoll", "--wal-dir=replica"});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.leader_host, "10.1.2.3");
  EXPECT_EQ(r.leader_port, 9100);
  EXPECT_EQ(r.leader_addr, "10.1.2.3:9100");
}

TEST(ReplicaFlags, FollowerWithoutLeaderAddrRejected) {
  const ReplicaFlags r =
      replica({"--role=follower", "--engine=epoll", "--wal-dir=replica"});
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("--leader-addr"), std::string::npos) << r.error;
}

TEST(ReplicaFlags, FollowerLeaderAddrMalformedRejected) {
  for (const char* addr : {"nohost", "host:", ":9100", "host:0",
                           "host:65536", "host:abc", "host:-1"}) {
    const ReplicaFlags r =
        replica({"--role=follower", std::string("--leader-addr=") + addr,
                 "--engine=epoll", "--wal-dir=replica"});
    EXPECT_FALSE(r.error.empty()) << addr;
  }
  // IPv6-ish / multi-colon hosts split on the LAST colon.
  const ReplicaFlags r =
      replica({"--role=follower", "--leader-addr=fe80::1:9100",
               "--engine=epoll", "--wal-dir=replica"});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.leader_host, "fe80::1");
  EXPECT_EQ(r.leader_port, 9100);
}

TEST(ReplicaFlags, FollowerRequiresWalDirAndEpollEngine) {
  EXPECT_FALSE(replica({"--role=follower", "--leader-addr=h:1",
                        "--engine=epoll"})
                   .error.empty());
  EXPECT_FALSE(replica({"--role=follower", "--leader-addr=h:1",
                        "--wal-dir=replica"})
                   .error.empty());
  EXPECT_FALSE(replica({"--role=follower", "--leader-addr=h:1",
                        "--engine=threads", "--wal-dir=replica"})
                   .error.empty());
}

TEST(ReplicaFlags, FollowerRejectsLeaderOnlyFlags) {
  for (const char* flag : {"--repl-ack=async", "--repl-port=7000",
                           "--repl-followers=2", "--promote-on-start"}) {
    const ReplicaFlags r =
        replica({"--role=follower", "--leader-addr=h:1", "--engine=epoll",
                 "--wal-dir=replica", flag});
    EXPECT_FALSE(r.error.empty()) << flag;
  }
}

TEST(ReplicaFlags, LeaderRejectsLeaderAddr) {
  const ReplicaFlags r = replica({"--leader-addr=h:1"});
  EXPECT_FALSE(r.error.empty());
}

TEST(ReplicaFlags, ReplicationRequiresWalDirAndEpoll) {
  EXPECT_FALSE(replica({"--repl-ack=async", "--engine=epoll"}).error.empty());
  EXPECT_FALSE(
      replica({"--repl-ack=async", "--wal-dir=wal"}).error.empty());
  EXPECT_FALSE(replica({"--repl-ack=async", "--wal-dir=wal",
                        "--engine=threads"})
                   .error.empty());
}

TEST(ReplicaFlags, PromoteOnStartEnablesReplication) {
  const ReplicaFlags r =
      replica({"--promote-on-start", "--wal-dir=wal", "--engine=epoll"});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.repl_enabled);
  EXPECT_TRUE(r.promote_on_start);
}

TEST(ReplicaFlags, AdvertiseHostDefaultsAndValidation) {
  // Default suits single-host tests; multi-host deployments override it
  // so redirects and vote repl_addrs point somewhere reachable.
  EXPECT_EQ(replica({}).advertise_host, "127.0.0.1");
  const ReplicaFlags r =
      replica({"--advertise-host=10.0.0.7", "--repl-ack=async",
               "--wal-dir=wal", "--engine=epoll"});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.advertise_host, "10.0.0.7");

  // A bare host only: the advertised ports are the bound ones, so a
  // host:port here would silently double up.
  EXPECT_FALSE(replica({"--advertise-host=10.0.0.7:9100"}).error.empty());
  EXPECT_FALSE(replica({"--advertise-host="}).error.empty());

  // Valid for both roles.
  const ReplicaFlags f =
      replica({"--role=follower", "--leader-addr=h:1", "--engine=epoll",
               "--wal-dir=replica", "--advertise-host=replica-b"});
  EXPECT_TRUE(f.error.empty()) << f.error;
  EXPECT_EQ(f.advertise_host, "replica-b");
}

TEST(ReplicaFlags, UnknownRoleAndAckModeRejected) {
  EXPECT_FALSE(replica({"--role=observer"}).error.empty());
  EXPECT_FALSE(replica({"--repl-ack=sync", "--wal-dir=wal",
                        "--engine=epoll"})
                   .error.empty());
  EXPECT_FALSE(replica({"--repl-ack=quorum", "--repl-followers=0",
                        "--wal-dir=wal", "--engine=epoll"})
                   .error.empty());
}
