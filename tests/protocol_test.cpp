// Tests for the protocol boundary: framed dispatch, authentication, the
// DeviceClient cycle (in-process, no sockets), and the frame-type
// registry guard that keeps code and docs/PROTOCOL.md in lockstep.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "core/protocol.hpp"
#include "models/logistic_regression.hpp"
#include "opt/schedule.hpp"
#include "rng/distributions.hpp"

using namespace crowdml;
using core::Device;
using core::DeviceClient;
using core::ProtocolServer;
using core::Server;

namespace {

struct Harness {
  models::MulticlassLogisticRegression model{3, 4, 0.0};
  net::AuthRegistry registry{rng::Engine(50)};
  Server server;
  ProtocolServer protocol;

  Harness()
      : server(make_config(),
               std::make_unique<opt::SgdUpdater>(
                   std::make_unique<opt::ConstantSchedule>(0.5), 100.0),
               rng::Engine(51)),
        protocol(server, registry) {}

  static core::ServerConfig make_config() {
    core::ServerConfig c;
    c.param_dim = 12;
    c.num_classes = 3;
    return c;
  }

  DeviceClient::Exchange loopback() {
    return [this](const net::Bytes& req) -> std::optional<net::Bytes> {
      return protocol.handle(req);
    };
  }

  models::Sample sample(rng::Engine& eng) {
    linalg::Vector x(4);
    for (double& v : x) v = rng::normal(eng);
    linalg::l1_normalize(x);
    return models::Sample(std::move(x),
                          static_cast<double>(rng::uniform_index(eng, 3)));
  }
};

}  // namespace

// Frame-type registry guard: every constant in [1, kMaxMessageType] must
// have a unique human-readable name, values outside the range must have
// none, and docs/PROTOCOL.md's framing table must carry a matching
// `N=Name` row — a new frame type cannot land without its documentation.
TEST(Protocol, FrameTypeRegistryIsCompleteUniqueAndDocumented) {
  std::set<std::string> names;
  for (std::uint8_t t = 1; t <= net::kMaxMessageType; ++t) {
    const char* name = net::message_type_name(t);
    ASSERT_NE(name, nullptr) << "type " << int(t) << " has no name";
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate frame-type name " << name;
  }
  EXPECT_EQ(net::message_type_name(0), nullptr);
  EXPECT_EQ(net::message_type_name(net::kMaxMessageType + 1), nullptr);
  EXPECT_EQ(net::message_type_name(0xFF), nullptr);

  std::ifstream doc(std::string(CROWDML_SOURCE_DIR) + "/docs/PROTOCOL.md");
  ASSERT_TRUE(doc.is_open()) << "docs/PROTOCOL.md missing";
  std::stringstream buf;
  buf << doc.rdbuf();
  const std::string text = buf.str();
  for (std::uint8_t t = 1; t <= net::kMaxMessageType; ++t) {
    const std::string row =
        std::to_string(int(t)) + "=" + net::message_type_name(t);
    EXPECT_NE(text.find(row), std::string::npos)
        << "docs/PROTOCOL.md framing table is missing a `" << row << "` row";
  }
}

TEST(Protocol, FullCycleAdvancesServer) {
  Harness h;
  core::DeviceConfig dc;
  dc.minibatch_size = 2;
  Device dev(dc, h.model, rng::Engine(1));
  dev.set_credentials(h.registry.enroll());
  DeviceClient client(dev, h.loopback());

  rng::Engine eng(2);
  EXPECT_FALSE(client.offer_sample(h.sample(eng)).has_value());
  const auto result = client.offer_sample(h.sample(eng));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->batch_size, 2u);
  EXPECT_EQ(h.server.version(), 1u);
  EXPECT_EQ(h.server.total_samples(), 2);
  EXPECT_EQ(client.cycles_completed(), 1);
  EXPECT_EQ(client.cycles_failed(), 0);
}

TEST(Protocol, ManyCyclesAccumulate) {
  Harness h;
  core::DeviceConfig dc;
  dc.minibatch_size = 1;
  Device dev(dc, h.model, rng::Engine(1));
  dev.set_credentials(h.registry.enroll());
  DeviceClient client(dev, h.loopback());
  rng::Engine eng(3);
  for (int i = 0; i < 25; ++i) client.offer_sample(h.sample(eng));
  EXPECT_EQ(h.server.version(), 25u);
  EXPECT_EQ(client.cycles_completed(), 25);
}

TEST(Protocol, UnenrolledDeviceRefused) {
  Harness h;
  core::DeviceConfig dc;
  dc.minibatch_size = 1;
  dc.device_id = 9999;  // never enrolled
  Device dev(dc, h.model, rng::Engine(1));
  // Forge credentials not known to the registry.
  net::DeviceCredentials fake;
  fake.device_id = 9999;
  fake.key.assign(32, 0x42);
  dev.set_credentials(fake);
  DeviceClient client(dev, h.loopback());
  rng::Engine eng(4);
  EXPECT_FALSE(client.offer_sample(h.sample(eng)).has_value());
  EXPECT_EQ(client.cycles_failed(), 1);
  EXPECT_EQ(h.server.version(), 0u);
  EXPECT_GT(h.protocol.auth_failures(), 0);
  // Remark 1: the device retries on the next sample.
  EXPECT_TRUE(dev.wants_checkout());
}

TEST(Protocol, DeviceWithoutCredentialsNeverCycles) {
  Harness h;
  core::DeviceConfig dc;
  dc.minibatch_size = 1;
  Device dev(dc, h.model, rng::Engine(1));
  DeviceClient client(dev, h.loopback());
  rng::Engine eng(5);
  EXPECT_FALSE(client.offer_sample(h.sample(eng)).has_value());
  EXPECT_EQ(h.server.version(), 0u);
}

TEST(Protocol, MalformedFrameGetsNack) {
  Harness h;
  const net::Bytes garbage{1, 2, 3, 4, 5};
  const net::Bytes response = h.protocol.handle(garbage);
  const net::Frame f = net::decode_frame(response);
  EXPECT_EQ(f.type, net::MessageType::kAck);
  EXPECT_FALSE(net::AckMessage::deserialize(f.payload).ok);
  EXPECT_EQ(h.protocol.malformed_frames(), 1);
}

TEST(Protocol, UnexpectedMessageTypeGetsNack) {
  Harness h;
  // A Params frame is a server->device message; the server rejects it.
  net::ParamsMessage m;
  m.w = {1.0};
  const net::Bytes frame =
      net::encode_frame(net::MessageType::kParams, m.serialize());
  const net::Frame f = net::decode_frame(h.protocol.handle(frame));
  EXPECT_EQ(f.type, net::MessageType::kAck);
  EXPECT_FALSE(net::AckMessage::deserialize(f.payload).ok);
}

TEST(Protocol, TamperedCheckinRejected) {
  Harness h;
  const auto creds = h.registry.enroll();
  core::DeviceConfig dc;
  dc.minibatch_size = 1;
  Device dev(dc, h.model, rng::Engine(1));
  dev.set_credentials(creds);
  rng::Engine eng(6);
  dev.on_sample(h.sample(eng));
  dev.begin_checkout();
  auto result = dev.compute_checkin(linalg::Vector(12, 0.0), 0);
  // Man-in-the-middle inflates the sample count.
  result.message.ns = 1000;
  const net::Bytes frame = net::encode_frame(net::MessageType::kCheckin,
                                             result.message.serialize());
  const net::Frame f = net::decode_frame(h.protocol.handle(frame));
  EXPECT_FALSE(net::AckMessage::deserialize(f.payload).ok);
  EXPECT_EQ(h.server.version(), 0u);
}

TEST(Protocol, NetworkFailureTriggersRetryPath) {
  Harness h;
  core::DeviceConfig dc;
  dc.minibatch_size = 1;
  Device dev(dc, h.model, rng::Engine(1));
  dev.set_credentials(h.registry.enroll());
  int calls = 0;
  DeviceClient client(dev, [&](const net::Bytes& req) -> std::optional<net::Bytes> {
    ++calls;
    if (calls <= 1) return std::nullopt;  // first checkout attempt: dead net
    return h.protocol.handle(req);
  });
  rng::Engine eng(7);
  EXPECT_FALSE(client.offer_sample(h.sample(eng)).has_value());
  EXPECT_EQ(client.cycles_failed(), 1);
  // Buffer intact; next sample retries and succeeds.
  EXPECT_TRUE(client.offer_sample(h.sample(eng)).has_value());
  EXPECT_EQ(h.server.version(), 1u);
  EXPECT_EQ(h.server.total_samples(), 2);  // both samples in the batch
}

TEST(Protocol, ServerStopRefusesCheckout) {
  Harness h2;
  core::ServerConfig cfg = Harness::make_config();
  cfg.max_iterations = 0;  // stopped immediately
  Server stopped(cfg,
                 std::make_unique<opt::SgdUpdater>(
                     std::make_unique<opt::ConstantSchedule>(0.5), 100.0),
                 rng::Engine(1));
  ProtocolServer proto(stopped, h2.registry);
  Device dev(core::DeviceConfig{}, h2.model, rng::Engine(1));
  dev.set_credentials(h2.registry.enroll());
  DeviceClient client(dev, [&](const net::Bytes& req) {
    return std::optional<net::Bytes>(proto.handle(req));
  });
  rng::Engine eng(8);
  EXPECT_FALSE(client.offer_sample(h2.sample(eng)).has_value());
  EXPECT_EQ(client.cycles_failed(), 1);
}
