// Structured event tracing: one JSON object per line (JSONL), each with a
// monotonic timestamp, an event kind, and typed fields (device/round ids,
// counts, reasons). The sink is thread-safe — a mutex serializes line
// writes, so concurrent device threads and the server never interleave
// bytes — and timestamps come from steady_clock relative to sink
// creation, so they are monotone even if the wall clock steps.
//
// Privacy: trace events describe protocol lifecycle (checkout, checkin,
// update-applied, staleness, reconnect, refusal), never payload contents.
// Everything recorded is either a transport event or post-sanitization
// metadata, so a trace file is exportable under the same argument as the
// portal report (see docs/OBSERVABILITY.md for the event catalogue).
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

namespace crowdml::obs {

/// One key/value pair of a trace event. Values are rendered to their JSON
/// form at construction: integers and doubles as numbers, bools as
/// true/false, strings quoted and escaped.
struct TraceField {
  TraceField(std::string k, const char* v);
  TraceField(std::string k, const std::string& v);
  TraceField(std::string k, bool v);
  TraceField(std::string k, double v);
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T>>>
  TraceField(std::string k, T v)
      : key(std::move(k)), rendered(std::to_string(v)) {}

  std::string key;
  std::string rendered;  ///< value in final JSON form
};

class TraceSink {
 public:
  /// Write JSONL events to `path`, truncating any existing file — stale
  /// events from a previous run would carry a different epoch and break
  /// the monotone-ts_us promise. Throws std::runtime_error if the file
  /// cannot be opened.
  explicit TraceSink(const std::string& path);
  /// Write to a caller-owned stream (tests; must outlive the sink).
  explicit TraceSink(std::ostream& out);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Emit one line: {"ts_us":<monotonic>,"event":"<kind>",...fields}.
  void event(std::string_view kind,
             std::initializer_list<TraceField> fields = {});

  long long events_written() const;
  void flush();

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::ofstream file_;
  std::ostream* out_;  // &file_ or the caller's stream
  mutable std::mutex mu_;
  long long events_ = 0;
};

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view s);

}  // namespace crowdml::obs
