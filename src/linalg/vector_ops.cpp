#include "linalg/vector_ops.hpp"

#include <cassert>
#include <cmath>

namespace crowdml::linalg {

void axpy(double alpha, const Vector& x, Vector& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(double alpha, Vector& x) {
  for (double& v : x) v *= alpha;
}

double dot(const Vector& x, const Vector& y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

Vector add(const Vector& x, const Vector& y) {
  assert(x.size() == y.size());
  Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

Vector sub(const Vector& x, const Vector& y) {
  assert(x.size() == y.size());
  Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

double norm1(const Vector& x) {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

double norm2_squared(const Vector& x) { return dot(x, x); }

double norm2(const Vector& x) { return std::sqrt(norm2_squared(x)); }

double norm_inf(const Vector& x) {
  double acc = 0.0;
  for (double v : x) acc = std::max(acc, std::abs(v));
  return acc;
}

void l1_normalize(Vector& x) {
  const double n = norm1(x);
  if (n > 1.0) scal(1.0 / n, x);
}

void l2_normalize(Vector& x) {
  const double n = norm2(x);
  if (n > 0.0) scal(1.0 / n, x);
}

void project_l2_ball(Vector& w, double radius) {
  assert(radius > 0.0);
  const double n = norm2(w);
  if (n > radius) scal(radius / n, w);
}

std::size_t argmax(const Vector& x) {
  assert(!x.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i)
    if (x[i] > x[best]) best = i;
  return best;
}

double sum(const Vector& x) {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

double mean(const Vector& x) { return x.empty() ? 0.0 : sum(x) / static_cast<double>(x.size()); }

bool all_finite(const Vector& x) {
  for (double v : x)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace crowdml::linalg
