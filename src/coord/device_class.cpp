#include "coord/device_class.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace crowdml::coord {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

void set_error(std::string* error, const std::string& what) {
  if (error) *error = what;
}

}  // namespace

DeviceClassTable::DeviceClassTable() {
  classes_.push_back({"default", 1.0});
}

std::optional<DeviceClassTable> DeviceClassTable::parse(
    const std::string& spec, std::string* error) {
  DeviceClassTable t;
  if (spec.empty()) return t;

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;

    const std::size_t colon = entry.find(':');
    if (entry.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      set_error(error, "bad device-class entry '" + entry +
                           "' (want name:weight)");
      return std::nullopt;
    }
    DeviceClassSpec cls;
    cls.name = entry.substr(0, colon);
    for (char c : cls.name) {
      if (!valid_name_char(c)) {
        set_error(error, "bad device-class name '" + cls.name + "'");
        return std::nullopt;
      }
    }
    if (cls.name == "default") {
      set_error(error, "'default' is the reserved id-0 class");
      return std::nullopt;
    }
    for (const DeviceClassSpec& seen : t.classes_) {
      if (seen.name == cls.name) {
        set_error(error, "duplicate device class '" + cls.name + "'");
        return std::nullopt;
      }
    }
    try {
      std::size_t consumed = 0;
      cls.weight = std::stod(entry.substr(colon + 1), &consumed);
      if (consumed != entry.size() - colon - 1) throw std::invalid_argument("");
    } catch (const std::exception&) {
      set_error(error, "bad device-class weight in '" + entry + "'");
      return std::nullopt;
    }
    if (!std::isfinite(cls.weight) || cls.weight <= 0) {
      set_error(error, "device-class weight must be > 0 in '" + entry + "'");
      return std::nullopt;
    }
    if (t.classes_.size() > kMaxDeviceClasses) {
      set_error(error, "too many device classes (max " +
                           std::to_string(kMaxDeviceClasses) + ")");
      return std::nullopt;
    }
    t.classes_.push_back(std::move(cls));
  }

  t.total_weight_ = 0;
  for (const DeviceClassSpec& cls : t.classes_) t.total_weight_ += cls.weight;
  return t;
}

double DeviceClassTable::share(std::uint8_t id) const {
  return at(id).weight / total_weight_;
}

std::size_t DeviceClassTable::rank(std::uint8_t id) const {
  const std::uint8_t c = clamp(id);
  // Declared classes rank in listed order (wire id 1 = rank 0); the
  // default class sorts below all of them.
  return c == 0 ? classes_.size() - 1 : static_cast<std::size_t>(c) - 1;
}

std::string DeviceClassTable::describe() const {
  std::string out;
  char buf[80];
  for (std::size_t i = 1; i < classes_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s:%g,", classes_[i].name.c_str(),
                  classes_[i].weight);
    out += buf;
  }
  out += "default:1";
  return out;
}

}  // namespace crowdml::coord
