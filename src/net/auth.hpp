// Device authentication (Server Routines 1-2: "Authenticate device").
//
// The server issues each enrolled device a random 32-byte secret; every
// identity-bearing message carries HMAC-SHA256(secret, body). Forged or
// replarbled tags from malignant devices posing as legitimate ones
// (Section III-C's first attack class) are rejected before any state is
// touched.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/codec.hpp"
#include "net/sha256.hpp"
#include "rng/engine.hpp"

namespace crowdml::net {

using SecretKey = std::vector<std::uint8_t>;

struct DeviceCredentials {
  std::uint64_t device_id = 0;
  SecretKey key;

  /// Tag a message body with this device's key.
  Digest sign(const Bytes& body) const;
};

/// Server-side registry of enrolled devices. Thread-safe.
class AuthRegistry {
 public:
  explicit AuthRegistry(rng::Engine eng);

  /// Enroll a new device; returns its credentials (id + fresh secret).
  DeviceCredentials enroll();

  /// Remove a device (it can no longer check out or in).
  void revoke(std::uint64_t device_id);

  /// Verify a tag over `body` claimed by `device_id`.
  bool verify(std::uint64_t device_id, const Bytes& body, const Digest& tag) const;

  std::size_t enrolled_count() const;

 private:
  mutable std::mutex mu_;
  rng::Engine eng_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, SecretKey> keys_;
};

}  // namespace crowdml::net
