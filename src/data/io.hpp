// CSV persistence for sample sets.
//
// Row format: label (or regression target), then feature values. Used by
// the examples to export learning curves and datasets, and lets users feed
// their own data into the framework.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace crowdml::data {

void write_csv(std::ostream& out, const SampleSet& samples);
void write_csv_file(const std::string& path, const SampleSet& samples);

/// Parse samples back. Throws std::runtime_error on malformed rows
/// (non-numeric fields, inconsistent dimensions).
SampleSet read_csv(std::istream& in);
SampleSet read_csv_file(const std::string& path);

}  // namespace crowdml::data
