#include "multimodel/instance_pool.hpp"

#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/profile.hpp"
#include "rng/engine.hpp"

namespace crowdml::multimodel {

namespace {

obs::MetricsRegistry& registry_of(const PoolOptions& opts) {
  return opts.metrics ? *opts.metrics : obs::default_registry();
}

/// SplitMix64 finalizer (same mixing as rng::splitmix64, but over a value
/// already advanced atomically — the atomic fetch_add *is* the state
/// step, so concurrent I/O threads each get a distinct, well-mixed draw).
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kStreamStep = 0x9E3779B97F4A7C15ULL;
/// Overwrite-record kind tag inside the opaque envelope.
constexpr std::uint32_t kOverwriteKind = 1;
/// Commit an overwrite-only batch once this many overwrite records sit
/// uncommitted — bounds the unflushed WAL tail (and the replication lag)
/// on an instance that keeps losing draws without winning any routes.
constexpr std::size_t kLazyOverwriteFlush = 64;

}  // namespace

net::Bytes OverwriteRecord::serialize() const {
  net::Writer wr;
  wr.put_u32(store::kOpaqueRecordMagic);
  wr.put_u32(kOverwriteKind);
  wr.put_u64(source_instance);
  wr.put_vector(w);
  return wr.take();
}

OverwriteRecord OverwriteRecord::deserialize(const net::Bytes& payload) {
  net::Reader r(payload);
  if (r.get_u32() != store::kOpaqueRecordMagic)
    throw net::CodecError("not an opaque record");
  if (r.get_u32() != kOverwriteKind)
    throw net::CodecError("unknown opaque record kind");
  OverwriteRecord rec;
  rec.source_instance = r.get_u64();
  rec.w = r.get_vector();
  if (!r.exhausted())
    throw net::CodecError("trailing bytes after overwrite record");
  return rec;
}

ModelInstancePool::Slot::Slot(std::size_t idx,
                              std::unique_ptr<core::Server> srv,
                              net::AuthRegistry& auth,
                              const PoolOptions& opts)
    : index(idx),
      server(std::move(srv)),
      board(opts.metrics),
      queue(opts.checkin_queue_max, opts.metrics) {
  protocol =
      std::make_unique<core::ProtocolServer>(*server, auth, opts.trace);
  // Deterministic per-instance discard stream, keyed by index so the
  // stream does not depend on construction order.
  discard_state = opts.seed ^ (kStreamStep * (idx + 1));
}

ModelInstancePool::ModelInstancePool(net::AuthRegistry& auth,
                                     const ServerFactory& factory,
                                     PoolOptions options)
    : opts_(std::move(options)),
      overwrites_applied_(registry_of(opts_).counter(
          "crowdml_multimodel_overwrites_applied_total",
          "Draw-and-discard parameter overwrites applied to victim "
          "instances",
          obs::Provenance::kTransportEvent)),
      overwrites_dropped_(registry_of(opts_).counter(
          "crowdml_multimodel_overwrites_dropped_total",
          "Discard overwrites shed because the victim instance's queue "
          "was full (the update survives one extra round instead)",
          obs::Provenance::kTransportEvent)),
      checkins_applied_(registry_of(opts_).counter(
          "crowdml_multimodel_checkins_applied_total",
          "Checkins applied across all pool instances",
          obs::Provenance::kTransportEvent)),
      handle_seconds_(registry_of(opts_).histogram(
          "crowdml_server_handle_seconds",
          "Whole request dispatch: decode, authenticate, apply, encode",
          obs::Provenance::kTiming)) {
  if (opts_.instances == 0) opts_.instances = 1;
  if (opts_.checkin_batch_max == 0) opts_.checkin_batch_max = 1;

  // Independent draw/route streams, both derived from the pool seed.
  std::uint64_t seed_state = opts_.seed;
  draw_state_.store(rng::splitmix64(seed_state));
  route_state_.store(rng::splitmix64(seed_state));

  slots_.reserve(opts_.instances);
  for (std::size_t i = 0; i < opts_.instances; ++i) {
    auto slot = std::make_unique<Slot>(i, factory(i), auth, opts_);
    if (opts_.coordinator_factory)
      slot->coordinator = opts_.coordinator_factory(i);
    if (!opts_.wal_dir.empty()) {
      store::DurableStoreOptions sopts = opts_.store;
      install_overwrite_replay(sopts);
      slot->store = std::make_unique<store::DurableStore>(
          store::DurableStore::instance_dir(opts_.wal_dir, i,
                                            opts_.instances),
          std::move(sopts));
      slot->store->recover(*slot->server);
      slot->store->attach(*slot->server);
      slot->store->set_group_commit(true);
    }
    // Valid snapshot before any checkout can draw this instance.
    slot->board.publish(*slot->server);
    slots_.push_back(std::move(slot));
  }
}

ModelInstancePool::~ModelInstancePool() { shutdown(); }

void ModelInstancePool::start() {
  if (started_.exchange(true)) return;
  for (auto& slot : slots_) {
    Slot* s = slot.get();
    s->applier = std::thread([this, s] { applier_loop(*s); });
  }
}

void ModelInstancePool::shutdown() {
  if (stopped_.exchange(true)) return;
  for (auto& slot : slots_) slot->queue.close();
  for (auto& slot : slots_)
    if (slot->applier.joinable()) slot->applier.join();
  for (auto& slot : slots_)
    if (slot->store) slot->store->sync();
}

std::size_t ModelInstancePool::draw_index(std::atomic<std::uint64_t>& state) {
  const std::uint64_t z =
      state.fetch_add(kStreamStep, std::memory_order_relaxed) + kStreamStep;
  return static_cast<std::size_t>(mix64(z) % slots_.size());
}

std::shared_ptr<const engine::ModelSnapshot> ModelInstancePool::draw_snapshot() {
  const std::size_t i = slots_.size() == 1 ? 0 : draw_index(draw_state_);
  slots_[i]->draws.fetch_add(1, std::memory_order_relaxed);
  return slots_[i]->board.current();
}

bool ModelInstancePool::route_checkin(engine::CheckinWork&& work) {
  const std::size_t i = slots_.size() == 1 ? 0 : draw_index(route_state_);
  if (!slots_[i]->queue.try_push(std::move(work))) return false;
  slots_[i]->routes.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t ModelInstancePool::total_version() const {
  std::uint64_t total = 0;
  for (const auto& slot : slots_) total += slot->server->version();
  return total;
}

bool ModelInstancePool::stopped() const {
  for (const auto& slot : slots_)
    if (!slot->server->stopped()) return false;
  return true;
}

std::vector<long long> ModelInstancePool::draw_counts() const {
  std::vector<long long> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) out.push_back(slot->draws.load());
  return out;
}

std::vector<long long> ModelInstancePool::route_counts() const {
  std::vector<long long> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) out.push_back(slot->routes.load());
  return out;
}

std::vector<long long> ModelInstancePool::discard_counts() const {
  std::vector<long long> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) out.push_back(slot->discards.load());
  return out;
}

void ModelInstancePool::applier_loop(Slot& slot) {
  using Clock = std::chrono::steady_clock;
  const std::size_t k = slots_.size();
  std::vector<engine::CheckinWork> batch;
  std::vector<net::Bytes> responses;
  std::vector<std::uint8_t> classes;
  // Distinct discard victims drawn this batch (coalesced: one overwrite
  // per victim carrying the batch-final parameters).
  std::vector<bool> victim(k, false);
  for (;;) {
    batch.clear();
    responses.clear();
    classes.clear();
    const std::size_t n =
        slot.queue.drain(batch, opts_.checkin_batch_max, 100);
    slot.board.refresh_age_gauge();
    if (n == 0) {
      // Idle flush: overwrite records deferred by the lazy-commit rule
      // below would otherwise sit uncommitted indefinitely on a quiet
      // instance. No client ack waits on them, but the replication
      // stream does — followers only see committed records — so flush
      // once the queue goes quiet (one drain timeout bounds the lag).
      // A failed flush just leaves them for the next pass.
      if (slot.lazy_records > 0 && slot.store && slot.store->commit_group()) {
        slot.lazy_records = 0;
        if (opts_.on_commit) opts_.on_commit(slot.index);
      }
      if (slot.queue.closed()) break;
      continue;
    }

    // Apply in arrival order. Two item kinds flow through one queue:
    // protocol frames (checkins etc.) handled by this instance's
    // ProtocolServer, and overwrite records (draw-and-discard victims)
    // distinguishable by their opaque first word. Routing overwrites
    // through the victim's own queue is what serializes *every* mutation
    // of this instance onto this thread — and into this WAL, in apply
    // order, which per-instance recovery replays bit-for-bit.
    // Steering inputs for this instance's own clock: backlog left after
    // the drain, then the batch's apply/commit wall time below. Each
    // applier feeds only its own Coordinator — k clocks, k appliers.
    if (slot.coordinator)
      slot.coordinator->observe_queue_depth(slot.queue.depth());
    const Clock::time_point apply_start = Clock::now();

    responses.reserve(n);
    classes.reserve(n);
    std::size_t applied_checkins = 0;
    std::size_t client_frames = 0;
    for (const engine::CheckinWork& work : batch) {
      if (store::is_opaque_record(work.frame)) {
        try {
          const auto rec = OverwriteRecord::deserialize(work.frame);
          const std::uint64_t v =
              slot.server->overwrite_parameters(rec.w);
          if (slot.store) {
            slot.store->log_record(v, work.frame);
            ++slot.lazy_records;
          }
          ++overwrites_applied_;
          if (opts_.trace)
            opts_.trace->event("overwrite_applied",
                               {{"instance", slot.index},
                                {"source", rec.source_instance},
                                {"version", v}});
        } catch (const std::exception&) {
          // A malformed or mis-sized overwrite never reaches here from
          // our own appliers; drop rather than poison the instance.
          ++overwrites_dropped_;
        }
        responses.emplace_back();
        classes.push_back(net::kDefaultDeviceClass);
        continue;
      }
      ++client_frames;
      obs::TimedScope timer(handle_seconds_);
      std::uint8_t cls = net::kDefaultDeviceClass;
      responses.push_back(slot.protocol->handle(work.frame, &cls));
      classes.push_back(cls);
      // An applied checkin (ok-ack) triggers one discard draw —
      // per-update uniform over the k instances, from this instance's
      // deterministic stream.
      if (is_ok_checkin(batch[responses.size() - 1].frame,
                        responses.back())) {
        ++applied_checkins;
        ++checkins_applied_;
        const std::size_t v = static_cast<std::size_t>(
            rng::splitmix64(slot.discard_state) % k);
        slots_[v]->discards.fetch_add(1, std::memory_order_relaxed);
        victim[v] = true;
      }
    }

    // Group commit: one WAL fsync covers the batch's checkin records plus
    // any overwrite records still buffered from earlier batches. An
    // overwrite-only batch defers its commit instead (up to
    // kLazyOverwriteFlush records): overwrites carry no client ack, so
    // they owe no fsync of their own — deferring keeps the pool's fsync
    // rate at one per *acked* batch, which is what lets k per-instance
    // commit clocks overlap their fsync stalls instead of doubling them.
    // A crash can lose an uncommitted overwrite tail; recovery still
    // replays a clean WAL prefix, and no ack ever covered those records.
    // On commit failure every ok-ack becomes a durability nack before
    // release — acked => durable never lies (the store requeues unwritten
    // records, so the log stays contiguous).
    const bool must_commit =
        client_frames > 0 || slot.lazy_records >= kLazyOverwriteFlush;
    const Clock::time_point commit_start = Clock::now();
    bool committed = true;
    if (must_commit) {
      if (slot.store) committed = slot.store->commit_group();
      if (committed) slot.lazy_records = 0;
      if (committed && opts_.on_commit)
        committed = opts_.on_commit(slot.index);
    }
    if (slot.coordinator)
      slot.coordinator->observe_commit(
          client_frames,
          std::chrono::duration<double>(commit_start - apply_start).count(),
          std::chrono::duration<double>(Clock::now() - commit_start).count());
    if (!committed) {
      const net::AckMessage nack{false, "durability failure"};
      const net::Bytes nack_frame =
          net::encode_frame(net::MessageType::kAck, nack.serialize());
      for (std::size_t i = 0; i < n; ++i)
        if (is_ok_checkin(batch[i].frame, responses[i]))
          responses[i] = nack_frame;
    }

    // Pace steering: every checkin ack this instance produced (ok,
    // rejection, or the durability nack above) carries a consuming hint
    // from this instance's own clock. Runs after the nack rewrite so the
    // hint survives it; overwrite records carry no response and are
    // skipped by the frame-type check.
    if (slot.coordinator) {
      for (std::size_t i = 0; i < n; ++i) {
        if (batch[i].frame.size() <= net::kFrameTypeOffset ||
            batch[i].frame[net::kFrameTypeOffset] !=
                static_cast<std::uint8_t>(net::MessageType::kCheckin))
          continue;
        responses[i] = net::frame_with_checkin_hint(
            responses[i], slot.coordinator->checkin_hint_ms(classes[i]));
      }
    }

    // Discard step: ship this instance's batch-final parameters to each
    // distinct victim drawn above (self-draws are the no-op of replacing
    // an instance with itself — with k = 1 that is every draw, so the
    // single-instance pool never enqueues or logs an overwrite). A full
    // victim queue sheds the overwrite: the victim's parameters simply
    // survive one extra round, which biases nothing.
    if (applied_checkins > 0 && k > 1) {
      OverwriteRecord rec;
      rec.source_instance = slot.index;
      rec.w = slot.server->parameters();
      const net::Bytes payload = rec.serialize();
      for (std::size_t v = 0; v < k; ++v) {
        if (!victim[v]) continue;
        victim[v] = false;
        if (v == slot.index) continue;
        engine::CheckinWork ow;
        ow.frame = payload;
        if (!slots_[v]->queue.try_push(std::move(ow)))
          ++overwrites_dropped_;
      }
    } else {
      for (std::size_t v = 0; v < k; ++v) victim[v] = false;
    }

    // Publish before releasing acks: a device that sees its ack and
    // immediately checks out can draw this instance and find its update.
    slot.board.publish(*slot.server);

    // Release responses grouped per event loop (overwrite items carry no
    // destination and fall through). Single-item batches — the norm at
    // commit-per-update cadence — skip the grouping map.
    if (n == 1) {
      if (batch[0].complete) {
        batch[0].complete(std::move(responses[0]));
      } else if (batch[0].loop) {
        std::vector<std::pair<std::uint64_t, net::Bytes>> one;
        one.emplace_back(batch[0].conn_id, std::move(responses[0]));
        batch[0].loop->send_many(std::move(one));
      }
    } else {
      std::unordered_map<engine::EventLoop*,
                         std::vector<std::pair<std::uint64_t, net::Bytes>>>
          by_loop;
      for (std::size_t i = 0; i < n; ++i) {
        if (batch[i].complete)
          batch[i].complete(std::move(responses[i]));
        else if (batch[i].loop)
          by_loop[batch[i].loop].emplace_back(batch[i].conn_id,
                                              std::move(responses[i]));
      }
      for (auto& [loop, items] : by_loop) loop->send_many(std::move(items));
    }
  }
}

bool ModelInstancePool::is_ok_checkin(const net::Bytes& frame,
                                      const net::Bytes& response) {
  if (frame.size() <= net::kFrameTypeOffset ||
      frame[net::kFrameTypeOffset] !=
          static_cast<std::uint8_t>(net::MessageType::kCheckin))
    return false;
  try {
    const net::Frame f = net::decode_frame(response);
    return f.type == net::MessageType::kAck &&
           net::AckMessage::deserialize(f.payload).ok;
  } catch (const net::CodecError&) {
    return false;
  }
}

void install_overwrite_replay(store::DurableStoreOptions& opts) {
  opts.opaque_replay = [](core::Server& server, std::uint64_t seq,
                          const net::Bytes& payload) {
    const auto rec = OverwriteRecord::deserialize(payload);
    const std::uint64_t v = server.overwrite_parameters(rec.w);
    if (v != seq)
      throw store::WalError("overwrite replay produced version " +
                            std::to_string(v) + ", record says " +
                            std::to_string(seq));
  };
}

void wire_engine(ModelInstancePool& pool, engine::EngineConfig& config) {
  config.draw_snapshot = [&pool] { return pool.draw_snapshot(); };
  config.route_checkin = [&pool](engine::CheckinWork&& work) {
    return pool.route_checkin(std::move(work));
  };
  config.shutdown_drain = [&pool] { pool.shutdown(); };
}

}  // namespace crowdml::multimodel
