// Discrete-event simulation kernel.
//
// Drives the Section V-C experiments: virtual time in seconds, events
// ordered by (time, insertion sequence) so runs are fully deterministic,
// handlers are arbitrary callables that may schedule further events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace crowdml::sim {

using SimTime = double;

class Simulator {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule at absolute time `t >= now()`.
  void schedule_at(SimTime t, Handler h);

  /// Schedule `dt >= 0` after the current time.
  void schedule_after(SimTime dt, Handler h);

  /// Process the earliest event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run while events exist and their time is <= t_end; afterwards
  /// now() == max(processed time, t_end).
  void run_until(SimTime t_end);

  /// Drop all pending events (used by early-stop conditions).
  void clear();

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace crowdml::sim
