// Replication bench: what the read-replica tier buys and what it costs.
//
// Topology under test: one leader (epoll engine, durable store, async
// WAL shipping) plus two followers, each applying the shipped log
// through the deterministic replay path and serving checkouts from its
// own snapshot board.
//
//   (a) Checkout scaling — aggregate checkout throughput with all client
//       connections on the leader (baseline) vs the same number of
//       connections spread across leader + 2 followers. Checkouts are
//       the read path replicas exist to scale; near-linear is the goal.
//   (b) Replication lag — while checkin traffic flows through the
//       leader, measure commit-to-applied latency per record: the clock
//       starts when the leader's group commit makes a seq durable and
//       stops when a follower has applied (and fsynced) it. Reported as
//       percentiles per follower.
//   (c) Failover — repeated trials of the full automatic-failover arc:
//       the leader dies abruptly, the candidate follower's failure
//       detector trips (100-200ms fuse), it wins the elector's vote,
//       self-promotes through the same handoff crowdml-server performs,
//       and quorum-acks its first checkin. Reported as the
//       death-to-first-ack wall time (median/p99), detection included.
//
// Scale via CROWDML_SCALE (default 0.25 => 2000 checkouts per node
// phase, 1000 lag-timed checkins, 5 failover trials). --json-out PATH
// writes the table (see EXPERIMENTS.md; BENCH_replication.json at the
// repo root).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "engine/epoll_server.hpp"
#include "replica/failure_detector.hpp"
#include "replica/follower.hpp"
#include "replica/log_shipper.hpp"
#include "store/durable_store.hpp"
#include "tools/flags.hpp"

namespace {

using namespace crowdml;

constexpr std::size_t kClasses = 10;
constexpr std::size_t kDim = 5;
constexpr long long kWindow = 8;

core::Server make_server() {
  core::ServerConfig cfg;
  cfg.param_dim = kClasses * kDim;
  cfg.num_classes = kClasses;
  return core::Server(cfg,
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::SqrtDecaySchedule>(50.0), 500.0),
                      rng::Engine(1));
}

struct ClientFrames {
  net::Bytes checkout;
  net::Bytes checkin;
};

ClientFrames make_frames(const net::DeviceCredentials& creds,
                         rng::Engine& eng) {
  ClientFrames f;
  net::CheckoutRequest req;
  req.device_id = creds.device_id;
  req.auth_tag = creds.sign(req.body());
  f.checkout =
      net::encode_frame(net::MessageType::kCheckoutRequest, req.serialize());
  net::CheckinMessage m;
  m.device_id = creds.device_id;
  for (std::size_t i = 0; i < kClasses * kDim; ++i)
    m.g_hat.push_back(static_cast<double>(eng() % 2001) / 1000.0 - 1.0);
  m.ns = 10;
  m.ne_hat = static_cast<std::int64_t>(eng() % 3);
  for (std::size_t i = 0; i < kClasses; ++i)
    m.ny_hat.push_back(static_cast<std::int64_t>(eng() % 5));
  m.auth_tag = creds.sign(m.body());
  f.checkin = net::encode_frame(net::MessageType::kCheckin, m.serialize());
  return f;
}

/// Pipelined checkout load against one port; returns aggregate ops/s
/// (same generator shape as bench/serving_engine.cpp).
double hammer_checkouts(std::uint16_t port, std::size_t conns,
                        const std::vector<ClientFrames>& frames,
                        long long total) {
  std::vector<net::TcpConnection> sockets;
  for (std::size_t c = 0; c < conns; ++c) {
    auto conn = net::TcpConnection::connect("127.0.0.1", port, 2000);
    if (!conn) throw std::runtime_error("bench client connect failed");
    sockets.push_back(std::move(*conn));
  }
  std::atomic<long long> remaining{total};
  std::vector<std::thread> threads;
  const std::size_t workers = std::min<std::size_t>(8, conns);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      std::size_t c = w;
      for (;;) {
        const long long k = std::min(kWindow, remaining.fetch_sub(kWindow));
        if (k <= 0) break;
        long long sent = 0;
        for (long long i = 0; i < k; ++i)
          if (sockets[c].send_frame(frames[c % frames.size()].checkout))
            ++sent;
        for (long long i = 0; i < sent; ++i) sockets[c].recv_frame();
        c = (c + workers < sockets.size()) ? c + workers : w;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(total) / wall;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "crowdml_replbench_XXXXXX")
            .string();
    if (!mkdtemp(tmpl.data())) throw std::runtime_error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  try {
    const tools::Flags flags(argc, argv);
    json_out = flags.get("json-out", "");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replication: %s (only --json-out PATH)\n", e.what());
    return 1;
  }
  const bench::Options o = bench::options();
  const long long checkouts = std::max(512, static_cast<int>(8000 * o.scale));
  const long long checkins = std::max(256, static_cast<int>(4000 * o.scale));
  constexpr std::size_t kFollowers = 2;
  constexpr std::size_t kConns = 48;  // per serving node

  bench::header("replication",
                "read-replica checkout scaling and commit-to-applied "
                "replication lag (leader + 2 followers)", o);

  // --- Leader: epoll engine, durable store (group commit), async shipper.
  TempDir ldir;
  obs::MetricsRegistry reg;
  core::Server leader = make_server();
  store::DurableStoreOptions sopts;
  sopts.wal.fsync = store::FsyncPolicy::kAlways;
  sopts.wal.metrics = &reg;
  store::DurableStore store(ldir.path, sopts);
  store.recover(leader);
  store.attach(leader);
  store.set_group_commit(true);

  replica::ShipperOptions shopts;
  shopts.ack_mode = replica::ReplAckMode::kAsync;
  shopts.metrics = &reg;
  replica::LogShipper shipper(leader, store, 1, shopts);

  // Commit timestamps per seq, for the lag clock. The leader side stamps
  // under the group-commit hook (the moment the record becomes durable
  // and shippable); each follower's on_applied hook reads them.
  std::mutex commit_mu;
  std::vector<std::chrono::steady_clock::time_point> committed_at(1);
  net::AuthRegistry auth(rng::Engine(2));
  engine::EngineConfig ecfg;
  ecfg.max_connections = kConns + 8;
  ecfg.checkin_queue_max = 4096;
  ecfg.metrics = &reg;
  ecfg.group_commit = [&] {
    if (!store.commit_group()) return false;
    {
      std::lock_guard<std::mutex> lock(commit_mu);
      const std::uint64_t last = store.wal().last_seq();
      const auto now = std::chrono::steady_clock::now();
      while (committed_at.size() <= last) committed_at.push_back(now);
    }
    shipper.notify_committed();
    return true;
  };
  engine::EpollCrowdServer leader_engine(leader, auth, ecfg);

  // --- Followers: replica store + engine in redirect mode, with a lag
  // probe in on_applied.
  struct Node {
    TempDir dir;
    core::Server server = make_server();
    net::AuthRegistry auth{rng::Engine(2)};  // same seed => same keys
    std::unique_ptr<replica::Follower> follower;
    std::unique_ptr<engine::EpollCrowdServer> engine;
    std::vector<double> lag_ms;
    std::uint64_t lag_seen = 0;
  };
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < kFollowers; ++i) {
    auto node = std::make_unique<Node>();
    Node* n = node.get();
    replica::FollowerOptions fo;
    fo.leader_port = shipper.port();
    fo.follower_id = i + 1;
    fo.store = sopts;
    fo.metrics = &reg;
    fo.reconnect_backoff_ms = 20;
    fo.on_applied = [n, &commit_mu, &committed_at] {
      const auto now = std::chrono::steady_clock::now();
      const std::uint64_t applied = n->follower->applied_seq();
      std::lock_guard<std::mutex> lock(commit_mu);
      for (std::uint64_t s = n->lag_seen + 1;
           s <= applied && s < committed_at.size(); ++s)
        n->lag_ms.push_back(std::chrono::duration<double, std::milli>(
                                now - committed_at[s])
                                .count());
      n->lag_seen = applied;
      if (n->engine) n->engine->republish();
    };
    node->follower =
        std::make_unique<replica::Follower>(node->server, node->dir.path, fo);
    engine::EngineConfig fcfg;
    fcfg.max_connections = kConns + 8;
    fcfg.metrics = &reg;
    fcfg.checkin_redirect = "127.0.0.1:" + std::to_string(leader_engine.port());
    node->engine = std::make_unique<engine::EpollCrowdServer>(
        node->server, node->auth, fcfg);
    node->follower->start();
    nodes.push_back(std::move(node));
  }

  // Enrolled frames (identical keys on every node thanks to the seed).
  std::vector<ClientFrames> frames;
  rng::Engine eng(42);
  for (std::size_t c = 0; c < kConns; ++c) {
    const auto creds = auth.enroll();
    for (auto& n : nodes) n->auth.enroll();
    frames.push_back(make_frames(creds, eng));
  }

  // --- (b) Replication lag under checkin load (also warms the log).
  {
    std::vector<net::TcpConnection> socks;
    for (int c = 0; c < 8; ++c) {
      auto conn =
          net::TcpConnection::connect("127.0.0.1", leader_engine.port(), 2000);
      if (!conn) throw std::runtime_error("connect failed");
      socks.push_back(std::move(*conn));
    }
    std::atomic<long long> remaining{checkins};
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < socks.size(); ++w) {
      threads.emplace_back([&, w] {
        for (;;) {
          const long long k = std::min(kWindow, remaining.fetch_sub(kWindow));
          if (k <= 0) break;
          long long sent = 0;
          for (long long i = 0; i < k; ++i)
            if (socks[w].send_frame(frames[w].checkin)) ++sent;
          for (long long i = 0; i < sent; ++i) socks[w].recv_frame();
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const std::uint64_t logged = leader.version();
  for (auto& n : nodes) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (n->follower->applied_seq() < logged &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  std::printf("\n%lld checkins through the leader; followers applied "
              "%llu and %llu of %llu\n",
              checkins,
              static_cast<unsigned long long>(nodes[0]->follower->applied_seq()),
              static_cast<unsigned long long>(nodes[1]->follower->applied_seq()),
              static_cast<unsigned long long>(logged));
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "follower", "records",
              "p50_ms", "p90_ms", "p99_ms", "max_ms");
  std::vector<std::vector<double>> lag_pcts;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::vector<double> lag;
    {
      std::lock_guard<std::mutex> lock(commit_mu);
      lag = nodes[i]->lag_ms;
    }
    const double p50 = percentile(lag, 0.50), p90 = percentile(lag, 0.90),
                 p99 = percentile(lag, 0.99),
                 mx = lag.empty() ? 0.0
                                  : *std::max_element(lag.begin(), lag.end());
    lag_pcts.push_back({p50, p90, p99, mx});
    std::printf("%-10zu %10zu %10.2f %10.2f %10.2f %10.2f\n", i + 1,
                lag.size(), p50, p90, p99, mx);
  }

  // --- (a) Checkout scaling. Each node is measured solo first: on a
  // shared host the nodes contend for the same cores, so the honest
  // multi-machine projection is the sum of per-node solo capacities
  // (each node serves checkouts from its own lock-free snapshot board
  // with zero cross-node work per request — the sum is what distinct
  // machines would deliver). The concurrent same-host aggregate is also
  // reported; with fewer cores than serving threads it measures core
  // count, not the architecture.
  std::vector<double> solo(1 + nodes.size());
  solo[0] = hammer_checkouts(leader_engine.port(), kConns, frames, checkouts);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    solo[i + 1] =
        hammer_checkouts(nodes[i]->engine->port(), kConns, frames, checkouts);
  double projected = 0.0;
  for (const double x : solo) projected += x;
  const double scaling = projected / solo[0];

  std::vector<double> concurrent(1 + nodes.size());
  {
    std::vector<std::thread> threads;
    threads.emplace_back([&] {
      concurrent[0] =
          hammer_checkouts(leader_engine.port(), kConns, frames, checkouts);
    });
    for (std::size_t i = 0; i < nodes.size(); ++i)
      threads.emplace_back([&, i] {
        concurrent[i + 1] = hammer_checkouts(nodes[i]->engine->port(), kConns,
                                             frames, checkouts);
      });
    for (auto& t : threads) t.join();
  }
  double same_host = 0.0;
  for (const double x : concurrent) same_host += x;

  std::printf("\n%-30s %14s\n", "topology", "checkouts/s");
  std::printf("%-30s %14.0f\n", "leader solo", solo[0]);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    std::printf("follower %zu solo %15s %14.0f  (%.2fx leader)\n", i + 1, "",
                solo[i + 1], solo[i + 1] / solo[0]);
  std::printf("%-30s %14.0f  (%.2fx, multi-machine projection)\n",
              "leader + 2 followers (sum)", projected, scaling);
  std::printf("%-30s %14.0f  (same host, shared cores)\n",
              "leader + 2 followers (conc.)", same_host);

  // --- (c) Failover: abrupt leader death -> detector trip -> election
  // -> self-promotion handoff -> first quorum-acked checkin, end to end.
  // Each trial is a fresh miniature cluster so the clock always starts
  // from a healthy steady state.
  const int trials = std::max(5, static_cast<int>(20 * o.scale));
  std::vector<double> failover_ms;
  bool failover_acked = true;
  for (int t = 0; t < trials; ++t) {
    TempDir tl, tf1, tf2;
    core::Server lsrv = make_server();
    store::DurableStore lst(tl.path, sopts);
    lst.recover(lsrv);
    lst.attach(lsrv);
    lst.set_group_commit(true);
    replica::ShipperOptions sh;
    sh.ack_mode = replica::ReplAckMode::kQuorum;
    sh.quorum_follower_acks = 1;
    sh.heartbeat_interval_ms = 20;  // lease defaults to 60ms
    auto ship = std::make_unique<replica::LogShipper>(lsrv, lst, 1, sh);

    net::AuthRegistry lauth{rng::Engine(2)};
    engine::EngineConfig lec;
    lec.group_commit = [&] {
      if (!lst.commit_group()) return false;
      ship->notify_committed();
      return ship->await_quorum(lst.wal().last_seq());
    };
    auto leng = std::make_unique<engine::EpollCrowdServer>(lsrv, lauth, lec);

    // Elector first (long fuse: never campaigns), so the candidate can
    // name its vote endpoint; then the 100-200ms-fused candidate.
    core::Server s2 = make_server();
    replica::FollowerOptions o2;
    o2.leader_port = ship->port();
    o2.follower_id = 2;
    o2.reconnect_backoff_ms = 10;
    o2.detector.election_timeout_min_ms = 60'000;
    auto f2 = std::make_unique<replica::Follower>(s2, tf2.path, o2);
    f2->start();
    while (f2->vote_port() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));

    core::Server s1 = make_server();
    replica::FollowerOptions o1;
    o1.leader_port = ship->port();
    o1.follower_id = 1;
    o1.reconnect_backoff_ms = 10;
    o1.detector.election_timeout_min_ms = 100;
    o1.detector.election_timeout_max_ms = 200;
    o1.peers = replica::parse_peer_list("127.0.0.1:" +
                                        std::to_string(f2->vote_port()));
    o1.rng_seed = static_cast<std::uint64_t>(t) + 1;
    auto f1 = std::make_unique<replica::Follower>(s1, tf1.path, o1);
    f1->start();

    // Warm: one quorum-acked checkin, both replicas caught up.
    const auto creds = lauth.enroll();
    const ClientFrames cf = make_frames(creds, eng);
    auto warm = net::TcpConnection::connect("127.0.0.1", leng->port(), 2000);
    if (!warm) throw std::runtime_error("failover warm connect failed");
    warm->set_deadline_ms(10'000);
    warm->send_frame(cf.checkin);
    warm->recv_frame();
    while (f1->applied_seq() < lsrv.version() ||
           f2->applied_seq() < lsrv.version())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));

    const auto death = std::chrono::steady_clock::now();
    leng->shutdown();  // the leader dies mid-deployment, no goodbye
    ship->shutdown();
    while (!f1->promoted())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // The crowdml-server promotion handoff, same ordering: replication
    // thread down before its store joins the serving path; republish
    // before checkins; shipper on the just-freed vote port the elector
    // was retargeted to when it granted.
    const std::uint64_t won = f1->epoch();
    const std::uint16_t rport = f1->vote_port();
    f1->shutdown();
    store::DurableStore& fs = f1->store();
    fs.set_group_commit(true);
    fs.attach(s1);
    replica::ShipperOptions sh2;
    sh2.port = rport;
    sh2.ack_mode = replica::ReplAckMode::kQuorum;
    sh2.quorum_follower_acks = 1;
    sh2.heartbeat_interval_ms = 20;
    auto ship2 = std::make_unique<replica::LogShipper>(s1, fs, won, sh2);
    net::AuthRegistry nauth{rng::Engine(2)};  // same seed => same keys
    nauth.enroll();
    engine::EngineConfig nec;
    nec.group_commit = [&] {
      if (!fs.commit_group()) return false;
      ship2->notify_committed();
      return ship2->await_quorum(fs.wal().last_seq());
    };
    auto neng = std::make_unique<engine::EpollCrowdServer>(s1, nauth, nec);

    // First checkin on the new leader: the ack waits for the elector to
    // rejoin the winner and durably append — the full regime, restored.
    auto conn = net::TcpConnection::connect("127.0.0.1", neng->port(), 2000);
    if (!conn) throw std::runtime_error("failover checkin connect failed");
    conn->set_deadline_ms(10'000);
    conn->send_frame(cf.checkin);
    const auto reply = conn->recv_frame();
    const auto first_ack = std::chrono::steady_clock::now();
    const bool ok =
        reply &&
        net::AckMessage::deserialize(net::decode_frame(*reply).payload).ok;
    failover_acked = failover_acked && ok;
    failover_ms.push_back(
        std::chrono::duration<double, std::milli>(first_ack - death).count());

    f2->shutdown();
    neng->shutdown();
    ship2->shutdown();
  }
  const double fo_p50 = percentile(failover_ms, 0.50);
  const double fo_p99 = percentile(failover_ms, 0.99);
  const double fo_max =
      failover_ms.empty()
          ? 0.0
          : *std::max_element(failover_ms.begin(), failover_ms.end());
  std::printf("\nfailover (%d trials, 100-200ms detection fuse): "
              "death-to-first-ack p50 %.0fms  p99 %.0fms  max %.0fms\n",
              trials, fo_p50, fo_p99, fo_max);

  // Near-linear: every follower serves reads about as fast as the
  // leader, so 3 serving nodes project to ~3x one.
  bool followers_match = true;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    followers_match = followers_match && solo[i + 1] >= 0.7 * solo[0];
  const bool scale_ok = followers_match && scaling >= 2.4;
  const bool lag_ok = !lag_pcts.empty() && lag_pcts[0][2] < 1000.0;
  // With a 100-200ms fuse, detection dominates; anything near a second
  // of median means promotion or the elector's rejoin is dragging.
  const bool failover_ok = failover_acked && fo_p50 < 1500.0;
  bench::check(followers_match,
               "each follower serves checkouts >= 0.7x the leader's rate");
  bench::check(scale_ok,
               "2 followers project aggregate checkout throughput >= 2.4x");
  bench::check(lag_ok, "p99 commit-to-applied lag under a second");
  bench::check(failover_ok,
               "every trial's first post-failover checkin acked, median "
               "death-to-first-ack under 1.5s");

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "replication: cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"replication\",\n  \"scale\": %g,\n"
                 "  \"followers\": %zu,\n  \"checkins_logged\": %llu,\n"
                 "  \"checkout_throughput\": {\n"
                 "    \"leader_solo_per_s\": %.0f,\n"
                 "    \"follower1_solo_per_s\": %.0f,\n"
                 "    \"follower2_solo_per_s\": %.0f,\n"
                 "    \"projected_aggregate_per_s\": %.0f,\n"
                 "    \"projected_scaling_x\": %.2f,\n"
                 "    \"same_host_concurrent_per_s\": %.0f\n  },\n"
                 "  \"replication_lag_ms\": [\n",
                 o.scale, nodes.size(),
                 static_cast<unsigned long long>(logged), solo[0], solo[1],
                 solo[2], projected, scaling, same_host);
    for (std::size_t i = 0; i < lag_pcts.size(); ++i)
      std::fprintf(f,
                   "    {\"follower\": %zu, \"p50\": %.2f, \"p90\": %.2f, "
                   "\"p99\": %.2f, \"max\": %.2f}%s\n",
                   i + 1, lag_pcts[i][0], lag_pcts[i][1], lag_pcts[i][2],
                   lag_pcts[i][3], i + 1 < lag_pcts.size() ? "," : "");
    std::fprintf(f,
                 "  ],\n  \"failover\": {\n"
                 "    \"trials\": %d,\n"
                 "    \"detection_fuse_ms\": [100, 200],\n"
                 "    \"death_to_first_ack_ms\": "
                 "{\"p50\": %.1f, \"p99\": %.1f, \"max\": %.1f},\n"
                 "    \"all_first_checkins_acked\": %s\n  },\n",
                 trials, fo_p50, fo_p99, fo_max,
                 failover_acked ? "true" : "false");
    std::fprintf(f,
                 "  \"checks\": {\n"
                 "    \"followers_serve_0_7x_leader\": %s,\n"
                 "    \"projected_scaling_2_4x\": %s,\n"
                 "    \"p99_lag_under_1s\": %s,\n"
                 "    \"failover_median_under_1_5s\": %s\n  }\n}\n",
                 followers_match ? "true" : "false", scale_ok ? "true" : "false",
                 lag_ok ? "true" : "false", failover_ok ? "true" : "false");
    std::fclose(f);
    std::printf("(json written: %s)\n", json_out.c_str());
  }

  for (auto& n : nodes) {
    n->follower->shutdown();
    n->engine->shutdown();
  }
  leader_engine.shutdown();
  shipper.shutdown();
  return 0;
}
