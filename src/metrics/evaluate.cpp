#include "metrics/evaluate.hpp"

#include <cmath>

namespace crowdml::metrics {

double evaluate_model(const models::Model& model, const linalg::Vector& w,
                      std::span<const models::Sample> samples) {
  if (samples.empty()) return 0.0;
  if (model.is_classifier()) return model.error_rate(w, samples);
  double acc = 0.0;
  for (const models::Sample& s : samples)
    acc += std::abs(model.predict(w, s.x) - s.y);
  return acc / static_cast<double>(samples.size());
}

}  // namespace crowdml::metrics
