#include "store/durable_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <vector>

#include "net/messages.hpp"
#include "obs/profile.hpp"

namespace crowdml::store {

namespace {

obs::MetricsRegistry& registry_of(const DurableStoreOptions& opts) {
  return opts.wal.metrics ? *opts.wal.metrics : obs::default_registry();
}

/// Parse "snapshot-<version>.bin"; nullopt for anything else.
std::optional<std::uint64_t> snapshot_version_of(const std::string& name) {
  constexpr const char* kPrefix = "snapshot-";
  constexpr const char* kSuffix = ".bin";
  if (name.rfind(kPrefix, 0) != 0) return std::nullopt;
  const std::size_t suffix_at = name.size() - 4;
  if (name.size() <= 9 + 4 || name.compare(suffix_at, 4, kSuffix) != 0)
    return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = 9; i < suffix_at; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return v;
}

/// All snapshots in `dir`, newest version first.
std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const auto v = snapshot_version_of(entry.path().filename().string());
    if (v) out.emplace_back(*v, entry.path().string());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace

bool is_opaque_record(const net::Bytes& payload) {
  if (payload.size() < 4) return false;
  return payload[0] == 0xFF && payload[1] == 0xFF && payload[2] == 0xFF &&
         payload[3] == 0xFF;
}

DurableStore::DurableStore(std::string dir, DurableStoreOptions options)
    : opts_(options),
      wal_(std::move(dir), opts_.wal),
      append_failures_(registry_of(opts_).counter(
          "crowdml_wal_append_failures_total",
          "Applied checkins nacked because their WAL append failed",
          obs::Provenance::kTransportEvent)),
      snapshots_written_(registry_of(opts_).counter(
          "crowdml_store_snapshots_total",
          "Atomic server-state snapshots written by compaction",
          obs::Provenance::kTransportEvent)),
      replayed_records_(registry_of(opts_).counter(
          "crowdml_store_replayed_records_total",
          "WAL records replayed into the server during recovery",
          obs::Provenance::kTransportEvent)),
      snapshot_seconds_(registry_of(opts_).histogram(
          "crowdml_store_snapshot_write_seconds",
          "One atomic snapshot write (serialize + temp file + fsync + rename)",
          obs::Provenance::kTiming)) {
  if (opts_.keep_snapshots < 1) opts_.keep_snapshots = 1;
}

std::string DurableStore::snapshot_filename(std::uint64_t version) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.bin",
                static_cast<unsigned long long>(version));
  return buf;
}

std::string DurableStore::snapshot_path(std::uint64_t version) const {
  return dir() + "/" + snapshot_filename(version);
}

DurableStore::RecoveryInfo DurableStore::recover(core::Server& server) {
  if (recovered_) throw WalError("recover called twice");
  if (opts_.trace)
    opts_.trace->event("recovery_started", {{"dir", dir()}});

  // Newest snapshot that deserializes and restores cleanly wins; corrupt
  // ones (e.g. a machine that died mid-write before this store existed)
  // are skipped in favor of older generations. A dimension mismatch is an
  // operator error (wrong --dim/--classes) and propagates.
  for (const auto& [version, path] : list_snapshots(dir())) {
    try {
      const core::ServerCheckpoint cp = core::ServerCheckpoint::load_file(path);
      server.restore(cp.w, cp.version, cp.device_stats);
      info_.snapshot_loaded = true;
      info_.snapshot_version = cp.version;
      break;
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      ++info_.corrupt_snapshots_skipped;
    }
  }

  // A server pre-restored from a legacy --checkpoint file may already be
  // ahead of (or instead of) the snapshot; never replay records it holds.
  const std::uint64_t from_seq =
      std::max(info_.snapshot_version, server.version());

  const ReplayStats replay = wal_.open_and_replay(
      from_seq, [&](std::uint64_t seq, const net::Bytes& payload) {
        if (is_opaque_record(payload)) {
          if (!opts_.opaque_replay)
            throw WalError("opaque record " + std::to_string(seq) +
                           " in a store with no opaque_replay handler "
                           "(multimodel log opened as single-model?)");
          opts_.opaque_replay(server, seq, payload);
          ++replayed_records_;
          if (server.version() != seq)
            throw WalError("replay diverged: opaque record " +
                           std::to_string(seq) +
                           " left the server at iteration " +
                           std::to_string(server.version()));
          return;
        }
        net::CheckinMessage msg;
        try {
          msg = net::CheckinMessage::deserialize(payload);
        } catch (const net::CodecError& e) {
          // CRC passed but the body does not parse: we logged garbage.
          throw WalError("undecodable checkin in wal record " +
                         std::to_string(seq) + " (" + e.what() + ")");
        }
        const net::AckMessage ack = server.handle_checkin(msg);
        if (!ack.ok) {
          ++info_.records_rejected;
          return;
        }
        ++replayed_records_;
        if (server.version() != seq)
          throw WalError("replay diverged: record " + std::to_string(seq) +
                         " left the server at iteration " +
                         std::to_string(server.version()));
      });

  info_.records_replayed = replay.records_applied - info_.records_rejected;
  info_.records_skipped = replay.records_skipped;
  info_.torn_tail_truncated = replay.torn_tail_truncated;
  info_.torn_bytes_dropped = replay.torn_bytes_dropped;
  info_.recovered_version = server.version();
  recovered_ = true;

  if (opts_.trace)
    opts_.trace->event(
        "recovery_complete",
        {{"snapshot_version", info_.snapshot_version},
         {"snapshot_loaded", info_.snapshot_loaded},
         {"records_replayed", info_.records_replayed},
         {"records_rejected", info_.records_rejected},
         {"torn_tail_truncated", info_.torn_tail_truncated},
         {"version", info_.recovered_version}});
  return info_;
}

void DurableStore::drain_pending_locked() {
  while (!pending_.empty()) {
    wal_.append(pending_.front().first, pending_.front().second);
    pending_.pop_front();
  }
}

void DurableStore::attach(core::Server& server) {
  if (!recovered_) throw WalError("attach before recover");
  server.set_applied_hook(
      [this](const net::CheckinMessage& msg, std::uint64_t version) {
        std::lock_guard<std::mutex> lock(pending_mu_);
        if (poisoned_) return false;
        if (group_commit_) {
          // Buffer only; durability happens at commit_group(). The caller
          // is holding this checkin's ack until then.
          group_buf_.emplace_back(version, msg.serialize());
          return true;
        }
        // Queue-then-drain keeps the log contiguous across transient
        // append failures: the server's version advances even on a nack,
        // so appending a *newer* record before the failed one would punch
        // a hole that poisons replay. Every record here was applied in
        // memory, so persisting it late is faithful to the state a
        // recovery must rebuild.
        pending_.emplace_back(version, msg.serialize());
        try {
          drain_pending_locked();
          return true;
        } catch (const WalError& e) {
          // The update stays applied in memory, but the device gets a
          // nack: "acked => durable" must never lie. The device treats it
          // as a failed cycle and never replays the checkin (Remark 1).
          ++append_failures_;
          if (pending_.size() > kMaxPending) {
            poisoned_ = true;
            pending_.clear();
            if (opts_.trace)
              opts_.trace->event("wal_poisoned", {{"round", version}});
          } else if (opts_.trace) {
            opts_.trace->event("wal_append_failed",
                               {{"round", version},
                                {"reason", e.what()},
                                {"queued", pending_.size()}});
          }
          return false;
        }
      });
}

bool DurableStore::log_record(std::uint64_t seq, net::Bytes payload) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  if (poisoned_) return false;
  if (group_commit_) {
    group_buf_.emplace_back(seq, std::move(payload));
    return true;
  }
  // Same queue-then-drain discipline as the applied-checkin hook: a
  // transient failure leaves the record in version order ahead of newer
  // ones, so the log can never hole.
  pending_.emplace_back(seq, std::move(payload));
  try {
    drain_pending_locked();
    return true;
  } catch (const WalError& e) {
    ++append_failures_;
    if (pending_.size() > kMaxPending) {
      poisoned_ = true;
      pending_.clear();
      if (opts_.trace) opts_.trace->event("wal_poisoned", {{"round", seq}});
    } else if (opts_.trace) {
      opts_.trace->event("wal_append_failed", {{"round", seq},
                                               {"reason", e.what()},
                                               {"queued", pending_.size()}});
    }
    return false;
  }
}

std::string DurableStore::instance_dir(const std::string& base, std::size_t i,
                                       std::size_t k) {
  if (k <= 1) return base;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/instance-%03zu", i);
  return base + buf;
}

void DurableStore::set_group_commit(bool enabled) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  group_commit_ = enabled;
}

bool DurableStore::group_commit() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return group_commit_;
}

bool DurableStore::commit_group() {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return commit_buffers_locked();
}

bool DurableStore::commit_buffers_locked() {
  if (poisoned_) {
    // The callers of a poisoned store nack everything anyway; drop the
    // buffer so it cannot grow without bound.
    append_failures_ += static_cast<long long>(group_buf_.size());
    group_buf_.clear();
    return false;
  }
  if (pending_.empty() && group_buf_.empty()) return true;
  std::vector<WalRecord> batch;
  batch.reserve(pending_.size() + group_buf_.size());
  for (const auto& [seq, payload] : pending_) batch.push_back({seq, payload});
  for (const auto& [seq, payload] : group_buf_)
    batch.push_back({seq, payload});
  const std::size_t group_size = group_buf_.size();
  try {
    wal_.append_batch(batch);
    pending_.clear();
    group_buf_.clear();
    return true;
  } catch (const WalError& e) {
    // Every record of this group gets nacked by the caller (pending_
    // records were nacked when they were first queued), so nothing acked
    // escapes undurable. Records append_batch already wrote stay in the
    // log — nacked-but-durable is the safe direction — and must not be
    // re-appended (the seq check would poison the log); the rest are
    // re-queued so the log stays contiguous once the disk recovers.
    append_failures_ += static_cast<long long>(group_size);
    for (auto& rec : group_buf_) pending_.push_back(std::move(rec));
    group_buf_.clear();
    const std::uint64_t written_through = wal_.last_seq();
    while (!pending_.empty() && pending_.front().first <= written_through)
      pending_.pop_front();
    if (pending_.size() > kMaxPending) {
      poisoned_ = true;
      pending_.clear();
      if (opts_.trace) opts_.trace->event("wal_poisoned", {});
    } else if (opts_.trace) {
      opts_.trace->event("wal_append_failed",
                         {{"reason", e.what()},
                          {"queued", pending_.size()},
                          {"group", group_size}});
    }
    return false;
  }
}

void DurableStore::sync() {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    try {
      if (!poisoned_) drain_pending_locked();
    } catch (const WalError&) {
      // Shutdown path: the queued records were already nacked, so losing
      // them here breaks no promise.
    }
    // Group-buffered records were never acked (their batch never
    // committed), so a failure here breaks no promise either.
    if (!poisoned_ && !group_buf_.empty()) commit_buffers_locked();
  }
  wal_.sync();
}

bool DurableStore::compact(const core::Server& server) {
  if (!recovered_) return false;
  try {
    const core::ServerCheckpoint cp = core::checkpoint_server(server);
    {
      obs::TimedScope timer(snapshot_seconds_);
      cp.save_file(snapshot_path(cp.version));
    }
    ++snapshots_written_;
    ++compactions_;

    // Only after the new snapshot is durable: prune old snapshots, then
    // prune WAL segments covered by the *oldest kept* snapshot — if the
    // newest snapshot later turns out corrupt, recovery falls back to an
    // older one and still needs the intervening records.
    const auto snapshots = list_snapshots(dir());
    for (std::size_t i = opts_.keep_snapshots; i < snapshots.size(); ++i)
      std::remove(snapshots[i].second.c_str());
    const std::uint64_t oldest_kept =
        snapshots.empty()
            ? cp.version
            : snapshots[std::min(snapshots.size(), opts_.keep_snapshots) - 1]
                  .first;
    const std::size_t segments_removed = wal_.truncate_through(oldest_kept);
    if (opts_.trace)
      opts_.trace->event("compaction", {{"version", cp.version},
                                        {"segments_removed", segments_removed}});
    return true;
  } catch (const std::exception& e) {
    // A failed snapshot must not take the server down — the WAL is intact
    // and recovery still works; the operator sees the counter and trace.
    ++compaction_failures_;
    if (opts_.trace)
      opts_.trace->event("compaction_failed", {{"reason", e.what()}});
    return false;
  }
}

}  // namespace crowdml::store
