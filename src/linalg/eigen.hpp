// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Used by the PCA preprocessing stage (the paper reduces MNIST to 50 and
// CNN features to 100 dimensions with PCA before learning). Jacobi is
// O(d^3) per sweep but robust and dependency-free; our feature dimensions
// (<= a few hundred) make it more than fast enough.
#pragma once

#include "linalg/matrix.hpp"

namespace crowdml::linalg {

struct EigenResult {
  /// Eigenvalues in descending order.
  Vector values;
  /// Eigenvectors as matrix columns, values[i] <-> column i.
  Matrix vectors;
};

/// Eigendecomposition of a symmetric matrix. Asserts symmetry (within tol).
/// Converges when all off-diagonal mass is below `tol * frobenius_norm`.
EigenResult eigen_symmetric(const Matrix& a, double tol = 1e-12,
                            int max_sweeps = 64);

}  // namespace crowdml::linalg
