// crowdml-server — a standalone Crowd-ML parameter server over TCP.
//
// Usage:
//   crowdml-server --port 9000 --classes 10 --dim 50
//       [--lr 50] [--radius 500] [--updater sgd|adagrad|momentum|dualavg] \
//       [--max-iterations N] [--target-error rho] \
//       [--enroll N --keys-out keys.csv]      # pre-enroll N devices
//       [--checkpoint state.bin]              # load + periodically save
//       [--wal-dir DIR]                       # durable store: WAL + atomic
//                                             # snapshots, recovered on start
//       [--fsync always|never|every-N]        # WAL durability (default
//                                             # every-64)
//       [--segment-max-bytes BYTES]           # WAL segment rotation size
//       [--force-fresh]                       # discard unreadable state
//                                             # instead of refusing to start
//       [--engine threads|epoll]              # serving engine (default
//                                             # threads; see docs/SCALING.md)
//       [--model-instances K]                 # draw-and-discard pool of K
//                                             # model instances, each with
//                                             # its own applier + WAL stream
//                                             # (epoll only; K=1 is byte-
//                                             # identical to the single-
//                                             # applier path; docs/SCALING.md)
//       [--io-threads N]                      # epoll engine: I/O loop pool
//       [--checkin-queue-max N]               # epoll engine: admission bound
//                                             # (full queue sheds with a
//                                             # retry_after nack)
//       [--coord-steering]                    # coordinator tier: every
//                                             # checkout/ack carries a pace
//                                             # hint (epoll leader only;
//                                             # docs/SCALING.md)
//       [--coord-classes fast:4,slow:2]       # device classes name:weight,
//                                             # listed order = priority
//       [--coord-target-utilization F]        # steer toward this fraction
//                                             # of measured capacity (0.7)
//       [--coord-min-hint-ms N]               # hint clamp floor (5)
//       [--coord-max-hint-ms N]               # hint clamp ceiling (30000)
//       [--coord-init-rate N]                 # assumed checkins/s before
//                                             # the first measured commit
//       [--secagg-cohort N]                   # secure-aggregation cohort
//                                             # size (0/absent = off;
//                                             # docs/PRIVACY.md)
//       [--secagg-min-survivors N]            # abort threshold (default 2)
//       [--secagg-round-timeout-ms N]         # collect/reveal deadline
//                                             # (default 2000)
//       [--shard-map h1:p1,h2:p2]             # sharded cluster: every
//                                             # shard's device address, in
//                                             # shard-id order (epoll
//                                             # leader only; docs/SHARDING.md)
//       [--shard-id N]                        # this process's index into
//                                             # --shard-map
//       [--shards N]                          # optional cross-check: must
//                                             # equal the map size
//       [--shard-merge-ms N]                  # drive cross-shard merges
//                                             # every N ms (exactly one
//                                             # process per cluster, by
//                                             # convention shard 0; 0 = off)
//       [--role leader|follower]              # replication role (default
//                                             # leader; docs/REPLICATION.md)
//       [--leader-addr host:port]             # follower: the leader's
//                                             # replication port
//       [--repl-port N]                       # leader: replication listener
//       [--repl-ack none|async|quorum]        # leader: what an ack promises
//       [--repl-followers N]                  # leader: configured replicas
//                                             # (sizes the quorum)
//       [--epoch-dir DIR]                     # fencing epoch register
//                                             # (default: the wal dir)
//       [--promote-on-start]                  # leader: bump the epoch
//                                             # (manual promotion;
//                                             # break-glass only)
//       [--lease-ms N]                        # leader: heartbeat lease
//       [--election-timeout-ms N]             # follower: failure detector
//                                             # (0 = manual failover only)
//       [--peers h1:p1,h2:p2]                 # follower: fellow followers'
//                                             # vote endpoints
//       [--vote-port N]                       # follower: vote listener
//       [--max-read-lag N]                    # follower: nack checkouts
//                                             # lagging > N records
//       [--repl-key-file PATH]                # hex HMAC key authenticating
//                                             # all Repl* frames
//       [--advertise-host HOST]               # host peers/devices reach
//                                             # this node on (redirects,
//                                             # vote repl_addr); default
//                                             # 127.0.0.1
//       [--follower-id N]                     # follower: id in leader traces
//       [--report-every SECONDS]              # portal report to stdout
//       [--metrics-out metrics.prom]          # Prometheus text, rewritten
//                                             # at every report interval
//       [--trace-out trace.jsonl]             # protocol lifecycle events
//
// With --wal-dir, every applied checkin is appended to a write-ahead log
// before its ack leaves, and each report interval compacts the log into
// an atomic snapshot; after a crash the server recovers the exact
// pre-crash state (snapshot + WAL tail replay) before accepting
// connections. See docs/DURABILITY.md.
//
// Everything exported via --metrics-out / --trace-out is post-sanitization
// or transport-level (see docs/OBSERVABILITY.md) — publishing it costs no
// extra privacy budget, same argument as the portal report.
//
// Device secrets are written to --keys-out as "device_id,hex_key" rows;
// hand one row to each device (crowdml_device --key-file takes the same
// format). The server runs until the stopping criteria are met or SIGINT.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <thread>

#include "coord/coordinator.hpp"
#include "core/checkpoint.hpp"
#include "core/monitor.hpp"
#include "core/tcp_runtime.hpp"
#include "engine/epoll_server.hpp"
#include "models/logistic_regression.hpp"
#include "multimodel/instance_pool.hpp"
#include "multimodel/pool_replication.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/schedule.hpp"
#include "replica/epoch.hpp"
#include "replica/follower.hpp"
#include "replica/log_shipper.hpp"
#include "secagg/cohort.hpp"
#include "shard/director.hpp"
#include "shard/merge.hpp"
#include "shard/service.hpp"
#include "shard/shard_map.hpp"
#include "store/durable_store.hpp"
#include "tools/flags.hpp"

using namespace crowdml;

namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }

std::unique_ptr<opt::Updater> make_updater(const std::string& kind, double lr,
                                           double radius) {
  if (kind == "adagrad") return std::make_unique<opt::AdaGradUpdater>(lr, radius);
  if (kind == "momentum")
    return std::make_unique<opt::MomentumUpdater>(
        std::make_unique<opt::SqrtDecaySchedule>(lr), radius);
  if (kind == "dualavg")
    return std::make_unique<opt::DualAveragingUpdater>(lr, radius);
  return std::make_unique<opt::SgdUpdater>(
      std::make_unique<opt::SqrtDecaySchedule>(lr), radius);
}

std::string hex_key(const net::SecretKey& key) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : key) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  const tools::ReplicaFlags repl = tools::parse_replica_flags(flags);
  if (!repl.error.empty()) {
    std::fprintf(stderr, "crowdml-server: %s\n", repl.error.c_str());
    return 1;
  }
  const tools::CoordFlags coordf = tools::parse_coord_flags(flags);
  if (!coordf.error.empty()) {
    std::fprintf(stderr, "crowdml-server: %s\n", coordf.error.c_str());
    return 1;
  }
  const tools::SecAggFlags secf = tools::parse_secagg_flags(flags);
  if (!secf.error.empty()) {
    std::fprintf(stderr, "crowdml-server: %s\n", secf.error.c_str());
    return 1;
  }
  const tools::ShardFlags shardf = tools::parse_shard_flags(flags);
  if (!shardf.error.empty()) {
    std::fprintf(stderr, "crowdml-server: %s\n", shardf.error.c_str());
    return 1;
  }
  if (secf.enabled) {
    if (!secf.key_file.empty()) {
      // The whole threat model rests on the server never holding the
      // fleet masking key (docs/PRIVACY.md) — refuse loudly rather than
      // let an operator paste the device command line onto the server.
      std::fprintf(stderr,
                   "crowdml-server: --secagg-key-file is a device flag; the "
                   "server must never hold the fleet masking key\n");
      return 1;
    }
    if (flags.get("role", "leader") == "follower") {
      std::fprintf(stderr,
                   "crowdml-server: --secagg-cohort is a leader feature (a "
                   "follower refuses checkins, so it cannot apply cohort "
                   "sums)\n");
      return 1;
    }
    if (flags.get_int("model-instances", 1) != 1) {
      std::fprintf(stderr,
                   "crowdml-server: --secagg-cohort requires "
                   "--model-instances 1 (cohort sums apply to one model)\n");
      return 1;
    }
  }
  const bool is_follower = repl.role == "follower";
  const auto model_instances = static_cast<std::size_t>(
      std::max<long long>(1, flags.get_int("model-instances", 1)));
  const bool pooled = model_instances > 1;
  const auto port = static_cast<std::uint16_t>(flags.get_int("port", 0));
  const auto classes = static_cast<std::size_t>(flags.get_int("classes", 10));
  const auto dim = static_cast<std::size_t>(flags.get_int("dim", 50));
  const double lr = flags.get_double("lr", 50.0);
  const double radius = flags.get_double("radius", 500.0);

  // Draw-and-discard pool constraints (docs/SCALING.md): the pool rides
  // the epoll engine's hooks, a follower replicates per-instance streams
  // via PoolFollowerSet (not yet wired into this binary; see ROADMAP.md),
  // and the legacy single-model --checkpoint format cannot describe k
  // instances (per-instance state lives in the WAL namespaces instead).
  if (pooled) {
    if (flags.get("engine", "threads") != "epoll") {
      std::fprintf(stderr,
                   "crowdml-server: --model-instances %zu requires --engine "
                   "epoll\n",
                   model_instances);
      return 1;
    }
    if (is_follower) {
      std::fprintf(stderr,
                   "crowdml-server: --model-instances > 1 with --role "
                   "follower is not supported yet (pool failover is a "
                   "coordinated-election problem; see ROADMAP.md)\n");
      return 1;
    }
    if (!flags.get("checkpoint", "").empty()) {
      std::fprintf(stderr,
                   "crowdml-server: --checkpoint is single-model; use "
                   "--wal-dir for a --model-instances pool\n");
      return 1;
    }
  }

  core::ServerConfig cfg;
  cfg.param_dim = classes >= 2 ? classes * dim : dim;
  cfg.num_classes = classes >= 2 ? classes : 1;
  cfg.max_iterations = flags.get_int("max-iterations", -1);
  cfg.target_error = flags.get_double("target-error", -1.0);

  core::Server server(cfg, make_updater(flags.get("updater", "sgd"), lr, radius),
                      rng::Engine(flags.get_int("seed", 1)));

  // Missing state is a fresh start; *unreadable* state is refused unless
  // the operator explicitly discards it — silent data loss must never
  // masquerade as a fresh start.
  const bool force_fresh = flags.get_bool("force-fresh");
  const std::string ckpt_path = flags.get("checkpoint", "");
  std::optional<core::ServerCheckpoint> legacy_cp;
  if (!ckpt_path.empty()) {
    if (!std::filesystem::exists(ckpt_path)) {
      std::printf("no checkpoint at %s; starting fresh\n", ckpt_path.c_str());
    } else {
      try {
        legacy_cp = core::ServerCheckpoint::load_file(ckpt_path);
        server.restore(legacy_cp->w, legacy_cp->version,
                       legacy_cp->device_stats);
        std::printf("restored checkpoint %s at iteration %llu\n",
                    ckpt_path.c_str(),
                    static_cast<unsigned long long>(legacy_cp->version));
      } catch (const std::exception& e) {
        if (!force_fresh) {
          std::fprintf(stderr,
                       "crowdml-server: checkpoint %s exists but cannot be "
                       "loaded (%s); refusing to start — pass --force-fresh "
                       "to discard it\n",
                       ckpt_path.c_str(), e.what());
          return 1;
        }
        std::printf("checkpoint %s unreadable (%s); --force-fresh set, "
                    "starting fresh\n",
                    ckpt_path.c_str(), e.what());
      }
    }
  }

  net::AuthRegistry registry(rng::Engine(flags.get_int("auth-seed", 2)));
  const auto enroll_n = flags.get_int("enroll", 0);
  if (enroll_n > 0) {
    const std::string keys_path = flags.get("keys-out", "device_keys.csv");
    std::ofstream keys(keys_path);
    for (long long i = 0; i < enroll_n; ++i) {
      const auto cred = registry.enroll();
      keys << cred.device_id << ',' << hex_key(cred.key) << '\n';
    }
    std::printf("enrolled %lld devices; secrets in %s\n", enroll_n,
                keys_path.c_str());
  }

  // Observability: metrics go to the process-wide registry so the
  // exposition also carries the always-on hot-path timings (codec, frame
  // I/O, gradient); traces stream to a JSONL file as events happen.
  const std::string metrics_path = flags.get("metrics-out", "");
  const std::string trace_path = flags.get("trace-out", "");
  std::unique_ptr<obs::TraceSink> trace;
  if (!trace_path.empty())
    trace = std::make_unique<obs::TraceSink>(trace_path);

  // Durable store: recover the exact pre-crash state (newest snapshot +
  // WAL tail replay) and install the applied-checkin hook — both strictly
  // before the TCP listener exists, so no device ever talks to a server
  // that has not finished recovering.
  std::unique_ptr<store::DurableStore> durable;
  // Sharded deployments namespace each shard's durability under one
  // --wal-dir (docs/SHARDING.md): shard i of k recovers from and appends
  // to <wal-dir>/shard-NNN, so co-located shards never share a log.
  const std::string base_wal_dir = flags.get("wal-dir", "");
  const std::string wal_dir =
      shardf.enabled ? shard::shard_wal_dir(base_wal_dir, shardf.shard_id,
                                            shardf.map.size())
                     : base_wal_dir;
  store::DurableStoreOptions sopts;
  try {
    sopts.wal.fsync = store::parse_fsync_policy(
        flags.get("fsync", "every-64"), &sopts.wal.fsync_every);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "crowdml-server: %s\n", e.what());
    return 1;
  }
  sopts.wal.segment_max_bytes =
      static_cast<std::size_t>(flags.get_int("segment-max-bytes", 4 << 20));
  sopts.wal.metrics = &obs::default_registry();
  sopts.trace = trace.get();
  // Cross-shard merges are logged as opaque MergeRecords; recovery (and a
  // follower replaying this shard's WAL) must re-apply them as overwrites.
  // Harmless when unsharded: no MergeRecord ever appears in the log. The
  // pool path below overwrites this with its own overwrite replay.
  shard::install_merge_replay(sopts);
  // A follower's store is owned by replica::Follower below (it recovers,
  // applies, and compacts through it); the leader path owns it here. A
  // pool owns k per-instance stores inside ModelInstancePool instead.
  if (!wal_dir.empty() && !is_follower && !pooled) {
    const auto recover_into = [&](core::Server& srv) {
      durable = std::make_unique<store::DurableStore>(wal_dir, sopts);
      const auto info = durable->recover(srv);
      std::printf(
          "recovered state: iteration %llu (snapshot v%llu%s, %llu wal "
          "records replayed%s%s)\n",
          static_cast<unsigned long long>(info.recovered_version),
          static_cast<unsigned long long>(info.snapshot_version),
          info.snapshot_loaded ? "" : " [none]",
          static_cast<unsigned long long>(info.records_replayed),
          info.torn_tail_truncated ? ", torn tail truncated" : "",
          info.corrupt_snapshots_skipped > 0 ? ", corrupt snapshot skipped"
                                             : "");
    };
    try {
      recover_into(server);
    } catch (const store::WalError& e) {
      if (!force_fresh) {
        std::fprintf(stderr,
                     "crowdml-server: wal recovery from %s failed (%s); "
                     "refusing to start — pass --force-fresh to set the "
                     "corrupt log aside\n",
                     wal_dir.c_str(), e.what());
        return 1;
      }
      // Preserve the evidence rather than deleting it, then start over.
      const std::string aside = wal_dir + ".corrupt";
      try {
        std::filesystem::remove_all(aside);
        std::filesystem::rename(wal_dir, aside);
      } catch (const std::filesystem::filesystem_error& fe) {
        std::fprintf(stderr,
                     "crowdml-server: cannot set corrupt wal %s aside "
                     "(%s)\n",
                     wal_dir.c_str(), fe.what());
        return 1;
      }
      std::printf("wal recovery failed (%s); --force-fresh set, corrupt "
                  "state moved to %s\n",
                  e.what(), aside.c_str());
      durable.reset();
      // The failed attempt may have replayed a prefix; reset to the
      // legacy checkpoint that loaded above (if any) before recovering
      // into the now-empty store — only the WAL directory was corrupt,
      // so the checkpoint's state must not be discarded with it.
      if (legacy_cp)
        server.restore(legacy_cp->w, legacy_cp->version,
                       legacy_cp->device_stats);
      else
        server.restore(linalg::Vector(cfg.param_dim, 0.0), 0, {});
      try {
        recover_into(server);
      } catch (const store::WalError& e2) {
        std::fprintf(stderr,
                     "crowdml-server: cannot reinitialize durable store "
                     "in %s (%s)\n",
                     wal_dir.c_str(), e2.what());
        return 1;
      }
    }
    durable->attach(server);
  }

  // Replication plane (docs/REPLICATION.md). A follower recovers from its
  // local replica store, then streams the leader's WAL; the serving
  // engine below redirects checkins to the leader. A replicating leader
  // durably loads/bumps its fencing epoch and ships its WAL on a
  // dedicated port. The engine handles are declared here because the
  // follower's on_applied republishes the epoll snapshot board.
  // Declared before the engines: the coordinator must outlive the epoll
  // server that steers through it (reverse destruction order).
  // Secure-aggregation cohort manager (docs/PRIVACY.md): completed
  // cohorts apply through the ordinary checkin path, so the WAL records
  // one synthetic cohort checkin per round and recovery is unchanged.
  // Declared before the engines (it must outlive them).
  std::unique_ptr<secagg::CohortManager> cohort;
  if (secf.enabled) {
    secagg::CohortConfig scfg;
    scfg.cohort_size = static_cast<std::size_t>(secf.cohort);
    scfg.min_survivors = static_cast<std::size_t>(secf.min_survivors);
    scfg.round_timeout_ms = secf.round_timeout_ms;
    scfg.param_dim = cfg.param_dim;
    scfg.num_classes = cfg.num_classes;
    scfg.metrics = &obs::default_registry();
    scfg.trace = trace.get();
    cohort = std::make_unique<secagg::CohortManager>(
        scfg, [&server](const net::CheckinMessage& m) {
          return server.handle_checkin(m);
        });
  }

  std::optional<coord::Coordinator> coordinator;
  std::unique_ptr<core::TcpCrowdServer> tcp;
  std::unique_ptr<engine::EpollCrowdServer> epoll;
  std::unique_ptr<replica::Follower> follower;
  std::unique_ptr<replica::LogShipper> shipper;
  std::unique_ptr<multimodel::ModelInstancePool> pool;
  std::unique_ptr<multimodel::PoolShipperSet> shipper_set;
  // Sharding (docs/SHARDING.md): the merge-plane handler answers
  // ShardPull/ShardMergePush on this shard's applier thread; the
  // director (one process per cluster, by convention shard 0 with
  // --shard-merge-ms > 0) drives periodic cross-shard merges. Declared
  // before the engine so they outlive it.
  std::unique_ptr<shard::ShardService> shard_service;
  std::unique_ptr<shard::MergeDirector> merge_director;
  std::uint64_t repl_epoch = 0;

  // Shared replication-plane HMAC key (empty = unauthenticated).
  replica::ReplKey repl_key;
  if (!repl.repl_key_file.empty()) {
    try {
      repl_key = replica::load_repl_key_file(repl.repl_key_file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "crowdml-server: %s\n", e.what());
      return 1;
    }
  }
  std::string peers_error;
  const std::vector<replica::PeerAddr> peers =
      replica::parse_peer_list(repl.peers, &peers_error);
  if (!peers_error.empty()) {
    std::fprintf(stderr, "crowdml-server: --peers: %s\n",
                 peers_error.c_str());
    return 1;
  }

  if (is_follower) {
    replica::FollowerOptions fopts;
    fopts.leader_host = repl.leader_host;
    fopts.leader_port = repl.leader_port;
    fopts.follower_id =
        static_cast<std::uint64_t>(flags.get_int("follower-id", 1));
    fopts.store = sopts;
    fopts.epoch_dir = repl.epoch_dir;
    fopts.trace = trace.get();
    fopts.on_applied = [&epoll] {
      if (epoll) epoll->republish();
    };
    fopts.detector.election_timeout_min_ms =
        static_cast<int>(repl.election_timeout_ms);
    fopts.vote_port = repl.vote_port;
    fopts.peers = peers;
    fopts.advertise_host = repl.advertise_host;
    fopts.key = repl_key;
    fopts.rng_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    fopts.on_leader_changed = [&epoll](const std::string& addr) {
      if (epoll) epoll->set_checkin_redirect(addr);
    };
    try {
      follower = std::make_unique<replica::Follower>(server, wal_dir, fopts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "crowdml-server: follower init failed: %s\n",
                   e.what());
      return 1;
    }
    repl_epoch = follower->epoch();
    const auto& info = follower->recovery_info();
    std::printf(
        "recovered state: iteration %llu (snapshot v%llu%s, %llu wal "
        "records replayed)\n",
        static_cast<unsigned long long>(info.recovered_version),
        static_cast<unsigned long long>(info.snapshot_version),
        info.snapshot_loaded ? "" : " [none]",
        static_cast<unsigned long long>(info.records_replayed));
  } else if (repl.repl_enabled) {
    try {
      replica::EpochStore estore(repl.epoch_dir.empty() ? wal_dir
                                                        : repl.epoch_dir);
      repl_epoch = estore.load();
      // First boot starts at epoch 1; promotion bumps whatever was
      // promised before. Durable before the shipper exists: a frame
      // stamped with this epoch must survive our own crash.
      if (repl.promote_on_start || repl_epoch == 0) ++repl_epoch;
      estore.store(repl_epoch);
    } catch (const replica::EpochError& e) {
      std::fprintf(stderr, "crowdml-server: %s\n", e.what());
      return 1;
    }
  }

  // Serving engine: the legacy thread-per-connection runtime stays the
  // default; --engine epoll selects the event-loop engine with snapshot
  // checkouts and group-committed checkins (docs/SCALING.md).
  const std::string engine_kind = flags.get("engine", "threads");
  const auto io_threads =
      static_cast<std::size_t>(flags.get_int("io-threads", 1));
  const auto queue_max =
      static_cast<std::size_t>(flags.get_int("checkin-queue-max", 1024));
  std::uint16_t bound_port = 0;
  if (engine_kind == "epoll") {
    if (repl.repl_enabled && !pooled) {
      replica::ShipperOptions shopts;
      shopts.port = repl.repl_port;
      shopts.ack_mode = *replica::parse_repl_ack_mode(repl.ack_mode);
      shopts.quorum_follower_acks = replica::quorum_follower_acks_for(
          static_cast<std::size_t>(repl.followers));
      shopts.trace = trace.get();
      shopts.key = repl_key;
      // Leases: heartbeat at a third of the lease so one lost frame
      // never looks like a dead leader. The advertised redirect target
      // needs the device port, known only post-bind — it is injected
      // below via set_advertise_leader_addr once the engine is up.
      shopts.lease_ms = static_cast<std::uint32_t>(repl.lease_ms);
      shopts.heartbeat_interval_ms =
          std::max(1, static_cast<int>(repl.lease_ms / 3));
      try {
        shipper = std::make_unique<replica::LogShipper>(server, *durable,
                                                        repl_epoch, shopts);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "crowdml-server: %s\n", e.what());
        return 1;
      }
      std::printf(
          "replication: shipping on 127.0.0.1:%u (epoch %llu, ack=%s, "
          "quorum=%zu of %lld followers)\n",
          shipper->port(), static_cast<unsigned long long>(repl_epoch),
          repl.ack_mode.c_str(), shopts.quorum_follower_acks, repl.followers);
    }
    if (pooled) {
      // Draw-and-discard pool: k servers, k appliers, k WAL namespaces
      // under --wal-dir. Construction recovers every instance before the
      // engine binds — same no-traffic-before-recovery rule as above.
      const auto updater_kind = flags.get("updater", "sgd");
      const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
      const auto factory = [&](std::size_t i) {
        return std::make_unique<core::Server>(
            cfg, make_updater(updater_kind, lr, radius),
            rng::Engine(seed).split(i));
      };
      multimodel::PoolOptions popts;
      popts.instances = model_instances;
      popts.seed = seed;
      popts.checkin_queue_max = queue_max;
      popts.wal_dir = wal_dir;
      popts.store = sopts;
      popts.metrics = &obs::default_registry();
      popts.trace = trace.get();
      if (coordf.enabled) {
        // Pooled steering: one Coordinator per instance, owned by the
        // applier whose commits it measures. The engine-level coordinator
        // hook stays null (checkout hints are advisory; the consuming
        // checkin-ack hints are the load-bearing pacing mechanism).
        coord::CoordConfig ccfg;
        ccfg.steering.target_utilization = coordf.target_utilization;
        ccfg.steering.init_rate_per_s = coordf.init_rate;
        ccfg.steering.min_hint_ms =
            static_cast<std::uint32_t>(coordf.min_hint_ms);
        ccfg.steering.max_hint_ms =
            static_cast<std::uint32_t>(coordf.max_hint_ms);
        ccfg.steering.queue_max = queue_max;
        ccfg.steering.batch_max = engine::EngineConfig{}.checkin_batch_max;
        if (secf.enabled)
          ccfg.steering.deadline_ceiling_ms = static_cast<std::uint32_t>(
              std::max<long long>(1, secf.round_timeout_ms / 2));
        ccfg.metrics = &obs::default_registry();
        const coord::DeviceClassTable coord_classes = coordf.classes;
        popts.coordinator_factory = [ccfg, coord_classes](std::size_t) {
          return std::make_unique<coord::Coordinator>(ccfg, coord_classes);
        };
      }
      try {
        pool = std::make_unique<multimodel::ModelInstancePool>(
            registry, factory, popts);
      } catch (const store::WalError& e) {
        std::fprintf(stderr,
                     "crowdml-server: pool recovery from %s failed (%s); "
                     "set the corrupt instance directory aside and "
                     "restart\n",
                     wal_dir.c_str(), e.what());
        return 1;
      }
      if (!wal_dir.empty())
        for (std::size_t i = 0; i < pool->instances(); ++i)
          std::printf(
              "instance %zu: recovered iteration %llu (%llu wal records "
              "replayed)\n",
              i,
              static_cast<unsigned long long>(pool->server(i).version()),
              static_cast<unsigned long long>(
                  pool->store(i)->recovery_info().records_replayed));
      if (repl.repl_enabled) {
        replica::ShipperOptions shopts;
        shopts.port = repl.repl_port;
        shopts.ack_mode = *replica::parse_repl_ack_mode(repl.ack_mode);
        shopts.quorum_follower_acks = replica::quorum_follower_acks_for(
            static_cast<std::size_t>(repl.followers));
        shopts.trace = trace.get();
        shopts.key = repl_key;
        shopts.lease_ms = static_cast<std::uint32_t>(repl.lease_ms);
        shopts.heartbeat_interval_ms =
            std::max(1, static_cast<int>(repl.lease_ms / 3));
        try {
          // One stream per instance on repl_port..repl_port+k-1, each
          // tagged with its instance id; installs the pool's on_commit
          // notify/quorum chain, so it must precede pool->start().
          shipper_set = std::make_unique<multimodel::PoolShipperSet>(
              *pool, repl_epoch, shopts);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "crowdml-server: %s\n", e.what());
          return 1;
        }
        std::printf(
            "replication: shipping %zu instance streams on "
            "127.0.0.1:%u..%u (epoch %llu, ack=%s)\n",
            pool->instances(), shipper_set->port(0),
            shipper_set->port(pool->instances() - 1),
            static_cast<unsigned long long>(repl_epoch),
            repl.ack_mode.c_str());
      }
      pool->start();
    }
    engine::EngineConfig ecfg;
    ecfg.port = port;
    ecfg.io_threads = io_threads;
    ecfg.checkin_queue_max = queue_max;
    ecfg.metrics = &obs::default_registry();
    ecfg.trace = trace.get();
    if (coordf.enabled && !pool) {
      coord::CoordConfig ccfg;
      ccfg.steering.target_utilization = coordf.target_utilization;
      ccfg.steering.init_rate_per_s = coordf.init_rate;
      ccfg.steering.min_hint_ms =
          static_cast<std::uint32_t>(coordf.min_hint_ms);
      ccfg.steering.max_hint_ms =
          static_cast<std::uint32_t>(coordf.max_hint_ms);
      ccfg.steering.queue_max = queue_max;
      ccfg.steering.batch_max = ecfg.checkin_batch_max;
      // Round-deadline awareness: never steer a device past half the
      // secagg round timeout, or paced devices would miss their cohort
      // deadlines and drag every round into recovery.
      if (secf.enabled)
        ccfg.steering.deadline_ceiling_ms = static_cast<std::uint32_t>(
            std::max<long long>(1, secf.round_timeout_ms / 2));
      ccfg.metrics = &obs::default_registry();
      coordinator.emplace(ccfg, coordf.classes);
      ecfg.coordinator = &*coordinator;
    }
    ecfg.secagg = cohort.get();
    if (shardf.enabled) {
      // Merge plane: this shard answers ShardPull/ShardMergePush (sealed
      // with the replication key) on its applier thread; a merge
      // overwrite is WAL'd as a MergeRecord and group-committed exactly
      // like a checkin batch.
      shard::ShardServiceConfig scfg;
      scfg.shard_id = shardf.shard_id;
      scfg.key = repl_key;
      scfg.store = durable.get();
      scfg.metrics = &obs::default_registry();
      scfg.trace = trace.get();
      shard_service = std::make_unique<shard::ShardService>(scfg, server);
      ecfg.shard = shard_service.get();
      if (shardf.map.size() > 1) {
        // Device partitioning: checkins for a device this shard does not
        // own are nacked pre-application with "wrong shard; shard=<addr>"
        // so the session replays at the owner. With one shard the hook
        // stays null and every frame is byte-identical to unsharded.
        const shard::ShardMap map = shardf.map;
        const std::size_t self = shardf.shard_id;
        ecfg.shard_route =
            [map, self](std::uint64_t device_id) -> std::optional<std::string> {
          const std::size_t owner = map.shard_of(device_id);
          if (owner == self) return std::nullopt;
          return map.addr(owner);
        };
      }
    }
    if (pool) multimodel::wire_engine(*pool, ecfg);
    if (is_follower) {
      ecfg.checkin_redirect = repl.leader_addr;
      if (repl.max_read_lag > 0) {
        // Bounded-staleness reads: checkouts on a replica lagging more
        // than this many records behind the leader's committed watermark
        // are nacked with a retry hint instead of served stale.
        replica::Follower* f = follower.get();
        ecfg.read_lag = [f] { return f->read_lag(); };
        ecfg.max_read_lag = static_cast<std::uint64_t>(repl.max_read_lag);
      }
    }
    if (durable) {
      // One fsync per drained batch instead of one per checkin; acks are
      // held until the batch commit succeeds, so acked => durable holds.
      // With a quorum shipper, acks additionally wait for a majority of
      // followers to durably append the batch (acked => replicated).
      durable->set_group_commit(true);
      store::DurableStore* d = durable.get();
      replica::LogShipper* s = shipper.get();
      ecfg.group_commit = [d, s] {
        if (!d->commit_group()) return false;
        if (!s) return true;
        s->notify_committed();
        return s->await_quorum(d->wal().last_seq());
      };
    }
    // A pool's engine still needs a core::Server for its (idle) board;
    // instance 0 stands in — checkouts and checkins never touch it once
    // the pool hooks are wired.
    epoll = std::make_unique<engine::EpollCrowdServer>(
        pool ? pool->server(0) : server, registry, ecfg);
    bound_port = epoll->port();
    if (shipper)
      shipper->set_advertise_leader_addr(repl.advertise_host + ":" +
                                         std::to_string(bound_port));
    if (shipper_set)
      for (std::size_t i = 0; i < shipper_set->size(); ++i)
        shipper_set->shipper(i).set_advertise_leader_addr(
            repl.advertise_host + ":" + std::to_string(bound_port));
    if (follower) {
      follower->set_device_addr(repl.advertise_host + ":" +
                                std::to_string(bound_port));
      follower->start();
      if (repl.election_timeout_ms > 0)
        std::printf(
            "failover: election timeout %lldms, vote listener on "
            "127.0.0.1:%u, %zu peer(s)\n",
            repl.election_timeout_ms, follower->vote_port(), peers.size());
    }
    if (shardf.enabled && shardf.merge_ms > 0) {
      // Cross-shard merge driver. Exactly one process per cluster should
      // set --shard-merge-ms > 0 (by convention shard 0); every other
      // shard leaves it at 0 and only answers the merge plane.
      shard::MergeDirectorConfig dcfg;
      dcfg.map = shardf.map;
      dcfg.key = repl_key;
      dcfg.interval_ms = static_cast<std::uint32_t>(shardf.merge_ms);
      dcfg.metrics = &obs::default_registry();
      dcfg.trace = trace.get();
      merge_director = std::make_unique<shard::MergeDirector>(dcfg);
      merge_director->start();
      std::printf("shard merge director: %zu shard(s), every %lldms\n",
                  shardf.map.size(), shardf.merge_ms);
    }
  } else if (engine_kind == "threads") {
    core::TcpServerConfig tcp_cfg;
    tcp_cfg.port = port;
    tcp_cfg.metrics = &obs::default_registry();
    tcp_cfg.trace = trace.get();
    tcp_cfg.secagg = cohort.get();
    tcp = std::make_unique<core::TcpCrowdServer>(server, registry, tcp_cfg);
    bound_port = tcp->port();
  } else {
    std::fprintf(stderr,
                 "crowdml-server: unknown --engine %s (threads|epoll)\n",
                 engine_kind.c_str());
    return 1;
  }
  // The effective configuration, once, so a log file pins down exactly
  // what this process is running with (flags have defaults; the port may
  // have been ephemeral).
  std::printf(
      "config: engine=%s role=%s port=%u dim=%zu classes=%zu updater=%s lr=%g "
      "radius=%g max-iterations=%lld target-error=%g wal=%s fsync=%s "
      "io-threads=%zu checkin-queue-max=%zu model-instances=%zu "
      "report-every=%gs\n",
      engine_kind.c_str(), repl.role.c_str(), bound_port, dim, classes,
      flags.get("updater", "sgd").c_str(), lr, radius,
      static_cast<long long>(cfg.max_iterations), cfg.target_error,
      wal_dir.empty() ? "(none)" : wal_dir.c_str(),
      wal_dir.empty() ? "-" : flags.get("fsync", "every-64").c_str(),
      io_threads, queue_max, model_instances,
      flags.get_double("report-every", 10.0));
  if (coordinator)
    std::printf(
        "config: coord-steering=on classes=%s target-utilization=%g "
        "min-hint-ms=%lld max-hint-ms=%lld init-rate=%g\n",
        coordinator->classes().describe().c_str(), coordf.target_utilization,
        coordf.min_hint_ms, coordf.max_hint_ms, coordf.init_rate);
  if (cohort)
    std::printf(
        "config: secagg=on cohort=%lld min-survivors=%lld "
        "round-timeout-ms=%lld\n",
        secf.cohort, secf.min_survivors, secf.round_timeout_ms);
  if (shardf.enabled)
    std::printf("config: shard-id=%zu shards=%zu shard-merge-ms=%lld\n",
                shardf.shard_id, shardf.map.size(), shardf.merge_ms);
  std::printf("crowdml-server listening on 127.0.0.1:%u (dim=%zu classes=%zu)\n",
              bound_port, dim, classes);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // Persistence failures must never take a serving loop down: the WAL (if
  // any) still guarantees recovery, so log the failure and keep serving.
  const auto save_checkpoint = [&]() {
    if (ckpt_path.empty()) return;
    try {
      core::checkpoint_server(server).save_file(ckpt_path);
    } catch (const std::exception& e) {
      std::printf("checkpoint save failed (%s); continuing\n", e.what());
    }
  };

  const double report_every = flags.get_double("report-every", 10.0);
  auto last_report = std::chrono::steady_clock::now();
  bool promotion_done = false;
  while (!g_stop.load() && !(pool ? pool->stopped() : server.stopped())) {
    if (follower && follower->fatal()) {
      std::fprintf(stderr,
                   "crowdml-server: follower replication hit a fatal local "
                   "error; restart to re-recover\n");
      break;
    }
    if (follower && follower->promoted() && !promotion_done) {
      // Leader-role handoff, zero-operator. Ordering matters at every
      // step: the replication thread must be gone before its store is
      // attached to the serving path; the board must be republished by
      // the applier's new owner *before* checkins are admitted (single-
      // publisher contract); and the shipper binds the just-freed vote
      // port — the address peers were told to replicate from when they
      // granted their votes.
      promotion_done = true;
      const std::uint64_t won_epoch = follower->epoch();
      const std::uint16_t new_repl_port = follower->vote_port();
      follower->shutdown();
      store::DurableStore& fstore = follower->store();
      fstore.set_group_commit(true);
      fstore.attach(server);
      replica::ShipperOptions shopts;
      shopts.port = new_repl_port;
      shopts.ack_mode = replica::ReplAckMode::kQuorum;
      shopts.quorum_follower_acks =
          replica::quorum_follower_acks_for(peers.size());
      shopts.trace = trace.get();
      shopts.key = repl_key;
      // The ex-followers' detectors still run on --election-timeout-ms;
      // heartbeat well inside it so the new regime is stable.
      shopts.lease_ms = static_cast<std::uint32_t>(
          std::max<long long>(1, repl.election_timeout_ms / 2));
      shopts.heartbeat_interval_ms = std::max(
          1, static_cast<int>(repl.election_timeout_ms / 6));
      shopts.advertise_leader_addr =
          repl.advertise_host + ":" + std::to_string(bound_port);
      try {
        shipper = std::make_unique<replica::LogShipper>(server, fstore,
                                                        won_epoch, shopts);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "crowdml-server: promotion failed binding replication "
                     "port %u: %s\n",
                     new_repl_port, e.what());
        break;
      }
      store::DurableStore* fs = &fstore;
      replica::LogShipper* ns = shipper.get();
      epoll->set_group_commit([fs, ns] {
        if (!fs->commit_group()) return false;
        ns->notify_committed();
        return ns->await_quorum(fs->wal().last_seq());
      });
      epoll->republish();
      epoll->set_checkin_redirect("");
      std::printf(
          "election won: serving as leader (epoch %llu, replication on "
          "127.0.0.1:%u, quorum=%zu of %zu peers)\n",
          static_cast<unsigned long long>(won_epoch), shipper->port(),
          shopts.quorum_follower_acks, peers.size());
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_report).count() >= report_every) {
      if (pool) {
        std::printf("pool: %zu instances, total iteration %llu "
                    "(overwrites applied %lld, dropped %lld)\n",
                    pool->instances(),
                    static_cast<unsigned long long>(pool->total_version()),
                    pool->overwrites_applied(), pool->overwrites_dropped());
        for (std::size_t i = 0; i < pool->instances(); ++i)
          std::fputs(core::portal_report(pool->server(i)).c_str(), stdout);
      } else {
        std::fputs(core::portal_report(server).c_str(), stdout);
      }
      if (cohort) {
        cohort->tick();  // advance round deadlines even through a lull
        std::printf(
            "secagg: rounds sealed %lld, completed %lld (recovered %lld), "
            "aborted %lld, masked checkins %lld\n",
            cohort->rounds_sealed(), cohort->rounds_completed(),
            cohort->rounds_recovered(), cohort->rounds_aborted(),
            cohort->masked_checkins());
      }
      if (follower)
        std::printf(
            "replicated through seq %llu (epoch %llu, connected=%d, stale "
            "frames refused %lld, snapshots installed %lld)\n",
            static_cast<unsigned long long>(follower->applied_seq()),
            static_cast<unsigned long long>(follower->epoch()),
            follower->connected() ? 1 : 0, follower->stale_frames_refused(),
            follower->snapshots_installed());
      if (shipper)
        std::printf("replication: %zu follower session(s), epoch %llu%s\n",
                    shipper->follower_sessions(),
                    static_cast<unsigned long long>(shipper->epoch()),
                    shipper->fenced() ? " [FENCED: a newer leader exists]"
                                      : "");
      std::fflush(stdout);
      last_report = now;
      save_checkpoint();
      if (durable && !durable->compact(server))
        std::printf("snapshot compaction failed; wal intact, continuing\n");
      if (pool && !wal_dir.empty())
        for (std::size_t i = 0; i < pool->instances(); ++i)
          if (!pool->store(i)->compact(pool->server(i)))
            std::printf("instance %zu compaction failed; wal intact, "
                        "continuing\n",
                        i);
      if (follower && !follower->compact())
        std::printf("snapshot compaction failed; wal intact, continuing\n");
      if (!metrics_path.empty())
        obs::write_metrics_file(obs::default_registry(), metrics_path);
    }
  }

  save_checkpoint();
  if (!ckpt_path.empty()) std::printf("checkpoint saved to %s\n", ckpt_path.c_str());
  if (durable) {
    durable->sync();  // flush any WAL records the fsync policy buffered
    if (durable->compact(server))
      std::printf("durable state compacted in %s at iteration %llu\n",
                  durable->dir().c_str(),
                  static_cast<unsigned long long>(server.version()));
  }
  if (follower) {
    // Stop replicating before the engine goes away (on_applied
    // republishes its board), then leave a fresh snapshot behind so the
    // next start — possibly a promotion — recovers instantly.
    follower->shutdown();
    follower->compact();
    std::printf("replicated through seq %llu (epoch %llu) at shutdown\n",
                static_cast<unsigned long long>(follower->applied_seq()),
                static_cast<unsigned long long>(follower->epoch()));
  }
  if (!pool) std::fputs(core::portal_report(server).c_str(), stdout);
  // Stop driving merges before the engine goes away: a mid-flight round
  // finishes or times out against still-live applier threads.
  if (merge_director) {
    merge_director->shutdown();
    std::printf("merge director: %llu round(s) completed, %llu skipped\n",
                static_cast<unsigned long long>(
                    merge_director->rounds_completed()),
                static_cast<unsigned long long>(
                    merge_director->rounds_skipped()));
  }
  if (tcp) tcp->shutdown();
  // For a pool the engine's shutdown_drain drains every instance queue
  // while the event loops are still alive, then pool appliers join.
  if (epoll) epoll->shutdown();
  if (pool) {
    for (std::size_t i = 0; i < pool->instances(); ++i) {
      if (!wal_dir.empty() && pool->store(i)->compact(pool->server(i)))
        std::printf("instance %zu compacted at iteration %llu\n", i,
                    static_cast<unsigned long long>(
                        pool->server(i).version()));
      std::fputs(core::portal_report(pool->server(i)).c_str(), stdout);
    }
    std::printf("pool total iteration %llu (overwrites applied %lld, "
                "dropped %lld)\n",
                static_cast<unsigned long long>(pool->total_version()),
                pool->overwrites_applied(), pool->overwrites_dropped());
  }
  // After the appliers are drained: no more quorum waits, safe to drop
  // the shipping plane.
  if (shipper) shipper->shutdown();
  if (shipper_set) shipper_set->shutdown();
  if (!metrics_path.empty()) {
    obs::write_metrics_file(obs::default_registry(), metrics_path);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (trace) trace->flush();
  return 0;
}
