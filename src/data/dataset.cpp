#include "data/dataset.hpp"

#include <cassert>

#include "rng/distributions.hpp"

namespace crowdml::data {

Dataset split_train_test(SampleSet pool, double test_fraction,
                         std::size_t num_classes, rng::Engine& eng) {
  assert(test_fraction >= 0.0 && test_fraction < 1.0);
  Dataset ds;
  ds.num_classes = num_classes;
  ds.feature_dim = pool.empty() ? 0 : pool.front().x.size();

  const auto order = rng::shuffled_indices(eng, pool.size());
  const auto test_n = static_cast<std::size_t>(
      test_fraction * static_cast<double>(pool.size()));
  ds.test.reserve(test_n);
  ds.train.reserve(pool.size() - test_n);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    auto& dst = i < test_n ? ds.test : ds.train;
    dst.push_back(std::move(pool[order[i]]));
  }
  return ds;
}

std::vector<SampleSet> shard_across_devices(const SampleSet& samples,
                                            std::size_t num_devices,
                                            rng::Engine& eng) {
  assert(num_devices >= 1);
  std::vector<SampleSet> shards(num_devices);
  const auto order = rng::shuffled_indices(eng, samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i)
    shards[i % num_devices].push_back(samples[order[i]]);
  return shards;
}

std::vector<std::size_t> class_histogram(const SampleSet& samples,
                                         std::size_t num_classes) {
  std::vector<std::size_t> hist(num_classes, 0);
  for (const Sample& s : samples) {
    const int y = s.label();
    assert(y >= 0 && static_cast<std::size_t>(y) < num_classes);
    ++hist[static_cast<std::size_t>(y)];
  }
  return hist;
}

FeatureStats feature_stats(const SampleSet& samples) {
  FeatureStats st;
  if (samples.empty()) return st;
  for (const Sample& s : samples) {
    const double l1 = linalg::norm1(s.x);
    st.mean_l1_norm += l1;
    st.max_l1_norm = std::max(st.max_l1_norm, l1);
    st.mean_l2_norm += linalg::norm2(s.x);
  }
  const auto n = static_cast<double>(samples.size());
  st.mean_l1_norm /= n;
  st.mean_l2_norm /= n;
  return st;
}

void l1_normalize_features(SampleSet& samples) {
  for (Sample& s : samples) {
    const double n = linalg::norm1(s.x);
    if (n > 0.0) linalg::scal(1.0 / n, s.x);
  }
}

}  // namespace crowdml::data
