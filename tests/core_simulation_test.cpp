// Tests for the discrete-event Crowd-ML driver: determinism, convergence,
// delays, loss, churn, and the paper's iteration accounting.
#include <gtest/gtest.h>

#include "core/crowd_simulation.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"

using namespace crowdml;
using core::CrowdSimConfig;
using core::CrowdSimulation;

namespace {

struct SmallProblem {
  data::Dataset ds;
  models::MulticlassLogisticRegression model{4, 10, 0.0};

  SmallProblem() {
    rng::Engine eng(1234);
    data::MixtureSpec spec;
    spec.num_classes = 4;
    spec.raw_dim = 40;
    spec.latent_dim = 15;
    spec.pca_dim = 10;
    spec.separation = 3.5;
    spec.train_size = 2000;
    spec.test_size = 500;
    ds = data::generate_mixture(spec, eng);
  }

  core::SampleSource source(std::size_t devices, std::uint64_t seed) const {
    rng::Engine eng(seed);
    return core::make_cycling_source(
        data::shard_across_devices(ds.train, devices, eng));
  }
};

CrowdSimConfig fast_config() {
  CrowdSimConfig cfg;
  cfg.num_devices = 20;
  cfg.minibatch_size = 1;
  cfg.max_total_samples = 8000;
  cfg.eval_points = 8;
  cfg.learning_rate_c = 50.0;
  cfg.projection_radius = 500.0;
  cfg.seed = 9;
  return cfg;
}

}  // namespace

TEST(CyclingSource, DealsShardInOrderAndCycles) {
  models::SampleSet shard;
  for (int i = 0; i < 3; ++i)
    shard.emplace_back(linalg::Vector{static_cast<double>(i)}, 0.0);
  auto src = core::make_cycling_source({shard});
  EXPECT_DOUBLE_EQ((*src(0)).x[0], 0.0);
  EXPECT_DOUBLE_EQ((*src(0)).x[0], 1.0);
  EXPECT_DOUBLE_EQ((*src(0)).x[0], 2.0);
  EXPECT_DOUBLE_EQ((*src(0)).x[0], 0.0);  // cycles
}

TEST(CyclingSource, EmptyShardEndsStream) {
  auto src = core::make_cycling_source({models::SampleSet{}});
  EXPECT_FALSE(src(0).has_value());
}

TEST(CrowdSimulation, LearnsWithoutPrivacyOrDelay) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  ASSERT_FALSE(res.test_error.empty());
  EXPECT_GT(res.test_error.points().front().y, 0.5);  // random start
  EXPECT_LT(res.final_test_error, 0.10);
  EXPECT_EQ(res.samples_generated, cfg.max_total_samples);
  EXPECT_GT(res.server_updates, 0u);
}

TEST(CrowdSimulation, DeterministicGivenSeed) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  cfg.budget = privacy::PrivacyBudget::gradient_dominated(5.0);
  cfg.delay = std::make_shared<sim::UniformDelay>(3.0);
  CrowdSimulation sim1(p.model, cfg);
  CrowdSimulation sim2(p.model, cfg);
  const auto r1 = sim1.run(p.source(cfg.num_devices, 1), p.ds.test);
  const auto r2 = sim2.run(p.source(cfg.num_devices, 1), p.ds.test);
  ASSERT_EQ(r1.test_error.size(), r2.test_error.size());
  for (std::size_t i = 0; i < r1.test_error.size(); ++i)
    EXPECT_DOUBLE_EQ(r1.test_error.points()[i].y, r2.test_error.points()[i].y);
  EXPECT_EQ(r1.server_updates, r2.server_updates);
}

TEST(CrowdSimulation, DifferentSeedsProduceDifferentRuns) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  cfg.budget = privacy::PrivacyBudget::gradient_dominated(5.0);
  CrowdSimulation sim1(p.model, cfg);
  cfg.seed = 10;
  CrowdSimulation sim2(p.model, cfg);
  const auto r1 = sim1.run(p.source(cfg.num_devices, 1), p.ds.test);
  const auto r2 = sim2.run(p.source(cfg.num_devices, 1), p.ds.test);
  bool any_diff = false;
  for (std::size_t i = 0; i < r1.test_error.size() && !any_diff; ++i)
    any_diff = r1.test_error.points()[i].y != r2.test_error.points()[i].y;
  EXPECT_TRUE(any_diff);
}

TEST(CrowdSimulation, MinibatchReducesServerUpdates) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  cfg.minibatch_size = 10;
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  // N/b updates (up to boundary effects).
  EXPECT_LE(res.server_updates,
            static_cast<std::uint64_t>(cfg.max_total_samples) / 10 + 25);
  EXPECT_GT(res.server_updates,
            static_cast<std::uint64_t>(cfg.max_total_samples) / 12);
  EXPECT_LT(res.final_test_error, 0.12);
}

TEST(CrowdSimulation, ConvergesUnderDelay) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  cfg.minibatch_size = 5;
  // Delay worth ~100 crowd samples per leg (tau * M * Fs = 5 * 20 * 1).
  cfg.delay = std::make_shared<sim::UniformDelay>(5.0);
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  EXPECT_LT(res.final_test_error, 0.15);
  // Staleness means some samples are still in flight at shutdown.
  EXPECT_LE(res.samples_consumed, res.samples_generated);
}

TEST(CrowdSimulation, SurvivesMessageLoss) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  cfg.loss_probability = 0.2;
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  EXPECT_GT(res.checkouts_failed, 0);
  EXPECT_LT(res.final_test_error, 0.15);
}

TEST(CrowdSimulation, SurvivesChurn) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  cfg.churn = sim::ChurnModel(50.0, 50.0);  // half the crowd offline
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  EXPECT_EQ(res.samples_generated, cfg.max_total_samples);
  EXPECT_LT(res.final_test_error, 0.15);
}

TEST(CrowdSimulation, OnlineErrorTracksPredictions) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  cfg.max_total_samples = 500;
  cfg.track_online_error = true;
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  ASSERT_FALSE(res.online_error.empty());
  // x-axis is the running prediction count: strictly increasing by 1.
  const auto& pts = res.online_error.points();
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_DOUBLE_EQ(pts[i].x, static_cast<double>(i + 1));
  // Online error should improve from start to end.
  EXPECT_LT(pts.back().y, 0.6);
}

TEST(CrowdSimulation, EvalGridHasRequestedResolution) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  cfg.eval_points = 10;
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  // x=0 plus 10 marks.
  EXPECT_EQ(res.test_error.size(), 11u);
  EXPECT_DOUBLE_EQ(res.test_error.points().front().x, 0.0);
  EXPECT_DOUBLE_EQ(res.test_error.points().back().x,
                   static_cast<double>(cfg.max_total_samples));
}

TEST(CrowdSimulation, PrivacyReportsPerSampleEpsilon) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  cfg.max_total_samples = 500;
  cfg.budget = privacy::PrivacyBudget::gradient_dominated(10.0, 0.01);
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  // eps_g + eps_e + C * eps_y = 10 + 0.1 + 4*0.1
  EXPECT_NEAR(res.per_sample_epsilon, 10.5, 1e-9);
}

TEST(CrowdSimulation, ServerEstimatedErrorTracksTruth) {
  // Without privacy the Eq. (14) estimate equals the true online error of
  // the crowd, so it must be sane (between 0 and 1, > 0 early on).
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  EXPECT_GT(res.server_estimated_error, 0.0);
  EXPECT_LT(res.server_estimated_error, 1.0);
  // Prior estimate roughly uniform over 4 classes.
  for (double pk : res.estimated_prior) EXPECT_NEAR(pk, 0.25, 0.05);
}

TEST(CrowdSimulation, StopsAtServerMaxIterations) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  cfg.max_server_iterations = 100;
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  EXPECT_EQ(res.server_updates, 100u);
  EXPECT_LT(res.samples_generated, cfg.max_total_samples);
}

TEST(CrowdSimulation, AdaGradUpdaterAlsoConverges) {
  SmallProblem p;
  CrowdSimConfig cfg = fast_config();
  cfg.updater = core::UpdaterKind::kAdaGrad;
  cfg.learning_rate_c = 1.0;
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  EXPECT_LT(res.final_test_error, 0.12);
}
