// Engine stress capstone: 64 concurrent device connections through the
// epoll serving engine, behind a seeded fault-injection proxy, with a
// group-committing DurableStore underneath. The run must complete, and
// the durability contract must survive the chaos: destroying the store
// without any clean shutdown (a crash stand-in) and recovering into a
// fresh server must preserve every checkin that was ever acked — group
// commit releases acks only after the batch fsync.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/monitor.hpp"
#include "core/tcp_runtime.hpp"
#include "data/mixture.hpp"
#include "engine/epoll_server.hpp"
#include "models/logistic_regression.hpp"
#include "net/fault_proxy.hpp"
#include "opt/schedule.hpp"
#include "store/durable_store.hpp"

using namespace crowdml;

namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "crowdml_engine_chaos_XXXXXX")
            .string();
    if (!mkdtemp(tmpl.data())) throw std::runtime_error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::unique_ptr<opt::Updater> sgd() {
  return std::make_unique<opt::SgdUpdater>(
      std::make_unique<opt::SqrtDecaySchedule>(30.0), 500.0);
}

}  // namespace

TEST(EngineChaos, SixtyFourDevicesNoAckedCheckinLost) {
  rng::Engine data_eng(77);
  data::MixtureSpec spec;
  spec.num_classes = 3;
  spec.raw_dim = 30;
  spec.latent_dim = 12;
  spec.pca_dim = 8;
  spec.separation = 3.5;
  spec.train_size = 640;
  spec.test_size = 200;
  const data::Dataset ds = data::generate_mixture(spec, data_eng);

  models::MulticlassLogisticRegression model(3, 8, 0.0);
  net::AuthRegistry registry(rng::Engine(2));
  TempDir dir;

  constexpr std::size_t kDevices = 64;
  rng::Engine shard_eng(3);
  const auto shards = data::shard_across_devices(ds.train, kDevices, shard_eng);

  core::ReconnectPolicy policy;
  policy.connect_timeout_ms = 2000;
  policy.io_deadline_ms = 500;  // bound every blackholed wait
  policy.max_attempts = 10;
  policy.backoff_base_ms = 2;
  policy.backoff_max_ms = 50;

  core::NetCounters device_counters;
  std::vector<std::unique_ptr<core::Device>> devices;
  std::vector<std::unique_ptr<core::ReconnectingDeviceSession>> sessions;
  std::vector<std::unique_ptr<core::DeviceClient>> clients;

  net::FaultCounts faults;
  core::NetCountersSnapshot engine_net;
  long long shed = 0;
  std::uint64_t live_version = 0;

  {
    core::ServerConfig scfg;
    scfg.param_dim = model.param_dim();
    scfg.num_classes = 3;
    core::Server server(scfg, sgd(), rng::Engine(1));

    store::DurableStoreOptions sopts;
    sopts.wal.fsync = store::FsyncPolicy::kAlways;
    store::DurableStore store(dir.path, sopts);
    store.recover(server);
    store.attach(server);
    store.set_group_commit(true);

    engine::EngineConfig ecfg;
    ecfg.io_threads = 2;
    ecfg.idle_timeout_ms = 2000;  // reap links the proxy half-killed
    ecfg.group_commit = [&store] { return store.commit_group(); };
    engine::EpollCrowdServer eng(server, registry, ecfg);

    // A milder storm than chaos_tcp_test: with 64 devices there is an
    // order of magnitude more traffic for the faults to land on.
    net::FaultPolicy chaos;
    chaos.drop_conn_prob = 0.02;  // per relayed chunk
    chaos.truncate_prob = 0.005;
    chaos.corrupt_prob = 0.01;
    chaos.delay_prob = 0.1;
    chaos.max_delay_ms = 2;
    chaos.blackhole_prob = 0.02;
    net::FaultProxy proxy("127.0.0.1", eng.port(), chaos, rng::Engine(4242));

    for (std::size_t d = 0; d < kDevices; ++d) {
      core::DeviceConfig dc;
      dc.minibatch_size = 5;
      dc.budget = privacy::PrivacyBudget::gradient_dominated(20.0);
      devices.push_back(
          std::make_unique<core::Device>(dc, model, rng::Engine(100 + d)));
      devices.back()->set_credentials(registry.enroll());
      sessions.push_back(std::make_unique<core::ReconnectingDeviceSession>(
          "127.0.0.1", proxy.port(), policy, rng::Engine(500 + d),
          &device_counters, nullptr, devices.back()->id()));
      clients.push_back(std::make_unique<core::DeviceClient>(
          *devices.back(), sessions.back()->as_exchange()));
    }

    std::vector<std::thread> threads;
    for (std::size_t d = 0; d < kDevices; ++d) {
      threads.emplace_back([&, d] {
        for (int pass = 0; pass < 2; ++pass)
          for (const auto& s : shards[d]) clients[d]->offer_sample(s);
      });
    }
    for (auto& t : threads) t.join();

    faults = proxy.counts();
    proxy.shutdown();
    eng.shutdown();
    engine_net = eng.net_snapshot();
    shed = eng.queue().shed();
    live_version = server.version();
    // No sync(), no orderly store teardown beyond the destructor: from
    // here on only what group commit already fsynced may count.
  }

  // The storm was real and the engine carried 64 devices through it.
  ASSERT_GE(faults.connections, static_cast<long long>(kDevices));
  EXPECT_GE(engine_net.accepted_connections,
            static_cast<long long>(kDevices));
  EXPECT_GT(faults.killed_connections(), 0);

  long long acked = 0, failures = 0;
  for (const auto& c : clients) {
    acked += c->cycles_completed();
    failures += c->cycles_failed();
  }
  EXPECT_GT(acked, 100);
  EXPECT_GE(static_cast<long long>(live_version), acked);

  // Crash recovery: a fresh server restored from the directory must hold
  // every acked checkin (it may hold more — applied-but-ack-lost is the
  // allowed direction under chaos, never the reverse).
  core::ServerConfig scfg;
  scfg.param_dim = model.param_dim();
  scfg.num_classes = 3;
  core::Server recovered(scfg, sgd(), rng::Engine(9));
  store::DurableStore store(dir.path, {});
  const auto info = store.recover(recovered);
  EXPECT_EQ(recovered.version(), live_version);
  EXPECT_GE(static_cast<long long>(info.recovered_version), acked);
  for (std::size_t d = 0; d < kDevices; ++d) {
    const auto st = recovered.device_stats(devices[d]->id());
    EXPECT_GE(st.checkins, clients[d]->cycles_completed())
        << "device " << devices[d]->id() << " lost an acked checkin";
    // And the replay double-apply audit from the legacy chaos test still
    // holds through the queue + applier path.
    EXPECT_LE(st.checkins, sessions[d]->checkin_frames_sent());
  }

  // Load shedding is allowed under chaos but must have been hinted, not
  // silent: every shed is observable on the engine's own counter.
  EXPECT_GE(shed, 0);
}
