// Crowd-ML protocol messages (the Fig. 2 workflow on the wire).
//
//   CheckoutRequest : device -> server   "send me the current w"     (step 2)
//   ParamsMessage   : server -> device   versioned parameters        (step 3)
//   CheckinMessage  : device -> server   sanitized (g^, ns, n^e, n^y) (step 4)
//   AckMessage      : server -> device   accept/reject + reason       (step 5)
//
// Each message carrying device identity also carries an HMAC-SHA256 tag
// over its body (see auth.hpp) — the server "authenticates the device"
// in Server Routines 1 and 2.
//
// Frames: [magic 'CRML'][u8 type][u32 payload_len][payload][u32 crc32],
// crc over type+len+payload. decode_frame throws CodecError on corruption.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/codec.hpp"
#include "net/sha256.hpp"

namespace crowdml::net {

enum class MessageType : std::uint8_t {
  kCheckoutRequest = 1,
  kParams = 2,
  kCheckin = 3,
  kAck = 4,
  // Replication plane (leader <-> follower WAL shipping, same framing;
  // see src/replica/ and docs/REPLICATION.md). Types 5-10 never appear
  // on the device-facing port.
  kReplHello = 5,
  kReplSnapshot = 6,
  kReplAppend = 7,
  kReplAck = 8,
  // Automatic failover (lease heartbeats + leader election; see
  // docs/REPLICATION.md "Automatic failover semantics").
  kReplHeartbeat = 9,
  kReplVote = 10,
  // Secure-aggregation cohort mode (src/secagg/; docs/PRIVACY.md
  // "Secure aggregation"): devices submit pairwise-masked checkins the
  // server can only read as a cohort sum.
  kSecAggAssign = 11,
  kSecAggMasked = 12,
  kSecAggReveal = 13,
  // Sharded-leader merge plane (src/shard/; docs/SHARDING.md): the
  // MergeDirector pulls per-shard models + checkin counts, pushes a
  // count-weighted merge back. All three are HMAC-sealed with the
  // replication key (same construction as Repl* frames) and ride the
  // device-facing port, but devices never send or receive them.
  kShardPull = 14,
  kShardModel = 15,
  kShardMergePush = 16,
};

inline constexpr std::uint8_t kMaxMessageType = 16;

/// Human-readable name of a frame-type constant, or nullptr for a value
/// outside [1, kMaxMessageType]. This is the registry the protocol_test
/// frame-table guard walks: every type must have a name here AND a
/// matching `N=Name` row in docs/PROTOCOL.md's framing table, so a new
/// frame type cannot land without its documentation.
const char* message_type_name(std::uint8_t type);

/// Device-class id carried by checkout/checkin frames (pace steering;
/// src/coord/). 0 = "default" / undeclared — and, critically, class 0 is
/// *never encoded on the wire*: both serializers omit the field entirely,
/// so a device that predates device classes and a device that declares
/// class 0 produce byte-identical frames (and identical auth bodies).
/// Deserializers accept both forms; an explicit 0 byte is rejected as
/// malformed so the body a tag was computed over is never ambiguous.
inline constexpr std::uint8_t kDefaultDeviceClass = 0;

struct CheckoutRequest {
  std::uint64_t device_id = 0;
  /// Declared device class (the checkout doubles as the device's hello;
  /// see docs/SCALING.md "Pace steering"). Signed — part of body().
  std::uint8_t device_class = kDefaultDeviceClass;
  Digest auth_tag{};

  Bytes body() const;  // the authenticated portion
  Bytes serialize() const;
  static CheckoutRequest deserialize(const Bytes& payload);
};

struct ParamsMessage {
  std::uint64_t version = 0;  // server iteration t at checkout time
  bool accepted = true;       // false: checkout refused (e.g. auth failure)
  linalg::Vector w;
  /// Pace-steering hint: "your next checkin should arrive no sooner than
  /// this many ms from now" (advisory on the checkout path; the checkin
  /// ack's hint is the authoritative one). 0 = no hint, and the field is
  /// then omitted on the wire — a hint-free ParamsMessage is
  /// byte-identical to the pre-coordinator encoding, and decoders accept
  /// old-format payloads (the field is read only when bytes remain).
  std::uint32_t next_checkin_hint_ms = 0;

  Bytes serialize() const;
  static ParamsMessage deserialize(const Bytes& payload);
};

struct CheckinMessage {
  std::uint64_t device_id = 0;
  std::uint64_t param_version = 0;  // version of the w the gradient used
  linalg::Vector g_hat;             // sanitized averaged gradient (Eq. 10)
  std::int64_t ns = 0;              // samples in the minibatch (public)
  std::int64_t ne_hat = 0;          // sanitized error count (Eq. 11)
  std::vector<std::int64_t> ny_hat; // sanitized label counts (Eq. 12)
  /// Declared device class (see CheckoutRequest::device_class). Rides in
  /// the signed body so an unauthenticated party cannot re-class a
  /// checkin; omitted on the wire when kDefaultDeviceClass.
  std::uint8_t device_class = kDefaultDeviceClass;
  Digest auth_tag{};

  Bytes body() const;
  Bytes serialize() const;
  static CheckinMessage deserialize(const Bytes& payload);
};

struct AckMessage {
  bool ok = true;
  std::string reason;
  /// Pace-steering hint on the checkin ack: "come back for your next
  /// checkin in this many ms" (src/coord/; docs/PROTOCOL.md). Unlike the
  /// retry_after_ms suffix in `reason` — a shed nack's reactive hint —
  /// this field rides *successful* acks too, and
  /// ReconnectingDeviceSession honors it without consuming retry budget.
  /// 0 = no hint; the field is then omitted, so a hint-free AckMessage is
  /// byte-identical to the pre-coordinator encoding, and old-format
  /// payloads decode (the field is read only when bytes remain).
  std::uint32_t next_checkin_hint_ms = 0;

  Bytes serialize() const;
  static AckMessage deserialize(const Bytes& payload);
};

/// Replication handshake (follower -> leader), sent once per connection:
/// who the follower is, the highest epoch it has promised to, and the
/// last WAL seq it holds *durably*. The leader resumes shipping at
/// last_seq + 1 — or answers with a ReplSnapshot when compaction already
/// pruned those records. A hello whose epoch exceeds the leader's fences
/// the leader (it has been superseded; see docs/REPLICATION.md).
struct ReplHelloMessage {
  std::uint64_t follower_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t last_seq = 0;
  /// Partial chunked snapshot held from a previous connection: the
  /// version being transferred and the next byte offset wanted. The
  /// leader resumes the transfer mid-stream when it still has that
  /// serialized snapshot cached; 0/0 = no partial transfer.
  std::uint64_t snapshot_version = 0;
  std::uint64_t snapshot_offset = 0;
  /// Multimodel pool instance this stream replicates (draw-and-discard;
  /// src/multimodel/). Each of the k per-instance WAL streams ships on
  /// its own connection, and both ends verify the tag so instance j's
  /// records can never land in instance i's log. 0 for single-model
  /// deployments and for pool instance 0.
  std::uint64_t instance_id = 0;

  Bytes serialize() const;
  static ReplHelloMessage deserialize(const Bytes& payload);
};

/// Full-state catch-up (leader -> follower): one bounded chunk of a
/// serialized core::ServerCheckpoint at `version`. The checkpoint is
/// split into frames of at most the shipper's snapshot_chunk_bytes —
/// a multi-GB state can neither stall the shipper loop nor exceed the
/// frame-size cap — and offsets are resumable: a follower that
/// disconnects mid-transfer announces (version, next offset) in its
/// next hello. The chunk whose offset + size == total_bytes completes
/// the transfer; the follower then replaces its store wholesale and
/// resumes streaming from version + 1.
struct ReplSnapshotMessage {
  std::uint64_t epoch = 0;
  bool want_ack = true;  ///< leader expects a ReplAck after this chunk
  std::uint64_t version = 0;
  std::uint64_t total_bytes = 0;  ///< full serialized checkpoint size
  std::uint64_t offset = 0;       ///< this chunk's position in the whole
  Bytes checkpoint;               ///< the chunk bytes at `offset`

  bool last_chunk() const { return offset + checkpoint.size() >= total_bytes; }

  Bytes serialize() const;
  static ReplSnapshotMessage deserialize(const Bytes& payload);
};

/// One shipped WAL record: the exact payload bytes the leader logged
/// (a serialized CheckinMessage), so the follower's log stays
/// byte-identical to the leader's at equal offsets.
struct ReplRecord {
  std::uint64_t seq = 0;
  Bytes payload;
};

/// A batch of contiguous WAL records (leader -> follower).
struct ReplAppendMessage {
  std::uint64_t epoch = 0;
  bool want_ack = true;
  /// Pool instance whose WAL these records belong to (see
  /// ReplHelloMessage::instance_id). A follower drops the connection on
  /// a batch whose tag differs from its hello.
  std::uint64_t instance_id = 0;
  std::vector<ReplRecord> records;

  Bytes serialize() const;
  static ReplAppendMessage deserialize(const Bytes& payload);
};

/// Follower -> leader: "I hold everything through durable_seq on disk",
/// stamped with the follower's current epoch so a promoted follower
/// fences its old leader on the ack path too.
struct ReplAckMessage {
  std::uint64_t epoch = 0;
  std::uint64_t durable_seq = 0;

  Bytes serialize() const;
  static ReplAckMessage deserialize(const Bytes& payload);
};

/// Leader -> follower lease grant, sent on the replication stream at
/// least every heartbeat interval: "I am leader of `epoch`; treat me as
/// alive for lease_ms from receipt". Carries the committed watermark so
/// followers can bound read staleness, and the leader's device-facing
/// address so replicas keep their checkin redirects current. Never
/// acked — silence, not nacks, is what expires a lease.
struct ReplHeartbeatMessage {
  std::uint64_t epoch = 0;
  std::uint64_t committed_seq = 0;
  std::uint32_t lease_ms = 0;
  std::string leader_addr;  ///< device-facing host:port ("" = unchanged)

  Bytes serialize() const;
  static ReplHeartbeatMessage deserialize(const Bytes& payload);
};

/// Leader election (follower <-> follower, and candidate -> old leader).
/// As a request (`request` = true): "grant me leadership at `epoch`; my
/// durable log reaches `last_seq`". As a response: `granted` says
/// whether the responder durably promised `epoch` to this candidate;
/// its own epoch/last_seq ride along so a losing candidate learns how
/// far behind it is. Granting requires epoch > the responder's promised
/// epoch — at most one candidate can win a given epoch — and
/// last_seq >= the responder's durable position, so only a
/// most-caught-up candidate can assemble a majority.
struct ReplVoteMessage {
  bool request = true;
  bool granted = false;  ///< response only
  std::uint64_t epoch = 0;
  std::uint64_t candidate_id = 0;
  std::uint64_t last_seq = 0;
  /// Per-request random value the responder must echo. Sealed into the
  /// HMAC tag along with candidate_id, it binds a grant to one request
  /// from one candidate: a captured grant cannot be replayed into a
  /// concurrent candidate's election for the same epoch.
  std::uint64_t nonce = 0;
  /// Request only: where the candidate will serve if it wins, so
  /// granters retarget without operator help. device_addr is the
  /// device-facing host:port (new checkin redirect target); repl_addr
  /// is the replication/election endpoint (new shipping source).
  std::string device_addr;
  std::string repl_addr;

  Bytes serialize() const;
  static ReplVoteMessage deserialize(const Bytes& payload);
};

// ---------------------------------------------------------------------
// Secure-aggregation cohort mode (types 11-13; src/secagg/,
// docs/PRIVACY.md "Secure aggregation"). All three ride the device port
// and follow the classic request/response shape: the device sends an
// authenticated request, the server answers with the same frame type
// (Assign/Reveal, direction flagged like ReplVote) or a plain Ack
// (Masked).

/// Round status answered on a SecAggAssign response.
enum : std::uint8_t {
  kSecAggAssignPending = 0,   ///< cohort still forming; retry after hint
  kSecAggAssignAssigned = 1,  ///< roster + round id attached
  kSecAggAssignFallback = 2,  ///< no cohort will form; use a classic checkin
};

/// Round status answered on a SecAggReveal response.
enum : std::uint8_t {
  kSecAggRoundCollecting = 0,  ///< masked checkins still arriving; retry
  kSecAggRoundComplete = 1,    ///< cohort sum applied; the device is done
  kSecAggRoundRecovering = 2,  ///< dropouts declared; seed reveals wanted
  kSecAggRoundAborted = 3,     ///< below min survivors; fall back to LDP
};

/// Cohort assignment (device <-> server, type 11). As a request:
/// "assign me to a round" (authenticated — an unenrolled party cannot
/// probe rosters). As a response: pending (come back in retry_after_ms),
/// assigned (round id + sorted roster + ms until the round's deadline),
/// or fallback (no cohort will form; do a classic LDP checkin).
struct SecAggAssignMessage {
  bool request = true;
  std::uint64_t device_id = 0;  ///< request only (signed)
  /// Declared device class (request only, signed; see
  /// CheckoutRequest::device_class). Cohorts form per class so one
  /// flaky-class straggler cannot stall a fast-class round; omitted on
  /// the wire when kDefaultDeviceClass, keeping pre-class assign
  /// requests (and their tags) byte-identical.
  std::uint8_t device_class = kDefaultDeviceClass;
  Digest auth_tag{};            ///< request only
  std::uint8_t status = kSecAggAssignPending;   ///< response only
  std::uint64_t round_id = 0;                   ///< response (assigned)
  std::vector<std::uint64_t> roster;            ///< response: sorted ids
  std::uint32_t deadline_ms = 0;    ///< response: ms until the round closes
  std::uint32_t min_survivors = 0;  ///< response: the abort threshold
  std::uint32_t retry_after_ms = 0; ///< response (pending)

  Bytes body() const;  // the authenticated portion (request form)
  Bytes serialize() const;
  static SecAggAssignMessage deserialize(const Bytes& payload);
};

/// Masked checkin (device -> server, type 12; answered with an Ack).
/// Gradient and counts are quantized to fixed point (secagg::quantize)
/// and carried mod 2^64 with every pairwise mask added in, so the
/// server can only recover the *cohort sum* once all masks cancel. `ns`
/// stays public plaintext, exactly as in a classic Checkin (it carries
/// no per-sample information). An ok Ack means "accepted into the
/// round", NOT "applied" — application happens when the round's sum is
/// unmaskable (docs/PRIVACY.md).
struct SecAggMaskedMessage {
  std::uint64_t device_id = 0;
  std::uint64_t round_id = 0;
  std::uint64_t param_version = 0;
  std::int64_t ns = 0;  ///< minibatch size (public metadata)
  std::vector<std::uint64_t> masked_g;   ///< fixed-point g^ + masks
  std::uint64_t masked_ne = 0;           ///< two's-complement ne^ + masks
  std::vector<std::uint64_t> masked_ny;  ///< two's-complement ny^ + masks
  Digest auth_tag{};

  Bytes body() const;
  Bytes serialize() const;
  static SecAggMaskedMessage deserialize(const Bytes& payload);
};

/// One revealed pairwise seed: the HMAC-derived PRG seed for the
/// (a, b) mask pair of a round (a < b; see secagg::pairwise_seed).
struct SecAggSeedShare {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  Digest seed{};
};

/// Round-status poll and seed recovery (device <-> server, type 13).
/// As a request with empty `seeds`: "how did round_id end?". As a
/// request with seeds: a surviving device reveals the pairwise seeds of
/// declared-dead peers so the server can subtract their unmatched mask
/// contributions. As a response: collecting (retry), complete,
/// recovering (dead + survivor lists attached — compute and submit the
/// (survivor, dead) seeds), or aborted (fall back to a classic LDP
/// checkin).
struct SecAggRevealMessage {
  bool request = true;
  std::uint64_t device_id = 0;  ///< request only (signed)
  std::uint64_t round_id = 0;   ///< both directions
  std::vector<SecAggSeedShare> seeds;  ///< request: revealed seeds
  Digest auth_tag{};                   ///< request only
  std::uint8_t status = kSecAggRoundCollecting;  ///< response only
  std::vector<std::uint64_t> dead;       ///< response (recovering)
  std::vector<std::uint64_t> survivors;  ///< response (recovering)
  std::uint32_t retry_after_ms = 0;      ///< response (collecting)

  Bytes body() const;  // the authenticated portion (request form)
  Bytes serialize() const;
  static SecAggRevealMessage deserialize(const Bytes& payload);
};

// ---------------------------------------------------------------------
// Sharded-leader merge plane (types 14-16; src/shard/,
// docs/SHARDING.md). Director <-> shard-leader only. None of these
// carry an in-body auth tag: like the Repl* frames they are sealed at
// the session layer with the replication key
// (replica::seal_repl_payload — payload || HMAC-SHA256(key,
// type || payload)), so an unkeyed party can neither pull a model nor
// push a merge.

/// Director -> shard leader (type 14): "send me your current model and
/// the checkin count it absorbed since the last merge". Answered with a
/// sealed ShardModel. merge_round is the director's cycle counter; the
/// leader remembers (round, version-at-pull) so the matching push can
/// report merge staleness in update counts.
struct ShardPullMessage {
  std::uint64_t merge_round = 0;

  Bytes serialize() const;
  static ShardPullMessage deserialize(const Bytes& payload);
};

/// Shard leader -> director (type 15): the shard's model in fixed point
/// (secagg::quantize two's-complement encoding — the merge average is
/// computed entirely in integer arithmetic so every replica of the
/// merge computes identical bytes), its version, and the number of
/// checkins applied since the last merge (the weight in the
/// count-weighted average).
struct ShardModelMessage {
  std::uint64_t shard_id = 0;
  std::uint64_t merge_round = 0;  ///< echoed from the pull
  std::uint64_t version = 0;      ///< model version at pull time
  std::uint64_t checkins = 0;     ///< updates absorbed since last merge
  std::vector<std::uint64_t> q;   ///< fixed-point parameters

  Bytes serialize() const;
  static ShardModelMessage deserialize(const Bytes& payload);
};

/// Director -> every shard leader (type 16): the count-weighted merged
/// model. Answered with a plain Ack. The leader dequantizes, applies it
/// through the normal applier path (core::Server::overwrite_parameters)
/// and logs a shard::MergeRecord in its WAL, so recovery and
/// replication replay the merge exactly like any checkin.
struct ShardMergePushMessage {
  std::uint64_t merge_round = 0;
  std::uint64_t total_checkins = 0;  ///< sum of shard weights (audit)
  std::vector<std::uint64_t> q;      ///< fixed-point merged parameters

  Bytes serialize() const;
  static ShardMergePushMessage deserialize(const Bytes& payload);
};

/// Checkin refusal from a read replica: "not leader; leader=<addr>".
/// Devices (or operators reading logs) can re-point at the leader; the
/// reason rides the normal AckMessage, so old devices just see a failed
/// cycle.
std::string not_leader_reason(const std::string& leader_addr);

/// Extract the leader address from a not_leader_reason; nullopt when the
/// reason is anything else.
std::optional<std::string> parse_leader_redirect(const std::string& reason);

/// Checkin refusal from a shard leader that does not own the device's
/// hash range: "wrong shard; shard=<addr>". Same shape and same
/// pre-application safety argument as not_leader_reason — the nack is
/// produced on the I/O thread before the checkin reaches the applier,
/// so re-sending to <addr> can never double-apply (docs/SHARDING.md).
std::string wrong_shard_reason(const std::string& shard_addr);

/// Extract the owning shard's address from a wrong_shard_reason;
/// nullopt when the reason is anything else.
std::optional<std::string> parse_shard_redirect(const std::string& reason);

/// Split "host:port" at the last colon. nullopt when there is no colon,
/// the host part is empty, or the port is not a number in [1, 65535].
std::optional<std::pair<std::string, std::uint16_t>> split_host_port(
    const std::string& addr);

/// Overload nack reasons: a server shedding load (connection cap, full
/// checkin queue) appends a machine-readable retry hint to the human
/// reason — "<what>; retry_after_ms=<N>" — that
/// ReconnectingDeviceSession honors as its next backoff delay instead of
/// guessing. The hint rides the existing reason string, so old devices
/// ignore it and the AckMessage wire format is unchanged.
std::string retry_after_reason(const std::string& what, int retry_after_ms);

/// Extract the retry_after_ms hint from a nack reason. Strict: the hint
/// must be the final "; retry_after_ms=<digits>" token — a key buried
/// mid-token, trailing non-digits, a negative value, or a value past an
/// hour (3'600'000 ms) all yield nullopt rather than a wrapped or
/// truncated delay a hostile server could choose.
std::optional<int> parse_retry_after(const std::string& reason);

/// Cheap peek at the device id of an encoded Checkin frame (the u64
/// opening its length-prefixed body) without decoding, CRC-checking, or
/// copying the frame. nullopt when the buffer is not a Checkin frame or
/// is too short to hold an id. The engine's I/O-thread shard gate uses
/// this to route before application; a corrupt frame that peeks a bogus
/// id is at worst redirected, and full decoding rejects it wherever it
/// lands.
std::optional<std::uint64_t> peek_checkin_device_id(const Bytes& frame);

/// Append a pace-steering hint to an already-encoded Params or Ack frame
/// without decoding the payload: both messages place next_checkin_hint_ms
/// as their optional final field, so re-framing with four extra trailing
/// payload bytes is exactly equivalent to re-serializing the decoded
/// message with the hint set. This is what lets the engine serve steered
/// checkouts from the snapshot board's pre-encoded frame (one slice +
/// CRC, no ParamsMessage round trip). hint_ms == 0 returns the frame
/// unchanged (the absent-field encoding). Must not be applied twice to
/// the same frame, and must only be applied to frames this process
/// encoded (the input's CRC is not re-verified).
Bytes frame_with_checkin_hint(const Bytes& frame, std::uint32_t hint_ms);

/// Framing.
Bytes encode_frame(MessageType type, const Bytes& payload);

struct Frame {
  MessageType type;
  Bytes payload;
};

/// Decode a complete frame buffer. Throws CodecError on bad magic, length
/// mismatch, or CRC failure.
Frame decode_frame(const Bytes& buffer);

/// Frame layout constants. The header is [magic][type][payload_len]; any
/// code that picks fields out of a raw header buffer (e.g. the socket
/// layer reading the length before the payload arrives) must use these
/// offsets rather than hard-coded byte positions.
inline constexpr std::size_t kFrameMagicSize = 4;
inline constexpr std::size_t kFrameTypeOffset = kFrameMagicSize;
inline constexpr std::size_t kFrameLenOffset = kFrameTypeOffset + 1;
inline constexpr std::size_t kFrameHeaderSize = kFrameLenOffset + sizeof(std::uint32_t);
inline constexpr std::size_t kFrameTrailerSize = 4;
static_assert(kFrameHeaderSize == kFrameMagicSize + 1 + sizeof(std::uint32_t),
              "frame header is magic + u8 type + u32 payload length");
static_assert(kFrameLenOffset + sizeof(std::uint32_t) == kFrameHeaderSize,
              "length field is the last header field");

}  // namespace crowdml::net
