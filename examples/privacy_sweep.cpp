// Privacy-utility frontier: how the final model quality moves with the
// per-sample budget eps and the minibatch size b (Section IV-A, Eq. 13).
//
// Prints a (eps x b) grid of final test errors plus the exact noise power
// the mechanism injects — a downstream user's starting point for choosing
// their own deployment's privacy level.
#include <cmath>
#include <cstdio>

#include "core/crowd_simulation.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"
#include "privacy/mechanisms.hpp"

using namespace crowdml;

int main() {
  rng::Engine data_eng(42);
  const data::Dataset ds = data::make_mnist_like(data_eng, 0.1);
  models::MulticlassLogisticRegression model(ds.num_classes, ds.feature_dim, 0.0);

  const std::vector<double> epsilons{2.0, 10.0, 50.0, privacy::kNoPrivacy};
  const std::vector<std::size_t> batches{1, 10, 25};

  std::printf("final test error after 3 passes (M=200 devices)\n\n");
  std::printf("%12s", "eps \\ b");
  for (auto b : batches) std::printf("%10zu", b);
  std::printf("%22s\n", "noise var/coord (b=1)");

  for (double eps : epsilons) {
    if (std::isinf(eps))
      std::printf("%12s", "inf");
    else
      std::printf("%12.0f", eps);
    for (auto b : batches) {
      core::CrowdSimConfig cfg;
      cfg.num_devices = 200;
      cfg.minibatch_size = b;
      if (!std::isinf(eps))
        cfg.budget = privacy::PrivacyBudget::gradient_dominated(eps);
      cfg.max_total_samples = static_cast<long long>(3 * ds.train.size());
      cfg.eval_points = 6;
      cfg.learning_rate_c = 50.0;
      cfg.projection_radius = 500.0;
      cfg.seed = 17;
      rng::Engine shard_eng(9);
      auto shards =
          data::shard_across_devices(ds.train, cfg.num_devices, shard_eng);
      core::CrowdSimulation sim(model, cfg);
      const auto res =
          sim.run(core::make_cycling_source(std::move(shards)), ds.test);
      std::printf("%10.3f", res.final_test_error);
      std::fflush(stdout);
    }
    std::printf("%22.4f\n", privacy::laplace_noise_variance(
                                model.per_sample_l1_sensitivity(), eps));
  }

  std::printf("\nreading: with a harsh budget (eps=2) only large minibatches"
              " learn;\nby eps=50 the privacy tax is nearly free (Eq. 13: "
              "noise ~ 32D/(b*eps)^2).\n");
  return 0;
}
