// Replication subsystem tests: epoch register durability and fencing,
// Repl* message codecs, the shipper's WAL batch reader, quorum ack
// tracking, follower-mode engine redirects, and end-to-end leader ->
// follower streaming — including the determinism contract (leader and
// follower are byte-identical at equal log offsets) and snapshot
// catch-up past compacted history.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "engine/epoll_server.hpp"
#include "net/auth.hpp"
#include "net/tcp.hpp"
#include "opt/schedule.hpp"
#include "replica/epoch.hpp"
#include "replica/follower.hpp"
#include "replica/log_shipper.hpp"
#include "replica/repl_session.hpp"
#include "store/durable_store.hpp"

using namespace crowdml;
using replica::AckTracker;
using replica::EpochError;
using replica::EpochStore;
using replica::Follower;
using replica::FollowerOptions;
using replica::LogShipper;
using replica::ReplAckMode;
using replica::ShipperOptions;

namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "crowdml_repl_XXXXXX")
            .string();
    if (!mkdtemp(tmpl.data())) throw std::runtime_error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

core::ServerConfig config(std::size_t dim = 4, std::size_t classes = 3) {
  core::ServerConfig c;
  c.param_dim = dim;
  c.num_classes = classes;
  return c;
}

std::unique_ptr<opt::Updater> sgd(double c = 1.0) {
  return std::make_unique<opt::SgdUpdater>(
      std::make_unique<opt::SqrtDecaySchedule>(c), 100.0);
}

net::CheckinMessage random_checkin(rng::Engine& eng, std::uint64_t device) {
  net::CheckinMessage m;
  m.device_id = device;
  for (int i = 0; i < 4; ++i)
    m.g_hat.push_back(static_cast<double>(eng() % 2001) / 1000.0 - 1.0);
  m.ns = 1 + static_cast<std::int64_t>(eng() % 10);
  m.ne_hat = static_cast<std::int64_t>(eng() % 3);
  for (int i = 0; i < 3; ++i)
    m.ny_hat.push_back(static_cast<std::int64_t>(eng() % 5));
  return m;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Exact-state equality: parameters, iteration, per-device statistics.
void expect_same_state(core::Server& a, core::Server& b) {
  EXPECT_EQ(a.parameters(), b.parameters());
  EXPECT_EQ(a.version(), b.version());
  EXPECT_EQ(a.total_samples(), b.total_samples());
  EXPECT_EQ(a.devices_seen(), b.devices_seen());
  EXPECT_EQ(a.estimated_error(), b.estimated_error());
  for (std::uint64_t id = 1; id <= 8; ++id) {
    const auto sa = a.device_stats(id);
    const auto sb = b.device_stats(id);
    EXPECT_EQ(sa.samples, sb.samples) << "device " << id;
    EXPECT_EQ(sa.errors_hat, sb.errors_hat) << "device " << id;
    EXPECT_EQ(sa.checkins, sb.checkins) << "device " << id;
    EXPECT_EQ(sa.label_counts_hat, sb.label_counts_hat) << "device " << id;
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(f)),
                                   std::istreambuf_iterator<char>());
}

/// All WAL segment files in `dir`, sorted by name (== seq order).
std::vector<std::string> wal_segment_names(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("wal-", 0) == 0) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

// ----------------------------------------------------------- epoch store

TEST(EpochStoreRepl, MissingFileLoadsZero) {
  TempDir td;
  EpochStore es(td.path);
  EXPECT_EQ(es.load(), 0u);
}

TEST(EpochStoreRepl, RoundTripAndReopen) {
  TempDir td;
  {
    EpochStore es(td.path);
    es.store(7);
    EXPECT_EQ(es.load(), 7u);
  }
  EpochStore again(td.path);
  EXPECT_EQ(again.load(), 7u);
}

TEST(EpochStoreRepl, RefusesLowering) {
  TempDir td;
  EpochStore es(td.path);
  es.store(5);
  es.store(5);  // idempotent rewrite is fine
  EXPECT_THROW(es.store(4), EpochError);
  EXPECT_EQ(es.load(), 5u);
}

TEST(EpochStoreRepl, CorruptFileRefusesToGuess) {
  TempDir td;
  EpochStore es(td.path);
  es.store(9);
  {
    std::fstream f(es.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(6);
    f.put('\x5a');
  }
  EXPECT_THROW(es.load(), EpochError);
  // A corrupt register also blocks store(): the monotonicity check
  // cannot be evaluated against garbage.
  EXPECT_THROW(es.store(10), EpochError);
}

// ------------------------------------------------------- message codecs

TEST(ReplMessages, HelloRoundTrip) {
  net::ReplHelloMessage m;
  m.follower_id = 42;
  m.epoch = 3;
  m.last_seq = 1234567;
  const auto back = net::ReplHelloMessage::deserialize(m.serialize());
  EXPECT_EQ(back.follower_id, 42u);
  EXPECT_EQ(back.epoch, 3u);
  EXPECT_EQ(back.last_seq, 1234567u);
}

TEST(ReplMessages, AppendRoundTripPreservesPayloadBytes) {
  net::ReplAppendMessage m;
  m.epoch = 2;
  m.want_ack = false;
  m.records.push_back({1, {0x01, 0x02, 0x03}});
  m.records.push_back({2, {}});
  m.records.push_back({3, {0xff}});
  const auto back = net::ReplAppendMessage::deserialize(m.serialize());
  EXPECT_EQ(back.epoch, 2u);
  EXPECT_FALSE(back.want_ack);
  ASSERT_EQ(back.records.size(), 3u);
  EXPECT_EQ(back.records[0].seq, 1u);
  EXPECT_EQ(back.records[0].payload, (net::Bytes{0x01, 0x02, 0x03}));
  EXPECT_TRUE(back.records[1].payload.empty());
  EXPECT_EQ(back.records[2].payload, (net::Bytes{0xff}));
}

TEST(ReplMessages, SnapshotAndAckRoundTrip) {
  net::ReplSnapshotMessage s;
  s.epoch = 4;
  s.want_ack = true;
  s.version = 99;
  s.total_bytes = 8;
  s.offset = 3;
  s.checkpoint = {1, 2, 3, 4, 5};
  const auto sb = net::ReplSnapshotMessage::deserialize(s.serialize());
  EXPECT_EQ(sb.version, 99u);
  EXPECT_EQ(sb.total_bytes, 8u);
  EXPECT_EQ(sb.offset, 3u);
  EXPECT_TRUE(sb.last_chunk());
  EXPECT_EQ(sb.checkpoint, s.checkpoint);
  // A chunk claiming more bytes than its stated total is wire abuse.
  s.total_bytes = 4;
  s.offset = 0;
  EXPECT_THROW(net::ReplSnapshotMessage::deserialize(s.serialize()),
               net::CodecError);

  net::ReplAckMessage a;
  a.epoch = 4;
  a.durable_seq = 77;
  const auto ab = net::ReplAckMessage::deserialize(a.serialize());
  EXPECT_EQ(ab.epoch, 4u);
  EXPECT_EQ(ab.durable_seq, 77u);
}

TEST(ReplMessages, TrailingBytesRejected) {
  net::ReplAckMessage a;
  a.epoch = 1;
  a.durable_seq = 2;
  net::Bytes bytes = a.serialize();
  bytes.push_back(0x00);
  EXPECT_THROW(net::ReplAckMessage::deserialize(bytes), net::CodecError);
}

TEST(ReplMessages, FrameTypeBoundsEnforced) {
  // Types 5-10 frame fine; anything past kMaxMessageType is refused.
  const net::Bytes ok =
      net::encode_frame(net::MessageType::kReplAck,
                        net::ReplAckMessage{}.serialize());
  EXPECT_EQ(net::decode_frame(ok).type, net::MessageType::kReplAck);
  const net::Bytes bad = net::encode_frame(
      static_cast<net::MessageType>(net::kMaxMessageType + 1), {});
  EXPECT_THROW(net::decode_frame(bad), net::CodecError);
}

TEST(ReplRedirect, RoundTrip) {
  const std::string reason = net::not_leader_reason("10.0.0.1:9000");
  const auto addr = net::parse_leader_redirect(reason);
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, "10.0.0.1:9000");
  EXPECT_FALSE(net::parse_leader_redirect("server at capacity"));
  EXPECT_FALSE(net::parse_leader_redirect("not leader; leader="));
  EXPECT_FALSE(net::parse_leader_redirect(""));
}

TEST(ReplAckModes, ParseAndName) {
  EXPECT_EQ(replica::parse_repl_ack_mode("none"), ReplAckMode::kNone);
  EXPECT_EQ(replica::parse_repl_ack_mode("async"), ReplAckMode::kAsync);
  EXPECT_EQ(replica::parse_repl_ack_mode("quorum"), ReplAckMode::kQuorum);
  EXPECT_FALSE(replica::parse_repl_ack_mode("sync").has_value());
  EXPECT_STREQ(replica::repl_ack_mode_name(ReplAckMode::kQuorum), "quorum");
}

TEST(ReplQuorumSize, MajorityOfConfiguredFollowers) {
  EXPECT_EQ(replica::quorum_follower_acks_for(0), 0u);
  EXPECT_EQ(replica::quorum_follower_acks_for(1), 1u);
  EXPECT_EQ(replica::quorum_follower_acks_for(2), 1u);  // 2 of 3 nodes
  EXPECT_EQ(replica::quorum_follower_acks_for(3), 2u);
  EXPECT_EQ(replica::quorum_follower_acks_for(4), 2u);  // 3 of 5 nodes
}

// ------------------------------------------------------- batch shipping

TEST(ReplBatch, ReadsAfterCursorUpToWatermark) {
  TempDir td;
  obs::MetricsRegistry reg;
  store::WalOptions wo;
  wo.metrics = &reg;
  store::WriteAheadLog wal(td.path, wo);
  wal.open_and_replay(0, [](std::uint64_t, const net::Bytes&) {});
  for (std::uint64_t s = 1; s <= 10; ++s) wal.append(s, {0x10, 0x20});
  wal.sync();

  auto b = replica::next_ship_batch(td.path, 0, 10, 256, 1u << 20);
  EXPECT_FALSE(b.gap);
  ASSERT_EQ(b.records.size(), 10u);
  EXPECT_EQ(b.records.front().seq, 1u);
  EXPECT_EQ(b.records.back().seq, 10u);

  b = replica::next_ship_batch(td.path, 4, 10, 256, 1u << 20);
  ASSERT_EQ(b.records.size(), 6u);
  EXPECT_EQ(b.records.front().seq, 5u);

  // Records past the committed watermark may be mid-commit: held back.
  b = replica::next_ship_batch(td.path, 0, 7, 256, 1u << 20);
  ASSERT_EQ(b.records.size(), 7u);
  EXPECT_EQ(b.records.back().seq, 7u);

  b = replica::next_ship_batch(td.path, 0, 10, 3, 1u << 20);
  EXPECT_EQ(b.records.size(), 3u);

  // The byte cap always keeps at least one record (progress guarantee).
  b = replica::next_ship_batch(td.path, 0, 10, 256, 1);
  EXPECT_EQ(b.records.size(), 1u);

  b = replica::next_ship_batch(td.path, 10, 10, 256, 1u << 20);
  EXPECT_TRUE(b.records.empty());
  EXPECT_FALSE(b.gap);
}

TEST(ReplBatch, PrunedHistoryReportsGap) {
  TempDir td;
  obs::MetricsRegistry reg;
  store::WalOptions wo;
  wo.metrics = &reg;
  wo.segment_max_bytes = 1;  // rotate after every record
  store::WriteAheadLog wal(td.path, wo);
  wal.open_and_replay(0, [](std::uint64_t, const net::Bytes&) {});
  for (std::uint64_t s = 1; s <= 10; ++s) wal.append(s, {0x42});
  wal.sync();
  ASSERT_GT(wal.truncate_through(5), 0u);

  auto b = replica::next_ship_batch(td.path, 0, 10, 256, 1u << 20);
  EXPECT_TRUE(b.gap) << "cursor 0 predates the oldest surviving record";
  EXPECT_TRUE(b.records.empty());

  b = replica::next_ship_batch(td.path, 5, 10, 256, 1u << 20);
  EXPECT_FALSE(b.gap);
  ASSERT_FALSE(b.records.empty());
  EXPECT_EQ(b.records.front().seq, 6u);
}

// --------------------------------------------------------- ack tracking

TEST(ReplAckTracker, QuorumIsKthLargestAmongLiveSessions) {
  AckTracker t;
  EXPECT_EQ(t.quorum_acked(1), 0u) << "no sessions, no quorum";
  t.join(1);
  t.join(2);
  t.join(3);
  t.ack(1, 10);
  t.ack(2, 20);
  t.ack(3, 30);
  EXPECT_EQ(t.sessions(), 3u);
  EXPECT_EQ(t.max_acked(), 30u);
  EXPECT_EQ(t.min_acked(), 10u);
  EXPECT_EQ(t.quorum_acked(1), 30u);
  EXPECT_EQ(t.quorum_acked(2), 20u);
  EXPECT_EQ(t.quorum_acked(3), 10u);
  EXPECT_EQ(t.quorum_acked(4), 0u) << "fewer live sessions than k";
  t.ack(2, 5);  // stale regression ignored
  EXPECT_EQ(t.quorum_acked(2), 20u);
  t.leave(3);
  EXPECT_EQ(t.quorum_acked(2), 10u);
}

TEST(ReplAckTracker, ZeroRequiredAcksIsTriviallySatisfied) {
  // A promoted leader with no peers (electorate of one) needs zero
  // follower acks; its checkins must not wait out the quorum timeout.
  AckTracker t;
  EXPECT_EQ(t.quorum_acked(0), UINT64_MAX);
  EXPECT_TRUE(t.await(100, 0, 1, nullptr));
  t.join(1);
  t.ack(1, 5);
  EXPECT_EQ(t.quorum_acked(0), UINT64_MAX);
  EXPECT_TRUE(t.await(1000, 0, 1, nullptr));
}

TEST(ReplAckTracker, AwaitBlocksUntilQuorumOrTimeout) {
  AckTracker t;
  t.join(1);
  EXPECT_FALSE(t.await(100, 1, 50, nullptr));

  std::thread acker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    t.ack(1, 100);
  });
  EXPECT_TRUE(t.await(100, 1, 2000, nullptr));
  acker.join();
}

TEST(ReplAckTracker, AwaitAbortsOnWake) {
  AckTracker t;
  t.join(1);
  std::atomic<bool> aborted{false};
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    aborted.store(true);
    t.wake();
  });
  EXPECT_FALSE(t.await(100, 1, 5000, [&] { return aborted.load(); }));
  waker.join();
}

// -------------------------------------------- follower-mode engine

TEST(FollowerEngine, RedirectsCheckinsServesCheckouts) {
  core::Server server(config(), sgd(), rng::Engine(1));
  net::AuthRegistry auth{rng::Engine(2)};
  const auto creds = auth.enroll();
  obs::MetricsRegistry reg;
  engine::EngineConfig ecfg;
  ecfg.checkin_redirect = "127.0.0.1:9000";
  ecfg.metrics = &reg;
  engine::EpollCrowdServer srv(server, auth, ecfg);

  auto conn = net::TcpConnection::connect("127.0.0.1", srv.port(), 2000);
  ASSERT_TRUE(conn.has_value());
  conn->set_deadline_ms(2000);

  // Checkout: served from the board as usual.
  net::CheckoutRequest req;
  req.device_id = creds.device_id;
  req.auth_tag = creds.sign(req.body());
  ASSERT_TRUE(conn->send_frame(net::encode_frame(
      net::MessageType::kCheckoutRequest, req.serialize())));
  auto reply = conn->recv_frame();
  ASSERT_TRUE(reply.has_value());
  const auto params =
      net::ParamsMessage::deserialize(net::decode_frame(*reply).payload);
  EXPECT_TRUE(params.accepted);
  EXPECT_EQ(params.version, 0u);

  // Checkin: refused with a parseable redirect; the model is untouched.
  rng::Engine eng(3);
  net::CheckinMessage m = random_checkin(eng, creds.device_id);
  m.auth_tag = creds.sign(m.body());
  ASSERT_TRUE(conn->send_frame(
      net::encode_frame(net::MessageType::kCheckin, m.serialize())));
  reply = conn->recv_frame();
  ASSERT_TRUE(reply.has_value());
  const auto ack =
      net::AckMessage::deserialize(net::decode_frame(*reply).payload);
  EXPECT_FALSE(ack.ok);
  const auto leader = net::parse_leader_redirect(ack.reason);
  ASSERT_TRUE(leader.has_value());
  EXPECT_EQ(*leader, "127.0.0.1:9000");
  EXPECT_EQ(server.version(), 0u);

  srv.shutdown();
}

// --------------------------------------------- end-to-end replication

namespace {

/// A leader wired the way crowdml-server wires it: durable store attached
/// (per-record appends; tests call notify_committed explicitly) plus a
/// shipper at `epoch`.
struct LeaderRig {
  TempDir dir;
  obs::MetricsRegistry reg;
  core::Server server;
  std::unique_ptr<store::DurableStore> store;
  std::unique_ptr<LogShipper> shipper;

  explicit LeaderRig(ReplAckMode mode, std::uint64_t epoch = 1,
                     std::size_t segment_max_bytes = 4u << 20,
                     int quorum_timeout_ms = 400,
                     const std::function<void(ShipperOptions&)>& tweak = {})
      : server(config(), sgd(), rng::Engine(1)) {
    store::DurableStoreOptions so;
    so.wal.metrics = &reg;
    so.wal.segment_max_bytes = segment_max_bytes;
    store = std::make_unique<store::DurableStore>(dir.path, so);
    store->recover(server);
    store->attach(server);
    ShipperOptions shopts;
    shopts.ack_mode = mode;
    shopts.quorum_follower_acks = 1;
    shopts.quorum_timeout_ms = quorum_timeout_ms;
    shopts.metrics = &reg;
    if (tweak) tweak(shopts);
    shipper = std::make_unique<LogShipper>(server, *store, epoch, shopts);
  }

  /// Apply `n` accepted checkins across 4 devices and advance the
  /// shipping watermark past them.
  void drive(rng::Engine& eng, int n) {
    for (int i = 0; i < n; ++i) {
      net::CheckinMessage m = random_checkin(eng, 1 + (i % 4));
      m.param_version = server.version();
      const auto ack = server.handle_checkin(m);
      ASSERT_TRUE(ack.ok) << ack.reason;
    }
    store->sync();
    shipper->notify_committed();
  }
};

struct FollowerRig {
  TempDir dir;
  obs::MetricsRegistry reg;
  core::Server server;
  std::unique_ptr<Follower> follower;

  explicit FollowerRig(std::uint16_t leader_port, std::uint64_t id = 1,
                       std::size_t segment_max_bytes = 4u << 20)
      : server(config(), sgd(), rng::Engine(1)) {
    FollowerOptions fo;
    fo.leader_port = leader_port;
    fo.follower_id = id;
    fo.store.wal.metrics = &reg;
    fo.store.wal.segment_max_bytes = segment_max_bytes;
    fo.metrics = &reg;
    fo.reconnect_backoff_ms = 20;
    follower = std::make_unique<Follower>(server, dir.path, fo);
  }
};

}  // namespace

TEST(Replication, FollowerConvergesByteIdentical) {
  LeaderRig leader(ReplAckMode::kAsync, 1, /*segment_max_bytes=*/512);
  FollowerRig f(leader.shipper->port(), 1, /*segment_max_bytes=*/512);
  f.follower->start();

  rng::Engine eng(5);
  leader.drive(eng, 40);
  ASSERT_EQ(leader.server.version(), 40u);
  ASSERT_TRUE(wait_until([&] { return f.follower->applied_seq() == 40u; }))
      << "follower reached seq " << f.follower->applied_seq();

  // Same in-memory state, down to per-device statistics.
  expect_same_state(leader.server, f.server);

  // Same *published* model: the frames devices actually receive are
  // byte-identical.
  engine::ModelSnapshotBoard bl(&leader.reg), bf(&f.reg);
  bl.publish(leader.server);
  bf.publish(f.server);
  EXPECT_EQ(bl.current()->params_frame, bf.current()->params_frame);

  // Same bytes on disk: every WAL segment matches file-for-file (same
  // records, same segment boundaries, same encoding).
  f.follower->shutdown();
  const auto names = wal_segment_names(leader.dir.path);
  ASSERT_FALSE(names.empty());
  EXPECT_GT(names.size(), 1u) << "want multiple segments for a real check";
  EXPECT_EQ(names, wal_segment_names(f.dir.path));
  for (const auto& name : names)
    EXPECT_EQ(read_file(leader.dir.path + "/" + name),
              read_file(f.dir.path + "/" + name))
        << name;

  leader.shipper->shutdown();
}

TEST(Replication, SnapshotCatchUpPastCompactedHistory) {
  LeaderRig leader(ReplAckMode::kAsync, 1, /*segment_max_bytes=*/256);
  rng::Engine eng(6);
  leader.drive(eng, 30);
  // Compaction prunes shipped history: a fresh follower's cursor 0 now
  // falls in a gap and must be served a snapshot first.
  ASSERT_TRUE(leader.store->compact(leader.server));
  bool gap = false;
  store::read_wal_records(leader.dir.path, 0, 1, &gap);
  ASSERT_TRUE(gap) << "compaction should have pruned seq 1";

  FollowerRig f(leader.shipper->port());
  f.follower->start();
  ASSERT_TRUE(wait_until([&] { return f.follower->applied_seq() == 30u; }));
  EXPECT_GE(f.follower->snapshots_installed(), 1);
  expect_same_state(leader.server, f.server);

  // Streaming resumes above the snapshot.
  leader.drive(eng, 10);
  ASSERT_TRUE(wait_until([&] { return f.follower->applied_seq() == 40u; }));
  expect_same_state(leader.server, f.server);

  f.follower->shutdown();
  leader.shipper->shutdown();
}

TEST(Replication, QuorumGatesAcksOnFollowerDurability) {
  LeaderRig leader(ReplAckMode::kQuorum, 1, 4u << 20,
                   /*quorum_timeout_ms=*/250);
  rng::Engine eng(7);

  // No follower connected: the checkin applies but its ack must not be
  // released — await_quorum times out.
  leader.drive(eng, 1);
  EXPECT_FALSE(leader.shipper->await_quorum(leader.store->wal().last_seq()));

  FollowerRig f(leader.shipper->port());
  f.follower->start();
  ASSERT_TRUE(wait_until([&] { return f.follower->connected(); }));

  leader.drive(eng, 5);
  EXPECT_TRUE(leader.shipper->await_quorum(leader.store->wal().last_seq()))
      << "a connected, durably-appending follower satisfies the quorum";
  EXPECT_EQ(f.follower->applied_seq(), 6u);

  f.follower->shutdown();
  leader.shipper->shutdown();
}

// ----------------------------------------------------------- fencing

TEST(ReplFencing, LeaderFencedByNewerHello) {
  LeaderRig leader(ReplAckMode::kQuorum, /*epoch=*/1);
  ASSERT_FALSE(leader.shipper->fenced());

  auto conn =
      net::TcpConnection::connect("127.0.0.1", leader.shipper->port(), 2000);
  ASSERT_TRUE(conn.has_value());
  conn->set_deadline_ms(2000);
  net::ReplHelloMessage hello;
  hello.follower_id = 9;
  hello.epoch = 2;  // a promoted follower exists somewhere
  ASSERT_TRUE(conn->send_frame(
      net::encode_frame(net::MessageType::kReplHello, hello.serialize())));
  EXPECT_FALSE(conn->recv_frame().has_value()) << "fenced leader hangs up";
  ASSERT_TRUE(wait_until([&] { return leader.shipper->fenced(); }));
  // A fenced leader can no longer ack quorum writes: no split-brain.
  EXPECT_FALSE(leader.shipper->await_quorum(1));

  leader.shipper->shutdown();
}

TEST(ReplFencing, FollowerRefusesStaleFramesAndAdoptsNewer) {
  // Fake leader: a bare listener we script by hand.
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.has_value());

  FollowerRig f(listener->port());
  EpochStore(f.dir.path).store(3);
  // A leader of epoch 3 actually spoke to this follower (not just a
  // promise): witnessed too, so the hello may advertise it.
  EpochStore(f.dir.path, "witnessed-epoch").store(3);
  // Re-create so the follower loads the promised epoch (the rig already
  // built one against epoch 0).
  f.follower = nullptr;
  FollowerOptions fo;
  fo.leader_port = listener->port();
  fo.follower_id = 2;
  fo.store.wal.metrics = &f.reg;
  fo.metrics = &f.reg;
  fo.reconnect_backoff_ms = 20;
  f.follower = std::make_unique<Follower>(f.server, f.dir.path, fo);
  EXPECT_EQ(f.follower->epoch(), 3u);
  f.follower->start();

  // Session 1: a deposed leader (epoch 1) ships a frame — refused.
  {
    auto conn = listener->accept();
    ASSERT_TRUE(conn.has_value());
    conn->set_deadline_ms(2000);
    auto hello_frame = conn->recv_frame();
    ASSERT_TRUE(hello_frame.has_value());
    const auto hello = net::ReplHelloMessage::deserialize(
        net::decode_frame(*hello_frame).payload);
    EXPECT_EQ(hello.epoch, 3u);
    net::ReplAppendMessage stale;
    stale.epoch = 1;
    ASSERT_TRUE(conn->send_frame(net::encode_frame(
        net::MessageType::kReplAppend, stale.serialize())));
    // The refusal is not silent: an unsolicited ack carries the promised
    // epoch so the deposed sender fences itself (leader step-down)...
    auto refusal_frame = conn->recv_frame();
    ASSERT_TRUE(refusal_frame.has_value());
    const auto refusal = net::ReplAckMessage::deserialize(
        net::decode_frame(*refusal_frame).payload);
    EXPECT_EQ(refusal.epoch, 3u);
    // ...and then the follower hangs up.
    EXPECT_FALSE(conn->recv_frame().has_value()) << "follower hangs up";
  }
  ASSERT_TRUE(
      wait_until([&] { return f.follower->stale_frames_refused() >= 1; }));
  EXPECT_EQ(f.follower->applied_seq(), 0u);

  // Session 2 (the follower reconnects): a newer leader (epoch 5) ships a
  // real record — adopted durably, applied, acked at the new epoch.
  {
    auto conn = listener->accept();
    ASSERT_TRUE(conn.has_value());
    conn->set_deadline_ms(2000);
    ASSERT_TRUE(conn->recv_frame().has_value());  // hello
    rng::Engine eng(8);
    net::CheckinMessage m = random_checkin(eng, 1);
    net::ReplAppendMessage fresh;
    fresh.epoch = 5;
    fresh.want_ack = true;
    fresh.records.push_back({1, m.serialize()});
    ASSERT_TRUE(conn->send_frame(net::encode_frame(
        net::MessageType::kReplAppend, fresh.serialize())));
    auto ack_frame = conn->recv_frame();
    ASSERT_TRUE(ack_frame.has_value());
    const auto ack = net::ReplAckMessage::deserialize(
        net::decode_frame(*ack_frame).payload);
    EXPECT_EQ(ack.epoch, 5u);
    EXPECT_EQ(ack.durable_seq, 1u);
  }
  EXPECT_EQ(f.follower->epoch(), 5u);
  EXPECT_EQ(f.follower->applied_seq(), 1u);
  f.follower->shutdown();
  // The adopted epoch survived durably: a restart still refuses epoch < 5.
  EXPECT_EQ(EpochStore(f.dir.path).load(), 5u);
  // And it was witnessed (a leader spoke it), so a restarted hello may
  // advertise it.
  EXPECT_EQ(EpochStore(f.dir.path, "witnessed-epoch").load(), 5u);
  listener->close();
}

TEST(ReplFencing, RestartAdvertisesWitnessedNotPromisedEpoch) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.has_value());

  // The aftermath of failed candidacies: promises climbed to 5 with no
  // epoch-5 leader ever heard; the last leader that actually spoke to
  // this node led epoch 1.
  FollowerRig f(listener->port());
  EpochStore(f.dir.path).store(5);
  EpochStore(f.dir.path, "witnessed-epoch").store(1);
  f.follower = nullptr;
  FollowerOptions fo;
  fo.leader_port = listener->port();
  fo.follower_id = 3;
  fo.store.wal.metrics = &f.reg;
  fo.metrics = &f.reg;
  fo.reconnect_backoff_ms = 20;
  f.follower = std::make_unique<Follower>(f.server, f.dir.path, fo);
  EXPECT_EQ(f.follower->epoch(), 5u);
  EXPECT_EQ(f.follower->witnessed_epoch(), 1u);
  f.follower->start();

  // The restarted hello advertises the witness, not the promise: were it
  // the promise, this one starved node would fence the live epoch-1
  // leader it is reconnecting to.
  auto conn = listener->accept();
  ASSERT_TRUE(conn.has_value());
  conn->set_deadline_ms(2000);
  auto hello_frame = conn->recv_frame();
  ASSERT_TRUE(hello_frame.has_value());
  const auto hello = net::ReplHelloMessage::deserialize(
      net::decode_frame(*hello_frame).payload);
  EXPECT_EQ(hello.epoch, 1u);

  f.follower->shutdown();
  listener->close();
}

TEST(ReplFencing, RefusalAckStepsDownHeartbeatingLeader) {
  // A deposed leader that never ships records (devices keep checking in,
  // but its followers all refuse) must still learn of its deposition:
  // the refusal ack is the step-down signal.
  LeaderRig leader(
      ReplAckMode::kQuorum, /*epoch=*/1, 4u << 20, 400,
      [](ShipperOptions& o) { o.heartbeat_interval_ms = 20; });
  auto conn =
      net::TcpConnection::connect("127.0.0.1", leader.shipper->port(), 2000);
  ASSERT_TRUE(conn.has_value());
  conn->set_deadline_ms(5000);
  net::ReplHelloMessage hello;
  hello.follower_id = 7;
  hello.epoch = 1;  // matches: the session is accepted
  ASSERT_TRUE(conn->send_frame(
      net::encode_frame(net::MessageType::kReplHello, hello.serialize())));
  auto first = conn->recv_frame();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(net::decode_frame(*first).type, net::MessageType::kReplHeartbeat);

  // The unsolicited ack a real follower sends after refusing a stale
  // frame: "my promise is 3; you are deposed".
  net::ReplAckMessage refusal;
  refusal.epoch = 3;
  ASSERT_TRUE(conn->send_frame(
      net::encode_frame(net::MessageType::kReplAck, refusal.serialize())));
  ASSERT_TRUE(wait_until([&] { return leader.shipper->fenced(); }))
      << "an unsolicited higher-epoch ack must fence the leader";

  // Fenced: the session ends (in-flight heartbeats drain to EOF), no new
  // leases go out, and quorum acks are refused — the write outage is
  // over as soon as the real followers elect a successor.
  conn->set_deadline_ms(2000);
  while (conn->recv_frame().has_value()) {
  }
  EXPECT_NE(conn->last_error(), net::NetError::kTimeout)
      << "a fenced leader must hang up, not keep heartbeating";
  EXPECT_FALSE(leader.shipper->await_quorum(1));
  leader.shipper->shutdown();
}

TEST(Replication, SnapshotTransferHeartbeatsThroughThrottle) {
  // A throttled snapshot must not read as leader death: heartbeats
  // interleave with the chunks, so the receiver's detector keeps getting
  // re-armed however slow the transfer runs.
  LeaderRig leader(ReplAckMode::kNone, 1, /*segment_max_bytes=*/256, 400,
                   [](ShipperOptions& o) {
                     o.heartbeat_interval_ms = 20;
                     o.snapshot_chunk_bytes = 64;
                     o.snapshot_max_bytes_per_sec = 1000;
                   });
  rng::Engine eng(6);
  leader.drive(eng, 30);
  ASSERT_TRUE(leader.store->compact(leader.server));

  // Scripted follower with cursor 0 (inside the compacted gap): count
  // what arrives between the first and last snapshot chunk.
  auto conn =
      net::TcpConnection::connect("127.0.0.1", leader.shipper->port(), 2000);
  ASSERT_TRUE(conn.has_value());
  conn->set_deadline_ms(10'000);
  net::ReplHelloMessage hello;
  hello.follower_id = 4;
  hello.epoch = 1;
  ASSERT_TRUE(conn->send_frame(
      net::encode_frame(net::MessageType::kReplHello, hello.serialize())));

  int heartbeats_mid_transfer = 0;
  int chunks = 0;
  std::uint64_t got_bytes = 0;
  for (;;) {
    auto frame = conn->recv_frame();
    ASSERT_TRUE(frame.has_value()) << "transfer died mid-snapshot";
    const net::Frame f = net::decode_frame(*frame);
    if (f.type == net::MessageType::kReplHeartbeat) {
      if (chunks > 0) ++heartbeats_mid_transfer;
      continue;
    }
    ASSERT_EQ(f.type, net::MessageType::kReplSnapshot);
    const auto snap = net::ReplSnapshotMessage::deserialize(f.payload);
    ++chunks;
    got_bytes += snap.checkpoint.size();
    if (snap.last_chunk()) {
      EXPECT_EQ(got_bytes, snap.total_bytes);
      break;
    }
  }
  EXPECT_GT(chunks, 1) << "want a genuinely chunked transfer";
  EXPECT_GE(heartbeats_mid_transfer, 1)
      << "the throttle ran the transfer long but no heartbeat interleaved";
  leader.shipper->shutdown();
}
