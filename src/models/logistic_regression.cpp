#include "models/logistic_regression.hpp"

#include <cassert>
#include <cmath>

namespace crowdml::models {

MulticlassLogisticRegression::MulticlassLogisticRegression(std::size_t classes,
                                                           std::size_t dim,
                                                           double lambda)
    : Model(lambda), classes_(classes), dim_(dim) {
  assert(classes >= 2 && dim >= 1 && lambda >= 0.0);
}

linalg::Vector MulticlassLogisticRegression::scores(const linalg::Vector& w,
                                                    const linalg::Vector& x) const {
  assert(w.size() == param_dim() && x.size() == dim_);
  linalg::Vector s(classes_, 0.0);
  for (std::size_t k = 0; k < classes_; ++k) {
    const double* wk = w.data() + k * dim_;
    double acc = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) acc += wk[d] * x[d];
    s[k] = acc;
  }
  return s;
}

linalg::Vector MulticlassLogisticRegression::posterior(const linalg::Vector& w,
                                                       const linalg::Vector& x) const {
  linalg::Vector p = scores(w, x);
  const double mx = p[linalg::argmax(p)];
  double z = 0.0;
  for (double& v : p) {
    v = std::exp(v - mx);
    z += v;
  }
  linalg::scal(1.0 / z, p);
  return p;
}

double MulticlassLogisticRegression::predict(const linalg::Vector& w,
                                             const linalg::Vector& x) const {
  return static_cast<double>(linalg::argmax(scores(w, x)));
}

double MulticlassLogisticRegression::loss(const linalg::Vector& w,
                                          const Sample& s) const {
  const int y = s.label();
  assert(y >= 0 && static_cast<std::size_t>(y) < classes_);
  const linalg::Vector sc = scores(w, s.x);
  const double mx = sc[linalg::argmax(sc)];
  double z = 0.0;
  for (double v : sc) z += std::exp(v - mx);
  return -sc[static_cast<std::size_t>(y)] + mx + std::log(z);
}

void MulticlassLogisticRegression::add_loss_gradient(const linalg::Vector& w,
                                                     const Sample& s,
                                                     linalg::Vector& g) const {
  assert(g.size() == param_dim());
  const int y = s.label();
  const linalg::Vector p = posterior(w, s.x);
  for (std::size_t k = 0; k < classes_; ++k) {
    const double coef = p[k] - (static_cast<std::size_t>(y) == k ? 1.0 : 0.0);
    if (coef == 0.0) continue;
    double* gk = g.data() + k * dim_;
    for (std::size_t d = 0; d < dim_; ++d) gk[d] += coef * s.x[d];
  }
}

BinaryLogisticRegression::BinaryLogisticRegression(std::size_t dim, double lambda)
    : Model(lambda), dim_(dim) {
  assert(dim >= 1 && lambda >= 0.0);
}

double BinaryLogisticRegression::probability(const linalg::Vector& w,
                                             const linalg::Vector& x) const {
  assert(w.size() == dim_ && x.size() == dim_);
  const double z = linalg::dot(w, x);
  // Numerically stable logistic.
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double BinaryLogisticRegression::predict(const linalg::Vector& w,
                                         const linalg::Vector& x) const {
  return probability(w, x) >= 0.5 ? 1.0 : 0.0;
}

double BinaryLogisticRegression::loss(const linalg::Vector& w, const Sample& s) const {
  const int y = s.label();
  assert(y == 0 || y == 1);
  const double z = linalg::dot(w, s.x);
  // log(1 + exp(z)) - y*z, computed stably.
  const double softplus = z > 0.0 ? z + std::log1p(std::exp(-z)) : std::log1p(std::exp(z));
  return softplus - static_cast<double>(y) * z;
}

void BinaryLogisticRegression::add_loss_gradient(const linalg::Vector& w,
                                                 const Sample& s,
                                                 linalg::Vector& g) const {
  assert(g.size() == dim_);
  const double coef = probability(w, s.x) - static_cast<double>(s.label());
  linalg::axpy(coef, s.x, g);
}

}  // namespace crowdml::models
