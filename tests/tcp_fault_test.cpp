// Socket-layer fault tolerance: deadlines against stalled and hostile
// peers, connect taxonomy/resolution, the fault-injection proxy, and the
// server's connection management (cap, idle reaper, worker reaping).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/tcp_runtime.hpp"
#include "net/fault_proxy.hpp"
#include "net/tcp.hpp"
#include "opt/schedule.hpp"

using namespace crowdml;
using net::NetError;
using net::TcpConnection;
using net::TcpListener;

namespace {

using Clock = std::chrono::steady_clock;

long long elapsed_ms(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

/// A peer that accepts one connection and runs `script` on it.
class ScriptedPeer {
 public:
  template <typename Fn>
  explicit ScriptedPeer(Fn script) {
    auto listener = TcpListener::bind(0);
    EXPECT_TRUE(listener.has_value());
    listener_ = std::move(*listener);
    thread_ = std::thread([this, script = std::move(script)] {
      auto conn = listener_.accept();
      if (conn) script(*conn);
    });
  }
  ~ScriptedPeer() {
    listener_.close();
    if (thread_.joinable()) thread_.join();
  }
  std::uint16_t port() const { return listener_.port(); }

 private:
  TcpListener listener_;
  std::thread thread_;
};

core::Server make_learning_server(std::size_t param_dim, std::size_t classes) {
  core::ServerConfig cfg;
  cfg.param_dim = param_dim;
  cfg.num_classes = classes;
  return core::Server(cfg,
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::ConstantSchedule>(0.1), 100.0),
                      rng::Engine(1));
}

}  // namespace

// --- deadlines against stalled / hostile peers -------------------------

TEST(TcpDeadline, RecvFrameTimesOutAgainstSilentPeer) {
  ScriptedPeer peer([](TcpConnection& c) {
    std::uint8_t b;
    c.read_some(&b, 1);  // hold the connection open, never reply
  });
  auto client = TcpConnection::connect("127.0.0.1", peer.port(), 2000);
  ASSERT_TRUE(client.has_value());
  client->set_deadline_ms(150);

  const auto start = Clock::now();
  EXPECT_FALSE(client->recv_frame().has_value());
  EXPECT_EQ(client->last_error(), NetError::kTimeout);
  EXPECT_LT(elapsed_ms(start), 2000);
}

TEST(TcpDeadline, SlowLorisPeerIsBoundedByTotalDeadline) {
  // One header byte every 80 ms: each poll sees progress, but the total
  // frame deadline still fires.
  ScriptedPeer peer([](TcpConnection& c) {
    const std::uint8_t drip[4] = {'C', 'R', 'M', 'L'};
    for (std::uint8_t b : drip) {
      if (!c.write_some(&b, 1)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
    }
    std::uint8_t sink;
    c.read_some(&sink, 1);  // keep the socket open
  });
  auto client = TcpConnection::connect("127.0.0.1", peer.port(), 2000);
  ASSERT_TRUE(client.has_value());
  client->set_deadline_ms(200);

  const auto start = Clock::now();
  EXPECT_FALSE(client->recv_frame().has_value());
  EXPECT_EQ(client->last_error(), NetError::kTimeout);
  EXPECT_LT(elapsed_ms(start), 2000);
}

TEST(TcpDeadline, DeviceSessionExchangeIsBounded) {
  // Acceptance: TcpDeviceSession::exchange never blocks past the
  // configured deadline against a peer that accepts but never replies.
  ScriptedPeer peer([](TcpConnection& c) {
    std::uint8_t sink[64];
    while (c.read_some(sink, sizeof(sink)) > 0) {
    }  // swallow the request, send nothing back
  });
  core::TcpDeviceSession session("127.0.0.1", peer.port(), 200, 2000);

  const auto start = Clock::now();
  const auto reply = session.exchange(net::encode_frame(
      net::MessageType::kCheckoutRequest, net::CheckoutRequest{}.serialize()));
  EXPECT_FALSE(reply.has_value());
  EXPECT_LT(elapsed_ms(start), 2000);
  EXPECT_FALSE(session.connected());  // failed exchanges close the socket
}

// --- truncated / hostile frames ----------------------------------------

TEST(TcpHostileFrames, PartialHeaderThenCloseReturnsNullopt) {
  ScriptedPeer peer([](TcpConnection& c) {
    const std::uint8_t partial[3] = {'C', 'R', 'M'};
    c.write_some(partial, sizeof(partial));
    // destructor closes mid-header
  });
  auto client = TcpConnection::connect("127.0.0.1", peer.port(), 2000);
  ASSERT_TRUE(client.has_value());
  client->set_deadline_ms(2000);
  EXPECT_FALSE(client->recv_frame().has_value());
  EXPECT_EQ(client->last_error(), NetError::kClosed);
}

TEST(TcpHostileFrames, OversizedLengthRejectedWithoutAllocating) {
  // Header advertises a payload over kMaxFieldLength; recv_frame must
  // refuse before allocating or reading further.
  ScriptedPeer peer([](TcpConnection& c) {
    net::Bytes header = {'C', 'R', 'M', 'L', 1};
    const std::uint32_t huge = net::kMaxFieldLength + 1;
    for (int i = 0; i < 4; ++i)
      header.push_back(static_cast<std::uint8_t>((huge >> (8 * i)) & 0xFF));
    c.write_some(header.data(), header.size());
    std::uint8_t sink;
    c.read_some(&sink, 1);  // stay open: rejection must not need EOF
  });
  auto client = TcpConnection::connect("127.0.0.1", peer.port(), 2000);
  ASSERT_TRUE(client.has_value());
  client->set_deadline_ms(500);
  const auto start = Clock::now();
  EXPECT_FALSE(client->recv_frame().has_value());
  EXPECT_EQ(client->last_error(), NetError::kIoError);
  EXPECT_LT(elapsed_ms(start), 400);  // rejected from the header alone
}

TEST(TcpHostileFrames, TrailerCutShortReturnsNullopt) {
  ScriptedPeer peer([](TcpConnection& c) {
    const net::Bytes frame =
        net::encode_frame(net::MessageType::kAck, net::Bytes{1, 2, 3});
    c.write_some(frame.data(), frame.size() - 2);  // lose half the CRC
  });
  auto client = TcpConnection::connect("127.0.0.1", peer.port(), 2000);
  ASSERT_TRUE(client.has_value());
  client->set_deadline_ms(2000);
  EXPECT_FALSE(client->recv_frame().has_value());
  EXPECT_EQ(client->last_error(), NetError::kClosed);
}

// --- connect: resolution and error taxonomy ----------------------------

TEST(TcpConnect, HostnameResolvesViaGetaddrinfo) {
  ScriptedPeer peer([](TcpConnection& c) {
    const auto frame = c.recv_frame();
    if (frame) c.send_frame(*frame);  // echo
  });
  auto client = TcpConnection::connect("localhost", peer.port(), 2000);
  ASSERT_TRUE(client.has_value());
  const net::Bytes frame =
      net::encode_frame(net::MessageType::kAck, net::Bytes{9});
  ASSERT_TRUE(client->send_frame(frame));
  client->set_deadline_ms(2000);
  const auto echoed = client->recv_frame();
  ASSERT_TRUE(echoed.has_value());
  EXPECT_EQ(*echoed, frame);
}

TEST(TcpConnect, RefusedPortClassifiedAsRefused) {
  std::uint16_t dead_port;
  {
    auto listener = TcpListener::bind(0);
    ASSERT_TRUE(listener.has_value());
    dead_port = listener->port();
  }  // closed: nothing listens here now
  NetError err = NetError::kNone;
  EXPECT_FALSE(
      TcpConnection::connect("127.0.0.1", dead_port, 2000, &err).has_value());
  EXPECT_EQ(err, NetError::kRefused);
}

TEST(TcpConnect, UnresolvableHostFailsCleanly) {
  NetError err = NetError::kNone;
  EXPECT_FALSE(
      TcpConnection::connect("256.256.256.256", 1, 500, &err).has_value());
  EXPECT_EQ(err, NetError::kIoError);
}

TEST(TcpListener, BindsCallerChosenAddress) {
  auto listener = TcpListener::bind("0.0.0.0", 0);
  ASSERT_TRUE(listener.has_value());
  auto client = TcpConnection::connect("127.0.0.1", listener->port(), 2000);
  EXPECT_TRUE(client.has_value());
}

// --- fault proxy --------------------------------------------------------

TEST(FaultProxy, TransparentWhenPolicyIsZero) {
  ScriptedPeer peer([](TcpConnection& c) {
    c.set_deadline_ms(5000);
    const auto frame = c.recv_frame();
    if (frame) c.send_frame(*frame);
  });
  net::FaultProxy proxy("127.0.0.1", peer.port(), net::FaultPolicy{},
                        rng::Engine(5));

  auto client = TcpConnection::connect("127.0.0.1", proxy.port(), 2000);
  ASSERT_TRUE(client.has_value());
  client->set_deadline_ms(5000);
  const net::Bytes frame =
      net::encode_frame(net::MessageType::kAck, net::Bytes{1, 2, 3});
  ASSERT_TRUE(client->send_frame(frame));
  const auto echoed = client->recv_frame();
  ASSERT_TRUE(echoed.has_value());
  EXPECT_EQ(*echoed, frame);

  proxy.shutdown();
  const auto counts = proxy.counts();
  EXPECT_EQ(counts.connections, 1);
  EXPECT_EQ(counts.killed_connections(), 0);
  EXPECT_EQ(counts.corrupted, 0);
}

TEST(FaultProxy, DropPolicyKillsConnections) {
  ScriptedPeer peer([](TcpConnection& c) {
    c.set_deadline_ms(5000);
    const auto frame = c.recv_frame();
    if (frame) c.send_frame(*frame);
  });
  net::FaultPolicy policy;
  policy.drop_conn_prob = 1.0;
  net::FaultProxy proxy("127.0.0.1", peer.port(), policy, rng::Engine(5));

  auto client = TcpConnection::connect("127.0.0.1", proxy.port(), 2000);
  ASSERT_TRUE(client.has_value());
  client->set_deadline_ms(5000);
  client->send_frame(net::encode_frame(net::MessageType::kAck, net::Bytes{1}));
  EXPECT_FALSE(client->recv_frame().has_value());

  proxy.shutdown();
  EXPECT_GE(proxy.counts().dropped, 1);
}

TEST(FaultProxy, CorruptionIsCaughtByFrameCrc) {
  ScriptedPeer peer([](TcpConnection& c) {
    c.set_deadline_ms(5000);
    const auto frame = c.recv_frame();
    if (frame) c.send_frame(*frame);
  });
  net::FaultPolicy policy;
  policy.corrupt_prob = 1.0;
  net::FaultProxy proxy("127.0.0.1", peer.port(), policy, rng::Engine(5));

  auto client = TcpConnection::connect("127.0.0.1", proxy.port(), 2000);
  ASSERT_TRUE(client.has_value());
  client->set_deadline_ms(5000);
  const net::Bytes frame =
      net::encode_frame(net::MessageType::kAck, net::Bytes{1, 2, 3, 4});
  ASSERT_TRUE(client->send_frame(frame));
  const auto reply = client->recv_frame();
  proxy.shutdown();
  EXPECT_GE(proxy.counts().corrupted, 1);
  if (reply) {
    // Byte flips that survive framing must be caught by decode_frame's CRC
    // (a flip in the length field may instead desync framing entirely —
    // then recv_frame already failed above).
    EXPECT_THROW(net::decode_frame(*reply), net::CodecError);
  }
}

// --- server connection management ---------------------------------------

TEST(TcpServer, RefusesBeyondMaxConnections) {
  auto server = make_learning_server(4, 2);
  net::AuthRegistry registry(rng::Engine(2));
  core::TcpServerConfig cfg;
  cfg.max_connections = 2;
  core::TcpCrowdServer tcp(server, registry, cfg);

  core::TcpDeviceSession a("127.0.0.1", tcp.port(), 5000, 2000);
  core::TcpDeviceSession b("127.0.0.1", tcp.port(), 5000, 2000);
  // Park two real workers by completing one exchange on each.
  net::CheckoutRequest req;
  ASSERT_TRUE(a.exchange(net::encode_frame(net::MessageType::kCheckoutRequest,
                                           req.serialize()))
                  .has_value());
  ASSERT_TRUE(b.exchange(net::encode_frame(net::MessageType::kCheckoutRequest,
                                           req.serialize()))
                  .has_value());

  // The third connection gets a "server at capacity" nack, then EOF.
  core::TcpDeviceSession c("127.0.0.1", tcp.port(), 5000, 2000);
  const auto reply = c.exchange(net::encode_frame(
      net::MessageType::kCheckoutRequest, req.serialize()));
  if (reply.has_value()) {
    const net::Frame f = net::decode_frame(*reply);
    ASSERT_EQ(f.type, net::MessageType::kAck);
    EXPECT_FALSE(net::AckMessage::deserialize(f.payload).ok);
  }
  EXPECT_GE(tcp.net_snapshot().refused_connections, 1);

  tcp.shutdown();
}

TEST(TcpServer, IdleConnectionsAreClosedAndWorkersReaped) {
  auto server = make_learning_server(4, 2);
  net::AuthRegistry registry(rng::Engine(2));
  core::TcpServerConfig cfg;
  cfg.idle_timeout_ms = 100;
  core::TcpCrowdServer tcp(server, registry, cfg);

  // An idle device is disconnected by the server's deadline...
  auto idle = TcpConnection::connect("127.0.0.1", tcp.port(), 2000);
  ASSERT_TRUE(idle.has_value());
  idle->set_deadline_ms(3000);
  EXPECT_FALSE(idle->recv_frame().has_value());  // server closes; EOF here
  EXPECT_EQ(idle->last_error(), NetError::kClosed);

  // ...and the next accept reaps the finished worker.
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  long long reaped = 0;
  while (Clock::now() < deadline) {
    auto poke = TcpConnection::connect("127.0.0.1", tcp.port(), 2000);
    ASSERT_TRUE(poke.has_value());
    reaped = tcp.net_snapshot().reaped_workers;
    if (reaped >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(reaped, 1);
  EXPECT_GE(tcp.net_snapshot().idle_closed, 1);

  tcp.shutdown();
}

// --- reconnecting session ----------------------------------------------

TEST(ReconnectingSession, SurvivesServerSideDisconnects) {
  auto server = make_learning_server(4, 2);
  net::AuthRegistry registry(rng::Engine(2));
  core::TcpServerConfig cfg;
  cfg.idle_timeout_ms = 80;  // aggressively hang up on idle devices
  core::TcpCrowdServer tcp(server, registry, cfg);

  const auto creds = registry.enroll();
  net::CheckoutRequest req;
  req.device_id = creds.device_id;
  req.auth_tag = creds.sign(req.body());
  const net::Bytes checkout =
      net::encode_frame(net::MessageType::kCheckoutRequest, req.serialize());

  core::ReconnectPolicy policy;
  policy.io_deadline_ms = 2000;
  policy.backoff_base_ms = 5;
  policy.backoff_max_ms = 50;
  core::NetCounters counters;
  core::ReconnectingDeviceSession session("127.0.0.1", tcp.port(), policy,
                                          rng::Engine(9), &counters);

  int successes = 0;
  for (int round = 0; round < 4; ++round) {
    const auto reply = session.exchange(checkout);
    if (reply &&
        net::decode_frame(*reply).type == net::MessageType::kParams)
      ++successes;
    // Outlive the server's idle deadline so the connection is dropped
    // between rounds and the session must reconnect.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  EXPECT_EQ(successes, 4);
  EXPECT_GE(session.reconnects(), 1);
  EXPECT_EQ(counters.snapshot().reconnects, session.reconnects());

  tcp.shutdown();
}

TEST(ReconnectingSession, GivesUpAfterMaxAttemptsWhenServerIsGone) {
  std::uint16_t dead_port;
  {
    auto listener = TcpListener::bind(0);
    ASSERT_TRUE(listener.has_value());
    dead_port = listener->port();
  }
  core::ReconnectPolicy policy;
  policy.max_attempts = 3;
  policy.connect_timeout_ms = 500;
  policy.backoff_base_ms = 1;
  policy.backoff_max_ms = 5;
  core::ReconnectingDeviceSession session("127.0.0.1", dead_port, policy,
                                          rng::Engine(9));
  const auto reply = session.exchange(net::encode_frame(
      net::MessageType::kCheckoutRequest, net::CheckoutRequest{}.serialize()));
  EXPECT_FALSE(reply.has_value());
  EXPECT_EQ(session.retries(), 2);  // attempts beyond the first
}

TEST(ReconnectingSession, NeverReplaysACheckin) {
  // A peer that accepts the checkin bytes and then goes silent: the
  // session must abandon the checkin (one send, no replay), not retry it.
  ScriptedPeer peer([](TcpConnection& c) {
    std::uint8_t sink[256];
    while (c.read_some(sink, sizeof(sink)) > 0) {
    }
  });
  core::ReconnectPolicy policy;
  policy.io_deadline_ms = 150;
  policy.max_attempts = 5;
  policy.backoff_base_ms = 1;
  core::ReconnectingDeviceSession session("127.0.0.1", peer.port(), policy,
                                          rng::Engine(9));

  net::CheckinMessage msg;
  msg.device_id = 1;
  msg.g_hat = {0.0, 0.0};
  msg.ns = 1;
  msg.ny_hat = {1, 0};
  const auto reply = session.exchange(
      net::encode_frame(net::MessageType::kCheckin, msg.serialize()));
  EXPECT_FALSE(reply.has_value());
  EXPECT_EQ(session.checkin_frames_sent(), 1);   // exactly one send
  EXPECT_EQ(session.checkins_abandoned(), 1);
  EXPECT_GE(session.timeouts(), 1);
}
