#include "net/auth.hpp"

namespace crowdml::net {

Digest DeviceCredentials::sign(const Bytes& body) const {
  return hmac_sha256(key, body);
}

AuthRegistry::AuthRegistry(rng::Engine eng) : eng_(eng) {}

DeviceCredentials AuthRegistry::enroll() {
  std::lock_guard lock(mu_);
  DeviceCredentials cred;
  cred.device_id = next_id_++;
  cred.key.resize(32);
  for (std::size_t i = 0; i < cred.key.size(); i += 8) {
    const std::uint64_t word = eng_();
    for (std::size_t b = 0; b < 8 && i + b < cred.key.size(); ++b)
      cred.key[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
  }
  keys_[cred.device_id] = cred.key;
  return cred;
}

void AuthRegistry::revoke(std::uint64_t device_id) {
  std::lock_guard lock(mu_);
  keys_.erase(device_id);
}

bool AuthRegistry::verify(std::uint64_t device_id, const Bytes& body,
                          const Digest& tag) const {
  std::lock_guard lock(mu_);
  const auto it = keys_.find(device_id);
  if (it == keys_.end()) return false;
  return digest_equal(hmac_sha256(it->second, body), tag);
}

std::size_t AuthRegistry::enrolled_count() const {
  std::lock_guard lock(mu_);
  return keys_.size();
}

}  // namespace crowdml::net
