#!/bin/sh
# End-to-end CLI pipeline: make-dataset -> server -> device -> eval.
# Run by ctest with the build directory as argument.
set -eu
BUILD_DIR="$1"
WORK=$(mktemp -d)
trap 'kill $SERVER_PID 2>/dev/null || true; rm -rf "$WORK"' EXIT
cd "$WORK"

"$BUILD_DIR/tools/crowdml-make-dataset" --kind mnist --scale 0.05 --shards 2 \
    --shard-prefix dev_ --seed 42

"$BUILD_DIR/tools/crowdml-server" --port 0 --classes 10 --dim 50 \
    --enroll 2 --keys-out keys.csv --checkpoint state.bin \
    --max-iterations 2000 --report-every 1 > server.log 2>&1 &
SERVER_PID=$!

# Wait for the server to announce its port.
PORT=""
for i in $(seq 1 50); do
  PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' server.log)
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "server did not start"; cat server.log; exit 1; }

KEY1=$(sed -n 1p keys.csv)
KEY2=$(sed -n 2p keys.csv)
"$BUILD_DIR/tools/crowdml-device" --host 127.0.0.1 --port "$PORT" \
    --data dev_0.csv --key "$KEY1" --minibatch 10 --epsilon 50 --passes 6 \
    --classes 10 &
DEV1=$!
"$BUILD_DIR/tools/crowdml-device" --host 127.0.0.1 --port "$PORT" \
    --data dev_1.csv --key "$KEY2" --minibatch 10 --epsilon 50 --passes 6 \
    --classes 10 &
DEV2=$!
wait $DEV1
wait $DEV2

# Let the server hit its iteration cap and write the final checkpoint.
for i in $(seq 1 100); do
  kill -0 $SERVER_PID 2>/dev/null || break
  sleep 0.1
done
kill $SERVER_PID 2>/dev/null || true
wait $SERVER_PID 2>/dev/null || true

[ -f state.bin ] || { echo "no checkpoint written"; cat server.log; exit 1; }

OUT=$("$BUILD_DIR/tools/crowdml-eval" --checkpoint state.bin --data test.csv \
      --classes 10)
echo "$OUT"
ERR=$(echo "$OUT" | sed -n 's/test error: *//p')
# The model must beat chance (0.9) clearly after the DP updates.
awk "BEGIN { exit !($ERR < 0.5) }" || {
  echo "learned model too weak: $ERR"; exit 1; }
echo "CLI pipeline OK (test error $ERR)"
