#include "engine/checkin_queue.hpp"

#include <chrono>

namespace crowdml::engine {

namespace {

obs::MetricsRegistry& registry_of(obs::MetricsRegistry* metrics) {
  return metrics ? *metrics : obs::default_registry();
}

}  // namespace

CheckinQueue::CheckinQueue(std::size_t max, obs::MetricsRegistry* metrics)
    : max_(max == 0 ? 1 : max),
      depth_gauge_(registry_of(metrics).gauge(
          "crowdml_engine_queue_depth",
          "Checkins waiting for the applier thread",
          obs::Provenance::kTransportEvent)),
      enqueued_total_(registry_of(metrics).counter(
          "crowdml_engine_checkins_enqueued_total",
          "Requests admitted to the checkin queue",
          obs::Provenance::kTransportEvent)),
      shed_total_(registry_of(metrics).counter(
          "crowdml_engine_checkins_shed_total",
          "Requests shed because the checkin queue was full",
          obs::Provenance::kTransportEvent)) {}

bool CheckinQueue::try_push(CheckinWork work) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= max_) {
      ++shed_total_;
      return false;
    }
    items_.push_back(std::move(work));
    ++enqueued_total_;
    depth_gauge_.set(static_cast<double>(items_.size()));
  }
  cv_.notify_one();
  return true;
}

std::size_t CheckinQueue::drain(std::vector<CheckinWork>& out,
                                std::size_t max_batch, int timeout_ms) {
  if (max_batch == 0) return 0;
  std::unique_lock<std::mutex> lock(mu_);
  if (items_.empty() && !closed_) {
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms),
                 [this] { return !items_.empty() || closed_; });
  }
  std::size_t n = 0;
  while (n < max_batch && !items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
    ++n;
  }
  depth_gauge_.set(static_cast<double>(items_.size()));
  return n;
}

void CheckinQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool CheckinQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t CheckinQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace crowdml::engine
