// Tests for the Section V-C hyperparameter-selection protocol.
#include <gtest/gtest.h>

#include "core/model_selection.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"

using namespace crowdml;

namespace {

data::Dataset small_dataset() {
  rng::Engine eng(77);
  data::MixtureSpec spec;
  spec.num_classes = 3;
  spec.raw_dim = 30;
  spec.latent_dim = 10;
  spec.pca_dim = 8;
  spec.separation = 3.5;
  spec.train_size = 1200;
  spec.test_size = 300;
  return data::generate_mixture(spec, eng);
}

core::CrowdSimConfig base_config() {
  core::CrowdSimConfig cfg;
  cfg.num_devices = 20;
  cfg.max_total_samples = 3600;
  cfg.eval_points = 3;
  cfg.projection_radius = 500.0;
  cfg.seed = 1;
  return cfg;
}

}  // namespace

TEST(ModelSelection, EvaluatesFullGridAndPicksArgmin) {
  const data::Dataset ds = small_dataset();
  const auto factory = [&](double lambda) -> std::unique_ptr<models::Model> {
    return std::make_unique<models::MulticlassLogisticRegression>(3, 8, lambda);
  };
  const auto result = core::select_hyperparameters(
      factory, ds, {0.001, 50.0}, {0.0, 0.1}, base_config(), 2);

  EXPECT_EQ(result.grid.size(), 4u);
  for (const auto& p : result.grid) {
    EXPECT_GE(p.mean_final_error, 0.0);
    EXPECT_LE(p.mean_final_error, 1.0);
    EXPECT_GE(result.best.mean_final_error, 0.0);
    EXPECT_LE(result.best.mean_final_error, p.mean_final_error + 1e-12);
  }
  // c = 0.001 barely moves the parameters; c = 50 must win.
  EXPECT_DOUBLE_EQ(result.best.learning_rate_c, 50.0);
  EXPECT_LT(result.best.mean_final_error, 0.2);
}

TEST(ModelSelection, HeavyRegularizationLoses) {
  const data::Dataset ds = small_dataset();
  const auto factory = [&](double lambda) -> std::unique_ptr<models::Model> {
    return std::make_unique<models::MulticlassLogisticRegression>(3, 8, lambda);
  };
  const auto result = core::select_hyperparameters(
      factory, ds, {50.0}, {0.0, 100.0}, base_config(), 1);
  ASSERT_EQ(result.grid.size(), 2u);
  EXPECT_DOUBLE_EQ(result.best.lambda, 0.0);
}

TEST(ModelSelection, DeterministicGivenBaseSeed) {
  const data::Dataset ds = small_dataset();
  const auto factory = [&](double lambda) -> std::unique_ptr<models::Model> {
    return std::make_unique<models::MulticlassLogisticRegression>(3, 8, lambda);
  };
  const auto r1 = core::select_hyperparameters(factory, ds, {10.0}, {0.0},
                                               base_config(), 2);
  const auto r2 = core::select_hyperparameters(factory, ds, {10.0}, {0.0},
                                               base_config(), 2);
  EXPECT_DOUBLE_EQ(r1.best.mean_final_error, r2.best.mean_final_error);
}
