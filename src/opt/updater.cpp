#include "opt/updater.hpp"

#include <cassert>
#include <cmath>

namespace crowdml::opt {

SgdUpdater::SgdUpdater(std::unique_ptr<LearningRateSchedule> schedule, double radius)
    : schedule_(std::move(schedule)), radius_(radius) {
  assert(schedule_ && radius_ > 0.0);
}

void SgdUpdater::apply(linalg::Vector& w, const linalg::Vector& g) {
  assert(w.size() == g.size());
  const double eta = schedule_->rate(next_step());
  linalg::axpy(-eta, g, w);
  linalg::project_l2_ball(w, radius_);
}

AdaGradUpdater::AdaGradUpdater(double eta0, double radius, double delta)
    : eta0_(eta0), radius_(radius), delta_(delta) {
  assert(eta0 > 0.0 && radius > 0.0 && delta > 0.0);
}

void AdaGradUpdater::apply(linalg::Vector& w, const linalg::Vector& g) {
  assert(w.size() == g.size());
  if (accum_.size() != g.size()) accum_.assign(g.size(), 0.0);
  next_step();
  for (std::size_t i = 0; i < w.size(); ++i) {
    accum_[i] += g[i] * g[i];
    w[i] -= eta0_ / std::sqrt(delta_ + accum_[i]) * g[i];
  }
  linalg::project_l2_ball(w, radius_);
}

void AdaGradUpdater::reset() {
  Updater::reset();
  accum_.clear();
}

MomentumUpdater::MomentumUpdater(std::unique_ptr<LearningRateSchedule> schedule,
                                 double radius, double beta)
    : schedule_(std::move(schedule)), radius_(radius), beta_(beta) {
  assert(schedule_ && radius > 0.0 && beta >= 0.0 && beta < 1.0);
}

void MomentumUpdater::apply(linalg::Vector& w, const linalg::Vector& g) {
  assert(w.size() == g.size());
  if (velocity_.size() != g.size()) velocity_.assign(g.size(), 0.0);
  const double eta = schedule_->rate(next_step());
  for (std::size_t i = 0; i < w.size(); ++i) {
    velocity_[i] = beta_ * velocity_[i] - eta * g[i];
    w[i] += velocity_[i];
  }
  linalg::project_l2_ball(w, radius_);
}

void MomentumUpdater::reset() {
  Updater::reset();
  velocity_.clear();
}

AdamUpdater::AdamUpdater(double eta0, double radius, double beta1,
                         double beta2, double epsilon)
    : eta0_(eta0),
      radius_(radius),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  assert(eta0 > 0.0 && radius > 0.0);
  assert(beta1 >= 0.0 && beta1 < 1.0 && beta2 >= 0.0 && beta2 < 1.0);
  assert(epsilon > 0.0);
}

void AdamUpdater::apply(linalg::Vector& w, const linalg::Vector& g) {
  assert(w.size() == g.size());
  if (m_.size() != g.size()) {
    m_.assign(g.size(), 0.0);
    v_.assign(g.size(), 0.0);
  }
  const auto t = static_cast<double>(next_step());
  const double bc1 = 1.0 - std::pow(beta1_, t);
  const double bc2 = 1.0 - std::pow(beta2_, t);
  for (std::size_t i = 0; i < w.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * g[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * g[i] * g[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    w[i] -= eta0_ * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
  linalg::project_l2_ball(w, radius_);
}

void AdamUpdater::reset() {
  Updater::reset();
  m_.clear();
  v_.clear();
}

DualAveragingUpdater::DualAveragingUpdater(double c, double radius)
    : c_(c), radius_(radius) {
  assert(c > 0.0 && radius > 0.0);
}

void DualAveragingUpdater::apply(linalg::Vector& w, const linalg::Vector& g) {
  assert(w.size() == g.size());
  if (gradient_sum_.size() != g.size()) gradient_sum_.assign(g.size(), 0.0);
  const auto t = static_cast<double>(next_step());
  linalg::axpy(1.0, g, gradient_sum_);
  const double scale = -c_ / std::sqrt(t);  // w_{t+1} = -(c/sqrt(t)) z_t
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = scale * gradient_sum_[i];
  linalg::project_l2_ball(w, radius_);
}

void DualAveragingUpdater::reset() {
  Updater::reset();
  gradient_sum_.clear();
}

void PolyakAverager::observe(const linalg::Vector& w) {
  if (avg_.size() != w.size()) {
    avg_ = w;
    count_ = 1;
    return;
  }
  ++count_;
  const double alpha = 1.0 / static_cast<double>(count_);
  for (std::size_t i = 0; i < w.size(); ++i) avg_[i] += alpha * (w[i] - avg_[i]);
}

void PolyakAverager::reset() {
  avg_.clear();
  count_ = 0;
}

}  // namespace crowdml::opt
