// Sharded-leader tests (docs/SHARDING.md): the stable device hash is
// pinned byte-for-byte (a wire-adjacent contract), the shard map
// partitions and parses correctly, the fixed-point merge is exactly
// deterministic (live apply == WAL replay, bit for bit), Shard* frames
// are refused without the replication-key seal, wrong-shard checkins
// redirect pre-application and ReconnectingDeviceSession follows them,
// and a two-shard cluster with a MergeDirector converges every shard to
// the identical count-weighted model (the ShardSmoke suite backing the
// shard_smoke ctest).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "core/tcp_runtime.hpp"
#include "engine/epoll_server.hpp"
#include "models/logistic_regression.hpp"
#include "opt/schedule.hpp"
#include "shard/director.hpp"
#include "shard/merge.hpp"
#include "shard/service.hpp"
#include "shard/shard_map.hpp"
#include "store/durable_store.hpp"

using namespace crowdml;

namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "crowdml_shard_XXXXXX")
            .string();
    if (!mkdtemp(tmpl.data())) throw std::runtime_error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

core::ServerConfig server_config(std::size_t param_dim, std::size_t classes) {
  core::ServerConfig c;
  c.param_dim = param_dim;
  c.num_classes = classes;
  return c;
}

std::unique_ptr<opt::Updater> sgd(double c = 1.0) {
  return std::make_unique<opt::SgdUpdater>(
      std::make_unique<opt::SqrtDecaySchedule>(c), 500.0);
}

// Apply `n` deterministic direct checkins so a server's model diverges
// from its initial state in a reproducible way.
void apply_checkins(core::Server& server, int n, double scale) {
  for (int i = 0; i < n; ++i) {
    net::CheckinMessage m;
    m.device_id = 1 + static_cast<std::uint64_t>(i);
    m.g_hat = {scale * 0.1, -scale * 0.2, scale * 0.3, -scale * 0.4};
    m.ns = 5;
    m.ne_hat = 1;
    m.ny_hat = {2, 3};
    ASSERT_TRUE(server.handle_checkin(m).ok);
  }
}

net::Bytes sealed_frame(const replica::ReplKey& key, net::MessageType type,
                        const net::Bytes& payload) {
  return net::encode_frame(type,
                           replica::seal_repl_payload(key, type, payload));
}

replica::ReplKey test_key() { return replica::ReplKey{1, 2, 3, 4, 5, 6}; }

}  // namespace

// ----------------------------------------------------------- shard map

TEST(ShardMap, StableHashPinnedForever) {
  // Changing stable_device_hash re-partitions every deployed fleet at
  // once (checkins start bouncing between shards). These values are the
  // contract; a mismatch here means a flag-day wire break.
  EXPECT_EQ(shard::stable_device_hash(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(shard::stable_device_hash(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(shard::stable_device_hash(2), 0x975835de1c9756ceULL);
  EXPECT_EQ(shard::stable_device_hash(17), 0x808475f02ee37363ULL);
  EXPECT_EQ(shard::stable_device_hash(42), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(shard::stable_device_hash(0xDEADBEEFULL), 0x4adfb90f68c9eb9bULL);
  EXPECT_EQ(shard::stable_device_hash(~0ULL), 0xe4d971771b652c20ULL);
}

TEST(ShardMap, ParsesCsvAndRejectsGarbage) {
  const auto map = shard::ShardMap::parse("127.0.0.1:9000,10.0.0.2:9001");
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(map->size(), 2u);
  EXPECT_EQ(map->addr(0), "127.0.0.1:9000");
  EXPECT_EQ(map->addr(1), "10.0.0.2:9001");

  EXPECT_FALSE(shard::ShardMap::parse("").has_value());
  EXPECT_FALSE(shard::ShardMap::parse("no-port").has_value());
  EXPECT_FALSE(shard::ShardMap::parse("h:1,,h:2").has_value());
  EXPECT_FALSE(shard::ShardMap::parse("h:1,h:notaport").has_value());
}

TEST(ShardMap, PartitionsEveryDeviceAndSingleShardOwnsAll) {
  const shard::ShardMap map({"a:1", "b:2", "c:3"});
  // shard_of is hash mod size, so it must agree with the pinned hash.
  for (std::uint64_t id = 0; id < 500; ++id) {
    const std::size_t s = map.shard_of(id);
    EXPECT_LT(s, 3u);
    EXPECT_EQ(s, shard::stable_device_hash(id) % 3);
  }
  // --shards 1: every device maps to shard 0, so no redirect can fire.
  const shard::ShardMap one({"a:1"});
  for (std::uint64_t id = 0; id < 100; ++id) EXPECT_EQ(one.shard_of(id), 0u);
}

TEST(ShardMap, WalDirNamespacing) {
  EXPECT_EQ(shard::shard_wal_dir("/w", 0, 1), "/w");
  EXPECT_EQ(shard::shard_wal_dir("/w", 0, 4), "/w/shard-000");
  EXPECT_EQ(shard::shard_wal_dir("/w", 3, 4), "/w/shard-003");
}

// ---------------------------------------------------------- merge math

TEST(ShardMerge, QuantizeRoundTripsOnGrid) {
  const linalg::Vector w = {0.5, -1.25, 0.0, 123.456, -0.000001};
  const auto q = shard::quantize_params(w);
  const linalg::Vector back = shard::dequantize_params(q);
  ASSERT_EQ(back.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(back[i], w[i], 1.0 / (1 << 20));
  // Dequantize(quantize) is idempotent: a second round trip is exact.
  EXPECT_EQ(shard::quantize_params(back), q);
}

TEST(ShardMerge, CountWeightedAverageIsExactInFixedPoint) {
  net::ShardModelMessage a;
  a.checkins = 1;
  a.q = shard::quantize_params({1.0, -2.0});
  net::ShardModelMessage b;
  b.checkins = 3;
  b.q = shard::quantize_params({5.0, 2.0});

  const auto merged = shard::merge_models({a, b});
  ASSERT_TRUE(merged.has_value());
  // (1*1 + 3*5)/4 = 4.0 and (1*-2 + 3*2)/4 = 1.0 — exact on the grid.
  const linalg::Vector w = shard::dequantize_params(*merged);
  EXPECT_DOUBLE_EQ(w[0], 4.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
  EXPECT_EQ(shard::total_checkins({a, b}), 4u);
}

TEST(ShardMerge, ZeroWeightShardsAndDegenerateCyclesSkipped) {
  net::ShardModelMessage idle;
  idle.checkins = 0;
  idle.q = shard::quantize_params({100.0, 100.0});
  net::ShardModelMessage busy;
  busy.checkins = 7;
  busy.q = shard::quantize_params({2.0, -2.0});

  // An idle shard contributes no weight: the merge equals the busy model.
  const auto merged = shard::merge_models({idle, busy});
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(*merged, busy.q);

  // All idle: nothing to merge.
  EXPECT_FALSE(shard::merge_models({idle, idle}).has_value());
  // Dimension disagreement: refuse rather than corrupt.
  net::ShardModelMessage short_model;
  short_model.checkins = 1;
  short_model.q = {1};
  EXPECT_FALSE(shard::merge_models({busy, short_model}).has_value());
  // Empty pull set: nothing to merge.
  EXPECT_FALSE(shard::merge_models({}).has_value());
}

TEST(ShardMerge, MergeRecordRoundTripsAndRejectsForeignKinds) {
  shard::MergeRecord rec;
  rec.merge_round = 12;
  rec.total_checkins = 99;
  rec.w = {0.25, -0.5, 0.75};
  const net::Bytes bytes = rec.serialize();

  const shard::MergeRecord back = shard::MergeRecord::deserialize(bytes);
  EXPECT_EQ(back.merge_round, 12u);
  EXPECT_EQ(back.total_checkins, 99u);
  EXPECT_EQ(back.w, rec.w);

  // A plain checkin payload is not a merge record.
  net::CheckinMessage m;
  m.device_id = 1;
  m.g_hat = {0.1};
  m.ny_hat = {1};
  EXPECT_THROW(shard::MergeRecord::deserialize(m.serialize()),
               net::CodecError);
  EXPECT_THROW(shard::MergeRecord::deserialize({}), net::CodecError);
}

// ------------------------------------------------------- shard service

TEST(ShardService, PullReportsModelAndCheckinWeight) {
  core::Server server(server_config(4, 2), sgd(), rng::Engine(1));
  shard::ShardServiceConfig cfg;
  cfg.shard_id = 3;
  cfg.key = test_key();
  // The checkin weight baselines at construction (i.e. post-recovery).
  shard::ShardService svc(cfg, server);
  apply_checkins(server, 5, 1.0);

  net::ShardPullMessage pull;
  pull.merge_round = 1;
  const net::Bytes reply = svc.handle_shard_pull(replica::seal_repl_payload(
      cfg.key, net::MessageType::kShardPull, pull.serialize()));
  const net::Frame f = net::decode_frame(reply);
  ASSERT_EQ(f.type, net::MessageType::kShardModel);
  const auto opened = replica::open_repl_payload(
      cfg.key, net::MessageType::kShardModel, f.payload);
  ASSERT_TRUE(opened.has_value());
  const auto model = net::ShardModelMessage::deserialize(*opened);
  EXPECT_EQ(model.shard_id, 3u);
  EXPECT_EQ(model.merge_round, 1u);
  EXPECT_EQ(model.version, 5u);
  EXPECT_EQ(model.checkins, 5u);
  EXPECT_EQ(shard::dequantize_params(model.q),
            shard::dequantize_params(shard::quantize_params(
                server.parameters())));
}

TEST(ShardService, UnsealedFramesRefused) {
  core::Server server(server_config(4, 2), sgd(), rng::Engine(1));
  shard::ShardServiceConfig cfg;
  cfg.key = test_key();
  shard::ShardService svc(cfg, server);

  net::ShardPullMessage pull;
  // No seal at all: refused.
  net::Bytes reply = svc.handle_shard_pull(pull.serialize());
  net::Frame f = net::decode_frame(reply);
  ASSERT_EQ(f.type, net::MessageType::kAck);
  EXPECT_FALSE(net::AckMessage::deserialize(f.payload).ok);

  // Sealed under the wrong key: refused, and nothing was applied.
  net::ShardMergePushMessage push;
  push.merge_round = 1;
  push.q = shard::quantize_params({1, 2, 3, 4});
  reply = svc.handle_shard_merge_push(replica::seal_repl_payload(
      replica::ReplKey{9, 9, 9}, net::MessageType::kShardMergePush,
      push.serialize()));
  f = net::decode_frame(reply);
  ASSERT_EQ(f.type, net::MessageType::kAck);
  EXPECT_FALSE(net::AckMessage::deserialize(f.payload).ok);
  EXPECT_EQ(server.version(), 0u);
  EXPECT_EQ(svc.merges_applied(), 0u);

  // A seal for one Shard type must not open another (type byte is
  // inside the MAC): a ShardPull seal replayed as a merge push fails.
  reply = svc.handle_shard_merge_push(replica::seal_repl_payload(
      cfg.key, net::MessageType::kShardPull, push.serialize()));
  EXPECT_FALSE(
      net::AckMessage::deserialize(net::decode_frame(reply).payload).ok);
  EXPECT_EQ(server.version(), 0u);
}

TEST(ShardService, MergePushAppliesOnceAndIsIdempotentPerRound) {
  core::Server server(server_config(4, 2), sgd(), rng::Engine(1));
  apply_checkins(server, 3, 1.0);
  shard::ShardServiceConfig cfg;
  cfg.key = test_key();
  shard::ShardService svc(cfg, server);

  net::ShardMergePushMessage push;
  push.merge_round = 1;
  push.total_checkins = 8;
  push.q = shard::quantize_params({0.5, -0.5, 0.25, -0.25});

  const auto send = [&] {
    const net::Bytes reply = svc.handle_shard_merge_push(
        replica::seal_repl_payload(cfg.key, net::MessageType::kShardMergePush,
                                   push.serialize()));
    return net::AckMessage::deserialize(net::decode_frame(reply).payload);
  };

  ASSERT_TRUE(send().ok);
  const std::uint64_t version_after = server.version();
  EXPECT_EQ(version_after, 4u);  // 3 checkins + 1 merge overwrite
  EXPECT_EQ(server.parameters(), shard::dequantize_params(push.q));
  EXPECT_EQ(svc.merges_applied(), 1u);
  EXPECT_EQ(svc.checkins_since_merge(), 0u);

  // A director retry of the same round acks ok but must not re-apply.
  ASSERT_TRUE(send().ok);
  EXPECT_EQ(server.version(), version_after);
  EXPECT_EQ(svc.merges_applied(), 1u);

  // The next round applies again.
  push.merge_round = 2;
  ASSERT_TRUE(send().ok);
  EXPECT_EQ(server.version(), version_after + 1);
  EXPECT_EQ(svc.last_merge_round(), 2u);
}

TEST(ShardService, DimensionMismatchRejectedWithoutStateChange) {
  core::Server server(server_config(4, 2), sgd(), rng::Engine(1));
  shard::ShardServiceConfig cfg;
  shard::ShardService svc(cfg, server);  // empty key: seal is pass-through

  net::ShardMergePushMessage push;
  push.merge_round = 1;
  push.q = shard::quantize_params({1.0, 2.0});  // wrong dim
  const net::Bytes reply =
      svc.handle_shard_merge_push(replica::seal_repl_payload(
          cfg.key, net::MessageType::kShardMergePush, push.serialize()));
  EXPECT_FALSE(
      net::AckMessage::deserialize(net::decode_frame(reply).payload).ok);
  EXPECT_EQ(server.version(), 0u);
  EXPECT_EQ(svc.merges_applied(), 0u);
}

// --------------------------------------------- WAL replay determinism

TEST(ShardService, MergeReplayFromWalIsByteIdenticalToLiveState) {
  TempDir dir;
  const auto checkin = [](int i) {
    net::CheckinMessage m;
    m.device_id = 1 + static_cast<std::uint64_t>(i);
    m.g_hat = {0.1, -0.2, 0.3, -0.4};
    m.ns = 5;
    m.ne_hat = 1;
    m.ny_hat = {2, 3};
    return m;
  };

  linalg::Vector live_w;
  std::uint64_t live_version = 0;
  {
    core::Server server(server_config(4, 2), sgd(), rng::Engine(1));
    store::DurableStoreOptions sopts;
    shard::install_merge_replay(sopts);
    store::DurableStore store(dir.path, sopts);
    store.recover(server);
    store.attach(server);
    shard::ShardServiceConfig cfg;
    cfg.key = test_key();
    cfg.store = &store;
    shard::ShardService svc(cfg, server);

    for (int i = 0; i < 4; ++i)
      ASSERT_TRUE(server.handle_checkin(checkin(i)).ok);

    net::ShardMergePushMessage push;
    push.merge_round = 1;
    push.total_checkins = 10;
    push.q = shard::quantize_params({0.5, -0.5, 0.25, -0.25});
    const net::Bytes reply =
        svc.handle_shard_merge_push(replica::seal_repl_payload(
            cfg.key, net::MessageType::kShardMergePush, push.serialize()));
    ASSERT_TRUE(
        net::AckMessage::deserialize(net::decode_frame(reply).payload).ok);

    // Keep training after the merge: replay must interleave correctly.
    for (int i = 4; i < 7; ++i)
      ASSERT_TRUE(server.handle_checkin(checkin(i)).ok);

    live_w = server.parameters();
    live_version = server.version();
    store.sync();
  }

  // Crash-recover into a fresh server: same options, same replay hook.
  core::Server recovered(server_config(4, 2), sgd(), rng::Engine(1));
  store::DurableStoreOptions sopts;
  shard::install_merge_replay(sopts);
  store::DurableStore store(dir.path, sopts);
  const auto info = store.recover(recovered);
  EXPECT_EQ(info.recovered_version, live_version);
  EXPECT_EQ(recovered.version(), live_version);
  // Bit-for-bit: the merge was applied in fixed point, so replay and
  // live state agree exactly, not just approximately.
  EXPECT_EQ(recovered.parameters(), live_w);
}

// ---------------------------------------------------- protocol parity

TEST(ShardProtocol, AttachedHandlerLeavesClassicFramesByteIdentical) {
  // `--shards 1` promises byte-identity on the wire: a ProtocolServer
  // with a ShardService attached must answer every classic frame with
  // exactly the bytes the unsharded server produces.
  net::AuthRegistry registry(rng::Engine(2));
  const auto creds = registry.enroll();

  core::Server plain(server_config(4, 2), sgd(), rng::Engine(1));
  core::Server sharded(server_config(4, 2), sgd(), rng::Engine(1));
  core::ProtocolServer plain_proto(plain, registry);
  core::ProtocolServer sharded_proto(sharded, registry);
  shard::ShardServiceConfig cfg;
  cfg.key = test_key();
  shard::ShardService svc(cfg, sharded);
  sharded_proto.set_shard(&svc);

  net::CheckoutRequest req;
  req.device_id = creds.device_id;
  req.auth_tag = creds.sign(req.body());
  const net::Bytes checkout =
      net::encode_frame(net::MessageType::kCheckoutRequest, req.serialize());
  EXPECT_EQ(plain_proto.handle(checkout), sharded_proto.handle(checkout));

  net::CheckinMessage m;
  m.device_id = creds.device_id;
  m.g_hat = {0.1, -0.2, 0.3, -0.4};
  m.ns = 5;
  m.ne_hat = 1;
  m.ny_hat = {2, 3};
  m.param_version = 0;
  m.auth_tag = creds.sign(m.body());
  const net::Bytes checkin =
      net::encode_frame(net::MessageType::kCheckin, m.serialize());
  EXPECT_EQ(plain_proto.handle(checkin), sharded_proto.handle(checkin));
  EXPECT_EQ(plain.parameters(), sharded.parameters());
}

TEST(ShardProtocol, ShardFramesNackedWhenShardingDisabled) {
  core::Server server(server_config(4, 2), sgd(), rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));
  core::ProtocolServer proto(server, registry);

  net::ShardPullMessage pull;
  const net::Bytes reply = proto.handle(
      net::encode_frame(net::MessageType::kShardPull, pull.serialize()));
  const net::Frame f = net::decode_frame(reply);
  ASSERT_EQ(f.type, net::MessageType::kAck);
  const auto ack = net::AckMessage::deserialize(f.payload);
  EXPECT_FALSE(ack.ok);
  EXPECT_EQ(ack.reason, "sharding disabled");
}

// ------------------------------------------------------------- smoke

// End-to-end sharded cluster (also run as the shard_smoke ctest): two
// epoll shards, devices hash-routed with wrong-shard redirects, and a
// MergeDirector cycle that converges both shards to one model.
TEST(ShardSmoke, TwoShardsMergeAndRedirectDevices) {
  const replica::ReplKey key = test_key();
  net::AuthRegistry registry(rng::Engine(2));

  core::Server s0(server_config(4, 2), sgd(), rng::Engine(1));
  core::Server s1(server_config(4, 2), sgd(), rng::Engine(1));
  shard::ShardServiceConfig cfg0, cfg1;
  cfg0.shard_id = 0;
  cfg0.key = key;
  cfg1.shard_id = 1;
  cfg1.key = key;
  shard::ShardService svc0(cfg0, s0), svc1(cfg1, s1);

  // Bind both engines first, then publish the map and install routes.
  engine::EngineConfig e0, e1;
  obs::MetricsRegistry reg0, reg1;
  e0.metrics = &reg0;
  e1.metrics = &reg1;
  e0.shard = &svc0;
  e1.shard = &svc1;
  // Each engine's route needs the other's ephemeral port, so the map is
  // filled in after both binds; the route closures read it lazily (no
  // checkin arrives before the fill, and in production the map is a
  // static flag anyway).
  shard::ShardMap map;
  const auto route_for = [&map](std::size_t self) {
    return [&map, self](std::uint64_t id) -> std::optional<std::string> {
      if (map.size() < 2) return std::nullopt;
      const std::size_t owner = map.shard_of(id);
      if (owner == self) return std::nullopt;
      return map.addr(owner);
    };
  };
  e0.shard_route = route_for(0);
  e1.shard_route = route_for(1);
  auto eng0 = std::make_unique<engine::EpollCrowdServer>(s0, registry, e0);
  auto eng1 = std::make_unique<engine::EpollCrowdServer>(s1, registry, e1);
  const std::string addr0 = "127.0.0.1:" + std::to_string(eng0->port());
  const std::string addr1 = "127.0.0.1:" + std::to_string(eng1->port());
  map = shard::ShardMap({addr0, addr1});

  // Drive devices: each starts at the WRONG shard on purpose; the
  // pre-application wrong-shard nack redirects the session, which
  // replays the checkin at the owner — no checkin is lost or doubled.
  models::MulticlassLogisticRegression model(2, 2, 0.0);
  int cycles = 0;
  for (int d = 0; d < 8; ++d) {
    const auto creds = registry.enroll();
    const std::size_t owner = map.shard_of(creds.device_id);
    const std::string& wrong = owner == 0 ? addr1 : addr0;
    const auto hp = net::split_host_port(wrong);
    ASSERT_TRUE(hp.has_value());

    core::DeviceConfig dc;
    dc.minibatch_size = 2;
    dc.budget = privacy::PrivacyBudget::gradient_dominated(50.0);
    core::Device dev(dc, model, rng::Engine(100 + d));
    dev.set_credentials(creds);
    core::ReconnectPolicy rp;
    rp.io_deadline_ms = 5000;
    core::ReconnectingDeviceSession session(
        hp->first, hp->second, rp, rng::Engine(7 + d), nullptr, nullptr,
        creds.device_id);
    core::DeviceClient client(dev, session.as_exchange());
    for (int i = 0; i < 4; ++i) {
      models::Sample s;
      s.x = {0.3, 0.7};
      s.y = d % 2;
      if (client.offer_sample(s)) ++cycles;
    }
    EXPECT_GE(session.redirects_followed(), 1) << "device " << d;
  }
  ASSERT_GT(cycles, 0);
  // Every checkin landed on its owner: totals add up, and both shards
  // saw some traffic (the hash splits 8 devices across 2 shards with
  // overwhelming probability — and deterministically for this seed).
  EXPECT_EQ(s0.version() + s1.version(), static_cast<std::uint64_t>(cycles));
  EXPECT_GT(s0.version(), 0u);
  EXPECT_GT(s1.version(), 0u);

  // One director cycle: both shards converge to the identical merged
  // model, applied as one more (stale) update each.
  shard::MergeDirectorConfig dcfg;
  dcfg.map = map;
  dcfg.key = key;
  shard::MergeDirector director(dcfg);
  const shard::MergeCycleResult r = director.run_once();
  EXPECT_TRUE(r.merged) << r.error;
  EXPECT_EQ(r.shards_pulled, 2u);
  EXPECT_EQ(r.shards_pushed, 2u);
  EXPECT_EQ(r.total_checkins, static_cast<std::uint64_t>(cycles));
  EXPECT_EQ(svc0.merges_applied(), 1u);
  EXPECT_EQ(svc1.merges_applied(), 1u);
  EXPECT_EQ(s0.parameters(), s1.parameters());

  // A second immediate cycle has nothing new to weigh: both shards
  // report zero checkins since the merge, so the director skips it.
  const shard::MergeCycleResult r2 = director.run_once();
  EXPECT_FALSE(r2.merged);
  EXPECT_EQ(director.rounds_completed(), 1u);
  EXPECT_EQ(director.rounds_skipped(), 1u);

  eng0->shutdown();
  eng1->shutdown();
}

TEST(ShardSmoke, DirectorToleratesUnreachableShard) {
  const replica::ReplKey key = test_key();
  net::AuthRegistry registry(rng::Engine(2));
  core::Server s0(server_config(4, 2), sgd(), rng::Engine(1));
  shard::ShardServiceConfig cfg0;
  cfg0.key = key;
  shard::ShardService svc0(cfg0, s0);
  engine::EngineConfig e0;
  obs::MetricsRegistry reg;
  e0.metrics = &reg;
  e0.shard = &svc0;
  engine::EpollCrowdServer eng0(s0, registry, e0);
  apply_checkins(s0, 3, 1.0);

  shard::MergeDirectorConfig dcfg;
  dcfg.map = shard::ShardMap(
      {"127.0.0.1:" + std::to_string(eng0.port()), "127.0.0.1:1"});
  dcfg.key = key;
  dcfg.connect_timeout_ms = 200;
  shard::MergeDirector director(dcfg);

  // Only one shard reachable: nothing to reconcile, cycle skipped, and
  // the reachable shard's weight keeps accumulating for the next cycle.
  const shard::MergeCycleResult r = director.run_once();
  EXPECT_FALSE(r.merged);
  EXPECT_EQ(r.shards_pulled, 1u);
  EXPECT_EQ(svc0.merges_applied(), 0u);
  EXPECT_EQ(svc0.checkins_since_merge(), 3u);
  eng0.shutdown();
}
