// Tests for the model layer: Table I formulas, subgradients, and the
// sensitivity contracts the privacy mechanisms rely on (Appendix A).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "models/gradient_check.hpp"
#include "models/linear_svm.hpp"
#include "models/logistic_regression.hpp"
#include "models/ridge_regression.hpp"
#include "rng/distributions.hpp"

using namespace crowdml;
using models::Sample;

namespace {

Sample random_classification_sample(rng::Engine& eng, std::size_t dim,
                                    std::size_t classes) {
  linalg::Vector x(dim);
  for (double& v : x) v = rng::normal(eng);
  linalg::l1_normalize(x);
  // Ensure strict ||x||_1 <= 1 even if it started below.
  const double y = static_cast<double>(rng::uniform_index(eng, classes));
  return Sample(std::move(x), y);
}

linalg::Vector random_params(rng::Engine& eng, std::size_t n, double scale) {
  linalg::Vector w(n);
  for (double& v : w) v = rng::normal(eng) * scale;
  return w;
}

}  // namespace

TEST(MulticlassLogistic, Dimensions) {
  models::MulticlassLogisticRegression m(10, 50, 0.1);
  EXPECT_EQ(m.feature_dim(), 50u);
  EXPECT_EQ(m.num_classes(), 10u);
  EXPECT_EQ(m.param_dim(), 500u);
  EXPECT_TRUE(m.is_classifier());
  EXPECT_DOUBLE_EQ(m.lambda(), 0.1);
}

TEST(MulticlassLogistic, LossAtZeroIsLogC) {
  models::MulticlassLogisticRegression m(4, 3, 0.0);
  const linalg::Vector w(m.param_dim(), 0.0);
  const Sample s(linalg::Vector{0.1, 0.2, 0.3}, 2.0);
  EXPECT_NEAR(m.loss(w, s), std::log(4.0), 1e-12);
}

TEST(MulticlassLogistic, PosteriorSumsToOne) {
  rng::Engine eng(1);
  models::MulticlassLogisticRegression m(5, 8, 0.0);
  const auto w = random_params(eng, m.param_dim(), 2.0);
  const auto s = random_classification_sample(eng, 8, 5);
  const linalg::Vector p = m.posterior(w, s.x);
  EXPECT_NEAR(linalg::sum(p), 1.0, 1e-12);
  for (double v : p) EXPECT_GE(v, 0.0);
}

TEST(MulticlassLogistic, PredictionIsArgmaxScore) {
  rng::Engine eng(2);
  models::MulticlassLogisticRegression m(6, 4, 0.0);
  for (int i = 0; i < 20; ++i) {
    const auto w = random_params(eng, m.param_dim(), 1.0);
    const auto s = random_classification_sample(eng, 4, 6);
    const linalg::Vector sc = m.scores(w, s.x);
    EXPECT_EQ(m.predict_class(w, s.x),
              static_cast<int>(linalg::argmax(sc)));
  }
}

TEST(MulticlassLogistic, NumericallyStableForLargeScores) {
  models::MulticlassLogisticRegression m(3, 2, 0.0);
  linalg::Vector w(6, 0.0);
  w[0] = 1000.0;  // class 0 dominated by huge score
  const Sample s(linalg::Vector{1.0, 0.0}, 0.0);
  EXPECT_TRUE(std::isfinite(m.loss(w, s)));
  linalg::Vector g(6, 0.0);
  m.add_loss_gradient(w, s, g);
  EXPECT_TRUE(linalg::all_finite(g));
  EXPECT_NEAR(m.loss(w, s), 0.0, 1e-9);
}

TEST(BinaryLogistic, ProbabilityAndPrediction) {
  models::BinaryLogisticRegression m(2, 0.0);
  const linalg::Vector w{2.0, 0.0};
  EXPECT_NEAR(m.probability(w, {0.0, 0.0}), 0.5, 1e-12);
  EXPECT_GT(m.probability(w, {1.0, 0.0}), 0.5);
  EXPECT_EQ(m.predict_class(w, {1.0, 0.0}), 1);
  EXPECT_EQ(m.predict_class(w, {-1.0, 0.0}), 0);
}

TEST(BinaryLogistic, StableForExtremeLogits) {
  models::BinaryLogisticRegression m(1, 0.0);
  const linalg::Vector w{500.0};
  EXPECT_NEAR(m.probability(w, {1.0}), 1.0, 1e-12);
  EXPECT_NEAR(m.probability(w, {-1.0}), 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(m.loss(w, Sample({1.0}, 0.0))));
  EXPECT_TRUE(std::isfinite(m.loss(w, Sample({-1.0}, 1.0))));
}

TEST(MulticlassSvm, ZeroLossInsideMargin) {
  models::MulticlassSvm m(3, 2, 0.0);
  linalg::Vector w(6, 0.0);
  w[0] = 10.0;  // class 0 strongly preferred on first coordinate
  const Sample s(linalg::Vector{1.0, 0.0}, 0.0);
  EXPECT_DOUBLE_EQ(m.loss(w, s), 0.0);
  linalg::Vector g(6, 0.0);
  m.add_loss_gradient(w, s, g);
  for (double v : g) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MulticlassSvm, HingeAtZeroParamsIsOne) {
  models::MulticlassSvm m(3, 2, 0.0);
  const linalg::Vector w(6, 0.0);
  const Sample s(linalg::Vector{0.5, 0.5}, 1.0);
  EXPECT_DOUBLE_EQ(m.loss(w, s), 1.0);
}

TEST(MulticlassSvm, SubgradientTouchesTwoBlocks) {
  models::MulticlassSvm m(3, 2, 0.0);
  const linalg::Vector w(6, 0.0);
  const Sample s(linalg::Vector{0.5, 0.25}, 2.0);
  linalg::Vector g(6, 0.0);
  m.add_loss_gradient(w, s, g);
  // True class block (2) gets -x; one violating block gets +x.
  EXPECT_DOUBLE_EQ(g[4], -0.5);
  EXPECT_DOUBLE_EQ(g[5], -0.25);
  EXPECT_DOUBLE_EQ(linalg::norm1(g), 2.0 * linalg::norm1(s.x));
}

TEST(RidgeRegression, PredictsDotProduct) {
  models::RidgeRegression m(2, 0.0, 10.0);
  EXPECT_FALSE(m.is_classifier());
  EXPECT_DOUBLE_EQ(m.predict({2.0, 3.0}, {1.0, 1.0}), 5.0);
}

TEST(RidgeRegression, QuadraticInsideClipRegion) {
  models::RidgeRegression m(1, 0.0, 10.0);
  const Sample s(linalg::Vector{1.0}, 1.0);
  EXPECT_NEAR(m.loss({3.0}, s), 0.5 * 4.0, 1e-12);  // residual 2
  linalg::Vector g(1, 0.0);
  m.add_loss_gradient({3.0}, s, g);
  EXPECT_NEAR(g[0], 2.0, 1e-12);
}

TEST(RidgeRegression, LinearOutsideClipRegion) {
  models::RidgeRegression m(1, 0.0, 1.0);
  const Sample s(linalg::Vector{1.0}, 0.0);
  // Residual 5 clips to 1: gradient magnitude capped at 1 * |x|.
  linalg::Vector g(1, 0.0);
  m.add_loss_gradient({5.0}, s, g);
  EXPECT_NEAR(g[0], 1.0, 1e-12);
  // Loss is the Huber linear branch: b|r| - b^2/2.
  EXPECT_NEAR(m.loss({5.0}, s), 5.0 - 0.5, 1e-12);
}

TEST(ModelHelpers, AveragedGradientIncludesRegularizer) {
  rng::Engine eng(3);
  models::MulticlassLogisticRegression m(3, 4, 0.5);
  const auto w = random_params(eng, m.param_dim(), 1.0);
  models::SampleSet batch;
  for (int i = 0; i < 5; ++i)
    batch.push_back(random_classification_sample(eng, 4, 3));

  const linalg::Vector g = m.averaged_gradient(w, batch);

  linalg::Vector manual(m.param_dim(), 0.0);
  for (const auto& s : batch) m.add_loss_gradient(w, s, manual);
  linalg::scal(0.2, manual);
  linalg::axpy(0.5, w, manual);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(g[i], manual[i], 1e-12);
}

TEST(ModelHelpers, RegularizedRiskAddsL2Term) {
  models::MulticlassLogisticRegression m(2, 2, 1.0);
  const linalg::Vector w{1.0, 0.0, 0.0, 1.0};
  models::SampleSet batch{Sample({0.0, 0.0}, 0.0)};
  // Loss at zero-score sample = log 2; reg = 0.5 * ||w||^2 = 1.
  EXPECT_NEAR(m.regularized_risk(w, batch), std::log(2.0) + 1.0, 1e-12);
}

TEST(ModelHelpers, ErrorRate) {
  models::BinaryLogisticRegression m(1, 0.0);
  const linalg::Vector w{1.0};
  models::SampleSet set{Sample({1.0}, 1.0), Sample({-1.0}, 0.0),
                        Sample({1.0}, 0.0), Sample({-1.0}, 1.0)};
  EXPECT_DOUBLE_EQ(m.error_rate(w, set), 0.5);
  EXPECT_DOUBLE_EQ(m.error_rate(w, models::SampleSet{}), 0.0);
}

// ---------------------------------------------------------------------------
// Gradient correctness: analytic vs central differences, across models.
// ---------------------------------------------------------------------------

struct ModelFactory {
  const char* name;
  std::unique_ptr<models::Model> (*make)();
};

std::unique_ptr<models::Model> make_mc_logistic() {
  return std::make_unique<models::MulticlassLogisticRegression>(4, 6, 0.0);
}
std::unique_ptr<models::Model> make_binary_logistic() {
  return std::make_unique<models::BinaryLogisticRegression>(6, 0.0);
}
std::unique_ptr<models::Model> make_ridge() {
  return std::make_unique<models::RidgeRegression>(6, 0.0, 100.0);
}

class GradientCheckProperty : public ::testing::TestWithParam<ModelFactory> {};

TEST_P(GradientCheckProperty, AnalyticMatchesNumeric) {
  rng::Engine eng(101);
  auto model = GetParam().make();
  for (int trial = 0; trial < 20; ++trial) {
    const auto w = random_params(eng, model->param_dim(), 1.5);
    Sample s = random_classification_sample(eng, model->feature_dim(),
                                            model->num_classes());
    if (!model->is_classifier()) s.y = rng::normal(eng);
    const auto res = models::check_gradient(*model, w, s);
    EXPECT_LT(res.max_rel_error, 1e-5)
        << GetParam().name << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, GradientCheckProperty,
    ::testing::Values(ModelFactory{"mc_logistic", &make_mc_logistic},
                      ModelFactory{"binary_logistic", &make_binary_logistic},
                      ModelFactory{"ridge", &make_ridge}),
    [](const auto& info) { return std::string(info.param.name); });

// SVM is non-smooth; check the gradient only at points where the margin is
// strictly violated or strictly satisfied (perturb w away from kinks).
TEST(MulticlassSvmGradient, MatchesNumericAwayFromKinks) {
  rng::Engine eng(202);
  models::MulticlassSvm m(3, 5, 0.0);
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 20; ++trial) {
    const auto w = random_params(eng, m.param_dim(), 2.0);
    const auto s = random_classification_sample(eng, 5, 3);
    const double margin = m.loss(w, s);
    if (std::abs(margin) < 1e-3 || std::abs(margin - 0.0) < 1e-3) continue;
    const auto res = models::check_gradient(m, w, s, 1e-7);
    EXPECT_LT(res.max_rel_error, 1e-4);
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

// ---------------------------------------------------------------------------
// Sensitivity property (Appendix A): for any two samples with ||x||_1 <= 1,
// the gradient difference's L1 norm is bounded by the declared sensitivity.
// ---------------------------------------------------------------------------

class SensitivityProperty : public ::testing::TestWithParam<ModelFactory> {};

TEST_P(SensitivityProperty, GradientDifferenceBounded) {
  rng::Engine eng(303);
  auto model = GetParam().make();
  const double bound = model->per_sample_l1_sensitivity();
  for (int trial = 0; trial < 200; ++trial) {
    const auto w = random_params(eng, model->param_dim(), 3.0);
    Sample a = random_classification_sample(eng, model->feature_dim(),
                                            model->num_classes());
    Sample b = random_classification_sample(eng, model->feature_dim(),
                                            model->num_classes());
    if (!model->is_classifier()) {
      a.y = rng::uniform(eng, -50.0, 50.0);  // within ridge residual bound
      b.y = rng::uniform(eng, -50.0, 50.0);
    }
    linalg::Vector ga(model->param_dim(), 0.0);
    linalg::Vector gb(model->param_dim(), 0.0);
    model->add_loss_gradient(w, a, ga);
    model->add_loss_gradient(w, b, gb);
    EXPECT_LE(linalg::norm1(linalg::sub(ga, gb)), bound + 1e-9)
        << GetParam().name;
  }
}

std::unique_ptr<models::Model> make_svm_for_sens() {
  return std::make_unique<models::MulticlassSvm>(4, 6, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Models, SensitivityProperty,
    ::testing::Values(ModelFactory{"mc_logistic", &make_mc_logistic},
                      ModelFactory{"binary_logistic", &make_binary_logistic},
                      ModelFactory{"svm", &make_svm_for_sens},
                      ModelFactory{"ridge", &make_ridge}),
    [](const auto& info) { return std::string(info.param.name); });

// The paper's tighter statement: per-sample multiclass-logistic gradient
// L1 norm is 2(1 - P_y) ||x||_1 <= 2.
TEST(MulticlassLogistic, PerSampleGradientL1AtMostTwo) {
  rng::Engine eng(404);
  models::MulticlassLogisticRegression m(10, 20, 0.0);
  for (int trial = 0; trial < 100; ++trial) {
    const auto w = random_params(eng, m.param_dim(), 3.0);
    const auto s = random_classification_sample(eng, 20, 10);
    linalg::Vector g(m.param_dim(), 0.0);
    m.add_loss_gradient(w, s, g);
    const linalg::Vector p = m.posterior(w, s.x);
    const double expected =
        2.0 * (1.0 - p[static_cast<std::size_t>(s.label())]) * linalg::norm1(s.x);
    EXPECT_NEAR(linalg::norm1(g), expected, 1e-9);
    EXPECT_LE(linalg::norm1(g), 2.0 + 1e-9);
  }
}
