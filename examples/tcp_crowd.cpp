// Crowd-ML over a real network stack: a TCP parameter server with
// HMAC-authenticated device sessions on localhost — the deployment path
// the paper prototypes with Android phones + an Apache-fronted server.
//
// Six device threads connect, stream their data shards through the
// Algorithm 1 cycle (checkout -> sanitized gradient -> checkin), and the
// server learns a 10-class model with per-sample differential privacy.
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/tcp_runtime.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"
#include "opt/schedule.hpp"

using namespace crowdml;

int main() {
  // Data: a small MNIST-like problem sharded across the devices.
  rng::Engine data_eng(7);
  const data::Dataset ds = data::make_mnist_like(data_eng, 0.05);
  models::MulticlassLogisticRegression model(ds.num_classes, ds.feature_dim, 0.0);

  // Server + auth registry, listening on an ephemeral localhost port.
  core::ServerConfig scfg;
  scfg.param_dim = model.param_dim();
  scfg.num_classes = ds.num_classes;
  core::Server server(scfg,
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::SqrtDecaySchedule>(50.0), 500.0),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));
  core::TcpCrowdServer tcp_server(server, registry, 0);
  std::printf("server listening on 127.0.0.1:%u\n", tcp_server.port());

  constexpr std::size_t kDevices = 6;
  rng::Engine shard_eng(3);
  const auto shards = data::shard_across_devices(ds.train, kDevices, shard_eng);

  std::atomic<long long> cycles{0};
  std::vector<std::thread> threads;
  for (std::size_t d = 0; d < kDevices; ++d) {
    threads.emplace_back([&, d] {
      core::DeviceConfig dc;
      dc.minibatch_size = 10;
      dc.budget = privacy::PrivacyBudget::gradient_dominated(20.0);
      core::Device dev(dc, model, rng::Engine(100 + d));
      dev.set_credentials(registry.enroll());  // server-issued HMAC secret
      core::TcpDeviceSession session("127.0.0.1", tcp_server.port());
      core::DeviceClient client(dev, session.as_exchange());
      for (int pass = 0; pass < 4; ++pass)
        for (const auto& s : shards[d])
          if (client.offer_sample(s)) ++cycles;
    });
  }
  for (auto& t : threads) t.join();

  const double err = model.error_rate(server.parameters(), ds.test);
  std::printf("\ndevices: %zu, checkin cycles over TCP: %lld\n", kDevices,
              cycles.load());
  std::printf("server iterations: %llu, rejected checkins: %lld\n",
              static_cast<unsigned long long>(server.version()),
              server.rejected_checkins());
  std::printf("server-side error estimate (Eq. 14, from noisy counts): %.4f\n",
              server.estimated_error());
  std::printf("true test error of the learned model: %.4f\n", err);

  tcp_server.shutdown();
  return err < 0.5 ? 0 : 1;
}
