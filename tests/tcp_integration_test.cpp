// End-to-end integration over real localhost TCP: a TcpCrowdServer and a
// fleet of device threads learning a classifier with privacy, exactly the
// deployment path of examples/tcp_crowd.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/tcp_runtime.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"
#include "opt/schedule.hpp"

using namespace crowdml;

namespace {

core::ServerConfig server_config(std::size_t param_dim, std::size_t classes) {
  core::ServerConfig c;
  c.param_dim = param_dim;
  c.num_classes = classes;
  return c;
}

}  // namespace

TEST(TcpIntegration, CrowdLearnsOverLocalhost) {
  rng::Engine data_eng(77);
  data::MixtureSpec spec;
  spec.num_classes = 3;
  spec.raw_dim = 30;
  spec.latent_dim = 12;
  spec.pca_dim = 8;
  spec.separation = 3.5;
  spec.train_size = 900;
  spec.test_size = 300;
  const data::Dataset ds = data::generate_mixture(spec, data_eng);

  models::MulticlassLogisticRegression model(3, 8, 0.0);
  core::Server server(server_config(model.param_dim(), 3),
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::SqrtDecaySchedule>(30.0), 500.0),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));
  core::TcpCrowdServer tcp_server(server, registry, 0);
  const std::uint16_t port = tcp_server.port();

  constexpr std::size_t kDevices = 6;
  rng::Engine shard_eng(3);
  const auto shards = data::shard_across_devices(ds.train, kDevices, shard_eng);

  const double initial_error = model.error_rate(server.parameters(), ds.test);

  std::atomic<long long> cycles{0};
  std::vector<std::thread> device_threads;
  for (std::size_t d = 0; d < kDevices; ++d) {
    device_threads.emplace_back([&, d] {
      core::DeviceConfig dc;
      dc.minibatch_size = 5;
      dc.budget = privacy::PrivacyBudget::gradient_dominated(20.0);
      core::Device dev(dc, model, rng::Engine(100 + d));
      dev.set_credentials(registry.enroll());
      core::TcpDeviceSession session("127.0.0.1", port);
      core::DeviceClient client(dev, session.as_exchange());
      for (int pass = 0; pass < 3; ++pass)
        for (const auto& s : shards[d])
          if (client.offer_sample(s)) ++cycles;
    });
  }
  for (auto& t : device_threads) t.join();

  EXPECT_GT(cycles.load(), 100);
  EXPECT_EQ(server.version(), static_cast<std::uint64_t>(cycles.load()));
  EXPECT_EQ(server.devices_seen(), kDevices);
  EXPECT_EQ(server.rejected_checkins(), 0);

  const double final_error = model.error_rate(server.parameters(), ds.test);
  EXPECT_LT(final_error, 0.2);
  EXPECT_LT(final_error, initial_error);

  tcp_server.shutdown();
}

TEST(TcpIntegration, UnauthenticatedClientRejected) {
  models::MulticlassLogisticRegression model(2, 4, 0.0);
  core::Server server(server_config(model.param_dim(), 2),
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::ConstantSchedule>(0.1), 100.0),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));
  core::TcpCrowdServer tcp_server(server, registry, 0);

  core::TcpDeviceSession session("127.0.0.1", tcp_server.port());
  net::CheckoutRequest req;
  req.device_id = 42;  // not enrolled, zero tag
  const auto reply = session.exchange(
      net::encode_frame(net::MessageType::kCheckoutRequest, req.serialize()));
  ASSERT_TRUE(reply.has_value());
  const net::Frame f = net::decode_frame(*reply);
  ASSERT_EQ(f.type, net::MessageType::kParams);
  EXPECT_FALSE(net::ParamsMessage::deserialize(f.payload).accepted);
  EXPECT_EQ(server.version(), 0u);

  tcp_server.shutdown();
}

TEST(TcpIntegration, GarbageBytesDoNotCrashServer) {
  models::MulticlassLogisticRegression model(2, 4, 0.0);
  core::Server server(server_config(model.param_dim(), 2),
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::ConstantSchedule>(0.1), 100.0),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));
  core::TcpCrowdServer tcp_server(server, registry, 0);

  // A frame with valid framing but corrupt payload -> nack, connection
  // stays usable.
  core::TcpDeviceSession session("127.0.0.1", tcp_server.port());
  const auto reply = session.exchange(
      net::encode_frame(net::MessageType::kCheckin, {1, 2, 3}));
  ASSERT_TRUE(reply.has_value());
  const net::Frame f = net::decode_frame(*reply);
  EXPECT_EQ(f.type, net::MessageType::kAck);
  EXPECT_FALSE(net::AckMessage::deserialize(f.payload).ok);

  // Server is still alive and serving.
  const auto creds = registry.enroll();
  net::CheckoutRequest req;
  req.device_id = creds.device_id;
  req.auth_tag = creds.sign(req.body());
  const auto reply2 = session.exchange(
      net::encode_frame(net::MessageType::kCheckoutRequest, req.serialize()));
  ASSERT_TRUE(reply2.has_value());
  EXPECT_TRUE(net::ParamsMessage::deserialize(net::decode_frame(*reply2).payload)
                  .accepted);

  tcp_server.shutdown();
}

TEST(TcpIntegration, ShutdownIsIdempotentAndUnblocksClients) {
  models::MulticlassLogisticRegression model(2, 4, 0.0);
  core::Server server(server_config(model.param_dim(), 2),
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::ConstantSchedule>(0.1), 100.0),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));
  auto tcp_server =
      std::make_unique<core::TcpCrowdServer>(server, registry, 0);
  // Client connects but never sends; shutdown must not hang.
  core::TcpDeviceSession idle("127.0.0.1", tcp_server->port());
  tcp_server->shutdown();
  tcp_server->shutdown();  // idempotent
  tcp_server.reset();
  SUCCEED();
}
