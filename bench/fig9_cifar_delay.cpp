// Reproduces Fig. 9 of the paper (see bench/figures.hpp for the driver).
#include "bench/figures.hpp"

int main() {
  return bench::delay_figure(bench::DatasetKind::kCifarLike, "Figure 9");
}
