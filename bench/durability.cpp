// Durability bench: applied-checkin throughput under each WAL fsync
// policy, plus the cost of crash recovery (snapshot load + tail replay).
//
// What the paper's prototype pays MySQL for — state that survives server
// restarts (Section V) — this reproduction pays in fsyncs. The bench
// quantifies that price on realistic MNIST-shaped checkins (10 classes x
// 50 features = 500-double sanitized gradients):
//
//   always   fsync per checkin: the ack implies bits on the platter;
//   every-N  bounded loss window, amortized cost (the server default);
//   never    page-cache durability: survives a process crash, not power.
//
// For each policy: feed N checkins through core::Server with the durable
// store attached, report throughput and the WAL append/fsync latency
// split (from the process metrics registry, so CROWDML_METRICS_OUT also
// carries the raw histograms), then crash-and-recover a fresh server
// from the resulting log and report the replay rate.
//
// Scale via CROWDML_SCALE (default 0.25 => 5000 checkins per policy).
// --json-out PATH writes the rows + checks machine-readably
// (BENCH_durability.json; schema in bench/common.hpp).
#include <chrono>
#include <filesystem>

#include "bench/common.hpp"
#include "store/durable_store.hpp"
#include "tools/flags.hpp"

namespace {

using namespace crowdml;

constexpr std::size_t kClasses = 10;
constexpr std::size_t kDim = 50;

net::CheckinMessage make_checkin(rng::Engine& eng, std::uint64_t device) {
  net::CheckinMessage m;
  m.device_id = device;
  m.g_hat.reserve(kClasses * kDim);
  for (std::size_t i = 0; i < kClasses * kDim; ++i)
    m.g_hat.push_back(static_cast<double>(eng() % 2001) / 1000.0 - 1.0);
  m.ns = 10;
  m.ne_hat = static_cast<std::int64_t>(eng() % 3);
  for (std::size_t i = 0; i < kClasses; ++i)
    m.ny_hat.push_back(static_cast<std::int64_t>(eng() % 5));
  return m;
}

core::Server make_server() {
  core::ServerConfig cfg;
  cfg.param_dim = kClasses * kDim;
  cfg.num_classes = kClasses;
  return core::Server(cfg,
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::SqrtDecaySchedule>(50.0), 500.0),
                      rng::Engine(1));
}

struct HistDelta {
  long long count = 0;
  double sum = 0.0;
  double mean_us() const {
    return count > 0 ? sum / static_cast<double>(count) * 1e6 : 0.0;
  }
};

HistDelta hist_delta(const obs::MetricsRegistry::RegistrySnapshot& before,
                     const obs::MetricsRegistry::RegistrySnapshot& after,
                     const std::string& name) {
  HistDelta d;
  for (const auto& h : after.histograms)
    if (h.name == name) {
      d.count = h.data.count;
      d.sum = h.data.sum;
    }
  for (const auto& h : before.histograms)
    if (h.name == name) {
      d.count -= h.data.count;
      d.sum -= h.data.sum;
    }
  return d;
}

struct Run {
  const char* label;
  store::FsyncPolicy policy;
  long long every = 0;
  double checkins_per_s = 0.0;
  HistDelta append, fsync;
  double recover_s = 0.0;
  std::uint64_t replayed = 0;
  double replay_per_s = 0.0;
};

Run run_policy(const char* label, store::FsyncPolicy policy, long long every,
               int n) {
  Run r;
  r.label = label;
  r.policy = policy;
  r.every = every;

  std::string dir =
      (std::filesystem::temp_directory_path() / "crowdml_durability_XXXXXX")
          .string();
  if (!mkdtemp(dir.data())) throw std::runtime_error("mkdtemp failed");

  store::DurableStoreOptions opts;
  opts.wal.fsync = policy;
  opts.wal.fsync_every = every;
  opts.wal.metrics = &obs::default_registry();

  const auto before = obs::default_registry().snapshot();
  {
    core::Server server = make_server();
    store::DurableStore ds(dir, opts);
    ds.recover(server);
    ds.attach(server);
    rng::Engine eng(42);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i)
      server.handle_checkin(make_checkin(eng, 1 + (eng() % 100)));
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    r.checkins_per_s = static_cast<double>(n) / wall;
    // No sync, no compact: the store is "killed" with a hot log, which is
    // exactly what recovery below has to digest.
  }
  const auto after = obs::default_registry().snapshot();
  r.append = hist_delta(before, after, "crowdml_wal_append_seconds");
  r.fsync = hist_delta(before, after, "crowdml_wal_fsync_seconds");

  core::Server recovered = make_server();
  store::DurableStore ds(dir, opts);
  const auto t0 = std::chrono::steady_clock::now();
  const auto info = ds.recover(recovered);
  r.recover_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.replayed = info.records_replayed;
  r.replay_per_s =
      r.recover_s > 0.0 ? static_cast<double>(r.replayed) / r.recover_s : 0.0;

  std::filesystem::remove_all(dir);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  crowdml::tools::Flags flags(argc, argv);
  const bench::Options o = bench::options();
  const int n = std::max(200, static_cast<int>(20000 * o.scale));
  bench::header("durability",
                "WAL fsync policy vs checkin throughput + crash recovery", o);
  std::printf("%d checkins per policy, %zu-double gradients "
              "(%zu classes x %zu features)\n\n",
              n, kClasses * kDim, kClasses, kDim);

  const Run runs[] = {
      run_policy("always", store::FsyncPolicy::kAlways, 1, n),
      run_policy("every-64", store::FsyncPolicy::kEveryN, 64, n),
      run_policy("never", store::FsyncPolicy::kNever, 0, n),
  };

  std::printf("%-10s %12s %14s %12s %10s %14s %12s %14s\n", "fsync",
              "checkins/s", "append_mean_us", "fsyncs", "fsync_us",
              "recovery_s", "replayed", "replayed/s");
  for (const Run& r : runs)
    std::printf("%-10s %12.0f %14.2f %12lld %10.1f %14.4f %12llu %14.0f\n",
                r.label, r.checkins_per_s, r.append.mean_us(), r.fsync.count,
                r.fsync.mean_us(), r.recover_s,
                static_cast<unsigned long long>(r.replayed), r.replay_per_s);
  std::printf("\n");

  bench::check(runs[0].fsync.count >= n,
               "fsync=always syncs once per checkin");
  bench::check(runs[1].fsync.count <= n / 64 + 1,
               "fsync=every-64 amortizes syncs 64x");
  bench::check(runs[2].fsync.count == 0, "fsync=never never syncs");
  bench::check(runs[2].checkins_per_s >= runs[0].checkins_per_s,
               "skipping fsync is at least as fast as syncing every ack");
  bool replayed_all = true;
  for (const Run& r : runs)
    replayed_all = replayed_all && r.replayed == static_cast<std::uint64_t>(n);
  bench::check(replayed_all,
               "every applied checkin is recovered under every policy");

  const std::string json_out = flags.get("json-out", "");
  if (!json_out.empty()) {
    std::vector<std::vector<bench::JsonField>> rows;
    for (const Run& r : runs)
      rows.push_back({bench::jstr("fsync", r.label),
                      bench::jint("checkins", n),
                      bench::jnum("checkins_per_s", r.checkins_per_s),
                      bench::jnum("append_mean_us", r.append.mean_us()),
                      bench::jint("fsyncs", r.fsync.count),
                      bench::jnum("fsync_mean_us", r.fsync.mean_us()),
                      bench::jnum("recovery_s", r.recover_s),
                      bench::jint("replayed",
                                  static_cast<long long>(r.replayed)),
                      bench::jnum("replayed_per_s", r.replay_per_s)});
    bench::write_bench_json(json_out, "durability", o.scale, rows);
  }
  return 0;
}
