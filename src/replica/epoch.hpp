// Fencing epochs for replication failover.
//
// An epoch is a monotonically increasing term number stamped into every
// replication frame. Promotion (crowdml-server --promote-on-start, or a
// test constructing a new LogShipper) bumps it; a follower that has seen
// epoch e refuses every frame from an epoch < e and a leader that sees a
// hello or ack from an epoch above its own knows it has been superseded
// and stops acknowledging writes. Because the register below is durable
// *before* the promise is acted on, a crashed node can never come back
// believing in a lower term than it already honored — the property that
// makes split-brain impossible (docs/REPLICATION.md#epoch-fencing).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace crowdml::replica {

class EpochError : public std::runtime_error {
 public:
  explicit EpochError(const std::string& what) : std::runtime_error(what) {}
};

/// Durable epoch register: one CRC-framed file, written atomically
/// (temp + fsync + rename + directory fsync) so a crash mid-write leaves
/// either the old term or the new one, never garbage.
class EpochStore {
 public:
  /// Creates `dir` if missing. Throws EpochError when it cannot.
  /// `name` selects the register file inside `dir`, so one directory can
  /// hold several independent registers (the follower keeps its promised
  /// and witnessed epochs apart — see docs/REPLICATION.md#epoch-fencing).
  explicit EpochStore(std::string dir, std::string name = "epoch");

  /// The stored epoch; 0 when none was ever stored. Throws EpochError
  /// when the file exists but does not verify — a term must never be
  /// guessed.
  std::uint64_t load() const;

  /// Persist `epoch` durably. Throws EpochError on I/O failure or an
  /// attempt to move the register backwards (equal is an idempotent
  /// rewrite).
  void store(std::uint64_t epoch);

  std::string path() const;

 private:
  std::string dir_;
  std::string name_;
};

}  // namespace crowdml::replica
