// Crowd-ML over a real network stack: a TCP parameter server with
// HMAC-authenticated device sessions — the deployment path the paper
// prototypes with Android phones + an Apache-fronted server.
//
// Six device threads connect, stream their data shards through the
// Algorithm 1 cycle (checkout -> sanitized gradient -> checkin), and the
// server learns a 10-class model with per-sample differential privacy.
//
// Usage: tcp_crowd [--bind ADDR] [--port P] [--passes N]
//                  [--chaos] [--metrics-out FILE] [--trace-out FILE]
//   tcp_crowd                            # loopback, ephemeral port
//   tcp_crowd --bind 0.0.0.0 --port 9090 # serve the LAN
//   tcp_crowd --chaos --metrics-out m.prom --trace-out t.jsonl
//
// --chaos routes every device through a seeded net::FaultProxy (drops,
// truncation, corruption, delays, blackholes) and cross-checks the trace
// and counters against the proxy's injected-fault totals. The metrics
// file is Prometheus text format; the trace is one JSON object per line.
// Both carry only sanitized/aggregate or transport-level quantities
// (docs/OBSERVABILITY.md), so exporting them costs no privacy budget.
//
// Devices ride ReconnectingDeviceSession, so a dropped connection or a
// stalled server leg is retried with capped exponential backoff instead
// of killing the device (Remark 1).
#include <atomic>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/monitor.hpp"
#include "core/tcp_runtime.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"
#include "net/fault_proxy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/schedule.hpp"
#include "tools/flags.hpp"

using namespace crowdml;

namespace {

/// Count trace lines whose event field equals `kind` (the sink writes the
/// field in a fixed position, so a substring match is exact).
long long count_events(const std::string& path, const std::string& kind) {
  std::ifstream in(path);
  const std::string needle = "\"event\":\"" + kind + "\"";
  long long n = 0;
  for (std::string line; std::getline(in, line);)
    if (line.find(needle) != std::string::npos) ++n;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  const std::string bind_address = flags.get("bind", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(flags.get_int("port", 0));
  const int passes = static_cast<int>(flags.get_int("passes", 4));
  const bool chaos_mode = flags.get_bool("chaos");
  const std::string metrics_path = flags.get("metrics-out", "");
  const std::string trace_path = flags.get("trace-out", "");

  // Data: a small MNIST-like problem sharded across the devices.
  rng::Engine data_eng(7);
  const data::Dataset ds = data::make_mnist_like(data_eng, 0.05);
  models::MulticlassLogisticRegression model(ds.num_classes, ds.feature_dim, 0.0);

  // One registry for the whole process: the server's transport counters,
  // the devices' retry counters, and the always-on hot-path timings all
  // land in the same Prometheus exposition.
  obs::MetricsRegistry& metrics = obs::default_registry();
  std::unique_ptr<obs::TraceSink> trace;
  if (!trace_path.empty())
    trace = std::make_unique<obs::TraceSink>(trace_path);

  core::ServerConfig scfg;
  scfg.param_dim = model.param_dim();
  scfg.num_classes = ds.num_classes;
  core::Server server(scfg,
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::SqrtDecaySchedule>(50.0), 500.0),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));

  core::TcpServerConfig tcfg;
  tcfg.bind_address = bind_address;
  tcfg.port = port;
  tcfg.max_connections = 64;
  tcfg.idle_timeout_ms = chaos_mode ? 2000 : 30000;
  tcfg.metrics = &metrics;
  tcfg.trace = trace.get();
  std::optional<core::TcpCrowdServer> maybe_server;
  try {
    maybe_server.emplace(server, registry, tcfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tcp_crowd: cannot listen on %s:%u (%s)\n",
                 tcfg.bind_address.c_str(), tcfg.port, e.what());
    return 1;
  }
  core::TcpCrowdServer& tcp_server = *maybe_server;
  std::printf("server listening on %s:%u\n", tcfg.bind_address.c_str(),
              tcp_server.port());

  // Chaos mode: interpose the seeded fault proxy so every device leg can
  // be dropped, truncated, corrupted, delayed, or blackholed.
  std::optional<net::FaultProxy> proxy;
  std::uint16_t connect_port = tcp_server.port();
  if (chaos_mode) {
    net::FaultPolicy storm;
    storm.drop_conn_prob = 0.03;
    storm.truncate_prob = 0.01;
    storm.corrupt_prob = 0.03;
    storm.delay_prob = 0.25;
    storm.max_delay_ms = 3;
    storm.blackhole_prob = 0.06;
    proxy.emplace("127.0.0.1", tcp_server.port(), storm, rng::Engine(4242));
    connect_port = proxy->port();
    std::printf("chaos proxy interposed on 127.0.0.1:%u\n", connect_port);
  }

  constexpr std::size_t kDevices = 6;
  rng::Engine shard_eng(3);
  const auto shards = data::shard_across_devices(ds.train, kDevices, shard_eng);

  core::NetCounters transport(&metrics);
  std::atomic<long long> cycles{0};
  std::vector<std::thread> threads;
  for (std::size_t d = 0; d < kDevices; ++d) {
    threads.emplace_back([&, d] {
      core::DeviceConfig dc;
      dc.minibatch_size = 10;
      dc.budget = privacy::PrivacyBudget::gradient_dominated(20.0);
      core::Device dev(dc, model, rng::Engine(100 + d));
      dev.set_credentials(registry.enroll());  // server-issued HMAC secret
      core::ReconnectPolicy policy;  // deadlines + capped backoff defaults
      if (chaos_mode) {
        policy.connect_timeout_ms = 2000;
        policy.io_deadline_ms = 500;  // bound every blackholed wait
        policy.max_attempts = 10;
        policy.backoff_base_ms = 2;
        policy.backoff_max_ms = 50;
      }
      core::ReconnectingDeviceSession session("127.0.0.1", connect_port,
                                              policy, rng::Engine(200 + d),
                                              &transport, trace.get(),
                                              dev.id());
      core::DeviceClient client(dev, session.as_exchange());
      for (int pass = 0; pass < passes; ++pass)
        for (const auto& s : shards[d])
          if (client.offer_sample(s)) ++cycles;
    });
  }
  for (auto& t : threads) t.join();

  const double err = model.error_rate(server.parameters(), ds.test);
  std::printf("\ndevices: %zu, checkin cycles over TCP: %lld\n", kDevices,
              cycles.load());
  std::printf("server iterations: %llu, rejected checkins: %lld\n",
              static_cast<unsigned long long>(server.version()),
              server.rejected_checkins());
  std::printf("server-side error estimate (Eq. 14, from noisy counts): %.4f\n",
              server.estimated_error());
  std::printf("true test error of the learned model: %.4f\n", err);

  // Transport health: device-side retry/reconnect counters merged with the
  // server's accept/refuse/reap counters would come from separate hosts in
  // a real deployment; here we print both.
  std::printf("\n%s", core::transport_report(transport.snapshot()).c_str());
  const auto srv = tcp_server.net_snapshot();
  std::printf("server: accepted=%lld refused=%lld idle-closed=%lld reaped=%lld\n",
              srv.accepted_connections, srv.refused_connections,
              srv.idle_closed, srv.reaped_workers);

  if (proxy) proxy->shutdown();
  tcp_server.shutdown();

  if (!metrics_path.empty()) {
    obs::write_metrics_file(metrics, metrics_path);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (trace) {
    trace->flush();
    std::printf("trace written to %s (%lld events)\n", trace_path.c_str(),
                static_cast<long long>(trace->events_written()));
  }

  bool ok = err < 0.5;
  if (chaos_mode && proxy) {
    // Cross-check: the trace and counters must agree with each other and
    // with what the proxy says it injected.
    const auto faults = proxy->counts();
    const auto dev_net = transport.snapshot();
    std::printf("\nchaos cross-check:\n");
    std::printf("  proxy: connections=%lld killed=%lld corrupted=%lld "
                "blackholed=%lld\n",
                faults.connections, faults.killed_connections(),
                faults.corrupted, faults.blackholed);
    std::printf("  devices: reconnects=%lld retries=%lld timeouts=%lld "
                "abandoned=%lld\n",
                dev_net.reconnects, dev_net.retries, dev_net.timeouts,
                dev_net.checkins_abandoned);
    // Every killed link (minus at most one unused final drop per device)
    // forces a reconnect, an in-flight retry, or an abandoned checkin.
    const long long responses =
        dev_net.reconnects + dev_net.retries + dev_net.checkins_abandoned;
    const long long required =
        faults.killed_connections() - static_cast<long long>(kDevices);
    if (responses < required) {
      std::printf("  FAIL: %lld fault responses < %lld killed links\n",
                  responses, required);
      ok = false;
    }
    if (trace) {
      // The JSONL trace is the same story: reconnect/timeout event counts
      // must equal the counters incremented on the identical code paths.
      const long long traced_reconnects = count_events(trace_path, "reconnect");
      const long long traced_timeouts = count_events(trace_path, "timeout");
      std::printf("  trace: reconnect events=%lld timeout events=%lld\n",
                  traced_reconnects, traced_timeouts);
      if (traced_reconnects != dev_net.reconnects ||
          traced_timeouts != dev_net.timeouts) {
        std::printf("  FAIL: trace events do not match transport counters\n");
        ok = false;
      }
    }
    std::printf("  %s\n", ok ? "OK: trace, counters, and proxy agree"
                             : "cross-check failed");
  }
  return ok ? 0 : 1;
}
