#!/bin/sh
# Check the repo's markdown docs: every intra-repo link resolves to an
# existing file, every #anchor resolves to a real heading in its target
# (GitHub slug rules), no doc under docs/ is orphaned (unreachable from
# any other scanned doc), and code fences are balanced.
#
# Usage: check_doc_links.sh [repo_root]
#
# Scans *.md at the root and under docs/ for [text](target) links, skips
# external (scheme://, mailto:) targets, resolves the rest relative to
# the containing file, and fails listing every finding. Run by ctest
# (docs_links) and the CI docs job.
set -u

root="${1:-.}"
cd "$root" || exit 2

status=0
checked=0
anchors_checked=0

# GitHub-style heading slugs of a markdown file, one per line: lowercase,
# formatting backticks stripped, punctuation removed (alnum/space/-/_
# kept), spaces to hyphens, duplicates suffixed -1, -2, ... Headings
# inside fenced code blocks (shell comments, C++ includes) don't count.
slugs_of() {
  awk '
    /^(```|~~~)/ { fence = !fence; next }
    fence { next }
    /^#/ {
      s = $0
      sub(/^#+[ \t]*/, "", s)
      gsub(/`/, "", s)
      s = tolower(s)
      gsub(/[^a-z0-9 _-]/, "", s)
      gsub(/ /, "-", s)
      n = seen[s]++
      if (n) print s "-" n; else print s
    }
  ' "$1"
}

has_anchor() {  # file anchor -> 0 iff some heading slugifies to anchor
  slugs_of "$1" | grep -qx "$2"
}

# Every successfully resolved target path, for orphan detection.
linked=""

for md in *.md docs/*.md; do
  [ -f "$md" ] || continue
  case "$md" in
    SNIPPETS.md|PAPERS.md) continue ;;  # retrieval dumps, not navigable docs
  esac
  dir=$(dirname "$md")

  # Lint: a file must close every code fence it opens, or everything
  # after the dangling fence renders as code (and hides headings from
  # the anchor check above).
  fences=$(grep -c '^```' "$md")
  if [ $((fences % 2)) -ne 0 ]; then
    echo "UNBALANCED FENCES: $md has $fences \`\`\` lines"
    status=1
  fi

  # One target per line: grab the (...) of every [...](...) occurrence.
  targets=$(grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null |
            sed 's/.*](\([^)]*\))/\1/')
  for target in $targets; do
    case "$target" in
      *://*|mailto:*) continue ;;  # external
    esac
    path="${target%%#*}"
    anchor=""
    case "$target" in
      *\#*) anchor="${target#*#}" ;;
    esac

    # Resolve the file part ("" = same file).
    if [ -z "$path" ]; then
      resolved="$md"
    elif [ -e "$dir/$path" ]; then
      resolved="$dir/$path"
    elif [ -e "$path" ]; then
      resolved="$path"
    else
      echo "BROKEN: $md -> $target"
      status=1
      continue
    fi
    checked=$((checked + 1))
    case "$resolved" in
      ./*) resolved="${resolved#./}" ;;
    esac
    linked="$linked $resolved"

    # Anchor part, for markdown targets only.
    if [ -n "$anchor" ]; then
      case "$resolved" in
        *.md)
          anchors_checked=$((anchors_checked + 1))
          if ! has_anchor "$resolved" "$anchor"; then
            echo "BROKEN ANCHOR: $md -> $target (no heading slugs to '#$anchor' in $resolved)"
            status=1
          fi ;;
      esac
    fi
  done
done

# Orphan detection: every doc under docs/ must be reachable from some
# other scanned doc (README or a sibling), or no reader ever finds it.
for doc in docs/*.md; do
  [ -f "$doc" ] || continue
  case " $linked " in
    *" $doc "*) ;;
    *) echo "ORPHANED: $doc is linked from no other doc"
       status=1 ;;
  esac
done

echo "checked $checked intra-repo links ($anchors_checked with anchors)"
[ "$status" -eq 0 ] && echo "all links, anchors, fences, and doc reachability ok"
exit "$status"
