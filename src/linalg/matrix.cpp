#include "linalg/matrix.hpp"

#include <cassert>
#include <cmath>

namespace crowdml::linalg {

Vector Matrix::row(std::size_t r) const {
  assert(r < rows_);
  return Vector(row_data(r), row_data(r) + cols_);
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  assert(r < rows_ && v.size() == cols_);
  std::copy(v.begin(), v.end(), row_data(r));
}

Vector Matrix::multiply(const Vector& x) const {
  assert(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row_data(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::multiply_transposed(const Vector& x) const {
  assert(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row_data(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += a[c] * xr;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& b) const {
  assert(cols_ == b.rows_);
  Matrix c(rows_, b.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row_data(k);
      double* crow = c.row_data(i);
      for (std::size_t j = 0; j < b.cols_; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

Vector column_means(const Matrix& samples) {
  Vector mu(samples.cols(), 0.0);
  if (samples.rows() == 0) return mu;
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    const double* row = samples.row_data(r);
    for (std::size_t c = 0; c < samples.cols(); ++c) mu[c] += row[c];
  }
  scal(1.0 / static_cast<double>(samples.rows()), mu);
  return mu;
}

Matrix covariance(const Matrix& samples) {
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();
  Matrix cov(d, d, 0.0);
  if (n == 0) return cov;
  const Vector mu = column_means(samples);
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = samples.row_data(r);
    for (std::size_t i = 0; i < d; ++i) {
      const double di = row[i] - mu[i];
      if (di == 0.0) continue;
      double* crow = cov.row_data(i);
      for (std::size_t j = 0; j < d; ++j) crow[j] += di * (row[j] - mu[j]);
    }
  }
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  scal(1.0 / denom, cov.data());
  return cov;
}

}  // namespace crowdml::linalg
