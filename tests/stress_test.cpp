// Stress and randomized-property tests: many concurrent TCP clients,
// randomized message round-trips, and high-churn simulation runs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/crowd_simulation.hpp"
#include "core/tcp_runtime.hpp"
#include "models/logistic_regression.hpp"
#include "opt/schedule.hpp"
#include "rng/distributions.hpp"

using namespace crowdml;

namespace {

net::CheckinMessage random_checkin(rng::Engine& eng, std::size_t dim,
                                   std::size_t classes) {
  net::CheckinMessage m;
  m.device_id = eng();
  m.param_version = eng();
  m.g_hat.resize(dim);
  for (double& v : m.g_hat) v = rng::normal(eng) * 100.0;
  m.ns = static_cast<std::int64_t>(rng::uniform_index(eng, 1000)) + 1;
  m.ne_hat = static_cast<std::int64_t>(rng::uniform_index(eng, 2000)) - 1000;
  m.ny_hat.resize(classes);
  for (auto& v : m.ny_hat)
    v = static_cast<std::int64_t>(rng::uniform_index(eng, 500)) - 100;
  for (auto& b : m.auth_tag) b = static_cast<std::uint8_t>(eng());
  return m;
}

}  // namespace

// Property: arbitrary checkin contents survive serialize->frame->parse.
class CheckinRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CheckinRoundTrip, RandomizedMessages) {
  rng::Engine eng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const std::size_t dim = 1 + rng::uniform_index(eng, 64);
    const std::size_t classes = 1 + rng::uniform_index(eng, 12);
    const net::CheckinMessage m = random_checkin(eng, dim, classes);
    const net::Bytes frame =
        net::encode_frame(net::MessageType::kCheckin, m.serialize());
    const net::Frame f = net::decode_frame(frame);
    const auto parsed = net::CheckinMessage::deserialize(f.payload);
    EXPECT_EQ(parsed.device_id, m.device_id);
    EXPECT_EQ(parsed.param_version, m.param_version);
    EXPECT_EQ(parsed.g_hat, m.g_hat);
    EXPECT_EQ(parsed.ns, m.ns);
    EXPECT_EQ(parsed.ne_hat, m.ne_hat);
    EXPECT_EQ(parsed.ny_hat, m.ny_hat);
    EXPECT_EQ(parsed.auth_tag, m.auth_tag);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckinRoundTrip, ::testing::Values(1, 2, 3, 4));

TEST(TcpStress, TwentyConcurrentClients) {
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  core::ServerConfig cfg;
  cfg.param_dim = model.param_dim();
  cfg.num_classes = 3;
  core::Server server(cfg,
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::SqrtDecaySchedule>(0.1), 100.0),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));
  core::TcpCrowdServer tcp(server, registry, 0);

  constexpr int kClients = 20;
  constexpr int kCyclesPerClient = 50;
  std::atomic<long long> completed{0};
  std::vector<std::thread> clients;
  for (int cidx = 0; cidx < kClients; ++cidx) {
    clients.emplace_back([&, cidx] {
      core::DeviceConfig dc;
      dc.minibatch_size = 1;
      core::Device dev(dc, model, rng::Engine(100 + cidx));
      dev.set_credentials(registry.enroll());
      core::TcpDeviceSession session("127.0.0.1", tcp.port());
      core::DeviceClient client(dev, session.as_exchange());
      rng::Engine eng(200 + cidx);
      for (int i = 0; i < kCyclesPerClient; ++i) {
        linalg::Vector x(4);
        for (double& v : x) v = rng::normal(eng);
        linalg::l1_normalize(x);
        models::Sample s(std::move(x),
                         static_cast<double>(rng::uniform_index(eng, 3)));
        if (client.offer_sample(std::move(s))) ++completed;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(completed.load(), kClients * kCyclesPerClient);
  EXPECT_EQ(server.version(),
            static_cast<std::uint64_t>(kClients * kCyclesPerClient));
  EXPECT_EQ(server.devices_seen(), static_cast<std::size_t>(kClients));
  EXPECT_EQ(server.rejected_checkins(), 0);
  tcp.shutdown();
}

TEST(TcpStress, InterleavedGarbageDoesNotDisturbHonestClients) {
  models::MulticlassLogisticRegression model(2, 3, 0.0);
  core::ServerConfig cfg;
  cfg.param_dim = model.param_dim();
  cfg.num_classes = 2;
  core::Server server(cfg,
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::ConstantSchedule>(0.01), 100.0),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));
  core::TcpCrowdServer tcp(server, registry, 0);

  std::atomic<bool> stop{false};
  std::thread vandal([&] {
    rng::Engine eng(3);
    while (!stop.load()) {
      auto conn = net::TcpConnection::connect("127.0.0.1", tcp.port());
      if (!conn) continue;
      net::Bytes junk(1 + eng() % 64);
      for (auto& b : junk) b = static_cast<std::uint8_t>(eng());
      conn->send_frame(net::encode_frame(net::MessageType::kCheckin, junk));
      conn->recv_frame();
    }
  });

  core::DeviceConfig dc;
  dc.minibatch_size = 1;
  core::Device dev(dc, model, rng::Engine(10));
  dev.set_credentials(registry.enroll());
  core::TcpDeviceSession session("127.0.0.1", tcp.port());
  core::DeviceClient client(dev, session.as_exchange());
  rng::Engine eng(11);
  long long ok = 0;
  for (int i = 0; i < 100; ++i) {
    linalg::Vector x(3);
    for (double& v : x) v = rng::normal(eng);
    linalg::l1_normalize(x);
    if (client.offer_sample(models::Sample(
            std::move(x), static_cast<double>(rng::uniform_index(eng, 2)))))
      ++ok;
  }
  stop.store(true);
  vandal.join();
  EXPECT_EQ(ok, 100);
  EXPECT_EQ(server.version(), 100u);
  tcp.shutdown();
}

TEST(SimStress, ExtremeChurnAndLossStillTerminates) {
  models::MulticlassLogisticRegression model(2, 3, 0.0);
  models::SampleSet shard;
  rng::Engine eng(5);
  for (int i = 0; i < 50; ++i) {
    linalg::Vector x(3);
    for (double& v : x) v = rng::normal(eng);
    linalg::l1_normalize(x);
    shard.emplace_back(std::move(x),
                       static_cast<double>(rng::uniform_index(eng, 2)));
  }
  core::CrowdSimConfig cfg;
  cfg.num_devices = 30;
  cfg.max_total_samples = 3000;
  cfg.eval_points = 2;
  cfg.loss_probability = 0.5;                 // half of all legs dropped
  cfg.churn = sim::ChurnModel(5.0, 20.0);     // mostly offline
  cfg.delay = std::make_shared<sim::UniformDelay>(3.0);
  cfg.learning_rate_c = 10.0;
  cfg.seed = 6;
  core::CrowdSimulation sim(model,  cfg);
  std::vector<models::SampleSet> shards(30, shard);
  const auto res = sim.run(core::make_cycling_source(std::move(shards)), {});
  EXPECT_EQ(res.samples_generated, 3000);
  EXPECT_GT(res.checkouts_failed, 0);
  EXPECT_GT(res.server_updates, 0u);  // learning still progressed
}
