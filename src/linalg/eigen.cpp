#include "linalg/eigen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace crowdml::linalg {

namespace {

double off_diagonal_norm(const Matrix& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (i != j) acc += a(i, j) * a(i, j);
  return std::sqrt(acc);
}

}  // namespace

EigenResult eigen_symmetric(const Matrix& input, double tol, int max_sweeps) {
  assert(input.rows() == input.cols());
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);

  const double scale = std::max(a.frobenius_norm(), 1e-300);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm(a) <= tol * scale) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable computation of tan of the rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Vector diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t l, std::size_t r) { return diag[l] > diag[r]; });

  EigenResult res;
  res.values.resize(n);
  res.vectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    res.values[i] = diag[order[i]];
    for (std::size_t k = 0; k < n; ++k) res.vectors(k, i) = v(k, order[i]);
  }
  return res;
}

}  // namespace crowdml::linalg
