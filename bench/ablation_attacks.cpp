// Ablation: malignant devices (Section III-C threat model) and Remark 3's
// mitigation — "adaptive learning rates can be used ... which can provide
// a robustness to large gradients from outlying or malignant devices".
//
// A fraction of the crowd submits corrupted gradients; we compare plain
// SGD against AdaGrad, whose per-coordinate step shrinkage absorbs the
// oversized poisoned updates.
#include "bench/common.hpp"

using namespace bench;

namespace {

double run_attack(const models::Model& model, const data::Dataset& ds,
                  core::UpdaterKind updater, double c,
                  core::AttackKind attack, double fraction, int trials,
                  double scale_samples) {
  core::CrowdSimConfig cfg =
      crowd_base(static_cast<long long>(scale_samples), 1);
  cfg.updater = updater;
  cfg.learning_rate_c = c;
  cfg.attack = attack;
  cfg.malicious_fraction = fraction;
  cfg.attack_magnitude = 2.0;
  cfg.eval_points = 4;
  return run_crowd_trials(model, ds, cfg, trials, 321).final_value();
}

}  // namespace

int main() {
  const Options opt = options();
  header("Ablation: malignant devices (Remark 3 robustness)",
         "final error vs fraction of attackers, SGD vs AdaGrad", opt);

  const data::Dataset ds = [&] {
    rng::Engine eng(42);
    return data::make_mnist_like(eng, opt.scale);
  }();
  models::MulticlassLogisticRegression model(ds.num_classes, ds.feature_dim, 0.0);
  const double samples = 2.0 * static_cast<double>(ds.train.size());

  std::printf("%12s %14s %14s %14s %14s\n", "attackers", "sgd/noise",
              "adagrad/noise", "sgd/signflip", "adagrad/signflip");
  double sgd_noise_20 = 0.0, ada_noise_20 = 0.0;
  double sgd_clean = 0.0, ada_clean = 0.0;
  for (double frac : {0.0, 0.05, 0.2}) {
    const double sn =
        run_attack(model, ds, core::UpdaterKind::kSgd, kCrowdLearningRate,
                   core::AttackKind::kRandomNoise, frac, opt.trials, samples);
    const double an =
        run_attack(model, ds, core::UpdaterKind::kAdaGrad, 2.0,
                   core::AttackKind::kRandomNoise, frac, opt.trials, samples);
    const double sf =
        run_attack(model, ds, core::UpdaterKind::kSgd, kCrowdLearningRate,
                   core::AttackKind::kSignFlip, frac, opt.trials, samples);
    const double af =
        run_attack(model, ds, core::UpdaterKind::kAdaGrad, 2.0,
                   core::AttackKind::kSignFlip, frac, opt.trials, samples);
    std::printf("%12.2f %14.3f %14.3f %14.3f %14.3f\n", frac, sn, an, sf, af);
    if (frac == 0.0) {
      sgd_clean = sn;
      ada_clean = an;
    }
    if (frac == 0.2) {
      sgd_noise_20 = sn;
      ada_noise_20 = an;
    }
  }

  check(sgd_noise_20 > sgd_clean + 0.05,
        "garbage gradients from 20% of devices measurably hurt plain SGD");
  check(ada_noise_20 < sgd_noise_20 - 0.03,
        "AdaGrad absorbs the attack better than SGD (Remark 3: adaptive "
        "rates bound the step an oversized gradient can take)");
  (void)ada_clean;
  return 0;
}
