#include "baselines/central_sgd.hpp"

#include <cassert>
#include <cmath>

#include "baselines/central_batch.hpp"
#include "opt/schedule.hpp"
#include "rng/distributions.hpp"

namespace crowdml::baselines {

CentralSgdResult train_central_sgd(const models::Model& model,
                                   const models::SampleSet& train,
                                   const models::SampleSet& test,
                                   const CentralSgdConfig& config) {
  assert(!train.empty());
  assert(config.minibatch_size >= 1);
  rng::Engine eng(config.seed);
  rng::Engine perturb_eng = eng.split(1);
  rng::Engine order_eng = eng.split(2);

  // Appendix C: each uploaded sample is perturbed once, at the device.
  const double eps_each = std::isinf(config.epsilon)
                              ? privacy::kNoPrivacy
                              : config.epsilon / 2.0;
  const models::SampleSet noisy =
      perturb_dataset(train, model.num_classes(), eps_each, eps_each,
                      perturb_eng);

  opt::SgdUpdater updater(
      std::make_unique<opt::SqrtDecaySchedule>(config.learning_rate_c),
      config.projection_radius);

  CentralSgdResult result;
  linalg::Vector w(model.param_dim(), 0.0);
  const long long eval_interval =
      std::max<long long>(1, config.max_samples /
                                 static_cast<long long>(config.eval_points));

  auto evaluate = [&](long long x) {
    if (test.empty()) return;
    result.test_error.record(static_cast<double>(x),
                             model.error_rate(w, test));
  };
  evaluate(0);
  long long next_eval = eval_interval;

  linalg::Vector g(model.param_dim(), 0.0);
  std::size_t in_batch = 0;
  long long streamed = 0;
  std::vector<std::size_t> order = rng::shuffled_indices(order_eng, noisy.size());
  std::size_t cursor = 0;
  while (streamed < config.max_samples) {
    if (cursor == order.size()) {  // next pass, fresh order
      order = rng::shuffled_indices(order_eng, noisy.size());
      cursor = 0;
    }
    const models::Sample& s = noisy[order[cursor++]];
    model.add_loss_gradient(w, s, g);
    ++in_batch;
    ++streamed;
    if (in_batch == config.minibatch_size) {
      linalg::scal(1.0 / static_cast<double>(in_batch), g);
      model.add_regularization_gradient(w, g);
      updater.apply(w, g);
      g.assign(g.size(), 0.0);
      in_batch = 0;
    }
    while (streamed >= next_eval && next_eval <= config.max_samples) {
      evaluate(next_eval);
      next_eval += eval_interval;
    }
  }

  result.final_test_error =
      result.test_error.empty() ? 1.0 : result.test_error.final_value();
  result.w = std::move(w);
  return result;
}

}  // namespace crowdml::baselines
