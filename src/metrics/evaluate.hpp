// Model-kind-aware evaluation: misclassification rate for classifiers,
// mean absolute error for regressors — one call site for the experiment
// drivers regardless of task type.
#pragma once

#include <span>

#include "models/model.hpp"

namespace crowdml::metrics {

/// Classifier: fraction misclassified. Regressor: mean |h(x;w) - y|.
/// Empty sample sets evaluate to 0.
double evaluate_model(const models::Model& model, const linalg::Vector& w,
                      std::span<const models::Sample> samples);

}  // namespace crowdml::metrics
