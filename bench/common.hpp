// Shared harness utilities for the figure-reproduction benches.
//
// Each bench regenerates one figure of the paper: it runs every curve the
// figure plots (averaged over trials with randomized sharding, noise and
// delays — Section V-C), prints the error-vs-iteration table, and ends
// with a PASS/WARN line per qualitative "shape" the paper reports.
//
// Scale knobs (environment):
//   CROWDML_SCALE  — dataset scale in (0,1]; default 0.25 (15000/2500
//                    samples for MNIST-like). 1.0 = the paper's full size.
//   CROWDML_TRIALS — trials to average; default 3 (paper: 10).
//   CROWDML_PROFILE — if set, print the hot-path timing histograms
//                    (gradient, sanitize, codec, server update) at exit.
//   CROWDML_METRICS_OUT — if set, write the full Prometheus exposition of
//                    the process registry to this path at exit.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/central_batch.hpp"
#include "core/crowd_simulation.hpp"
#include "data/mixture.hpp"
#include "metrics/curves.hpp"
#include "models/logistic_regression.hpp"
#include "obs/metrics.hpp"

namespace bench {

using namespace crowdml;

struct Options {
  double scale = 0.25;
  int trials = 3;
  bool profile = false;
};

/// atexit hook: render the timing histograms accumulated in the process
/// registry (every sim run below records into it) as a per-phase summary,
/// and optionally dump the raw Prometheus text for offline diffing.
inline void print_profile_report() {
  const auto snap = obs::default_registry().snapshot();
  std::printf("\n---- profile (CROWDML_PROFILE) ----------------------------\n");
  std::printf("%-40s %12s %14s %14s\n", "scope", "count", "total_s", "mean_us");
  for (const auto& h : snap.histograms) {
    // Only timing scopes belong in a seconds table; other histograms
    // (e.g. observed staleness) still land in CROWDML_METRICS_OUT.
    const bool timing = h.name.size() > 8 &&
                        h.name.rfind("_seconds") == h.name.size() - 8;
    if (h.data.count == 0 || !timing) continue;
    std::printf("%-40s %12lld %14.4f %14.2f\n", h.name.c_str(), h.data.count,
                h.data.sum, h.data.mean() * 1e6);
  }
  if (const char* path = std::getenv("CROWDML_METRICS_OUT")) {
    obs::write_metrics_file(obs::default_registry(), path);
    std::printf("(metrics written: %s)\n", path);
  }
}

inline Options options() {
  Options o;
  if (const char* s = std::getenv("CROWDML_SCALE")) o.scale = std::atof(s);
  if (const char* t = std::getenv("CROWDML_TRIALS")) o.trials = std::atoi(t);
  if (o.scale <= 0.0 || o.scale > 1.0) o.scale = 0.25;
  if (o.trials < 1) o.trials = 1;
  o.profile = std::getenv("CROWDML_PROFILE") != nullptr ||
              std::getenv("CROWDML_METRICS_OUT") != nullptr;
  static bool hook_registered = false;
  if (o.profile && !hook_registered) {
    hook_registered = true;
    // Construct the registry's function-local static *before* registering
    // the hook, so it is destroyed after the hook runs at exit.
    obs::default_registry();
    std::atexit(print_profile_report);
  }
  return o;
}

/// The experiments' shared hyperparameters (selected once on held-out
/// trials, as the paper selects lambda and c).
inline constexpr double kRadius = 500.0;
inline constexpr double kCrowdLearningRate = 100.0;   // no-privacy runs
inline constexpr double kPrivateLearningRate = 50.0;  // eps^-1 = 0.1 runs
inline constexpr std::size_t kNumDevices = 1000;      // paper's M

inline core::CrowdSimConfig crowd_base(long long max_samples,
                                       std::uint64_t seed) {
  core::CrowdSimConfig cfg;
  cfg.num_devices = kNumDevices;
  cfg.max_total_samples = max_samples;
  cfg.eval_points = 30;
  cfg.learning_rate_c = kCrowdLearningRate;
  cfg.projection_radius = kRadius;
  cfg.seed = seed;
  return cfg;
}

/// Run the crowd sim `trials` times (re-sharding each trial) and return
/// the mean test-error curve.
inline metrics::LearningCurve run_crowd_trials(
    const models::Model& model, const data::Dataset& ds,
    const core::CrowdSimConfig& base, int trials, std::uint64_t seed0) {
  metrics::CurveAggregator agg;
  for (int t = 0; t < trials; ++t) {
    core::CrowdSimConfig cfg = base;
    // Aggregate protocol counters + staleness/update-latency histograms
    // across all trials into the process registry (observability only;
    // the sim itself never reads them).
    cfg.metrics = &obs::default_registry();
    cfg.seed = seed0 + static_cast<std::uint64_t>(t) * 7919;
    rng::Engine shard_eng(cfg.seed ^ 0x5A5A);
    auto shards =
        data::shard_across_devices(ds.train, cfg.num_devices, shard_eng);
    core::CrowdSimulation sim(model, cfg);
    agg.add_trial(
        sim.run(core::make_cycling_source(std::move(shards)), ds.test)
            .test_error);
  }
  return agg.mean();
}

/// Constant reference line at the batch baseline's error, on `grid`'s x's.
inline metrics::LearningCurve constant_curve(
    double value, const metrics::LearningCurve& grid) {
  metrics::LearningCurve out;
  for (const auto& p : grid.points()) out.record(p.x, value);
  return out;
}

/// Batch trainer tuned for the mixture problems.
inline baselines::BatchTrainerConfig batch_config() {
  baselines::BatchTrainerConfig cfg;
  cfg.iterations = 400;
  cfg.learning_rate = 200.0;
  cfg.momentum = 0.95;
  cfg.projection_radius = kRadius;
  return cfg;
}

inline void header(const char* figure, const char* description,
                   const Options& o) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("scale=%.2f trials=%d (CROWDML_SCALE / CROWDML_TRIALS to change;"
              " paper: scale=1.0 trials=10)\n", o.scale, o.trials);
  std::printf("================================================================\n");
}

/// Every bench::check result this process, in call order — the `checks`
/// map of the machine-readable output below.
inline std::vector<std::pair<std::string, bool>>& check_log() {
  static std::vector<std::pair<std::string, bool>> log;
  return log;
}

inline void check(bool ok, const std::string& what) {
  check_log().emplace_back(what, ok);
  std::printf("%s  %s\n", ok ? "[PASS]" : "[WARN]", what.c_str());
}

// ---- machine-readable results (--json-out; BENCH_*.json) -------------
//
// Shared schema so every bench's artifact diffs the same way:
//   {"bench": "<name>", "scale": <number>,
//    "rows": [{<field>: <value>, ...}, ...],
//    "checks": {"<bench::check label>": true|false, ...}}

struct JsonField {
  std::string key;
  std::string value;  ///< already JSON-encoded
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

inline JsonField jnum(const std::string& key, double v) {
  char buf[32];
  // NaN/inf are not JSON; a bench that produced one reports 0 and should
  // be failing a check anyway.
  std::snprintf(buf, sizeof buf, "%.6g", std::isfinite(v) ? v : 0.0);
  return {key, buf};
}

inline JsonField jint(const std::string& key, long long v) {
  return {key, std::to_string(v)};
}

inline JsonField jstr(const std::string& key, const std::string& v) {
  return {key, "\"" + json_escape(v) + "\""};
}

/// Write the bench's results (+ every check recorded so far) to `path`.
/// Returns false (after printing a warning) when the file can't open.
inline bool write_bench_json(const std::string& path, const std::string& name,
                             double scale,
                             const std::vector<std::vector<JsonField>>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::printf("[WARN]  could not write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"" << json_escape(name) << "\",\n  \"scale\": "
      << jnum("", scale).value << ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << (i ? ",\n    {" : "\n    {");
    for (std::size_t j = 0; j < rows[i].size(); ++j)
      out << (j ? ", " : "") << '"' << json_escape(rows[i][j].key)
          << "\": " << rows[i][j].value;
    out << '}';
  }
  out << "\n  ],\n  \"checks\": {";
  const auto& checks = check_log();
  for (std::size_t i = 0; i < checks.size(); ++i)
    out << (i ? ",\n    \"" : "\n    \"") << json_escape(checks[i].first)
        << "\": " << (checks[i].second ? "true" : "false");
  out << "\n  }\n}\n";
  std::printf("(json written: %s)\n", path.c_str());
  return true;
}

inline void print_figure(const std::string& x_label,
                         const std::vector<std::string>& names,
                         const std::vector<metrics::LearningCurve>& curves,
                         const std::string& csv_name = "") {
  metrics::print_curve_table(std::cout, x_label, names, curves, 16);
  // With CROWDML_CSV_DIR set, also emit the raw series for plotting.
  if (const char* dir = std::getenv("CROWDML_CSV_DIR"); dir && !csv_name.empty()) {
    std::string stem = csv_name;
    for (char& c : stem)
      if (c == ' ' || c == '/') c = '_';
    const std::string path = std::string(dir) + "/" + stem + ".csv";
    std::ofstream out(path);
    if (out) {
      metrics::write_curves_csv(out, names, curves);
      std::printf("(csv written: %s)\n", path.c_str());
    }
  }
}

}  // namespace bench
