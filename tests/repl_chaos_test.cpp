// Replication chaos test: kill a quorum-acked leader mid-traffic,
// promote the most-caught-up follower, and prove the invariant the
// quorum mode exists for — no checkin whose ack reached a device is
// lost by the failover — then let the deposed leader rejoin and verify
// epoch fencing shuts it out.
//
// This is the in-process half of the story (abrupt engine teardown, no
// clean compaction); tests/repl_failover_test.sh does the same dance
// with real processes and SIGKILL.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "engine/epoll_server.hpp"
#include "net/auth.hpp"
#include "net/tcp.hpp"
#include "opt/schedule.hpp"
#include "replica/epoch.hpp"
#include "replica/follower.hpp"
#include "replica/log_shipper.hpp"
#include "store/durable_store.hpp"

using namespace crowdml;
using replica::EpochStore;
using replica::Follower;
using replica::FollowerOptions;
using replica::LogShipper;
using replica::ReplAckMode;
using replica::ShipperOptions;

namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "crowdml_chaos_XXXXXX")
            .string();
    if (!mkdtemp(tmpl.data())) throw std::runtime_error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

core::ServerConfig config() {
  core::ServerConfig c;
  c.param_dim = 4;
  c.num_classes = 3;
  return c;
}

std::unique_ptr<opt::Updater> sgd() {
  return std::make_unique<opt::SgdUpdater>(
      std::make_unique<opt::SqrtDecaySchedule>(1.0), 100.0);
}

net::CheckinMessage random_checkin(rng::Engine& eng, std::uint64_t device) {
  net::CheckinMessage m;
  m.device_id = device;
  for (int i = 0; i < 4; ++i)
    m.g_hat.push_back(static_cast<double>(eng() % 2001) / 1000.0 - 1.0);
  m.ns = 1 + static_cast<std::int64_t>(eng() % 10);
  m.ne_hat = static_cast<std::int64_t>(eng() % 3);
  for (int i = 0; i < 3; ++i)
    m.ny_hat.push_back(static_cast<std::int64_t>(eng() % 5));
  return m;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Drive `count` signed checkins over one connection; every ok ack bumps
/// `acked`. Stops silently on any transport error (the leader died).
void device_loop(std::uint16_t port, const net::DeviceCredentials& creds,
                 std::uint32_t seed, int count, std::atomic<long long>& acked) {
  auto conn = net::TcpConnection::connect("127.0.0.1", port, 2000);
  if (!conn) return;
  conn->set_deadline_ms(10'000);
  rng::Engine eng(seed);
  for (int i = 0; i < count; ++i) {
    net::CheckinMessage m = random_checkin(eng, creds.device_id);
    m.auth_tag = creds.sign(m.body());
    if (!conn->send_frame(
            net::encode_frame(net::MessageType::kCheckin, m.serialize())))
      return;
    const auto reply = conn->recv_frame();
    if (!reply) return;
    try {
      const auto ack =
          net::AckMessage::deserialize(net::decode_frame(*reply).payload);
      if (ack.ok) ++acked;
    } catch (const net::CodecError&) {
      return;
    }
  }
}

}  // namespace

TEST(ReplChaos, QuorumFailoverLosesNoAckedCheckin) {
  obs::MetricsRegistry reg;

  // --- Old leader: epoll engine, group commit, quorum shipper (1 of 2).
  TempDir ldir;
  core::Server leader(config(), sgd(), rng::Engine(1));
  store::DurableStoreOptions so;
  so.wal.metrics = &reg;
  auto lstore = std::make_unique<store::DurableStore>(ldir.path, so);
  lstore->recover(leader);
  lstore->attach(leader);
  lstore->set_group_commit(true);

  ShipperOptions shopts;
  shopts.ack_mode = ReplAckMode::kQuorum;
  shopts.quorum_follower_acks = 1;
  shopts.quorum_timeout_ms = 3000;
  shopts.metrics = &reg;
  auto shipper = std::make_unique<LogShipper>(leader, *lstore, 1, shopts);

  net::AuthRegistry auth{rng::Engine(2)};
  engine::EngineConfig ecfg;
  ecfg.metrics = &reg;
  // The exact wiring crowdml-server uses: acks are held until the batch
  // is leader-durable AND a quorum of followers confirmed durability.
  ecfg.group_commit = [&] {
    if (!lstore->commit_group()) return false;
    shipper->notify_committed();
    return shipper->await_quorum(lstore->wal().last_seq());
  };
  auto engine = std::make_unique<engine::EpollCrowdServer>(leader, auth, ecfg);

  // --- Two followers.
  auto make_follower = [&](const std::string& dir, std::uint64_t id,
                           core::Server& srv) {
    FollowerOptions fo;
    fo.leader_port = shipper->port();
    fo.follower_id = id;
    fo.store.wal.metrics = &reg;
    fo.metrics = &reg;
    fo.reconnect_backoff_ms = 20;
    auto f = std::make_unique<Follower>(srv, dir, fo);
    f->start();
    return f;
  };
  TempDir f1dir, f2dir;
  core::Server srv1(config(), sgd(), rng::Engine(1));
  core::Server srv2(config(), sgd(), rng::Engine(1));
  auto f1 = make_follower(f1dir.path, 1, srv1);
  auto f2 = make_follower(f2dir.path, 2, srv2);
  ASSERT_TRUE(wait_until([&] { return f1->connected() && f2->connected(); }));

  // --- Phase 1: traffic from 4 devices, then kill the leader mid-flight.
  std::atomic<long long> acked{0};
  std::vector<std::thread> devices;
  std::vector<net::DeviceCredentials> creds;
  for (std::uint32_t d = 0; d < 4; ++d) creds.push_back(auth.enroll());
  for (std::uint32_t d = 0; d < 4; ++d)
    devices.emplace_back(device_loop, engine->port(), creds[d], 100 + d, 200,
                         std::ref(acked));

  ASSERT_TRUE(wait_until([&] { return acked.load() >= 50; }))
      << "no traffic flowed before the crash";
  // Abrupt teardown: no sync, no compaction, no goodbye to followers.
  engine->shutdown();
  shipper->shutdown();
  for (auto& t : devices) t.join();
  const long long phase1_acked = acked.load();
  ASSERT_GE(phase1_acked, 50);

  // --- Failover runbook: promote whichever follower is most caught up.
  f1->shutdown();
  f2->shutdown();
  const bool pick1 = f1->applied_seq() >= f2->applied_seq();
  Follower& winner = pick1 ? *f1 : *f2;
  core::Server& promoted = pick1 ? srv1 : srv2;
  const std::string& promoted_dir = pick1 ? f1dir.path : f2dir.path;

  // Quorum invariant: 1-of-2 acks means the better replica holds every
  // acked checkin, even though the leader died without flushing.
  EXPECT_GE(static_cast<long long>(winner.applied_seq()), phase1_acked)
      << "an acked checkin is missing from the best follower";

  EpochStore(promoted_dir).store(2);  // fence the old term durably
  store::DurableStore& pstore = winner.store();
  pstore.attach(promoted);
  pstore.set_group_commit(true);
  auto shipper2 = std::make_unique<LogShipper>(promoted, pstore, 2, shopts);
  engine::EngineConfig ecfg2;
  ecfg2.metrics = &reg;
  ecfg2.group_commit = [&] {
    if (!pstore.commit_group()) return false;
    shipper2->notify_committed();
    return shipper2->await_quorum(pstore.wal().last_seq());
  };
  auto engine2 =
      std::make_unique<engine::EpollCrowdServer>(promoted, auth, ecfg2);

  // Re-point the losing follower at the new leader; it catches up and
  // durably adopts epoch 2 from the first shipped frame.
  const std::string loser_dir = pick1 ? f2dir.path : f1dir.path;
  core::Server& loser_srv = pick1 ? srv2 : srv1;
  (pick1 ? f2 : f1).reset();  // release its store before reopening the dir
  FollowerOptions fo2;
  fo2.leader_port = shipper2->port();
  fo2.follower_id = 9;
  fo2.store.wal.metrics = &reg;
  fo2.metrics = &reg;
  fo2.reconnect_backoff_ms = 20;
  auto rejoined = std::make_unique<Follower>(loser_srv, loser_dir, fo2);
  rejoined->start();
  ASSERT_TRUE(wait_until([&] {
    return rejoined->applied_seq() == winner.applied_seq();
  }));

  // --- Phase 2: the promoted leader serves quorum-acked writes.
  const std::uint64_t version_before = promoted.version();
  std::atomic<long long> acked2{0};
  device_loop(engine2->port(), creds[0], 999, 20, acked2);
  EXPECT_EQ(acked2.load(), 20);
  EXPECT_GE(promoted.version(), version_before + 20);
  ASSERT_TRUE(wait_until(
      [&] { return rejoined->applied_seq() == promoted.version(); }));
  EXPECT_EQ(rejoined->epoch(), 2u);

  // --- The deposed leader rejoins at its stale epoch and is fenced the
  // moment an epoch-2 node speaks to it: its shipper can never again
  // release a quorum ack, so no split-brain.
  auto stale_shipper = std::make_unique<LogShipper>(leader, *lstore, 1, shopts);
  rejoined->shutdown();
  rejoined.reset();
  FollowerOptions fo3 = fo2;
  fo3.leader_port = stale_shipper->port();
  auto probe = std::make_unique<Follower>(loser_srv, loser_dir, fo3);
  EXPECT_EQ(probe->epoch(), 2u) << "adopted epoch must have been durable";
  probe->start();
  ASSERT_TRUE(wait_until([&] { return stale_shipper->fenced(); }));
  EXPECT_FALSE(stale_shipper->await_quorum(1));
  EXPECT_EQ(probe->applied_seq(), promoted.version())
      << "the stale leader must not have fed the follower anything";

  probe->shutdown();
  stale_shipper->shutdown();
  engine2->shutdown();
  shipper2->shutdown();
}
