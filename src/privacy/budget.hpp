// Per-device privacy configuration.
//
// The paper splits the per-sample budget across the three quantities a
// device releases (Appendix B, Remark 1):
//
//   eps = eps_g (gradient, Eq. 10) + eps_e (error count, Eq. 11)
//         + C * eps_y (per-class label counts, Eq. 12)
//
// `epsilon = +infinity` means "no noise" — the paper's eps^{-1} = 0
// setting — and every mechanism degrades to the identity in that case.
#pragma once

#include <cstddef>
#include <limits>

namespace crowdml::privacy {

constexpr double kNoPrivacy = std::numeric_limits<double>::infinity();

/// Convert the paper's eps^{-1} notation: 0 -> no privacy (infinite eps).
double epsilon_from_inverse(double eps_inverse);

/// Which noise mechanism sanitizes the gradient. Laplace gives pure
/// eps-DP (Eq. 10); Gaussian gives (eps, delta)-DP (footnote 1) with
/// noise scaled to the L2 sensitivity — usually far less total noise in
/// high dimension.
enum class NoiseMechanism { kLaplace, kGaussian };

struct PrivacyBudget {
  double eps_gradient = kNoPrivacy;  // eps_g in Eq. (10)
  double eps_error = kNoPrivacy;     // eps_e in Eq. (11)
  double eps_label = kNoPrivacy;     // eps_{y^k} in Eq. (12)
  NoiseMechanism mechanism = NoiseMechanism::kLaplace;
  double delta = 1e-6;  // only meaningful for kGaussian

  static PrivacyBudget none() { return {}; }

  /// (eps, delta) Gaussian-mechanism budget with the whole epsilon on the
  /// gradient and tiny counter budgets (counters stay discrete-Laplace).
  static PrivacyBudget gaussian(double eps_gradient, double delta,
                                double counter_fraction = 0.01);

  /// Budget with the whole epsilon on the gradient and a tiny share on the
  /// monitoring counters (Appendix B Remark 1: "eps_e and eps_yk can be set
  /// to be very small ... so that eps ~= eps_g").
  static PrivacyBudget gradient_dominated(double eps_gradient,
                                          double counter_fraction = 0.01);

  /// Total per-sample epsilon: eps_g + eps_e + C * eps_y (Remark 1).
  double per_sample_epsilon(std::size_t num_classes) const;

  bool is_private() const;
};

}  // namespace crowdml::privacy
