#!/bin/sh
# Check that every intra-repo markdown link resolves to an existing file.
#
# Usage: check_doc_links.sh [repo_root]
#
# Scans *.md at the root and under docs/ for [text](target) links, skips
# external (scheme://, mailto:) and pure-anchor (#...) targets, resolves
# the rest relative to the containing file, and fails listing every
# broken link. Run by ctest (docs_links) and the CI docs job.
set -u

root="${1:-.}"
cd "$root" || exit 2

status=0
checked=0

for md in *.md docs/*.md; do
  [ -f "$md" ] || continue
  case "$md" in
    SNIPPETS.md|PAPERS.md) continue ;;  # retrieval dumps, not navigable docs
  esac
  dir=$(dirname "$md")
  # One target per line: grab the (...) of every [...](...) occurrence.
  targets=$(grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null |
            sed 's/.*](\([^)]*\))/\1/')
  for target in $targets; do
    case "$target" in
      *://*|mailto:*|\#*) continue ;;  # external or same-file anchor
    esac
    path="${target%%#*}"               # strip #section anchors
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN: $md -> $target"
      status=1
    fi
  done
done

echo "checked $checked intra-repo links"
[ "$status" -eq 0 ] && echo "all links resolve"
exit "$status"
