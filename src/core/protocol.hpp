// Protocol boundary: framed request/response dispatch with authentication.
//
// ProtocolServer is the untrusted-network face of core::Server — it
// decodes frames (rejecting corrupt ones), verifies each device's
// HMAC-SHA256 tag against the AuthRegistry (Server Routines 1-2:
// "Authenticate device"), and only then lets the message reach the
// learning state. DeviceClient drives a core::Device through the same
// frames over any exchange function (in-process call, channel pump, or
// TCP connection).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>

#include "core/device.hpp"
#include "core/server.hpp"
#include "net/auth.hpp"
#include "net/messages.hpp"
#include "obs/trace.hpp"

namespace crowdml::core {

class ProtocolServer {
 public:
  /// `trace`, when non-null, receives one structured event per protocol
  /// step (checkout, checkin, update_applied with observed staleness,
  /// auth_failed, checkin_rejected, malformed_frame) — all derived from
  /// the sanitized protocol messages, never from sample data. Must
  /// outlive the server.
  ProtocolServer(Server& server, net::AuthRegistry& auth,
                 obs::TraceSink* trace = nullptr)
      : server_(server), auth_(auth), trace_(trace) {}

  /// Handle one request frame, produce one response frame. Never throws:
  /// malformed input yields an AckMessage{false, reason} frame.
  ///
  /// `device_class`, when non-null, receives the declared device class of
  /// an *authenticated* checkin (net::CheckinMessage::device_class) and is
  /// left untouched otherwise — the engine's pace steering reads it off
  /// the apply path without re-decoding the frame, and an unauthenticated
  /// frame can never buy itself a better admission class.
  net::Bytes handle(const net::Bytes& request_frame,
                    std::uint8_t* device_class = nullptr);

  long long auth_failures() const { return auth_failures_; }
  long long malformed_frames() const { return malformed_; }

 private:
  Server& server_;
  net::AuthRegistry& auth_;
  obs::TraceSink* trace_;
  std::atomic<long long> auth_failures_{0};
  std::atomic<long long> malformed_{0};
};

/// Device-side protocol driver.
class DeviceClient {
 public:
  /// Sends a request frame, returns the response frame (nullopt = network
  /// failure).
  using Exchange = std::function<std::optional<net::Bytes>(const net::Bytes&)>;

  DeviceClient(Device& device, Exchange exchange);

  /// Feed one sample (Device Routine 1); if the minibatch is full, run the
  /// full checkout -> compute -> checkin cycle synchronously. Returns the
  /// checkin result when a cycle ran and was delivered.
  std::optional<CheckinResult> offer_sample(models::Sample s);

  /// Explicit cycle (used on shutdown to flush a partial batch is NOT done
  /// — the paper never flushes partial minibatches). Returns nullopt if
  /// the device does not want a checkout or any step failed.
  std::optional<CheckinResult> run_cycle();

  long long cycles_completed() const { return cycles_; }
  long long cycles_failed() const { return failures_; }

 private:
  Device& device_;
  Exchange exchange_;
  long long cycles_ = 0;
  long long failures_ = 0;
};

}  // namespace crowdml::core
