// Device classes for pace steering (src/coord/; docs/SCALING.md).
//
// "Towards Federated Learning at Scale" steers different populations at
// different rates: an interactive `fast` fleet should not be starved by a
// million `flaky` background devices, and under overload the low-priority
// classes are the ones pushed back first. A DeviceClassTable is the
// server-side declaration of those populations:
//
//   --coord-classes fast:4,slow:2,flaky:1
//
// Each entry is name:weight. Weights set each class's share of the
// steered arrival rate; the *listed order* is the priority order (first =
// highest), used by PaceSteering to stretch low-priority intervals extra
// under overload. Devices declare their class id (1-based position in
// this list) on checkout/checkin frames; id 0 is the implicit "default"
// class every undeclared device belongs to — weight 1, lowest priority.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace crowdml::coord {

/// Wire ids are a u8; bound declared classes well below that so a table
/// always fits and per-class state stays cache-friendly.
inline constexpr std::size_t kMaxDeviceClasses = 32;

struct DeviceClassSpec {
  std::string name;
  double weight = 1.0;
};

class DeviceClassTable {
 public:
  /// Just the implicit default class (id 0).
  DeviceClassTable();

  /// Parse "name:weight,name:weight,...". Names are [A-Za-z0-9_-]+ and
  /// unique ("default" is reserved for id 0); weights are finite doubles
  /// > 0; at most kMaxDeviceClasses entries. On failure returns nullopt
  /// and, when `error` is non-null, a one-line reason.
  static std::optional<DeviceClassTable> parse(const std::string& spec,
                                               std::string* error);

  /// Declared classes + the default class. size() - 1 is the highest
  /// valid wire id.
  std::size_t size() const { return classes_.size(); }

  /// Unknown ids collapse to the default class rather than faulting — a
  /// device declaring a class this server never configured is steered,
  /// just at the default share.
  std::uint8_t clamp(std::uint8_t id) const {
    return id < classes_.size() ? id : 0;
  }

  const DeviceClassSpec& at(std::uint8_t id) const {
    return classes_[clamp(id)];
  }

  /// This class's fraction of the steered arrival rate (weights
  /// normalized over the whole table, default class included).
  double share(std::uint8_t id) const;

  /// Priority rank: 0 = highest (first listed). The default class ranks
  /// below every declared class.
  std::size_t rank(std::uint8_t id) const;

  /// "default:1" or "fast:4,slow:2,flaky:1,default:1" — for the server's
  /// effective-config line.
  std::string describe() const;

 private:
  std::vector<DeviceClassSpec> classes_;  ///< index 0 = default
  double total_weight_ = 1.0;
};

}  // namespace crowdml::coord
