// End-to-end behavior tests reproducing the paper's headline properties at
// small scale:
//   * the activity-recognition pipeline learns fast from few samples per
//     device (Fig. 3's point);
//   * the privacy/minibatch trade-off (Section IV-A / Fig. 5): crowd error
//     under a fixed budget improves with the minibatch size;
//   * Crowd-ML beats the decentralized approach with the same data
//     (Fig. 4's point).
#include <gtest/gtest.h>

#include "baselines/decentralized.hpp"
#include "core/crowd_simulation.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"
#include "sensing/feature_pipeline.hpp"

using namespace crowdml;

TEST(EndToEnd, ActivityRecognitionLearnsFromFewSamplesPerDevice) {
  // 7 devices (as deployed in Section V-B), streaming FFT features; the
  // crowd model's online time-averaged error drops well below chance
  // within 300 samples (~43 per device).
  constexpr std::size_t kDevices = 7;
  models::MulticlassLogisticRegression model(3, 64, 0.0);

  std::vector<std::shared_ptr<sensing::ActivityFeatureStream>> streams;
  rng::Engine root(2026);
  for (std::size_t d = 0; d < kDevices; ++d) {
    sensing::ActivityFeatureStream::Options opt;
    opt.mean_dwell_seconds = 8.0;  // fast label churn for the test
    streams.push_back(std::make_shared<sensing::ActivityFeatureStream>(
        root.split(d), opt));
  }
  core::SampleSource source = [streams](std::size_t d) {
    return std::optional<models::Sample>(streams[d]->next());
  };

  core::CrowdSimConfig cfg;
  cfg.num_devices = kDevices;
  cfg.minibatch_size = 1;
  cfg.max_total_samples = 300;
  cfg.track_online_error = true;
  cfg.eval_points = 5;
  cfg.learning_rate_c = 100.0;
  cfg.projection_radius = 500.0;
  cfg.seed = 3;

  core::CrowdSimulation sim(model, cfg);
  const auto res = sim.run(source, {});
  ASSERT_FALSE(res.online_error.empty());
  EXPECT_LT(res.online_error.final_value(), 0.25);  // chance is 0.67
}

TEST(EndToEnd, LargerMinibatchImprovesPrivateAccuracy) {
  rng::Engine eng(11);
  const data::Dataset ds = data::make_mnist_like(eng, 0.05);
  models::MulticlassLogisticRegression model(10, 50, 0.0);

  auto run_with_b = [&](std::size_t b) {
    core::CrowdSimConfig cfg;
    cfg.num_devices = 100;
    cfg.minibatch_size = b;
    cfg.budget = privacy::PrivacyBudget::gradient_dominated(10.0);
    cfg.max_total_samples = 15000;
    cfg.eval_points = 5;
    cfg.learning_rate_c = 50.0;
    cfg.projection_radius = 500.0;
    cfg.seed = 21;
    rng::Engine shard_eng(31);
    auto shards = data::shard_across_devices(ds.train, cfg.num_devices, shard_eng);
    core::CrowdSimulation sim(model, cfg);
    return sim.run(core::make_cycling_source(std::move(shards)), ds.test)
        .final_test_error;
  };

  const double err_b1 = run_with_b(1);
  const double err_b20 = run_with_b(20);
  // Eq. (13): gradient noise shrinks as 1/b — the gap is large.
  EXPECT_LT(err_b20 + 0.15, err_b1);
}

TEST(EndToEnd, CrowdBeatsDecentralizedOnSameData) {
  rng::Engine eng(13);
  const data::Dataset ds = data::make_mnist_like(eng, 0.05);
  models::MulticlassLogisticRegression model(10, 50, 0.0);

  core::CrowdSimConfig cfg;
  cfg.num_devices = 200;
  cfg.max_total_samples = 15000;
  cfg.eval_points = 5;
  cfg.learning_rate_c = 100.0;
  cfg.projection_radius = 500.0;
  cfg.seed = 5;
  rng::Engine shard_eng(7);
  auto shards = data::shard_across_devices(ds.train, cfg.num_devices, shard_eng);
  core::CrowdSimulation sim(model, cfg);
  const double crowd_err =
      sim.run(core::make_cycling_source(std::move(shards)), ds.test)
          .final_test_error;

  baselines::DecentralizedConfig dcfg;
  dcfg.num_devices = 200;  // ~15 samples per device
  dcfg.learning_rate_c = 100.0;
  dcfg.projection_radius = 500.0;
  dcfg.max_total_samples = 15000;
  dcfg.eval_points = 5;
  dcfg.seed = 5;
  const double dec_err =
      baselines::train_decentralized(model, ds.train, ds.test, dcfg)
          .final_test_error;

  EXPECT_LT(crowd_err + 0.1, dec_err);
}
