// Monitoring report — the text equivalent of the paper's web portal
// ("displays timely statistics about crowd-learning applications such as
// error rates and activity label distributions, which are differentially
// private", Section V-A).
//
// Everything in the report derives from the sanitized checkins the server
// already holds, so publishing it costs no additional privacy budget.
#pragma once

#include <string>

#include "core/server.hpp"

namespace crowdml::core {

struct MonitorOptions {
  /// Show at most this many per-device rows (largest contributors first).
  std::size_t max_device_rows = 10;
  /// Optional class names for the label-prior section (size must match
  /// num_classes when provided).
  std::vector<std::string> class_names;
};

/// Render the portal report for the current server state.
std::string portal_report(const Server& server, const MonitorOptions& options);
std::string portal_report(const Server& server);

}  // namespace crowdml::core
