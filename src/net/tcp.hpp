// Minimal framed TCP transport (POSIX sockets) — the real-network path
// standing in for the prototype's HTTPS plumbing. Devices connect, send a
// frame, read a frame; the server accepts connections on a listener
// thread. Used by examples/tcp_crowd and the net integration tests.
//
// Fault tolerance: every blocking operation honors an optional deadline
// (poll-based, so a peer dribbling one byte at a time cannot stall a
// reader past its budget), connect is non-blocking with its own timeout,
// and failures carry a coarse taxonomy (NetError) so callers can tell a
// retryable timeout from a fatal refusal.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "net/messages.hpp"

namespace crowdml::net {

/// Coarse failure taxonomy for socket operations. Callers use it to pick
/// between retrying (kTimeout, kClosed), backing off before reconnecting
/// (kRefused), and giving up (kIoError).
enum class NetError : std::uint8_t {
  kNone = 0,   ///< no failure recorded
  kTimeout,    ///< deadline expired before the operation completed
  kClosed,     ///< orderly EOF / peer closed the connection
  kRefused,    ///< connection refused (no listener / server at capacity)
  kIoError,    ///< anything else: resolution failure, reset, protocol abuse
};

const char* net_error_name(NetError e);

/// A connected stream socket. Move-only; closes on destruction.
class TcpConnection {
 public:
  /// Sentinel deadline: block indefinitely.
  static constexpr int kNoDeadline = -1;

  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  ~TcpConnection();

  /// Connect to host:port. `host` may be a dotted quad or a hostname
  /// (resolved via getaddrinfo). The handshake is non-blocking and bounded
  /// by `timeout_ms` (kNoDeadline = OS default). On failure the reason is
  /// written to `err` when non-null.
  static std::optional<TcpConnection> connect(const std::string& host,
                                              std::uint16_t port,
                                              int timeout_ms = kNoDeadline,
                                              NetError* err = nullptr);

  bool valid() const { return fd_ >= 0; }

  /// Per-operation deadline for send_frame/recv_frame, in milliseconds.
  /// kNoDeadline (the default) blocks indefinitely. The budget covers the
  /// whole frame, not each syscall, so slow-loris peers are bounded too.
  void set_deadline_ms(int ms) { deadline_ms_ = ms; }
  int deadline_ms() const { return deadline_ms_; }

  /// Why the most recent send_frame/recv_frame/read_some failed. Atomic:
  /// a connection relayed by two pump threads (one direction each) records
  /// errors from both without racing.
  NetError last_error() const { return last_error_.load(); }

  /// Send a complete encoded frame (from encode_frame). False on error.
  bool send_frame(const Bytes& frame);

  /// Receive one complete frame's raw bytes (header-driven). nullopt on
  /// EOF, error, deadline expiry, or a header whose advertised payload
  /// length exceeds kMaxFieldLength (never over-allocates); the caller
  /// runs decode_frame for validation.
  std::optional<Bytes> recv_frame();

  /// Raw chunk I/O for byte-level relays (the fault proxy). read_some
  /// returns the number of bytes read, 0 on EOF, -1 on error/timeout;
  /// write_some pushes the whole buffer or fails.
  long read_some(std::uint8_t* data, std::size_t cap);
  bool write_some(const std::uint8_t* data, std::size_t len);

  void close();

  /// Give up ownership of the socket: returns the fd (or -1) and leaves
  /// the connection invalid without closing anything. Used by the epoll
  /// engine to adopt accepted sockets into its nonblocking event loops.
  int release_fd();

  /// Shut down both directions without closing the fd — safe to call from
  /// another thread to unblock a recv_frame in progress.
  void shutdown_both();

 private:
  /// Poll fd_ for `events` within the per-op deadline anchored at
  /// `deadline_left_ms` (kNoDeadline blocks). Returns false on timeout.
  bool wait_ready(short events, int deadline_left_ms);

  bool write_all(const std::uint8_t* data, std::size_t len);
  bool read_all(std::uint8_t* data, std::size_t len);

  int fd_ = -1;
  int deadline_ms_ = kNoDeadline;
  std::atomic<NetError> last_error_{NetError::kNone};
};

/// A listening socket. Move-only.
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// Bind on 127.0.0.1:`port` (0 = ephemeral, see port()).
  static std::optional<TcpListener> bind(std::uint16_t port);

  /// Bind on `address`:`port`. `address` is a dotted quad or a hostname
  /// ("0.0.0.0" for all interfaces).
  static std::optional<TcpListener> bind(const std::string& address,
                                         std::uint16_t port);

  bool valid() const { return fd_.load() >= 0; }
  std::uint16_t port() const { return port_; }

  /// Block until a connection arrives. nullopt once closed.
  std::optional<TcpConnection> accept();

  /// Safe to call from another thread to unblock a pending accept().
  void close();

 private:
  // Atomic: close() races with the accept loop by design (shutdown path).
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace crowdml::net
