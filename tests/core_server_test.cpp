// Tests for Algorithm 2 (Server Routines 1-2): updates, validation,
// statistics (Eq. 14), stopping criteria, and thread safety.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/server.hpp"
#include "opt/schedule.hpp"

using namespace crowdml;
using core::Server;
using core::ServerConfig;

namespace {

std::unique_ptr<opt::Updater> sgd(double c = 1.0, double radius = 100.0) {
  return std::make_unique<opt::SgdUpdater>(
      std::make_unique<opt::ConstantSchedule>(c), radius);
}

ServerConfig basic_config(std::size_t dim = 3, std::size_t classes = 2) {
  ServerConfig c;
  c.param_dim = dim;
  c.num_classes = classes;
  return c;
}

net::CheckinMessage checkin(std::uint64_t device, linalg::Vector g,
                            std::int64_t ns = 1, std::int64_t ne = 0,
                            std::vector<std::int64_t> ny = {1, 0}) {
  net::CheckinMessage m;
  m.device_id = device;
  m.g_hat = std::move(g);
  m.ns = ns;
  m.ne_hat = ne;
  m.ny_hat = std::move(ny);
  return m;
}

}  // namespace

TEST(Server, ZeroInitByDefault) {
  Server s(basic_config(), sgd(), rng::Engine(1));
  const linalg::Vector w = s.parameters();
  for (double v : w) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Server, RandomInitWithinScale) {
  ServerConfig cfg = basic_config(100);
  cfg.init_scale = 0.5;
  Server s(cfg, sgd(), rng::Engine(2));
  const linalg::Vector w = s.parameters();
  double max_abs = 0.0;
  for (double v : w) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_GT(max_abs, 0.0);
  EXPECT_LE(max_abs, 0.5);
}

TEST(Server, CheckoutReturnsCurrentParamsAndVersion) {
  Server s(basic_config(), sgd(), rng::Engine(3));
  const auto p = s.handle_checkout(1);
  EXPECT_TRUE(p.accepted);
  EXPECT_EQ(p.version, 0u);
  EXPECT_EQ(p.w.size(), 3u);
}

TEST(Server, CheckinAppliesSgdUpdate) {
  Server s(basic_config(), sgd(0.5), rng::Engine(4));
  const auto ack = s.handle_checkin(checkin(1, {2.0, 0.0, -2.0}));
  EXPECT_TRUE(ack.ok);
  const linalg::Vector w = s.parameters();
  EXPECT_DOUBLE_EQ(w[0], -1.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
  EXPECT_EQ(s.version(), 1u);
}

TEST(Server, RejectsDimensionMismatch) {
  Server s(basic_config(), sgd(), rng::Engine(5));
  const auto ack = s.handle_checkin(checkin(1, {1.0, 2.0}));
  EXPECT_FALSE(ack.ok);
  EXPECT_EQ(s.version(), 0u);
  EXPECT_EQ(s.rejected_checkins(), 1);
}

TEST(Server, RejectsNonFiniteGradient) {
  Server s(basic_config(), sgd(), rng::Engine(6));
  EXPECT_FALSE(s.handle_checkin(checkin(1, {1.0, std::nan(""), 0.0})).ok);
  EXPECT_FALSE(s.handle_checkin(checkin(1, {1.0, INFINITY, 0.0})).ok);
  EXPECT_EQ(s.rejected_checkins(), 2);
}

TEST(Server, RejectsNonPositiveSampleCount) {
  Server s(basic_config(), sgd(), rng::Engine(7));
  EXPECT_FALSE(s.handle_checkin(checkin(1, {0.0, 0.0, 0.0}, 0)).ok);
  EXPECT_FALSE(s.handle_checkin(checkin(1, {0.0, 0.0, 0.0}, -5)).ok);
}

TEST(Server, RejectsWrongLabelCountDimension) {
  Server s(basic_config(), sgd(), rng::Engine(8));
  EXPECT_FALSE(
      s.handle_checkin(checkin(1, {0.0, 0.0, 0.0}, 1, 0, {1, 0, 0})).ok);
}

TEST(Server, AccumulatesPerDeviceStats) {
  Server s(basic_config(), sgd(), rng::Engine(9));
  s.handle_checkin(checkin(7, {0.0, 0.0, 0.0}, 10, 2, {6, 4}));
  s.handle_checkin(checkin(7, {0.0, 0.0, 0.0}, 10, 1, {5, 5}));
  s.handle_checkin(checkin(8, {0.0, 0.0, 0.0}, 5, 0, {0, 5}));
  const auto st7 = s.device_stats(7);
  EXPECT_EQ(st7.samples, 20);
  EXPECT_EQ(st7.errors_hat, 3);
  EXPECT_EQ(st7.checkins, 2);
  EXPECT_EQ(st7.label_counts_hat[0], 11);
  EXPECT_EQ(s.devices_seen(), 2u);
  EXPECT_EQ(s.total_samples(), 25);
}

TEST(Server, UnknownDeviceStatsEmpty) {
  Server s(basic_config(), sgd(), rng::Engine(10));
  EXPECT_EQ(s.device_stats(99).samples, 0);
}

TEST(Server, EstimatedErrorEq14) {
  Server s(basic_config(), sgd(), rng::Engine(11));
  s.handle_checkin(checkin(1, {0.0, 0.0, 0.0}, 10, 3, {5, 5}));
  s.handle_checkin(checkin(2, {0.0, 0.0, 0.0}, 10, 1, {5, 5}));
  EXPECT_NEAR(s.estimated_error(), 0.2, 1e-12);
}

TEST(Server, EstimatedErrorClampedToUnitInterval) {
  Server s(basic_config(), sgd(), rng::Engine(12));
  // Noisy counts can exceed ns or go negative; the estimate must stay sane.
  s.handle_checkin(checkin(1, {0.0, 0.0, 0.0}, 2, 50, {1, 1}));
  EXPECT_DOUBLE_EQ(s.estimated_error(), 1.0);
  Server s2(basic_config(), sgd(), rng::Engine(13));
  s2.handle_checkin(checkin(1, {0.0, 0.0, 0.0}, 2, -50, {1, 1}));
  EXPECT_DOUBLE_EQ(s2.estimated_error(), 0.0);
}

TEST(Server, EstimatedPriorNormalizedAndNonNegative) {
  Server s(basic_config(), sgd(), rng::Engine(14));
  s.handle_checkin(checkin(1, {0.0, 0.0, 0.0}, 10, 0, {8, -2}));
  const linalg::Vector prior = s.estimated_prior();
  EXPECT_NEAR(prior[0], 1.0, 1e-12);  // negative count clamped to 0
  EXPECT_NEAR(prior[1], 0.0, 1e-12);
  EXPECT_NEAR(linalg::sum(prior), 1.0, 1e-12);
}

TEST(Server, EmptyPriorIsZeroVector) {
  Server s(basic_config(), sgd(), rng::Engine(15));
  const linalg::Vector prior = s.estimated_prior();
  EXPECT_DOUBLE_EQ(linalg::sum(prior), 0.0);
}

TEST(Server, StopsAtMaxIterations) {
  ServerConfig cfg = basic_config();
  cfg.max_iterations = 2;
  Server s(cfg, sgd(), rng::Engine(16));
  EXPECT_TRUE(s.handle_checkin(checkin(1, {0.0, 0.0, 0.0})).ok);
  EXPECT_FALSE(s.stopped());
  EXPECT_TRUE(s.handle_checkin(checkin(1, {0.0, 0.0, 0.0})).ok);
  EXPECT_TRUE(s.stopped());
  EXPECT_FALSE(s.handle_checkin(checkin(1, {0.0, 0.0, 0.0})).ok);
  EXPECT_FALSE(s.handle_checkout(1).accepted);
  EXPECT_EQ(s.version(), 2u);
}

TEST(Server, StopsWhenEstimatedErrorBelowRho) {
  ServerConfig cfg = basic_config();
  cfg.target_error = 0.1;
  cfg.min_samples_for_stopping = 50;
  Server s(cfg, sgd(), rng::Engine(17));
  // Below min samples: no stop even with zero error.
  s.handle_checkin(checkin(1, {0.0, 0.0, 0.0}, 30, 0, {15, 15}));
  EXPECT_FALSE(s.stopped());
  // Crossing the sample threshold with low error: stop.
  s.handle_checkin(checkin(1, {0.0, 0.0, 0.0}, 30, 1, {15, 15}));
  EXPECT_TRUE(s.stopped());
}

TEST(Server, HighErrorDoesNotTriggerRhoStop) {
  ServerConfig cfg = basic_config();
  cfg.target_error = 0.01;
  cfg.min_samples_for_stopping = 10;
  Server s(cfg, sgd(), rng::Engine(18));
  s.handle_checkin(checkin(1, {0.0, 0.0, 0.0}, 100, 50, {50, 50}));
  EXPECT_FALSE(s.stopped());
}

TEST(Server, ProjectionBoundsParameters) {
  Server s(basic_config(1, 2), sgd(10.0, 5.0), rng::Engine(19));
  net::CheckinMessage m = checkin(1, {100.0});
  m.ny_hat = {1, 0};
  s.handle_checkin(m);
  EXPECT_LE(std::abs(s.parameters()[0]), 5.0 + 1e-12);
}

TEST(Server, ConcurrentCheckinsAllApplied) {
  ServerConfig cfg = basic_config(4, 2);
  Server s(cfg, sgd(0.001), rng::Engine(20));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&s, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto m = checkin(static_cast<std::uint64_t>(t + 1),
                         {0.1, -0.1, 0.0, 0.0}, 1, 0, {1, 0});
        s.handle_checkin(m);
        s.handle_checkout(static_cast<std::uint64_t>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(s.version(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.total_samples(), kThreads * kPerThread);
  EXPECT_EQ(s.devices_seen(), static_cast<std::size_t>(kThreads));
}
