// Ablation: Remark 3 — server-side update rules are pluggable without
// touching devices or privacy. Compares eta = c/sqrt(t) (Eq. 5), constant
// eta, AdaGrad [37] and momentum under clean and private gradients.
#include "bench/common.hpp"

using namespace bench;

namespace {

struct Variant {
  const char* name;
  core::ScheduleKind schedule;
  core::UpdaterKind updater;
  double c_clean;
  double c_private;
};

}  // namespace

int main() {
  const Options opt = options();
  header("Ablation: update rules (Remark 3)",
         "final test error per updater, clean vs eps=10 gradients", opt);

  const data::Dataset ds = [&] {
    rng::Engine eng(42);
    return data::make_mnist_like(eng, opt.scale);
  }();
  models::MulticlassLogisticRegression model(ds.num_classes, ds.feature_dim, 0.0);
  const auto max_samples = static_cast<long long>(3 * ds.train.size());

  const std::vector<Variant> variants{
      {"sgd_sqrt", core::ScheduleKind::kSqrtDecay, core::UpdaterKind::kSgd,
       kCrowdLearningRate, kPrivateLearningRate},
      {"sgd_const", core::ScheduleKind::kConstant, core::UpdaterKind::kSgd,
       10.0, 2.0},
      {"adagrad", core::ScheduleKind::kSqrtDecay, core::UpdaterKind::kAdaGrad,
       2.0, 2.0},
      {"momentum", core::ScheduleKind::kSqrtDecay,
       core::UpdaterKind::kMomentum, 20.0, 10.0},
      {"dual_avg", core::ScheduleKind::kSqrtDecay,
       core::UpdaterKind::kDualAveraging, 500.0, 500.0},
      {"adam", core::ScheduleKind::kSqrtDecay, core::UpdaterKind::kAdam,
       0.05, 0.02},
  };

  std::printf("%12s %14s %14s\n", "updater", "clean", "eps=10,b=20");
  double best_clean = 1.0, sqrt_clean = 1.0;
  for (const auto& v : variants) {
    core::CrowdSimConfig clean = crowd_base(max_samples, 1);
    clean.schedule = v.schedule;
    clean.updater = v.updater;
    clean.learning_rate_c = v.c_clean;
    const double clean_err =
        run_crowd_trials(model, ds, clean, opt.trials, 60).final_value();

    core::CrowdSimConfig priv = clean;
    priv.minibatch_size = 20;
    priv.budget = privacy::PrivacyBudget::gradient_dominated(10.0);
    priv.learning_rate_c = v.c_private;
    const double priv_err =
        run_crowd_trials(model, ds, priv, opt.trials, 61).final_value();

    std::printf("%12s %14.3f %14.3f\n", v.name, clean_err, priv_err);
    best_clean = std::min(best_clean, clean_err);
    if (std::string(v.name) == "sgd_sqrt") sqrt_clean = clean_err;
  }

  check(sqrt_clean < best_clean + 0.05,
        "the paper's c/sqrt(t) default is competitive with the alternatives");
  return 0;
}
