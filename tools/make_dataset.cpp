// crowdml-make-dataset — generate synthetic datasets as CSV for the CLI
// tools and external experiments.
//
//   crowdml-make-dataset --kind mnist|cifar|thermostat|activity \
//       [--scale 0.1] [--out-train train.csv] [--out-test test.csv]
//       [--seed 42] [--shards N --shard-prefix dev_]  # per-device files
#include <cstdio>

#include "data/io.hpp"
#include "data/mixture.hpp"
#include "data/thermostat.hpp"
#include "sensing/feature_pipeline.hpp"
#include "tools/flags.hpp"

using namespace crowdml;

int main(int argc, char** argv) {
  try {
    tools::Flags flags(argc, argv);
    const std::string kind = flags.get("kind", "mnist");
    const double scale = flags.get_double("scale", 0.1);
    rng::Engine eng(flags.get_int("seed", 42));

    data::Dataset ds;
    if (kind == "mnist") {
      ds = data::make_mnist_like(eng, scale);
    } else if (kind == "cifar") {
      ds = data::make_cifar_like(eng, scale);
    } else if (kind == "thermostat") {
      data::ThermostatSpec spec;
      spec.train_size = static_cast<std::size_t>(20000 * scale);
      spec.test_size = static_cast<std::size_t>(4000 * scale);
      ds = data::generate_thermostat(spec, eng);
    } else if (kind == "activity") {
      ds.num_classes = 3;
      ds.feature_dim = 64;
      ds.train = sensing::generate_activity_samples(
          eng, static_cast<std::size_t>(3000 * scale));
      ds.test = sensing::generate_activity_samples(
          eng, static_cast<std::size_t>(600 * scale));
    } else {
      throw std::runtime_error("unknown --kind: " + kind);
    }

    const std::string train_path = flags.get("out-train", "train.csv");
    const std::string test_path = flags.get("out-test", "test.csv");
    data::write_csv_file(train_path, ds.train);
    data::write_csv_file(test_path, ds.test);
    std::printf("%s: wrote %zu train -> %s, %zu test -> %s (dim=%zu)\n",
                kind.c_str(), ds.train.size(), train_path.c_str(),
                ds.test.size(), test_path.c_str(), ds.feature_dim);

    const auto shards_n = flags.get_int("shards", 0);
    if (shards_n > 0) {
      rng::Engine shard_eng(flags.get_int("seed", 42) + 1);
      const auto shards = data::shard_across_devices(
          ds.train, static_cast<std::size_t>(shards_n), shard_eng);
      const std::string prefix = flags.get("shard-prefix", "dev_");
      for (std::size_t i = 0; i < shards.size(); ++i) {
        const std::string path = prefix + std::to_string(i) + ".csv";
        data::write_csv_file(path, shards[i]);
      }
      std::printf("sharded train into %lld files: %s0.csv ...\n", shards_n,
                  prefix.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crowdml-make-dataset: %s\n", e.what());
    return 1;
  }
}
