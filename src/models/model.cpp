#include "models/model.hpp"

#include <cassert>

namespace crowdml::models {

void Model::add_regularization_gradient(const linalg::Vector& w,
                                        linalg::Vector& g) const {
  assert(w.size() == param_dim() && g.size() == param_dim());
  if (lambda_ != 0.0) linalg::axpy(lambda_, w, g);
}

linalg::Vector Model::averaged_gradient(const linalg::Vector& w,
                                        std::span<const Sample> samples) const {
  assert(!samples.empty());
  linalg::Vector g(param_dim(), 0.0);
  for (const Sample& s : samples) add_loss_gradient(w, s, g);
  linalg::scal(1.0 / static_cast<double>(samples.size()), g);
  add_regularization_gradient(w, g);
  return g;
}

double Model::regularized_risk(const linalg::Vector& w,
                               std::span<const Sample> samples) const {
  double acc = 0.0;
  for (const Sample& s : samples) acc += loss(w, s);
  if (!samples.empty()) acc /= static_cast<double>(samples.size());
  return acc + 0.5 * lambda_ * linalg::norm2_squared(w);
}

double Model::error_rate(const linalg::Vector& w,
                         std::span<const Sample> samples) const {
  assert(is_classifier());
  if (samples.empty()) return 0.0;
  std::size_t errors = 0;
  for (const Sample& s : samples)
    if (predict_class(w, s.x) != s.label()) ++errors;
  return static_cast<double>(errors) / static_cast<double>(samples.size());
}

}  // namespace crowdml::models
