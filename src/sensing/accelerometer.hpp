// Synthetic tri-axial accelerometer substrate.
//
// Stand-in for the paper's real phones (DESIGN.md "Substitutions"): each
// activity class produces a distinct spectral signature in the
// acceleration-magnitude signal sampled at 20 Hz —
//   Still:     gravity plus small sensor noise (flat, near-DC spectrum);
//   OnFoot:    ~2 Hz step cadence with a harmonic (walking gait);
//   InVehicle: low-frequency road sway plus a mid-band engine component.
// The downstream 64-bin FFT features (Section V-B pipeline) are therefore
// linearly separable to roughly the same degree as real phone data.
#pragma once

#include "rng/engine.hpp"

namespace crowdml::sensing {

enum class Activity : int { kStill = 0, kOnFoot = 1, kInVehicle = 2 };
inline constexpr std::size_t kNumActivities = 3;

const char* activity_name(Activity a);

struct TriaxialSample {
  double ax = 0.0;
  double ay = 0.0;
  double az = 0.0;

  /// |a| = sqrt(ax^2 + ay^2 + az^2) — the paper's magnitude signal.
  double magnitude() const;
};

/// Streaming generator of tri-axial samples for one device.
class AccelerometerSimulator {
 public:
  AccelerometerSimulator(rng::Engine eng, double sample_rate_hz = 20.0);

  /// Switch activity; re-randomizes the motion phases (a new gait/ride).
  void set_activity(Activity a);
  Activity activity() const { return activity_; }

  /// Produce the next sample and advance the clock by 1/sample_rate.
  TriaxialSample next();

  double sample_rate_hz() const { return fs_; }
  double time_seconds() const { return t_; }

 private:
  rng::Engine eng_;
  double fs_;
  double t_ = 0.0;
  Activity activity_ = Activity::kStill;
  double phase_a_ = 0.0;  // primary oscillation phase offset
  double phase_b_ = 0.0;  // secondary (harmonic / engine) phase offset
};

}  // namespace crowdml::sensing
