// Learning-curve recording and multi-trial aggregation.
//
// Every figure in the paper is "error vs iteration (= number of samples
// used)", averaged over 10 randomized trials (Section V-C). LearningCurve
// records one trial; CurveAggregator averages trials recorded on a common
// iteration grid; write_curves_csv emits the series the paper plots.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace crowdml::metrics {

struct CurvePoint {
  double x = 0.0;  // iteration (samples used)
  double y = 0.0;  // error
};

class LearningCurve {
 public:
  void record(double x, double y) { points_.push_back({x, y}); }
  const std::vector<CurvePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /// y of the last point (the converged/asymptotic error).
  double final_value() const;

  /// Mean y over the last `k` points — a steadier convergence estimate.
  double tail_mean(std::size_t k) const;

 private:
  std::vector<CurvePoint> points_;
};

/// Averages curves that share one x-grid (same length, same x values).
class CurveAggregator {
 public:
  void add_trial(const LearningCurve& curve);
  std::size_t trials() const { return trials_; }

  LearningCurve mean() const;
  LearningCurve stddev() const;

 private:
  std::vector<double> xs_;
  std::vector<double> sum_;
  std::vector<double> sum_sq_;
  std::size_t trials_ = 0;
};

/// Online time-averaged misclassification error — the Fig. 3 metric
/// Err(t) = (1/t) sum_i I[y_i != y^pred_i].
class TimeAveragedError {
 public:
  void observe(bool misclassified);
  double value() const;
  long long count() const { return count_; }
  const LearningCurve& curve() const { return curve_; }

 private:
  long long count_ = 0;
  long long errors_ = 0;
  LearningCurve curve_;
};

/// CSV with columns: x, <name1>, <name2>, ... All curves must share a grid.
void write_curves_csv(std::ostream& out,
                      const std::vector<std::string>& names,
                      const std::vector<LearningCurve>& curves);

/// Render curves as an ASCII table to stdout-style streams (the bench
/// harness output that mirrors the paper's figures).
void print_curve_table(std::ostream& out, const std::string& x_label,
                       const std::vector<std::string>& names,
                       const std::vector<LearningCurve>& curves,
                       std::size_t max_rows = 24);

}  // namespace crowdml::metrics
