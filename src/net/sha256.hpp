// SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104).
//
// The paper's prototype authenticates devices over HTTPS; our transport
// substitutes HMAC-SHA256 message tags keyed by per-device secrets
// (DESIGN.md "Substitutions"). This is a from-scratch implementation —
// validated against the NIST test vectors in tests/net/sha256_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace crowdml::net {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const std::vector<std::uint8_t>& data);
  void update(const std::string& data);
  /// Finalize and return the digest. The object must not be reused after.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
};

Digest sha256(const std::uint8_t* data, std::size_t len);
Digest sha256(const std::vector<std::uint8_t>& data);
Digest sha256(const std::string& data);

/// HMAC-SHA256 over `data` with the given key.
Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                   const std::uint8_t* data, std::size_t len);
Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                   const std::vector<std::uint8_t>& data);

/// Constant-time digest comparison (no early exit on mismatch).
bool digest_equal(const Digest& a, const Digest& b);

std::string to_hex(const Digest& d);

}  // namespace crowdml::net
