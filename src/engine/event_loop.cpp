#include "engine/event_loop.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace crowdml::engine {

namespace {

obs::MetricsRegistry& registry_of(obs::MetricsRegistry* metrics) {
  return metrics ? *metrics : obs::default_registry();
}

/// epoll_data.u64 id reserved for the eventfd wakeup.
constexpr std::uint64_t kWakeupId = 0;

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

EventLoop::EventLoop(Options options, FrameHandler on_frame)
    : opts_(options),
      on_frame_(std::move(on_frame)),
      frames_in_(registry_of(opts_.metrics).counter(
          "crowdml_engine_frames_in_total",
          "Complete frames received by the epoll event loops",
          obs::Provenance::kTransportEvent)),
      protocol_errors_(registry_of(opts_.metrics).counter(
          "crowdml_engine_protocol_errors_total",
          "Connections closed for framing abuse (oversized payload length)",
          obs::Provenance::kTransportEvent)) {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw std::runtime_error("EventLoop: epoll_create1 failed");
  wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeup_fd_ < 0) {
    ::close(epfd_);
    throw std::runtime_error("EventLoop: eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeupId;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    ::close(wakeup_fd_);
    ::close(epfd_);
    throw std::runtime_error("EventLoop: epoll_ctl(wakeup) failed");
  }
  thread_ = std::thread([this] { run(); });
}

EventLoop::~EventLoop() { stop(); }

bool EventLoop::on_loop_thread() const {
  return std::this_thread::get_id() == thread_.get_id();
}

void EventLoop::post(std::function<void()> fn) {
  if (on_loop_thread()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    if (stopping_.load()) return;  // stop() runs the leftovers
    tasks_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wakeup_fd_, &one, sizeof(one));
}

void EventLoop::adopt(int fd) {
  if (fd < 0) return;
  post([this, fd] {
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    do_adopt(fd);
  });
}

void EventLoop::do_adopt(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->id = next_id_++;
  conn->last_activity = std::chrono::steady_clock::now();

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  conns_.emplace(conn->id, std::move(conn));
  conn_count_.store(conns_.size());
}

void EventLoop::send(std::uint64_t conn_id, net::Bytes frame) {
  post([this, conn_id, frame = std::move(frame)]() mutable {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;  // connection already gone
    Conn& conn = *it->second;
    conn.out.push_back(std::move(frame));
    if (!flush_writes(conn)) close_conn(conn_id);
  });
}

void EventLoop::send_many(std::vector<std::pair<std::uint64_t, net::Bytes>> items) {
  post([this, items = std::move(items)]() mutable {
    for (auto& [conn_id, frame] : items) {
      auto it = conns_.find(conn_id);
      if (it == conns_.end()) continue;  // connection already gone
      Conn& conn = *it->second;
      conn.out.push_back(std::move(frame));
      if (!flush_writes(conn)) close_conn(conn_id);
    }
  });
}

void EventLoop::set_want_write(Conn& conn, bool want) {
  if (conn.want_write == want) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epfd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

bool EventLoop::flush_writes(Conn& conn) {
  while (!conn.out.empty()) {
    const net::Bytes& front = conn.out.front();
    while (conn.out_offset < front.size()) {
      const auto n =
          ::send(conn.fd, front.data() + conn.out_offset,
                 front.size() - conn.out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          set_want_write(conn, true);
          return true;  // kernel buffer full; resume on EPOLLOUT
        }
        if (errno == EINTR) continue;
        return false;  // reset/broken pipe: close
      }
      conn.out_offset += static_cast<std::size_t>(n);
    }
    conn.out.pop_front();
    conn.out_offset = 0;
  }
  set_want_write(conn, false);
  return true;
}

bool EventLoop::handle_readable(Conn& conn) {
  std::uint8_t buf[16384];
  bool got_bytes = false;
  for (;;) {
    const auto n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.insert(conn.in.end(), buf, buf + n);
      got_bytes = true;
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  if (got_bytes) conn.last_activity = std::chrono::steady_clock::now();

  // Deliver every complete frame, mirroring recv_frame's header-driven
  // read: payload length from the header, bounded by kMaxFieldLength
  // (an absurd length is protocol abuse, not a frame to buffer for).
  std::size_t off = 0;
  while (conn.in.size() - off >= net::kFrameHeaderSize) {
    const std::uint32_t payload_len =
        read_le32(conn.in.data() + off + net::kFrameLenOffset);
    if (payload_len > net::kMaxFieldLength) {
      ++protocol_errors_;
      if (opts_.trace)
        opts_.trace->event("protocol_error",
                           {{"reason", "oversized payload length"}});
      return false;
    }
    const std::size_t total =
        net::kFrameHeaderSize + payload_len + net::kFrameTrailerSize;
    if (conn.in.size() - off < total) break;
    net::Bytes frame(conn.in.begin() + static_cast<std::ptrdiff_t>(off),
                     conn.in.begin() + static_cast<std::ptrdiff_t>(off + total));
    off += total;
    ++frames_in_;
    on_frame_(conn.id, std::move(frame));
  }
  if (off > 0)
    conn.in.erase(conn.in.begin(), conn.in.begin() + static_cast<std::ptrdiff_t>(off));
  return true;
}

void EventLoop::close_conn(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::close(it->second->fd);
  conns_.erase(it);
  conn_count_.store(conns_.size());
}

void EventLoop::sweep_idle() {
  if (opts_.idle_timeout_ms <= 0) return;
  const auto cutoff = std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(opts_.idle_timeout_ms);
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : conns_)
    if (conn->last_activity < cutoff) idle.push_back(id);
  for (const auto id : idle) {
    if (opts_.idle_closed) ++*opts_.idle_closed;
    if (opts_.trace) opts_.trace->event("idle_close");
    close_conn(id);
  }
}

void EventLoop::run_tasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  for (auto& t : tasks) t();
}

void EventLoop::run() {
  // Wait granularity: short enough that the idle sweep stays timely,
  // long enough not to spin. Tasks interrupt it via the eventfd.
  int wait_ms = 200;
  if (opts_.idle_timeout_ms > 0)
    wait_ms = std::clamp(opts_.idle_timeout_ms / 4, 10, 200);

  epoll_event events[64];
  while (!stopping_.load()) {
    run_tasks();
    const int n = ::epoll_wait(epfd_, events, 64, wait_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kWakeupId) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const auto r =
            ::read(wakeup_fd_, &drain, sizeof(drain));
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this round
      Conn& conn = *it->second;
      bool alive = true;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) alive = false;
      if (alive && (events[i].events & EPOLLIN)) alive = handle_readable(conn);
      if (alive && (events[i].events & EPOLLOUT)) alive = flush_writes(conn);
      if (!alive) close_conn(id);
    }
    sweep_idle();
  }
  for (auto& [id, conn] : conns_) ::close(conn->fd);
  conns_.clear();
  conn_count_.store(0);
}

void EventLoop::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wakeup_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  // Leftover tasks: adopts close their fd (stopping_ is set); sends find
  // no connections and drop.
  run_tasks();
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epfd_ >= 0) ::close(epfd_);
  wakeup_fd_ = epfd_ = -1;
}

}  // namespace crowdml::engine
