// crowdml-device — a standalone Crowd-ML device client over TCP.
//
// Streams labeled samples from a CSV file (label,feature1,feature2,...)
// through Algorithm 1 against a running crowdml-server:
//
//   crowdml-device --host 127.0.0.1 --port 9000 \
//       --data samples.csv --key "17,ab34..."   # one row of keys-out
//       [--minibatch 10] [--epsilon 10] [--passes 1] [--classes 10]
//       [--io-deadline-ms 5000] [--connect-timeout-ms 2000]
//       [--max-attempts 8] [--backoff-max-ms 2000]
//       [--secagg-cohort N --secagg-key-file fleet.key]  # cohort mode:
//                                  # pairwise-masked checkins with
//                                  # cohort-scaled noise; falls back to
//                                  # classic LDP when a round aborts
//                                  # (docs/PRIVACY.md)
//       [--secagg-min-survivors N] # must match the server's value
//       [--device-class N]         # declared device class for cohort
//                                  # formation (0 = default; per-class
//                                  # cohorts, docs/PRIVACY.md)
//       [--shard-map h1:p1,h2:p2]  # sharded cluster: hash-route to this
//                                  # device's home shard instead of
//                                  # --host/--port (docs/SHARDING.md);
//                                  # a stale map still converges via the
//                                  # server's "wrong shard" redirects
//
// Features are L1-normalized on ingest (the privacy precondition).
//
// The connection rides core::ReconnectingDeviceSession: a dropped or
// restarting server is retried with capped exponential backoff (checkouts
// replayed freely, checkins abandoned — never replayed), so the device
// survives a server crash-and-recover window without operator help.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/tcp_runtime.hpp"
#include "data/dataset.hpp"
#include "data/io.hpp"
#include "models/logistic_regression.hpp"
#include "models/ridge_regression.hpp"
#include "shard/shard_map.hpp"
#include "tools/flags.hpp"

using namespace crowdml;

namespace {

net::DeviceCredentials parse_key(const std::string& spec) {
  const auto comma = spec.find(',');
  if (comma == std::string::npos)
    throw std::runtime_error("--key must be 'device_id,hex_secret'");
  net::DeviceCredentials cred;
  cred.device_id = std::stoull(spec.substr(0, comma));
  const std::string hex = spec.substr(comma + 1);
  if (hex.size() % 2 != 0) throw std::runtime_error("odd-length hex key");
  for (std::size_t i = 0; i < hex.size(); i += 2)
    cred.key.push_back(
        static_cast<std::uint8_t>(std::stoul(hex.substr(i, 2), nullptr, 16)));
  return cred;
}

net::SecretKey parse_hex_key_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read --secagg-key-file " + path);
  std::string hex;
  in >> hex;
  if (hex.empty() || hex.size() % 2 != 0)
    throw std::runtime_error("--secagg-key-file must hold an even-length "
                             "hex key");
  net::SecretKey key;
  for (std::size_t i = 0; i < hex.size(); i += 2)
    key.push_back(
        static_cast<std::uint8_t>(std::stoul(hex.substr(i, 2), nullptr, 16)));
  return key;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    tools::Flags flags(argc, argv);
    const net::DeviceCredentials cred = parse_key(flags.get("key", ""));
    std::string host = flags.get("host", "127.0.0.1");
    auto port = static_cast<std::uint16_t>(flags.get_int("port", 9000));
    const std::string shard_map_csv = flags.get("shard-map", "");
    if (!shard_map_csv.empty()) {
      // Hash-route to the home shard so the first checkin lands where it
      // will be accepted; a stale map costs one "wrong shard" redirect
      // hop, never a lost checkin.
      const auto map = shard::ShardMap::parse(shard_map_csv);
      if (!map)
        throw std::runtime_error(
            "--shard-map must be a comma-separated host:port list");
      const std::string addr = map->addr(map->shard_of(cred.device_id));
      const auto hp = net::split_host_port(addr);
      if (!hp) throw std::runtime_error("--shard-map: bad address " + addr);
      host = hp->first;
      port = hp->second;
      std::printf("shard-map: device %llu homed to shard %zu (%s)\n",
                  static_cast<unsigned long long>(cred.device_id),
                  map->shard_of(cred.device_id), addr.c_str());
    }
    const std::string data_path = flags.get("data", "");
    if (data_path.empty()) throw std::runtime_error("--data is required");

    models::SampleSet samples = data::read_csv_file(data_path);
    if (samples.empty()) throw std::runtime_error("no samples in " + data_path);
    data::l1_normalize_features(samples);
    const std::size_t dim = samples.front().x.size();
    const auto classes = static_cast<std::size_t>(flags.get_int("classes", 10));

    // Model must match the server's dimensions.
    std::unique_ptr<models::Model> model;
    if (classes >= 2)
      model = std::make_unique<models::MulticlassLogisticRegression>(classes, dim,
                                                                     0.0);
    else
      model = std::make_unique<models::RidgeRegression>(dim, 0.0, 1.0);

    core::DeviceConfig dc;
    dc.minibatch_size = static_cast<std::size_t>(flags.get_int("minibatch", 10));
    const double eps = flags.get_double("epsilon", 10.0);
    if (eps > 0.0) dc.budget = privacy::PrivacyBudget::gradient_dominated(eps);

    const long long seed = flags.get_int("seed", 99);
    core::Device device(dc, *model, rng::Engine(seed));
    device.set_credentials(cred);

    core::ReconnectPolicy rp;
    rp.io_deadline_ms = static_cast<int>(flags.get_int("io-deadline-ms", 5000));
    rp.connect_timeout_ms =
        static_cast<int>(flags.get_int("connect-timeout-ms", 2000));
    rp.max_attempts = static_cast<int>(flags.get_int("max-attempts", 8));
    rp.backoff_max_ms = static_cast<int>(flags.get_int("backoff-max-ms", 2000));
    core::ReconnectingDeviceSession session(
        host, port, rp, rng::Engine(static_cast<std::uint64_t>(seed) ^ 0xD1CE),
        /*counters=*/nullptr, /*trace=*/nullptr, device.id());

    const tools::SecAggFlags secf = tools::parse_secagg_flags(flags);
    if (!secf.error.empty()) throw std::runtime_error(secf.error);
    if (secf.enabled && secf.key_file.empty())
      throw std::runtime_error(
          "--secagg-cohort requires --secagg-key-file (the fleet masking "
          "key; ask your fleet operator, never the server)");

    const auto passes = flags.get_int("passes", 1);
    long long cycles = 0;

    if (secf.enabled) {
      core::SecAggDeviceClient::Options sopts;
      sopts.fleet_key = parse_hex_key_file(secf.key_file);
      sopts.min_survivors = static_cast<std::size_t>(secf.min_survivors);
      sopts.device_class =
          static_cast<std::uint8_t>(flags.get_int("device-class", 0));
      sopts.sleep_ms = [](std::uint32_t ms) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      };
      sopts.on_fallback = [&session] { session.note_secagg_fallback(); };
      core::SecAggDeviceClient client(device, session.as_exchange(), sopts);
      for (long long p = 0; p < passes; ++p)
        for (const auto& s : samples)
          if (client.offer_sample(s)) ++cycles;
      std::printf("device %llu: streamed %zu samples x %lld passes, "
                  "%lld cohort checkins (%lld failed, %lld fallbacks, "
                  "%lld rounds recovered)\n",
                  static_cast<unsigned long long>(device.id()), samples.size(),
                  passes, cycles, client.cycles_failed(),
                  client.fallbacks_sent(), client.rounds_recovered());
      std::printf("per-sample epsilon: %.3f honest-server / %.3f if every "
                  "mask were stripped, over %lld checkins (%lld cohort, "
                  "%lld fallback)\n",
                  device.accountant().per_sample_epsilon(),
                  device.accountant().per_sample_epsilon_if_unmasked(),
                  device.accountant().checkins(),
                  device.accountant().cohort_checkins(),
                  device.accountant().fallback_checkins());
    } else {
      core::DeviceClient client(device, session.as_exchange());
      for (long long p = 0; p < passes; ++p)
        for (const auto& s : samples)
          if (client.offer_sample(s)) ++cycles;
      std::printf("device %llu: streamed %zu samples x %lld passes, "
                  "%lld checkins (%lld failed)\n",
                  static_cast<unsigned long long>(device.id()), samples.size(),
                  passes, cycles, client.cycles_failed());
      std::printf("per-sample epsilon: %.3f over %lld checkins\n",
                  device.accountant().per_sample_epsilon(),
                  device.accountant().checkins());
    }
    std::printf("transport: %lld reconnects, %lld retries, %lld timeouts, "
                "%lld checkins abandoned, %lld redirects followed, "
                "%lld pace hints honored, %lld secagg fallbacks\n",
                session.reconnects(), session.retries(), session.timeouts(),
                session.checkins_abandoned(), session.redirects_followed(),
                session.pace_hints_honored(), session.secagg_fallbacks());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crowdml-device: %s\n", e.what());
    return 1;
  }
}
