#include "replica/failure_detector.hpp"

#include <algorithm>

namespace crowdml::replica {

FailureDetector::FailureDetector(FailureDetectorConfig cfg, rng::Engine rng)
    : cfg_(cfg), rng_(rng) {
  if (cfg_.election_timeout_max_ms <= 0)
    cfg_.election_timeout_max_ms = 2 * cfg_.election_timeout_min_ms;
  cfg_.election_timeout_max_ms =
      std::max(cfg_.election_timeout_max_ms, cfg_.election_timeout_min_ms);
}

int FailureDetector::draw_timeout_ms() {
  const int lo = cfg_.election_timeout_min_ms;
  const int hi = cfg_.election_timeout_max_ms;
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo + 1);
  return lo + static_cast<int>(rng_() % span);
}

void FailureDetector::arm(Clock::time_point now) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  timeout_ms_ = draw_timeout_ms();
  deadline_ = now + std::chrono::milliseconds(timeout_ms_);
  armed_ = true;
}

void FailureDetector::observe(Clock::time_point now) { arm(now); }

bool FailureDetector::due(Clock::time_point now) const {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return armed_ && now >= deadline_;
}

int FailureDetector::current_timeout_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeout_ms_;
}

std::vector<PeerAddr> parse_peer_list(const std::string& csv,
                                      std::string* error) {
  std::vector<PeerAddr> peers;
  std::size_t start = 0;
  while (start <= csv.size()) {
    if (start == csv.size()) break;
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string entry = csv.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;  // tolerate "a:1,,b:2" and trailing commas
    const auto hp = net::split_host_port(entry);
    if (!hp) {
      if (error) *error = "peer must be host:port, got '" + entry + "'";
      return {};
    }
    peers.push_back({hp->first, hp->second, entry});
  }
  return peers;
}

std::size_t election_majority(std::size_t electorate) {
  return electorate / 2 + 1;
}

ElectionResult run_election(const ElectionOptions& opts) {
  ElectionResult result;
  result.electorate = opts.peers.size() + 1;
  result.grants = 1;  // the candidate votes for itself (already durable)
  const std::size_t needed = election_majority(result.electorate);

  net::ReplVoteMessage req;
  req.request = true;
  req.epoch = opts.epoch;
  req.candidate_id = opts.candidate_id;
  req.last_seq = opts.last_seq;
  req.nonce = opts.nonce;
  req.device_addr = opts.device_addr;
  req.repl_addr = opts.repl_addr;
  const net::Bytes frame =
      net::encode_frame(net::MessageType::kReplVote,
                        seal_repl_payload(opts.key, net::MessageType::kReplVote,
                                          req.serialize()));

  for (const PeerAddr& peer : opts.peers) {
    auto conn = net::TcpConnection::connect(peer.host, peer.port,
                                            opts.connect_timeout_ms);
    if (!conn) {
      if (opts.trace)
        opts.trace->event("election_peer_unreachable", {{"peer", peer.raw}});
      continue;
    }
    conn->set_deadline_ms(opts.io_deadline_ms);
    if (!conn->send_frame(frame)) continue;
    const auto raw = conn->recv_frame();
    if (!raw) continue;
    net::ReplVoteMessage resp;
    try {
      const net::Frame f = net::decode_frame(*raw);
      if (f.type != net::MessageType::kReplVote) continue;
      const auto body =
          open_repl_payload(opts.key, net::MessageType::kReplVote, f.payload);
      if (!body) continue;
      resp = net::ReplVoteMessage::deserialize(*body);
    } catch (const net::CodecError&) {
      continue;
    }
    if (resp.request) continue;  // protocol abuse: a request is not a ballot
    // A ballot must echo this campaign's identity. A grant sealed for a
    // different candidate (or a different request — the nonce) could
    // otherwise be replayed here, letting two candidates each assemble
    // a "majority" for one epoch.
    if (resp.candidate_id != opts.candidate_id || resp.nonce != opts.nonce) {
      if (opts.trace)
        opts.trace->event("election_ballot_unbound", {{"peer", peer.raw}});
      continue;
    }
    if (resp.granted && resp.epoch == opts.epoch) {
      ++result.grants;
    } else if (!resp.granted && resp.epoch > opts.epoch) {
      result.higher_epoch_seen =
          std::max(result.higher_epoch_seen, resp.epoch);
    }
    if (opts.trace)
      opts.trace->event("election_vote",
                        {{"peer", peer.raw},
                         {"granted", resp.granted},
                         {"peer_epoch", resp.epoch},
                         {"peer_last_seq", resp.last_seq}});
    if (result.grants >= needed) break;  // majority in hand; stop asking
  }
  result.won = result.grants >= needed;
  return result;
}

namespace {

obs::MetricsRegistry& registry_of(const VoteListener::Options& opts) {
  return opts.metrics ? *opts.metrics : obs::default_registry();
}

}  // namespace

VoteListener::VoteListener(Options opts, Handler handler)
    : opts_(std::move(opts)),
      handler_(std::move(handler)),
      auth_failed_(registry_of(opts_).counter(
          "crowdml_repl_auth_failed_total",
          "Replication-plane frames dropped for a missing or invalid "
          "HMAC tag",
          obs::Provenance::kTransportEvent)) {}

VoteListener::~VoteListener() { shutdown(); }

bool VoteListener::start() {
  if (thread_.joinable()) return true;
  auto listener = net::TcpListener::bind(opts_.port);
  if (!listener) return false;
  listener_ = std::move(*listener);
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void VoteListener::shutdown() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  listener_.close();
  if (thread_.joinable()) thread_.join();
}

void VoteListener::accept_loop() {
  while (!stopping_.load()) {
    auto conn = listener_.accept();
    if (!conn) break;  // listener closed
    conn->set_deadline_ms(opts_.io_deadline_ms);
    const auto raw = conn->recv_frame();
    if (!raw) continue;
    net::ReplVoteMessage req;
    try {
      const net::Frame f = net::decode_frame(*raw);
      if (f.type != net::MessageType::kReplVote) continue;
      const auto body =
          open_repl_payload(opts_.key, net::MessageType::kReplVote, f.payload);
      if (!body) {
        ++auth_failed_;
        if (opts_.trace)
          opts_.trace->event("repl_auth_failed", {{"where", "vote_listener"}});
        continue;
      }
      req = net::ReplVoteMessage::deserialize(*body);
    } catch (const net::CodecError&) {
      continue;
    }
    if (!req.request) continue;
    net::ReplVoteMessage resp = handler_(req);
    resp.request = false;
    ++votes_served_;
    conn->send_frame(net::encode_frame(
        net::MessageType::kReplVote,
        seal_repl_payload(opts_.key, net::MessageType::kReplVote,
                          resp.serialize())));
  }
}

}  // namespace crowdml::replica
