#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace crowdml::sim {

void Simulator::schedule_at(SimTime t, Handler h) {
  assert(t >= now_);
  queue_.push(Event{t, seq_++, std::move(h)});
}

void Simulator::schedule_after(SimTime dt, Handler h) {
  assert(dt >= 0.0);
  schedule_at(now_ + dt, std::move(h));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the handler must be moved out
  // before pop, so copy the POD parts and move via const_cast (safe: the
  // element is removed immediately after).
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.handler();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) step();
  now_ = std::max(now_, t_end);
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace crowdml::sim
