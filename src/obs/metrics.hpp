// Observability metrics — the machine-readable face of the paper's
// Section V-A "web portal".
//
// A MetricsRegistry holds named counters, gauges, and fixed-bucket
// histograms. Registration (get-or-create) takes a lock; every recording
// operation afterwards is a lock-free atomic, so instruments can sit on
// the gradient/codec/socket hot paths. Bucket layouts are fixed at
// registration, so a histogram's memory is bounded no matter how many
// observations it absorbs.
//
// Privacy invariant: every instrument must declare a Provenance — the
// reason its value may be exported without spending privacy budget. The
// three admissible provenances cover everything the server legitimately
// observes (sanitized checkins, transport events, local wall-clock time);
// there is deliberately no "raw sample data" provenance, so the type
// system refuses metrics that would need one. The rendered exposition
// repeats each instrument's justification in its HELP line, and
// docs/OBSERVABILITY.md catalogues them all.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace crowdml::obs {

/// Why a metric is exportable without additional privacy budget.
/// Mirrors the monitor.hpp argument: the portal only republishes what the
/// server already legitimately holds.
enum class Provenance {
  /// Derives from sanitized checkins (Eqs. 10-12) the server already
  /// holds; publishing is post-processing of eps-DP data.
  kSanitizedAggregate,
  /// Counts network/protocol events (connects, timeouts, frames); never
  /// touches sample data.
  kTransportEvent,
  /// Wall-clock duration of a local computation; carries no sample data.
  kTiming,
};

/// The justification sentence rendered into the exposition HELP line.
const char* provenance_note(Provenance p);

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(long long n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  Counter& operator++() {
    inc();
    return *this;
  }
  Counter& operator+=(long long n) {
    inc(n);
    return *this;
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<long long> value_{0};
};

/// A value that can go up and down (queue depths, live connections).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: cumulative-bucket counts plus sum/count, all
/// atomics. Bounds are upper bounds in ascending order; an implicit +Inf
/// bucket catches the tail, so memory never grows with observations.
class Histogram {
 public:
  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;       ///< upper bounds (excludes +Inf)
    std::vector<long long> buckets;   ///< per-bucket counts, bounds.size()+1
    long long count = 0;
    double sum = 0.0;

    double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  };
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }
  long long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<long long>[]> buckets_;  // bounds_.size() + 1
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` geometric upper bounds: start, start*factor, start*factor^2, ...
std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count);

/// Default latency layout: 1 us .. ~16.7 s in x4 steps (13 finite buckets).
std::vector<double> default_latency_bounds();

/// Thread-safe instrument registry with get-or-create semantics:
/// registering an existing name returns the existing instrument (so e.g.
/// two NetCounters attached to one registry share counters), and
/// re-registering a name as a different kind throws std::invalid_argument.
/// Instrument references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   Provenance provenance);
  Gauge& gauge(const std::string& name, const std::string& help,
               Provenance provenance);
  Histogram& histogram(const std::string& name, const std::string& help,
                       Provenance provenance, std::vector<double> bounds = {});

  struct RegistrySnapshot {
    struct CounterRow {
      std::string name, help;
      Provenance provenance;
      long long value;
    };
    struct GaugeRow {
      std::string name, help;
      Provenance provenance;
      double value;
    };
    struct HistogramRow {
      std::string name, help;
      Provenance provenance;
      Histogram::Snapshot data;
    };
    std::vector<CounterRow> counters;
    std::vector<GaugeRow> gauges;
    std::vector<HistogramRow> histograms;
  };
  RegistrySnapshot snapshot() const;

  /// Prometheus text exposition (format 0.0.4): # HELP (with the
  /// provenance justification), # TYPE, cumulative histogram buckets with
  /// an explicit +Inf, _sum and _count series. Names are sorted, so the
  /// output is deterministic.
  std::string render_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    Provenance provenance;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& get_or_create(const std::string& name, const std::string& help,
                       Provenance provenance, Kind kind,
                       std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Process-wide registry used by always-on hot-path instrumentation
/// (gradient compute, sanitization, codec, frame I/O). Exporters render
/// it on demand; components that want isolation take an explicit
/// MetricsRegistry instead.
MetricsRegistry& default_registry();

/// Render `registry` as Prometheus text into `path` (atomic-ish: write to
/// path then flush). Returns false when the file cannot be written.
bool write_metrics_file(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace crowdml::obs
