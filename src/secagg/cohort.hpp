// Server-side secure-aggregation round lifecycle (docs/PRIVACY.md
// "Secure aggregation").
//
// The CohortManager assigns checked-out devices into cohorts of
// `cohort_size` per round — formed per declared device class
// (net::SecAggAssignMessage::device_class), so a fast-class cohort
// seals on fast-class arrivals alone and one flaky-class straggler
// cannot hold the round open into dropout recovery for everyone else.
// Cohorts also never span shards, structurally: each shard leader runs
// its own CohortManager over only the devices its shard owns
// (docs/SHARDING.md). The manager collects the pairwise-masked checkins
// (net::SecAggMaskedMessage), and applies a round only once its sum is
// unmaskable: either every roster member submitted (all masks cancel by
// construction) or the dropouts' unmatched mask streams were subtracted
// with seeds revealed by a surviving peer. Below `min_survivors` the
// round aborts and the devices fall back to classic per-device LDP
// checkins — privacy never silently degrades.
//
// The manager is pull-driven: there is no timer thread. Every handler
// calls tick() first, so rounds progress whenever any secagg frame
// arrives, and tests drive the clock explicitly via set_clock(). The
// completed round is applied through the `apply` callback as a single
// synthetic net::CheckinMessage (device_id = kCohortDeviceIdBase |
// round_id), so the engine's applier WALs it as an ordinary checkin
// record and recovery semantics are unchanged.
//
// Thread-safe: handlers may be called from the epoll applier or from
// thread-per-connection workers; one mutex covers all round state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/messages.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "secagg/mask.hpp"

namespace crowdml::secagg {

/// Synthetic device-id namespace for applied cohort records: the top bit
/// is set, so a cohort record can never collide with an enrolled device
/// (AuthRegistry ids are sequential from 1).
inline constexpr std::uint64_t kCohortDeviceIdBase = 0x8000000000000000ULL;

struct CohortConfig {
  std::size_t cohort_size = 8;     ///< --secagg-cohort
  std::size_t min_survivors = 2;   ///< --secagg-min-survivors (>= 2)
  std::int64_t round_timeout_ms = 2000;  ///< collect + reveal deadlines
  /// Retry hint on pending/collecting responses.
  std::uint32_t poll_retry_ms = 50;
  /// The cohort record's expected shapes (validated per submission so a
  /// malformed blob cannot poison a sum).
  std::size_t param_dim = 0;
  std::size_t num_classes = 0;
  /// Resolved rounds retained for late status polls before pruning.
  std::size_t rounds_retained = 64;
  obs::MetricsRegistry* metrics = nullptr;  ///< null = default registry
  obs::TraceSink* trace = nullptr;
};

class CohortManager {
 public:
  /// `apply` receives the unmasked cohort record (one synthetic
  /// CheckinMessage per completed round) — wire Server::handle_checkin
  /// here. Must not call back into the manager.
  using ApplyFn = std::function<net::AckMessage(const net::CheckinMessage&)>;

  CohortManager(CohortConfig config, ApplyFn apply);

  /// Injectable monotonic clock (ms). Defaults to steady_clock.
  void set_clock(std::function<std::int64_t()> now_ms);

  /// Device poll: assign into a forming cohort, return the sealed
  /// roster, or tell the device to fall back. Auth happens at the
  /// protocol boundary; the manager trusts req.device_id.
  net::SecAggAssignMessage handle_assign(const net::SecAggAssignMessage& req);

  /// Masked checkin: an ok ack means "accepted into the round", not
  /// "applied". Completes the round inline when the last roster member
  /// submits.
  net::AckMessage handle_masked(const net::SecAggMaskedMessage& msg);

  /// Round-status poll / seed recovery. Seeds submitted while the round
  /// is recovering may complete it inline.
  net::SecAggRevealMessage handle_reveal(const net::SecAggRevealMessage& req);

  /// Advance round deadlines (called internally by every handler).
  void tick();

  // Introspection (tests, the bench's JSON, the portal report).
  long long rounds_sealed() const;
  long long rounds_completed() const;
  long long rounds_recovered() const;  ///< completed via seed reveals
  long long rounds_aborted() const;
  long long masked_checkins() const;

  const CohortConfig& config() const { return config_; }

 private:
  struct Round {
    enum State { kCollecting, kRecovering, kComplete, kAborted };
    std::uint64_t id = 0;
    State state = kCollecting;
    /// The class every roster member declared (cohorts never mix).
    std::uint8_t device_class = 0;
    std::vector<std::uint64_t> roster;  // sorted ascending
    std::int64_t deadline_ms = 0;       // collect, then reveal deadline
    std::unordered_map<std::uint64_t, net::SecAggMaskedMessage> submitted;
    std::vector<std::uint64_t> dead;       // declared at recovery
    std::vector<std::uint64_t> survivors;  // declared at recovery
    /// Revealed (min,max) -> seed for (survivor, dead) pairs.
    std::map<std::pair<std::uint64_t, std::uint64_t>, net::Digest> seeds;
  };

  void tick_locked();
  void seal_locked(std::uint8_t device_class, std::size_t take);
  void complete_locked(Round& round);
  void resolve_locked(Round& round, Round::State terminal);
  void prune_locked();
  bool recovery_complete_locked(const Round& round) const;
  std::int64_t now_ms() const;

  CohortConfig config_;
  ApplyFn apply_;
  std::function<std::int64_t()> clock_;

  mutable std::mutex mu_;
  struct Waiter {
    std::uint64_t device_id = 0;
    std::int64_t since_ms = 0;
  };
  /// One forming queue per declared device class (FIFO within a class).
  std::map<std::uint8_t, std::vector<Waiter>> forming_;
  std::map<std::uint64_t, Round> rounds_;  // ordered: oldest first
  std::unordered_map<std::uint64_t, std::uint64_t> assignment_;
  std::uint64_t next_round_id_ = 1;
  long long sealed_ = 0;
  long long completed_ = 0;
  long long recovered_ = 0;
  long long aborted_ = 0;
  long long masked_ = 0;

  obs::Counter& rounds_sealed_c_;
  obs::Counter& rounds_completed_c_;
  obs::Counter& rounds_recovered_c_;
  obs::Counter& rounds_aborted_c_;
  obs::Counter& masked_checkins_c_;
};

}  // namespace crowdml::secagg
