// Principal component analysis over sample matrices.
//
// Mirrors the paper's preprocessing: "images from MNIST data are
// preprocessed with PCA to have a reduced dimension of 50, and L1
// normalized" (Section V-C). Fit on training data, then transform both
// train and test features.
#pragma once

#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"

namespace crowdml::linalg {

class Pca {
 public:
  /// Fit `components` principal directions on `samples` (rows = samples).
  /// `components` must be in [1, samples.cols()].
  void fit(const Matrix& samples, std::size_t components);

  /// Project a single feature vector onto the fitted components.
  Vector transform(const Vector& x) const;

  /// Project every row of a sample matrix.
  Matrix transform(const Matrix& samples) const;

  bool fitted() const { return !mean_.empty(); }
  std::size_t input_dim() const { return mean_.size(); }
  std::size_t output_dim() const { return components_.rows(); }

  /// Variance captured by each retained component (descending).
  const Vector& explained_variance() const { return explained_variance_; }

  /// Fraction of total variance captured by the retained components.
  double explained_variance_ratio() const;

 private:
  Vector mean_;
  Matrix components_;  // k x d, rows are principal directions
  Vector explained_variance_;
  double total_variance_ = 0.0;
};

}  // namespace crowdml::linalg
