// Tests for dataset containers, sharding, synthetic generators, and CSV IO.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "data/dataset.hpp"
#include "data/io.hpp"
#include "data/mixture.hpp"

using namespace crowdml;
using data::Dataset;
using models::Sample;
using models::SampleSet;

namespace {

SampleSet numbered_samples(std::size_t n, std::size_t classes = 3) {
  SampleSet out;
  for (std::size_t i = 0; i < n; ++i)
    out.emplace_back(linalg::Vector{static_cast<double>(i), 1.0},
                     static_cast<double>(i % classes));
  return out;
}

}  // namespace

TEST(SplitTrainTest, SizesAndDisjointness) {
  rng::Engine eng(1);
  Dataset ds = data::split_train_test(numbered_samples(100), 0.2, 3, eng);
  EXPECT_EQ(ds.test.size(), 20u);
  EXPECT_EQ(ds.train.size(), 80u);
  EXPECT_EQ(ds.num_classes, 3u);
  EXPECT_EQ(ds.feature_dim, 2u);
  // No sample appears twice (identified by the unique first feature).
  std::set<double> ids;
  for (const auto& s : ds.train) ids.insert(s.x[0]);
  for (const auto& s : ds.test) ids.insert(s.x[0]);
  EXPECT_EQ(ids.size(), 100u);
}

TEST(SplitTrainTest, ZeroFractionPutsEverythingInTrain) {
  rng::Engine eng(2);
  Dataset ds = data::split_train_test(numbered_samples(10), 0.0, 3, eng);
  EXPECT_TRUE(ds.test.empty());
  EXPECT_EQ(ds.train.size(), 10u);
}

TEST(Shard, BalancedSizes) {
  rng::Engine eng(3);
  const auto shards = data::shard_across_devices(numbered_samples(103), 10, eng);
  ASSERT_EQ(shards.size(), 10u);
  std::size_t total = 0;
  for (const auto& s : shards) {
    EXPECT_GE(s.size(), 10u);
    EXPECT_LE(s.size(), 11u);
    total += s.size();
  }
  EXPECT_EQ(total, 103u);
}

TEST(Shard, PreservesAllSamples) {
  rng::Engine eng(4);
  const auto shards = data::shard_across_devices(numbered_samples(50), 7, eng);
  std::set<double> ids;
  for (const auto& shard : shards)
    for (const auto& s : shard) ids.insert(s.x[0]);
  EXPECT_EQ(ids.size(), 50u);
}

TEST(Shard, MoreDevicesThanSamples) {
  rng::Engine eng(5);
  const auto shards = data::shard_across_devices(numbered_samples(3), 10, eng);
  std::size_t nonempty = 0;
  for (const auto& s : shards)
    if (!s.empty()) ++nonempty;
  EXPECT_EQ(nonempty, 3u);
}

TEST(ClassHistogram, CountsLabels) {
  const auto hist = data::class_histogram(numbered_samples(10, 3), 3);
  EXPECT_EQ(hist[0], 4u);  // labels 0,3,6,9
  EXPECT_EQ(hist[1], 3u);
  EXPECT_EQ(hist[2], 3u);
}

TEST(FeatureStats, NormsComputed) {
  SampleSet s{Sample({3.0, 4.0}, 0.0), Sample({1.0, 0.0}, 1.0)};
  const auto st = data::feature_stats(s);
  EXPECT_DOUBLE_EQ(st.max_l1_norm, 7.0);
  EXPECT_DOUBLE_EQ(st.mean_l1_norm, 4.0);
  EXPECT_DOUBLE_EQ(st.mean_l2_norm, 3.0);
}

TEST(L1NormalizeFeatures, UnitNormAfter) {
  SampleSet s{Sample({3.0, 4.0}, 0.0), Sample({0.0, 0.0}, 1.0)};
  data::l1_normalize_features(s);
  EXPECT_NEAR(linalg::norm1(s[0].x), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(linalg::norm1(s[1].x), 0.0);  // zero vector untouched
}

TEST(Mixture, DimensionsAndLabels) {
  rng::Engine eng(6);
  data::MixtureSpec spec;
  spec.num_classes = 4;
  spec.raw_dim = 30;
  spec.latent_dim = 10;
  spec.pca_dim = 8;
  spec.train_size = 200;
  spec.test_size = 50;
  const Dataset ds = data::generate_mixture(spec, eng);
  EXPECT_EQ(ds.train.size(), 200u);
  EXPECT_EQ(ds.test.size(), 50u);
  EXPECT_EQ(ds.feature_dim, 8u);
  for (const auto& s : ds.train) {
    EXPECT_EQ(s.x.size(), 8u);
    EXPECT_GE(s.label(), 0);
    EXPECT_LT(s.label(), 4);
    EXPECT_LE(linalg::norm1(s.x), 1.0 + 1e-9);
  }
}

TEST(Mixture, DeterministicGivenSeed) {
  data::MixtureSpec spec;
  spec.train_size = 50;
  spec.test_size = 10;
  rng::Engine a(7), b(7);
  const Dataset d1 = data::generate_mixture(spec, a);
  const Dataset d2 = data::generate_mixture(spec, b);
  ASSERT_EQ(d1.train.size(), d2.train.size());
  for (std::size_t i = 0; i < d1.train.size(); ++i) {
    EXPECT_EQ(d1.train[i].y, d2.train[i].y);
    EXPECT_EQ(d1.train[i].x, d2.train[i].x);
  }
}

TEST(Mixture, DifferentSeedsDiffer) {
  data::MixtureSpec spec;
  spec.train_size = 50;
  spec.test_size = 10;
  rng::Engine a(7), b(8);
  const Dataset d1 = data::generate_mixture(spec, a);
  const Dataset d2 = data::generate_mixture(spec, b);
  EXPECT_NE(d1.train[0].x, d2.train[0].x);
}

TEST(Mixture, AllClassesRepresented) {
  rng::Engine eng(9);
  data::MixtureSpec spec;
  spec.train_size = 2000;
  spec.test_size = 100;
  const Dataset ds = data::generate_mixture(spec, eng);
  const auto hist = data::class_histogram(ds.train, spec.num_classes);
  for (auto c : hist) EXPECT_GT(c, 100u);  // ~200 expected per class
}

TEST(Mixture, MnistAndCifarSpecsMatchPaperShapes) {
  const auto mnist = data::mnist_like_spec(1.0);
  EXPECT_EQ(mnist.num_classes, 10u);
  EXPECT_EQ(mnist.pca_dim, 50u);    // "reduced dimension of 50"
  EXPECT_EQ(mnist.train_size, 60000u);
  EXPECT_EQ(mnist.test_size, 10000u);

  const auto cifar = data::cifar_like_spec(1.0);
  EXPECT_EQ(cifar.pca_dim, 100u);   // "reduced dimension of 100"
  EXPECT_EQ(cifar.train_size, 50000u);
  EXPECT_EQ(cifar.test_size, 10000u);

  const auto small = data::mnist_like_spec(0.1);
  EXPECT_EQ(small.train_size, 6000u);
}

TEST(CsvIo, RoundTrip) {
  SampleSet original{Sample({1.5, -2.25}, 3.0), Sample({0.0, 4.0}, 1.0)};
  std::stringstream ss;
  data::write_csv(ss, original);
  const SampleSet parsed = data::read_csv(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].y, 3.0);
  EXPECT_EQ(parsed[0].x, original[0].x);
  EXPECT_EQ(parsed[1].x, original[1].x);
}

TEST(CsvIo, RoundTripPreservesFullPrecision) {
  SampleSet original{Sample({1.0 / 3.0, 2.0 / 7.0}, 0.0)};
  std::stringstream ss;
  data::write_csv(ss, original);
  const SampleSet parsed = data::read_csv(ss);
  EXPECT_DOUBLE_EQ(parsed[0].x[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(parsed[0].x[1], 2.0 / 7.0);
}

TEST(CsvIo, RejectsNonNumericField) {
  std::stringstream ss("1.0,2.0,bogus\n");
  EXPECT_THROW(data::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, RejectsInconsistentDimensions) {
  std::stringstream ss("1.0,2.0,3.0\n0.0,4.0\n");
  EXPECT_THROW(data::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, SkipsEmptyLines) {
  std::stringstream ss("1.0,2.0\n\n0.0,3.0\n");
  const SampleSet parsed = data::read_csv(ss);
  EXPECT_EQ(parsed.size(), 2u);
}

TEST(CsvIo, MissingFileThrows) {
  EXPECT_THROW(data::read_csv_file("/nonexistent/path.csv"), std::runtime_error);
}
