#include "shard/merge.hpp"

#include <string>

#include "secagg/mask.hpp"

namespace crowdml::shard {

net::Bytes MergeRecord::serialize() const {
  net::Writer wr;
  wr.put_u32(store::kOpaqueRecordMagic);
  wr.put_u32(kMergeRecordKind);
  wr.put_u64(merge_round);
  wr.put_u64(total_checkins);
  wr.put_vector(w);
  return wr.take();
}

MergeRecord MergeRecord::deserialize(const net::Bytes& payload) {
  net::Reader r(payload);
  if (r.get_u32() != store::kOpaqueRecordMagic)
    throw net::CodecError("not an opaque record");
  if (r.get_u32() != kMergeRecordKind)
    throw net::CodecError("unknown opaque record kind");
  MergeRecord rec;
  rec.merge_round = r.get_u64();
  rec.total_checkins = r.get_u64();
  rec.w = r.get_vector();
  if (!r.exhausted())
    throw net::CodecError("trailing bytes after merge record");
  return rec;
}

void install_merge_replay(store::DurableStoreOptions& opts) {
  opts.opaque_replay = [](core::Server& server, std::uint64_t seq,
                          const net::Bytes& payload) {
    const auto rec = MergeRecord::deserialize(payload);
    const std::uint64_t v = server.overwrite_parameters(rec.w);
    if (v != seq)
      throw store::WalError("merge replay produced version " +
                            std::to_string(v) + ", record says " +
                            std::to_string(seq));
  };
}

std::vector<std::uint64_t> quantize_params(const linalg::Vector& w) {
  std::vector<std::uint64_t> q;
  q.reserve(w.size());
  for (double v : w) q.push_back(secagg::quantize(v));
  return q;
}

linalg::Vector dequantize_params(const std::vector<std::uint64_t>& q) {
  linalg::Vector w;
  w.reserve(q.size());
  for (std::uint64_t v : q) w.push_back(secagg::dequantize(v));
  return w;
}

std::optional<std::vector<std::uint64_t>> merge_models(
    const std::vector<net::ShardModelMessage>& models) {
  if (models.empty()) return std::nullopt;
  const std::size_t dim = models.front().q.size();
  // Weights are capped at 2^32: |q| < 2^63 (kFixedPointMax * 2^20), so
  // a capped product stays under 2^95 per model and the __int128
  // accumulator cannot wrap even if a corrupted shard reports an absurd
  // count. The cap is unreachable by an honest shard (it would need
  // 4 billion checkins in one merge window).
  constexpr std::uint64_t kMaxWeight = 1ULL << 32;
  const auto weight = [](const net::ShardModelMessage& m) {
    return m.checkins < kMaxWeight ? m.checkins : kMaxWeight;
  };
  std::uint64_t total = 0;
  for (const auto& m : models) {
    if (m.q.size() != dim) return std::nullopt;
    total += weight(m);
  }
  if (total == 0 || dim == 0) return std::nullopt;

  std::vector<std::uint64_t> merged(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    __int128 acc = 0;
    for (const auto& m : models)
      acc += static_cast<__int128>(weight(m)) *
             static_cast<__int128>(static_cast<std::int64_t>(m.q[d]));
    // C++ integer division truncates toward zero — deterministic, and
    // the bias (< one 2^-20 grid step) is far below the noise floor.
    const __int128 avg = acc / static_cast<__int128>(total);
    merged[d] =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(avg));
  }
  return merged;
}

std::uint64_t total_checkins(
    const std::vector<net::ShardModelMessage>& models) {
  // Same per-model cap as merge_models, so the audit field in the push
  // matches the divisor the average actually used.
  constexpr std::uint64_t kMaxWeight = 1ULL << 32;
  std::uint64_t total = 0;
  for (const auto& m : models)
    total += m.checkins < kMaxWeight ? m.checkins : kMaxWeight;
  return total;
}

}  // namespace crowdml::shard
