#include "sim/churn.hpp"

#include <cassert>

#include "rng/distributions.hpp"

namespace crowdml::sim {

ChurnModel::ChurnModel(double mean_online_s, double mean_offline_s)
    : mean_online_s_(mean_online_s), mean_offline_s_(mean_offline_s) {
  assert(mean_online_s > 0.0 && mean_offline_s >= 0.0);
}

ChurnModel::ChurnModel() : mean_online_s_(1.0), mean_offline_s_(0.0) {}

ChurnModel::State ChurnModel::initial_state(rng::Engine& eng) const {
  State s;
  if (!enabled()) {
    s.online = true;
    s.until = 0.0;
    return s;
  }
  const double p_online = mean_online_s_ / (mean_online_s_ + mean_offline_s_);
  s.online = rng::uniform(eng) < p_online;
  s.until = rng::exponential(
      eng, 1.0 / (s.online ? mean_online_s_ : mean_offline_s_));
  return s;
}

ChurnModel::State ChurnModel::next_state(const State& current,
                                         rng::Engine& eng) const {
  State s;
  s.online = !current.online;
  s.until = current.until +
            rng::exponential(eng, 1.0 / (s.online ? mean_online_s_ : mean_offline_s_));
  return s;
}

bool ChurnModel::online_at(double t, State& state, rng::Engine& eng) const {
  if (!enabled()) return true;
  while (state.until <= t) state = next_state(state, eng);
  return state.online;
}

}  // namespace crowdml::sim
