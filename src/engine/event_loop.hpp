// epoll-based I/O event loop for the serving engine.
//
// One EventLoop owns one epoll instance, one thread, and a set of
// nonblocking connections adopted from the acceptor. Each connection
// runs a frame state machine mirroring net::TcpConnection::recv_frame's
// semantics — accumulate bytes, read the header's payload length (via
// the net:: frame layout constants), reject lengths beyond
// kMaxFieldLength, deliver complete frames — but without a thread parked
// per socket: a single thread multiplexes hundreds of devices, which is
// what lets the engine scale past the thread-per-connection runtime.
//
// Threading model: every connection is touched only by its loop thread.
// Other threads talk to the loop through post() (a task queue flushed by
// an eventfd wakeup); send() and adopt() are post()-based and therefore
// safe from anywhere. Frame delivery (the FrameHandler) runs on the loop
// thread and must not block — the engine's handler either serves a
// pre-encoded snapshot frame or enqueues the request for the applier.
//
// Deadline semantics: the legacy runtime's per-connection receive
// deadline becomes an idle sweep — a connection with no inbound bytes
// for idle_timeout_ms is closed and counted, same observable behavior,
// no timer per socket.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/messages.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crowdml::engine {

class EventLoop {
 public:
  struct Options {
    /// Close connections silent for this long (<= 0 disables), matching
    /// TcpServerConfig::idle_timeout_ms semantics.
    int idle_timeout_ms = -1;
    /// Registry for frame/protocol-error counters (null =
    /// obs::default_registry()). Must outlive the loop.
    obs::MetricsRegistry* metrics = nullptr;
    /// Counter bumped per idle-swept connection (the engine passes its
    /// NetCounters::idle_closed so transport accounting matches the
    /// legacy runtime). Null disables. Must outlive the loop.
    obs::Counter* idle_closed = nullptr;
    /// Lifecycle trace events (idle_close, protocol_error). Null
    /// disables. Must outlive the loop.
    obs::TraceSink* trace = nullptr;
  };

  /// Called on the loop thread with each complete inbound frame. The
  /// id is stable for the connection's lifetime; respond via send().
  using FrameHandler =
      std::function<void(std::uint64_t conn_id, net::Bytes&& frame)>;

  /// Starts the loop thread. Throws std::runtime_error when epoll or
  /// eventfd creation fails.
  EventLoop(Options options, FrameHandler on_frame);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Take ownership of a connected socket (e.g. from
  /// net::TcpConnection::release_fd). The fd is made nonblocking and
  /// registered on the loop thread. Thread-safe. After stop() the fd is
  /// closed instead.
  void adopt(int fd);

  /// Queue `frame` for `conn_id` and flush as far as the socket allows.
  /// Thread-safe; silently dropped when the connection is already gone
  /// (the device sees a close and retries — Remark 1).
  void send(std::uint64_t conn_id, net::Bytes frame);

  /// send() for a whole batch in one loop-thread task — one eventfd
  /// wakeup for all of an applier batch's responses instead of one per
  /// response. Same dropped-when-gone semantics per item.
  void send_many(std::vector<std::pair<std::uint64_t, net::Bytes>> items);

  /// Run `fn` on the loop thread (immediately when already on it).
  /// Thread-safe; dropped after stop().
  void post(std::function<void()> fn);

  /// Stop the loop, close every connection, and join the thread.
  void stop();

  /// Live connections (approximate from other threads).
  std::size_t connections() const { return conn_count_.load(); }
  long long frames_received() const { return frames_in_.value(); }

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    net::Bytes in;              ///< unparsed inbound bytes
    std::deque<net::Bytes> out; ///< pending outbound frames
    std::size_t out_offset = 0; ///< bytes of out.front() already written
    bool want_write = false;    ///< EPOLLOUT currently armed
    std::chrono::steady_clock::time_point last_activity;
  };

  void run();
  void run_tasks();
  void do_adopt(int fd);
  /// Read until EAGAIN, delivering complete frames. False = close.
  bool handle_readable(Conn& conn);
  /// Write queued frames until EAGAIN. False = fatal socket error.
  bool flush_writes(Conn& conn);
  void set_want_write(Conn& conn, bool want);
  void close_conn(std::uint64_t id);
  void sweep_idle();
  bool on_loop_thread() const;

  Options opts_;
  FrameHandler on_frame_;
  int epfd_ = -1;
  int wakeup_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_id_ = 1;  ///< loop-thread only
  std::atomic<std::size_t> conn_count_{0};
  std::thread thread_;

  obs::Counter& frames_in_;
  obs::Counter& protocol_errors_;
};

}  // namespace crowdml::engine
