#include "core/crowd_simulation.hpp"

#include <cassert>
#include <cmath>

#include "metrics/evaluate.hpp"
#include "obs/profile.hpp"
#include "rng/distributions.hpp"

namespace crowdml::core {

SampleSource make_cycling_source(std::vector<models::SampleSet> shards) {
  auto state = std::make_shared<std::vector<models::SampleSet>>(std::move(shards));
  auto cursors = std::make_shared<std::vector<std::size_t>>(state->size(), 0);
  return [state, cursors](std::size_t device) -> std::optional<models::Sample> {
    assert(device < state->size());
    const models::SampleSet& shard = (*state)[device];
    if (shard.empty()) return std::nullopt;
    std::size_t& cur = (*cursors)[device];
    models::Sample s = shard[cur];
    cur = (cur + 1) % shard.size();
    return s;
  };
}

std::unique_ptr<opt::Updater> CrowdSimulation::make_updater(
    const CrowdSimConfig& cfg) {
  std::unique_ptr<opt::LearningRateSchedule> schedule;
  switch (cfg.schedule) {
    case ScheduleKind::kSqrtDecay:
      schedule = std::make_unique<opt::SqrtDecaySchedule>(cfg.learning_rate_c);
      break;
    case ScheduleKind::kConstant:
      schedule = std::make_unique<opt::ConstantSchedule>(cfg.learning_rate_c);
      break;
    case ScheduleKind::kInverseT:
      schedule = std::make_unique<opt::InverseTSchedule>(cfg.learning_rate_c);
      break;
  }
  switch (cfg.updater) {
    case UpdaterKind::kSgd:
      return std::make_unique<opt::SgdUpdater>(std::move(schedule),
                                               cfg.projection_radius);
    case UpdaterKind::kAdaGrad:
      return std::make_unique<opt::AdaGradUpdater>(cfg.learning_rate_c,
                                                   cfg.projection_radius);
    case UpdaterKind::kMomentum:
      return std::make_unique<opt::MomentumUpdater>(std::move(schedule),
                                                    cfg.projection_radius);
    case UpdaterKind::kDualAveraging:
      return std::make_unique<opt::DualAveragingUpdater>(cfg.learning_rate_c,
                                                         cfg.projection_radius);
    case UpdaterKind::kAdam:
      return std::make_unique<opt::AdamUpdater>(cfg.learning_rate_c,
                                                cfg.projection_radius);
  }
  return nullptr;
}

namespace {

/// Per-run mutable state shared by the event handlers.
struct RunState {
  const models::Model& model;
  const CrowdSimConfig& cfg;
  const SampleSource& source;
  const models::SampleSet& test_set;

  sim::Simulator simulator;
  Server server;
  std::vector<Device> devices;
  std::vector<bool> malicious;
  std::vector<sim::ChurnModel::State> churn_states;
  rng::Engine delay_eng;
  rng::Engine churn_eng;
  rng::Engine attack_eng;
  rng::Engine sampling_eng;
  const sim::DelayModel* delay;
  sim::ZeroDelay zero_delay;
  sim::LossModel loss;
  double timeout_s;

  bool done = false;
  long long samples_generated = 0;
  long long next_eval_mark = 0;
  long long eval_interval = 0;
  long long checkouts_failed = 0;
  long long online_preds = 0;
  long long online_errs = 0;

  // Optional observability instruments (null when cfg.metrics is null).
  obs::Counter* ck_applied = nullptr;
  obs::Counter* ck_rejected = nullptr;
  obs::Counter* co_failed = nullptr;
  obs::Histogram* staleness_hist = nullptr;
  obs::Histogram* update_hist = nullptr;

  CrowdSimResult result;

  RunState(const models::Model& m, const CrowdSimConfig& c,
           const SampleSource& src, const models::SampleSet& test,
           rng::Engine server_eng)
      : model(m),
        cfg(c),
        source(src),
        test_set(test),
        server(
            ServerConfig{
                m.param_dim(), m.num_classes(), c.max_server_iterations,
                c.target_error, /*min_samples_for_stopping=*/100,
                c.server_init_scale},
            CrowdSimulation::make_updater(c), server_eng),
        delay(c.delay ? c.delay.get() : nullptr),
        loss(c.loss_probability) {
    if (!delay) delay = &zero_delay;
    timeout_s = c.checkout_timeout_seconds > 0.0
                    ? c.checkout_timeout_seconds
                    : std::max(1.0 / c.sampling_rate_hz,
                               2.0 * std::max(delay->max_delay(), 0.0));
    if (c.metrics) {
      ck_applied = &c.metrics->counter(
          "crowdml_sim_checkins_applied_total",
          "Sanitized checkins the server accepted and applied",
          obs::Provenance::kSanitizedAggregate);
      ck_rejected = &c.metrics->counter(
          "crowdml_sim_checkins_rejected_total",
          "Checkins the server's validation refused",
          obs::Provenance::kSanitizedAggregate);
      co_failed = &c.metrics->counter(
          "crowdml_sim_checkouts_failed_total",
          "Checkout legs lost or refused (Remark 1 retry-later path)",
          obs::Provenance::kTransportEvent);
      staleness_hist = &c.metrics->histogram(
          "crowdml_sim_staleness_updates",
          "Server updates between a gradient's checkout and its apply "
          "(Section IV-B3)",
          obs::Provenance::kSanitizedAggregate,
          obs::exponential_bounds(1.0, 4.0, 10));
      update_hist = &c.metrics->histogram(
          "crowdml_server_update_seconds",
          "Server-side checkin handling: validate, record stats, apply",
          obs::Provenance::kTiming);
    }
  }

  void evaluate_at(long long x) {
    if (test_set.empty()) return;
    const linalg::Vector w = server.parameters();
    // Misclassification rate for classifiers, mean absolute error for
    // regressors — the curve's semantics follow the model kind.
    const double err = metrics::evaluate_model(model, w, test_set);
    result.test_error.record(static_cast<double>(x), err);
  }

  void maybe_evaluate() {
    while (samples_generated >= next_eval_mark &&
           next_eval_mark <= cfg.max_total_samples) {
      evaluate_at(next_eval_mark);
      next_eval_mark += eval_interval;
    }
  }

  void finish() {
    if (done) return;
    done = true;
    simulator.clear();
  }

  void record_online(const std::vector<bool>& outcomes) {
    for (bool wrong : outcomes) {
      ++online_preds;
      if (wrong) ++online_errs;
      if (cfg.track_online_error)
        result.online_error.record(
            static_cast<double>(online_preds),
            static_cast<double>(online_errs) / static_cast<double>(online_preds));
    }
  }

  void corrupt_gradient(linalg::Vector& g) {
    switch (cfg.attack) {
      case AttackKind::kNone:
        break;
      case AttackKind::kRandomNoise:
        for (double& v : g) v = rng::normal(attack_eng, 0.0, cfg.attack_magnitude);
        break;
      case AttackKind::kSignFlip:
        linalg::scal(-cfg.attack_magnitude, g);
        break;
      case AttackKind::kLargeGradient:
        linalg::scal(cfg.attack_magnitude, g);
        break;
    }
  }

  void deliver_checkin(net::CheckinMessage msg) {
    const std::uint64_t version_before = server.version();
    net::AckMessage ack;
    if (update_hist) {
      obs::TimedScope timer(*update_hist);
      ack = server.handle_checkin(msg);
    } else {
      ack = server.handle_checkin(msg);
    }
    if (ack.ok) {
      result.samples_consumed += msg.ns;
      const std::uint64_t staleness = version_before >= msg.param_version
                                          ? version_before - msg.param_version
                                          : 0;
      if (ck_applied) ++*ck_applied;
      if (staleness_hist)
        staleness_hist->observe(static_cast<double>(staleness));
      if (cfg.trace)
        cfg.trace->event("update_applied", {{"device", msg.device_id},
                                            {"round", msg.param_version},
                                            {"staleness", staleness}});
    } else {
      if (ck_rejected) ++*ck_rejected;
      if (cfg.trace)
        cfg.trace->event("checkin_rejected",
                         {{"device", msg.device_id}, {"reason", ack.reason}});
    }
    if (server.stopped()) finish();
  }

  void on_params(std::size_t i, net::ParamsMessage params) {
    if (done) return;
    Device& dev = devices[i];
    if (!params.accepted) {
      ++checkouts_failed;
      if (co_failed) ++*co_failed;
      dev.on_checkout_failed();
      return;
    }
    if (dev.buffered() == 0) {
      // Possible if a timeout already reset the flag and a later checkout
      // consumed the buffer; nothing to do.
      dev.on_checkout_failed();
      return;
    }
    CheckinResult ci = dev.compute_checkin(params.w, params.version);
    record_online(ci.misclassified);
    if (malicious[i]) corrupt_gradient(ci.message.g_hat);
    if (loss.drop(delay_eng)) return;  // lost checkin is non-critical (Remark 1)
    const double tau_ci = delay->sample(delay_eng);
    simulator.schedule_after(
        tau_ci, [this, msg = std::move(ci.message)]() mutable {
          if (!done) deliver_checkin(std::move(msg));
        });
  }

  void initiate_checkout(std::size_t i) {
    Device& dev = devices[i];
    dev.begin_checkout();
    if (cfg.trace) cfg.trace->event("checkout", {{"device", dev.id()}});
    if (loss.drop(delay_eng)) {
      ++checkouts_failed;
      if (co_failed) ++*co_failed;
      simulator.schedule_after(timeout_s, [this, i] {
        if (!done && devices[i].checkout_in_flight())
          devices[i].on_checkout_failed();
      });
      return;
    }
    const double tau_req = delay->sample(delay_eng);
    simulator.schedule_after(tau_req, [this, i] {
      if (done) return;
      net::ParamsMessage params = server.handle_checkout(devices[i].id());
      if (loss.drop(delay_eng)) {
        ++checkouts_failed;
        if (co_failed) ++*co_failed;
        simulator.schedule_after(timeout_s, [this, i] {
          if (!done && devices[i].checkout_in_flight())
            devices[i].on_checkout_failed();
        });
        return;
      }
      const double tau_co = delay->sample(delay_eng);
      simulator.schedule_after(tau_co,
                               [this, i, params = std::move(params)]() mutable {
                                 on_params(i, std::move(params));
                               });
    });
  }

  double next_sample_interval() {
    return cfg.poisson_sampling
               ? rng::exponential(sampling_eng, cfg.sampling_rate_hz)
               : 1.0 / cfg.sampling_rate_hz;
  }

  void on_sample_arrival(std::size_t i) {
    if (done) return;
    if (!cfg.churn.online_at(simulator.now(), churn_states[i], churn_eng)) {
      simulator.schedule_after(next_sample_interval(),
                               [this, i] { on_sample_arrival(i); });
      return;
    }
    auto s = source(i);
    if (!s) return;  // device's stream ended; it leaves the crowd
    ++samples_generated;
    if (!devices[i].on_sample(std::move(*s))) ++result.samples_dropped;
    maybe_evaluate();
    if (samples_generated >= cfg.max_total_samples) {
      finish();
      return;
    }
    if (devices[i].wants_checkout()) initiate_checkout(i);
    simulator.schedule_after(next_sample_interval(),
                             [this, i] { on_sample_arrival(i); });
  }
};

}  // namespace

CrowdSimulation::CrowdSimulation(const models::Model& model,
                                 CrowdSimConfig config)
    : model_(model), config_(std::move(config)) {
  assert(config_.num_devices >= 1);
  assert(config_.sampling_rate_hz > 0.0);
  assert(config_.max_total_samples > 0);
  assert(config_.eval_points >= 1);
}

CrowdSimResult CrowdSimulation::run(const SampleSource& source,
                                    const models::SampleSet& test_set) {
  rng::Engine root(config_.seed);
  rng::Engine server_eng = root.split(0xC0FFEE);

  RunState st(model_, config_, source, test_set, server_eng);
  st.delay_eng = root.split(0xDE1A7);
  st.churn_eng = root.split(0xC4012);
  st.attack_eng = root.split(0xA77AC);
  st.sampling_eng = root.split(0x5A301E);
  st.eval_interval =
      std::max<long long>(1, config_.max_total_samples /
                                 static_cast<long long>(config_.eval_points));
  st.next_eval_mark = st.eval_interval;

  st.devices.reserve(config_.num_devices);
  st.churn_states.reserve(config_.num_devices);
  for (std::size_t i = 0; i < config_.num_devices; ++i) {
    DeviceConfig dc;
    dc.device_id = i + 1;
    dc.minibatch_size = config_.minibatch_size;
    dc.max_buffer = config_.max_buffer;
    dc.budget = config_.budget;
    dc.holdout_fraction = config_.holdout_fraction;
    st.devices.emplace_back(dc, model_, root.split(1000 + i));
    st.churn_states.push_back(config_.churn.initial_state(st.churn_eng));
  }

  // Designate malignant devices (Section III-C threat model).
  st.malicious.assign(config_.num_devices, false);
  if (config_.attack != AttackKind::kNone && config_.malicious_fraction > 0.0) {
    const auto count = static_cast<std::size_t>(
        std::ceil(config_.malicious_fraction *
                  static_cast<double>(config_.num_devices)));
    const auto order = rng::shuffled_indices(st.attack_eng, config_.num_devices);
    for (std::size_t i = 0; i < std::min(count, order.size()); ++i)
      st.malicious[order[i]] = true;
  }

  // Initial evaluation at x = 0 (random parameters).
  st.evaluate_at(0);

  // Stagger device sampling phases uniformly over one period.
  rng::Engine phase_eng = root.split(0x9A5E);
  const double interval = 1.0 / config_.sampling_rate_hz;
  for (std::size_t i = 0; i < config_.num_devices; ++i) {
    const double phase = rng::uniform(phase_eng, 0.0, interval);
    st.simulator.schedule_at(phase, [&st, i] { st.on_sample_arrival(i); });
  }

  st.simulator.run();

  // Drain: one final evaluation at the end mark.
  st.maybe_evaluate();
  if (st.result.test_error.empty() && !test_set.empty())
    st.evaluate_at(st.samples_generated);

  CrowdSimResult result = std::move(st.result);
  result.final_test_error =
      result.test_error.empty() ? 1.0 : result.test_error.final_value();
  result.final_parameters = st.server.parameters();
  result.server_updates = st.server.version();
  result.samples_generated = st.samples_generated;
  result.checkouts_failed = st.checkouts_failed;
  result.server_estimated_error = st.server.estimated_error();
  result.mean_staleness = st.server.mean_staleness();
  result.max_staleness = st.server.max_staleness();
  result.estimated_prior = st.server.estimated_prior();
  result.per_sample_epsilon = st.devices.empty()
                                  ? 0.0
                                  : st.devices.front().accountant().per_sample_epsilon();
  return result;
}

}  // namespace crowdml::core
