// Edge-case sweep across modules: boundary sizes, degenerate inputs, and
// documented corner behaviors.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "data/mixture.hpp"
#include "linalg/eigen.hpp"
#include "linalg/pca.hpp"
#include "metrics/curves.hpp"
#include "models/logistic_regression.hpp"
#include "net/channel.hpp"
#include "net/codec.hpp"
#include "rng/distributions.hpp"
#include "sim/simulator.hpp"

using namespace crowdml;

TEST(EdgeCases, EigenOneByOne) {
  linalg::Matrix m(1, 1);
  m(0, 0) = 4.2;
  const auto e = linalg::eigen_symmetric(m);
  EXPECT_DOUBLE_EQ(e.values[0], 4.2);
  EXPECT_DOUBLE_EQ(e.vectors(0, 0), 1.0);
}

TEST(EdgeCases, EigenZeroMatrix) {
  const auto e = linalg::eigen_symmetric(linalg::Matrix(3, 3, 0.0));
  for (double v : e.values) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, PcaSingleSample) {
  // Covariance of one sample is zero: components exist, transform maps the
  // sample to the origin.
  linalg::Matrix samples(1, 3);
  samples.set_row(0, {1.0, 2.0, 3.0});
  linalg::Pca pca;
  pca.fit(samples, 2);
  const auto z = pca.transform(linalg::Vector{1.0, 2.0, 3.0});
  EXPECT_NEAR(z[0], 0.0, 1e-12);
  EXPECT_NEAR(z[1], 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(pca.explained_variance_ratio(), 0.0);
}

TEST(EdgeCases, PcaFullDimensionKeepsAllVariance) {
  rng::Engine eng(1);
  linalg::Matrix samples(40, 5);
  for (std::size_t r = 0; r < 40; ++r)
    for (std::size_t c = 0; c < 5; ++c) samples(r, c) = rng::normal(eng);
  linalg::Pca pca;
  pca.fit(samples, 5);
  EXPECT_NEAR(pca.explained_variance_ratio(), 1.0, 1e-9);
}

TEST(EdgeCases, CodecEmptyComposites) {
  net::Writer w;
  w.put_vector({});
  w.put_string("");
  w.put_bytes({});
  w.put_i64_vector({});
  net::Reader r(w.bytes());
  EXPECT_TRUE(r.get_vector().empty());
  EXPECT_TRUE(r.get_string().empty());
  EXPECT_TRUE(r.get_bytes().empty());
  EXPECT_TRUE(r.get_i64_vector().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(EdgeCases, ChannelTryReceiveAfterCloseDrains) {
  net::ByteChannel ch;
  ch.send({1});
  ch.close();
  EXPECT_TRUE(ch.try_receive().has_value());
  EXPECT_FALSE(ch.try_receive().has_value());
  EXPECT_TRUE(ch.closed());
}

TEST(EdgeCases, SimulatorZeroDelayCascadeAtSameTime) {
  sim::Simulator s;
  int order = 0, first = -1, second = -1;
  s.schedule_at(1.0, [&] {
    first = order++;
    s.schedule_after(0.0, [&] { second = order++; });
  });
  s.schedule_at(1.0, [&] { order++; });
  s.run();
  // The zero-delay follow-up runs after the already-queued same-time event
  // (FIFO by insertion sequence).
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 2);
}

TEST(EdgeCases, MinibatchSizeOneChecksOutEverySample) {
  models::MulticlassLogisticRegression model(2, 3, 0.0);
  core::DeviceConfig cfg;
  cfg.minibatch_size = 1;
  core::Device dev(cfg, model, rng::Engine(1));
  dev.on_sample(models::Sample({0.3, 0.3, 0.3}, 1.0));
  EXPECT_TRUE(dev.wants_checkout());
  dev.begin_checkout();
  const auto res = dev.compute_checkin(linalg::Vector(6, 0.0), 0);
  EXPECT_EQ(res.message.ns, 1);
}

TEST(EdgeCases, CurveTailMeanSinglePoint) {
  metrics::LearningCurve c;
  c.record(0, 0.5);
  EXPECT_DOUBLE_EQ(c.tail_mean(1), 0.5);
  EXPECT_DOUBLE_EQ(c.tail_mean(100), 0.5);
}

TEST(EdgeCases, MixtureMinimumSizes) {
  rng::Engine eng(2);
  data::MixtureSpec spec;
  spec.num_classes = 2;
  spec.raw_dim = 4;
  spec.latent_dim = 1;
  spec.pca_dim = 1;
  spec.train_size = 4;
  spec.test_size = 1;
  const auto ds = data::generate_mixture(spec, eng);
  EXPECT_EQ(ds.train.size(), 4u);
  EXPECT_EQ(ds.test.size(), 1u);
  EXPECT_EQ(ds.train[0].x.size(), 1u);
}

TEST(EdgeCases, UniformIndexLargeN) {
  rng::Engine eng(3);
  const std::uint64_t n = 1ull << 40;
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng::uniform_index(eng, n), n);
}

TEST(EdgeCases, LaplaceExtremeTails) {
  // The inverse-CDF sampler must stay finite even for u near +/- 0.5.
  rng::Engine eng(4);
  for (int i = 0; i < 200000; ++i)
    ASSERT_TRUE(std::isfinite(rng::laplace(eng, 1.0)));
}
