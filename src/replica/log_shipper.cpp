#include "replica/log_shipper.hpp"

#include <chrono>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "net/messages.hpp"

namespace crowdml::replica {

namespace {

obs::MetricsRegistry& registry_of(const ShipperOptions& opts) {
  return opts.metrics ? *opts.metrics : obs::default_registry();
}

}  // namespace

std::size_t quorum_follower_acks_for(std::size_t followers) {
  return (followers + 1) / 2;
}

LogShipper::LogShipper(core::Server& server, store::DurableStore& store,
                       std::uint64_t epoch, ShipperOptions options)
    : server_(server),
      store_(store),
      epoch_(epoch),
      opts_(options),
      lag_records_(registry_of(opts_).gauge(
          "crowdml_repl_lag_records",
          "WAL records the laggiest connected follower is behind the "
          "leader's committed tail (0 when no follower is connected)",
          obs::Provenance::kTransportEvent)),
      ship_seconds_(registry_of(opts_).histogram(
          "crowdml_repl_ship_seconds",
          "One replication batch: send + follower durable-append + ack",
          obs::Provenance::kTiming)),
      records_shipped_(registry_of(opts_).counter(
          "crowdml_repl_records_shipped_total",
          "WAL records streamed to followers (counted per session)",
          obs::Provenance::kTransportEvent)),
      snapshots_shipped_(registry_of(opts_).counter(
          "crowdml_repl_snapshots_shipped_total",
          "Full-state snapshots shipped because compaction outran a "
          "follower's cursor",
          obs::Provenance::kTransportEvent)),
      fenced_hellos_(registry_of(opts_).counter(
          "crowdml_repl_fenced_hellos_total",
          "Replication frames refused because the peer held a newer epoch",
          obs::Provenance::kTransportEvent)),
      quorum_timeouts_(registry_of(opts_).counter(
          "crowdml_repl_quorum_timeouts_total",
          "Checkin batches nacked because the follower quorum did not ack "
          "in time",
          obs::Provenance::kTransportEvent)),
      followers_connected_(registry_of(opts_).counter(
          "crowdml_repl_followers_connected_total",
          "Follower replication sessions accepted",
          obs::Provenance::kTransportEvent)) {
  auto listener = net::TcpListener::bind(opts_.bind_address, opts_.port);
  if (!listener)
    throw std::runtime_error("cannot bind replication port " +
                             opts_.bind_address + ":" +
                             std::to_string(opts_.port));
  listener_ = std::move(*listener);
  port_ = listener_.port();
  watermark_ = store_.wal().last_seq();
  acceptor_ = std::thread([this] { accept_loop(); });
}

LogShipper::~LogShipper() { shutdown(); }

void LogShipper::notify_committed() {
  {
    std::lock_guard<std::mutex> lock(watermark_mu_);
    watermark_ = store_.wal().last_seq();
  }
  watermark_cv_.notify_all();
}

bool LogShipper::await_quorum(std::uint64_t seq) {
  if (opts_.ack_mode != ReplAckMode::kQuorum) return true;
  if (fenced_.load() || stopping_.load()) return false;
  const bool ok = tracker_.await(
      seq, opts_.quorum_follower_acks, opts_.quorum_timeout_ms,
      [this] { return fenced_.load() || stopping_.load(); });
  if (!ok && !fenced_.load() && !stopping_.load()) ++quorum_timeouts_;
  return ok;
}

void LogShipper::fence(std::uint64_t observed_epoch) {
  fenced_.store(true);
  ++fenced_hellos_;
  if (opts_.trace)
    opts_.trace->event("repl_fenced", {{"epoch", epoch_},
                                       {"observed_epoch", observed_epoch}});
  tracker_.wake();
  watermark_cv_.notify_all();
}

void LogShipper::accept_loop() {
  while (!stopping_.load()) {
    auto conn = listener_.accept();
    if (!conn) break;  // listener closed
    conn->set_deadline_ms(opts_.io_deadline_ms);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (stopping_.load()) break;
    const std::uint64_t id = next_session_id_++;
    session_threads_.emplace_back(
        [this, id, c = std::move(*conn)]() mutable {
          session_loop(id, std::move(c));
        });
  }
}

void LogShipper::session_loop(std::uint64_t session_id,
                              net::TcpConnection conn) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    live_conns_[session_id] = &conn;
  }
  const bool want_ack = opts_.ack_mode != ReplAckMode::kNone;
  bool joined = false;
  std::uint64_t follower_id = 0;

  // One follower session: hello, then stream batches (or a snapshot when
  // compaction pruned the follower's resume point) until disconnect.
  do {
    auto hello_frame = conn.recv_frame();
    if (!hello_frame) break;
    net::ReplHelloMessage hello;
    try {
      const net::Frame f = net::decode_frame(*hello_frame);
      if (f.type != net::MessageType::kReplHello) break;
      hello = net::ReplHelloMessage::deserialize(f.payload);
    } catch (const net::CodecError&) {
      break;
    }
    if (hello.epoch > epoch_) {
      fence(hello.epoch);
      break;
    }
    follower_id = hello.follower_id;
    ++followers_connected_;
    tracker_.join(session_id);
    joined = true;
    // The follower already durably holds everything through its hello
    // position, so it counts toward quorums immediately.
    tracker_.ack(session_id, hello.last_seq);
    if (opts_.trace)
      opts_.trace->event("repl_follower_connected",
                         {{"follower_id", follower_id},
                          {"last_seq", hello.last_seq},
                          {"epoch", hello.epoch}});

    std::uint64_t cursor = hello.last_seq;
    bool alive = true;
    while (alive && !stopping_.load()) {
      std::uint64_t watermark;
      {
        std::lock_guard<std::mutex> lock(watermark_mu_);
        watermark = watermark_;
      }
      const ShipBatch batch =
          next_ship_batch(store_.dir(), cursor, watermark,
                          opts_.batch_max_records, opts_.batch_max_bytes);

      if (batch.gap) {
        // Compaction already pruned cursor+1: ship the full state and
        // resume streaming above the snapshot's version. The snapshot may
        // run ahead of the committed watermark (records applied in memory
        // but still pending durability ride along); that is the
        // nacked-but-durable-on-the-follower direction, which breaks no
        // promise.
        const core::ServerCheckpoint cp = core::checkpoint_server(server_);
        net::ReplSnapshotMessage snap;
        snap.epoch = epoch_;
        snap.want_ack = want_ack;
        snap.version = cp.version;
        snap.checkpoint = cp.serialize();
        if (!conn.send_frame(net::encode_frame(net::MessageType::kReplSnapshot,
                                               snap.serialize())))
          break;
        ++snapshots_shipped_;
        if (opts_.trace)
          opts_.trace->event("repl_snapshot_shipped",
                             {{"follower_id", follower_id},
                              {"version", cp.version}});
        cursor = cp.version;
      } else if (batch.records.empty()) {
        // Caught up: sleep until the next commit (or shutdown/fencing).
        std::unique_lock<std::mutex> lock(watermark_mu_);
        watermark_cv_.wait_for(lock, std::chrono::milliseconds(20), [&] {
          return stopping_.load() || watermark_ > cursor;
        });
        continue;
      } else {
        const auto started = std::chrono::steady_clock::now();
        net::ReplAppendMessage append;
        append.epoch = epoch_;
        append.want_ack = want_ack;
        append.records.reserve(batch.records.size());
        for (const auto& rec : batch.records)
          append.records.push_back({rec.seq, rec.payload});
        if (!conn.send_frame(net::encode_frame(net::MessageType::kReplAppend,
                                               append.serialize())))
          break;
        cursor = batch.records.back().seq;
        records_shipped_ += static_cast<long long>(batch.records.size());
        if (want_ack) {
          auto ack_frame = conn.recv_frame();
          if (!ack_frame) break;
          try {
            const net::Frame f = net::decode_frame(*ack_frame);
            if (f.type != net::MessageType::kReplAck) break;
            const auto ack = net::ReplAckMessage::deserialize(f.payload);
            if (ack.epoch > epoch_) {
              fence(ack.epoch);
              alive = false;
              break;
            }
            tracker_.ack(session_id, ack.durable_seq);
          } catch (const net::CodecError&) {
            break;
          }
          ship_seconds_.observe(
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            started)
                  .count());
        } else {
          // kNone: record the shipped position so lag is still reported;
          // this is *not* a durability claim and kNone never gates acks.
          tracker_.ack(session_id, cursor);
        }
      }

      // Lag = committed tail minus the laggiest live follower.
      std::uint64_t tail;
      {
        std::lock_guard<std::mutex> lock(watermark_mu_);
        tail = watermark_;
      }
      const std::uint64_t floor = tracker_.min_acked();
      lag_records_.set(tail > floor ? static_cast<double>(tail - floor) : 0.0);
    }
  } while (false);

  if (joined) {
    tracker_.leave(session_id);
    if (tracker_.sessions() == 0) lag_records_.set(0.0);
    if (opts_.trace)
      opts_.trace->event("repl_follower_disconnected",
                         {{"follower_id", follower_id}});
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    live_conns_.erase(session_id);
  }
}

void LogShipper::shutdown() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [_, conn] : live_conns_) conn->shutdown_both();
  }
  watermark_cv_.notify_all();
  tracker_.wake();
  for (auto& t : session_threads_)
    if (t.joinable()) t.join();
  session_threads_.clear();
}

}  // namespace crowdml::replica
