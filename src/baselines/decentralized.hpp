// Decentralized learning — "Decentral (SGD)" in Figs. 4 and 7.
//
// Every device runs its own SGD on its own 1/M-th of the data and never
// communicates. Privacy is trivially perfect; accuracy suffers from the
// M-times-smaller sample (Section IV-A's VC-theory argument), which is the
// high plateau the figures show.
//
// Reported error is the average test error over the device models. With
// M = 1000 devices and a 10000-sample test set a full evaluation at every
// grid point is O(10^14) flops, so the evaluator samples
// `eval_device_sample` devices and `eval_test_sample` test points — an
// unbiased estimate of the same mean (documented in EXPERIMENTS.md).
#pragma once

#include "data/dataset.hpp"
#include "metrics/curves.hpp"
#include "models/model.hpp"

namespace crowdml::baselines {

struct DecentralizedConfig {
  std::size_t num_devices = 1000;  // M
  double learning_rate_c = 1.0;
  double projection_radius = 100.0;
  long long max_total_samples = 300000;  // across all devices
  std::size_t eval_points = 50;
  std::size_t eval_device_sample = 25;   // devices per evaluation
  std::size_t eval_test_sample = 2000;   // test points per evaluation
  std::uint64_t seed = 1;
};

struct DecentralizedResult {
  metrics::LearningCurve test_error;  // x = total samples across devices
  double final_test_error = 1.0;
};

DecentralizedResult train_decentralized(const models::Model& model,
                                        const models::SampleSet& train,
                                        const models::SampleSet& test,
                                        const DecentralizedConfig& config);

}  // namespace crowdml::baselines
