// Tests for the differential-privacy mechanisms (Section III-C,
// Appendices A-C) including an empirical epsilon check on the Laplace
// mechanism.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "privacy/accountant.hpp"
#include "privacy/budget.hpp"
#include "privacy/mechanisms.hpp"
#include "rng/engine.hpp"

using namespace crowdml;
using privacy::kNoPrivacy;

TEST(Budget, EpsilonFromInverse) {
  EXPECT_TRUE(std::isinf(privacy::epsilon_from_inverse(0.0)));
  EXPECT_DOUBLE_EQ(privacy::epsilon_from_inverse(0.1), 10.0);
  EXPECT_DOUBLE_EQ(privacy::epsilon_from_inverse(2.0), 0.5);
}

TEST(Budget, NoneIsNotPrivate) {
  const auto b = privacy::PrivacyBudget::none();
  EXPECT_FALSE(b.is_private());
  EXPECT_TRUE(std::isinf(b.per_sample_epsilon(10)));
}

TEST(Budget, GradientDominatedSplit) {
  const auto b = privacy::PrivacyBudget::gradient_dominated(10.0, 0.01);
  EXPECT_TRUE(b.is_private());
  EXPECT_DOUBLE_EQ(b.eps_gradient, 10.0);
  EXPECT_DOUBLE_EQ(b.eps_error, 0.1);
  EXPECT_DOUBLE_EQ(b.eps_label, 0.1);
  // eps = eps_g + eps_e + C * eps_y (Appendix B Remark 1).
  EXPECT_NEAR(b.per_sample_epsilon(10), 10.0 + 0.1 + 10 * 0.1, 1e-12);
}

TEST(Budget, GradientDominatedInfinityStaysInfinite) {
  const auto b = privacy::PrivacyBudget::gradient_dominated(kNoPrivacy);
  EXPECT_FALSE(b.is_private());
}

TEST(Mechanisms, NoPrivacyIsIdentity) {
  rng::Engine eng(1);
  const linalg::Vector v{1.0, -2.0, 3.0};
  EXPECT_EQ(privacy::sanitize_vector(eng, v, 4.0, kNoPrivacy), v);
  EXPECT_EQ(privacy::sanitize_count(eng, 17, kNoPrivacy), 17);
  EXPECT_EQ(privacy::perturb_label(eng, 3, 10, kNoPrivacy), 3);
  EXPECT_EQ(privacy::perturb_features(eng, v, kNoPrivacy), v);
}

TEST(Mechanisms, ZeroSensitivityAddsNoNoise) {
  rng::Engine eng(2);
  const linalg::Vector v{1.0, 2.0};
  EXPECT_EQ(privacy::sanitize_vector(eng, v, 0.0, 1.0), v);
}

TEST(Mechanisms, LaplaceNoiseVarianceFormula) {
  EXPECT_DOUBLE_EQ(privacy::laplace_noise_variance(4.0, 2.0), 8.0);
  EXPECT_DOUBLE_EQ(privacy::laplace_noise_variance(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(privacy::laplace_noise_variance(4.0, kNoPrivacy), 0.0);
}

// Empirical variance of the sanitized vector matches 2 (S/eps)^2 per
// coordinate — the noise term of the Eq. (13) trade-off.
class LaplaceVariance
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LaplaceVariance, MatchesTheory) {
  const auto [sens, eps] = GetParam();
  rng::Engine eng(99);
  const int n = 200000;
  double sumsq = 0.0, sum = 0.0;
  const linalg::Vector zero{0.0};
  for (int i = 0; i < n; ++i) {
    const double z = privacy::sanitize_vector(eng, zero, sens, eps)[0];
    sum += z;
    sumsq += z * z;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  const double expected = privacy::laplace_noise_variance(sens, eps);
  EXPECT_NEAR(var, expected, 0.1 * expected);
  EXPECT_NEAR(mean, 0.0, 0.05 * std::sqrt(expected));
}

INSTANTIATE_TEST_SUITE_P(
    Params, LaplaceVariance,
    ::testing::Values(std::pair{4.0, 10.0}, std::pair{0.4, 10.0},
                      std::pair{4.0, 1.0}, std::pair{0.04, 0.5}));

// Empirical differential privacy of the Laplace mechanism: for two
// adjacent outputs f(D)=0, f(D')=S, the histogram ratio over any bin must
// be bounded by e^eps (up to sampling noise).
TEST(Mechanisms, EmpiricalEpsilonBound) {
  const double eps = 1.0;
  const double sens = 1.0;
  rng::Engine eng1(7), eng2(8);
  const int n = 400000;
  const double bin_width = 0.25;
  std::map<int, int> h1, h2;
  for (int i = 0; i < n; ++i) {
    const double a = privacy::sanitize_vector(eng1, {0.0}, sens, eps)[0];
    const double b = privacy::sanitize_vector(eng2, {1.0}, sens, eps)[0];
    ++h1[static_cast<int>(std::floor(a / bin_width))];
    ++h2[static_cast<int>(std::floor(b / bin_width))];
  }
  // Check bins with enough mass on both sides.
  for (const auto& [bin, c1] : h1) {
    const auto it = h2.find(bin);
    if (it == h2.end()) continue;
    const int c2 = it->second;
    if (c1 < 2000 || c2 < 2000) continue;
    const double ratio = static_cast<double>(c1) / c2;
    EXPECT_LE(ratio, std::exp(eps) * 1.15) << "bin " << bin;
    EXPECT_GE(ratio, std::exp(-eps) / 1.15) << "bin " << bin;
  }
}

TEST(Mechanisms, SanitizedCountIsUnbiased) {
  rng::Engine eng(3);
  const double eps = 0.5;
  const int n = 200000;
  long long sum = 0;
  for (int i = 0; i < n; ++i) sum += privacy::sanitize_count(eng, 10, eps);
  EXPECT_NEAR(static_cast<double>(sum) / n, 10.0, 0.1);
}

TEST(Mechanisms, SanitizedCountCanGoNegative) {
  // Appendix B Remark 2: n^ may be negative with small probability.
  rng::Engine eng(4);
  bool negative_seen = false;
  for (int i = 0; i < 10000 && !negative_seen; ++i)
    negative_seen = privacy::sanitize_count(eng, 0, 0.5) < 0;
  EXPECT_TRUE(negative_seen);
}

TEST(Mechanisms, LabelPerturbationKeepProbability) {
  // P(keep) = e^{eps/2} / (e^{eps/2} + C - 1) for Eq. (16)'s score.
  rng::Engine eng(5);
  const double eps = 2.0;
  const std::size_t C = 5;
  const int n = 200000;
  int kept = 0;
  std::vector<int> counts(C, 0);
  for (int i = 0; i < n; ++i) {
    const int y = privacy::perturb_label(eng, 2, C, eps);
    ++counts[static_cast<std::size_t>(y)];
    if (y == 2) ++kept;
  }
  const double expected =
      std::exp(eps / 2.0) / (std::exp(eps / 2.0) + static_cast<double>(C - 1));
  EXPECT_NEAR(kept / static_cast<double>(n), expected, 0.01);
  // All other labels equally likely.
  const double other = (1.0 - expected) / static_cast<double>(C - 1);
  for (std::size_t k = 0; k < C; ++k) {
    if (k == 2) continue;
    EXPECT_NEAR(counts[k] / static_cast<double>(n), other, 0.01);
  }
}

TEST(Mechanisms, FeaturePerturbationScale) {
  // Eq. (15): per-coordinate Laplace of scale 2/eps -> variance 8/eps^2.
  rng::Engine eng(6);
  const double eps = 4.0;
  const int n = 200000;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = privacy::perturb_features(eng, {0.0}, eps)[0];
    sumsq += z * z;
  }
  EXPECT_NEAR(sumsq / n, 8.0 / (eps * eps), 0.05);
}

TEST(Mechanisms, GaussianVarianceMatchesAnalyticSigma) {
  rng::Engine eng(7);
  const double eps = 1.0, delta = 1e-5, sens = 2.0;
  const double sigma = sens * std::sqrt(2.0 * std::log(1.25 / delta)) / eps;
  const int n = 200000;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z =
        privacy::sanitize_vector_gaussian(eng, {0.0}, sens, eps, delta)[0];
    sumsq += z * z;
  }
  EXPECT_NEAR(sumsq / n, sigma * sigma, 0.02 * sigma * sigma);
}

TEST(Mechanisms, GaussianNoPrivacyIdentity) {
  rng::Engine eng(8);
  const linalg::Vector v{1.0, 2.0};
  EXPECT_EQ(privacy::sanitize_vector_gaussian(eng, v, 2.0, kNoPrivacy, 1e-5), v);
}

TEST(Accountant, RecordsCheckinsAndSamples) {
  privacy::PrivacyAccountant acc(privacy::PrivacyBudget::gradient_dominated(5.0),
                                 10);
  acc.record_checkin(20);
  acc.record_checkin(20);
  EXPECT_EQ(acc.checkins(), 2);
  EXPECT_EQ(acc.samples_released(), 40);
}

TEST(Accountant, PerSampleEpsilonIndependentOfCheckins) {
  privacy::PrivacyAccountant acc(privacy::PrivacyBudget::gradient_dominated(5.0),
                                 4);
  const double before = acc.per_sample_epsilon();
  acc.record_checkin(10);
  acc.record_checkin(10);
  EXPECT_DOUBLE_EQ(acc.per_sample_epsilon(), before);
  // Sequential bound grows linearly.
  EXPECT_DOUBLE_EQ(acc.sequential_epsilon(), 2.0 * before);
}
