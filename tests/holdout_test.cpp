// Tests for Remark 2's holdout mode: held-out samples are excluded from
// the gradient, the error counter covers only them, and the server-side
// Eq. (14) estimate is consequently scaled by the holdout fraction.
#include <gtest/gtest.h>

#include "core/crowd_simulation.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"

using namespace crowdml;

namespace {

data::Dataset dataset() {
  rng::Engine eng(9090);
  data::MixtureSpec spec;
  spec.num_classes = 4;
  spec.raw_dim = 40;
  spec.latent_dim = 15;
  spec.pca_dim = 10;
  spec.separation = 3.5;
  spec.train_size = 3000;
  spec.test_size = 600;
  return data::generate_mixture(spec, eng);
}

core::CrowdSimResult run(const data::Dataset& ds, double holdout,
                         std::size_t b = 10) {
  models::MulticlassLogisticRegression model(4, 10, 0.0);
  core::CrowdSimConfig cfg;
  cfg.num_devices = 50;
  cfg.minibatch_size = b;
  cfg.holdout_fraction = holdout;
  cfg.max_total_samples = 9000;
  cfg.eval_points = 4;
  cfg.track_online_error = true;
  cfg.learning_rate_c = 50.0;
  cfg.projection_radius = 500.0;
  cfg.seed = 77;
  rng::Engine shard_eng(3);
  auto shards = data::shard_across_devices(ds.train, cfg.num_devices, shard_eng);
  core::CrowdSimulation sim(model, cfg);
  return sim.run(core::make_cycling_source(std::move(shards)), ds.test);
}

}  // namespace

TEST(Holdout, StillLearnsWithHalfTheGradientData) {
  const data::Dataset ds = dataset();
  const auto res = run(ds, 0.5);
  EXPECT_LT(res.final_test_error, 0.12);
}

TEST(Holdout, ServerEstimateScalesWithFraction) {
  // Without privacy, the server's Eq. (14) estimate equals
  // (errors on held-out samples) / (all samples) ~ f * true online error.
  const data::Dataset ds = dataset();
  const auto full = run(ds, 0.0);
  const auto half = run(ds, 0.5);
  ASSERT_GT(full.server_estimated_error, 0.0);
  const double rescaled = half.server_estimated_error / 0.5;
  // The rescaled holdout estimate recovers the same order as the full
  // estimate (they differ in which samples are scored, so allow slack).
  EXPECT_GT(rescaled, 0.5 * full.server_estimated_error);
  EXPECT_LT(rescaled, 2.0 * full.server_estimated_error);
  // And the raw holdout estimate is clearly below the full one.
  EXPECT_LT(half.server_estimated_error,
            0.75 * full.server_estimated_error);
}

TEST(Holdout, HeldOutErrorsLessBiasedThanTrainingErrors) {
  // Held-out samples never contribute to the gradient that was computed
  // with the same w used to score them at later checkins, making their
  // error counts an (almost) unbiased progress signal. Functionally we
  // check both modes produce comparable online error trajectories.
  const data::Dataset ds = dataset();
  const auto with_holdout = run(ds, 0.3);
  EXPECT_FALSE(with_holdout.online_error.empty());
  EXPECT_LT(with_holdout.online_error.final_value(), 0.35);
}
