#include "engine/snapshot_board.hpp"

namespace crowdml::engine {

namespace {

obs::MetricsRegistry& registry_of(obs::MetricsRegistry* metrics) {
  return metrics ? *metrics : obs::default_registry();
}

}  // namespace

ModelSnapshotBoard::ModelSnapshotBoard(obs::MetricsRegistry* metrics)
    : publishes_(registry_of(metrics).counter(
          "crowdml_engine_snapshot_publishes_total",
          "Model snapshots published to the checkout board",
          obs::Provenance::kTransportEvent)),
      age_seconds_gauge_(registry_of(metrics).gauge(
          "crowdml_engine_snapshot_age_seconds",
          "Seconds since the serving snapshot was last republished",
          obs::Provenance::kTiming)) {}

void ModelSnapshotBoard::publish(const core::Server& server) {
  auto snap = std::make_shared<ModelSnapshot>();
  // version/stopped/parameters are separate locked reads; they form a
  // coherent snapshot because the caller guarantees no concurrent
  // checkin application (see header contract).
  net::ParamsMessage msg;
  msg.version = server.version();
  msg.accepted = !server.stopped();
  if (msg.accepted) msg.w = server.parameters();
  snap->version = msg.version;
  snap->accepted = msg.accepted;
  snap->params_frame =
      net::encode_frame(net::MessageType::kParams, msg.serialize());
  snap->published_at = std::chrono::steady_clock::now();
  current_.store(std::move(snap), std::memory_order_release);
  ++publishes_;
  age_seconds_gauge_.set(0.0);
}

std::shared_ptr<const ModelSnapshot> ModelSnapshotBoard::current() const {
  return current_.load(std::memory_order_acquire);
}

std::uint64_t ModelSnapshotBoard::version() const {
  const auto snap = current();
  return snap ? snap->version : 0;
}

double ModelSnapshotBoard::age_seconds() const {
  const auto snap = current();
  if (!snap) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       snap->published_at)
      .count();
}

void ModelSnapshotBoard::refresh_age_gauge() {
  age_seconds_gauge_.set(age_seconds());
}

}  // namespace crowdml::engine
