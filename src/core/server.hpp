// Server-side Crowd-ML (Algorithm 2, Server Routines 1-2).
//
// The server owns the parameters w, applies one update per checkin
// (w <- Pi_W[w - eta(t) g^], Eq. 3, or any pluggable opt::Updater per
// Remark 3), tracks per-device noisy statistics N_s / N_e / N_y, estimates
// the crowd error rate and label prior from them (Eq. 14), and stops when
// t >= T_max or the estimated error falls below rho.
//
// Thread-safe: checkouts and checkins may arrive concurrently from the
// threaded/TCP runtimes. Authentication lives at the protocol boundary
// (net::ProtocolServer); this class trusts its callers but still validates
// every checkin payload (dimension, finiteness) so a malformed message can
// never poison w.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "net/messages.hpp"
#include "opt/updater.hpp"
#include "rng/engine.hpp"

namespace crowdml::core {

struct ServerConfig {
  std::size_t param_dim = 0;
  std::size_t num_classes = 2;
  long long max_iterations = -1;  // T_max; -1 = unlimited
  double target_error = -1.0;     // rho; < 0 disables the error criterion
  /// Minimum total reported samples before the rho criterion can fire
  /// (noisy counts on few samples are meaningless).
  long long min_samples_for_stopping = 100;
  double init_scale = 0.0;  // |w_i(0)| ~ uniform(-s, s); 0 = zero init
};

struct DeviceStats {
  long long samples = 0;       // N_s^m (true count, public)
  long long errors_hat = 0;    // N_e^m (noisy)
  std::vector<long long> label_counts_hat;  // N_y^{k,m} (noisy)
  long long checkins = 0;
};

class Server {
 public:
  Server(ServerConfig config, std::unique_ptr<opt::Updater> updater,
         rng::Engine eng);

  /// Server Routine 1: current parameters + version. `accepted` is false
  /// once the stopping criteria are met.
  net::ParamsMessage handle_checkout(std::uint64_t device_id);

  /// Server Routine 2: validate, record stats, apply the update.
  net::AckMessage handle_checkin(const net::CheckinMessage& msg);

  /// Snapshot of the current parameters (copy; thread-safe).
  linalg::Vector parameters() const;

  /// Server iteration t (number of applied checkins).
  std::uint64_t version() const;

  /// Total samples reported across the crowd (sum of N_s^m).
  long long total_samples() const;

  /// Eq. (14): sum N_e / sum N_s (clamped to [0, 1]; 0 before any data).
  double estimated_error() const;

  /// Eq. (14): estimated label prior P(y=k) (clamped to >= 0, normalized).
  linalg::Vector estimated_prior() const;

  bool stopped() const;

  DeviceStats device_stats(std::uint64_t device_id) const;
  std::unordered_map<std::uint64_t, DeviceStats> all_device_stats() const;
  std::size_t devices_seen() const;

  /// Restore learning state from a checkpoint (see core/checkpoint.hpp).
  /// Totals are recomputed from the per-device stats; the updater's
  /// iteration counter resumes at `version`. Throws std::invalid_argument
  /// on a dimension mismatch.
  void restore(const linalg::Vector& w, std::uint64_t version,
               const std::unordered_map<std::uint64_t, DeviceStats>& stats);

  /// Draw-and-discard discard step (multimodel::ModelInstancePool):
  /// replace w wholesale with another instance's parameters. Counts as
  /// one model update — the version and the updater's step clock both
  /// advance, so `steps == version` (what checkpoint restore assumes)
  /// stays an invariant and WAL replay of an overwrite record lands on
  /// the same schedule state as the never-crashed instance. Device stats
  /// are untouched: they account sanitized *observations*, not the model
  /// lineage. Returns the new version. Throws std::invalid_argument on a
  /// dimension mismatch.
  std::uint64_t overwrite_parameters(const linalg::Vector& w);

  /// Durability hook, invoked under the state lock after every applied
  /// checkin — in version order, with the message and the iteration it
  /// produced — and before the ack is returned. A durability layer (see
  /// store::DurableStore) appends the record to its write-ahead log here,
  /// so an ack only ever leaves for a persisted update. Returning false
  /// turns the ack into a nack ("durability failure"): the update stays
  /// applied in memory, but the device is never told its checkin is safe
  /// when it is not. The hook must not call back into the server and must
  /// not throw.
  using AppliedHook =
      std::function<bool(const net::CheckinMessage& msg, std::uint64_t version)>;
  void set_applied_hook(AppliedHook hook);

  /// Checkins rejected by validation (bad dimension / non-finite values).
  long long rejected_checkins() const;

  /// Mean parameter staleness over applied checkins: how many server
  /// updates happened between a gradient's checkout and its arrival.
  /// Section IV-B3 predicts roughly (tau_co + tau_ci) * M * Fs / b.
  double mean_staleness() const;
  std::uint64_t max_staleness() const;

 private:
  bool stopping_criteria_met_locked() const;

  ServerConfig config_;
  std::unique_ptr<opt::Updater> updater_;

  mutable std::mutex mu_;
  linalg::Vector w_;
  std::uint64_t version_ = 0;
  std::unordered_map<std::uint64_t, DeviceStats> stats_;
  long long total_samples_ = 0;
  long long total_errors_hat_ = 0;
  std::vector<long long> total_label_counts_hat_;
  long long rejected_ = 0;
  std::uint64_t staleness_sum_ = 0;
  std::uint64_t staleness_max_ = 0;
  AppliedHook applied_hook_;
};

}  // namespace crowdml::core
