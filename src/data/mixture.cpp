#include "data/mixture.hpp"

#include <cassert>
#include <cmath>

#include "linalg/matrix.hpp"
#include "rng/distributions.hpp"

namespace crowdml::data {

namespace {

linalg::Matrix random_loading(rng::Engine& eng, std::size_t rows,
                              std::size_t cols) {
  linalg::Matrix m(rows, cols);
  const double scale = 1.0 / std::sqrt(static_cast<double>(cols));
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng::normal(eng) * scale;
  return m;
}

std::vector<linalg::Vector> class_means(rng::Engine& eng,
                                        std::size_t num_classes,
                                        std::size_t latent_dim,
                                        double separation) {
  std::vector<linalg::Vector> means(num_classes);
  for (auto& mu : means) {
    mu.resize(latent_dim);
    for (double& v : mu) v = rng::normal(eng);
    linalg::l2_normalize(mu);
    linalg::scal(separation, mu);
  }
  return means;
}

}  // namespace

Dataset generate_mixture(const MixtureSpec& spec, rng::Engine& eng) {
  assert(spec.num_classes >= 2 && spec.latent_dim >= 1);
  assert(spec.pca_dim >= 1 && spec.pca_dim <= spec.raw_dim);
  assert(spec.train_size > 0 && spec.test_size > 0);

  const auto means = class_means(eng, spec.num_classes, spec.latent_dim,
                                 spec.separation);
  const linalg::Matrix loading =
      random_loading(eng, spec.raw_dim, spec.latent_dim);

  const std::size_t total = spec.train_size + spec.test_size;
  linalg::Matrix raws(total, spec.raw_dim);
  std::vector<int> labels(total);
  linalg::Vector latent(spec.latent_dim);
  for (std::size_t i = 0; i < total; ++i) {
    const auto y = static_cast<int>(rng::uniform_index(eng, spec.num_classes));
    labels[i] = y;
    const linalg::Vector& mu = means[static_cast<std::size_t>(y)];
    for (std::size_t l = 0; l < spec.latent_dim; ++l)
      latent[l] = mu[l] + rng::normal(eng) * spec.latent_sigma;
    linalg::Vector raw = loading.multiply(latent);
    for (double& v : raw) v += rng::normal(eng) * spec.ambient_sigma;
    raws.set_row(i, raw);
  }

  // Fit PCA on the training rows only (no test leakage).
  linalg::Matrix train_raws(spec.train_size, spec.raw_dim);
  for (std::size_t i = 0; i < spec.train_size; ++i)
    train_raws.set_row(i, raws.row(i));
  linalg::Pca pca;
  pca.fit(train_raws, spec.pca_dim);

  Dataset ds;
  ds.num_classes = spec.num_classes;
  ds.feature_dim = spec.pca_dim;
  ds.train.reserve(spec.train_size);
  ds.test.reserve(spec.test_size);
  for (std::size_t i = 0; i < total; ++i) {
    Sample s(pca.transform(raws.row(i)), static_cast<double>(labels[i]));
    (i < spec.train_size ? ds.train : ds.test).push_back(std::move(s));
  }
  l1_normalize_features(ds.train);
  l1_normalize_features(ds.test);
  return ds;
}

MixtureSpec mnist_like_spec(double scale) {
  assert(scale > 0.0 && scale <= 1.0);
  MixtureSpec spec;
  spec.num_classes = 10;
  spec.raw_dim = 200;
  spec.latent_dim = 60;
  spec.pca_dim = 50;
  // Calibrated so batch multiclass logistic regression lands near the
  // paper's ~0.10 MNIST test error (see tests/mixture_calibration_test).
  spec.separation = 3.2;
  spec.latent_sigma = 1.0;
  spec.ambient_sigma = 0.1;
  spec.train_size = static_cast<std::size_t>(60000 * scale);
  spec.test_size = static_cast<std::size_t>(10000 * scale);
  return spec;
}

MixtureSpec cifar_like_spec(double scale) {
  assert(scale > 0.0 && scale <= 1.0);
  MixtureSpec spec;
  spec.num_classes = 10;
  spec.raw_dim = 300;
  spec.latent_dim = 120;
  spec.pca_dim = 100;
  // Calibrated near the paper's ~0.30 CIFAR-10 test error.
  spec.separation = 2.4;
  spec.latent_sigma = 1.0;
  spec.ambient_sigma = 0.1;
  spec.train_size = static_cast<std::size_t>(50000 * scale);
  spec.test_size = static_cast<std::size_t>(10000 * scale);
  return spec;
}

Dataset make_mnist_like(rng::Engine& eng, double scale) {
  return generate_mixture(mnist_like_spec(scale), eng);
}

Dataset make_cifar_like(rng::Engine& eng, double scale) {
  return generate_mixture(cifar_like_spec(scale), eng);
}

}  // namespace crowdml::data
