// Monitoring report — the text equivalent of the paper's web portal
// ("displays timely statistics about crowd-learning applications such as
// error rates and activity label distributions, which are differentially
// private", Section V-A).
//
// Everything in the report derives from the sanitized checkins the server
// already holds, so publishing it costs no additional privacy budget.
//
// NetCounters adds the transport-health side of the portal: timeouts,
// retries, reconnects and connection-management events from the live TCP
// runtime. These count network events, never sample data, so they are
// publishable for the same reason.
#pragma once

#include <atomic>
#include <string>

#include "core/server.hpp"

namespace crowdml::core {

/// Plain-value copy of NetCounters at one instant.
struct NetCountersSnapshot {
  long long timeouts = 0;
  long long retries = 0;
  long long reconnects = 0;
  long long checkins_abandoned = 0;
  long long accepted_connections = 0;
  long long refused_connections = 0;
  long long idle_closed = 0;
  long long reaped_workers = 0;
};

/// Shared transport-health counters. Device sessions record timeouts,
/// retries, reconnects and abandoned checkins; TcpCrowdServer records
/// accept/refuse/idle-close/reap events. All fields are atomics so the
/// runtime threads and the portal reader never race.
class NetCounters {
 public:
  std::atomic<long long> timeouts{0};
  std::atomic<long long> retries{0};
  std::atomic<long long> reconnects{0};
  std::atomic<long long> checkins_abandoned{0};
  std::atomic<long long> accepted_connections{0};
  std::atomic<long long> refused_connections{0};
  std::atomic<long long> idle_closed{0};
  std::atomic<long long> reaped_workers{0};

  NetCountersSnapshot snapshot() const;
};

struct MonitorOptions {
  /// Show at most this many per-device rows (largest contributors first).
  std::size_t max_device_rows = 10;
  /// Optional class names for the label-prior section (size must match
  /// num_classes when provided).
  std::vector<std::string> class_names;
};

/// Render the portal report for the current server state.
std::string portal_report(const Server& server, const MonitorOptions& options);
std::string portal_report(const Server& server);

/// Portal report plus a transport-health section from the TCP runtime.
std::string portal_report(const Server& server, const MonitorOptions& options,
                          const NetCountersSnapshot& net);

/// Just the transport-health section (appended by the overload above).
std::string transport_report(const NetCountersSnapshot& net);

}  // namespace crowdml::core
