// Lock-free checkout serving: a versioned, atomically published model
// snapshot.
//
// In the thread-per-connection runtime every checkout takes the server's
// state lock to copy w (Server Routine 1). At scale that lock is the
// bottleneck: checkouts are pure reads (handle_checkout mutates nothing),
// yet they serialize against every checkin's SGD update. The board fixes
// this with RCU-style publication: the applier thread builds a complete
// snapshot — version, accepted flag, and the *pre-encoded* kParams
// response frame — and publishes it with one atomic shared_ptr store.
// I/O threads serve a checkout by loading the pointer and writing the
// ready-made frame; they never touch the server, its lock, or the codec.
//
// Freshness: the applier republishes after every drained checkin batch,
// so a served snapshot is at most one in-flight batch behind the true
// state — the same staleness window Section IV-B3 already budgets for
// (a device's gradient is computed against a w that aged in transit).
// The snapshot-age gauge makes the window observable.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "core/server.hpp"
#include "net/messages.hpp"
#include "obs/metrics.hpp"

namespace crowdml::engine {

/// One published model state. Immutable after construction.
struct ModelSnapshot {
  std::uint64_t version = 0;
  bool accepted = true;  ///< false once the stopping criteria are met
  /// Complete kParams response frame (encode_frame already applied), so
  /// serving a checkout is a pointer load plus a socket write.
  net::Bytes params_frame;
  std::chrono::steady_clock::time_point published_at;
};

class ModelSnapshotBoard {
 public:
  /// `metrics` (null = obs::default_registry()) receives the publish
  /// counter and the snapshot-age gauge. Must outlive the board.
  explicit ModelSnapshotBoard(obs::MetricsRegistry* metrics = nullptr);

  /// Snapshot `server`'s current parameters and publish atomically.
  /// Caller contract: no checkin may be applied concurrently (the epoll
  /// engine's single applier thread satisfies this by construction);
  /// concurrent current() loads are always safe.
  void publish(const core::Server& server);

  /// The latest snapshot (never null after construction-time publish;
  /// null only if publish was never called). Lock-free.
  std::shared_ptr<const ModelSnapshot> current() const;

  std::uint64_t version() const;
  long long publishes() const { return publishes_.value(); }

  /// Export seconds-since-last-publish to the snapshot-age gauge (the
  /// applier refreshes it every drain cycle, including idle ones).
  void refresh_age_gauge();
  double age_seconds() const;

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_{nullptr};
  obs::Counter& publishes_;
  obs::Gauge& age_seconds_gauge_;
};

}  // namespace crowdml::engine
