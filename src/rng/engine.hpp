// Seedable, splittable pseudo-random engine (xoshiro256++).
//
// Every stochastic component in Crowd-ML (noise mechanisms, data
// generators, delay models, device schedules) draws from an explicitly
// seeded engine so that experiments replay bit-identically. `split()`
// derives statistically independent child streams (one per device, per
// trial, ...) without the correlation hazards of sequential seeding.
#pragma once

#include <cstdint>

namespace crowdml::rng {

/// SplitMix64 step — used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

class Engine {
 public:
  using result_type = std::uint64_t;

  explicit Engine(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Derive an independent child stream. The parent advances, so repeated
  /// split() calls give distinct children; `salt` lets callers key streams
  /// by a stable identity (e.g. device id) instead of call order.
  Engine split(std::uint64_t salt = 0);

 private:
  std::uint64_t s_[4];
};

}  // namespace crowdml::rng
