// Tests for schedules and updaters (Eq. 3, Eq. 5, Remark 3 extensions).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "opt/schedule.hpp"
#include "opt/updater.hpp"
#include "rng/distributions.hpp"

using namespace crowdml;

TEST(Schedules, SqrtDecayValues) {
  opt::SqrtDecaySchedule s(2.0);
  EXPECT_DOUBLE_EQ(s.rate(1), 2.0);
  EXPECT_DOUBLE_EQ(s.rate(4), 1.0);
  EXPECT_DOUBLE_EQ(s.rate(100), 0.2);
}

TEST(Schedules, ConstantValue) {
  opt::ConstantSchedule s(0.5);
  EXPECT_DOUBLE_EQ(s.rate(1), 0.5);
  EXPECT_DOUBLE_EQ(s.rate(1000000), 0.5);
}

TEST(Schedules, InverseTValues) {
  opt::InverseTSchedule s(10.0, 4.0);
  EXPECT_DOUBLE_EQ(s.rate(1), 2.0);
  EXPECT_DOUBLE_EQ(s.rate(6), 1.0);
}

TEST(Schedules, CloneIsIndependentCopy) {
  opt::SqrtDecaySchedule s(3.0);
  auto c = s.clone();
  EXPECT_DOUBLE_EQ(c->rate(9), 1.0);
}

TEST(SgdUpdater, SingleStepMatchesFormula) {
  opt::SgdUpdater u(std::make_unique<opt::ConstantSchedule>(0.1), 100.0);
  linalg::Vector w{1.0, 2.0};
  u.apply(w, {10.0, -10.0});
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], 3.0);
  EXPECT_EQ(u.steps(), 1);
}

TEST(SgdUpdater, ScheduleAdvancesWithSteps) {
  opt::SgdUpdater u(std::make_unique<opt::SqrtDecaySchedule>(1.0), 100.0);
  linalg::Vector w{0.0};
  u.apply(w, {1.0});  // eta(1) = 1
  EXPECT_DOUBLE_EQ(w[0], -1.0);
  u.apply(w, {1.0});  // eta(2) = 1/sqrt(2)
  EXPECT_NEAR(w[0], -1.0 - 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(SgdUpdater, ProjectionKeepsIterateInBall) {
  opt::SgdUpdater u(std::make_unique<opt::ConstantSchedule>(1.0), 2.0);
  linalg::Vector w{0.0, 0.0};
  u.apply(w, {-100.0, 0.0});
  EXPECT_NEAR(linalg::norm2(w), 2.0, 1e-12);
}

TEST(SgdUpdater, ConvergesOnQuadratic) {
  // min 0.5*(w-3)^2, gradient w-3.
  opt::SgdUpdater u(std::make_unique<opt::SqrtDecaySchedule>(0.8), 100.0);
  linalg::Vector w{0.0};
  for (int t = 0; t < 3000; ++t) u.apply(w, {w[0] - 3.0});
  EXPECT_NEAR(w[0], 3.0, 0.05);
}

TEST(AdaGrad, PerCoordinateAdaptation) {
  opt::AdaGradUpdater u(1.0, 100.0);
  linalg::Vector w{0.0, 0.0};
  // Coordinate 0 sees large gradients, coordinate 1 small ones; after one
  // step the effective rates already differ.
  u.apply(w, {10.0, 0.1});
  EXPECT_NEAR(w[0], -1.0, 1e-6);  // 1/sqrt(100) * 10 ~ 1
  EXPECT_NEAR(w[1], -1.0, 1e-3);  // 1/sqrt(0.01) * 0.1 ~ 1 (same first step)
  // Second identical step is smaller for both (accumulators grow).
  const double w0 = w[0];
  u.apply(w, {10.0, 0.1});
  EXPECT_GT(w0 - w[0], 0.0);
  EXPECT_LT(w0 - w[0], 1.0);
}

TEST(AdaGrad, ConvergesOnQuadratic) {
  opt::AdaGradUpdater u(2.0, 100.0);
  linalg::Vector w{0.0};
  for (int t = 0; t < 5000; ++t) u.apply(w, {w[0] - 3.0});
  EXPECT_NEAR(w[0], 3.0, 0.05);
}

TEST(AdaGrad, ResetClearsAccumulators) {
  opt::AdaGradUpdater u(1.0, 100.0);
  linalg::Vector w{0.0};
  u.apply(w, {10.0});
  u.reset();
  EXPECT_EQ(u.steps(), 0);
  linalg::Vector w2{0.0};
  u.apply(w2, {10.0});
  EXPECT_NEAR(w2[0], -1.0, 1e-6);  // same as a fresh updater's first step
}

TEST(Momentum, AcceleratesAlongConsistentGradient) {
  opt::MomentumUpdater u(std::make_unique<opt::ConstantSchedule>(0.1), 1000.0,
                         0.9);
  linalg::Vector w{0.0};
  u.apply(w, {1.0});
  const double step1 = -w[0];
  u.apply(w, {1.0});
  const double step2 = -w[0] - step1;
  EXPECT_GT(step2, step1);  // velocity accumulates
}

TEST(Momentum, ConvergesOnQuadratic) {
  opt::MomentumUpdater u(std::make_unique<opt::ConstantSchedule>(0.05), 100.0,
                         0.9);
  linalg::Vector w{0.0};
  for (int t = 0; t < 2000; ++t) u.apply(w, {w[0] - 3.0});
  EXPECT_NEAR(w[0], 3.0, 0.01);
}

TEST(Polyak, AverageOfObservations) {
  opt::PolyakAverager avg;
  avg.observe({2.0});
  avg.observe({4.0});
  avg.observe({6.0});
  EXPECT_EQ(avg.count(), 3);
  EXPECT_NEAR(avg.average()[0], 4.0, 1e-12);
}

TEST(Polyak, ResetStartsOver) {
  opt::PolyakAverager avg;
  avg.observe({10.0});
  avg.reset();
  EXPECT_EQ(avg.count(), 0);
  avg.observe({2.0});
  EXPECT_NEAR(avg.average()[0], 2.0, 1e-12);
}

TEST(Polyak, ReducesVarianceOfNoisyIterates) {
  rng::Engine eng(5);
  opt::PolyakAverager avg;
  for (int i = 0; i < 10000; ++i)
    avg.observe({3.0 + rng::normal(eng)});
  EXPECT_NEAR(avg.average()[0], 3.0, 0.05);
}
