#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace crowdml::net {

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpConnection::~TcpConnection() { close(); }

void TcpConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpConnection::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::optional<TcpConnection> TcpConnection::connect(const std::string& host,
                                                    std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(fd);
}

bool TcpConnection::write_all(const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpConnection::read_all(std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd_, data, len, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpConnection::send_frame(const Bytes& frame) {
  if (fd_ < 0) return false;
  return write_all(frame.data(), frame.size());
}

std::optional<Bytes> TcpConnection::recv_frame() {
  if (fd_ < 0) return std::nullopt;
  Bytes buf(kFrameHeaderSize);
  if (!read_all(buf.data(), buf.size())) return std::nullopt;

  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(buf[5 + static_cast<std::size_t>(i)]) << (8 * i);
  if (len > kMaxFieldLength) return std::nullopt;

  buf.resize(kFrameHeaderSize + len + kFrameTrailerSize);
  if (!read_all(buf.data() + kFrameHeaderSize, len + kFrameTrailerSize))
    return std::nullopt;
  return buf;
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpListener> TcpListener::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  TcpListener l;
  l.fd_ = fd;
  l.port_ = ntohs(bound.sin_port);
  return l;
}

std::optional<TcpConnection> TcpListener::accept() {
  if (fd_ < 0) return std::nullopt;
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(cfd);
}

}  // namespace crowdml::net
