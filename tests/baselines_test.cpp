// Tests for the three comparison approaches (Sections IV-A, V-C,
// Appendix C): centralized batch, centralized perturbed SGD, decentralized.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/central_batch.hpp"
#include "baselines/central_sgd.hpp"
#include "baselines/decentralized.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"

using namespace crowdml;

namespace {

const data::Dataset& easy_dataset() {
  static const data::Dataset ds = [] {
    rng::Engine eng(555);
    data::MixtureSpec spec;
    spec.num_classes = 4;
    spec.raw_dim = 40;
    spec.latent_dim = 15;
    spec.pca_dim = 10;
    spec.separation = 3.5;
    spec.train_size = 3000;
    spec.test_size = 800;
    return data::generate_mixture(spec, eng);
  }();
  return ds;
}

models::MulticlassLogisticRegression easy_model() {
  return models::MulticlassLogisticRegression(4, 10, 0.0);
}

}  // namespace

TEST(CentralBatch, ReachesLowErrorOnCleanData) {
  const auto& ds = easy_dataset();
  auto model = easy_model();
  baselines::BatchTrainerConfig cfg;
  cfg.iterations = 300;
  cfg.learning_rate = 100.0;
  cfg.projection_radius = 500.0;
  const auto res = baselines::train_central_batch(model, ds.train, ds.test, cfg);
  EXPECT_LT(res.final_test_error, 0.06);
  EXPECT_TRUE(linalg::all_finite(res.w));
  EXPECT_LT(res.final_train_risk, std::log(4.0));  // better than random
}

TEST(CentralBatch, MoreIterationsNeverHurtMuch) {
  const auto& ds = easy_dataset();
  auto model = easy_model();
  baselines::BatchTrainerConfig short_cfg;
  short_cfg.iterations = 10;
  short_cfg.learning_rate = 100.0;
  baselines::BatchTrainerConfig long_cfg = short_cfg;
  long_cfg.iterations = 200;
  const auto s = baselines::train_central_batch(model, ds.train, ds.test, short_cfg);
  const auto l = baselines::train_central_batch(model, ds.train, ds.test, long_cfg);
  EXPECT_LE(l.final_train_risk, s.final_train_risk + 1e-9);
}

TEST(PerturbDataset, LabelFlipRateMatchesMechanism) {
  const auto& ds = easy_dataset();
  rng::Engine eng(1);
  const double eps_y = 2.0;
  const auto noisy = baselines::perturb_dataset(ds.train, 4, privacy::kNoPrivacy,
                                                eps_y, eng);
  ASSERT_EQ(noisy.size(), ds.train.size());
  int kept = 0;
  for (std::size_t i = 0; i < noisy.size(); ++i)
    if (noisy[i].label() == ds.train[i].label()) ++kept;
  const double expected =
      std::exp(eps_y / 2.0) / (std::exp(eps_y / 2.0) + 3.0);
  EXPECT_NEAR(kept / static_cast<double>(noisy.size()), expected, 0.02);
  // Features untouched (eps_x infinite).
  EXPECT_EQ(noisy[0].x, ds.train[0].x);
}

TEST(PerturbDataset, FeatureNoiseVarianceMatchesEq15) {
  const auto& ds = easy_dataset();
  rng::Engine eng(2);
  const double eps_x = 4.0;
  const auto noisy =
      baselines::perturb_dataset(ds.train, 4, eps_x, privacy::kNoPrivacy, eng);
  double sumsq = 0.0;
  long long n = 0;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    for (std::size_t d = 0; d < noisy[i].x.size(); ++d) {
      const double z = noisy[i].x[d] - ds.train[i].x[d];
      sumsq += z * z;
      ++n;
    }
    EXPECT_EQ(noisy[i].label(), ds.train[i].label());
  }
  EXPECT_NEAR(sumsq / static_cast<double>(n), 8.0 / (eps_x * eps_x),
              0.02 * 8.0 / (eps_x * eps_x));
}

TEST(CentralSgd, CleanDataApproachesBatchError) {
  const auto& ds = easy_dataset();
  auto model = easy_model();
  baselines::CentralSgdConfig cfg;
  cfg.learning_rate_c = 50.0;
  cfg.projection_radius = 500.0;
  cfg.max_samples = 15000;  // 5 passes
  cfg.eval_points = 5;
  const auto res = baselines::train_central_sgd(model, ds.train, ds.test, cfg);
  EXPECT_LT(res.final_test_error, 0.10);
  // Curve starts at chance and improves.
  EXPECT_GT(res.test_error.points().front().y, 0.5);
}

TEST(CentralSgd, StrongInputPerturbationDegradesAccuracy) {
  const auto& ds = easy_dataset();
  auto model = easy_model();
  baselines::CentralSgdConfig clean;
  clean.learning_rate_c = 50.0;
  clean.projection_radius = 500.0;
  clean.max_samples = 9000;
  clean.eval_points = 3;
  baselines::CentralSgdConfig noisy = clean;
  noisy.epsilon = 1.0;  // harsh per-sample budget (Appendix C)
  const auto rc = baselines::train_central_sgd(model, ds.train, ds.test, clean);
  const auto rn = baselines::train_central_sgd(model, ds.train, ds.test, noisy);
  EXPECT_GT(rn.final_test_error, rc.final_test_error + 0.2);
}

TEST(CentralSgd, MinibatchingDoesNotRescueInputNoise) {
  // Section IV-A: the centralized approach "has no means of mitigating the
  // negative impact of constant noise" — larger b must not help much.
  const auto& ds = easy_dataset();
  auto model = easy_model();
  baselines::CentralSgdConfig b1;
  b1.epsilon = 1.0;
  b1.learning_rate_c = 50.0;
  b1.projection_radius = 500.0;
  b1.max_samples = 9000;
  b1.eval_points = 3;
  baselines::CentralSgdConfig b20 = b1;
  b20.minibatch_size = 20;
  const auto r1 = baselines::train_central_sgd(model, ds.train, ds.test, b1);
  const auto r20 = baselines::train_central_sgd(model, ds.train, ds.test, b20);
  EXPECT_GT(r20.final_test_error, 0.5);
  EXPECT_GT(r1.final_test_error, 0.5);
}

TEST(Decentralized, PlateausAboveCentralizedError) {
  const auto& ds = easy_dataset();
  auto model = easy_model();
  baselines::DecentralizedConfig cfg;
  cfg.num_devices = 300;  // ~10 samples per device
  cfg.learning_rate_c = 50.0;
  cfg.projection_radius = 500.0;
  cfg.max_total_samples = 15000;
  cfg.eval_points = 5;
  cfg.seed = 4;
  const auto res = baselines::train_decentralized(model, ds.train, ds.test, cfg);
  // Few samples per device -> error far above the ~0.05 batch error.
  EXPECT_GT(res.final_test_error, 0.15);
  EXPECT_LT(res.final_test_error, 0.9);
}

TEST(Decentralized, FewDevicesApproachCentralPerformance) {
  // With M=1 the decentralized learner IS centralized SGD.
  const auto& ds = easy_dataset();
  auto model = easy_model();
  baselines::DecentralizedConfig cfg;
  cfg.num_devices = 1;
  cfg.learning_rate_c = 50.0;
  cfg.projection_radius = 500.0;
  cfg.max_total_samples = 15000;
  cfg.eval_points = 5;
  cfg.eval_device_sample = 1;
  cfg.eval_test_sample = 800;
  cfg.seed = 5;
  const auto res = baselines::train_decentralized(model, ds.train, ds.test, cfg);
  EXPECT_LT(res.final_test_error, 0.10);
}

TEST(Decentralized, CurveGridMatchesEvalPoints) {
  const auto& ds = easy_dataset();
  auto model = easy_model();
  baselines::DecentralizedConfig cfg;
  cfg.num_devices = 10;
  cfg.max_total_samples = 1000;
  cfg.eval_points = 4;
  const auto res = baselines::train_decentralized(model, ds.train, ds.test, cfg);
  EXPECT_EQ(res.test_error.size(), 5u);  // x=0 plus 4 marks
  EXPECT_DOUBLE_EQ(res.test_error.points().back().x, 1000.0);
}
