// Centralized SGD on perturbed uploads — "Central (SGD, b=...)" in
// Figs. 5 and 8.
//
// Devices upload Appendix-C-sanitized (feature, label) pairs; the server
// runs plain minibatch SGD on the noisy stream. The same projection,
// schedule and minibatch machinery as Crowd-ML — only the place where
// privacy noise enters differs, which is the comparison the paper draws:
// constant per-sample input noise (here) vs 1/b-attenuated gradient noise
// (Crowd-ML).
#pragma once

#include "data/dataset.hpp"
#include "metrics/curves.hpp"
#include "models/model.hpp"
#include "opt/updater.hpp"
#include "privacy/budget.hpp"

namespace crowdml::baselines {

struct CentralSgdConfig {
  std::size_t minibatch_size = 1;  // b
  /// Per-sample epsilon split across features and labels (paper uses
  /// eps_x = eps_y = eps/2). Infinity => clean data.
  double epsilon = privacy::kNoPrivacy;
  double learning_rate_c = 1.0;  // eta(t) = c / sqrt(t)
  double projection_radius = 100.0;
  long long max_samples = 300000;  // total samples streamed (with re-passes)
  std::size_t eval_points = 50;
  std::uint64_t seed = 1;
};

struct CentralSgdResult {
  metrics::LearningCurve test_error;  // x = samples streamed
  linalg::Vector w;
  double final_test_error = 1.0;
};

CentralSgdResult train_central_sgd(const models::Model& model,
                                   const models::SampleSet& train,
                                   const models::SampleSet& test,
                                   const CentralSgdConfig& config);

}  // namespace crowdml::baselines
