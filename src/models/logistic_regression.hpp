// Multiclass logistic regression — Table I of the paper, and the model used
// by every experiment (activity recognition, MNIST, CIFAR).
//
//   prediction:  argmax_k  w_k' x
//   loss:        -w_y' x + log sum_l exp(w_l' x)
//   gradient:    d/dw_k = x * (P(y=k | x; w) - I[y == k])
//
// Parameters are C class-weight vectors of dimension D stored contiguously
// (w_k = w[k*D .. k*D+D)). The per-sample gradient's L1 norm is
// ||x||_1 * sum_k |P_k - I[y=k]| = ||x||_1 * 2(1 - P_y) <= 2, so the
// neighboring-minibatch sensitivity is 4/b (Appendix A).
//
// BinaryLogisticRegression is the C=2 single-weight-vector variant with
// y in {0,1}, sensitivity 2/b.
#pragma once

#include <numbers>

#include "models/model.hpp"

namespace crowdml::models {

class MulticlassLogisticRegression final : public Model {
 public:
  /// `classes >= 2`, `dim >= 1`, `lambda >= 0`.
  MulticlassLogisticRegression(std::size_t classes, std::size_t dim,
                               double lambda = 0.0);

  std::size_t feature_dim() const override { return dim_; }
  std::size_t num_classes() const override { return classes_; }
  std::size_t param_dim() const override { return classes_ * dim_; }
  bool is_classifier() const override { return true; }

  double predict(const linalg::Vector& w, const linalg::Vector& x) const override;
  double loss(const linalg::Vector& w, const Sample& s) const override;
  void add_loss_gradient(const linalg::Vector& w, const Sample& s,
                         linalg::Vector& g) const override;
  double per_sample_l1_sensitivity() const override { return 4.0; }
  /// ||g||_2 = ||x||_2 ||P - e_y||_2 <= 1 * sqrt(2), so two neighboring
  /// samples' gradients differ by at most 2*sqrt(2) in L2.
  double per_sample_l2_sensitivity() const override {
    return 2.0 * std::numbers::sqrt2;
  }

  /// Class scores w_k' x for all k, and the softmax posterior P(y=k|x;w)
  /// (computed with the max-subtraction trick for stability).
  linalg::Vector scores(const linalg::Vector& w, const linalg::Vector& x) const;
  linalg::Vector posterior(const linalg::Vector& w, const linalg::Vector& x) const;

 private:
  std::size_t classes_;
  std::size_t dim_;
};

class BinaryLogisticRegression final : public Model {
 public:
  BinaryLogisticRegression(std::size_t dim, double lambda = 0.0);

  std::size_t feature_dim() const override { return dim_; }
  std::size_t num_classes() const override { return 2; }
  std::size_t param_dim() const override { return dim_; }
  bool is_classifier() const override { return true; }

  double predict(const linalg::Vector& w, const linalg::Vector& x) const override;
  double loss(const linalg::Vector& w, const Sample& s) const override;
  void add_loss_gradient(const linalg::Vector& w, const Sample& s,
                         linalg::Vector& g) const override;
  double per_sample_l1_sensitivity() const override { return 2.0; }

  /// sigmoid(w' x).
  double probability(const linalg::Vector& w, const linalg::Vector& x) const;

 private:
  std::size_t dim_;
};

}  // namespace crowdml::models
