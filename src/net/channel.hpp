// Thread-safe blocking message channels for the in-process threaded
// runtime (devices on threads, server on threads, no sockets).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace crowdml::net {

/// MPMC blocking queue of byte buffers with close semantics.
class ByteChannel {
 public:
  using Buffer = std::vector<std::uint8_t>;

  /// Enqueue; returns false if the channel is closed.
  bool send(Buffer msg);

  /// Block until a message or close. nullopt <=> closed and drained.
  std::optional<Buffer> receive();

  /// Non-blocking receive.
  std::optional<Buffer> try_receive();

  void close();
  bool closed() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Buffer> queue_;
  bool closed_ = false;
};

/// A bidirectional link: two channels, two endpoints.
struct DuplexChannel {
  struct Endpoint {
    std::shared_ptr<ByteChannel> out;  // this side sends here
    std::shared_ptr<ByteChannel> in;   // this side receives here

    bool send(ByteChannel::Buffer msg) { return out->send(std::move(msg)); }
    std::optional<ByteChannel::Buffer> receive() { return in->receive(); }
    void close() {
      out->close();
      in->close();
    }
  };

  /// Create a connected (a, b) endpoint pair.
  static std::pair<Endpoint, Endpoint> create();
};

}  // namespace crowdml::net
