#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace crowdml::obs {

namespace {

void atomic_add_double(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_')
    return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
}

/// Prometheus renders 0.001 etc.; use shortest round-trip-ish form.
std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace

const char* provenance_note(Provenance p) {
  switch (p) {
    case Provenance::kSanitizedAggregate:
      return "derives from sanitized checkins; exporting costs no "
             "additional privacy budget";
    case Provenance::kTransportEvent:
      return "counts network/protocol events, never sample data";
    case Provenance::kTiming:
      return "wall-clock duration of local computation; carries no sample "
             "data";
  }
  return "unknown provenance";
}

void Gauge::add(double delta) { atomic_add_double(value_, delta); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: bucket bounds must be non-empty");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<long long>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  if (start <= 0.0 || factor <= 1.0 || count == 0)
    throw std::invalid_argument("exponential_bounds: need start > 0, "
                                "factor > 1, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i, b *= factor) bounds.push_back(b);
  return bounds;
}

std::vector<double> default_latency_bounds() {
  // 1us, 4us, ..., 16.8s — wide enough for a sub-microsecond codec call
  // and a multi-second deadline-bounded socket wait in one layout.
  return exponential_bounds(1e-6, 4.0, 13);
}

MetricsRegistry::Entry& MetricsRegistry::get_or_create(
    const std::string& name, const std::string& help, Provenance provenance,
    Kind kind, std::vector<double>* bounds) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("MetricsRegistry: invalid metric name '" +
                                name + "'");
  if (help.empty())
    throw std::invalid_argument("MetricsRegistry: metric '" + name +
                                "' needs help text (see docs/OBSERVABILITY.md)");
  std::lock_guard lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind)
      throw std::invalid_argument("MetricsRegistry: metric '" + name +
                                  "' already registered as another kind");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = help;
  entry.provenance = provenance;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::unique_ptr<Counter>(new Counter());
      break;
    case Kind::kGauge:
      entry.gauge = std::unique_ptr<Gauge>(new Gauge());
      break;
    case Kind::kHistogram:
      entry.histogram = std::unique_ptr<Histogram>(new Histogram(
          bounds && !bounds->empty() ? std::move(*bounds)
                                     : default_latency_bounds()));
      break;
  }
  return entries_.emplace(name, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  Provenance provenance) {
  return *get_or_create(name, help, provenance, Kind::kCounter, nullptr)
              .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              Provenance provenance) {
  return *get_or_create(name, help, provenance, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      Provenance provenance,
                                      std::vector<double> bounds) {
  return *get_or_create(name, help, provenance, Kind::kHistogram, &bounds)
              .histogram;
}

MetricsRegistry::RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot s;
  std::lock_guard lock(mu_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        s.counters.push_back(
            {name, entry.help, entry.provenance, entry.counter->value()});
        break;
      case Kind::kGauge:
        s.gauges.push_back(
            {name, entry.help, entry.provenance, entry.gauge->value()});
        break;
      case Kind::kHistogram:
        s.histograms.push_back(
            {name, entry.help, entry.provenance, entry.histogram->snapshot()});
        break;
    }
  }
  return s;
}

std::string MetricsRegistry::render_prometheus() const {
  const RegistrySnapshot snap = snapshot();
  std::ostringstream out;
  for (const auto& c : snap.counters) {
    out << "# HELP " << c.name << ' ' << c.help << " ("
        << provenance_note(c.provenance) << ")\n";
    out << "# TYPE " << c.name << " counter\n";
    out << c.name << ' ' << c.value << '\n';
  }
  for (const auto& g : snap.gauges) {
    out << "# HELP " << g.name << ' ' << g.help << " ("
        << provenance_note(g.provenance) << ")\n";
    out << "# TYPE " << g.name << " gauge\n";
    out << g.name << ' ' << format_double(g.value) << '\n';
  }
  for (const auto& h : snap.histograms) {
    out << "# HELP " << h.name << ' ' << h.help << " ("
        << provenance_note(h.provenance) << ")\n";
    out << "# TYPE " << h.name << " histogram\n";
    long long cumulative = 0;
    for (std::size_t i = 0; i < h.data.bounds.size(); ++i) {
      cumulative += h.data.buckets[i];
      out << h.name << "_bucket{le=\"" << format_double(h.data.bounds[i])
          << "\"} " << cumulative << '\n';
    }
    out << h.name << "_bucket{le=\"+Inf\"} " << h.data.count << '\n';
    out << h.name << "_sum " << format_double(h.data.sum) << '\n';
    out << h.name << "_count " << h.data.count << '\n';
  }
  return out.str();
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

bool write_metrics_file(const MetricsRegistry& registry,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << registry.render_prometheus();
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace crowdml::obs
