// The differential-privacy mechanisms of Section III-C and Appendix C.
//
// All mechanisms take an explicit engine so experiments replay
// deterministically, and all treat epsilon == +infinity as "no noise"
// (the paper's eps^{-1} = 0 configuration).
#pragma once

#include <cstddef>

#include "linalg/vector_ops.hpp"
#include "rng/engine.hpp"

namespace crowdml::privacy {

/// Eq. (10): Laplace vector mechanism for an averaged minibatch gradient.
/// `l1_sensitivity` is the sensitivity of the *released vector* — for a
/// minibatch of size b it is model.per_sample_l1_sensitivity() / b
/// (Appendix A: 4/b for multiclass logistic regression). Adds iid Laplace
/// noise of scale l1_sensitivity / epsilon per coordinate and returns the
/// sanitized copy g^ = g~ + z.
linalg::Vector sanitize_vector(rng::Engine& eng, const linalg::Vector& v,
                               double l1_sensitivity, double epsilon);

/// Eqs. (11)-(12): discrete Laplace mechanism for integer counts with unit
/// sensitivity — P(z) proportional to exp(-epsilon/2 * |z|). Returns n + z
/// (which may be negative; see Appendix B Remark 2).
long long sanitize_count(rng::Engine& eng, long long n, double epsilon);

/// Eq. (16): exponential-mechanism label perturbation with score
/// d(y, y^) = I[y == y^]; P(y^|y) proportional to exp(epsilon/2 * I[y==y^]).
/// Used by the centralized baseline (Appendix C).
int perturb_label(rng::Engine& eng, int y, std::size_t num_classes,
                  double epsilon);

/// Eq. (15): Laplace feature perturbation for the centralized baseline.
/// Sensitivity 2 for ||x||_1 <= 1, i.e. per-coordinate scale 2/epsilon.
linalg::Vector perturb_features(rng::Engine& eng, const linalg::Vector& x,
                                double epsilon);

/// Footnote 1's (eps, delta) variant: Gaussian mechanism with
/// sigma = l2_sensitivity * sqrt(2 ln(1.25/delta)) / epsilon.
/// Requires 0 < epsilon (finite => delta in (0,1)).
linalg::Vector sanitize_vector_gaussian(rng::Engine& eng, const linalg::Vector& v,
                                        double l2_sensitivity, double epsilon,
                                        double delta);

/// Variance of one coordinate of the Eq. (10) noise: 2 * (S/eps)^2.
/// Combined with the sampling term this gives the paper's Eq. (13)
/// trade-off  E||g^||^2 = (1/b) E||g||^2 + 32 D / (b eps)^2  for S = 4/b.
double laplace_noise_variance(double l1_sensitivity, double epsilon);

/// Cohort-scaled mechanism epsilon for secure aggregation
/// (docs/PRIVACY.md "Secure aggregation"): when at least `min_survivors`
/// masked contributions are summed before anything becomes observable,
/// each device may inflate its mechanism epsilon by sqrt(min_survivors)
/// — m independent Laplace(S / (eps sqrt(m))) draws sum to variance
/// m * 2 (S / (eps sqrt(m)))^2 = 2 (S/eps)^2, so the observable cohort
/// sum still carries at least the noise of one full-epsilon release
/// while each device contributes 1/m of the variance. Infinite epsilon
/// passes through unchanged.
double cohort_scaled_epsilon(double epsilon, std::size_t min_survivors);

}  // namespace crowdml::privacy
