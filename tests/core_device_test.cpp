// Tests for Algorithm 1 (Device Routines 1-3).
#include <gtest/gtest.h>

#include <cmath>

#include "core/device.hpp"
#include "models/logistic_regression.hpp"
#include "net/auth.hpp"
#include "rng/distributions.hpp"

using namespace crowdml;
using core::Device;
using core::DeviceConfig;
using models::Sample;

namespace {

Sample make_sample(rng::Engine& eng, std::size_t dim, std::size_t classes) {
  linalg::Vector x(dim);
  for (double& v : x) v = rng::normal(eng);
  linalg::l1_normalize(x);
  return Sample(std::move(x),
                static_cast<double>(rng::uniform_index(eng, classes)));
}

DeviceConfig basic_config(std::size_t b = 4) {
  DeviceConfig c;
  c.device_id = 1;
  c.minibatch_size = b;
  c.max_buffer = 16;
  return c;
}

}  // namespace

TEST(Device, BuffersUntilMinibatchFull) {
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  Device dev(basic_config(4), model, rng::Engine(1));
  rng::Engine eng(2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(dev.on_sample(make_sample(eng, 4, 3)));
    EXPECT_FALSE(dev.wants_checkout());
  }
  dev.on_sample(make_sample(eng, 4, 3));
  EXPECT_TRUE(dev.wants_checkout());
  EXPECT_EQ(dev.buffered(), 4u);
}

TEST(Device, MaxBufferDropsSamples) {
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  DeviceConfig cfg = basic_config(4);
  cfg.max_buffer = 6;
  Device dev(cfg, model, rng::Engine(1));
  rng::Engine eng(3);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(dev.on_sample(make_sample(eng, 4, 3)));
  EXPECT_FALSE(dev.on_sample(make_sample(eng, 4, 3)));
  EXPECT_EQ(dev.buffered(), 6u);
  EXPECT_EQ(dev.dropped_samples(), 1);
}

TEST(Device, CheckoutLifecycle) {
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  Device dev(basic_config(1), model, rng::Engine(1));
  rng::Engine eng(4);
  dev.on_sample(make_sample(eng, 4, 3));
  EXPECT_TRUE(dev.wants_checkout());
  dev.begin_checkout();
  EXPECT_FALSE(dev.wants_checkout());
  EXPECT_TRUE(dev.checkout_in_flight());
  dev.on_checkout_failed();  // Remark 1
  EXPECT_TRUE(dev.wants_checkout());
}

TEST(Device, CheckinWithoutPrivacyMatchesManualComputation) {
  models::MulticlassLogisticRegression model(3, 4, 0.5);
  Device dev(basic_config(4), model, rng::Engine(1));
  rng::Engine eng(5);
  models::SampleSet batch;
  for (int i = 0; i < 4; ++i) {
    Sample s = make_sample(eng, 4, 3);
    batch.push_back(s);
    dev.on_sample(std::move(s));
  }
  linalg::Vector w(model.param_dim());
  for (double& v : w) v = rng::normal(eng);

  dev.begin_checkout();
  const core::CheckinResult res = dev.compute_checkin(w, 7);
  EXPECT_EQ(res.message.param_version, 7u);
  EXPECT_EQ(res.message.ns, 4);
  EXPECT_EQ(res.batch_size, 4u);
  EXPECT_EQ(dev.buffered(), 0u);
  EXPECT_FALSE(dev.checkout_in_flight());

  // g^ equals the exact averaged gradient + lambda*w (no noise budget).
  const linalg::Vector expected = model.averaged_gradient(w, batch);
  ASSERT_EQ(res.message.g_hat.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(res.message.g_hat[i], expected[i], 1e-12);

  // Counts are exact.
  long long ne = 0;
  std::vector<std::int64_t> ny(3, 0);
  for (const auto& s : batch) {
    if (model.predict_class(w, s.x) != s.label()) ++ne;
    ++ny[static_cast<std::size_t>(s.label())];
  }
  EXPECT_EQ(res.message.ne_hat, ne);
  EXPECT_EQ(res.message.ny_hat, ny);
  EXPECT_EQ(static_cast<long long>(res.true_errors), ne);
  EXPECT_EQ(res.misclassified.size(), 4u);
}

TEST(Device, PrivacyBudgetAddsGradientNoise) {
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  DeviceConfig cfg = basic_config(4);
  cfg.budget = privacy::PrivacyBudget::gradient_dominated(1.0);
  Device noisy(cfg, model, rng::Engine(1));
  Device clean(basic_config(4), model, rng::Engine(1));
  rng::Engine eng(6);
  models::SampleSet batch;
  for (int i = 0; i < 4; ++i) batch.push_back(make_sample(eng, 4, 3));
  for (const auto& s : batch) {
    noisy.on_sample(s);
    clean.on_sample(s);
  }
  const linalg::Vector w(model.param_dim(), 0.0);
  noisy.begin_checkout();
  clean.begin_checkout();
  const auto rn = noisy.compute_checkin(w, 0);
  const auto rc = clean.compute_checkin(w, 0);
  double diff = 0.0;
  for (std::size_t i = 0; i < rn.message.g_hat.size(); ++i)
    diff += std::abs(rn.message.g_hat[i] - rc.message.g_hat[i]);
  EXPECT_GT(diff, 1e-6);
}

TEST(Device, NoisyCountsAreSanitized) {
  // With a tiny eps_e the noisy error count differs from the true count
  // with overwhelming probability over a few checkins.
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  DeviceConfig cfg = basic_config(4);
  cfg.budget.eps_gradient = privacy::kNoPrivacy;
  cfg.budget.eps_error = 0.05;
  cfg.budget.eps_label = 0.05;
  Device dev(cfg, model, rng::Engine(1));
  rng::Engine eng(7);
  bool count_noised = false;
  for (int round = 0; round < 10 && !count_noised; ++round) {
    models::SampleSet batch;
    for (int i = 0; i < 4; ++i) {
      Sample s = make_sample(eng, 4, 3);
      batch.push_back(s);
      dev.on_sample(std::move(s));
    }
    const linalg::Vector w(model.param_dim(), 0.0);
    dev.begin_checkout();
    const auto res = dev.compute_checkin(w, 0);
    count_noised = res.message.ne_hat != static_cast<long long>(res.true_errors);
  }
  EXPECT_TRUE(count_noised);
}

TEST(Device, HoldoutExcludesSamplesFromGradient) {
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  DeviceConfig cfg = basic_config(8);
  cfg.holdout_fraction = 0.5;
  Device dev(cfg, model, rng::Engine(42));
  rng::Engine eng(8);
  models::SampleSet batch;
  for (int i = 0; i < 8; ++i) {
    Sample s = make_sample(eng, 4, 3);
    batch.push_back(s);
    dev.on_sample(std::move(s));
  }
  linalg::Vector w(model.param_dim());
  for (double& v : w) v = rng::normal(eng);
  dev.begin_checkout();
  const auto res = dev.compute_checkin(w, 0);
  // The full-batch averaged gradient differs from the holdout-filtered one
  // (with prob ~1 for random data).
  const linalg::Vector full = model.averaged_gradient(w, batch);
  double diff = 0.0;
  for (std::size_t i = 0; i < full.size(); ++i)
    diff += std::abs(res.message.g_hat[i] - full[i]);
  EXPECT_GT(diff, 1e-9);
  EXPECT_TRUE(linalg::all_finite(res.message.g_hat));
}

TEST(Device, AccountantTracksCheckins) {
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  DeviceConfig cfg = basic_config(2);
  cfg.budget = privacy::PrivacyBudget::gradient_dominated(5.0);
  Device dev(cfg, model, rng::Engine(1));
  rng::Engine eng(9);
  const linalg::Vector w(model.param_dim(), 0.0);
  for (int round = 0; round < 3; ++round) {
    dev.on_sample(make_sample(eng, 4, 3));
    dev.on_sample(make_sample(eng, 4, 3));
    dev.begin_checkout();
    dev.compute_checkin(w, 0);
  }
  EXPECT_EQ(dev.accountant().checkins(), 3);
  EXPECT_EQ(dev.accountant().samples_released(), 6);
  EXPECT_EQ(dev.lifetime_samples(), 6);
}

TEST(Device, SignedCheckinVerifiesAgainstRegistry) {
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  net::AuthRegistry registry(rng::Engine(11));
  const net::DeviceCredentials creds = registry.enroll();

  Device dev(basic_config(1), model, rng::Engine(1));
  dev.set_credentials(creds);
  EXPECT_EQ(dev.id(), creds.device_id);

  rng::Engine eng(10);
  dev.on_sample(make_sample(eng, 4, 3));
  dev.begin_checkout();
  const auto res = dev.compute_checkin(linalg::Vector(model.param_dim(), 0.0), 0);
  EXPECT_TRUE(registry.verify(res.message.device_id, res.message.body(),
                              res.message.auth_tag));
  // Tampering with the payload invalidates the tag.
  net::CheckinMessage tampered = res.message;
  tampered.ns += 1;
  EXPECT_FALSE(registry.verify(tampered.device_id, tampered.body(),
                               tampered.auth_tag));
}

TEST(Device, UnsignedCheckinHasZeroTag) {
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  Device dev(basic_config(1), model, rng::Engine(1));
  rng::Engine eng(12);
  dev.on_sample(make_sample(eng, 4, 3));
  dev.begin_checkout();
  const auto res = dev.compute_checkin(linalg::Vector(model.param_dim(), 0.0), 0);
  EXPECT_EQ(res.message.auth_tag, net::Digest{});
}

TEST(Device, BatchLargerThanMinibatchIsConsumedWhole) {
  // Samples arriving while a checkout is in flight join the same batch
  // (Algorithm 1 computes over all ns buffered samples).
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  Device dev(basic_config(2), model, rng::Engine(1));
  rng::Engine eng(13);
  dev.on_sample(make_sample(eng, 4, 3));
  dev.on_sample(make_sample(eng, 4, 3));
  dev.begin_checkout();
  dev.on_sample(make_sample(eng, 4, 3));  // arrives during flight
  const auto res = dev.compute_checkin(linalg::Vector(model.param_dim(), 0.0), 0);
  EXPECT_EQ(res.message.ns, 3);
  EXPECT_EQ(dev.buffered(), 0u);
}
