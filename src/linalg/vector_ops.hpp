// Dense vector type and BLAS-1 style kernels used throughout Crowd-ML.
//
// Vectors are plain `std::vector<double>` so that user code, the wire codec
// and the math kernels all share one representation with zero conversion
// cost. All kernels check dimensions with assertions in debug builds and
// are branch-free in the hot path.
#pragma once

#include <cstddef>
#include <vector>

namespace crowdml::linalg {

using Vector = std::vector<double>;

/// y += alpha * x  (dimensions must match).
void axpy(double alpha, const Vector& x, Vector& y);

/// x *= alpha.
void scal(double alpha, Vector& x);

/// Inner product <x, y>.
double dot(const Vector& x, const Vector& y);

/// Element-wise sum / difference (returns a fresh vector).
Vector add(const Vector& x, const Vector& y);
Vector sub(const Vector& x, const Vector& y);

/// L1, L2, and infinity norms.
double norm1(const Vector& x);
double norm2(const Vector& x);
double norm2_squared(const Vector& x);
double norm_inf(const Vector& x);

/// Scale `x` in place so that ||x||_1 <= 1 (no-op for the zero vector).
/// Crowd-ML's sensitivity analysis (Appendix A) assumes this normalization.
void l1_normalize(Vector& x);

/// Scale `x` in place so that ||x||_2 == 1 (no-op for the zero vector).
void l2_normalize(Vector& x);

/// Project `w` onto the L2 ball of the given radius: Pi_W in Eq. (3),
/// w <- min(1, radius/||w||_2) * w.
void project_l2_ball(Vector& w, double radius);

/// Index of the maximum element; 0 for empty input is invalid (asserts).
std::size_t argmax(const Vector& x);

/// Sum and mean of elements.
double sum(const Vector& x);
double mean(const Vector& x);

/// true iff every element is finite (no NaN/inf) — used by checkin
/// validation on the server side.
bool all_finite(const Vector& x);

}  // namespace crowdml::linalg
