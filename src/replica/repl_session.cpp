#include "replica/repl_session.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <stdexcept>

#include "net/sha256.hpp"

namespace crowdml::replica {

namespace {

net::Digest repl_tag(const ReplKey& key, net::MessageType type,
                     const net::Bytes& payload) {
  net::Bytes mac_input;
  mac_input.reserve(payload.size() + 1);
  mac_input.push_back(static_cast<std::uint8_t>(type));
  mac_input.insert(mac_input.end(), payload.begin(), payload.end());
  return net::hmac_sha256(key, mac_input);
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

net::Bytes seal_repl_payload(const ReplKey& key, net::MessageType type,
                             const net::Bytes& payload) {
  if (key.empty()) return payload;
  const net::Digest tag = repl_tag(key, type, payload);
  net::Bytes out = payload;
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<net::Bytes> open_repl_payload(const ReplKey& key,
                                            net::MessageType type,
                                            const net::Bytes& payload) {
  if (key.empty()) return payload;
  if (payload.size() < kReplTagSize) return std::nullopt;
  const net::Bytes body(payload.begin(),
                        payload.end() - static_cast<long>(kReplTagSize));
  net::Digest stated{};
  std::copy(payload.end() - static_cast<long>(kReplTagSize), payload.end(),
            stated.begin());
  if (!net::digest_equal(stated, repl_tag(key, type, body)))
    return std::nullopt;
  return body;
}

ReplKey load_repl_key_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open repl key file: " + path);
  std::string hex;
  char c;
  while (in.get(c)) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t') continue;
    hex.push_back(c);
  }
  if (hex.empty() || hex.size() % 2 != 0)
    throw std::runtime_error("repl key file must hold even-length hex: " +
                             path);
  ReplKey key;
  key.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0)
      throw std::runtime_error("non-hex byte in repl key file: " + path);
    key.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return key;
}

const char* repl_ack_mode_name(ReplAckMode mode) {
  switch (mode) {
    case ReplAckMode::kNone:
      return "none";
    case ReplAckMode::kAsync:
      return "async";
    case ReplAckMode::kQuorum:
      return "quorum";
  }
  return "?";
}

std::optional<ReplAckMode> parse_repl_ack_mode(const std::string& name) {
  if (name == "none") return ReplAckMode::kNone;
  if (name == "async") return ReplAckMode::kAsync;
  if (name == "quorum") return ReplAckMode::kQuorum;
  return std::nullopt;
}

ShipBatch next_ship_batch(const std::string& wal_dir, std::uint64_t cursor,
                          std::uint64_t watermark, std::size_t max_records,
                          std::size_t max_bytes) {
  ShipBatch batch;
  if (cursor >= watermark) return batch;
  bool gap = false;
  std::vector<store::WalRecord> records =
      store::read_wal_records(wal_dir, cursor, max_records, &gap);
  batch.gap = gap;
  if (gap) return batch;
  std::size_t bytes = 0;
  for (auto& rec : records) {
    if (rec.seq > watermark) break;  // possibly mid-commit; not ours yet
    bytes += rec.payload.size();
    if (!batch.records.empty() && bytes > max_bytes) break;
    batch.records.push_back(std::move(rec));
  }
  return batch;
}

void AckTracker::join(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  acked_.emplace(session, 0);
}

void AckTracker::leave(std::uint64_t session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    acked_.erase(session);
  }
  // A departure can only shrink the quorum; waiters re-check so a
  // now-unreachable quorum times out against `abort` instead of hanging
  // on a count that can no longer be met.
  cv_.notify_all();
}

void AckTracker::ack(std::uint64_t session, std::uint64_t seq) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = acked_.find(session);
    if (it == acked_.end() || it->second >= seq) return;
    it->second = seq;
  }
  cv_.notify_all();
}

std::size_t AckTracker::sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acked_.size();
}

std::uint64_t AckTracker::max_acked() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t best = 0;
  for (const auto& [_, seq] : acked_) best = std::max(best, seq);
  return best;
}

std::uint64_t AckTracker::min_acked() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (acked_.empty()) return 0;
  std::uint64_t worst = UINT64_MAX;
  for (const auto& [_, seq] : acked_) worst = std::min(worst, seq);
  return worst;
}

std::uint64_t AckTracker::quorum_acked_locked(std::size_t k) const {
  // k == 0 means no follower acks are required (a majority of zero
  // configured peers — e.g. a promoted leader whose electorate was just
  // itself), so every position is trivially quorum-acked.
  if (k == 0) return UINT64_MAX;
  if (acked_.size() < k) return 0;
  std::vector<std::uint64_t> seqs;
  seqs.reserve(acked_.size());
  for (const auto& [_, seq] : acked_) seqs.push_back(seq);
  std::nth_element(seqs.begin(), seqs.begin() + (k - 1), seqs.end(),
                   std::greater<std::uint64_t>());
  return seqs[k - 1];
}

std::uint64_t AckTracker::quorum_acked(std::size_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quorum_acked_locked(k);
}

bool AckTracker::await(std::uint64_t seq, std::size_t k, int timeout_ms,
                       const std::function<bool()>& abort) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (quorum_acked_locked(k) < seq) {
    if (abort && abort()) return false;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout)
      return quorum_acked_locked(k) >= seq;
  }
  return true;
}

void AckTracker::wake() { cv_.notify_all(); }

}  // namespace crowdml::replica
