// Shared pieces of the replication plane: ack-mode parsing, the
// shipper's batch reader over the WAL, and the per-follower ack tracker
// that backs quorum waits. See docs/REPLICATION.md.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/messages.hpp"
#include "store/wal.hpp"

namespace crowdml::replica {

/// What an acked checkin promises about replication (--repl-ack):
///   kNone   - followers replicate asynchronously; acks never wait.
///   kAsync  - same wire behavior as kNone today, but followers send acks
///             so the leader can report replication lag truthfully.
///   kQuorum - a checkin's ack is held until a majority of configured
///             followers durably appended its WAL record (acked =>
///             replicated). See LogShipper::await_quorum.
enum class ReplAckMode { kNone, kAsync, kQuorum };

const char* repl_ack_mode_name(ReplAckMode mode);
std::optional<ReplAckMode> parse_repl_ack_mode(const std::string& name);

/// Shared-secret authentication for the replication plane (--repl-key-file).
/// Every Repl* payload is sealed as payload || HMAC-SHA256(key,
/// type_byte || payload): binding the frame type into the tag stops a
/// captured heartbeat from being replayed as a vote. An empty key
/// disables sealing (single-operator deployments on a trusted network) —
/// both sides must agree, since a sealed payload does not parse unsealed.
using ReplKey = std::vector<std::uint8_t>;

/// Number of tag bytes a sealed payload carries.
inline constexpr std::size_t kReplTagSize = 32;

/// Append the authentication tag (no-op when `key` is empty).
net::Bytes seal_repl_payload(const ReplKey& key, net::MessageType type,
                             const net::Bytes& payload);

/// Verify and strip the tag. nullopt when the tag is missing or wrong —
/// the caller must drop the frame (never fence on it: an attacker who
/// can forge epochs without the key could otherwise depose a leader).
/// No-op pass-through when `key` is empty.
std::optional<net::Bytes> open_repl_payload(const ReplKey& key,
                                            net::MessageType type,
                                            const net::Bytes& payload);

/// Load a shared key from a file of hex digits (whitespace ignored).
/// Throws std::runtime_error on a missing file or malformed hex.
ReplKey load_repl_key_file(const std::string& path);

/// One shipper read: WAL records after the follower's cursor, or the
/// discovery that the cursor predates the oldest surviving record
/// (compaction pruned it) and a snapshot must be sent instead.
struct ShipBatch {
  std::vector<store::WalRecord> records;
  bool gap = false;
};

/// Read the next batch to ship from `wal_dir`: records with
/// cursor < seq <= watermark, at most `max_records` of them and stopping
/// at the first record that would push the batch past `max_bytes`
/// (always keeping at least one so progress is guaranteed). The
/// watermark is the leader's committed position — records past it may
/// still be mid-group-commit and must not ship yet.
ShipBatch next_ship_batch(const std::string& wal_dir, std::uint64_t cursor,
                          std::uint64_t watermark, std::size_t max_records,
                          std::size_t max_bytes);

/// Tracks each live follower session's durably-acked WAL position and
/// lets the applier thread block until a quorum of them passes a seq.
/// Thread-safe; sessions call ack(), the applier calls await().
class AckTracker {
 public:
  void join(std::uint64_t session);
  void leave(std::uint64_t session);
  /// Record that `session` durably holds everything through `seq`
  /// (monotonic per session; stale regressions are ignored).
  void ack(std::uint64_t session, std::uint64_t seq);

  std::size_t sessions() const;
  /// Highest / lowest acked position among live sessions (0 when none).
  std::uint64_t max_acked() const;
  std::uint64_t min_acked() const;
  /// The position at least `k` live sessions have acked: the k-th
  /// largest acked seq, or 0 when fewer than k sessions are connected.
  /// k == 0 (no acks required) returns UINT64_MAX — trivially satisfied.
  std::uint64_t quorum_acked(std::size_t k) const;

  /// Block until quorum_acked(k) >= seq, `timeout_ms` elapses, or
  /// `abort` returns true (checked on every wake). Returns whether the
  /// quorum was reached.
  bool await(std::uint64_t seq, std::size_t k, int timeout_ms,
             const std::function<bool()>& abort);
  /// Wake all await() callers so they re-check `abort` (shutdown,
  /// fencing).
  void wake();

 private:
  std::uint64_t quorum_acked_locked(std::size_t k) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::uint64_t> acked_;
};

}  // namespace crowdml::replica
