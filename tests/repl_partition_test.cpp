// Network-partition chaos tests for automatic failover, built on
// net::FaultProxy. Two halves of the safety story:
//
//  1. A follower partitioned away from a live leader campaigns — and
//     must LOSE, because its log is behind the elector's. A blackholed
//     minority cannot depose a healthy leader (adopt-on-grant-only:
//     refusals carry epochs but never bump them).
//
//  2. A leader partitioned away from every follower keeps running — and
//     must never ack another checkin, because quorum acks are
//     unreachable. The caught-up follower promotes itself on the other
//     side; at no instant do two epochs both ack (no dual-leader acks),
//     and the winner holds every checkin acked before the partition.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "engine/epoll_server.hpp"
#include "net/auth.hpp"
#include "net/fault_proxy.hpp"
#include "net/tcp.hpp"
#include "opt/schedule.hpp"
#include "replica/epoch.hpp"
#include "replica/follower.hpp"
#include "replica/log_shipper.hpp"
#include "store/durable_store.hpp"

using namespace crowdml;
using replica::Follower;
using replica::FollowerOptions;
using replica::LogShipper;
using replica::ReplAckMode;
using replica::ShipperOptions;

namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "crowdml_part_XXXXXX")
            .string();
    if (!mkdtemp(tmpl.data())) throw std::runtime_error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

core::ServerConfig config() {
  core::ServerConfig c;
  c.param_dim = 4;
  c.num_classes = 3;
  return c;
}

std::unique_ptr<opt::Updater> sgd() {
  return std::make_unique<opt::SgdUpdater>(
      std::make_unique<opt::SqrtDecaySchedule>(1.0), 100.0);
}

net::CheckinMessage random_checkin(rng::Engine& eng, std::uint64_t device) {
  net::CheckinMessage m;
  m.device_id = device;
  for (int i = 0; i < 4; ++i)
    m.g_hat.push_back(static_cast<double>(eng() % 2001) / 1000.0 - 1.0);
  m.ns = 1 + static_cast<std::int64_t>(eng() % 10);
  m.ne_hat = static_cast<std::int64_t>(eng() % 3);
  for (int i = 0; i < 3; ++i)
    m.ny_hat.push_back(static_cast<std::int64_t>(eng() % 5));
  return m;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Send `count` signed checkins on one connection, counting acks and
/// nacks separately (a partitioned leader must produce only the latter).
void drive_checkins(std::uint16_t port, const net::DeviceCredentials& creds,
                    std::uint32_t seed, int count, long long* acked,
                    long long* nacked) {
  auto conn = net::TcpConnection::connect("127.0.0.1", port, 2000);
  ASSERT_TRUE(conn);
  conn->set_deadline_ms(20'000);
  rng::Engine eng(seed);
  for (int i = 0; i < count; ++i) {
    net::CheckinMessage m = random_checkin(eng, creds.device_id);
    m.auth_tag = creds.sign(m.body());
    if (!conn->send_frame(
            net::encode_frame(net::MessageType::kCheckin, m.serialize())))
      return;
    const auto reply = conn->recv_frame();
    if (!reply) return;
    const auto ack =
        net::AckMessage::deserialize(net::decode_frame(*reply).payload);
    ++(ack.ok ? *acked : *nacked);
  }
}

}  // namespace

// A follower that can talk TO the leader but hears nothing back (its
// inbound direction blackholed) starves, campaigns — and loses every
// election, because the connected elector's log outruns it. The live
// leader is never fenced and never stops acking.
TEST(ReplPartition, BlackholedFollowerCannotDeposeLiveLeader) {
  obs::MetricsRegistry reg;

  TempDir ldir;
  core::Server leader(config(), sgd(), rng::Engine(1));
  store::DurableStoreOptions so;
  so.wal.metrics = &reg;
  auto lstore = std::make_unique<store::DurableStore>(ldir.path, so);
  lstore->recover(leader);
  lstore->attach(leader);
  lstore->set_group_commit(true);

  ShipperOptions shopts;
  shopts.ack_mode = ReplAckMode::kQuorum;
  shopts.quorum_follower_acks = 1;
  shopts.quorum_timeout_ms = 3000;
  shopts.heartbeat_interval_ms = 40;
  shopts.metrics = &reg;
  auto shipper = std::make_unique<LogShipper>(leader, *lstore, 1, shopts);

  net::AuthRegistry auth{rng::Engine(2)};
  engine::EngineConfig ecfg;
  ecfg.metrics = &reg;
  ecfg.group_commit = [&] {
    if (!lstore->commit_group()) return false;
    shipper->notify_committed();
    return shipper->await_quorum(lstore->wal().last_seq());
  };
  auto engine = std::make_unique<engine::EpollCrowdServer>(leader, auth, ecfg);

  // Healthy elector f2: direct connection, long election fuse.
  TempDir f2dir;
  core::Server srv2(config(), sgd(), rng::Engine(1));
  FollowerOptions fo2;
  fo2.leader_port = shipper->port();
  fo2.follower_id = 2;
  fo2.store.wal.metrics = &reg;
  fo2.metrics = &reg;
  fo2.reconnect_backoff_ms = 20;
  fo2.detector.election_timeout_min_ms = 60'000;
  fo2.rng_seed = 2;
  auto f2 = std::make_unique<Follower>(srv2, f2dir.path, fo2);
  f2->start();
  ASSERT_TRUE(wait_until([&] { return f2->vote_port() != 0; }));

  // Seed the log BEFORE the starved follower exists: its durable
  // position will trail f2's from the first ballot.
  const auto creds = auth.enroll();
  long long acked = 0, nacked = 0;
  drive_checkins(engine->port(), creds, 7, 30, &acked, &nacked);
  ASSERT_EQ(acked, 30);
  ASSERT_TRUE(wait_until([&] { return f2->applied_seq() >= 30; }));

  // Starved candidate f1: every leader->follower byte swallowed, so it
  // sees a leader that accepts its hello and then never speaks.
  net::FaultPolicy blackhole;
  blackhole.blackhole_prob = 1.0;
  net::FaultProxy proxy("127.0.0.1", shipper->port(), blackhole,
                        rng::Engine(3));
  TempDir f1dir;
  core::Server srv1(config(), sgd(), rng::Engine(1));
  FollowerOptions fo1;
  fo1.leader_port = proxy.port();
  fo1.follower_id = 1;
  fo1.store.wal.metrics = &reg;
  fo1.metrics = &reg;
  fo1.reconnect_backoff_ms = 20;
  fo1.detector.election_timeout_min_ms = 150;
  fo1.detector.election_timeout_max_ms = 250;
  fo1.peers = replica::parse_peer_list(
      "127.0.0.1:" + std::to_string(f2->vote_port()));
  fo1.rng_seed = 1;
  auto f1 = std::make_unique<Follower>(srv1, f1dir.path, fo1);
  f1->start();

  ASSERT_TRUE(wait_until([&] { return f1->elections_lost() >= 2; }))
      << "the starved follower never campaigned (or, worse, won)";
  EXPECT_EQ(f1->elections_won(), 0)
      << "a behind-the-log candidate must never win";
  EXPECT_FALSE(f1->promoted());
  EXPECT_EQ(f1->applied_seq(), 0u);

  // Adopt-on-grant-only: f2 refused those ballots without bumping its
  // own epoch, so the live leader was never cascade-fenced.
  EXPECT_EQ(f2->epoch(), 1u);
  EXPECT_FALSE(shipper->fenced());

  // The leader still quorum-acks through the partition: zero dual-epoch
  // acks because there is exactly one acking epoch — the old one.
  long long acked2 = 0, nacked2 = 0;
  drive_checkins(engine->port(), creds, 8, 20, &acked2, &nacked2);
  EXPECT_EQ(acked2, 20);
  EXPECT_EQ(nacked2, 0);
  EXPECT_GT(proxy.counts().blackholed, 0);

  f1->shutdown();
  f2->shutdown();
  engine->shutdown();
  shipper->shutdown();
  proxy.shutdown();
}

// Both followers reach the leader only through one proxy; killing the
// proxy isolates the (still-running) leader. The caught-up candidate
// wins the election on the majority side, and the deposed leader — still
// serving devices — can never ack again: every post-partition checkin is
// nacked because its ack quorum is unreachable, and the first epoch-2
// hello it hears fences it for good.
TEST(ReplPartition, IsolatedLeaderNacksEverythingWhileMajorityPromotes) {
  obs::MetricsRegistry reg;

  TempDir ldir;
  core::Server leader(config(), sgd(), rng::Engine(1));
  store::DurableStoreOptions so;
  so.wal.metrics = &reg;
  auto lstore = std::make_unique<store::DurableStore>(ldir.path, so);
  lstore->recover(leader);
  lstore->attach(leader);
  lstore->set_group_commit(true);

  ShipperOptions shopts;
  shopts.ack_mode = ReplAckMode::kQuorum;
  shopts.quorum_follower_acks = 1;
  shopts.quorum_timeout_ms = 400;  // fast nacks once partitioned
  shopts.heartbeat_interval_ms = 40;
  shopts.metrics = &reg;
  auto shipper = std::make_unique<LogShipper>(leader, *lstore, 1, shopts);

  // The partition switch: both followers relay through this proxy.
  net::FaultProxy proxy("127.0.0.1", shipper->port(), net::FaultPolicy{},
                        rng::Engine(3));

  net::AuthRegistry auth{rng::Engine(2)};
  engine::EngineConfig ecfg;
  ecfg.metrics = &reg;
  ecfg.group_commit = [&] {
    if (!lstore->commit_group()) return false;
    shipper->notify_committed();
    return shipper->await_quorum(lstore->wal().last_seq());
  };
  auto engine = std::make_unique<engine::EpollCrowdServer>(leader, auth, ecfg);

  // Elector f2 (long fuse) first, then candidate f1 (short fuse).
  TempDir f2dir;
  core::Server srv2(config(), sgd(), rng::Engine(1));
  FollowerOptions fo2;
  fo2.leader_port = proxy.port();
  fo2.follower_id = 2;
  fo2.store.wal.metrics = &reg;
  fo2.metrics = &reg;
  fo2.reconnect_backoff_ms = 20;
  fo2.detector.election_timeout_min_ms = 60'000;
  fo2.rng_seed = 2;
  auto f2 = std::make_unique<Follower>(srv2, f2dir.path, fo2);
  f2->start();
  ASSERT_TRUE(wait_until([&] { return f2->vote_port() != 0; }));

  TempDir f1dir;
  core::Server srv1(config(), sgd(), rng::Engine(1));
  FollowerOptions fo1;
  fo1.leader_port = proxy.port();
  fo1.follower_id = 1;
  fo1.store.wal.metrics = &reg;
  fo1.metrics = &reg;
  fo1.reconnect_backoff_ms = 20;
  fo1.detector.election_timeout_min_ms = 200;
  fo1.detector.election_timeout_max_ms = 350;
  fo1.peers = replica::parse_peer_list(
      "127.0.0.1:" + std::to_string(f2->vote_port()));
  fo1.rng_seed = 1;
  auto f1 = std::make_unique<Follower>(srv1, f1dir.path, fo1);
  f1->start();
  ASSERT_TRUE(wait_until([&] { return f1->connected() && f2->connected(); }));

  // Phase 1: quorum-acked traffic, then let both replicas drain fully
  // (equal logs keep the election outcome deterministic).
  const auto creds = auth.enroll();
  long long acked = 0, nacked = 0;
  drive_checkins(engine->port(), creds, 7, 40, &acked, &nacked);
  ASSERT_EQ(acked, 40);
  ASSERT_TRUE(wait_until([&] {
    return f1->applied_seq() == leader.version() &&
           f2->applied_seq() == leader.version();
  }));
  ASSERT_EQ(f1->elections_started(), 0);

  // Partition: sever both follower links. The leader process is alive
  // and devices still reach it — only its replication plane is gone.
  proxy.shutdown();

  ASSERT_TRUE(wait_until([&] { return f1->promoted(); }))
      << "the majority side never elected a new leader";
  EXPECT_EQ(f1->epoch(), 2u);
  ASSERT_TRUE(wait_until([&] { return f2->epoch() == 2u; }));
  // Zero acked-checkin loss across the failover.
  EXPECT_GE(static_cast<long long>(f1->applied_seq()), acked);

  // Phase 2: the deposed leader takes checkins but can never ack one —
  // its quorum is on the other side of the partition. Every reply is a
  // nack, so the "two leaders" moment has exactly one acking epoch.
  long long acked2 = 0, nacked2 = 0;
  drive_checkins(engine->port(), creds, 8, 3, &acked2, &nacked2);
  EXPECT_EQ(acked2, 0) << "a partitioned leader released a quorum ack";
  EXPECT_EQ(nacked2, 3);
  EXPECT_GE(lstore->wal().last_seq(), static_cast<std::uint64_t>(acked))
      << "nacked checkins may be logged, but acked ones must all predate "
         "the partition";

  // Heal the partition the dangerous way: an epoch-2 replica dials the
  // deposed leader directly. One hello fences it permanently.
  f2->shutdown();
  f2.reset();  // release the store so the dir can be reopened
  FollowerOptions fo3;
  fo3.leader_port = shipper->port();  // no proxy: straight at the ghost
  fo3.follower_id = 9;
  fo3.store.wal.metrics = &reg;
  fo3.metrics = &reg;
  fo3.reconnect_backoff_ms = 20;
  auto probe = std::make_unique<Follower>(srv2, f2dir.path, fo3);
  EXPECT_EQ(probe->epoch(), 2u) << "the granted epoch must have been durable";
  probe->start();
  ASSERT_TRUE(wait_until([&] { return shipper->fenced(); }));
  EXPECT_FALSE(shipper->await_quorum(lstore->wal().last_seq()));
  // The probe still holds exactly the pre-partition history: the fenced
  // leader must not have fed it the nacked (epoch-1, post-partition)
  // records.
  EXPECT_EQ(probe->applied_seq(), static_cast<std::uint64_t>(acked))
      << "the fenced leader fed the probe post-partition records";

  probe->shutdown();
  f1->shutdown();
  engine->shutdown();
  shipper->shutdown();
}
