#include "core/device.hpp"

#include <cassert>
#include <cmath>

#include "obs/profile.hpp"
#include "rng/distributions.hpp"

namespace crowdml::core {

namespace {

// Hot-path profiling scopes record into the process-wide registry
// (timings only — see docs/OBSERVABILITY.md "Always-on timings").
obs::Histogram& gradient_seconds() {
  static obs::Histogram& h = obs::default_registry().histogram(
      "crowdml_device_gradient_seconds",
      "Per-minibatch gradient compute (Device Routine 2)",
      obs::Provenance::kTiming);
  return h;
}

obs::Histogram& sanitize_seconds() {
  static obs::Histogram& h = obs::default_registry().histogram(
      "crowdml_device_sanitize_seconds",
      "Per-minibatch sanitization (Device Routine 3, Eqs. 10-12)",
      obs::Provenance::kTiming);
  return h;
}

}  // namespace

Device::Device(DeviceConfig config, const models::Model& model, rng::Engine eng)
    : config_(config),
      model_(model),
      eng_(eng),
      accountant_(config.budget, model.num_classes()) {
  assert(config_.minibatch_size >= 1);
  assert(config_.max_buffer >= config_.minibatch_size);
  assert(config_.holdout_fraction >= 0.0 && config_.holdout_fraction < 1.0);
  buffer_.reserve(config_.minibatch_size);
}

bool Device::on_sample(models::Sample s) {
  if (buffer_.size() >= config_.max_buffer) {
    ++dropped_samples_;  // Routine 1: stop collection to prevent outage
    return false;
  }
  buffer_.push_back(std::move(s));
  return true;
}

bool Device::wants_checkout() const {
  return !in_flight_ && buffer_.size() >= config_.minibatch_size;
}

void Device::begin_checkout() {
  assert(!in_flight_);
  in_flight_ = true;
}

void Device::on_checkout_failed() { in_flight_ = false; }

void Device::set_credentials(net::DeviceCredentials creds) {
  config_.device_id = creds.device_id;
  creds_ = std::move(creds);
}

Device::BatchStats Device::compute_batch(const linalg::Vector& w) {
  assert(!buffer_.empty());
  assert(w.size() == model_.param_dim());

  const std::size_t ns = buffer_.size();
  const std::size_t classes = model_.num_classes();

  // Remark 2: optionally hold out samples for unbiased error estimation.
  std::vector<bool> held_out(ns, false);
  bool any_held_out = false;
  if (config_.holdout_fraction > 0.0) {
    for (std::size_t i = 0; i < ns; ++i) {
      held_out[i] = rng::uniform(eng_) < config_.holdout_fraction;
      any_held_out = any_held_out || held_out[i];
    }
    // Degenerate draws (all held out) fall back to using every sample for
    // the gradient so the checkin always carries information.
    bool any_train = false;
    for (std::size_t i = 0; i < ns; ++i) any_train = any_train || !held_out[i];
    if (!any_train) held_out.assign(ns, false);
  }

  BatchStats stats;
  stats.ns = ns;
  stats.ny.assign(classes, 0);
  stats.misclassified.reserve(ns);

  // Device Routine 2: predictions, counts, averaged gradient. For
  // regressors, "misclassified" means the prediction misses the target by
  // more than the configured tolerance, and all label mass falls in the
  // single pseudo-class 0.
  const bool classifier = model_.is_classifier();
  stats.g.assign(model_.param_dim(), 0.0);
  {
    obs::TimedScope gradient_timer(gradient_seconds());
    for (std::size_t i = 0; i < ns; ++i) {
      const models::Sample& s = buffer_[i];
      bool wrong;
      if (classifier) {
        const int y = s.label();
        assert(y >= 0 && static_cast<std::size_t>(y) < classes);
        wrong = model_.predict_class(w, s.x) != y;
        ++stats.ny[static_cast<std::size_t>(y)];
      } else {
        wrong = std::abs(model_.predict(w, s.x) - s.y) >
                config_.regression_tolerance;
        ++stats.ny[0];
      }
      stats.misclassified.push_back(wrong);
      const bool count_error = !any_held_out || held_out[i];
      if (count_error && wrong) ++stats.ne;
      if (wrong) ++stats.true_errors;
      if (!held_out[i]) {
        model_.add_loss_gradient(w, s, stats.g);
        ++stats.gradient_samples;
      }
    }
    assert(stats.gradient_samples > 0);
    linalg::scal(1.0 / static_cast<double>(stats.gradient_samples), stats.g);
    model_.add_regularization_gradient(w, stats.g);  // g~ + lambda w
  }
  return stats;
}

net::CheckinMessage Device::sanitize_batch(const BatchStats& stats,
                                           std::uint64_t param_version,
                                           std::size_t noise_cohort) {
  // Device Routine 3: sanitize with the per-batch sensitivity S/b
  // (Appendix A — the averaged gradient over `gradient_samples` samples
  // has sensitivity per_sample_sensitivity / gradient_samples). Laplace
  // noise on the L1 sensitivity gives pure eps-DP (Eq. 10); the Gaussian
  // variant uses the L2 sensitivity for (eps, delta)-DP (footnote 1).
  // noise_cohort > 1 inflates every epsilon by sqrt(noise_cohort) — only
  // valid when the release is pairwise-masked into a cohort sum.
  const std::size_t classes = model_.num_classes();
  const double eps_g =
      privacy::cohort_scaled_epsilon(config_.budget.eps_gradient, noise_cohort);
  const double eps_e =
      privacy::cohort_scaled_epsilon(config_.budget.eps_error, noise_cohort);
  const double eps_y =
      privacy::cohort_scaled_epsilon(config_.budget.eps_label, noise_cohort);

  net::CheckinMessage msg;
  msg.device_id = config_.device_id;
  msg.param_version = param_version;
  {
    obs::TimedScope sanitize_timer(sanitize_seconds());
    if (config_.budget.mechanism == privacy::NoiseMechanism::kGaussian) {
      const double l2_sens = model_.per_sample_l2_sensitivity() /
                             static_cast<double>(stats.gradient_samples);
      msg.g_hat = privacy::sanitize_vector_gaussian(
          eng_, stats.g, l2_sens, eps_g, config_.budget.delta);
    } else {
      const double l1_sens = model_.per_sample_l1_sensitivity() /
                             static_cast<double>(stats.gradient_samples);
      msg.g_hat = privacy::sanitize_vector(eng_, stats.g, l1_sens, eps_g);
    }
    msg.ns = static_cast<std::int64_t>(stats.ns);
    msg.ne_hat = privacy::sanitize_count(eng_, stats.ne, eps_e);
    msg.ny_hat.resize(classes);
    for (std::size_t k = 0; k < classes; ++k)
      msg.ny_hat[k] = privacy::sanitize_count(eng_, stats.ny[k], eps_y);
  }
  if (creds_) msg.auth_tag = creds_->sign(msg.body());
  return msg;
}

void Device::consume_buffer(const BatchStats& stats) {
  lifetime_samples_ += static_cast<long long>(stats.ns);
  lifetime_errors_ += static_cast<long long>(stats.true_errors);
  buffer_.clear();
  in_flight_ = false;
}

CheckinResult Device::compute_checkin(const linalg::Vector& w,
                                      std::uint64_t param_version) {
  BatchStats stats = compute_batch(w);

  CheckinResult result;
  result.message = sanitize_batch(stats, param_version, 1);
  result.batch_size = stats.ns;
  result.true_errors = stats.true_errors;
  result.misclassified = std::move(stats.misclassified);

  accountant_.record_checkin(stats.ns);
  consume_buffer(stats);
  return result;
}

MaskedCheckinResult Device::compute_checkin_masked(const linalg::Vector& w,
                                                   std::uint64_t param_version,
                                                   std::size_t min_survivors) {
  assert(min_survivors >= 2);
  BatchStats stats = compute_batch(w);

  MaskedCheckinResult result;
  result.batch_size = stats.ns;
  result.true_errors = stats.true_errors;

  // The cohort release: cohort-scaled noise, quantized for exact mask
  // cancellation. Counts travel as two's-complement u64 at unit scale;
  // ns stays public plaintext (the server needs it for Eq. 14 either way).
  const net::CheckinMessage scaled =
      sanitize_batch(stats, param_version, min_survivors);
  result.contribution.param_version = param_version;
  result.contribution.ns = scaled.ns;
  result.contribution.g.reserve(scaled.g_hat.size());
  for (const double v : scaled.g_hat)
    result.contribution.g.push_back(secagg::quantize(v));
  result.contribution.ne = secagg::encode_count(scaled.ne_hat);
  result.contribution.ny.reserve(scaled.ny_hat.size());
  for (const std::int64_t n : scaled.ny_hat)
    result.contribution.ny.push_back(secagg::encode_count(n));

  // The classic fallback: independent full-noise draws over the same
  // batch, pre-signed so an aborted round needs no recompute. Charged
  // only if actually sent (charge_fallback).
  result.fallback = sanitize_batch(stats, param_version, 1);

  accountant_.record_cohort_checkin(
      stats.ns, std::sqrt(static_cast<double>(min_survivors)));
  result.misclassified = std::move(stats.misclassified);
  consume_buffer(stats);
  return result;
}

void Device::charge_fallback(std::size_t batch_samples) {
  accountant_.record_fallback_checkin(batch_samples);
}

}  // namespace crowdml::core
