#include "obs/trace.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace crowdml::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string quoted(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

std::string render_double(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace

TraceField::TraceField(std::string k, const char* v)
    : key(std::move(k)), rendered(quoted(v)) {}
TraceField::TraceField(std::string k, const std::string& v)
    : key(std::move(k)), rendered(quoted(v)) {}
TraceField::TraceField(std::string k, bool v)
    : key(std::move(k)), rendered(v ? "true" : "false") {}
TraceField::TraceField(std::string k, double v)
    : key(std::move(k)), rendered(render_double(v)) {}

TraceSink::TraceSink(const std::string& path)
    : epoch_(std::chrono::steady_clock::now()),
      file_(path, std::ios::trunc),
      out_(&file_) {
  if (!file_)
    throw std::runtime_error("TraceSink: cannot open trace file " + path);
}

TraceSink::TraceSink(std::ostream& out)
    : epoch_(std::chrono::steady_clock::now()), out_(&out) {}

void TraceSink::event(std::string_view kind,
                      std::initializer_list<TraceField> fields) {
  std::string tail;
  tail.reserve(64);
  tail += ",\"event\":";
  tail += quoted(kind);
  for (const auto& f : fields) {
    tail += ',';
    tail += quoted(f.key);
    tail += ':';
    tail += f.rendered;
  }
  tail += "}\n";
  // The timestamp is read under the lock so line order in the file always
  // matches timestamp order (traces promise monotone ts_us).
  std::lock_guard lock(mu_);
  const auto ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - epoch_)
                         .count();
  *out_ << "{\"ts_us\":" << ts_us << tail;
  ++events_;
}

long long TraceSink::events_written() const {
  std::lock_guard lock(mu_);
  return events_;
}

void TraceSink::flush() {
  std::lock_guard lock(mu_);
  out_->flush();
}

}  // namespace crowdml::obs
