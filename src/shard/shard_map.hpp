// Static device partitioning for sharded leaders (docs/SHARDING.md).
//
// A ShardMap is the published list of shard-leader addresses, indexed
// by shard id. Devices (and servers) route a device id to its owning
// shard with a *stable* hash — the same mix on every process, pinned by
// tests — so the fleet partitions identically everywhere without any
// coordination traffic: the map itself is the only shared state, and a
// server that receives a checkin for a device it does not own answers
// a pre-application "wrong shard; shard=<addr>" nack instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace crowdml::shard {

/// Stable 64-bit mix of a device id (splitmix64 finalizer). This is a
/// wire-adjacent contract: every device and every server must agree on
/// it forever, or the fleet's partitioning tears. Changing it is a
/// flag-day event, which is why it is pinned byte-for-byte by
/// tests/shard_test.cpp.
std::uint64_t stable_device_hash(std::uint64_t device_id);

/// The published shard roster: addr(i) is shard i's device-facing
/// host:port. size() == 1 means sharding is structurally off — every
/// device maps to shard 0 and no redirect can ever fire, which is what
/// keeps `--shards 1` byte-identical to the unsharded path.
class ShardMap {
 public:
  ShardMap() = default;
  explicit ShardMap(std::vector<std::string> addrs);

  /// Parse "host:port,host:port,..." (the --shard-map flag). nullopt on
  /// an empty list or any entry split_host_port rejects.
  static std::optional<ShardMap> parse(const std::string& csv);

  std::size_t size() const { return addrs_.size(); }
  bool empty() const { return addrs_.empty(); }

  /// The owning shard of a device: stable_device_hash(id) mod size().
  /// Must not be called on an empty map.
  std::size_t shard_of(std::uint64_t device_id) const;

  const std::string& addr(std::size_t shard) const { return addrs_[shard]; }
  const std::vector<std::string>& addrs() const { return addrs_; }

 private:
  std::vector<std::string> addrs_;
};

/// WAL namespace of shard `shard_id` in a fleet of `shards` under one
/// `base` dir: shards <= 1 is `base` itself (byte-identical to the
/// unsharded layout), otherwise base/shard-<id, 3 digits>. Mirrors
/// store::DurableStore::instance_dir, and nests outside it — a pooled
/// shard would put its instance dirs inside its shard dir.
std::string shard_wal_dir(const std::string& base, std::size_t shard_id,
                          std::size_t shards);

}  // namespace crowdml::shard
