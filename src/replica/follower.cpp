#include "replica/follower.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "core/checkpoint.hpp"
#include "net/messages.hpp"
#include "obs/profile.hpp"

namespace crowdml::replica {

namespace {

obs::MetricsRegistry& registry_of(const FollowerOptions& opts) {
  return opts.metrics ? *opts.metrics : obs::default_registry();
}

}  // namespace

Follower::Follower(core::Server& server, std::string dir,
                   FollowerOptions options)
    : server_(server),
      dir_(std::move(dir)),
      opts_(std::move(options)),
      epoch_store_(opts_.epoch_dir.empty() ? dir_ : opts_.epoch_dir),
      witnessed_store_(opts_.epoch_dir.empty() ? dir_ : opts_.epoch_dir,
                       "witnessed-epoch"),
      detector_(opts_.detector,
                rng::Engine(opts_.rng_seed ^
                            (opts_.follower_id * 0x9E3779B97F4A7C15ULL + 1))),
      nonce_rng_(opts_.rng_seed ^
                 (opts_.follower_id * 0x9E3779B97F4A7C15ULL + 2)),
      records_applied_(registry_of(opts_).counter(
          "crowdml_repl_records_applied_total",
          "Shipped WAL records applied and made durable on this follower",
          obs::Provenance::kTransportEvent)),
      stale_frames_refused_(registry_of(opts_).counter(
          "crowdml_repl_stale_frames_refused_total",
          "Replication frames refused because their epoch predates the "
          "follower's promised epoch",
          obs::Provenance::kTransportEvent)),
      snapshots_installed_(registry_of(opts_).counter(
          "crowdml_repl_snapshots_installed_total",
          "Full-state snapshots installed to catch up past pruned history",
          obs::Provenance::kTransportEvent)),
      reconnects_(registry_of(opts_).counter(
          "crowdml_repl_reconnects_total",
          "Attempts to (re)connect to the leader's replication port",
          obs::Provenance::kTransportEvent)),
      lease_expirations_(registry_of(opts_).counter(
          "crowdml_repl_lease_expirations_total",
          "Leader leases that lapsed on this follower (the trigger for an "
          "election)",
          obs::Provenance::kTransportEvent)),
      elections_started_(registry_of(opts_).counter(
          "crowdml_repl_elections_started_total",
          "Candidacies this follower opened after its failure detector "
          "fired",
          obs::Provenance::kTransportEvent)),
      elections_won_(registry_of(opts_).counter(
          "crowdml_repl_elections_won_total",
          "Elections this follower won (each one is a promotion)",
          obs::Provenance::kTransportEvent)),
      elections_lost_(registry_of(opts_).counter(
          "crowdml_repl_elections_lost_total",
          "Candidacies that failed to reach a majority",
          obs::Provenance::kTransportEvent)),
      auth_failed_(registry_of(opts_).counter(
          "crowdml_repl_auth_failed_total",
          "Replication-plane frames dropped for a missing or invalid "
          "HMAC tag",
          obs::Provenance::kTransportEvent)),
      epoch_gauge_(registry_of(opts_).gauge(
          "crowdml_repl_epoch",
          "Highest replication epoch this node has durably promised to",
          obs::Provenance::kTransportEvent)),
      apply_seconds_(registry_of(opts_).histogram(
          "crowdml_repl_apply_seconds",
          "One shipped batch: deterministic replay + WAL append + fsync",
          obs::Provenance::kTiming)) {
  leader_host_ = opts_.leader_host;
  leader_port_ = opts_.leader_port;
  epoch_.store(epoch_store_.load());
  // The witness reloads from its own register, never from the promise: a
  // failed candidacy inflates the promise, and a restart must not turn
  // that into a hello that fences the live leader. (A restarted granter
  // still fences its deposed leader — via the refusal ack its stale
  // frames draw, not via the hello.) Clamped for the invariant; a
  // pre-upgrade directory simply has no witnessed register yet and
  // under-advertises at 0, which is always safe.
  witnessed_epoch_.store(std::min(epoch_.load(), witnessed_store_.load()));
  epoch_gauge_.set(static_cast<double>(epoch_.load()));
  store_ = std::make_unique<store::DurableStore>(dir_, opts_.store);
  recovery_ = store_->recover(server_);
}

Follower::~Follower() { shutdown(); }

void Follower::start() {
  if (thread_.joinable()) return;
  if (detector_.enabled()) {
    VoteListener::Options vo;
    vo.port = opts_.vote_port;
    vo.key = opts_.key;
    vo.metrics = opts_.metrics;
    vo.trace = opts_.trace;
    votes_ = std::make_unique<VoteListener>(
        std::move(vo),
        [this](const net::ReplVoteMessage& req) { return grant_vote(req); });
    if (!votes_->start()) {
      votes_.reset();
      set_fatal("vote listener bind failed on port " +
                std::to_string(opts_.vote_port));
      return;
    }
    // A leader that never appears is as dead as one that crashed: the
    // detector starts counting from here, not from the first heartbeat.
    detector_.arm();
  }
  thread_ = std::thread([this] { run(); });
}

void Follower::shutdown() {
  if (stopping_.exchange(true)) {
    if (votes_) votes_->shutdown();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (live_conn_) live_conn_->shutdown_both();
  }
  if (thread_.joinable()) thread_.join();
  // After the replication thread is gone: the listener port must be free
  // before the promotion handoff binds its shipper there.
  if (votes_) votes_->shutdown();
}

std::uint16_t Follower::vote_port() const {
  return votes_ ? votes_->port() : 0;
}

std::uint64_t Follower::read_lag() const {
  const std::uint64_t committed = leader_committed_.load();
  const std::uint64_t applied = server_.version();
  return committed > applied ? committed - applied : 0;
}

void Follower::set_leader_address(const std::string& host,
                                  std::uint16_t port) {
  std::lock_guard<std::mutex> lock(leader_mu_);
  leader_host_ = host;
  leader_port_ = port;
}

std::uint64_t Follower::durable_position() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return durable_position_locked();
}

std::uint64_t Follower::durable_position_locked() const {
  if (!store_) return recovery_.recovered_version;
  return std::max(recovery_.recovered_version, store_->wal().last_seq());
}

void Follower::set_fatal(const std::string& reason) {
  fatal_.store(true);
  if (opts_.trace)
    opts_.trace->event("repl_follower_fatal", {{"reason", reason}});
}

bool Follower::accept_epoch(std::uint64_t frame_epoch) {
  std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
  const std::uint64_t promised = epoch_.load();
  if (frame_epoch < promised) {
    ++stale_frames_refused_;
    if (opts_.trace)
      opts_.trace->event("repl_stale_frame_refused",
                         {{"frame_epoch", frame_epoch},
                          {"promised_epoch", promised}});
    return false;
  }
  if (frame_epoch > promised) {
    // Durable before honored: a crash after this point must still refuse
    // the old term on restart.
    try {
      epoch_store_.store(frame_epoch);
    } catch (const EpochError& e) {
      if (opts_.trace)
        opts_.trace->event("repl_epoch_store_failed", {{"reason", e.what()}});
      return false;  // drop the connection; retry later
    }
    epoch_.store(frame_epoch);
    epoch_gauge_.set(static_cast<double>(frame_epoch));
    if (opts_.trace)
      opts_.trace->event("repl_epoch_adopted", {{"epoch", frame_epoch}});
  }
  // An accepted frame is proof some leader speaks this epoch — the only
  // kind of epoch the hello may fence a leader with. Persisted to its
  // own register (best-effort: the witness is an advertisement floor,
  // not a safety promise — an unwritable register just means a restart
  // under-advertises, which can never fence anyone wrongly).
  if (frame_epoch > witnessed_epoch_.load()) {
    try {
      witnessed_store_.store(frame_epoch);
    } catch (const EpochError& e) {
      if (opts_.trace)
        opts_.trace->event("repl_witnessed_store_failed",
                           {{"reason", e.what()}});
    }
    witnessed_epoch_.store(frame_epoch);
  }
  return true;
}

void Follower::send_refusal_ack(net::TcpConnection& conn) {
  net::ReplAckMessage ack;
  // The promise, not the witness: this is the step-down signal. A leader
  // whose epoch is below it learns it was deposed, fences, and stops
  // heartbeating — which is what lets its healthy followers elect a
  // successor instead of nacking writes behind a zombie's leases.
  ack.epoch = epoch_.load();
  ack.durable_seq = durable_position();
  conn.send_frame(net::encode_frame(
      net::MessageType::kReplAck,
      seal_repl_payload(opts_.key, net::MessageType::kReplAck,
                        ack.serialize())));
}

void Follower::run() {
  int backoff = opts_.reconnect_backoff_ms;
  while (!stopping_.load() && !fatal_.load() && !promoted_.load()) {
    if (detector_.due()) {
      try_elect();
      continue;
    }
    std::string host;
    std::uint16_t port;
    {
      std::lock_guard<std::mutex> lock(leader_mu_);
      host = leader_host_;
      port = leader_port_;
    }
    ++reconnects_;
    auto conn =
        net::TcpConnection::connect(host, port, opts_.connect_timeout_ms);
    if (!conn) {
      // Interruptible backoff, capped — and sliced so a dead leader still
      // trips the election deadline between attempts.
      for (int slept = 0; slept < backoff && !stopping_.load() &&
                          !detector_.due();
           slept += 20)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      backoff = std::min(backoff * 2, opts_.reconnect_backoff_max_ms);
      continue;
    }
    backoff = opts_.reconnect_backoff_ms;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      live_conn_ = &*conn;
    }
    if (stopping_.load()) {
      std::lock_guard<std::mutex> lock(conn_mu_);
      live_conn_ = nullptr;
      break;
    }
    const ServeResult outcome = serve_connection(*conn);
    connected_.store(false);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      live_conn_ = nullptr;
    }
    if (outcome == ServeResult::kFatal) break;
    // kElect loops to the top, where detector_.due() routes into
    // try_elect; kReconnect just reconnects (possibly to a new leader,
    // when a granted vote retargeted us mid-session).
  }
}

Follower::ServeResult Follower::serve_connection(net::TcpConnection& conn) {
  net::ReplHelloMessage hello;
  hello.follower_id = opts_.follower_id;
  // Advertise the witnessed epoch, not the promised one: a candidacy
  // that never won must not depose the leader it failed to replace.
  hello.epoch = witnessed_epoch_.load();
  hello.last_seq = durable_position();
  // Resume an interrupted chunked snapshot at its first missing byte.
  hello.snapshot_version = pending_snap_version_;
  hello.snapshot_offset = static_cast<std::uint64_t>(pending_snap_.size());
  hello.instance_id = opts_.instance_id;
  conn.set_deadline_ms(opts_.io_deadline_ms);
  if (!conn.send_frame(net::encode_frame(
          net::MessageType::kReplHello,
          seal_repl_payload(opts_.key, net::MessageType::kReplHello,
                            hello.serialize()))))
    return ServeResult::kReconnect;
  connected_.store(true);
  if (opts_.trace)
    opts_.trace->event("repl_connected", {{"last_seq", hello.last_seq},
                                          {"epoch", hello.epoch}});

  while (!stopping_.load()) {
    // Wait for the next frame. With the detector enabled the wait is
    // sliced so a silent leader still trips the election deadline;
    // without it, block indefinitely (shutdown_both unblocks this).
    // Individual sends get the I/O deadline back.
    conn.set_deadline_ms(detector_.enabled() ? opts_.heartbeat_poll_ms
                                             : net::TcpConnection::kNoDeadline);
    auto frame = conn.recv_frame();
    if (!frame) {
      if (detector_.enabled() &&
          conn.last_error() == net::NetError::kTimeout) {
        if (detector_.due()) return ServeResult::kElect;
        continue;  // poll slice expired; the leader is merely quiet
      }
      return ServeResult::kReconnect;
    }
    conn.set_deadline_ms(opts_.io_deadline_ms);

    net::Frame f;
    try {
      f = net::decode_frame(*frame);
    } catch (const net::CodecError&) {
      return ServeResult::kReconnect;  // corrupt frame: reconnect
    }
    const auto body = open_repl_payload(opts_.key, f.type, f.payload);
    if (!body) {
      // Unauthenticated frames are dropped, never honored and never
      // fenced on: without the key they prove nothing about epochs.
      ++auth_failed_;
      if (opts_.trace)
        opts_.trace->event("repl_auth_failed", {{"where", "follower"}});
      return ServeResult::kReconnect;
    }

    bool want_ack = false;
    if (f.type == net::MessageType::kReplHeartbeat) {
      net::ReplHeartbeatMessage hb;
      try {
        hb = net::ReplHeartbeatMessage::deserialize(*body);
      } catch (const net::CodecError&) {
        return ServeResult::kReconnect;
      }
      if (!accept_epoch(hb.epoch)) {
        send_refusal_ack(conn);
        return ServeResult::kReconnect;
      }
      lease_.renew(hb.epoch, hb.committed_seq, hb.lease_ms);
      std::uint64_t seen = leader_committed_.load();
      while (seen < hb.committed_seq &&
             !leader_committed_.compare_exchange_weak(seen, hb.committed_seq))
        ;
      detector_.observe();
      bool leader_addr_changed = false;
      if (!hb.leader_addr.empty()) {
        std::lock_guard<std::mutex> lock(leader_mu_);
        if (hb.leader_addr != last_leader_device_addr_) {
          last_leader_device_addr_ = hb.leader_addr;
          leader_addr_changed = true;
        }
      }
      if (leader_addr_changed && opts_.on_leader_changed)
        opts_.on_leader_changed(hb.leader_addr);
      continue;  // heartbeats are fire-and-forget
    } else if (f.type == net::MessageType::kReplAppend) {
      net::ReplAppendMessage append;
      try {
        append = net::ReplAppendMessage::deserialize(*body);
      } catch (const net::CodecError&) {
        return ServeResult::kReconnect;
      }
      if (!accept_epoch(append.epoch)) {
        send_refusal_ack(conn);
        return ServeResult::kReconnect;
      }
      // Crossed multimodel streams: records tagged for another pool
      // instance must never enter this log. Drop and reconnect (the
      // operator wired a port wrong; backoff keeps the spin bounded).
      if (append.instance_id != opts_.instance_id) {
        if (opts_.trace)
          opts_.trace->event("repl_instance_mismatch",
                             {{"batch_instance", append.instance_id},
                              {"follower_instance", opts_.instance_id}});
        return ServeResult::kReconnect;
      }
      detector_.observe();  // any authed leader frame is liveness
      {
        obs::TimedScope timer(apply_seconds_);
        if (!apply_records(append.records)) return ServeResult::kFatal;
      }
      want_ack = append.want_ack;
    } else if (f.type == net::MessageType::kReplSnapshot) {
      net::ReplSnapshotMessage snap;
      try {
        snap = net::ReplSnapshotMessage::deserialize(*body);
      } catch (const net::CodecError&) {
        return ServeResult::kReconnect;
      }
      if (!accept_epoch(snap.epoch)) {
        send_refusal_ack(conn);
        return ServeResult::kReconnect;
      }
      detector_.observe();
      const ServeResult chunk = handle_snapshot_chunk(snap);
      if (chunk != ServeResult::kContinue) return chunk;
      want_ack = snap.want_ack;
    } else {
      return ServeResult::kReconnect;  // protocol abuse
    }

    if (opts_.on_applied) opts_.on_applied();
    if (want_ack) {
      net::ReplAckMessage ack;
      ack.epoch = witnessed_epoch_.load();
      ack.durable_seq = durable_position();
      if (!conn.send_frame(net::encode_frame(
              net::MessageType::kReplAck,
              seal_repl_payload(opts_.key, net::MessageType::kReplAck,
                                ack.serialize()))))
        return ServeResult::kReconnect;
    }
  }
  return ServeResult::kReconnect;
}

bool Follower::apply_records(const std::vector<net::ReplRecord>& records) {
  const std::uint64_t durable = durable_position();
  std::vector<store::WalRecord> to_append;
  to_append.reserve(records.size());
  for (const auto& rec : records) {
    if (rec.seq <= durable) continue;  // already held durably; idempotent
    if (rec.seq <= server_.version()) {
      // Applied in memory on a previous connection but its append never
      // completed: persist without re-applying, closing the hole.
      to_append.push_back({rec.seq, rec.payload});
      continue;
    }
    if (rec.seq != server_.version() + 1) {
      set_fatal("replication gap: got seq " + std::to_string(rec.seq) +
                " at version " + std::to_string(server_.version()));
      return false;
    }
    if (store::is_opaque_record(rec.payload)) {
      // Multimodel overwrite record: apply through the same hook
      // recovery uses, so the live-replication path and the
      // crash-recovery path produce identical state.
      if (!opts_.store.opaque_replay) {
        set_fatal("opaque record " + std::to_string(rec.seq) +
                  " shipped to a follower with no opaque_replay handler "
                  "(multimodel stream into a single-model follower?)");
        return false;
      }
      try {
        opts_.store.opaque_replay(server_, rec.seq, rec.payload);
      } catch (const std::exception& e) {
        set_fatal("opaque record " + std::to_string(rec.seq) +
                  " failed to apply (" + e.what() + ")");
        return false;
      }
      if (server_.version() != rec.seq) {
        set_fatal("opaque replay diverged at seq " + std::to_string(rec.seq));
        return false;
      }
      to_append.push_back({rec.seq, rec.payload});
      continue;
    }
    net::CheckinMessage msg;
    try {
      msg = net::CheckinMessage::deserialize(rec.payload);
    } catch (const net::CodecError& e) {
      set_fatal("undecodable shipped record " + std::to_string(rec.seq) +
                " (" + e.what() + ")");
      return false;
    }
    const net::AckMessage ack = server_.handle_checkin(msg);
    if (!ack.ok || server_.version() != rec.seq) {
      // The leader applied this record; a faithful replica must too. A
      // rejection here means configs diverge — refuse to guess.
      set_fatal("replay diverged at seq " + std::to_string(rec.seq) +
                (ack.ok ? "" : (": " + ack.reason)));
      return false;
    }
    to_append.push_back({rec.seq, rec.payload});
  }
  if (!to_append.empty()) {
    try {
      store_->wal().append_batch(to_append);
      store_->wal().sync();
    } catch (const store::WalError& e) {
      // Acking would claim durability we do not have.
      set_fatal(std::string("follower wal append failed: ") + e.what());
      return false;
    }
    records_applied_ += static_cast<long long>(to_append.size());
  }
  return true;
}

bool Follower::compact() {
  std::lock_guard<std::mutex> store_lock(store_mu_);
  if (!store_ || fatal_.load()) return false;
  return store_->compact(server_);
}

Follower::ServeResult Follower::handle_snapshot_chunk(
    const net::ReplSnapshotMessage& snap) {
  // Reassemble bounded chunks into the pending buffer; a (version,
  // offset) that does not extend it contiguously means the transfer
  // restarted or desynced — reset and reconnect so the hello renegotiates
  // the resume point (offset 0 of a new version just begins fresh).
  if (snap.version != pending_snap_version_ ||
      snap.total_bytes != pending_snap_total_ ||
      snap.offset != pending_snap_.size()) {
    if (snap.offset != 0) {
      pending_snap_version_ = 0;
      pending_snap_total_ = 0;
      pending_snap_.clear();
      if (opts_.trace)
        opts_.trace->event("repl_snapshot_desync",
                           {{"version", snap.version},
                            {"offset", snap.offset}});
      return ServeResult::kReconnect;
    }
    pending_snap_version_ = snap.version;
    pending_snap_total_ = snap.total_bytes;
    pending_snap_.clear();
    pending_snap_.reserve(static_cast<std::size_t>(snap.total_bytes));
  }
  pending_snap_.insert(pending_snap_.end(), snap.checkpoint.begin(),
                       snap.checkpoint.end());
  if (!snap.last_chunk()) return ServeResult::kContinue;

  const std::uint64_t version = pending_snap_version_;
  net::Bytes blob = std::move(pending_snap_);
  pending_snap_version_ = 0;
  pending_snap_total_ = 0;
  pending_snap_.clear();
  if (!install_snapshot(version, blob)) return ServeResult::kFatal;
  return ServeResult::kContinue;
}

bool Follower::install_snapshot(std::uint64_t version,
                                const net::Bytes& checkpoint) {
  if (version <= durable_position()) return true;  // stale; just ack
  core::ServerCheckpoint cp;
  try {
    cp = core::ServerCheckpoint::deserialize(checkpoint);
  } catch (const net::CodecError& e) {
    set_fatal(std::string("undecodable shipped snapshot: ") + e.what());
    return false;
  }
  std::lock_guard<std::mutex> store_lock(store_mu_);
  try {
    // Replace local history wholesale: drop the store handle, clear the
    // old log (its records are all below the snapshot), write the
    // shipped checkpoint as a normal snapshot file, and recover from it
    // through the standard path.
    store_.reset();
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("wal-", 0) == 0) std::filesystem::remove(entry.path());
    }
    cp.save_file(dir_ + "/" +
                 store::DurableStore::snapshot_filename(cp.version));
    store_ = std::make_unique<store::DurableStore>(dir_, opts_.store);
    recovery_ = store_->recover(server_);
  } catch (const std::exception& e) {
    set_fatal(std::string("snapshot install failed: ") + e.what());
    return false;
  }
  if (server_.version() != version) {
    set_fatal("snapshot version mismatch: installed " +
              std::to_string(server_.version()) + ", shipped " +
              std::to_string(version));
    return false;
  }
  ++snapshots_installed_;
  if (opts_.trace)
    opts_.trace->event("repl_snapshot_installed", {{"version", version}});
  return true;
}

net::ReplVoteMessage Follower::grant_vote(const net::ReplVoteMessage& req) {
  net::ReplVoteMessage resp;
  resp.request = false;
  // Echo the campaign's identity: a ballot is bound to one request from
  // one candidate, so a captured grant cannot be replayed into a
  // concurrent candidate's election (see ReplVoteMessage::nonce).
  resp.candidate_id = req.candidate_id;
  resp.nonce = req.nonce;

  std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
  const std::uint64_t promised = epoch_.load();
  const std::uint64_t mine = durable_position();
  resp.last_seq = mine;

  // A live lease means our leader is demonstrably alive: refuse without
  // adopting the proposed epoch, so one follower's spurious detector (a
  // blip on just its link) cannot assemble a majority against a healthy
  // leader. A candidate only wins once a majority has actually watched
  // the leader go silent — the check-quorum/pre-vote discipline.
  if (lease_.held()) {
    resp.granted = false;
    resp.epoch = promised;
    if (opts_.trace)
      opts_.trace->event("election_vote_refused_lease_held",
                         {{"epoch", req.epoch},
                          {"candidate_id", req.candidate_id},
                          {"lease_remaining_ms", lease_.remaining_ms()}});
    return resp;
  }

  // Grant iff the proposed term is news AND the candidate's durable log
  // is at least as long as ours — the Raft voting rule, which keeps any
  // winner a superset of every acked checkin (see failure_detector.hpp).
  if (req.epoch > promised && req.last_seq >= mine) {
    try {
      // Durable before granted: the grant *is* the promise, and it must
      // survive a crash or two candidates could win the same epoch.
      epoch_store_.store(req.epoch);
    } catch (const EpochError& e) {
      if (opts_.trace)
        opts_.trace->event("repl_epoch_store_failed", {{"reason", e.what()}});
      resp.granted = false;
      resp.epoch = promised;
      return resp;
    }
    epoch_.store(req.epoch);
    epoch_gauge_.set(static_cast<double>(req.epoch));
    resp.granted = true;
    resp.epoch = req.epoch;
    // Follow the winner: replicate from its advertised address, repoint
    // device redirects, and sever the old leader's session (its next
    // frame would be refused as stale anyway).
    bool leader_addr_changed = false;
    {
      std::lock_guard<std::mutex> lock(leader_mu_);
      if (const auto hp = net::split_host_port(req.repl_addr)) {
        leader_host_ = hp->first;
        leader_port_ = hp->second;
      }
      if (!req.device_addr.empty() &&
          req.device_addr != last_leader_device_addr_) {
        last_leader_device_addr_ = req.device_addr;
        leader_addr_changed = true;
      }
    }
    if (leader_addr_changed && opts_.on_leader_changed)
      opts_.on_leader_changed(req.device_addr);
    {
      std::lock_guard<std::mutex> conn_lock(conn_mu_);
      if (live_conn_) live_conn_->shutdown_both();
    }
    // Fresh grace period for the new leader to start heartbeating.
    detector_.arm();
    if (opts_.trace)
      opts_.trace->event("election_vote_granted",
                         {{"epoch", req.epoch},
                          {"candidate_id", req.candidate_id},
                          {"candidate_last_seq", req.last_seq}});
  } else {
    // Refusals do NOT adopt the proposed epoch: a blackholed candidate
    // spamming doomed candidacies must not cascade-fence a live leader.
    resp.granted = false;
    resp.epoch = promised;
    if (opts_.trace)
      opts_.trace->event("election_vote_refused",
                         {{"epoch", req.epoch},
                          {"candidate_id", req.candidate_id},
                          {"candidate_last_seq", req.last_seq},
                          {"promised_epoch", promised},
                          {"own_last_seq", mine}});
  }
  return resp;
}

void Follower::try_elect() {
  if (lease_.held()) {
    // The detector fired but the lease says the leader is still alive
    // (possible when the lease outlasts the election timeout). Trust the
    // lease — the same rule electors apply to us — rather than inflate
    // the promised epoch with a campaign nobody may grant.
    if (opts_.trace)
      opts_.trace->event("election_suppressed_lease_held",
                         {{"lease_remaining_ms", lease_.remaining_ms()}});
    detector_.arm();
    return;
  }
  if (lease_.expired()) {
    ++lease_expirations_;
    if (opts_.trace)
      opts_.trace->event("repl_lease_expired",
                         {{"epoch", lease_.epoch()},
                          {"remaining_ms", lease_.remaining_ms()}});
  }
  std::uint64_t proposed;
  {
    std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
    proposed = epoch_.load() + 1;
    try {
      // Durable before solicited: our own ballot is a promise too.
      epoch_store_.store(proposed);
    } catch (const EpochError& e) {
      set_fatal(std::string("epoch store failed during candidacy: ") +
                e.what());
      return;
    }
    epoch_.store(proposed);
    epoch_gauge_.set(static_cast<double>(proposed));
  }
  ++elections_started_;
  if (opts_.trace)
    opts_.trace->event("election_started",
                       {{"epoch", proposed},
                        {"candidate_id", opts_.follower_id},
                        {"peers", opts_.peers.size()}});

  ElectionOptions eo;
  eo.epoch = proposed;
  eo.candidate_id = opts_.follower_id;
  eo.last_seq = durable_position();
  eo.nonce = nonce_rng_();
  eo.device_addr = opts_.device_addr;
  eo.repl_addr = opts_.advertise_host + ":" + std::to_string(vote_port());
  eo.peers = opts_.peers;
  eo.key = opts_.key;
  eo.trace = opts_.trace;
  const ElectionResult result = run_election(eo);

  if (result.won) {
    ++elections_won_;
    promoted_.store(true);
    if (opts_.trace)
      opts_.trace->event("election_won", {{"epoch", proposed},
                                          {"grants", result.grants},
                                          {"electorate", result.electorate}});
    return;
  }
  ++elections_lost_;
  if (opts_.trace)
    opts_.trace->event("election_lost",
                       {{"epoch", proposed},
                        {"grants", result.grants},
                        {"electorate", result.electorate},
                        {"higher_epoch_seen", result.higher_epoch_seen}});
  if (result.higher_epoch_seen > proposed) {
    // Someone promised further ahead; adopt so the next candidacy is not
    // dead on arrival (accept_epoch's durable-before-honored rules).
    accept_epoch(result.higher_epoch_seen);
  }
  // De-synchronize the retry from whoever collided with us.
  detector_.arm();
}

}  // namespace crowdml::replica
