// Serving-engine bench: checkout and checkin throughput vs connection
// count, thread-per-connection runtime vs epoll engine, per-record vs
// group-commit fsync — the numbers behind docs/SCALING.md.
//
// Three server modes, all with a durable store attached under
// --fsync always semantics (every acked checkin is on the platter):
//
//   threads      core::TcpCrowdServer, one fsync per checkin;
//   epoll        engine::EpollCrowdServer, still one fsync per checkin
//                (group commit off isolates the event-loop effect);
//   epoll+group  the full engine: batched applier, one fsync per batch.
//
// Plus the draw-and-discard pool (src/multimodel/) at k in {1, 2, 4, 8}
// instances on 256 connections: k parallel appliers, each group-
// committing its own WAL stream — the applier-scaling numbers behind
// docs/SCALING.md "Draw-and-discard multi-model serving".
//
// Clients are raw protocol loops over real localhost TCP — pre-encoded
// checkout/checkin frames per enrolled device, so the bench measures the
// serving path, not client-side SGD. Gradients are compact (10 classes x
// 5 features) for the same reason: with MNIST-sized payloads the
// apply/codec cost swamps the fsync contrast this bench exists to show
// (bench/durability covers the payload-heavy WAL costs). For each mode and connection count
// {16, 64, 256}: a checkout phase (all connections hammer checkouts) and
// a checkin phase (all connections hammer checkins), aggregate ops/s.
//
// Scale via CROWDML_SCALE (default 0.25 => 2000 checkins per phase).
#include <atomic>
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/tcp_runtime.hpp"
#include "engine/epoll_server.hpp"
#include "multimodel/instance_pool.hpp"
#include "store/durable_store.hpp"
#include "tools/flags.hpp"

namespace {

using namespace crowdml;

constexpr std::size_t kClasses = 10;
constexpr std::size_t kDim = 5;

core::Server make_server() {
  core::ServerConfig cfg;
  cfg.param_dim = kClasses * kDim;
  cfg.num_classes = kClasses;
  return core::Server(cfg,
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::SqrtDecaySchedule>(50.0), 500.0),
                      rng::Engine(1));
}

/// Pre-encoded request frames for one enrolled device. The checkin pins
/// param_version=0 (staleness is free in Crowd-ML), so one signed frame
/// can be replayed by the bench loop without client-side work.
struct ClientFrames {
  net::Bytes checkout;
  net::Bytes checkin;
};

ClientFrames make_frames(const net::DeviceCredentials& creds,
                         rng::Engine& eng) {
  ClientFrames f;
  net::CheckoutRequest req;
  req.device_id = creds.device_id;
  req.auth_tag = creds.sign(req.body());
  f.checkout =
      net::encode_frame(net::MessageType::kCheckoutRequest, req.serialize());

  net::CheckinMessage m;
  m.device_id = creds.device_id;
  m.g_hat.reserve(kClasses * kDim);
  for (std::size_t i = 0; i < kClasses * kDim; ++i)
    m.g_hat.push_back(static_cast<double>(eng() % 2001) / 1000.0 - 1.0);
  m.ns = 10;
  m.ne_hat = static_cast<std::int64_t>(eng() % 3);
  for (std::size_t i = 0; i < kClasses; ++i)
    m.ny_hat.push_back(static_cast<std::int64_t>(eng() % 5));
  m.auth_tag = creds.sign(m.body());
  f.checkin = net::encode_frame(net::MessageType::kCheckin, m.serialize());
  return f;
}

/// All connections send `frame` until `total` exchanges have completed;
/// returns aggregate exchanges/s. The load generator multiplexes
/// connections over at most 16 client threads (each owning a slice) and
/// pipelines kWindow requests per connection before reading the
/// responses: the measured quantity is concurrent *connections* and the
/// server's capacity to serve them, and a thread per connection doing
/// lock-step RTTs would bench the client's scheduler instead. The window
/// is deep enough that the generator never starves a commit-per-update
/// applier (the multimodel rows below) between refills.
constexpr long long kWindow = 32;

double hammer(std::vector<net::TcpConnection>& conns,
              const std::vector<ClientFrames>& frames, bool checkin,
              long long total) {
  std::atomic<long long> remaining{total};
  std::atomic<long long> failed{0};
  std::vector<std::thread> threads;
  const std::size_t workers = std::min<std::size_t>(16, conns.size());
  const auto t0 = std::chrono::steady_clock::now();
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      std::size_t c = w;
      for (;;) {
        const long long before = remaining.fetch_sub(kWindow);
        const long long k = std::min(kWindow, before);
        if (k <= 0) break;
        const net::Bytes& frame =
            checkin ? frames[c].checkin : frames[c].checkout;
        // One write per window, not per frame: frames are length-prefixed
        // on a byte stream, so k concatenated frames are wire-identical
        // to k separate sends — without the load generator burning a
        // syscall (and a scheduler slot) per request it pipelines.
        net::Bytes burst;
        burst.reserve(static_cast<std::size_t>(k) * frame.size());
        for (long long i = 0; i < k; ++i)
          burst.insert(burst.end(), frame.begin(), frame.end());
        long long sent = 0;
        if (conns[c].send_frame(burst)) sent = k;
        for (long long i = 0; i < sent; ++i)
          if (!conns[c].recv_frame()) ++failed;
        failed += k - sent;
        c = (c + workers < conns.size()) ? c + workers : w;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (failed.load() > 0)
    std::printf("  !! %lld exchanges failed\n", failed.load());
  return static_cast<double>(total) / wall;
}

struct Result {
  double checkouts_per_s = 0.0;
  double checkins_per_s = 0.0;
  long long fsyncs = 0;
  std::uint64_t version = 0;
};

enum class Mode { kThreads, kEpoll, kEpollGroup };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kThreads: return "threads";
    case Mode::kEpoll: return "epoll";
    case Mode::kEpollGroup: return "epoll+group";
  }
  return "?";
}

Result run_mode(Mode mode, std::size_t conns, long long total) {
  Result r;
  std::string dir =
      (std::filesystem::temp_directory_path() / "crowdml_serving_XXXXXX")
          .string();
  if (!mkdtemp(dir.data())) throw std::runtime_error("mkdtemp failed");
  {
    core::Server server = make_server();
    net::AuthRegistry registry(rng::Engine(2));

    store::DurableStoreOptions sopts;
    sopts.wal.fsync = store::FsyncPolicy::kAlways;
    store::DurableStore store(dir, sopts);
    store.recover(server);
    store.attach(server);

    obs::MetricsRegistry metrics;  // isolate per-run engine instruments
    std::unique_ptr<core::TcpCrowdServer> threads_srv;
    std::unique_ptr<engine::EpollCrowdServer> epoll_srv;
    std::uint16_t port = 0;
    if (mode == Mode::kThreads) {
      core::TcpServerConfig tcfg;
      tcfg.max_connections = conns + 8;
      threads_srv =
          std::make_unique<core::TcpCrowdServer>(server, registry, tcfg);
      port = threads_srv->port();
    } else {
      engine::EngineConfig ecfg;
      ecfg.max_connections = conns + 8;
      ecfg.checkin_queue_max = 4096;  // measure throughput, not shedding
      ecfg.metrics = &metrics;
      if (mode == Mode::kEpollGroup) {
        store.set_group_commit(true);
        store::DurableStore* s = &store;
        ecfg.group_commit = [s] { return s->commit_group(); };
      }
      epoll_srv =
          std::make_unique<engine::EpollCrowdServer>(server, registry, ecfg);
      port = epoll_srv->port();
    }

    std::vector<net::TcpConnection> sockets;
    std::vector<ClientFrames> frames;
    rng::Engine eng(42);
    for (std::size_t c = 0; c < conns; ++c) {
      frames.push_back(make_frames(registry.enroll(), eng));
      auto conn = net::TcpConnection::connect("127.0.0.1", port, 2000);
      if (!conn) throw std::runtime_error("bench client connect failed");
      sockets.push_back(std::move(*conn));
    }

    r.checkouts_per_s = hammer(sockets, frames, false, total);
    r.checkins_per_s = hammer(sockets, frames, true, total);
    r.fsyncs = store.wal().fsyncs();
    r.version = server.version();

    sockets.clear();
    if (threads_srv) threads_srv->shutdown();
    if (epoll_srv) epoll_srv->shutdown();
  }
  std::filesystem::remove_all(dir);
  return r;
}

/// Draw-and-discard pool: k appliers, k WAL streams (fsync=always, group
/// commit per instance), served through the engine's multimodel hooks.
///
/// Pool rows run at commit-per-update cadence (checkin_batch_max = 1):
/// every acked update is its own group-commit tick, so the row measures
/// the WAL-clock serialization itself rather than fsync amortization.
/// That is the regime where k instances genuinely win — k = 1 spends its
/// applier blocked in one fsync at a time, while k independent commit
/// clocks overlap their fsync stalls (even on a single core: fsync waits
/// are I/O waits, not CPU). At large batch sizes fsync amortizes toward
/// zero and a single applier is already CPU-bound — see the epoll-group
/// rows above for that regime.
Result run_pool(std::size_t k, std::size_t conns, long long total) {
  Result r;
  std::string dir =
      (std::filesystem::temp_directory_path() / "crowdml_pool_XXXXXX")
          .string();
  if (!mkdtemp(dir.data())) throw std::runtime_error("mkdtemp failed");
  {
    net::AuthRegistry registry(rng::Engine(2));
    obs::MetricsRegistry metrics;

    multimodel::PoolOptions popts;
    popts.instances = k;
    popts.seed = 1;
    popts.checkin_queue_max = 4096;
    popts.checkin_batch_max = 1;  // commit-per-update (see above)
    popts.wal_dir = dir;
    popts.store.wal.fsync = store::FsyncPolicy::kAlways;
    popts.metrics = &metrics;
    const auto factory = [](std::size_t i) {
      core::ServerConfig cfg;
      cfg.param_dim = kClasses * kDim;
      cfg.num_classes = kClasses;
      return std::make_unique<core::Server>(
          cfg,
          std::make_unique<opt::SgdUpdater>(
              std::make_unique<opt::SqrtDecaySchedule>(50.0), 500.0),
          rng::Engine(1).split(i));
    };
    multimodel::ModelInstancePool pool(registry, factory, popts);
    pool.start();

    engine::EngineConfig ecfg;
    ecfg.max_connections = conns + 8;
    ecfg.checkin_queue_max = 4096;
    ecfg.metrics = &metrics;
    multimodel::wire_engine(pool, ecfg);
    engine::EpollCrowdServer epoll_srv(pool.server(0), registry, ecfg);

    std::vector<net::TcpConnection> sockets;
    std::vector<ClientFrames> frames;
    rng::Engine eng(42);
    for (std::size_t c = 0; c < conns; ++c) {
      frames.push_back(make_frames(registry.enroll(), eng));
      auto conn =
          net::TcpConnection::connect("127.0.0.1", epoll_srv.port(), 2000);
      if (!conn) throw std::runtime_error("bench client connect failed");
      sockets.push_back(std::move(*conn));
    }

    r.checkouts_per_s = hammer(sockets, frames, false, total);
    r.checkins_per_s = hammer(sockets, frames, true, total);
    for (std::size_t i = 0; i < k; ++i)
      r.fsyncs += pool.store(i)->wal().fsyncs();
    r.version = pool.total_version();

    sockets.clear();
    epoll_srv.shutdown();  // shutdown_drain drains the pool
  }
  std::filesystem::remove_all(dir);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  try {
    const tools::Flags flags(argc, argv);
    json_out = flags.get("json-out", "");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serving_engine: %s (only --json-out PATH)\n",
                 e.what());
    return 1;
  }
  const bench::Options o = bench::options();
  const long long total = std::max(512, static_cast<int>(8000 * o.scale));
  bench::header("serving_engine",
                "threads vs epoll engine: throughput vs connections, "
                "per-record vs group-commit fsync", o);
  std::printf("%lld exchanges per phase, %zu-double gradients, "
              "fsync=always throughout\n\n",
              total, kClasses * kDim);

  const std::size_t conn_counts[] = {16, 64, 256};
  const Mode modes[] = {Mode::kThreads, Mode::kEpoll, Mode::kEpollGroup};

  std::printf("%-12s %6s %14s %14s %10s %14s\n", "engine", "conns",
              "checkouts/s", "checkins/s", "fsyncs", "fsyncs/checkin");
  double threads_256 = 0.0, epoll_group_256 = 0.0;
  long long group_fsyncs_256 = 0;
  struct Row {
    Mode mode;
    std::size_t conns;
    Result r;
  };
  std::vector<Row> rows;
  for (const Mode mode : modes) {
    for (const std::size_t conns : conn_counts) {
      const Result r = run_mode(mode, conns, total);
      rows.push_back({mode, conns, r});
      std::printf("%-12s %6zu %14.0f %14.0f %10lld %14.3f\n", mode_name(mode),
                  conns, r.checkouts_per_s, r.checkins_per_s, r.fsyncs,
                  static_cast<double>(r.fsyncs) /
                      static_cast<double>(std::max<std::uint64_t>(r.version, 1)));
      if (conns == 256 && mode == Mode::kThreads) threads_256 = r.checkins_per_s;
      if (conns == 256 && mode == Mode::kEpollGroup) {
        epoll_group_256 = r.checkins_per_s;
        group_fsyncs_256 = r.fsyncs;
      }
    }
    std::printf("\n");
  }

  // Draw-and-discard applier scaling: same 256-connection load, k
  // independent appliers each group-committing its own WAL stream at
  // commit-per-update cadence. Commit-per-update rates are dominated by
  // fsync latency, which on shared/virtualized disks drifts 2-3x between
  // runs — so each k runs kPoolRepeats times (after one unmeasured
  // warmup that absorbs cold-start costs) and the row reports the median.
  struct PoolRow {
    std::size_t k;
    Result r;
  };
  std::vector<PoolRow> pool_rows;
  const std::size_t pool_ks[] = {1, 2, 4, 8};
  constexpr int kPoolRepeats = 3;
  double pool_k1_256 = 0.0, pool_k8_256 = 0.0;
  run_pool(1, 256, std::max<long long>(total / 4, 256));  // warmup
  for (const std::size_t k : pool_ks) {
    std::vector<Result> reps;
    for (int rep = 0; rep < kPoolRepeats; ++rep)
      reps.push_back(run_pool(k, 256, total));
    std::sort(reps.begin(), reps.end(), [](const Result& a, const Result& b) {
      return a.checkins_per_s < b.checkins_per_s;
    });
    const Result& r = reps[reps.size() / 2];
    pool_rows.push_back({k, r});
    std::printf("%-9s k=%zu %6u %14.0f %14.0f %10lld %14.3f\n", "multimodel",
                k, 256u, r.checkouts_per_s, r.checkins_per_s, r.fsyncs,
                static_cast<double>(r.fsyncs) /
                    static_cast<double>(std::max<std::uint64_t>(r.version, 1)));
    if (k == 1) pool_k1_256 = r.checkins_per_s;
    if (k == 8) pool_k8_256 = r.checkins_per_s;
  }
  std::printf("\n");

  const bool speedup_ok = epoll_group_256 >= 4.0 * threads_256;
  const bool fsync_ok = group_fsyncs_256 < total;
  // The single-applier commit clock is the ceiling being measured: k = 1
  // serializes one fsync per acked update, k = 8 overlaps eight commit
  // clocks. On a single-core host the overlap is bounded by per-request
  // CPU, which caps the honest ratio near (fsync_latency + applier_cpu)
  // / per_request_cpu ~= 2-2.5x (see EXPERIMENTS.md "Draw-and-discard
  // applier scaling"); with >= 8 cores the applies themselves
  // parallelize and the ratio clears 3x. The regression gate here is the
  // single-core floor; the measured ratio and the 3x target are both
  // recorded in the JSON so multi-core runs can assert the stronger
  // claim.
  const double pool_ratio =
      pool_k1_256 > 0.0 ? pool_k8_256 / pool_k1_256 : 0.0;
  const bool pool_ok = pool_ratio >= 1.5;
  const bool pool_3x = pool_ratio >= 3.0;
  bench::check(speedup_ok,
               "epoll+group >= 4x threads checkin throughput at 256 conns");
  bench::check(fsync_ok, "group commit fsyncs fewer times than it acks");
  bench::check(pool_ok,
               "multimodel k=8 >= 1.5x k=1 checkin throughput at 256 conns");
  std::printf("  (k=8 / k=1 checkin ratio: %.2fx; 3x target %s on this "
              "host — see EXPERIMENTS.md)\n",
              pool_ratio, pool_3x ? "met" : "not met");

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "serving_engine: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"serving_engine\",\n  \"scale\": %g,\n"
                 "  \"exchanges_per_phase\": %lld,\n  \"rows\": [\n",
                 o.scale, total);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(
          f,
          "    {\"engine\": \"%s\", \"connections\": %zu, "
          "\"checkouts_per_s\": %.0f, \"checkins_per_s\": %.0f, "
          "\"fsyncs\": %lld, \"fsyncs_per_checkin\": %.3f}%s\n",
          mode_name(row.mode), row.conns, row.r.checkouts_per_s,
          row.r.checkins_per_s, row.r.fsyncs,
          static_cast<double>(row.r.fsyncs) /
              static_cast<double>(std::max<std::uint64_t>(row.r.version, 1)),
          ",");
    }
    for (std::size_t i = 0; i < pool_rows.size(); ++i) {
      const PoolRow& row = pool_rows[i];
      std::fprintf(
          f,
          "    {\"engine\": \"multimodel\", \"model_instances\": %zu, "
          "\"connections\": 256, "
          "\"checkouts_per_s\": %.0f, \"checkins_per_s\": %.0f, "
          "\"fsyncs\": %lld, \"fsyncs_per_checkin\": %.3f}%s\n",
          row.k, row.r.checkouts_per_s, row.r.checkins_per_s, row.r.fsyncs,
          static_cast<double>(row.r.fsyncs) /
              static_cast<double>(std::max<std::uint64_t>(row.r.version, 1)),
          i + 1 < pool_rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"multimodel_k8_over_k1\": %.2f,\n"
                 "  \"checks\": {\n"
                 "    \"epoll_group_4x_threads_at_256\": %s,\n"
                 "    \"group_commit_batches_fsyncs\": %s,\n"
                 "    \"multimodel_k8_1_5x_k1_at_256\": %s,\n"
                 "    \"multimodel_k8_3x_k1_at_256\": %s\n  }\n}\n",
                 pool_ratio, speedup_ok ? "true" : "false",
                 fsync_ok ? "true" : "false", pool_ok ? "true" : "false",
                 pool_3x ? "true" : "false");
    std::fclose(f);
    std::printf("(json written: %s)\n", json_out.c_str());
  }
  return 0;
}
