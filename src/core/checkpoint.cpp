#include "core/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "net/checksum.hpp"

namespace crowdml::core {

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x43524D43;  // "CRMC"
constexpr std::uint32_t kCheckpointVersion = 1;
}  // namespace

net::Bytes ServerCheckpoint::serialize() const {
  net::Writer w;
  w.put_u32(kCheckpointMagic);
  w.put_u32(kCheckpointVersion);
  w.put_vector(this->w);
  w.put_u64(version);
  w.put_u32(num_classes);
  w.put_u32(static_cast<std::uint32_t>(device_stats.size()));
  for (const auto& [id, st] : device_stats) {
    w.put_u64(id);
    w.put_i64(st.samples);
    w.put_i64(st.errors_hat);
    w.put_i64(st.checkins);
    std::vector<std::int64_t> counts(st.label_counts_hat.begin(),
                                     st.label_counts_hat.end());
    w.put_i64_vector(counts);
  }
  net::Bytes body = w.take();
  // Trailing CRC over the whole body.
  const std::uint32_t crc = net::crc32(body.data(), body.size());
  net::Writer tail;
  tail.put_u32(crc);
  const net::Bytes crc_bytes = tail.take();
  body.insert(body.end(), crc_bytes.begin(), crc_bytes.end());
  return body;
}

ServerCheckpoint ServerCheckpoint::deserialize(const net::Bytes& bytes) {
  if (bytes.size() < 4) throw net::CodecError("checkpoint too short");
  const net::Bytes body(bytes.begin(), bytes.end() - 4);
  // Validate trailing CRC first.
  std::uint32_t stated = 0;
  for (int i = 0; i < 4; ++i)
    stated |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 +
                                               static_cast<std::size_t>(i)])
              << (8 * i);
  if (stated != net::crc32(body.data(), body.size()))
    throw net::CodecError("checkpoint crc mismatch");

  net::Reader r(body);
  if (r.get_u32() != kCheckpointMagic) throw net::CodecError("bad checkpoint magic");
  if (r.get_u32() != kCheckpointVersion)
    throw net::CodecError("unsupported checkpoint version");

  ServerCheckpoint cp;
  cp.w = r.get_vector();
  cp.version = r.get_u64();
  cp.num_classes = r.get_u32();
  const std::uint32_t devices = r.get_u32();
  for (std::uint32_t i = 0; i < devices; ++i) {
    const std::uint64_t id = r.get_u64();
    DeviceStats st;
    st.samples = r.get_i64();
    st.errors_hat = r.get_i64();
    st.checkins = r.get_i64();
    const auto counts = r.get_i64_vector();
    st.label_counts_hat.assign(counts.begin(), counts.end());
    cp.device_stats.emplace(id, std::move(st));
  }
  if (!r.exhausted()) throw net::CodecError("trailing bytes in checkpoint");
  return cp;
}

void ServerCheckpoint::save_file(const std::string& path) const {
  // Atomic: write to a temp file in the same directory, fsync it, then
  // rename() into place. A crash at any point leaves either the old
  // checkpoint or the new one — never a torn file (rename within one
  // filesystem is atomic).
  const net::Bytes bytes = serialize();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    throw std::runtime_error("cannot write checkpoint: " + tmp + ": " +
                             std::strerror(errno));
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      std::remove(tmp.c_str());
      throw std::runtime_error("checkpoint write failed: " + tmp + ": " + err);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint fsync failed: " + tmp + ": " + err);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename checkpoint into place: " + path +
                             ": " + err);
  }
  // Make the rename itself durable (best-effort: the data already is).
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

ServerCheckpoint ServerCheckpoint::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read checkpoint: " + path);
  net::Bytes bytes((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return deserialize(bytes);
}

ServerCheckpoint checkpoint_server(const Server& server) {
  ServerCheckpoint cp;
  cp.w = server.parameters();
  cp.version = server.version();
  cp.device_stats = server.all_device_stats();
  for (const auto& [id, st] : cp.device_stats) {
    cp.num_classes = static_cast<std::uint32_t>(st.label_counts_hat.size());
    break;
  }
  return cp;
}

}  // namespace crowdml::core
