// The merge director: the coordinator-tier loop that periodically
// reconciles shard models (docs/SHARDING.md).
//
// Every cycle it pulls each shard's model + checkin weight over a
// sealed ShardPull/ShardModel exchange, computes the count-weighted
// fixed-point average (shard::merge_models), and pushes the merged
// model back with ShardMergePush — which each leader applies through
// its normal applier/WAL path. Shards that fail to answer a pull are
// simply left out of the cycle: their weight keeps accumulating against
// their last-merged baseline, so the next cycle they join weighs their
// whole backlog correctly. A cycle with fewer than two reachable shards
// (or zero total weight) is skipped — there is nothing to reconcile.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/messages.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "replica/repl_session.hpp"
#include "shard/shard_map.hpp"

namespace crowdml::shard {

struct MergeDirectorConfig {
  /// Shard roster to reconcile (device-facing addresses — Shard* frames
  /// ride the device port, gated by the replication-key seal).
  ShardMap map;
  replica::ReplKey key;
  /// Merge cadence for the background loop (start()). The paper's
  /// staleness analysis prices this directly: a longer cadence is a
  /// larger delay tau on every merged update.
  std::uint32_t interval_ms = 1000;
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 5000;
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
};

struct MergeCycleResult {
  bool merged = false;
  std::uint64_t merge_round = 0;
  std::uint64_t total_checkins = 0;
  std::size_t shards_pulled = 0;
  std::size_t shards_pushed = 0;
  std::string error;  ///< first failure this cycle ("" when clean)
};

class MergeDirector {
 public:
  explicit MergeDirector(MergeDirectorConfig cfg);
  ~MergeDirector();

  /// One synchronous merge cycle (also what the background loop runs).
  /// Safe to call without start() — tests and benches drive cycles
  /// explicitly for determinism.
  MergeCycleResult run_once();

  /// Background loop: run_once every interval_ms until shutdown().
  void start();
  void shutdown();

  std::uint64_t rounds_completed() const {
    return rounds_completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t rounds_skipped() const {
    return rounds_skipped_.load(std::memory_order_relaxed);
  }

 private:
  std::optional<net::ShardModelMessage> pull_shard(std::size_t shard,
                                                   std::uint64_t round,
                                                   std::string* error);
  bool push_shard(std::size_t shard, const net::ShardMergePushMessage& push,
                  std::string* error);

  MergeDirectorConfig cfg_;
  std::uint64_t next_round_ = 0;  ///< loop/run_once caller-serialized

  std::atomic<std::uint64_t> rounds_completed_{0};
  std::atomic<std::uint64_t> rounds_skipped_{0};

  std::thread loop_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::atomic<bool> started_{false};

  obs::Counter* cycles_merged_ = nullptr;
  obs::Counter* cycles_skipped_ = nullptr;
  obs::Counter* pull_failures_ = nullptr;
  obs::Histogram* cycle_seconds_ = nullptr;
};

}  // namespace crowdml::shard
