// Synthetic smart-thermostat workload — the paper's very first motivating
// application ("learning optimal settings of room temperatures for smart
// thermostats", Section I-A), cast as crowd regression.
//
// Each sample is a home's context at some moment:
//   features: time-of-day (sin/cos), outdoor temperature, occupancy,
//             humidity, day-type — L1-normalized as required by the
//             sensitivity analysis;
//   target:   the occupant's preferred setpoint offset from a 21 C base,
//             a shared linear function of the context plus per-home taste
//             noise, scaled into [-1, 1] so the ridge model's residual
//             clipping (and thus its DP sensitivity bound) is honest.
#pragma once

#include "data/dataset.hpp"

namespace crowdml::data {

struct ThermostatSpec {
  std::size_t train_size = 20000;
  std::size_t test_size = 4000;
  double taste_noise = 0.05;  // per-sample preference noise (target units)
};

/// Feature dimension of the thermostat context vector.
inline constexpr std::size_t kThermostatDim = 7;

/// Generate a thermostat dataset (num_classes = 1: regression).
Dataset generate_thermostat(const ThermostatSpec& spec, rng::Engine& eng);

/// Map a normalized target offset back to degrees Celsius around the base
/// setpoint (for display: offset in [-1,1] spans +/- 3 C around 21 C).
double thermostat_offset_to_celsius(double offset);

}  // namespace crowdml::data
