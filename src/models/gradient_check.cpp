#include "models/gradient_check.hpp"

#include <cassert>
#include <cmath>

namespace crowdml::models {

GradientCheckResult check_gradient(const Model& model, const linalg::Vector& w,
                                   const Sample& s, double step) {
  assert(w.size() == model.param_dim());
  linalg::Vector analytic(model.param_dim(), 0.0);
  model.add_loss_gradient(w, s, analytic);

  GradientCheckResult res;
  linalg::Vector wp = w;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double orig = wp[i];
    wp[i] = orig + step;
    const double lp = model.loss(wp, s);
    wp[i] = orig - step;
    const double lm = model.loss(wp, s);
    wp[i] = orig;
    const double numeric = (lp - lm) / (2.0 * step);
    const double abs_err = std::abs(analytic[i] - numeric);
    res.max_abs_error = std::max(res.max_abs_error, abs_err);
    res.max_rel_error =
        std::max(res.max_rel_error, abs_err / std::max(1.0, std::abs(numeric)));
  }
  return res;
}

}  // namespace crowdml::models
