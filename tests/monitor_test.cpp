// Tests for the portal-style monitoring report.
#include <gtest/gtest.h>

#include "core/monitor.hpp"
#include "opt/schedule.hpp"

using namespace crowdml;
using core::Server;

namespace {

Server make_server() {
  core::ServerConfig cfg;
  cfg.param_dim = 2;
  cfg.num_classes = 3;
  return Server(cfg,
                std::make_unique<opt::SgdUpdater>(
                    std::make_unique<opt::ConstantSchedule>(0.1), 10.0),
                rng::Engine(1));
}

net::CheckinMessage checkin(std::uint64_t device, std::int64_t ns,
                            std::int64_t ne) {
  net::CheckinMessage m;
  m.device_id = device;
  m.g_hat = {0.1, 0.1};
  m.ns = ns;
  m.ne_hat = ne;
  m.ny_hat = {ns, 0, 0};
  return m;
}

}  // namespace

TEST(Monitor, ReportContainsHeadlineNumbers) {
  Server s = make_server();
  s.handle_checkin(checkin(7, 10, 3));
  const std::string report = core::portal_report(s);
  EXPECT_NE(report.find("iteration t:            1"), std::string::npos);
  EXPECT_NE(report.find("samples reported:       10"), std::string::npos);
  EXPECT_NE(report.find("0.3000"), std::string::npos);  // Eq. 14 estimate
  EXPECT_NE(report.find("7"), std::string::npos);       // device row
}

TEST(Monitor, ClassNamesUsedWhenProvided) {
  Server s = make_server();
  s.handle_checkin(checkin(1, 10, 0));
  core::MonitorOptions opt;
  opt.class_names = {"Still", "OnFoot", "InVehicle"};
  const std::string report = core::portal_report(s, opt);
  EXPECT_NE(report.find("Still="), std::string::npos);
  EXPECT_NE(report.find("InVehicle="), std::string::npos);
}

TEST(Monitor, DeviceRowsCapped) {
  Server s = make_server();
  for (std::uint64_t d = 1; d <= 20; ++d) s.handle_checkin(checkin(d, 5, 1));
  core::MonitorOptions opt;
  opt.max_device_rows = 5;
  const std::string report = core::portal_report(s, opt);
  EXPECT_NE(report.find("and 15 more devices"), std::string::npos);
}

TEST(Monitor, NoisyNegativeErrorClamped) {
  Server s = make_server();
  s.handle_checkin(checkin(1, 10, -50));  // sanitized count went negative
  const std::string report = core::portal_report(s);
  EXPECT_EQ(report.find("-0."), std::string::npos)
      << "no negative rates should be displayed:\n" << report;
}

TEST(Monitor, EmptyServerReportIsSane) {
  Server s = make_server();
  const std::string report = core::portal_report(s);
  EXPECT_NE(report.find("devices seen:           0"), std::string::npos);
}

// NetCounters now sits on an obs::MetricsRegistry; the portal report is a
// rendered view of the same instruments.
TEST(Monitor, TransportReportReadsRegistryBackedCounters) {
  core::NetCounters counters;
  ++counters.timeouts;
  ++counters.timeouts;
  ++counters.reconnects;
  counters.checkins_abandoned += 3;
  const auto snap = counters.snapshot();
  EXPECT_EQ(snap.timeouts, 2);
  EXPECT_EQ(snap.reconnects, 1);
  EXPECT_EQ(snap.checkins_abandoned, 3);
  const std::string report = core::transport_report(snap);
  EXPECT_NE(report.find("timeouts:"), std::string::npos);
  EXPECT_NE(report.find("2"), std::string::npos);
}

TEST(Monitor, PortalReportAndPrometheusAgree) {
  obs::MetricsRegistry reg;
  core::NetCounters counters(&reg);
  ++counters.retries;
  counters.reconnects += 4;
  Server s = make_server();
  const std::string portal =
      core::portal_report(s, core::MonitorOptions{}, counters.snapshot());
  EXPECT_NE(portal.find("transport health"), std::string::npos);
  EXPECT_NE(portal.find("reconnects:"), std::string::npos);
  const std::string prom = reg.render_prometheus();
  EXPECT_NE(prom.find("crowdml_net_reconnects_total 4"), std::string::npos);
  EXPECT_NE(prom.find("crowdml_net_retries_total 1"), std::string::npos);
}
