// Finite-difference gradient verification.
//
// Used by tests and by bench/table1_logreg to certify that each model's
// analytic gradient matches Table I (and its analogues) numerically.
#pragma once

#include "models/model.hpp"

namespace crowdml::models {

struct GradientCheckResult {
  double max_abs_error = 0.0;   // max_i |analytic_i - numeric_i|
  double max_rel_error = 0.0;   // relative to max(1, |numeric_i|)
};

/// Central-difference check of model.add_loss_gradient at (w, s).
GradientCheckResult check_gradient(const Model& model, const linalg::Vector& w,
                                   const Sample& s, double step = 1e-6);

}  // namespace crowdml::models
