// Automatic-failover tests: lease bookkeeping, the jittered failure
// detector, vote grant/refusal rules, sealed-frame authentication, the
// in-process end-to-end election (leader dies -> a follower durably
// self-promotes with a majority, its elector retargets), the client's
// redirect-following, and the bounded-staleness checkout gate.
//
// Suite names Lease / FailureDetector / Election are load-bearing: CI's
// ThreadSanitizer job runs them by regex.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/tcp_runtime.hpp"
#include "engine/epoll_server.hpp"
#include "net/auth.hpp"
#include "net/tcp.hpp"
#include "opt/schedule.hpp"
#include "replica/failure_detector.hpp"
#include "replica/follower.hpp"
#include "replica/lease.hpp"
#include "replica/log_shipper.hpp"
#include "replica/repl_session.hpp"
#include "store/durable_store.hpp"

using namespace crowdml;
using replica::ElectionOptions;
using replica::FailureDetector;
using replica::FailureDetectorConfig;
using replica::Follower;
using replica::FollowerOptions;
using replica::Lease;
using replica::LogShipper;
using replica::ReplAckMode;
using replica::ReplKey;
using replica::ShipperOptions;
using replica::VoteListener;

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point at_ms(long long ms) {
  return Clock::time_point{} + std::chrono::milliseconds(ms);
}

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "crowdml_elect_XXXXXX")
            .string();
    if (!mkdtemp(tmpl.data())) throw std::runtime_error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

core::ServerConfig config() {
  core::ServerConfig c;
  c.param_dim = 4;
  c.num_classes = 3;
  return c;
}

std::unique_ptr<opt::Updater> sgd() {
  return std::make_unique<opt::SgdUpdater>(
      std::make_unique<opt::SqrtDecaySchedule>(1.0), 100.0);
}

net::CheckinMessage random_checkin(rng::Engine& eng, std::uint64_t device) {
  net::CheckinMessage m;
  m.device_id = device;
  for (int i = 0; i < 4; ++i)
    m.g_hat.push_back(static_cast<double>(eng() % 2001) / 1000.0 - 1.0);
  m.ns = 1 + static_cast<std::int64_t>(eng() % 10);
  m.ne_hat = static_cast<std::int64_t>(eng() % 3);
  for (int i = 0; i < 3; ++i)
    m.ny_hat.push_back(static_cast<std::int64_t>(eng() % 5));
  return m;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 15000) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

ReplKey key_of(std::initializer_list<std::uint8_t> bytes) {
  return ReplKey(bytes);
}

}  // namespace

// ----------------------------------------------------------------- lease

TEST(Lease, NothingHeldBeforeFirstGrant) {
  Lease l;
  EXPECT_FALSE(l.held(at_ms(0)));
  // Never-granted is not the same as expired: a follower that has not
  // yet met its leader has nothing to detect the failure of.
  EXPECT_FALSE(l.expired(at_ms(1'000'000)));
  EXPECT_EQ(l.remaining_ms(at_ms(0)), 0);
  EXPECT_EQ(l.epoch(), 0u);
}

TEST(Lease, RenewHoldsThenExpires) {
  Lease l;
  l.renew(1, 10, 300, at_ms(1000));
  EXPECT_TRUE(l.held(at_ms(1000)));
  EXPECT_TRUE(l.held(at_ms(1299)));
  EXPECT_EQ(l.remaining_ms(at_ms(1100)), 200);
  EXPECT_FALSE(l.expired(at_ms(1299)));
  EXPECT_FALSE(l.held(at_ms(1301)));
  EXPECT_TRUE(l.expired(at_ms(1301)));
  EXPECT_EQ(l.remaining_ms(at_ms(1301)), 0);
  EXPECT_EQ(l.epoch(), 1u);
  EXPECT_EQ(l.committed_seq(), 10u);
}

TEST(Lease, StaleEpochGrantIgnored) {
  Lease l;
  l.renew(3, 50, 300, at_ms(1000));
  // A deposed leader's straggler heartbeat must not extend its lease or
  // roll the watermark back.
  l.renew(2, 99, 10'000, at_ms(1100));
  EXPECT_EQ(l.epoch(), 3u);
  EXPECT_EQ(l.committed_seq(), 50u);
  EXPECT_FALSE(l.held(at_ms(1400)));
}

TEST(Lease, DeadlineNeverMovesBackwards) {
  Lease l;
  l.renew(1, 10, 1000, at_ms(1000));  // deadline 2000
  l.renew(1, 20, 10, at_ms(1100));    // would be 1110 — keep 2000
  EXPECT_TRUE(l.held(at_ms(1999)));
  EXPECT_EQ(l.committed_seq(), 20u);  // watermark still advances
}

// ------------------------------------------------------------- detector

TEST(FailureDetector, DisabledNeverDue) {
  FailureDetector d(FailureDetectorConfig{}, rng::Engine(1));
  EXPECT_FALSE(d.enabled());
  d.arm(at_ms(0));
  EXPECT_FALSE(d.due(at_ms(1'000'000)));
  EXPECT_EQ(d.current_timeout_ms(), 0);
}

TEST(FailureDetector, ArmedDeadlinePasses) {
  FailureDetectorConfig cfg;
  cfg.election_timeout_min_ms = 100;
  cfg.election_timeout_max_ms = 200;
  FailureDetector d(cfg, rng::Engine(7));
  EXPECT_TRUE(d.enabled());
  EXPECT_FALSE(d.due(at_ms(1'000'000)));  // not armed yet
  d.arm(at_ms(1000));
  EXPECT_FALSE(d.due(at_ms(1000)));
  EXPECT_TRUE(d.due(at_ms(1201)));  // past even the max draw
}

TEST(FailureDetector, ObservePushesDeadlineOut) {
  FailureDetectorConfig cfg;
  cfg.election_timeout_min_ms = 100;
  cfg.election_timeout_max_ms = 100;  // no jitter: deadline is exact
  FailureDetector d(cfg, rng::Engine(7));
  d.arm(at_ms(0));
  EXPECT_TRUE(d.due(at_ms(101)));
  d.observe(at_ms(90));
  EXPECT_FALSE(d.due(at_ms(101)));  // heartbeat at 90 pushed it to 190
  EXPECT_TRUE(d.due(at_ms(191)));
}

TEST(FailureDetector, JitterStaysWithinConfiguredRange) {
  FailureDetectorConfig cfg;
  cfg.election_timeout_min_ms = 150;
  cfg.election_timeout_max_ms = 300;
  FailureDetector d(cfg, rng::Engine(42));
  for (int i = 0; i < 200; ++i) {
    d.arm(at_ms(i));
    EXPECT_GE(d.current_timeout_ms(), 150);
    EXPECT_LE(d.current_timeout_ms(), 300);
  }
}

TEST(FailureDetector, MaxDefaultsToTwiceMin) {
  FailureDetectorConfig cfg;
  cfg.election_timeout_min_ms = 100;  // max left at 0 => 200
  FailureDetector d(cfg, rng::Engine(42));
  for (int i = 0; i < 200; ++i) {
    d.arm(at_ms(i));
    EXPECT_GE(d.current_timeout_ms(), 100);
    EXPECT_LE(d.current_timeout_ms(), 200);
  }
}

// ------------------------------------------------------------- election

TEST(Election, MajorityMath) {
  EXPECT_EQ(replica::election_majority(1), 1u);
  EXPECT_EQ(replica::election_majority(2), 2u);
  EXPECT_EQ(replica::election_majority(3), 2u);
  EXPECT_EQ(replica::election_majority(4), 3u);
  EXPECT_EQ(replica::election_majority(5), 3u);
}

TEST(Election, PeerListParsing) {
  std::string err;
  auto peers = replica::parse_peer_list("10.0.0.1:5000,host-b:5001", &err);
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_TRUE(err.empty());
  EXPECT_EQ(peers[0].host, "10.0.0.1");
  EXPECT_EQ(peers[0].port, 5000);
  EXPECT_EQ(peers[0].raw, "10.0.0.1:5000");
  EXPECT_EQ(peers[1].host, "host-b");
  EXPECT_EQ(peers[1].port, 5001);

  // Single-follower deployments have no peers: empty is valid.
  EXPECT_TRUE(replica::parse_peer_list("", &err).empty());
  EXPECT_TRUE(err.empty());

  // Stray commas are tolerated (trailing commas from shell expansion).
  peers = replica::parse_peer_list("h:1,,h:2,", &err);
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_TRUE(err.empty());

  EXPECT_TRUE(replica::parse_peer_list("nocolon", &err).empty());
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_TRUE(replica::parse_peer_list("h:99999", &err).empty());
  EXPECT_FALSE(err.empty());
}

TEST(Election, SealOpenRoundTripAndTamperRejection) {
  const ReplKey key = key_of({1, 2, 3, 4, 5});
  const net::Bytes payload{10, 20, 30};

  auto sealed =
      replica::seal_repl_payload(key, net::MessageType::kReplVote, payload);
  ASSERT_EQ(sealed.size(), payload.size() + replica::kReplTagSize);
  auto opened =
      replica::open_repl_payload(key, net::MessageType::kReplVote, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);

  // Wrong key: drop.
  EXPECT_FALSE(replica::open_repl_payload(key_of({9, 9}),
                                          net::MessageType::kReplVote, sealed)
                   .has_value());
  // Tag binds the frame type: a captured heartbeat cannot be replayed
  // as a vote.
  EXPECT_FALSE(replica::open_repl_payload(
                   key, net::MessageType::kReplHeartbeat, sealed)
                   .has_value());
  // Flipped payload byte: drop.
  auto tampered = sealed;
  tampered[0] ^= 0xFF;
  EXPECT_FALSE(replica::open_repl_payload(key, net::MessageType::kReplVote,
                                          tampered)
                   .has_value());
  // Truncated below the tag size: drop, not a crash.
  EXPECT_FALSE(replica::open_repl_payload(key, net::MessageType::kReplVote,
                                          net::Bytes{1, 2, 3})
                   .has_value());

  // Empty key passes through untouched (both sides must agree).
  auto plain = replica::seal_repl_payload(ReplKey{},
                                          net::MessageType::kReplVote, payload);
  EXPECT_EQ(plain, payload);
  EXPECT_EQ(*replica::open_repl_payload(ReplKey{}, net::MessageType::kReplVote,
                                        payload),
            payload);
}

TEST(Election, HeartbeatCodecRoundTrip) {
  net::ReplHeartbeatMessage hb;
  hb.epoch = 7;
  hb.committed_seq = 123456;
  hb.lease_ms = 1500;
  hb.leader_addr = "10.1.2.3:8443";
  const auto back = net::ReplHeartbeatMessage::deserialize(hb.serialize());
  EXPECT_EQ(back.epoch, 7u);
  EXPECT_EQ(back.committed_seq, 123456u);
  EXPECT_EQ(back.lease_ms, 1500u);
  EXPECT_EQ(back.leader_addr, "10.1.2.3:8443");

  auto bytes = hb.serialize();
  bytes.push_back(0);  // trailing garbage must be rejected
  EXPECT_THROW(net::ReplHeartbeatMessage::deserialize(bytes),
               net::CodecError);
}

TEST(Election, VoteCodecRoundTrip) {
  net::ReplVoteMessage v;
  v.request = true;
  v.granted = false;
  v.epoch = 9;
  v.candidate_id = 3;
  v.last_seq = 777;
  v.nonce = 0xFEEDFACECAFEF00DULL;
  v.device_addr = "127.0.0.1:6000";
  v.repl_addr = "127.0.0.1:6001";
  const auto back = net::ReplVoteMessage::deserialize(v.serialize());
  EXPECT_TRUE(back.request);
  EXPECT_FALSE(back.granted);
  EXPECT_EQ(back.epoch, 9u);
  EXPECT_EQ(back.candidate_id, 3u);
  EXPECT_EQ(back.last_seq, 777u);
  EXPECT_EQ(back.nonce, 0xFEEDFACECAFEF00DULL);
  EXPECT_EQ(back.device_addr, "127.0.0.1:6000");
  EXPECT_EQ(back.repl_addr, "127.0.0.1:6001");

  auto bytes = v.serialize();
  bytes.push_back(0);
  EXPECT_THROW(net::ReplVoteMessage::deserialize(bytes), net::CodecError);
}

TEST(Election, HelloCarriesSnapshotResumeFields) {
  net::ReplHelloMessage hello;
  hello.follower_id = 4;
  hello.epoch = 2;
  hello.last_seq = 10;
  hello.snapshot_version = 33;
  hello.snapshot_offset = 65536;
  const auto back = net::ReplHelloMessage::deserialize(hello.serialize());
  EXPECT_EQ(back.snapshot_version, 33u);
  EXPECT_EQ(back.snapshot_offset, 65536u);
}

TEST(Election, CandidateWinsWithOneGrant) {
  const ReplKey key = key_of({0xAA, 0xBB});
  obs::MetricsRegistry reg;
  VoteListener::Options lo;
  lo.key = key;
  lo.metrics = &reg;
  std::atomic<int> grants_issued{0};
  VoteListener elector(lo, [&](const net::ReplVoteMessage& req) {
    net::ReplVoteMessage resp;
    resp.request = false;
    resp.granted = req.epoch > 1 && req.last_seq >= 5;
    resp.epoch = resp.granted ? req.epoch : 1;
    resp.last_seq = 5;
    // A ballot is bound to the request it answers: echo or be discarded.
    resp.candidate_id = req.candidate_id;
    resp.nonce = req.nonce;
    if (resp.granted) ++grants_issued;
    return resp;
  });
  ASSERT_TRUE(elector.start());

  ElectionOptions eo;
  eo.epoch = 2;
  eo.candidate_id = 1;
  eo.last_seq = 5;  // exactly as long as the elector's log: grantable
  eo.peers = replica::parse_peer_list(
      "127.0.0.1:" + std::to_string(elector.port()));
  eo.key = key;
  const auto res = replica::run_election(eo);
  EXPECT_TRUE(res.won);
  EXPECT_EQ(res.grants, 2u);  // the elector plus the candidate's own vote
  EXPECT_EQ(res.electorate, 2u);
  EXPECT_EQ(grants_issued.load(), 1);
  EXPECT_EQ(elector.votes_served(), 1);
  elector.shutdown();
}

TEST(Election, ShorterLogLosesAndLearnsHigherEpoch) {
  obs::MetricsRegistry reg;
  VoteListener::Options lo;
  lo.metrics = &reg;
  VoteListener elector(lo, [&](const net::ReplVoteMessage& req) {
    // Refuse: this elector has already promised epoch 42.
    net::ReplVoteMessage resp;
    resp.request = false;
    resp.granted = false;
    resp.epoch = 42;
    resp.last_seq = 100;
    resp.candidate_id = req.candidate_id;
    resp.nonce = req.nonce;
    return resp;
  });
  ASSERT_TRUE(elector.start());

  ElectionOptions eo;
  eo.epoch = 3;
  eo.candidate_id = 1;
  eo.last_seq = 1;
  eo.peers = replica::parse_peer_list(
      "127.0.0.1:" + std::to_string(elector.port()));
  const auto res = replica::run_election(eo);
  EXPECT_FALSE(res.won);
  EXPECT_EQ(res.grants, 1u);  // only its own vote
  // The refusal's higher epoch rides back so the loser's next proposal
  // is not dead on arrival.
  EXPECT_EQ(res.higher_epoch_seen, 42u);
  elector.shutdown();
}

TEST(Election, UnboundBallotsAreDiscarded) {
  // A ballot that does not echo the candidate id and nonce of the
  // request it answers is noise — a replayed grant from an earlier
  // campaign, a confused voter, or a forgery inside the key domain.
  // None of them may count toward a majority, and an unbound refusal
  // may not steer the loser's next proposal either.
  std::atomic<int> mode{0};
  obs::MetricsRegistry reg;
  VoteListener::Options lo;
  lo.metrics = &reg;
  VoteListener elector(lo, [&](const net::ReplVoteMessage& req) {
    net::ReplVoteMessage resp;
    resp.request = false;
    resp.candidate_id = req.candidate_id;
    resp.nonce = req.nonce;
    switch (mode.load()) {
      case 0:  // grant replayed from some other campaign: stale nonce
        resp.granted = true;
        resp.epoch = req.epoch;
        resp.nonce = req.nonce ^ 1;
        break;
      case 1:  // grant addressed to a different candidate
        resp.granted = true;
        resp.epoch = req.epoch;
        resp.candidate_id = req.candidate_id + 1;
        break;
      case 2:  // bound, but granting a different epoch than proposed
        resp.granted = true;
        resp.epoch = req.epoch + 1;
        break;
      default:  // unbound refusal advertising a scary-high epoch
        resp.granted = false;
        resp.epoch = 99;
        resp.nonce = req.nonce ^ 1;
        break;
    }
    return resp;
  });
  ASSERT_TRUE(elector.start());

  for (int m = 0; m < 4; ++m) {
    mode.store(m);
    ElectionOptions eo;
    eo.epoch = 7;
    eo.candidate_id = 1;
    eo.last_seq = 5;
    eo.nonce = 1000 + static_cast<std::uint64_t>(m);
    eo.peers = replica::parse_peer_list(
        "127.0.0.1:" + std::to_string(elector.port()));
    const auto res = replica::run_election(eo);
    EXPECT_FALSE(res.won) << "mode " << m;
    EXPECT_EQ(res.grants, 1u) << "mode " << m;  // own vote only
    EXPECT_EQ(res.higher_epoch_seen, 0u) << "mode " << m;
  }
  elector.shutdown();
}

TEST(Election, LiveLeaseGatesVoteGrants) {
  // Check-quorum at the voter: while this follower's lease from the
  // current leader is live, the leader is demonstrably fine, so any
  // candidacy is disruption (an isolated node's fuse firing). Refuse
  // WITHOUT adopting the proposed epoch — adopting would fence the
  // healthy leader on the next hello.
  obs::MetricsRegistry reg;
  TempDir ldir;
  core::Server leader(config(), sgd(), rng::Engine(1));
  store::DurableStoreOptions so;
  so.wal.metrics = &reg;
  auto lstore = std::make_unique<store::DurableStore>(ldir.path, so);
  lstore->recover(leader);
  lstore->attach(leader);
  ShipperOptions shopts;
  shopts.ack_mode = ReplAckMode::kAsync;
  shopts.heartbeat_interval_ms = 40;  // lease defaults to 120ms
  shopts.metrics = &reg;
  auto shipper = std::make_unique<LogShipper>(leader, *lstore, 1, shopts);

  TempDir fdir;
  core::Server srv(config(), sgd(), rng::Engine(1));
  obs::MetricsRegistry freg;
  FollowerOptions fo;
  fo.leader_port = shipper->port();
  fo.follower_id = 1;
  fo.store.wal.metrics = &freg;
  fo.metrics = &freg;
  fo.reconnect_backoff_ms = 20;
  fo.detector.election_timeout_min_ms = 60'000;  // voter, never a candidate
  fo.rng_seed = 1;
  auto f = std::make_unique<Follower>(srv, fdir.path, fo);
  f->start();
  ASSERT_TRUE(wait_until([&] { return f->vote_port() != 0; }));
  ASSERT_TRUE(wait_until([&] { return f->connected() && f->lease().held(); }));

  ElectionOptions eo;
  eo.epoch = 5;
  eo.candidate_id = 9;
  eo.last_seq = 1'000'000;  // longer log than anyone: grantable on merit
  eo.nonce = 42;
  eo.peers = replica::parse_peer_list(
      "127.0.0.1:" + std::to_string(f->vote_port()));
  const auto refused = replica::run_election(eo);
  EXPECT_FALSE(refused.won);
  EXPECT_EQ(refused.grants, 1u);  // own vote only
  EXPECT_EQ(f->epoch(), 1u)
      << "a lease-gated refusal must not adopt the proposed epoch";

  // The leader dies; the lease lapses; the same candidacy now succeeds.
  shipper->shutdown();
  ASSERT_TRUE(wait_until([&] { return !f->lease().held(); }));
  const auto granted = replica::run_election(eo);
  EXPECT_TRUE(granted.won);
  EXPECT_EQ(granted.grants, 2u);
  ASSERT_TRUE(wait_until([&] { return f->epoch() == 5u; }));
  f->shutdown();
}

TEST(Election, UnreachablePeerSimplyDoesNotVote) {
  ElectionOptions eo;
  eo.epoch = 2;
  eo.candidate_id = 1;
  eo.last_seq = 0;
  eo.connect_timeout_ms = 100;
  // Two peers that do not exist: electorate 3, majority 2, grants 1.
  eo.peers = replica::parse_peer_list("127.0.0.1:1,127.0.0.1:2");
  const auto res = replica::run_election(eo);
  EXPECT_FALSE(res.won);
  EXPECT_EQ(res.grants, 1u);
  EXPECT_EQ(res.electorate, 3u);
  EXPECT_EQ(res.higher_epoch_seen, 0u);
}

TEST(Election, EmptyPeerListIsASelfElectingSingleton) {
  // One follower total: it IS the majority. This is what makes a
  // two-node (leader + one follower) deployment fail over at all.
  ElectionOptions eo;
  eo.epoch = 2;
  eo.candidate_id = 1;
  const auto res = replica::run_election(eo);
  EXPECT_TRUE(res.won);
  EXPECT_EQ(res.grants, 1u);
  EXPECT_EQ(res.electorate, 1u);
}

TEST(Election, WrongKeyVoteRequestDroppedNotGranted) {
  obs::MetricsRegistry reg;
  VoteListener::Options lo;
  lo.key = key_of({1, 2, 3});
  lo.metrics = &reg;
  lo.io_deadline_ms = 300;
  std::atomic<int> handled{0};
  VoteListener elector(lo, [&](const net::ReplVoteMessage& req) {
    ++handled;
    net::ReplVoteMessage resp = req;
    resp.request = false;
    resp.granted = true;
    return resp;
  });
  ASSERT_TRUE(elector.start());

  ElectionOptions eo;
  eo.epoch = 2;
  eo.candidate_id = 1;
  eo.io_deadline_ms = 500;
  eo.peers = replica::parse_peer_list(
      "127.0.0.1:" + std::to_string(elector.port()));
  eo.key = key_of({4, 5, 6});  // mismatched
  const auto res = replica::run_election(eo);
  EXPECT_FALSE(res.won);
  EXPECT_EQ(handled.load(), 0) << "a forged vote must never reach the handler";
  auto& dropped = reg.counter("crowdml_repl_auth_failed_total", "x",
                              obs::Provenance::kTransportEvent);
  EXPECT_TRUE(wait_until([&] { return dropped.value() >= 1; }));
  elector.shutdown();
}

// The whole machine end to end, in one process: a heartbeating leader
// replicating to two followers dies abruptly; the short-fused follower
// detects the silence, campaigns, wins the long-fused follower's vote,
// and durably self-promotes — zero operator involvement. The elector
// adopts the new epoch and repoints its checkin redirect at the winner.
TEST(Election, FollowerSelfPromotesAfterLeaderDeath) {
  obs::MetricsRegistry reg;
  const ReplKey key = key_of({0xDE, 0xAD, 0xBE, 0xEF});

  // --- Leader: epoll engine, quorum shipping, 50ms heartbeats.
  TempDir ldir;
  core::Server leader(config(), sgd(), rng::Engine(1));
  store::DurableStoreOptions so;
  so.wal.metrics = &reg;
  auto lstore = std::make_unique<store::DurableStore>(ldir.path, so);
  lstore->recover(leader);
  lstore->attach(leader);
  lstore->set_group_commit(true);

  ShipperOptions shopts;
  shopts.ack_mode = ReplAckMode::kQuorum;
  shopts.quorum_follower_acks = 1;
  shopts.quorum_timeout_ms = 3000;
  shopts.heartbeat_interval_ms = 50;  // lease defaults to 150ms
  shopts.key = key;
  shopts.metrics = &reg;
  auto shipper = std::make_unique<LogShipper>(leader, *lstore, 1, shopts);

  net::AuthRegistry auth{rng::Engine(2)};
  engine::EngineConfig ecfg;
  ecfg.metrics = &reg;
  ecfg.group_commit = [&] {
    if (!lstore->commit_group()) return false;
    shipper->notify_committed();
    return shipper->await_quorum(lstore->wal().last_seq());
  };
  auto engine = std::make_unique<engine::EpollCrowdServer>(leader, auth, ecfg);

  // --- Elector follower f2 first (long fuse: it never campaigns, so
  // candidate f1 below always runs the election — deterministic roles).
  std::mutex addr_mu;
  std::string f2_sees_leader;
  TempDir f2dir;
  core::Server srv2(config(), sgd(), rng::Engine(1));
  // Own registry: counters are get-or-create by NAME, so two followers
  // sharing one registry would also share elections_started_ etc.
  obs::MetricsRegistry reg2;
  FollowerOptions fo2;
  fo2.leader_port = shipper->port();
  fo2.follower_id = 2;
  fo2.store.wal.metrics = &reg2;
  fo2.metrics = &reg2;
  fo2.reconnect_backoff_ms = 20;
  fo2.detector.election_timeout_min_ms = 60'000;
  fo2.key = key;
  fo2.rng_seed = 2;
  fo2.on_leader_changed = [&](const std::string& addr) {
    std::lock_guard<std::mutex> lk(addr_mu);
    f2_sees_leader = addr;
  };
  auto f2 = std::make_unique<Follower>(srv2, f2dir.path, fo2);
  f2->start();
  ASSERT_TRUE(wait_until([&] { return f2->vote_port() != 0; }));

  // --- Candidate follower f1 (short fuse, knows f2's vote endpoint).
  TempDir f1dir;
  core::Server srv1(config(), sgd(), rng::Engine(1));
  FollowerOptions fo1;
  fo1.leader_port = shipper->port();
  fo1.follower_id = 1;
  fo1.store.wal.metrics = &reg;
  fo1.metrics = &reg;
  fo1.reconnect_backoff_ms = 20;
  fo1.detector.election_timeout_min_ms = 200;
  fo1.detector.election_timeout_max_ms = 400;
  fo1.peers = replica::parse_peer_list(
      "127.0.0.1:" + std::to_string(f2->vote_port()));
  fo1.device_addr = "127.0.0.1:7777";  // what f2's redirect should become
  fo1.key = key;
  fo1.rng_seed = 1;
  auto f1 = std::make_unique<Follower>(srv1, f1dir.path, fo1);
  f1->start();
  ASSERT_TRUE(wait_until([&] { return f1->connected() && f2->connected(); }));

  // --- Traffic: quorum-acked checkins while heartbeats keep leases
  // renewed; f1's 200-400ms detector must NOT fire under 50ms beats.
  rng::Engine traffic(9);
  const auto creds = auth.enroll();
  auto conn = net::TcpConnection::connect("127.0.0.1", engine->port(), 2000);
  ASSERT_TRUE(conn);
  conn->set_deadline_ms(10'000);
  long long acked = 0;
  for (int i = 0; i < 60; ++i) {
    net::CheckinMessage m = random_checkin(traffic, creds.device_id);
    m.auth_tag = creds.sign(m.body());
    ASSERT_TRUE(conn->send_frame(
        net::encode_frame(net::MessageType::kCheckin, m.serialize())));
    const auto reply = conn->recv_frame();
    ASSERT_TRUE(reply);
    if (net::AckMessage::deserialize(net::decode_frame(*reply).payload).ok)
      ++acked;
  }
  ASSERT_GE(acked, 50);
  EXPECT_EQ(f1->elections_started(), 0)
      << "the detector fired while the leader was demonstrably alive";
  EXPECT_TRUE(f1->lease().held());
  EXPECT_GT(shipper->heartbeats_sent(), 0);

  // Both replicas fully caught up (so either can win on log length).
  ASSERT_TRUE(wait_until([&] {
    return f1->applied_seq() == leader.version() &&
           f2->applied_seq() == leader.version();
  }));
  // The committed watermark rides heartbeats, so it can trail applied_seq
  // by one beat — eventually consistent, not instantaneous.
  EXPECT_TRUE(wait_until([&] {
    return f1->leader_committed() == leader.version();
  }));

  // --- Kill the leader abruptly. Silence is the only signal.
  engine->shutdown();
  shipper->shutdown();

  ASSERT_TRUE(wait_until([&] { return f1->promoted(); }))
      << "the candidate never promoted itself";
  EXPECT_GE(f1->lease_expirations(), 1);
  EXPECT_GE(f1->elections_started(), 1);
  EXPECT_EQ(f1->elections_won(), 1);
  EXPECT_GE(f1->epoch(), 2u) << "promotion must have bumped the epoch";
  // Zero acked-checkin loss: the winner holds every acked record.
  EXPECT_GE(static_cast<long long>(f1->applied_seq()), acked);

  // The grant was itself a durable epoch bump on the elector...
  ASSERT_TRUE(wait_until([&] { return f2->epoch() == f1->epoch(); }));
  // ...and repointed its checkin redirect at the winner.
  {
    std::lock_guard<std::mutex> lk(addr_mu);
    EXPECT_EQ(f2_sees_leader, "127.0.0.1:7777");
  }
  EXPECT_EQ(f2->elections_started(), 0);

  // Promotion durability: reopening the winner's epoch register shows
  // the won epoch (a restart cannot regress below its own term).
  f1->shutdown();
  EXPECT_EQ(replica::EpochStore(f1dir.path).load(), f1->epoch());
  f2->shutdown();
}

// ------------------------------------------------------------- redirects

namespace {

net::Bytes signed_checkin_frame(rng::Engine& eng,
                                const net::DeviceCredentials& creds) {
  net::CheckinMessage m = random_checkin(eng, creds.device_id);
  m.auth_tag = creds.sign(m.body());
  return net::encode_frame(net::MessageType::kCheckin, m.serialize());
}

}  // namespace

TEST(Election, ClientFollowsNotLeaderRedirect) {
  obs::MetricsRegistry reg;
  net::AuthRegistry auth{rng::Engine(2)};

  // Real leader engine, and a replica engine that bounces checkins.
  core::Server leader(config(), sgd(), rng::Engine(1));
  engine::EngineConfig lcfg;
  lcfg.metrics = &reg;
  auto leader_engine =
      std::make_unique<engine::EpollCrowdServer>(leader, auth, lcfg);

  core::Server replica_srv(config(), sgd(), rng::Engine(1));
  engine::EngineConfig rcfg;
  rcfg.metrics = &reg;
  auto replica_engine =
      std::make_unique<engine::EpollCrowdServer>(replica_srv, auth, rcfg);
  replica_engine->set_checkin_redirect(
      "127.0.0.1:" + std::to_string(leader_engine->port()));

  // Device homed on the replica: its checkin is nacked pre-application,
  // replayed at the advertised leader, and acked there.
  core::ReconnectPolicy policy;
  core::ReconnectingDeviceSession session("127.0.0.1", replica_engine->port(),
                                          policy, rng::Engine(3));
  rng::Engine eng(4);
  const auto creds = auth.enroll();
  const auto reply = session.exchange(signed_checkin_frame(eng, creds));
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(net::AckMessage::deserialize(net::decode_frame(*reply).payload)
                  .ok);
  EXPECT_EQ(session.redirects_followed(), 1);
  EXPECT_EQ(session.current_port(), leader_engine->port());
  EXPECT_EQ(leader.version(), 1u);
  EXPECT_EQ(replica_srv.version(), 0u) << "the replica must not have applied";
  // The replayed checkin hit the wire twice — once per target — which is
  // safe exactly because the first attempt was refused before application.
  EXPECT_EQ(session.checkin_frames_sent(), 2);

  leader_engine->shutdown();
  replica_engine->shutdown();
}

TEST(Election, RedirectLoopHitsHopCapAndSurfacesNack) {
  obs::MetricsRegistry reg;
  net::AuthRegistry auth{rng::Engine(2)};
  core::Server srv(config(), sgd(), rng::Engine(1));
  engine::EngineConfig cfg;
  cfg.metrics = &reg;
  auto engine = std::make_unique<engine::EpollCrowdServer>(srv, auth, cfg);
  // A confused replica redirecting to itself: the worst-case loop.
  engine->set_checkin_redirect("127.0.0.1:" + std::to_string(engine->port()));

  core::ReconnectPolicy policy;
  policy.max_redirect_hops = 3;
  core::ReconnectingDeviceSession session("127.0.0.1", engine->port(), policy,
                                          rng::Engine(3));
  rng::Engine eng(4);
  const auto creds = auth.enroll();
  const auto reply = session.exchange(signed_checkin_frame(eng, creds));
  ASSERT_TRUE(reply.has_value()) << "the loop must end in a surfaced nack";
  const auto ack =
      net::AckMessage::deserialize(net::decode_frame(*reply).payload);
  EXPECT_FALSE(ack.ok);
  EXPECT_TRUE(net::parse_leader_redirect(ack.reason).has_value());
  EXPECT_EQ(session.redirects_followed(), 3);
  EXPECT_EQ(srv.version(), 0u);
  engine->shutdown();
}

// ----------------------------------------------------- bounded staleness

TEST(Election, LaggingReplicaRefusesCheckoutsWithRetryHint) {
  obs::MetricsRegistry reg;
  net::AuthRegistry auth{rng::Engine(2)};
  core::Server srv(config(), sgd(), rng::Engine(1));

  std::atomic<std::uint64_t> lag{25};
  engine::EngineConfig cfg;
  cfg.metrics = &reg;
  cfg.read_lag = [&] { return lag.load(); };
  cfg.max_read_lag = 10;
  cfg.stale_retry_after_ms = 120;
  auto engine = std::make_unique<engine::EpollCrowdServer>(srv, auth, cfg);

  const auto creds = auth.enroll();
  net::CheckoutRequest req;
  req.device_id = creds.device_id;
  req.auth_tag = creds.sign(req.body());
  const auto frame =
      net::encode_frame(net::MessageType::kCheckoutRequest, req.serialize());

  auto conn = net::TcpConnection::connect("127.0.0.1", engine->port(), 2000);
  ASSERT_TRUE(conn);
  conn->set_deadline_ms(5000);
  ASSERT_TRUE(conn->send_frame(frame));
  auto reply = conn->recv_frame();
  ASSERT_TRUE(reply);
  const net::Frame nack_frame = net::decode_frame(*reply);
  ASSERT_EQ(nack_frame.type, net::MessageType::kAck) << "expected a refusal";
  const auto nack = net::AckMessage::deserialize(nack_frame.payload);
  EXPECT_FALSE(nack.ok);
  // The hint is machine-readable: devices back off by what the replica
  // asked instead of guessing.
  EXPECT_EQ(net::parse_retry_after(nack.reason), 120);
  EXPECT_EQ(engine->stale_checkouts_refused(), 1);

  // Lag back under the bound: checkouts flow again on a new connection.
  lag.store(5);
  auto conn2 = net::TcpConnection::connect("127.0.0.1", engine->port(), 2000);
  ASSERT_TRUE(conn2);
  conn2->set_deadline_ms(5000);
  ASSERT_TRUE(conn2->send_frame(frame));
  reply = conn2->recv_frame();
  ASSERT_TRUE(reply);
  const net::Frame ok_frame = net::decode_frame(*reply);
  ASSERT_EQ(ok_frame.type, net::MessageType::kParams);
  EXPECT_TRUE(net::ParamsMessage::deserialize(ok_frame.payload).accepted);
  engine->shutdown();
}
