// Minimal command-line flag parsing for the CLI tools (no external deps).
// Supports --name=value and --name value forms plus boolean --name.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "coord/device_class.hpp"
#include "shard/shard_map.hpp"

namespace crowdml::tools {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0)
        throw std::runtime_error("unexpected positional argument: " + arg);
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  long long get_int(const std::string& name, long long fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }

  double get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  bool get_bool(const std::string& name, bool fallback = false) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Replication role flags for crowdml-server, validated as a unit (the
/// combinations are easy to get wrong; see docs/REPLICATION.md):
///   --role leader|follower          (default leader)
///   --leader-addr host:port         (follower only; required there)
///   --repl-ack none|async|quorum    (leader only)
///   --repl-port N                   (leader only; 0 = ephemeral)
///   --repl-followers N              (leader; sizes the quorum)
///   --epoch-dir DIR                 (default: the wal dir)
///   --promote-on-start              (leader only; bump the epoch —
///                                    break-glass; elections supersede it)
/// Automatic failover (see docs/REPLICATION.md "Automatic failover"):
///   --lease-ms N                    (leader; heartbeat lease, default 1000)
///   --election-timeout-ms N         (follower; 0 = manual failover only)
///   --peers h1:p1,h2:p2             (follower; fellow vote endpoints)
///   --vote-port N                   (follower; 0 = ephemeral)
///   --max-read-lag N                (follower; stale-checkout gate, 0 = off)
///   --repl-key-file PATH            (both; hex HMAC key for Repl* frames)
///   --advertise-host HOST           (both; the host peers and devices
///                                    reach this node on — redirect
///                                    targets, vote repl_addr; default
///                                    127.0.0.1 suits single-host tests
///                                    only)
/// `error` is non-empty when the combination is invalid.
struct ReplicaFlags {
  std::string role = "leader";
  std::string leader_host;
  std::uint16_t leader_port = 0;
  std::string leader_addr;  ///< the raw host:port, for redirect nacks
  std::string ack_mode = "none";
  std::string epoch_dir;
  long long followers = 2;
  bool promote_on_start = false;
  /// True when this leader runs a replication plane at all (a
  /// --repl-port was given or an ack mode other than none requested).
  bool repl_enabled = false;
  std::uint16_t repl_port = 0;
  long long lease_ms = 1000;
  long long election_timeout_ms = 0;
  std::string peers;
  std::uint16_t vote_port = 0;
  long long max_read_lag = 0;
  std::string repl_key_file;
  std::string advertise_host = "127.0.0.1";
  std::string error;
};

inline ReplicaFlags parse_replica_flags(const Flags& flags) {
  ReplicaFlags r;
  r.role = flags.get("role", "leader");
  r.ack_mode = flags.get("repl-ack", "none");
  r.epoch_dir = flags.get("epoch-dir", "");
  r.followers = flags.get_int("repl-followers", 2);
  r.promote_on_start = flags.get_bool("promote-on-start");
  r.repl_port = static_cast<std::uint16_t>(flags.get_int("repl-port", 0));
  r.leader_addr = flags.get("leader-addr", "");
  r.lease_ms = flags.get_int("lease-ms", 1000);
  r.election_timeout_ms = flags.get_int("election-timeout-ms", 0);
  r.peers = flags.get("peers", "");
  r.vote_port = static_cast<std::uint16_t>(flags.get_int("vote-port", 0));
  r.max_read_lag = flags.get_int("max-read-lag", 0);
  r.repl_key_file = flags.get("repl-key-file", "");
  r.advertise_host = flags.get("advertise-host", "127.0.0.1");
  const std::string wal_dir = flags.get("wal-dir", "");
  const std::string engine = flags.get("engine", "threads");

  if (r.role != "leader" && r.role != "follower") {
    r.error = "unknown --role " + r.role + " (leader|follower)";
    return r;
  }
  if (r.ack_mode != "none" && r.ack_mode != "async" && r.ack_mode != "quorum") {
    r.error = "unknown --repl-ack " + r.ack_mode + " (none|async|quorum)";
    return r;
  }
  if (r.advertise_host.empty() ||
      r.advertise_host.find(':') != std::string::npos) {
    r.error = "--advertise-host takes a bare host (ports are the bound "
              "ones), got '" + r.advertise_host + "'";
    return r;
  }

  if (r.role == "follower") {
    if (r.leader_addr.empty()) {
      r.error = "--role follower requires --leader-addr host:port";
      return r;
    }
    const auto colon = r.leader_addr.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= r.leader_addr.size()) {
      r.error = "--leader-addr must be host:port, got " + r.leader_addr;
      return r;
    }
    r.leader_host = r.leader_addr.substr(0, colon);
    long long port = 0;
    try {
      port = std::stoll(r.leader_addr.substr(colon + 1));
    } catch (const std::exception&) {
      port = 0;
    }
    if (port < 1 || port > 65535) {
      r.error = "--leader-addr port out of range in " + r.leader_addr;
      return r;
    }
    r.leader_port = static_cast<std::uint16_t>(port);
    if (wal_dir.empty()) {
      r.error = "--role follower requires --wal-dir (the replica's log)";
      return r;
    }
    if (engine != "epoll") {
      r.error = "--role follower requires --engine epoll (snapshot-board "
                "checkouts)";
      return r;
    }
    if (flags.has("repl-ack") || flags.has("repl-port") ||
        flags.has("promote-on-start") || flags.has("repl-followers")) {
      r.error = "--repl-ack/--repl-port/--repl-followers/--promote-on-start "
                "are leader flags; a follower learns them from its leader";
      return r;
    }
    if (flags.has("lease-ms")) {
      r.error = "--lease-ms is a leader flag; a follower's deadline comes "
                "from --election-timeout-ms";
      return r;
    }
    if (r.election_timeout_ms < 0) {
      r.error = "--election-timeout-ms must be >= 0";
      return r;
    }
    if (r.max_read_lag < 0) {
      r.error = "--max-read-lag must be >= 0";
      return r;
    }
    if ((flags.has("peers") || flags.has("vote-port")) &&
        r.election_timeout_ms == 0) {
      r.error = "--peers/--vote-port require --election-timeout-ms > 0 "
                "(they only matter to an elector)";
      return r;
    }
    return r;
  }

  // Leader.
  if (!r.leader_addr.empty()) {
    r.error = "--leader-addr is a follower flag (this node IS the leader)";
    return r;
  }
  if (flags.has("election-timeout-ms") || flags.has("peers") ||
      flags.has("vote-port") || flags.has("max-read-lag")) {
    r.error = "--election-timeout-ms/--peers/--vote-port/--max-read-lag are "
              "follower flags (the leader grants leases, it does not watch "
              "them)";
    return r;
  }
  if (r.lease_ms < 1) {
    r.error = "--lease-ms must be >= 1";
    return r;
  }
  if (flags.has("lease-ms") && !flags.has("repl-port") &&
      r.ack_mode == "none" && !r.promote_on_start) {
    r.error = "--lease-ms requires a replication plane (--repl-port or "
              "--repl-ack)";
    return r;
  }
  r.repl_enabled = flags.has("repl-port") || r.ack_mode != "none" ||
                   r.promote_on_start;
  if (r.repl_enabled && wal_dir.empty()) {
    r.error = "replication requires --wal-dir (the WAL is the shipping "
              "buffer)";
    return r;
  }
  if (r.repl_enabled && engine != "epoll") {
    r.error = "replication requires --engine epoll (the shipping watermark "
              "advances on the group-commit path)";
    return r;
  }
  if (r.ack_mode == "quorum" && r.followers < 1) {
    r.error = "--repl-ack quorum requires --repl-followers >= 1";
    return r;
  }
  return r;
}

/// Coordinator / pace-steering flags for crowdml-server, validated as a
/// unit (docs/SCALING.md, "Pace steering"):
///   --coord-steering                  (enable the coordinator tier)
///   --coord-classes name:w,name:w     (device classes, listed order =
///                                      priority; e.g. fast:4,slow:2,flaky:1)
///   --coord-target-utilization F      (fraction of measured service rate
///                                      to steer toward; (0,1], default 0.7)
///   --coord-min-hint-ms N             (hint clamp floor, default 5)
///   --coord-max-hint-ms N             (hint clamp ceiling, default 30000;
///                                      must stay parseable as a retry
///                                      hint, i.e. < 1 hour)
///   --coord-init-rate N               (assumed service rate before the
///                                      first measured commit, checkins/s,
///                                      default 2000)
/// Every --coord-* flag other than --coord-steering requires steering to
/// be enabled; steering requires --engine epoll and a leader role. With
/// --model-instances k > 1 each instance's applier owns its own
/// Coordinator (k independent per-class pacing clocks — the clock must
/// live where the commits it measures happen; see docs/SCALING.md).
/// `error` is non-empty when the combination is invalid.
struct CoordFlags {
  bool enabled = false;
  std::string classes_spec;
  coord::DeviceClassTable classes;  ///< parsed table (default when empty)
  double target_utilization = 0.7;
  long long min_hint_ms = 5;
  long long max_hint_ms = 30'000;
  double init_rate = 2000.0;
  std::string error;
};

inline CoordFlags parse_coord_flags(const Flags& flags) {
  CoordFlags c;
  c.enabled = flags.get_bool("coord-steering");
  c.classes_spec = flags.get("coord-classes", "");
  try {
    c.target_utilization =
        flags.get_double("coord-target-utilization", c.target_utilization);
    c.min_hint_ms = flags.get_int("coord-min-hint-ms", c.min_hint_ms);
    c.max_hint_ms = flags.get_int("coord-max-hint-ms", c.max_hint_ms);
    c.init_rate = flags.get_double("coord-init-rate", c.init_rate);
  } catch (const std::exception&) {
    c.error = "malformed numeric value in a --coord-* flag";
    return c;
  }

  if (!c.enabled) {
    if (flags.has("coord-classes") || flags.has("coord-target-utilization") ||
        flags.has("coord-min-hint-ms") || flags.has("coord-max-hint-ms") ||
        flags.has("coord-init-rate")) {
      c.error = "--coord-classes/--coord-target-utilization/"
                "--coord-min-hint-ms/--coord-max-hint-ms/--coord-init-rate "
                "require --coord-steering";
      return c;
    }
    return c;
  }

  if (flags.get("engine", "threads") != "epoll") {
    c.error = "--coord-steering requires --engine epoll (hints ride the "
              "snapshot board and the applier's ack path)";
    return c;
  }
  if (flags.get("role", "leader") == "follower") {
    c.error = "--coord-steering is a leader feature (a follower refuses "
              "checkins, so it has no applier to steer toward)";
    return c;
  }
  if (!(c.target_utilization > 0.0 && c.target_utilization <= 1.0)) {
    c.error = "--coord-target-utilization must be in (0, 1]";
    return c;
  }
  if (c.min_hint_ms < 1) {
    c.error = "--coord-min-hint-ms must be >= 1";
    return c;
  }
  if (c.max_hint_ms < c.min_hint_ms) {
    c.error = "--coord-max-hint-ms must be >= --coord-min-hint-ms";
    return c;
  }
  if (c.max_hint_ms >= 3'600'000) {
    c.error = "--coord-max-hint-ms must be < 3600000 (one hour; the "
              "parseable retry-hint ceiling)";
    return c;
  }
  if (!(c.init_rate > 0.0)) {
    c.error = "--coord-init-rate must be > 0";
    return c;
  }
  if (!c.classes_spec.empty()) {
    std::string perr;
    const auto table = coord::DeviceClassTable::parse(c.classes_spec, &perr);
    if (!table) {
      c.error = "--coord-classes: " + perr;
      return c;
    }
    c.classes = *table;
  }
  return c;
}

/// Secure-aggregation flags, validated as a unit (docs/PRIVACY.md,
/// "Secure aggregation") — shared by crowdml-server and crowdml-device:
///   --secagg-cohort N            (cohort size c >= 2; 0/absent = off)
///   --secagg-min-survivors N     (abort threshold, default 2; in
///                                 [2, cohort])
///   --secagg-round-timeout-ms N  (collect + reveal deadline, default 2000)
///   --secagg-key-file PATH       (hex fleet masking key; devices only —
///                                 the server must NOT be given it)
/// Every other --secagg-* flag requires --secagg-cohort. `error` is
/// non-empty when the combination is invalid.
struct SecAggFlags {
  bool enabled = false;
  long long cohort = 0;
  long long min_survivors = 2;
  long long round_timeout_ms = 2000;
  std::string key_file;
  std::string error;
};

inline SecAggFlags parse_secagg_flags(const Flags& flags) {
  SecAggFlags s;
  try {
    s.cohort = flags.get_int("secagg-cohort", 0);
    s.min_survivors = flags.get_int("secagg-min-survivors", 2);
    s.round_timeout_ms = flags.get_int("secagg-round-timeout-ms", 2000);
  } catch (const std::exception&) {
    s.error = "malformed numeric value in a --secagg-* flag";
    return s;
  }
  s.key_file = flags.get("secagg-key-file", "");
  s.enabled = s.cohort > 0;

  if (!s.enabled) {
    if (flags.has("secagg-min-survivors") ||
        flags.has("secagg-round-timeout-ms") || flags.has("secagg-key-file")) {
      s.error = "--secagg-min-survivors/--secagg-round-timeout-ms/"
                "--secagg-key-file require --secagg-cohort";
      return s;
    }
    return s;
  }

  if (s.cohort < 2) {
    s.error = "--secagg-cohort must be >= 2 (a cohort of one is just LDP)";
    return s;
  }
  if (s.min_survivors < 2 || s.min_survivors > s.cohort) {
    s.error = "--secagg-min-survivors must be in [2, --secagg-cohort] "
              "(below 2 a lone survivor's blob would be unmaskable alone)";
    return s;
  }
  if (s.round_timeout_ms < 1) {
    s.error = "--secagg-round-timeout-ms must be >= 1";
    return s;
  }
  return s;
}

/// Sharded-leader flags for crowdml-server, validated as a unit
/// (docs/SHARDING.md):
///   --shard-map h1:p1,h2:p2,...  (every shard leader's *device* address,
///                                 in shard-id order; the roster every
///                                 node and device must agree on)
///   --shard-id N                 (this server's index into the map)
///   --shards N                   (optional cross-check: must equal the
///                                 map's size — catches a truncated map
///                                 pasted across a fleet)
///   --shard-merge-ms N           (run the MergeDirector in THIS process
///                                 every N ms; 0/absent = no director
///                                 here. Exactly one process per cluster
///                                 should set it — by convention shard 0)
/// Sharding requires --engine epoll, a leader role, --model-instances 1
/// (a shard leader is the plain single-applier stack), and --wal-dir
/// (the merge plane's "acked => durable" rides the WAL). `error` is
/// non-empty when the combination is invalid.
struct ShardFlags {
  bool enabled = false;
  std::size_t shard_id = 0;
  shard::ShardMap map;
  long long merge_ms = 0;
  std::string error;
};

inline ShardFlags parse_shard_flags(const Flags& flags) {
  ShardFlags s;
  const std::string map_spec = flags.get("shard-map", "");
  s.enabled = !map_spec.empty();
  long long merge_ms = 0;
  long long shard_id = 0;
  long long shards = -1;
  try {
    shard_id = flags.get_int("shard-id", 0);
    shards = flags.get_int("shards", -1);
    merge_ms = flags.get_int("shard-merge-ms", 0);
  } catch (const std::exception&) {
    s.error = "malformed numeric value in a --shard-* flag";
    return s;
  }

  if (!s.enabled) {
    if (flags.has("shard-id") || flags.has("shards") ||
        flags.has("shard-merge-ms")) {
      s.error = "--shard-id/--shards/--shard-merge-ms require --shard-map";
    }
    return s;
  }

  const auto map = shard::ShardMap::parse(map_spec);
  if (!map) {
    s.error = "--shard-map must be a comma-separated host:port list, got '" +
              map_spec + "'";
    return s;
  }
  s.map = *map;
  if (shards >= 0 && static_cast<std::size_t>(shards) != s.map.size()) {
    s.error = "--shards disagrees with the --shard-map size (" +
              std::to_string(shards) + " vs " +
              std::to_string(s.map.size()) + "); fix the roster";
    return s;
  }
  if (!flags.has("shard-id")) {
    s.error = "--shard-map requires --shard-id (which entry is this "
              "server?)";
    return s;
  }
  if (shard_id < 0 || static_cast<std::size_t>(shard_id) >= s.map.size()) {
    s.error = "--shard-id " + std::to_string(shard_id) +
              " is out of range for a " + std::to_string(s.map.size()) +
              "-entry --shard-map";
    return s;
  }
  s.shard_id = static_cast<std::size_t>(shard_id);
  if (merge_ms < 0) {
    s.error = "--shard-merge-ms must be >= 0";
    return s;
  }
  s.merge_ms = merge_ms;
  if (flags.get("engine", "threads") != "epoll") {
    s.error = "--shard-map requires --engine epoll (the wrong-shard gate "
              "and merge plane live on its I/O and applier threads)";
    return s;
  }
  if (flags.get("role", "leader") != "leader") {
    s.error = "--shard-map is a leader flag (a shard's followers are "
              "plain followers of that shard's leader and need no map)";
    return s;
  }
  if (flags.get_int("model-instances", 1) != 1) {
    s.error = "--shard-map requires --model-instances 1 (a shard leader "
              "is the single-applier stack; scale out with more shards)";
    return s;
  }
  if (flags.get("wal-dir", "").empty()) {
    s.error = "--shard-map requires --wal-dir (merges are WAL records; "
              "acked => durable must hold across a shard leader crash)";
    return s;
  }
  return s;
}

}  // namespace crowdml::tools
