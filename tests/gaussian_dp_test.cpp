// Tests for the (eps, delta) Gaussian gradient-sanitization path
// (footnote 1) and the L2 sensitivity contracts behind it.
#include <gtest/gtest.h>

#include <cmath>

#include "core/crowd_simulation.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"
#include "rng/distributions.hpp"

using namespace crowdml;

namespace {

models::Sample make_sample(rng::Engine& eng, std::size_t dim,
                           std::size_t classes) {
  linalg::Vector x(dim);
  for (double& v : x) v = rng::normal(eng);
  linalg::l1_normalize(x);
  return models::Sample(std::move(x),
                        static_cast<double>(rng::uniform_index(eng, classes)));
}

}  // namespace

TEST(GaussianBudget, FactoryFields) {
  const auto b = privacy::PrivacyBudget::gaussian(1.0, 1e-5);
  EXPECT_EQ(b.mechanism, privacy::NoiseMechanism::kGaussian);
  EXPECT_DOUBLE_EQ(b.delta, 1e-5);
  EXPECT_DOUBLE_EQ(b.eps_gradient, 1.0);
  EXPECT_TRUE(b.is_private());
}

TEST(GaussianBudget, DefaultIsLaplace) {
  EXPECT_EQ(privacy::PrivacyBudget::gradient_dominated(1.0).mechanism,
            privacy::NoiseMechanism::kLaplace);
}

TEST(ModelL2Sensitivity, LogisticGradientL2Bounded) {
  // Per-sample ||g||_2 <= sqrt(2) for ||x||_1 <= 1; neighbor difference
  // <= 2 sqrt(2) = per_sample_l2_sensitivity().
  rng::Engine eng(1);
  models::MulticlassLogisticRegression m(10, 20, 0.0);
  EXPECT_NEAR(m.per_sample_l2_sensitivity(), 2.0 * std::sqrt(2.0), 1e-12);
  for (int trial = 0; trial < 200; ++trial) {
    linalg::Vector w(m.param_dim());
    for (double& v : w) v = rng::normal(eng) * 3.0;
    linalg::Vector ga(m.param_dim(), 0.0), gb(m.param_dim(), 0.0);
    m.add_loss_gradient(w, make_sample(eng, 20, 10), ga);
    m.add_loss_gradient(w, make_sample(eng, 20, 10), gb);
    EXPECT_LE(linalg::norm2(linalg::sub(ga, gb)),
              m.per_sample_l2_sensitivity() + 1e-9);
  }
}

TEST(ModelL2Sensitivity, DefaultFallsBackToL1) {
  models::BinaryLogisticRegression m(5, 0.0);
  EXPECT_DOUBLE_EQ(m.per_sample_l2_sensitivity(), m.per_sample_l1_sensitivity());
}

TEST(GaussianDevice, AddsGaussianNoise) {
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  core::DeviceConfig cfg;
  cfg.minibatch_size = 2;
  cfg.budget = privacy::PrivacyBudget::gaussian(2.0, 1e-5);
  core::Device noisy(cfg, model, rng::Engine(1));
  core::DeviceConfig clean_cfg;
  clean_cfg.minibatch_size = 2;
  core::Device clean(clean_cfg, model, rng::Engine(1));

  rng::Engine eng(2);
  for (int i = 0; i < 2; ++i) {
    const auto s = make_sample(eng, 4, 3);
    noisy.on_sample(s);
    clean.on_sample(s);
  }
  const linalg::Vector w(model.param_dim(), 0.0);
  noisy.begin_checkout();
  clean.begin_checkout();
  const auto gn = noisy.compute_checkin(w, 0).message.g_hat;
  const auto gc = clean.compute_checkin(w, 0).message.g_hat;
  EXPECT_GT(linalg::norm1(linalg::sub(gn, gc)), 1e-6);
}

TEST(GaussianDevice, NoiseVarianceMatchesAnalyticSigma) {
  models::MulticlassLogisticRegression model(3, 4, 0.0);
  const double eps = 2.0, delta = 1e-5;
  const std::size_t b = 4;
  core::DeviceConfig cfg;
  cfg.minibatch_size = b;
  cfg.budget = privacy::PrivacyBudget::gaussian(eps, delta);
  core::Device dev(cfg, model, rng::Engine(7));
  core::DeviceConfig clean_cfg;
  clean_cfg.minibatch_size = b;
  core::Device clean(clean_cfg, model, rng::Engine(7));

  rng::Engine eng(8);
  const linalg::Vector w(model.param_dim(), 0.0);
  double sumsq = 0.0;
  long long n = 0;
  for (int round = 0; round < 400; ++round) {
    models::SampleSet batch;
    for (std::size_t i = 0; i < b; ++i) batch.push_back(make_sample(eng, 4, 3));
    for (const auto& s : batch) {
      dev.on_sample(s);
      clean.on_sample(s);
    }
    dev.begin_checkout();
    clean.begin_checkout();
    const auto gn = dev.compute_checkin(w, 0).message.g_hat;
    const auto gc = clean.compute_checkin(w, 0).message.g_hat;
    for (std::size_t i = 0; i < gn.size(); ++i) {
      const double z = gn[i] - gc[i];
      sumsq += z * z;
      ++n;
    }
  }
  const double l2_sens = model.per_sample_l2_sensitivity() / static_cast<double>(b);
  const double sigma = l2_sens * std::sqrt(2.0 * std::log(1.25 / delta)) / eps;
  EXPECT_NEAR(sumsq / static_cast<double>(n), sigma * sigma,
              0.08 * sigma * sigma);
}

TEST(GaussianVsLaplace, LaplaceWinsWhenL1SensitivityIsDimensionFree) {
  // For unit-L1-normalized features the multiclass-logistic L1 sensitivity
  // (4/b) does NOT grow with dimension, so at the same eps the Laplace
  // per-coordinate variance is *lower* than the Gaussian mechanism's —
  // pure eps-DP is the better deal for this model family, which is why the
  // paper uses Laplace (Eq. 10) and relegates Gaussian to a footnote.
  const double eps = 1.0, delta = 1e-5;
  const std::size_t b = 10;
  const double laplace_var = privacy::laplace_noise_variance(4.0 / b, eps);
  const double s2 = 2.0 * std::sqrt(2.0) / b;
  const double sigma = s2 * std::sqrt(2.0 * std::log(1.25 / delta)) / eps;
  EXPECT_GT(sigma * sigma, laplace_var);
}

TEST(GaussianVsLaplace, GaussianWinsWhenL1GrowsWithDimension) {
  // The generic high-dimension story: a release whose coordinates each
  // carry sensitivity s has S1 = D*s but S2 = sqrt(D)*s. Total Laplace
  // noise power scales as D^3 s^2 vs Gaussian's ~ D^2 s^2 log(1/delta):
  // past a few dozen dimensions the (eps, delta) mechanism dominates.
  const double eps = 1.0, delta = 1e-5, s = 0.01;
  for (const double d : {100.0, 500.0}) {
    const double laplace_total =
        d * privacy::laplace_noise_variance(d * s, eps);
    const double sigma =
        std::sqrt(d) * s * std::sqrt(2.0 * std::log(1.25 / delta)) / eps;
    const double gaussian_total = d * sigma * sigma;
    EXPECT_GT(laplace_total, gaussian_total);
  }
}

TEST(GaussianCrowd, LearnsComparablyToLaplace) {
  rng::Engine eng(11);
  const data::Dataset ds = data::make_mnist_like(eng, 0.05);
  models::MulticlassLogisticRegression model(10, 50, 0.0);

  auto run = [&](privacy::PrivacyBudget budget) {
    core::CrowdSimConfig cfg;
    cfg.num_devices = 100;
    cfg.minibatch_size = 20;
    cfg.budget = budget;
    cfg.max_total_samples = static_cast<long long>(5 * ds.train.size());
    cfg.eval_points = 4;
    cfg.learning_rate_c = 50.0;
    cfg.projection_radius = 500.0;
    cfg.seed = 23;
    rng::Engine shard_eng(29);
    auto shards = data::shard_across_devices(ds.train, cfg.num_devices, shard_eng);
    core::CrowdSimulation sim(model, cfg);
    return sim.run(core::make_cycling_source(std::move(shards)), ds.test)
        .final_test_error;
  };

  const double laplace_err =
      run(privacy::PrivacyBudget::gradient_dominated(30.0));
  const double gaussian_err = run(privacy::PrivacyBudget::gaussian(30.0, 1e-6));
  // Both mechanisms learn well below chance (0.9); for this model family
  // Laplace is the better mechanism (dimension-free L1 sensitivity — see
  // GaussianVsLaplace above), which the run reproduces.
  EXPECT_LT(gaussian_err, 0.55);
  EXPECT_LT(laplace_err, 0.35);
  EXPECT_LE(laplace_err, gaussian_err + 0.05);
}
