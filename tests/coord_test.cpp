// Coordinator-tier tests (src/coord/): the version-tolerant hint codec,
// device-class tables, the pace-steering policy, hints on the wire
// through the epoll engine, the steering-disabled passthrough guarantee
// (ack/params bytes bit-identical to the pre-coordinator path), the
// device session's no-budget hint handling, and an open-loop load-gen
// smoke run with steering on.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "coord/coordinator.hpp"
#include "coord/device_class.hpp"
#include "coord/load_gen.hpp"
#include "coord/steering.hpp"
#include "core/protocol.hpp"
#include "core/tcp_runtime.hpp"
#include "engine/epoll_server.hpp"
#include "models/logistic_regression.hpp"
#include "net/codec.hpp"
#include "net/messages.hpp"
#include "opt/schedule.hpp"

using namespace crowdml;

namespace {

core::ServerConfig server_config(std::size_t param_dim, std::size_t classes) {
  core::ServerConfig c;
  c.param_dim = param_dim;
  c.num_classes = classes;
  return c;
}

std::unique_ptr<opt::Updater> sgd(double c = 1.0) {
  return std::make_unique<opt::SgdUpdater>(
      std::make_unique<opt::SqrtDecaySchedule>(c), 500.0);
}

/// A well-formed signed checkin for a 4-dim / 2-class server.
net::Bytes signed_checkin_frame(const net::DeviceCredentials& creds,
                                std::uint8_t device_class = 0) {
  net::CheckinMessage m;
  m.device_id = creds.device_id;
  m.param_version = 0;
  m.g_hat = {0.1, -0.2, 0.3, -0.4};
  m.ns = 5;
  m.ne_hat = 1;
  m.ny_hat = {3, 2};
  m.device_class = device_class;
  m.auth_tag = creds.sign(m.body());
  return net::encode_frame(net::MessageType::kCheckin, m.serialize());
}

net::Bytes checkout_frame(const net::DeviceCredentials& creds,
                          std::uint8_t device_class = 0) {
  net::CheckoutRequest req;
  req.device_id = creds.device_id;
  req.device_class = device_class;
  req.auth_tag = creds.sign(req.body());
  return net::encode_frame(net::MessageType::kCheckoutRequest,
                           req.serialize());
}

}  // namespace

// ----------------------------------------------------------- hint codec

TEST(CoordHint, AckHintRoundTrip) {
  net::AckMessage ack;
  ack.ok = true;
  ack.reason = "applied";
  ack.next_checkin_hint_ms = 1234;
  const auto back = net::AckMessage::deserialize(ack.serialize());
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.reason, "applied");
  EXPECT_EQ(back.next_checkin_hint_ms, 1234u);
}

TEST(CoordHint, ParamsHintRoundTrip) {
  net::ParamsMessage p;
  p.version = 7;
  p.w = {1.0, 2.0};
  p.next_checkin_hint_ms = 99;
  const auto back = net::ParamsMessage::deserialize(p.serialize());
  EXPECT_EQ(back.version, 7u);
  EXPECT_EQ(back.w, p.w);
  EXPECT_EQ(back.next_checkin_hint_ms, 99u);
}

// The version-tolerance contract: hint 0 is *omitted*, so a hint-free
// message is byte-identical to the pre-coordinator encoding — which is
// exactly what an old-format payload is. Decoding it yields hint 0.
TEST(CoordHint, HintZeroIsOmittedAndOldFormatDecodes) {
  net::AckMessage ack;
  ack.ok = true;
  ack.reason = "applied";
  const net::Bytes legacy = ack.serialize();
  ack.next_checkin_hint_ms = 50;
  const net::Bytes hinted = ack.serialize();
  EXPECT_EQ(hinted.size(), legacy.size() + sizeof(std::uint32_t));
  // The hinted payload is the legacy payload plus the trailing field.
  EXPECT_TRUE(std::equal(legacy.begin(), legacy.end(), hinted.begin()));
  EXPECT_EQ(net::AckMessage::deserialize(legacy).next_checkin_hint_ms, 0u);

  net::ParamsMessage p;
  p.version = 3;
  p.w = {0.5};
  const net::Bytes plegacy = p.serialize();
  p.next_checkin_hint_ms = 50;
  EXPECT_EQ(p.serialize().size(), plegacy.size() + sizeof(std::uint32_t));
  EXPECT_EQ(net::ParamsMessage::deserialize(plegacy).next_checkin_hint_ms,
            0u);
}

// frame_with_checkin_hint splices the hint into a pre-encoded frame; the
// result must be exactly what re-serializing the decoded message with the
// hint set would have produced.
TEST(CoordHint, FrameSpliceMatchesReserialization) {
  net::AckMessage ack;
  ack.ok = true;
  ack.reason = "applied; durable";
  const net::Bytes frame =
      net::encode_frame(net::MessageType::kAck, ack.serialize());
  ack.next_checkin_hint_ms = 777;
  const net::Bytes expect =
      net::encode_frame(net::MessageType::kAck, ack.serialize());
  EXPECT_EQ(net::frame_with_checkin_hint(frame, 777), expect);

  net::ParamsMessage p;
  p.version = 9;
  p.accepted = true;
  p.w = {1.0, -2.5, 3.25};
  const net::Bytes pframe =
      net::encode_frame(net::MessageType::kParams, p.serialize());
  p.next_checkin_hint_ms = 31;
  const net::Bytes pexpect =
      net::encode_frame(net::MessageType::kParams, p.serialize());
  EXPECT_EQ(net::frame_with_checkin_hint(pframe, 31), pexpect);
}

TEST(CoordHint, FrameSpliceHintZeroReturnsFrameUnchanged) {
  net::AckMessage ack;
  ack.ok = true;
  const net::Bytes frame =
      net::encode_frame(net::MessageType::kAck, ack.serialize());
  EXPECT_EQ(net::frame_with_checkin_hint(frame, 0), frame);
}

TEST(CoordHint, DeviceClassRidesCheckoutAndCheckin) {
  net::CheckoutRequest req;
  req.device_id = 42;
  req.device_class = 3;
  const auto rback = net::CheckoutRequest::deserialize(req.serialize());
  EXPECT_EQ(rback.device_class, 3);

  net::CheckinMessage m;
  m.device_id = 42;
  m.g_hat = {0.0};
  m.ns = 1;
  m.ny_hat = {0, 0};
  m.device_class = 2;
  const auto mback = net::CheckinMessage::deserialize(m.serialize());
  EXPECT_EQ(mback.device_class, 2);

  // Class 0 is never encoded: the default-class frame is byte-identical
  // to the pre-device-class format.
  req.device_class = 0;
  net::CheckoutRequest legacy_req;
  legacy_req.device_id = 42;
  EXPECT_EQ(req.serialize(), legacy_req.serialize());
}

// An explicit 0 class byte is malformed — the body a tag was computed
// over must never be ambiguous between the two encodings.
TEST(CoordHint, ExplicitDefaultClassRejected) {
  net::Writer w;
  w.put_u64(42);                                      // device_id
  w.put_u8(0);                                        // explicit class 0
  for (std::size_t i = 0; i < sizeof(net::Digest); ++i) w.put_u8(0);
  EXPECT_THROW(net::CheckoutRequest::deserialize(w.take()),
               net::CodecError);
}

// ---------------------------------------------------------- class table

TEST(CoordClassTable, DefaultTableHasOnlyDefaultClass) {
  coord::DeviceClassTable t;
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.at(0).name, "default");
  EXPECT_DOUBLE_EQ(t.share(0), 1.0);
  EXPECT_EQ(t.describe(), "default:1");
}

TEST(CoordClassTable, ParseSharesRanksAndClamp) {
  std::string err;
  const auto t = coord::DeviceClassTable::parse("fast:4,slow:2,flaky:1", &err);
  ASSERT_TRUE(t.has_value()) << err;
  ASSERT_EQ(t->size(), 4u);  // + implicit default
  EXPECT_EQ(t->at(1).name, "fast");
  EXPECT_EQ(t->at(3).name, "flaky");
  // Weights normalize over the whole table, default (weight 1) included.
  EXPECT_NEAR(t->share(1), 4.0 / 8.0, 1e-12);
  EXPECT_NEAR(t->share(0), 1.0 / 8.0, 1e-12);
  // First listed = highest priority; default ranks below every declared.
  EXPECT_EQ(t->rank(1), 0u);
  EXPECT_LT(t->rank(3), t->rank(0));
  // Unknown wire ids collapse to default rather than faulting.
  EXPECT_EQ(t->clamp(200), 0);
  EXPECT_EQ(t->at(200).name, "default");
}

TEST(CoordClassTable, ParseRejectsMalformedSpecs) {
  const char* bad[] = {
      "fast",            // no weight
      "fast:",           // empty weight
      "fast:0",          // zero weight
      "fast:-2",         // negative weight
      "fast:abc",        // non-numeric weight
      "fast:nan",        // non-finite weight
      ":3",              // empty name
      "fa st:1",         // bad name chars
      "default:2",       // reserved name
      "a:1,a:2",         // duplicate name
      "a:1,,b:2",        // empty entry
      "a:1,",            // trailing comma
  };
  for (const char* spec : bad) {
    std::string err;
    EXPECT_FALSE(coord::DeviceClassTable::parse(spec, &err).has_value())
        << "accepted: " << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(CoordClassTable, ParseRejectsTooManyClasses) {
  std::string spec;
  for (std::size_t i = 0; i <= coord::kMaxDeviceClasses; ++i) {
    if (!spec.empty()) spec += ',';
    spec += "c" + std::to_string(i) + ":1";
  }
  std::string err;
  EXPECT_FALSE(coord::DeviceClassTable::parse(spec, &err).has_value());
}

// ------------------------------------------------------------- steering

namespace {

coord::SteeringConfig steering_config() {
  coord::SteeringConfig cfg;
  cfg.target_utilization = 1.0;
  cfg.init_rate_per_s = 100.0;  // 10ms pacing interval before measurement
  cfg.min_hint_ms = 1;
  cfg.max_hint_ms = 60'000;
  cfg.queue_max = 100;
  cfg.batch_max = 64;
  return cfg;
}

}  // namespace

TEST(CoordSteering, InitRateGovernsUntilFirstCommit) {
  coord::PaceSteering s(steering_config(), coord::DeviceClassTable());
  EXPECT_DOUBLE_EQ(s.service_rate_per_s(), 0.0);
  EXPECT_NEAR(s.target_rate_per_s(), 100.0, 1e-9);
}

// Capacity is projected from per-record apply cost and per-batch commit
// latency — NOT achieved throughput. A starved batch (1 record) must
// yield the same capacity estimate as a full one with the same costs.
TEST(CoordSteering, CapacityProjectionIgnoresBatchFill) {
  auto cfg = steering_config();
  coord::PaceSteering full(cfg, coord::DeviceClassTable());
  coord::PaceSteering starved(cfg, coord::DeviceClassTable());
  // 1ms/record apply, 10ms commit => 64 / (64*0.001 + 0.010) ~= 864.9/s.
  full.observe_commit(64, 0.064, 0.010);
  starved.observe_commit(1, 0.001, 0.010);
  const double expect = 64.0 / (64.0 * 0.001 + 0.010);
  EXPECT_NEAR(full.service_rate_per_s(), expect, 1.0);
  EXPECT_NEAR(starved.service_rate_per_s(), expect, 1.0);
}

TEST(CoordSteering, ConsumingHintsReserveSpacedSlots) {
  coord::PaceSteering s(steering_config(), coord::DeviceClassTable());
  // 100/s => consecutive slots 10ms apart. The first few hints climb the
  // virtual clock; the Nth is ~N*10ms out (minus elapsed wall time).
  std::uint32_t last = 0;
  for (int i = 0; i < 10; ++i) last = s.next_hint_ms(0);
  EXPECT_GE(last, 50u);   // well past the min clamp: slots accumulated
  EXPECT_LE(last, 200u);  // and nowhere near runaway
}

TEST(CoordSteering, PeekDoesNotConsumeSlots) {
  coord::PaceSteering s(steering_config(), coord::DeviceClassTable());
  const std::uint32_t a = s.peek_hint_ms(0);
  const std::uint32_t b = s.peek_hint_ms(0);
  EXPECT_EQ(a, b);  // advisory: the interval, not a reserved slot
  EXPECT_NEAR(static_cast<double>(a), 10.0, 2.0);
}

TEST(CoordSteering, ClassSharesSplitTheRate) {
  std::string err;
  const auto table = coord::DeviceClassTable::parse("fast:3,slow:1", &err);
  ASSERT_TRUE(table.has_value()) << err;
  coord::PaceSteering s(steering_config(), *table);
  // shares: fast 3/5, slow 1/5 => intervals 1/(100*0.6) vs 1/(100*0.2).
  EXPECT_NEAR(static_cast<double>(s.peek_hint_ms(1)), 1000.0 / 60.0, 3.0);
  EXPECT_NEAR(static_cast<double>(s.peek_hint_ms(2)), 1000.0 / 20.0, 5.0);
}

TEST(CoordSteering, OverloadThrottlesAndStretchesLowPriority) {
  std::string err;
  const auto table = coord::DeviceClassTable::parse("fast:1,slow:1", &err);
  ASSERT_TRUE(table.has_value()) << err;
  auto cfg = steering_config();
  coord::PaceSteering s(cfg, *table);
  EXPECT_DOUBLE_EQ(s.pressure(), 0.0);
  s.observe_depth(cfg.queue_max);  // fill 1.0
  EXPECT_DOUBLE_EQ(s.pressure(), 1.0);
  // Same weight => same share; under pressure the lower-priority class's
  // interval is stretched strictly harder.
  EXPECT_GT(s.peek_hint_ms(2), s.peek_hint_ms(1));
  // And the throttle trims the global rate (mildly — the floor is 0.5).
  EXPECT_NEAR(s.target_rate_per_s(), 100.0 * cfg.throttle_floor, 1e-6);
}

TEST(CoordSteering, SaturatedQueueFloorsHintsAtDrainHorizon) {
  auto cfg = steering_config();
  coord::PaceSteering s(cfg, coord::DeviceClassTable());
  // service ~100/s measured, 100-deep backlog => ~1s to drain.
  s.observe_commit(64, 0.576, 0.064);  // 64/(64*0.009+0.064) ~= 100/s
  s.observe_depth(cfg.queue_max);
  EXPECT_GE(s.next_hint_ms(0), 800u);
}

TEST(CoordSteering, HintsClampToConfiguredBounds) {
  auto cfg = steering_config();
  cfg.min_hint_ms = 20;
  cfg.max_hint_ms = 50;
  coord::PaceSteering s(cfg, coord::DeviceClassTable());
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t h = s.next_hint_ms(0);
    EXPECT_GE(h, 20u);
    EXPECT_LE(h, 50u);
  }
}

// ------------------------------------------------- hints on the wire

TEST(CoordEngine, HintsRideCheckoutAndCheckinFrames) {
  models::MulticlassLogisticRegression model(2, 2, 0.0);
  core::Server server(server_config(model.param_dim(), 2), sgd(),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));

  coord::CoordConfig ccfg;
  ccfg.steering.init_rate_per_s = 50.0;  // 20ms interval: clearly nonzero
  obs::MetricsRegistry reg;
  ccfg.metrics = &reg;
  coord::Coordinator coordinator(ccfg, coord::DeviceClassTable());

  engine::EngineConfig ecfg;
  ecfg.metrics = &reg;
  ecfg.coordinator = &coordinator;
  engine::EpollCrowdServer eng(server, registry, ecfg);

  const auto creds = registry.enroll();
  core::TcpDeviceSession session("127.0.0.1", eng.port());

  const auto params_reply = session.exchange(checkout_frame(creds));
  ASSERT_TRUE(params_reply.has_value());
  const auto params = net::ParamsMessage::deserialize(
      net::decode_frame(*params_reply).payload);
  ASSERT_TRUE(params.accepted);
  EXPECT_GT(params.next_checkin_hint_ms, 0u);

  const auto ack_reply = session.exchange(signed_checkin_frame(creds));
  ASSERT_TRUE(ack_reply.has_value());
  const auto ack =
      net::AckMessage::deserialize(net::decode_frame(*ack_reply).payload);
  ASSERT_TRUE(ack.ok) << ack.reason;
  EXPECT_GT(ack.next_checkin_hint_ms, 0u);

  eng.shutdown();
}

// The passthrough regression: with no coordinator attached, every reply
// byte the engine produces must be bit-identical to what a bare
// ProtocolServer would have answered — a steering-disabled deployment is
// indistinguishable on the wire from the pre-coordinator build.
TEST(CoordEngine, SteeringDisabledRepliesAreByteIdenticalToProtocol) {
  models::MulticlassLogisticRegression model(2, 2, 0.0);
  net::AuthRegistry registry(rng::Engine(2));

  core::Server engine_srv(server_config(model.param_dim(), 2), sgd(),
                          rng::Engine(1));
  core::Server mirror_srv(server_config(model.param_dim(), 2), sgd(),
                          rng::Engine(1));
  core::ProtocolServer mirror(mirror_srv, registry);

  engine::EpollCrowdServer eng(engine_srv, registry, engine::EngineConfig{});
  const auto creds = registry.enroll();
  core::TcpDeviceSession session("127.0.0.1", eng.port());

  // checkout, checkin, checkout again (version moved), one more checkin.
  const net::Bytes requests[] = {
      checkout_frame(creds), signed_checkin_frame(creds),
      checkout_frame(creds), signed_checkin_frame(creds)};
  for (const net::Bytes& req : requests) {
    const auto reply = session.exchange(req);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(*reply, mirror.handle(req));
  }
  EXPECT_EQ(engine_srv.version(), mirror_srv.version());
  EXPECT_EQ(engine_srv.parameters(), mirror_srv.parameters());

  eng.shutdown();
}

// ------------------------------------------------------ device session

// A pace hint on a successful ack is not a failure: the session honors
// it as the delay before the next exchange without consuming retry
// budget or counting a retry_after (shed) event.
TEST(CoordSession, PaceHintConsumesNoRetryBudget) {
  models::MulticlassLogisticRegression model(2, 2, 0.0);
  core::Server server(server_config(model.param_dim(), 2), sgd(),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));

  coord::CoordConfig ccfg;
  ccfg.steering.init_rate_per_s = 1000.0;  // small hints: fast test
  ccfg.steering.min_hint_ms = 1;
  obs::MetricsRegistry reg;
  ccfg.metrics = &reg;
  coord::Coordinator coordinator(ccfg, coord::DeviceClassTable());

  engine::EngineConfig ecfg;
  ecfg.metrics = &reg;
  ecfg.coordinator = &coordinator;
  engine::EpollCrowdServer eng(server, registry, ecfg);

  const auto creds = registry.enroll();
  core::ReconnectPolicy policy;
  policy.io_deadline_ms = 5000;
  core::NetCounters counters;
  core::ReconnectingDeviceSession session("127.0.0.1", eng.port(), policy,
                                          rng::Engine(9), &counters);

  const auto params_reply = session.exchange(checkout_frame(creds));
  ASSERT_TRUE(params_reply.has_value());
  // Params hints are recorded but never slept on (the checkin ack's hint
  // is the binding one) — and they are not "honored" events.
  EXPECT_EQ(session.pace_hints_honored(), 0);
  EXPECT_GT(session.last_pace_hint_ms(), 0);

  const auto ack_reply = session.exchange(signed_checkin_frame(creds));
  ASSERT_TRUE(ack_reply.has_value());
  ASSERT_TRUE(net::AckMessage::deserialize(
                  net::decode_frame(*ack_reply).payload)
                  .ok);
  EXPECT_EQ(session.pace_hints_honored(), 1);
  EXPECT_EQ(counters.pace_hints_honored.value(), 1);

  // The load-shed path stayed untouched: no retries, no backoff events.
  EXPECT_EQ(session.retries(), 0);
  EXPECT_EQ(session.retry_after_honored(), 0);
  EXPECT_EQ(session.timeouts(), 0);
  EXPECT_EQ(counters.retry_after_honored.value(), 0);

  eng.shutdown();
}

// ----------------------------------------------------- open-loop smoke

// The CI smoke for the coordinator: a short open-loop run with steering
// on must end with ~zero shed and hints flowing. Small fleet, seconds of
// wall time — shaped to stay fast under ASan/TSan on one core.
TEST(CoordSmoke, SteeredOpenLoopRunShedsNothing) {
  models::MulticlassLogisticRegression model(8, 2, 0.0);
  core::Server server(server_config(model.param_dim(), 2), sgd(),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(7));

  coord::CoordConfig ccfg;
  ccfg.steering.queue_max = 64;
  ccfg.steering.batch_max = 16;
  ccfg.steering.max_hint_ms = 10'000;
  obs::MetricsRegistry reg;
  ccfg.metrics = &reg;
  coord::Coordinator coordinator(ccfg, coord::DeviceClassTable());

  engine::EngineConfig ecfg;
  ecfg.metrics = &reg;
  ecfg.coordinator = &coordinator;
  ecfg.checkin_queue_max = 64;
  ecfg.checkin_batch_max = 16;
  engine::EpollCrowdServer eng(server, registry, ecfg);

  coord::LoadGenConfig lcfg;
  lcfg.host = "127.0.0.1";
  lcfg.port = eng.port();
  lcfg.devices = 40;
  lcfg.think_mean_s = 0.25;
  lcfg.warmup_s = 0.5;
  lcfg.duration_s = 1.5;
  lcfg.workers = 2;
  lcfg.param_dim = model.param_dim();
  lcfg.num_classes = 2;
  lcfg.session_mean_cycles = 1e9;  // no dropout churn in the smoke
  lcfg.seed = 5;
  const coord::LoadGenStats stats = coord::run_load_gen(lcfg, registry);

  EXPECT_GT(stats.checkins_sent, 0);
  EXPECT_GT(stats.ok_acks, 0);
  EXPECT_GT(stats.hints_seen, 0);
  EXPECT_EQ(stats.rejected, 0);
  // Steady-state shed ~ 0 with steering on.
  EXPECT_LT(stats.shed_rate, 0.01);
  EXPECT_GT(server.version(), 0u);

  eng.shutdown();
}
