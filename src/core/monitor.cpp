#include "core/monitor.hpp"

#include <algorithm>
#include <sstream>
#include <iomanip>

namespace crowdml::core {

NetCounters::NetCounters(obs::MetricsRegistry* registry)
    : owned_(registry ? nullptr : std::make_shared<obs::MetricsRegistry>()),
      registry_(registry ? *registry : *owned_),
      timeouts(registry_.counter(
          "crowdml_net_timeouts_total",
          "Socket operations that hit their deadline",
          obs::Provenance::kTransportEvent)),
      retries(registry_.counter(
          "crowdml_net_retries_total",
          "Exchange attempts beyond the first (reconnect backoff loop)",
          obs::Provenance::kTransportEvent)),
      reconnects(registry_.counter(
          "crowdml_net_reconnects_total",
          "Connections re-established after a drop",
          obs::Provenance::kTransportEvent)),
      checkins_abandoned(registry_.counter(
          "crowdml_net_checkins_abandoned_total",
          "Checkins whose send began but got no ack (never replayed)",
          obs::Provenance::kTransportEvent)),
      accepted_connections(registry_.counter(
          "crowdml_net_accepted_connections_total",
          "Device connections accepted by the server",
          obs::Provenance::kTransportEvent)),
      refused_connections(registry_.counter(
          "crowdml_net_refused_connections_total",
          "Connections refused at the concurrency cap",
          obs::Provenance::kTransportEvent)),
      idle_closed(registry_.counter(
          "crowdml_net_idle_closed_total",
          "Connections closed by the idle-timeout reaper",
          obs::Provenance::kTransportEvent)),
      reaped_workers(registry_.counter(
          "crowdml_net_reaped_workers_total",
          "Finished per-connection worker threads joined",
          obs::Provenance::kTransportEvent)),
      retry_after_honored(registry_.counter(
          "crowdml_net_retry_after_honored_total",
          "Server retry_after hints honored as the next backoff delay",
          obs::Provenance::kTransportEvent)),
      redirects_followed(registry_.counter(
          "crowdml_net_redirects_followed_total",
          "Not-leader nacks followed to the advertised leader",
          obs::Provenance::kTransportEvent)),
      pace_hints_honored(registry_.counter(
          "crowdml_net_pace_hints_honored_total",
          "Pace-steering hints on successful acks honored as the next-"
          "exchange delay (no retry budget consumed)",
          obs::Provenance::kTransportEvent)),
      secagg_fallbacks(registry_.counter(
          "crowdml_net_secagg_fallbacks_total",
          "Secure-aggregation rounds abandoned for the classic per-device "
          "LDP checkin (aborted round or no cohort)",
          obs::Provenance::kTransportEvent)) {}

NetCountersSnapshot NetCounters::snapshot() const {
  NetCountersSnapshot s;
  s.timeouts = timeouts.value();
  s.retries = retries.value();
  s.reconnects = reconnects.value();
  s.checkins_abandoned = checkins_abandoned.value();
  s.accepted_connections = accepted_connections.value();
  s.refused_connections = refused_connections.value();
  s.idle_closed = idle_closed.value();
  s.reaped_workers = reaped_workers.value();
  s.retry_after_honored = retry_after_honored.value();
  s.redirects_followed = redirects_followed.value();
  s.pace_hints_honored = pace_hints_honored.value();
  s.secagg_fallbacks = secagg_fallbacks.value();
  return s;
}

std::string transport_report(const NetCountersSnapshot& net) {
  std::ostringstream out;
  out << "--- transport health ---\n";
  out << "timeouts:               " << net.timeouts << "\n";
  out << "retries:                " << net.retries << "\n";
  out << "reconnects:             " << net.reconnects << "\n";
  out << "checkins abandoned:     " << net.checkins_abandoned << "\n";
  out << "connections accepted:   " << net.accepted_connections << "\n";
  out << "connections refused:    " << net.refused_connections << "\n";
  out << "idle connections closed: " << net.idle_closed << "\n";
  out << "workers reaped:         " << net.reaped_workers << "\n";
  out << "retry hints honored:    " << net.retry_after_honored << "\n";
  out << "redirects followed:     " << net.redirects_followed << "\n";
  out << "pace hints honored:     " << net.pace_hints_honored << "\n";
  out << "secagg fallbacks:       " << net.secagg_fallbacks << "\n";
  return out.str();
}

std::string portal_report(const Server& server) {
  return portal_report(server, MonitorOptions{});
}

std::string portal_report(const Server& server, const MonitorOptions& options,
                          const NetCountersSnapshot& net) {
  return portal_report(server, options) + "\n" + transport_report(net);
}

std::string portal_report(const Server& server, const MonitorOptions& options) {
  std::ostringstream out;
  out << std::fixed;

  out << "=== Crowd-ML portal ===\n";
  out << "iteration t:            " << server.version() << "\n";
  out << "devices seen:           " << server.devices_seen() << "\n";
  out << "samples reported:       " << server.total_samples() << "\n";
  out << "rejected checkins:      " << server.rejected_checkins() << "\n";
  out << std::setprecision(4);
  out << "crowd error estimate:   " << server.estimated_error()
      << "  (Eq. 14, from sanitized counts)\n";

  const linalg::Vector prior = server.estimated_prior();
  out << "label prior estimate:  ";
  for (std::size_t k = 0; k < prior.size(); ++k) {
    out << ' ';
    if (k < options.class_names.size())
      out << options.class_names[k] << '=';
    else
      out << 'c' << k << '=';
    out << std::setprecision(3) << prior[k];
  }
  out << "\n";

  // Per-device table, largest contributors first.
  auto stats = server.all_device_stats();
  std::vector<std::pair<std::uint64_t, DeviceStats>> rows(stats.begin(),
                                                          stats.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.samples > b.second.samples;
  });
  if (rows.size() > options.max_device_rows) rows.resize(options.max_device_rows);

  out << "\n" << std::setw(10) << "device" << std::setw(10) << "samples"
      << std::setw(10) << "checkins" << std::setw(14) << "err estimate\n";
  for (const auto& [id, st] : rows) {
    const double err =
        st.samples > 0
            ? std::clamp(static_cast<double>(st.errors_hat) /
                             static_cast<double>(st.samples),
                         0.0, 1.0)
            : 0.0;
    out << std::setw(10) << id << std::setw(10) << st.samples << std::setw(10)
        << st.checkins << std::setw(13) << std::setprecision(4) << err << "\n";
  }
  if (stats.size() > rows.size())
    out << "  ... and " << stats.size() - rows.size() << " more devices\n";
  return out.str();
}

}  // namespace crowdml::core
