// Non-linear Crowd-ML via random Fourier features.
//
// The paper's framework is linear in w, but "a wide range of learning
// algorithms can be represented by h and l" (Section III-A): mapping the
// features through a data-independent RBF kernel approximation turns the
// same linear machinery — and the same privacy analysis — into a
// non-linear classifier. This example learns a circle-inside-ring decision
// boundary that no linear model can express, with differential privacy.
#include <cmath>
#include <cstdio>

#include "core/crowd_simulation.hpp"
#include "data/fourier_features.hpp"
#include "models/logistic_regression.hpp"
#include "rng/distributions.hpp"

using namespace crowdml;

namespace {

models::SampleSet make_rings(rng::Engine& eng, std::size_t n) {
  models::SampleSet out;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = rng::uniform(eng, 0.0, 6.2831853);
    const bool ring = i % 2 == 0;
    const double radius =
        ring ? rng::uniform(eng, 1.6, 2.2) : rng::uniform(eng, 0.0, 0.9);
    out.emplace_back(
        linalg::Vector{radius * std::cos(angle), radius * std::sin(angle)},
        ring ? 1.0 : 0.0);
  }
  return out;
}

double crowd_error(const models::Model& model, const models::SampleSet& train,
                   const models::SampleSet& test) {
  core::CrowdSimConfig cfg;
  cfg.num_devices = 40;
  cfg.minibatch_size = 5;
  cfg.budget = privacy::PrivacyBudget::gradient_dominated(20.0);
  cfg.max_total_samples = static_cast<long long>(6 * train.size());
  cfg.eval_points = 6;
  cfg.learning_rate_c = 100.0;
  cfg.projection_radius = 500.0;
  cfg.seed = 5;
  rng::Engine shard_eng(6);
  auto shards = data::shard_across_devices(train, cfg.num_devices, shard_eng);
  core::CrowdSimulation sim(model, cfg);
  return sim.run(core::make_cycling_source(std::move(shards)), test)
      .final_test_error;
}

}  // namespace

int main() {
  rng::Engine eng(2024);
  models::SampleSet train = make_rings(eng, 4000);
  models::SampleSet test = make_rings(eng, 1000);

  // Raw 2-d coordinates: linearly inseparable.
  models::MulticlassLogisticRegression linear(2, 2, 0.0);
  const double linear_err = crowd_error(linear, train, test);

  // Kernelized: 200 random Fourier features of an RBF kernel.
  data::RandomFourierFeatures rff;
  rff.fit(eng, 2, 200, 1.0);
  rff.transform(train);
  rff.transform(test);
  models::MulticlassLogisticRegression kernelized(2, 200, 0.0);
  const double rff_err = crowd_error(kernelized, train, test);

  std::printf("circle-vs-ring, 40 devices, eps ~ 20:\n");
  std::printf("  linear model on raw (x, y):        test error %.3f\n",
              linear_err);
  std::printf("  same model on 200 Fourier features: test error %.3f\n",
              rff_err);
  std::printf("the privacy mechanism is untouched: the feature map is\n"
              "data-independent and re-normalized to ||z||_1 <= 1.\n");
  return rff_err < 0.15 && linear_err > 0.3 ? 0 : 1;
}
