#include "replica/log_shipper.hpp"

#include <chrono>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "net/messages.hpp"

namespace crowdml::replica {

namespace {

obs::MetricsRegistry& registry_of(const ShipperOptions& opts) {
  return opts.metrics ? *opts.metrics : obs::default_registry();
}

}  // namespace

std::size_t quorum_follower_acks_for(std::size_t followers) {
  return (followers + 1) / 2;
}

LogShipper::LogShipper(core::Server& server, store::DurableStore& store,
                       std::uint64_t epoch, ShipperOptions options)
    : server_(server),
      store_(store),
      epoch_(epoch),
      opts_(options),
      lag_records_(registry_of(opts_).gauge(
          "crowdml_repl_lag_records",
          "WAL records the laggiest connected follower is behind the "
          "leader's committed tail (0 when no follower is connected)",
          obs::Provenance::kTransportEvent)),
      ship_seconds_(registry_of(opts_).histogram(
          "crowdml_repl_ship_seconds",
          "One replication batch: send + follower durable-append + ack",
          obs::Provenance::kTiming)),
      records_shipped_(registry_of(opts_).counter(
          "crowdml_repl_records_shipped_total",
          "WAL records streamed to followers (counted per session)",
          obs::Provenance::kTransportEvent)),
      snapshots_shipped_(registry_of(opts_).counter(
          "crowdml_repl_snapshots_shipped_total",
          "Full-state snapshots shipped because compaction outran a "
          "follower's cursor",
          obs::Provenance::kTransportEvent)),
      fenced_hellos_(registry_of(opts_).counter(
          "crowdml_repl_fenced_hellos_total",
          "Replication frames refused because the peer held a newer epoch",
          obs::Provenance::kTransportEvent)),
      quorum_timeouts_(registry_of(opts_).counter(
          "crowdml_repl_quorum_timeouts_total",
          "Checkin batches nacked because the follower quorum did not ack "
          "in time",
          obs::Provenance::kTransportEvent)),
      followers_connected_(registry_of(opts_).counter(
          "crowdml_repl_followers_connected_total",
          "Follower replication sessions accepted",
          obs::Provenance::kTransportEvent)),
      heartbeats_sent_(registry_of(opts_).counter(
          "crowdml_repl_heartbeats_sent_total",
          "Lease heartbeats sent to follower sessions",
          obs::Provenance::kTransportEvent)),
      auth_failed_(registry_of(opts_).counter(
          "crowdml_repl_auth_failed_total",
          "Replication-plane frames dropped for a missing or invalid "
          "HMAC tag",
          obs::Provenance::kTransportEvent)) {
  auto listener = net::TcpListener::bind(opts_.bind_address, opts_.port);
  if (!listener)
    throw std::runtime_error("cannot bind replication port " +
                             opts_.bind_address + ":" +
                             std::to_string(opts_.port));
  listener_ = std::move(*listener);
  port_ = listener_.port();
  watermark_ = store_.wal().last_seq();
  acceptor_ = std::thread([this] { accept_loop(); });
}

LogShipper::~LogShipper() { shutdown(); }

void LogShipper::notify_committed() {
  {
    std::lock_guard<std::mutex> lock(watermark_mu_);
    watermark_ = store_.wal().last_seq();
  }
  watermark_cv_.notify_all();
}

bool LogShipper::await_quorum(std::uint64_t seq) {
  if (opts_.ack_mode != ReplAckMode::kQuorum) return true;
  if (fenced_.load() || stopping_.load()) return false;
  const bool ok = tracker_.await(
      seq, opts_.quorum_follower_acks, opts_.quorum_timeout_ms,
      [this] { return fenced_.load() || stopping_.load(); });
  if (!ok && !fenced_.load() && !stopping_.load()) ++quorum_timeouts_;
  return ok;
}

void LogShipper::fence(std::uint64_t observed_epoch) {
  fenced_.store(true);
  ++fenced_hellos_;
  if (opts_.trace)
    opts_.trace->event("repl_fenced", {{"epoch", epoch_},
                                       {"observed_epoch", observed_epoch}});
  tracker_.wake();
  watermark_cv_.notify_all();
}

void LogShipper::accept_loop() {
  while (!stopping_.load()) {
    auto conn = listener_.accept();
    if (!conn) break;  // listener closed
    conn->set_deadline_ms(opts_.io_deadline_ms);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (stopping_.load()) break;
    const std::uint64_t id = next_session_id_++;
    session_threads_.emplace_back(
        [this, id, c = std::move(*conn)]() mutable {
          session_loop(id, std::move(c));
        });
  }
}

bool LogShipper::ship_snapshot_chunks(net::TcpConnection& conn,
                                      std::uint64_t session_id,
                                      std::uint64_t version,
                                      const net::Bytes& blob,
                                      std::uint64_t offset, bool want_ack,
                                      bool* fenced_session,
                                      const std::function<bool()>& heartbeat) {
  const auto total = static_cast<std::uint64_t>(blob.size());
  const std::size_t chunk_max = std::max<std::size_t>(
      1, std::min(opts_.snapshot_chunk_bytes,
                  static_cast<std::size_t>(net::kMaxFieldLength / 2)));
  const auto throttle_start = std::chrono::steady_clock::now();
  std::uint64_t throttled_bytes = 0;
  std::uint64_t off = offset;
  do {
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk_max, total - off));
    net::ReplSnapshotMessage snap;
    snap.epoch = epoch_;
    snap.want_ack = want_ack;
    snap.version = version;
    snap.total_bytes = total;
    snap.offset = off;
    snap.checkpoint.assign(blob.begin() + static_cast<std::ptrdiff_t>(off),
                           blob.begin() + static_cast<std::ptrdiff_t>(off + n));
    if (!conn.send_frame(net::encode_frame(
            net::MessageType::kReplSnapshot,
            seal_repl_payload(opts_.key, net::MessageType::kReplSnapshot,
                              snap.serialize()))))
      return false;
    off += n;
    if (want_ack) {
      auto ack_frame = conn.recv_frame();
      if (!ack_frame) return false;
      try {
        const net::Frame f = net::decode_frame(*ack_frame);
        if (f.type != net::MessageType::kReplAck) return false;
        const auto body =
            open_repl_payload(opts_.key, net::MessageType::kReplAck, f.payload);
        if (!body) {
          ++auth_failed_;
          if (opts_.trace)
            opts_.trace->event("repl_auth_failed", {{"where", "snapshot_ack"}});
          return false;
        }
        const auto ack = net::ReplAckMessage::deserialize(*body);
        if (ack.epoch > epoch_) {
          fence(ack.epoch);
          if (fenced_session) *fenced_session = true;
          return false;
        }
        tracker_.ack(session_id, ack.durable_seq);
      } catch (const net::CodecError&) {
        return false;
      }
    }
    // A heartbeat between chunks bounds the inter-frame gap to the
    // heartbeat interval regardless of how slow the throttle runs —
    // otherwise a long transfer reads as leader death and the receiver
    // abandons it for a doomed election.
    if (!heartbeat()) return false;
    // Rate limit: never run ahead of max_bytes_per_sec averaged over the
    // transfer, sleeping in slices so shutdown stays responsive.
    if (opts_.snapshot_max_bytes_per_sec > 0 && off < total) {
      throttled_bytes += n;
      const double due_s = static_cast<double>(throttled_bytes) /
                           static_cast<double>(opts_.snapshot_max_bytes_per_sec);
      for (;;) {
        if (stopping_.load()) return false;
        if (!heartbeat()) return false;
        const double elapsed_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          throttle_start)
                .count();
        if (elapsed_s >= due_s) break;
        const double wait_s = std::min(0.02, due_s - elapsed_s);
        std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
      }
    }
    if (stopping_.load()) return false;
  } while (off < total);
  return true;
}

void LogShipper::session_loop(std::uint64_t session_id,
                              net::TcpConnection conn) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    live_conns_[session_id] = &conn;
  }
  const bool want_ack = opts_.ack_mode != ReplAckMode::kNone;
  bool joined = false;
  std::uint64_t follower_id = 0;

  // Heartbeats grant the lease followers' failure detectors watch. One
  // goes out right after the hello (the lease starts with the session),
  // then at least every heartbeat_interval_ms.
  auto last_heartbeat = std::chrono::steady_clock::time_point::min();
  const auto maybe_heartbeat = [&]() -> bool {
    // A fenced leader grants no leases: its heartbeats would suppress
    // the very elections that replace it.
    if (fenced_.load()) return false;
    if (opts_.heartbeat_interval_ms <= 0) return true;
    const auto now = std::chrono::steady_clock::now();
    if (last_heartbeat != std::chrono::steady_clock::time_point::min() &&
        now - last_heartbeat <
            std::chrono::milliseconds(opts_.heartbeat_interval_ms))
      return true;
    net::ReplHeartbeatMessage hb;
    hb.epoch = epoch_;
    {
      std::lock_guard<std::mutex> lock(watermark_mu_);
      hb.committed_seq = watermark_;
    }
    hb.lease_ms = opts_.lease_ms != 0
                      ? opts_.lease_ms
                      : static_cast<std::uint32_t>(
                            3 * opts_.heartbeat_interval_ms);
    {
      std::lock_guard<std::mutex> lock(advertise_mu_);
      hb.leader_addr = opts_.advertise_leader_addr;
    }
    if (!conn.send_frame(net::encode_frame(
            net::MessageType::kReplHeartbeat,
            seal_repl_payload(opts_.key, net::MessageType::kReplHeartbeat,
                              hb.serialize()))))
      return false;
    ++heartbeats_sent_;
    last_heartbeat = now;
    return true;
  };

  // A follower that refused one of our frames as stale replies with an
  // unsolicited ReplAck carrying its (higher) promised epoch before
  // hanging up — the step-down signal. Every solicited ack is consumed
  // synchronously, so anything found by this short poll is that signal
  // (or a harmless duplicate). True = nothing pending, session fine;
  // false = session over (fenced, peer gone, or garbage).
  const auto drain_acks = [&](int deadline_ms) -> bool {
    conn.set_deadline_ms(deadline_ms);
    bool ok = false;
    for (;;) {
      auto frame = conn.recv_frame();
      if (!frame) {
        ok = conn.last_error() == net::NetError::kTimeout;
        break;
      }
      try {
        const net::Frame f = net::decode_frame(*frame);
        if (f.type != net::MessageType::kReplAck) break;
        const auto body =
            open_repl_payload(opts_.key, net::MessageType::kReplAck, f.payload);
        if (!body) {
          ++auth_failed_;
          if (opts_.trace)
            opts_.trace->event("repl_auth_failed", {{"where", "ack_drain"}});
          break;
        }
        const auto ack = net::ReplAckMessage::deserialize(*body);
        if (ack.epoch > epoch_) {
          fence(ack.epoch);
          break;
        }
        tracker_.ack(session_id, ack.durable_seq);
      } catch (const net::CodecError&) {
        break;
      }
    }
    conn.set_deadline_ms(opts_.io_deadline_ms);
    return ok;
  };

  // One follower session: hello, then stream batches (or a chunked
  // snapshot when compaction pruned the follower's resume point) until
  // disconnect, with heartbeats interleaved throughout.
  do {
    auto hello_frame = conn.recv_frame();
    if (!hello_frame) break;
    net::ReplHelloMessage hello;
    try {
      const net::Frame f = net::decode_frame(*hello_frame);
      if (f.type != net::MessageType::kReplHello) break;
      const auto body =
          open_repl_payload(opts_.key, net::MessageType::kReplHello, f.payload);
      if (!body) {
        // Dropped, NOT fenced: without the key this hello proves
        // nothing about epochs.
        ++auth_failed_;
        if (opts_.trace)
          opts_.trace->event("repl_auth_failed", {{"where", "hello"}});
        break;
      }
      hello = net::ReplHelloMessage::deserialize(*body);
    } catch (const net::CodecError&) {
      break;
    }
    if (hello.epoch > epoch_) {
      fence(hello.epoch);
      break;
    }
    // Multimodel: a follower replicating a different pool instance is a
    // wiring error (ports crossed); drop it before any record crosses
    // streams. Not a fencing event — the epochs may be perfectly valid.
    if (hello.instance_id != opts_.instance_id) {
      if (opts_.trace)
        opts_.trace->event("repl_instance_mismatch",
                           {{"follower_id", hello.follower_id},
                            {"hello_instance", hello.instance_id},
                            {"shipper_instance", opts_.instance_id}});
      break;
    }
    follower_id = hello.follower_id;
    ++followers_connected_;
    tracker_.join(session_id);
    joined = true;
    // The follower already durably holds everything through its hello
    // position, so it counts toward quorums immediately.
    tracker_.ack(session_id, hello.last_seq);
    if (opts_.trace)
      opts_.trace->event("repl_follower_connected",
                         {{"follower_id", follower_id},
                          {"last_seq", hello.last_seq},
                          {"epoch", hello.epoch}});

    std::uint64_t cursor = hello.last_seq;
    bool alive = true;
    if (!maybe_heartbeat()) break;

    // Resume a chunked snapshot the follower held partially from a
    // previous connection — but only when the cache still has that exact
    // serialization (offsets into a different serialization of the same
    // version would corrupt the reassembly).
    if (hello.snapshot_version != 0) {
      std::shared_ptr<const net::Bytes> blob;
      {
        std::lock_guard<std::mutex> lock(snap_cache_mu_);
        if (snap_cache_ && snap_cache_version_ == hello.snapshot_version &&
            hello.snapshot_offset < snap_cache_->size())
          blob = snap_cache_;
      }
      if (blob && hello.snapshot_version > cursor) {
        bool fenced_session = false;
        if (opts_.trace)
          opts_.trace->event("repl_snapshot_resumed",
                             {{"follower_id", follower_id},
                              {"version", hello.snapshot_version},
                              {"offset", hello.snapshot_offset}});
        if (!ship_snapshot_chunks(conn, session_id, hello.snapshot_version,
                                  *blob, hello.snapshot_offset, want_ack,
                                  &fenced_session, maybe_heartbeat))
          break;
        ++snapshots_shipped_;
        cursor = hello.snapshot_version;
      }
    }

    while (alive && !stopping_.load() && !fenced_.load()) {
      if (!maybe_heartbeat()) break;
      std::uint64_t watermark;
      {
        std::lock_guard<std::mutex> lock(watermark_mu_);
        watermark = watermark_;
      }
      const ShipBatch batch =
          next_ship_batch(store_.dir(), cursor, watermark,
                          opts_.batch_max_records, opts_.batch_max_bytes);

      if (batch.gap) {
        // Compaction already pruned cursor+1: ship the full state in
        // bounded chunks and resume streaming above the snapshot's
        // version. The snapshot may run ahead of the committed watermark
        // (records applied in memory but still pending durability ride
        // along); that is the nacked-but-durable-on-the-follower
        // direction, which breaks no promise.
        const core::ServerCheckpoint cp = core::checkpoint_server(server_);
        auto blob = std::make_shared<const net::Bytes>(cp.serialize());
        {
          std::lock_guard<std::mutex> lock(snap_cache_mu_);
          snap_cache_version_ = cp.version;
          snap_cache_ = blob;
        }
        bool fenced_session = false;
        if (!ship_snapshot_chunks(conn, session_id, cp.version, *blob, 0,
                                  want_ack, &fenced_session,
                                  maybe_heartbeat)) {
          if (fenced_session) alive = false;
          break;
        }
        ++snapshots_shipped_;
        if (opts_.trace)
          opts_.trace->event("repl_snapshot_shipped",
                             {{"follower_id", follower_id},
                              {"version", cp.version},
                              {"bytes", blob->size()}});
        cursor = cp.version;
      } else if (batch.records.empty()) {
        // Caught up: first a short socket poll for the refusal ack a
        // deposed leader would otherwise never read (nothing solicited
        // is in flight here), then sleep until the next commit (or
        // shutdown/fencing), waking often enough that heartbeats never
        // miss their interval.
        if (!drain_acks(1)) break;
        std::unique_lock<std::mutex> lock(watermark_mu_);
        watermark_cv_.wait_for(lock, std::chrono::milliseconds(20), [&] {
          return stopping_.load() || watermark_ > cursor;
        });
        continue;
      } else {
        const auto started = std::chrono::steady_clock::now();
        net::ReplAppendMessage append;
        append.epoch = epoch_;
        append.want_ack = want_ack;
        append.instance_id = opts_.instance_id;
        append.records.reserve(batch.records.size());
        for (const auto& rec : batch.records)
          append.records.push_back({rec.seq, rec.payload});
        if (!conn.send_frame(net::encode_frame(
                net::MessageType::kReplAppend,
                seal_repl_payload(opts_.key, net::MessageType::kReplAppend,
                                  append.serialize()))))
          break;
        cursor = batch.records.back().seq;
        records_shipped_ += static_cast<long long>(batch.records.size());
        if (want_ack) {
          auto ack_frame = conn.recv_frame();
          if (!ack_frame) break;
          try {
            const net::Frame f = net::decode_frame(*ack_frame);
            if (f.type != net::MessageType::kReplAck) break;
            const auto body = open_repl_payload(
                opts_.key, net::MessageType::kReplAck, f.payload);
            if (!body) {
              ++auth_failed_;
              if (opts_.trace)
                opts_.trace->event("repl_auth_failed", {{"where", "ack"}});
              break;
            }
            const auto ack = net::ReplAckMessage::deserialize(*body);
            if (ack.epoch > epoch_) {
              fence(ack.epoch);
              alive = false;
              break;
            }
            tracker_.ack(session_id, ack.durable_seq);
          } catch (const net::CodecError&) {
            break;
          }
          ship_seconds_.observe(
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            started)
                  .count());
        } else {
          // kNone: record the shipped position so lag is still reported;
          // this is *not* a durability claim and kNone never gates acks.
          tracker_.ack(session_id, cursor);
        }
      }

      // Lag = committed tail minus the laggiest live follower.
      std::uint64_t tail;
      {
        std::lock_guard<std::mutex> lock(watermark_mu_);
        tail = watermark_;
      }
      const std::uint64_t floor = tracker_.min_acked();
      lag_records_.set(tail > floor ? static_cast<double>(tail - floor) : 0.0);
    }
    // The session usually ends because a send failed — and a follower
    // that refused us hangs up right after its refusal ack, so that ack
    // may still be sitting in the receive buffer. Read it out; without
    // this a deposed leader under continuous traffic reconnects forever
    // instead of stepping down.
    if (alive && !stopping_.load() && !fenced_.load()) drain_acks(50);
  } while (false);

  if (joined) {
    tracker_.leave(session_id);
    if (tracker_.sessions() == 0) lag_records_.set(0.0);
    if (opts_.trace)
      opts_.trace->event("repl_follower_disconnected",
                         {{"follower_id", follower_id}});
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    live_conns_.erase(session_id);
  }
}

void LogShipper::set_advertise_leader_addr(const std::string& addr) {
  std::lock_guard<std::mutex> lock(advertise_mu_);
  opts_.advertise_leader_addr = addr;
}

void LogShipper::shutdown() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [_, conn] : live_conns_) conn->shutdown_both();
  }
  watermark_cv_.notify_all();
  tracker_.wake();
  for (auto& t : session_threads_)
    if (t.joinable()) t.join();
  session_threads_.clear();
}

}  // namespace crowdml::replica
