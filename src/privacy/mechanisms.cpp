#include "privacy/mechanisms.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "rng/distributions.hpp"

namespace crowdml::privacy {

linalg::Vector sanitize_vector(rng::Engine& eng, const linalg::Vector& v,
                               double l1_sensitivity, double epsilon) {
  assert(l1_sensitivity >= 0.0 && epsilon > 0.0);
  linalg::Vector out = v;
  if (std::isinf(epsilon) || l1_sensitivity == 0.0) return out;
  const double scale = l1_sensitivity / epsilon;
  for (double& c : out) c += rng::laplace(eng, scale);
  return out;
}

long long sanitize_count(rng::Engine& eng, long long n, double epsilon) {
  assert(epsilon > 0.0);
  if (std::isinf(epsilon)) return n;
  return n + rng::discrete_laplace(eng, epsilon / 2.0);
}

int perturb_label(rng::Engine& eng, int y, std::size_t num_classes,
                  double epsilon) {
  assert(y >= 0 && static_cast<std::size_t>(y) < num_classes);
  assert(epsilon > 0.0);
  if (std::isinf(epsilon)) return y;
  // P(y^ = y) ∝ e^{eps/2}; P(y^ = other) ∝ 1.
  std::vector<double> weights(num_classes, 1.0);
  weights[static_cast<std::size_t>(y)] = std::exp(epsilon / 2.0);
  return static_cast<int>(rng::categorical(eng, weights));
}

linalg::Vector perturb_features(rng::Engine& eng, const linalg::Vector& x,
                                double epsilon) {
  // Identity release of a vector with ||x||_1 <= 1 has sensitivity 2
  // (Theorem 3), hence scale 2/epsilon per coordinate.
  return sanitize_vector(eng, x, 2.0, epsilon);
}

linalg::Vector sanitize_vector_gaussian(rng::Engine& eng, const linalg::Vector& v,
                                        double l2_sensitivity, double epsilon,
                                        double delta) {
  assert(l2_sensitivity >= 0.0 && epsilon > 0.0);
  linalg::Vector out = v;
  if (std::isinf(epsilon) || l2_sensitivity == 0.0) return out;
  assert(delta > 0.0 && delta < 1.0);
  const double sigma =
      l2_sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
  for (double& c : out) c += rng::normal(eng, 0.0, sigma);
  return out;
}

double laplace_noise_variance(double l1_sensitivity, double epsilon) {
  if (std::isinf(epsilon) || l1_sensitivity == 0.0) return 0.0;
  const double scale = l1_sensitivity / epsilon;
  return 2.0 * scale * scale;
}

double cohort_scaled_epsilon(double epsilon, std::size_t min_survivors) {
  if (std::isinf(epsilon)) return epsilon;
  if (min_survivors < 1) min_survivors = 1;
  return epsilon * std::sqrt(static_cast<double>(min_survivors));
}

}  // namespace crowdml::privacy
