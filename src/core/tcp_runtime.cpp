#include "core/tcp_runtime.hpp"

#include <stdexcept>

namespace crowdml::core {

TcpCrowdServer::TcpCrowdServer(Server& server, net::AuthRegistry& auth,
                               std::uint16_t port)
    : protocol_(server, auth) {
  auto listener = net::TcpListener::bind(port);
  if (!listener) throw std::runtime_error("TcpCrowdServer: bind failed");
  listener_ = std::move(*listener);
  port_ = listener_.port();
  acceptor_ = std::thread([this] { accept_loop(); });
}

TcpCrowdServer::~TcpCrowdServer() { shutdown(); }

void TcpCrowdServer::accept_loop() {
  while (!stopping_.load()) {
    auto conn = listener_.accept();
    if (!conn) break;  // listener closed
    auto c = std::make_shared<net::TcpConnection>(std::move(*conn));
    std::lock_guard lock(workers_mu_);
    if (stopping_.load()) break;
    connections_.push_back(c);
    workers_.emplace_back([this, c] {
      while (!stopping_.load()) {
        auto frame = c->recv_frame();
        if (!frame) break;  // EOF / error
        const net::Bytes response = protocol_.handle(*frame);
        if (!c->send_frame(response)) break;
      }
    });
  }
}

void TcpCrowdServer::shutdown() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> workers;
  std::vector<std::shared_ptr<net::TcpConnection>> connections;
  {
    std::lock_guard lock(workers_mu_);
    workers = std::move(workers_);
    connections = std::move(connections_);
  }
  // Unblock workers parked in recv_frame, then join.
  for (auto& c : connections) c->shutdown_both();
  for (auto& w : workers)
    if (w.joinable()) w.join();
}

TcpDeviceSession::TcpDeviceSession(const std::string& host, std::uint16_t port) {
  auto conn = net::TcpConnection::connect(host, port);
  if (!conn) throw std::runtime_error("TcpDeviceSession: connect failed");
  conn_ = std::move(*conn);
}

std::optional<net::Bytes> TcpDeviceSession::exchange(const net::Bytes& request) {
  if (!conn_.send_frame(request)) return std::nullopt;
  return conn_.recv_frame();
}

DeviceClient::Exchange TcpDeviceSession::as_exchange() {
  return [this](const net::Bytes& req) { return exchange(req); };
}

}  // namespace crowdml::core
