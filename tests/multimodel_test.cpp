// Draw-and-discard multi-model pool tests: k=1 bit-parity with the
// single-applier engine path (state, WAL bytes, cross-recovery),
// per-instance crash-recovery determinism (recovered pool byte-equal to
// a never-crashed witness, overwrite replay included), seeded draw /
// route / discard distribution sanity, and follower pool reconstruction
// byte-for-byte over per-instance replication streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "coord/coordinator.hpp"
#include "core/protocol.hpp"
#include "core/server.hpp"
#include "multimodel/instance_pool.hpp"
#include "multimodel/pool_replication.hpp"
#include "net/auth.hpp"
#include "opt/schedule.hpp"
#include "store/durable_store.hpp"

using namespace crowdml;

namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "crowdml_mm_XXXXXX")
            .string();
    if (!mkdtemp(tmpl.data())) throw std::runtime_error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

constexpr std::size_t kDim = 8;
constexpr std::size_t kClasses = 2;

core::ServerConfig server_config() {
  core::ServerConfig c;
  c.param_dim = kDim;
  c.num_classes = kClasses;
  return c;
}

std::unique_ptr<opt::Updater> sgd() {
  return std::make_unique<opt::SgdUpdater>(
      std::make_unique<opt::SqrtDecaySchedule>(10.0), 500.0);
}

/// Per-instance server factory all pools in this file share: identical
/// config, identical updater, rng split by instance — two pools built
/// from it are byte-comparable instance by instance.
multimodel::ModelInstancePool::ServerFactory factory() {
  return [](std::size_t i) {
    return std::make_unique<core::Server>(server_config(), sgd(),
                                          rng::Engine(7).split(i));
  };
}

/// A signed checkin frame from an enrolled device; deterministic given
/// the rng stream.
net::Bytes make_checkin(const net::DeviceCredentials& creds,
                        rng::Engine& eng) {
  net::CheckinMessage m;
  m.device_id = creds.device_id;
  m.g_hat.reserve(kDim);
  for (std::size_t i = 0; i < kDim; ++i)
    m.g_hat.push_back(static_cast<double>(eng() % 2001) / 1000.0 - 1.0);
  m.ns = 10;
  m.ne_hat = static_cast<std::int64_t>(eng() % 3);
  for (std::size_t i = 0; i < kClasses; ++i)
    m.ny_hat.push_back(static_cast<std::int64_t>(eng() % 5));
  m.auth_tag = creds.sign(m.body());
  return net::encode_frame(net::MessageType::kCheckin, m.serialize());
}

bool is_ok_ack(const net::Bytes& response) {
  try {
    const net::Frame f = net::decode_frame(response);
    return f.type == net::MessageType::kAck &&
           net::AckMessage::deserialize(f.payload).ok;
  } catch (const net::CodecError&) {
    return false;
  }
}

/// Route every frame into the pool and wait until all are answered.
/// Returns the number of ok acks.
int feed_checkins(multimodel::ModelInstancePool& pool,
                  const std::vector<net::Bytes>& frames) {
  std::atomic<int> answered{0};
  std::atomic<int> ok{0};
  for (const net::Bytes& frame : frames) {
    engine::CheckinWork work;
    work.frame = frame;
    work.complete = [&](net::Bytes&& response) {
      if (is_ok_ack(response)) ok.fetch_add(1);
      answered.fetch_add(1);
    };
    // The bounded queue only sheds under real overload; tests feed well
    // under the bound, so a failed push is a bug worth failing loudly.
    EXPECT_TRUE(pool.route_checkin(std::move(work)));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (answered.load() < static_cast<int>(frames.size()) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(answered.load(), static_cast<int>(frames.size()));
  return ok.load();
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

std::vector<char> slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

/// All WAL segments in `dir`, sorted by name.
std::vector<std::filesystem::path> wal_segments(const std::string& dir) {
  std::vector<std::filesystem::path> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

// ------------------------------------------------------- k=1 bit parity

TEST(MultiModel, KOneBitIdenticalToSingleApplierPath) {
  TempDir pool_dir, witness_dir;
  net::AuthRegistry auth(rng::Engine(2));

  // One set of signed frames feeds both paths.
  std::vector<net::Bytes> frames;
  rng::Engine eng(42);
  for (int i = 0; i < 40; ++i) frames.push_back(make_checkin(auth.enroll(), eng));

  // Witness: the PR 4 engine path — one server, one attached store, the
  // protocol dispatcher applying in order.
  core::Server witness(server_config(), sgd(), rng::Engine(7).split(0));
  {
    store::DurableStore wstore(witness_dir.path, {});
    wstore.recover(witness);
    wstore.attach(witness);
    core::ProtocolServer protocol(witness, auth, nullptr);
    for (const net::Bytes& frame : frames)
      ASSERT_TRUE(is_ok_ack(protocol.handle(frame)));
    wstore.sync();
  }

  // Pool with k = 1 over the same frames.
  multimodel::PoolOptions popts;
  popts.instances = 1;
  popts.wal_dir = pool_dir.path;
  {
    multimodel::ModelInstancePool pool(auth, factory(), popts);
    pool.start();
    EXPECT_EQ(feed_checkins(pool, frames), 40);
    pool.shutdown();

    EXPECT_EQ(pool.server(0).version(), witness.version());
    EXPECT_EQ(pool.server(0).parameters(), witness.parameters());
    // k = 1 never draws a non-self discard victim, so no overwrite is
    // ever enqueued or logged.
    EXPECT_EQ(pool.overwrites_applied(), 0);
  }

  // The WAL namespace is the base directory itself (instance_dir with
  // k = 1), and its bytes are identical to the single-applier WAL.
  EXPECT_EQ(store::DurableStore::instance_dir(pool_dir.path, 0, 1),
            pool_dir.path);
  const auto pool_segs = wal_segments(pool_dir.path);
  const auto witness_segs = wal_segments(witness_dir.path);
  ASSERT_FALSE(pool_segs.empty());
  ASSERT_EQ(pool_segs.size(), witness_segs.size());
  for (std::size_t i = 0; i < pool_segs.size(); ++i) {
    EXPECT_EQ(pool_segs[i].filename(), witness_segs[i].filename());
    EXPECT_EQ(slurp(pool_segs[i]), slurp(witness_segs[i]))
        << "segment " << pool_segs[i].filename();
  }

  // Cross-recovery: a plain single-model store (no opaque handler)
  // recovers the pool's k = 1 directory byte-for-byte.
  core::Server recovered(server_config(), sgd(), rng::Engine(7).split(0));
  store::DurableStore rstore(pool_dir.path, {});
  rstore.recover(recovered);
  EXPECT_EQ(recovered.version(), witness.version());
  EXPECT_EQ(recovered.parameters(), witness.parameters());
}

// ------------------------------------------- per-instance recovery

TEST(MultiModel, RecoveryBitReproduciblePerInstance) {
  TempDir dir;
  net::AuthRegistry auth(rng::Engine(2));
  std::vector<net::Bytes> frames;
  rng::Engine eng(43);
  for (int i = 0; i < 60; ++i) frames.push_back(make_checkin(auth.enroll(), eng));

  multimodel::PoolOptions popts;
  popts.instances = 3;
  popts.seed = 9;
  popts.wal_dir = dir.path;

  std::vector<std::uint64_t> versions;
  std::vector<linalg::Vector> params;
  long long overwrites = 0;
  {
    multimodel::ModelInstancePool pool(auth, factory(), popts);
    pool.start();
    EXPECT_EQ(feed_checkins(pool, frames), 60);
    pool.shutdown();
    overwrites = pool.overwrites_applied();
    for (std::size_t i = 0; i < 3; ++i) {
      versions.push_back(pool.server(i).version());
      params.push_back(pool.server(i).parameters());
    }
  }
  // With 3 instances and 60 updates, cross-instance discards are all but
  // certain — the recovery below replays overwrite records, not just
  // checkins.
  EXPECT_GT(overwrites, 0);

  // A second pool over the same directory replays each instance's WAL
  // (checkins and overwrites, in apply order) to byte-equal state.
  multimodel::ModelInstancePool recovered(auth, factory(), popts);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(recovered.server(i).version(), versions[i]) << "instance " << i;
    EXPECT_EQ(recovered.server(i).parameters(), params[i])
        << "instance " << i;
  }
}

// ------------------------------------------------ draw distributions

TEST(InstancePool, DrawRouteAndDiscardRoughlyUniform) {
  net::AuthRegistry auth(rng::Engine(2));
  multimodel::PoolOptions popts;
  popts.instances = 4;
  popts.seed = 1234;
  multimodel::ModelInstancePool pool(auth, factory(), popts);
  pool.start();

  // Checkout draws: 4000 over 4 instances, mean 1000, sd ~27. A 700-1300
  // band is >10 sigma — flake-proof, but a stuck or biased stream fails.
  for (int i = 0; i < 4000; ++i) pool.draw_snapshot();
  for (long long c : pool.draw_counts()) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }

  // Checkin routing + discard victim draws: 400 applied updates, mean
  // 100 per instance, sd ~9; the discard stream draws exactly one victim
  // per applied update.
  std::vector<net::Bytes> frames;
  rng::Engine eng(44);
  for (int i = 0; i < 400; ++i) frames.push_back(make_checkin(auth.enroll(), eng));
  EXPECT_EQ(feed_checkins(pool, frames), 400);
  pool.shutdown();

  long long route_total = 0, discard_total = 0;
  for (long long c : pool.route_counts()) {
    route_total += c;
    EXPECT_GT(c, 55);
    EXPECT_LT(c, 145);
  }
  for (long long c : pool.discard_counts()) {
    discard_total += c;
    EXPECT_GT(c, 55);
    EXPECT_LT(c, 145);
  }
  EXPECT_EQ(route_total, 400);
  EXPECT_EQ(discard_total, 400);
}

TEST(InstancePool, DrawStreamDeterministicGivenSeed) {
  net::AuthRegistry auth(rng::Engine(2));
  multimodel::PoolOptions popts;
  popts.instances = 4;
  popts.seed = 77;

  std::vector<long long> first;
  for (int round = 0; round < 2; ++round) {
    multimodel::ModelInstancePool pool(auth, factory(), popts);
    for (int i = 0; i < 1000; ++i) pool.draw_snapshot();
    if (round == 0)
      first = pool.draw_counts();
    else
      EXPECT_EQ(pool.draw_counts(), first);
  }
}

// ---------------------------------------- per-instance pace steering

TEST(InstancePool, PerInstanceCoordinatorsStampCheckinHints) {
  net::AuthRegistry auth(rng::Engine(2));
  multimodel::PoolOptions popts;
  popts.instances = 3;
  popts.seed = 9;
  popts.coordinator_factory = [](std::size_t) {
    return std::make_unique<coord::Coordinator>(coord::CoordConfig{},
                                                coord::DeviceClassTable{});
  };
  multimodel::ModelInstancePool pool(auth, factory(), popts);
  for (std::size_t i = 0; i < pool.instances(); ++i)
    ASSERT_NE(pool.coordinator(i), nullptr);
  pool.start();

  // Each applier stamps its own clock's consuming hint on the acks it
  // produced — every ok ack must carry next_checkin_hint_ms > 0.
  constexpr int kFrames = 30;
  std::vector<net::Bytes> responses(kFrames);
  std::atomic<int> answered{0};
  rng::Engine eng(91);
  for (int i = 0; i < kFrames; ++i) {
    engine::CheckinWork work;
    work.frame = make_checkin(auth.enroll(), eng);
    work.complete = [&responses, &answered, i](net::Bytes&& response) {
      responses[static_cast<std::size_t>(i)] = std::move(response);
      answered.fetch_add(1);
    };
    ASSERT_TRUE(pool.route_checkin(std::move(work)));
  }
  ASSERT_TRUE(wait_until([&] { return answered.load() == kFrames; }));
  pool.shutdown();

  for (const net::Bytes& response : responses) {
    const net::Frame f = net::decode_frame(response);
    ASSERT_EQ(f.type, net::MessageType::kAck);
    const net::AckMessage ack = net::AckMessage::deserialize(f.payload);
    EXPECT_TRUE(ack.ok) << ack.reason;
    EXPECT_GT(ack.next_checkin_hint_ms, 0u);
  }
}

TEST(InstancePool, NoCoordinatorFactoryLeavesAckBytesHintFree) {
  net::AuthRegistry auth(rng::Engine(2));
  multimodel::PoolOptions popts;
  popts.instances = 3;
  popts.seed = 9;
  multimodel::ModelInstancePool pool(auth, factory(), popts);
  for (std::size_t i = 0; i < pool.instances(); ++i)
    EXPECT_EQ(pool.coordinator(i), nullptr);
  pool.start();

  std::vector<net::Bytes> responses(10);
  std::atomic<int> answered{0};
  rng::Engine eng(91);
  for (int i = 0; i < 10; ++i) {
    engine::CheckinWork work;
    work.frame = make_checkin(auth.enroll(), eng);
    work.complete = [&responses, &answered, i](net::Bytes&& response) {
      responses[static_cast<std::size_t>(i)] = std::move(response);
      answered.fetch_add(1);
    };
    ASSERT_TRUE(pool.route_checkin(std::move(work)));
  }
  ASSERT_TRUE(wait_until([&] { return answered.load() == 10; }));
  pool.shutdown();

  // Steering off must not perturb the wire: the ack payload ends at the
  // error string and the optional hint field decodes as absent.
  for (const net::Bytes& response : responses) {
    const net::Frame f = net::decode_frame(response);
    ASSERT_EQ(f.type, net::MessageType::kAck);
    const net::AckMessage ack = net::AckMessage::deserialize(f.payload);
    EXPECT_TRUE(ack.ok) << ack.reason;
    EXPECT_EQ(ack.next_checkin_hint_ms, 0u);
    EXPECT_EQ(response,
              net::encode_frame(net::MessageType::kAck, ack.serialize()));
  }
}

// ------------------------------------------- follower reconstruction

TEST(InstancePoolRepl, FollowerPoolReconstructsByteForByte) {
  TempDir leader_dir, follower_dir;
  net::AuthRegistry auth(rng::Engine(2));
  std::vector<net::Bytes> frames;
  rng::Engine eng(45);
  for (int i = 0; i < 40; ++i) frames.push_back(make_checkin(auth.enroll(), eng));

  multimodel::PoolOptions popts;
  popts.instances = 2;
  popts.seed = 5;
  popts.wal_dir = leader_dir.path;
  multimodel::ModelInstancePool pool(auth, factory(), popts);

  replica::ShipperOptions base;
  base.port = 0;  // every stream on its own ephemeral port
  multimodel::PoolShipperSet shippers(pool, /*epoch=*/1, base);
  pool.start();

  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < shippers.size(); ++i)
    ports.push_back(shippers.port(i));
  multimodel::PoolFollowerSet followers(factory(), 2, follower_dir.path,
                                        "127.0.0.1", ports,
                                        replica::FollowerOptions{});
  followers.start();

  EXPECT_EQ(feed_checkins(pool, frames), 40);

  // Every instance's stream converges independently; wait for each
  // follower to reach its leader instance's version.
  ASSERT_TRUE(wait_until([&] {
    for (std::size_t i = 0; i < 2; ++i)
      if (followers.follower(i).applied_seq() < pool.server(i).version())
        return false;
    return true;
  })) << "followers did not catch up";
  EXPECT_FALSE(followers.fatal());

  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(followers.server(i).version(), pool.server(i).version())
        << "instance " << i;
    EXPECT_EQ(followers.server(i).parameters(), pool.server(i).parameters())
        << "instance " << i;
  }

  followers.shutdown();
  shippers.shutdown();
  pool.shutdown();
}
