// Calibration guards: the synthetic stand-ins must keep the operating
// points the figures depend on (batch logistic regression ~0.10 on the
// MNIST-like data, ~0.30 on the CIFAR-like data — Figs. 4 and 7).
//
// These run on 10%-scale datasets; the full-scale errors are slightly
// lower (more training data), which EXPERIMENTS.md records.
#include <gtest/gtest.h>

#include "baselines/central_batch.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"

using namespace crowdml;

namespace {

double batch_error(const data::Dataset& ds, std::size_t pca_dim) {
  models::MulticlassLogisticRegression model(10, pca_dim, 0.0);
  baselines::BatchTrainerConfig cfg;
  cfg.iterations = 400;
  cfg.learning_rate = 200.0;
  cfg.momentum = 0.95;
  cfg.projection_radius = 500.0;
  return baselines::train_central_batch(model, ds.train, ds.test, cfg)
      .final_test_error;
}

}  // namespace

TEST(MixtureCalibration, MnistLikeBatchErrorNearPoint1) {
  rng::Engine eng(42);
  const data::Dataset ds = data::make_mnist_like(eng, 0.1);
  const double err = batch_error(ds, 50);
  EXPECT_GT(err, 0.05);
  EXPECT_LT(err, 0.15);
}

TEST(MixtureCalibration, CifarLikeBatchErrorNearPoint3) {
  rng::Engine eng(42);
  const data::Dataset ds = data::make_cifar_like(eng, 0.1);
  const double err = batch_error(ds, 100);
  EXPECT_GT(err, 0.22);
  EXPECT_LT(err, 0.38);
}

TEST(MixtureCalibration, CifarHarderThanMnist) {
  rng::Engine e1(42), e2(42);
  const data::Dataset mnist = data::make_mnist_like(e1, 0.05);
  const data::Dataset cifar = data::make_cifar_like(e2, 0.05);
  EXPECT_GT(batch_error(cifar, 100), batch_error(mnist, 50) + 0.1);
}
