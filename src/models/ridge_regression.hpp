// Ridge (L2-regularized squared-loss) regression — the "predictor" side of
// Crowd-ML's classifier/predictor framing (Section III-A mentions
// regression explicitly).
//
//   prediction: w' x
//   loss:       0.5 * (w' x - y)^2
//   gradient:   x * (w' x - y)
//
// The squared-loss residual is unbounded, so a truthful differential-
// privacy sensitivity needs clipping: the residual is clamped to
// [-residual_bound, +residual_bound] inside loss/gradient (a Huber-style
// transition), giving per-sample L1 sensitivity 2 * residual_bound for
// ||x||_1 <= 1. This is the standard fix for DP-SGD on unbounded losses.
#pragma once

#include "models/model.hpp"

namespace crowdml::models {

class RidgeRegression final : public Model {
 public:
  RidgeRegression(std::size_t dim, double lambda = 0.0, double residual_bound = 1.0);

  std::size_t feature_dim() const override { return dim_; }
  std::size_t num_classes() const override { return 1; }
  std::size_t param_dim() const override { return dim_; }
  bool is_classifier() const override { return false; }

  double predict(const linalg::Vector& w, const linalg::Vector& x) const override;
  double loss(const linalg::Vector& w, const Sample& s) const override;
  void add_loss_gradient(const linalg::Vector& w, const Sample& s,
                         linalg::Vector& g) const override;
  double per_sample_l1_sensitivity() const override { return 2.0 * residual_bound_; }

  double residual_bound() const { return residual_bound_; }

 private:
  double clipped_residual(const linalg::Vector& w, const Sample& s) const;

  std::size_t dim_;
  double residual_bound_;
};

}  // namespace crowdml::models
