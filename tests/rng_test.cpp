// Tests for the seedable engine and the distribution samplers the privacy
// mechanisms depend on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/engine.hpp"

using crowdml::rng::Engine;
namespace rng = crowdml::rng;

TEST(Engine, SameSeedSameSequence) {
  Engine a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Engine, DifferentSeedsDiffer) {
  Engine a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Engine, SplitStreamsAreDeterministicAndDistinct) {
  Engine parent1(7), parent2(7);
  Engine c1 = parent1.split(42);
  Engine c2 = parent2.split(42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1(), c2());

  Engine parent3(7);
  Engine d1 = parent3.split(1);
  Engine d2 = parent3.split(1);  // parent advanced: different stream
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (d1() == d2()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Engine, SplitSaltSeparatesStreams) {
  Engine p1(9), p2(9);
  Engine a = p1.split(100);
  Engine b = p2.split(200);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Uniform, WithinBounds) {
  Engine eng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng::uniform(eng, -2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Uniform, MeanNearMidpoint) {
  Engine eng(6);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng::uniform(eng, 0.0, 10.0);
  EXPECT_NEAR(acc / n, 5.0, 0.05);
}

TEST(UniformIndex, CoversAllValues) {
  Engine eng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng::uniform_index(eng, 7));
  EXPECT_EQ(seen.size(), 7u);
  for (auto v : seen) EXPECT_LT(v, 7u);
}

TEST(UniformIndex, SingleValue) {
  Engine eng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng::uniform_index(eng, 1), 0u);
}

TEST(Normal, MomentsMatch) {
  Engine eng(9);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng::normal(eng, 2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.03);
  EXPECT_NEAR(var, 9.0, 0.15);
}

TEST(Exponential, MeanMatchesRate) {
  Engine eng(10);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng::exponential(eng, 0.5);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.03);
}

TEST(Laplace, ZeroScaleIsExactlyZero) {
  Engine eng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng::laplace(eng, 0.0), 0.0);
}

// Property over scales: Laplace(b) has mean 0 and variance 2 b^2.
class LaplaceMoments : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceMoments, MeanZeroVarianceTwoBSquared) {
  const double b = GetParam();
  Engine eng(static_cast<std::uint64_t>(b * 1000) + 1);
  const int n = 300000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng::laplace(eng, b);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02 * b + 1e-9);
  EXPECT_NEAR(var, 2.0 * b * b, 0.1 * b * b + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplaceMoments,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0));

// Discrete Laplace with parameter alpha has variance 2p/(1-p)^2, p=e^-alpha
// (Inusah & Kozubowski), and is symmetric about 0.
class DiscreteLaplaceMoments : public ::testing::TestWithParam<double> {};

TEST_P(DiscreteLaplaceMoments, SymmetricWithKnownVariance) {
  const double alpha = GetParam();
  Engine eng(static_cast<std::uint64_t>(alpha * 997) + 3);
  const int n = 300000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = static_cast<double>(rng::discrete_laplace(eng, alpha));
    sum += z;
    sumsq += z * z;
  }
  const double p = std::exp(-alpha);
  const double expected_var = 2.0 * p / ((1.0 - p) * (1.0 - p));
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05 * std::sqrt(expected_var) + 0.01);
  EXPECT_NEAR(var, expected_var, 0.1 * expected_var + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Alphas, DiscreteLaplaceMoments,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

TEST(DiscreteLaplace, InfiniteAlphaIsZero) {
  Engine eng(13);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(rng::discrete_laplace(eng, INFINITY), 0);
}

TEST(Categorical, ProportionsMatchWeights) {
  Engine eng(14);
  const std::vector<double> w{1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng::categorical(eng, w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(Categorical, ZeroWeightNeverChosen) {
  Engine eng(15);
  const std::vector<double> w{0.0, 1.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng::categorical(eng, w), 1u);
}

TEST(ShuffledIndices, IsPermutation) {
  Engine eng(16);
  const auto idx = rng::shuffled_indices(eng, 100);
  std::set<std::size_t> seen(idx.begin(), idx.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(ShuffledIndices, ActuallyShuffles) {
  Engine eng(17);
  const auto idx = rng::shuffled_indices(eng, 100);
  int in_place = 0;
  for (std::size_t i = 0; i < idx.size(); ++i)
    if (idx[i] == i) ++in_place;
  EXPECT_LT(in_place, 10);  // expected ~1 fixed point
}

TEST(ShuffledIndices, EmptyAndSingle) {
  Engine eng(18);
  EXPECT_TRUE(rng::shuffled_indices(eng, 0).empty());
  const auto one = rng::shuffled_indices(eng, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}
