// Tests for the Section III-C attack model and the Section IV-B3
// staleness accounting inside the crowd simulation.
#include <gtest/gtest.h>

#include "core/crowd_simulation.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"

using namespace crowdml;
using core::AttackKind;
using core::CrowdSimConfig;
using core::CrowdSimulation;

namespace {

struct Problem {
  data::Dataset ds;
  models::MulticlassLogisticRegression model{4, 10, 0.0};

  Problem() {
    rng::Engine eng(4321);
    data::MixtureSpec spec;
    spec.num_classes = 4;
    spec.raw_dim = 40;
    spec.latent_dim = 15;
    spec.pca_dim = 10;
    spec.separation = 3.5;
    spec.train_size = 2000;
    spec.test_size = 400;
    ds = data::generate_mixture(spec, eng);
  }

  core::SampleSource source(std::size_t devices, std::uint64_t seed) const {
    rng::Engine eng(seed);
    return core::make_cycling_source(
        data::shard_across_devices(ds.train, devices, eng));
  }
};

CrowdSimConfig base_config() {
  CrowdSimConfig cfg;
  cfg.num_devices = 50;
  cfg.max_total_samples = 6000;
  cfg.eval_points = 4;
  cfg.learning_rate_c = 50.0;
  cfg.projection_radius = 500.0;
  cfg.seed = 11;
  return cfg;
}

}  // namespace

TEST(Staleness, ZeroDelayMeansNoStaleness) {
  Problem p;
  CrowdSimConfig cfg = base_config();
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  // With zero delay the checkout->checkin chain is atomic in sim time, but
  // simultaneous events (same tick) may interleave; staleness stays tiny.
  EXPECT_LT(res.mean_staleness, 1.0);
}

TEST(Staleness, GrowsWithDelay) {
  Problem p;
  CrowdSimConfig small = base_config();
  small.poisson_sampling = true;
  small.delay = std::make_shared<sim::UniformDelay>(0.1);
  CrowdSimConfig large = small;
  large.delay = std::make_shared<sim::UniformDelay>(2.0);

  CrowdSimulation sim_small(p.model, small);
  CrowdSimulation sim_large(p.model, large);
  const auto rs = sim_small.run(p.source(small.num_devices, 1), p.ds.test);
  const auto rl = sim_large.run(p.source(large.num_devices, 1), p.ds.test);
  EXPECT_GT(rl.mean_staleness, 3.0 * rs.mean_staleness);
  EXPECT_GE(rl.max_staleness, rl.mean_staleness);
}

TEST(Staleness, RoughlyMatchesSectionIVB3Formula) {
  // tau * M * Fs / b with Poisson (desynchronized) sampling.
  Problem p;
  CrowdSimConfig cfg = base_config();
  cfg.num_devices = 50;
  cfg.minibatch_size = 2;
  cfg.poisson_sampling = true;
  cfg.max_total_samples = 12000;
  const double tau = 1.0;  // E[tau_co + tau_ci] = tau = 1 s
  cfg.delay = std::make_shared<sim::UniformDelay>(tau);
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  const double predicted = tau * 50.0 * 1.0 / 2.0;  // = 25 updates
  EXPECT_GT(res.mean_staleness, predicted / 2.5);
  EXPECT_LT(res.mean_staleness, predicted * 2.0);
}

TEST(Staleness, DeterministicSamplingBurstsCheckins) {
  // The synchronized-fill effect: with deterministic intervals and b > 1,
  // staleness is far above tau*M*Fs/b because every device's minibatch
  // fills inside the same sampling window.
  Problem p;
  CrowdSimConfig det = base_config();
  det.minibatch_size = 10;
  det.max_total_samples = 12000;
  det.delay = std::make_shared<sim::UniformDelay>(0.5);
  CrowdSimConfig poisson = det;
  poisson.poisson_sampling = true;

  CrowdSimulation sim_det(p.model, det);
  CrowdSimulation sim_poi(p.model, poisson);
  const auto rd = sim_det.run(p.source(det.num_devices, 1), p.ds.test);
  const auto rp = sim_poi.run(p.source(poisson.num_devices, 1), p.ds.test);
  EXPECT_GT(rd.mean_staleness, 2.0 * rp.mean_staleness);
}

TEST(PoissonSampling, StillLearns) {
  Problem p;
  CrowdSimConfig cfg = base_config();
  cfg.poisson_sampling = true;
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  EXPECT_EQ(res.samples_generated, cfg.max_total_samples);
  EXPECT_LT(res.final_test_error, 0.12);
}

TEST(Attacks, NoAttackersMatchesCleanRun) {
  Problem p;
  CrowdSimConfig clean = base_config();
  CrowdSimConfig zero_frac = base_config();
  zero_frac.attack = AttackKind::kRandomNoise;
  zero_frac.malicious_fraction = 0.0;
  CrowdSimulation a(p.model, clean);
  CrowdSimulation b(p.model, zero_frac);
  const auto ra = a.run(p.source(clean.num_devices, 1), p.ds.test);
  const auto rb = b.run(p.source(clean.num_devices, 1), p.ds.test);
  EXPECT_DOUBLE_EQ(ra.final_test_error, rb.final_test_error);
}

TEST(Attacks, NoiseInjectionDegradesAccuracy) {
  Problem p;
  CrowdSimConfig clean = base_config();
  CrowdSimConfig attacked = base_config();
  attacked.attack = AttackKind::kRandomNoise;
  attacked.malicious_fraction = 0.2;
  attacked.attack_magnitude = 2.0;
  CrowdSimulation a(p.model, clean);
  CrowdSimulation b(p.model, attacked);
  const double clean_err =
      a.run(p.source(clean.num_devices, 1), p.ds.test).final_test_error;
  const double attacked_err =
      b.run(p.source(attacked.num_devices, 1), p.ds.test).final_test_error;
  EXPECT_GT(attacked_err, clean_err + 0.1);
}

TEST(Attacks, SignFlipWithFullCrowdPreventsLearning) {
  Problem p;
  CrowdSimConfig cfg = base_config();
  cfg.attack = AttackKind::kSignFlip;
  cfg.malicious_fraction = 1.0;
  cfg.attack_magnitude = 1.0;  // exact gradient ascent
  CrowdSimulation sim(p.model, cfg);
  const auto res = sim.run(p.source(cfg.num_devices, 1), p.ds.test);
  EXPECT_GT(res.final_test_error, 0.5);
}

TEST(Attacks, AdaGradMoreRobustThanSgd) {
  // Remark 3's robustness claim, averaged over three seeds (a single run
  // can tie at this small scale; the mean gap is stable — see
  // bench/ablation_attacks for the full sweep).
  Problem p;
  auto run = [&](core::UpdaterKind u, double c, std::uint64_t seed) {
    CrowdSimConfig cfg = base_config();
    cfg.updater = u;
    cfg.learning_rate_c = c;
    cfg.attack = AttackKind::kRandomNoise;
    cfg.malicious_fraction = 0.25;
    cfg.attack_magnitude = 5.0;
    cfg.max_total_samples = 8000;
    cfg.seed = seed;
    CrowdSimulation sim(p.model, cfg);
    return sim.run(p.source(cfg.num_devices, seed), p.ds.test)
        .final_test_error;
  };
  double sgd_err = 0.0, ada_err = 0.0;
  for (std::uint64_t seed : {11, 12, 13}) {
    sgd_err += run(core::UpdaterKind::kSgd, 50.0, seed);
    ada_err += run(core::UpdaterKind::kAdaGrad, 1.0, seed);
  }
  EXPECT_LT(ada_err + 0.1, sgd_err);  // sums over 3 seeds
}

TEST(Attacks, DeterministicGivenSeed) {
  Problem p;
  CrowdSimConfig cfg = base_config();
  cfg.attack = AttackKind::kLargeGradient;
  cfg.malicious_fraction = 0.1;
  CrowdSimulation a(p.model, cfg);
  CrowdSimulation b(p.model, cfg);
  EXPECT_DOUBLE_EQ(
      a.run(p.source(cfg.num_devices, 1), p.ds.test).final_test_error,
      b.run(p.source(cfg.num_devices, 1), p.ds.test).final_test_error);
}
