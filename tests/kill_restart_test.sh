#!/bin/sh
# Crash-recovery integration test: SIGKILL crowdml-server mid-run, restart
# it on the same port with the same --wal-dir, and assert that
#   (a) the restarted server recovers past iteration 0 from snapshot + WAL,
#   (b) devices ride out the outage via ReconnectingDeviceSession,
#   (c) training resumes and advances past the pre-crash iteration.
# The whole scenario runs once per serving engine: the legacy
# thread-per-connection runtime, and the epoll engine whose group commit
# must uphold the same acked => durable contract under --fsync always.
# Run by ctest with the build directory as argument.
set -eu
BUILD_DIR="$1"
WORK=$(mktemp -d)
SERVER_PID=""
trap 'kill -9 $SERVER_PID 2>/dev/null || true; rm -rf "$WORK"' EXIT
cd "$WORK"

"$BUILD_DIR/tools/crowdml-make-dataset" --kind mnist --scale 0.05 --shards 2 \
    --shard-prefix dev_ --seed 42

run_scenario() {
  ENGINE="$1"
  FSYNC="$2"
  EXTRA="$3"
  DIR="run_$ENGINE"
  mkdir "$DIR"
  cd "$DIR"

  start_server() {
    # --auth-seed is fixed, so re-enrollment after the crash regenerates
    # the exact same device keys the devices are already holding.
    # shellcheck disable=SC2086
    "$BUILD_DIR/tools/crowdml-server" --port "$1" --classes 10 --dim 50 \
        --enroll 2 --keys-out "$2" --auth-seed 7 \
        --engine "$ENGINE" $EXTRA \
        --wal-dir wal --fsync "$FSYNC" --report-every 0.3 \
        --max-iterations 100000 >> "$3" 2>&1 &
    SERVER_PID=$!
  }

  start_server 0 keys.csv server1.log

  PORT=""
  for i in $(seq 1 50); do
    PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' server1.log)
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "[$ENGINE] server did not start"; cat server1.log; exit 1; }
  grep -q "^config: engine=$ENGINE " server1.log || {
    echo "[$ENGINE] missing effective-config line"; cat server1.log; exit 1; }

  # Devices with a generous retry budget: they must survive the restart
  # window (capped exponential backoff, checkins abandoned, never replayed).
  KEY1=$(sed -n 1p keys.csv)
  KEY2=$(sed -n 2p keys.csv)
  run_device() {
    "$BUILD_DIR/tools/crowdml-device" --host 127.0.0.1 --port "$PORT" \
        --data "../$1" --key "$2" --minibatch 10 --epsilon 50 --passes 20 \
        --classes 10 --max-attempts 60 --backoff-max-ms 500 \
        --connect-timeout-ms 1000 > "$3" 2>&1 &
  }
  run_device dev_0.csv "$KEY1" dev1.log
  DEV1=$!
  run_device dev_1.csv "$KEY2" dev2.log
  DEV2=$!

  # Let training get going, then pull the plug without ceremony.
  PRE=0
  for i in $(seq 1 100); do
    PRE=$(sed -n 's/^iteration t: *\([0-9]*\).*/\1/p' server1.log | tail -1)
    [ -n "$PRE" ] && [ "$PRE" -ge 20 ] && break
    PRE=0
    sleep 0.1
  done
  [ "$PRE" -ge 20 ] || { echo "[$ENGINE] training never took off"; cat server1.log; exit 1; }
  kill -9 $SERVER_PID
  wait $SERVER_PID 2>/dev/null || true

  start_server "$PORT" keys2.csv server2.log

  RECOVERED=""
  for i in $(seq 1 50); do
    RECOVERED=$(sed -n 's/^recovered state: iteration \([0-9]*\).*/\1/p' server2.log)
    [ -n "$RECOVERED" ] && break
    sleep 0.1
  done
  [ -n "$RECOVERED" ] || { echo "[$ENGINE] no recovery line"; cat server2.log; exit 1; }
  cmp -s keys.csv keys2.csv || { echo "[$ENGINE] re-enrolled keys differ"; exit 1; }

  # The WAL must have carried training at least to the last report we saw
  # — with --fsync always this is exactly "no acked checkin lost".
  [ "$RECOVERED" -ge "$PRE" ] || {
    echo "[$ENGINE] recovered iteration $RECOVERED behind last report $PRE"
    cat server2.log; exit 1; }

  wait $DEV1 || { echo "[$ENGINE] device 1 failed"; cat dev1.log; exit 1; }
  wait $DEV2 || { echo "[$ENGINE] device 2 failed"; cat dev2.log; exit 1; }
  cat dev1.log dev2.log

  # At least one device had to reconnect across the crash window.
  RECONNECTS=$(sed -n 's/^transport: \([0-9]*\) reconnects.*/\1/p' dev1.log dev2.log |
      awk '{s+=$1} END {print s+0}')
  [ "$RECONNECTS" -ge 1 ] || { echo "[$ENGINE] no device ever reconnected"; exit 1; }

  # Training resumed: the restarted server moved past the recovered state.
  kill -TERM $SERVER_PID
  wait $SERVER_PID 2>/dev/null || true
  FINAL=$(sed -n 's/^iteration t: *\([0-9]*\).*/\1/p' server2.log | tail -1)
  [ -n "$FINAL" ] && [ "$FINAL" -gt "$RECOVERED" ] || {
    echo "[$ENGINE] training did not resume (recovered $RECOVERED, final ${FINAL:-none})"
    cat server2.log; exit 1; }
  grep -q "durable state compacted" server2.log || {
    echo "[$ENGINE] no final compaction"; cat server2.log; exit 1; }
  ls wal/snapshot-*.bin >/dev/null 2>&1 || { echo "[$ENGINE] no snapshot on disk"; exit 1; }

  echo "kill-restart [$ENGINE] OK (crashed at >=$PRE, recovered at $RECOVERED," \
       "finished at $FINAL, $RECONNECTS reconnects)"
  cd ..
}

run_scenario threads every-8 ""
run_scenario epoll always "--io-threads 2 --checkin-queue-max 256"
