// The classifier/predictor abstraction of Section III-A.
//
// A Model encodes the hypothesis h(x; w) and loss l(h(x; w), y) of Eq. (2).
// Parameters live in a flat `Vector` of `param_dim()` doubles so that the
// same buffer flows through the optimizer, the privacy mechanisms, and the
// wire codec without reshaping.
//
// The regularization term (lambda/2)||w||^2 of Eq. (2) is NOT part of
// `loss`/`add_loss_gradient`: per Device Routine 2 the device adds
// `lambda * w` once per averaged minibatch gradient
// (g~ = (1/ns) sum_i g_i + lambda*w). `add_regularization_gradient` and
// `regularized_risk` provide that term.
//
// `per_sample_l1_sensitivity()` is the model's privacy contract: an upper
// bound on ||g(x,y) - g(x',y')||_1 over any two samples with ||x||_1 <= 1,
// as required by Theorem 1 / Appendix A. The averaged-minibatch sensitivity
// is this value divided by the minibatch size b.
#pragma once

#include <cstddef>
#include <span>

#include "linalg/vector_ops.hpp"
#include "models/sample.hpp"

namespace crowdml::models {

class Model {
 public:
  virtual ~Model() = default;

  virtual std::size_t feature_dim() const = 0;
  /// Number of classes for classifiers; 1 for regressors.
  virtual std::size_t num_classes() const = 0;
  virtual std::size_t param_dim() const = 0;
  virtual bool is_classifier() const = 0;

  /// argmax_k prediction for classifiers; the real-valued prediction
  /// h(x; w) for regressors.
  virtual double predict(const linalg::Vector& w, const linalg::Vector& x) const = 0;

  /// Un-regularized loss l(h(x; w), y).
  virtual double loss(const linalg::Vector& w, const Sample& s) const = 0;

  /// g += (sub)gradient of the un-regularized loss at (w, s) — Eq. (4).
  virtual void add_loss_gradient(const linalg::Vector& w, const Sample& s,
                                 linalg::Vector& g) const = 0;

  /// L1 global sensitivity of a single-sample loss gradient (Appendix A).
  virtual double per_sample_l1_sensitivity() const = 0;

  /// L2 global sensitivity of a single-sample loss gradient — used by the
  /// (eps, delta) Gaussian variant (footnote 1). Defaults to the L1 bound
  /// (always valid since ||v||_2 <= ||v||_1); models override with tighter
  /// constants where available.
  virtual double per_sample_l2_sensitivity() const {
    return per_sample_l1_sensitivity();
  }

  double lambda() const { return lambda_; }

  /// Predicted class for classifiers (uses `predict`).
  int predict_class(const linalg::Vector& w, const linalg::Vector& x) const {
    return static_cast<int>(predict(w, x));
  }

  /// g += lambda * w (the regularizer's gradient, added once per minibatch
  /// in Device Routine 2).
  void add_regularization_gradient(const linalg::Vector& w, linalg::Vector& g) const;

  /// Average loss-gradient over `samples` plus lambda*w — the device's g~.
  linalg::Vector averaged_gradient(const linalg::Vector& w,
                                   std::span<const Sample> samples) const;

  /// Empirical risk of Eq. (2) over one sample set:
  /// mean loss + (lambda/2)||w||^2.
  double regularized_risk(const linalg::Vector& w,
                          std::span<const Sample> samples) const;

  /// Fraction of `samples` misclassified under w (classifiers only).
  double error_rate(const linalg::Vector& w, std::span<const Sample> samples) const;

 protected:
  explicit Model(double lambda) : lambda_(lambda) {}

 private:
  double lambda_;
};

}  // namespace crowdml::models
