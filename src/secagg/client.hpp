// Device-side secure-aggregation round arc (docs/PRIVACY.md
// "Secure aggregation").
//
// RoundClient drives one cohort round over any exchange function
// (in-process call, channel pump, or TCP connection): poll for a cohort
// assignment, mask the device's quantized contribution against the
// sealed roster, submit it, then poll the round status — revealing
// (survivor, dead) pairwise seeds if the server declares the round
// recovering. The client never touches core::Device; it operates on a
// plain MaskedContribution so the secagg module depends only on net/rng
// and core can depend on secagg without a cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/auth.hpp"
#include "net/messages.hpp"
#include "secagg/mask.hpp"

namespace crowdml::secagg {

/// A device's sanitized (cohort-scaled noise), fixed-point-quantized
/// contribution *before* pairwise masking. Produced by
/// core::Device::compute_checkin_masked; consumed by RoundClient.
struct MaskedContribution {
  std::uint64_t param_version = 0;
  std::int64_t ns = 0;                ///< plaintext batch size (public)
  std::vector<std::uint64_t> g;       ///< quantized noisy gradient
  std::uint64_t ne = 0;               ///< encoded noisy error count
  std::vector<std::uint64_t> ny;      ///< encoded noisy label counts
};

enum class RoundOutcome : std::uint8_t {
  kApplied,   ///< round completed; the cohort sum was applied
  kAborted,   ///< round aborted below min survivors — fall back to LDP
  kNoCohort,  ///< server told us to fall back before a cohort formed
  kFailed,    ///< transport failure / poll budget exhausted / nack
};

const char* round_outcome_name(RoundOutcome o);

struct RoundResult {
  RoundOutcome outcome = RoundOutcome::kFailed;
  bool recovered = false;  ///< we submitted seed reveals for dropouts
  std::uint64_t round_id = 0;
  std::string error;  ///< diagnostic for kFailed
};

struct RoundClientConfig {
  /// Shared fleet masking key — distributed to devices out of band; the
  /// server never holds it (docs/PRIVACY.md threat model).
  net::SecretKey fleet_key;
  /// Declared device class, carried (signed) on assign requests so the
  /// server forms the cohort among same-class peers
  /// (net::SecAggAssignMessage::device_class). 0 = default class.
  std::uint8_t device_class = 0;
  /// Bound on assign + status polls before giving up (each poll honors
  /// the server's retry_after_ms hint via `sleep_ms`).
  std::size_t max_polls = 200;
  /// Injectable sleep between polls; null = busy poll (tests).
  std::function<void(std::uint32_t)> sleep_ms;
};

class RoundClient {
 public:
  /// Sends a request frame, returns the response frame (nullopt =
  /// network failure). Same contract as core::DeviceClient::Exchange.
  using Exchange = std::function<std::optional<net::Bytes>(const net::Bytes&)>;

  RoundClient(RoundClientConfig config, net::DeviceCredentials creds,
              Exchange exchange);

  /// Run one full round arc with this contribution. The contribution is
  /// consumed (its words are masked in place in a local copy; the masked
  /// blob leaves the device exactly once).
  RoundResult run(const MaskedContribution& contribution);

 private:
  std::optional<net::SecAggAssignMessage> poll_assign(RoundResult& result);
  net::SecAggMaskedMessage build_masked(const MaskedContribution& c,
                                        const net::SecAggAssignMessage& assign);
  std::optional<net::SecAggRevealMessage> exchange_reveal(
      const net::SecAggRevealMessage& req);

  RoundClientConfig config_;
  net::DeviceCredentials creds_;
  Exchange exchange_;
};

}  // namespace crowdml::secagg
