// Tests for the Remark 3 extension updaters (dual averaging) and the
// checkpoint-related step restoration.
#include <gtest/gtest.h>

#include <memory>

#include "opt/schedule.hpp"
#include "opt/updater.hpp"
#include "rng/distributions.hpp"

using namespace crowdml;

TEST(DualAveraging, ConvergesOnQuadratic) {
  opt::DualAveragingUpdater u(1.0, 100.0);
  linalg::Vector w{0.0};
  for (int t = 0; t < 50000; ++t) u.apply(w, {w[0] - 3.0});
  EXPECT_NEAR(w[0], 3.0, 0.05);
}

TEST(DualAveraging, FirstStepIsScaledGradient) {
  opt::DualAveragingUpdater u(2.0, 100.0);
  linalg::Vector w{5.0};  // prior value irrelevant: DA rebuilds w from sum
  u.apply(w, {1.0});
  EXPECT_NEAR(w[0], -2.0, 1e-12);  // -(c/sqrt(1)) * mean(= 1)
}

TEST(DualAveraging, IterateRebuiltFromGradientHistory) {
  // Distinctive dual-averaging property: the iterate is a function of the
  // accumulated gradients only — externally perturbing w between steps has
  // no effect on the next iterate (an SGD step would carry it forward).
  opt::DualAveragingUpdater a(1.0, 100.0), b(1.0, 100.0);
  linalg::Vector wa{0.0}, wb{0.0};
  for (int t = 0; t < 10; ++t) {
    a.apply(wa, {1.0});
    b.apply(wb, {1.0});
  }
  wb[0] += 77.0;  // corruption of the iterate itself
  a.apply(wa, {1.0});
  b.apply(wb, {1.0});
  EXPECT_DOUBLE_EQ(wa[0], wb[0]);
}

TEST(DualAveraging, ProjectionApplies) {
  opt::DualAveragingUpdater u(1000.0, 2.0);
  linalg::Vector w{0.0};
  u.apply(w, {-10.0});
  EXPECT_LE(std::abs(w[0]), 2.0 + 1e-12);
}

TEST(DualAveraging, ResetClearsHistory) {
  opt::DualAveragingUpdater u(1.0, 100.0);
  linalg::Vector w{0.0};
  u.apply(w, {10.0});
  u.reset();
  EXPECT_EQ(u.steps(), 0);
  linalg::Vector w2{0.0};
  u.apply(w2, {1.0});
  EXPECT_NEAR(w2[0], -1.0, 1e-12);  // fresh history
}

TEST(RestoreSteps, ResumesScheduleMidway) {
  opt::SgdUpdater u(std::make_unique<opt::SqrtDecaySchedule>(1.0), 100.0);
  u.restore_steps(99);
  linalg::Vector w{0.0};
  u.apply(w, {1.0});  // applies eta(100) = 0.1
  EXPECT_NEAR(w[0], -0.1, 1e-12);
  EXPECT_EQ(u.steps(), 100);
}

TEST(Adam, ConvergesOnQuadratic) {
  opt::AdamUpdater u(0.05, 100.0);
  linalg::Vector w{0.0};
  for (int t = 0; t < 5000; ++t) u.apply(w, {w[0] - 3.0});
  EXPECT_NEAR(w[0], 3.0, 0.05);
}

TEST(Adam, FirstStepIsBiasCorrectlyScaled) {
  // With bias correction, the first step is ~eta0 * sign(g) regardless of
  // the gradient magnitude.
  opt::AdamUpdater small(0.1, 100.0), large(0.1, 100.0);
  linalg::Vector ws{0.0}, wl{0.0};
  small.apply(ws, {0.001});
  large.apply(wl, {1000.0});
  EXPECT_NEAR(ws[0], -0.1, 1e-3);
  EXPECT_NEAR(wl[0], -0.1, 1e-6);
}

TEST(Adam, BoundedStepAbsorbsOutliers) {
  // Like AdaGrad, Adam's per-coordinate step is bounded by ~eta0 — a
  // malicious huge gradient cannot move the iterate arbitrarily far.
  opt::AdamUpdater u(0.1, 1000.0);
  linalg::Vector w{0.0};
  for (int t = 0; t < 100; ++t) u.apply(w, {0.01});
  const double before = w[0];
  u.apply(w, {1e6});
  EXPECT_LT(std::abs(w[0] - before), 0.2);
}

TEST(Adam, ResetClearsMoments) {
  opt::AdamUpdater u(0.1, 100.0);
  linalg::Vector w{0.0};
  u.apply(w, {100.0});
  u.reset();
  EXPECT_EQ(u.steps(), 0);
  linalg::Vector w2{0.0};
  u.apply(w2, {0.001});
  EXPECT_NEAR(w2[0], -0.1, 1e-3);  // behaves like a fresh updater
}
