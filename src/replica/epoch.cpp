#include "replica/epoch.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "net/checksum.hpp"
#include "net/codec.hpp"

namespace crowdml::replica {

namespace {

constexpr std::uint32_t kEpochMagic = 0x50455243;  // "CREP" little-endian

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

EpochStore::EpochStore(std::string dir, std::string name)
    : dir_(std::move(dir)), name_(std::move(name)) {
  try {
    std::filesystem::create_directories(dir_);
  } catch (const std::filesystem::filesystem_error& e) {
    throw EpochError(std::string("cannot create epoch directory: ") + e.what());
  }
}

std::string EpochStore::path() const { return dir_ + "/" + name_; }

std::uint64_t EpochStore::load() const {
  std::FILE* f = std::fopen(path().c_str(), "rb");
  if (!f) return 0;  // never stored
  net::Bytes bytes(16);
  const std::size_t n = std::fread(bytes.data(), 1, bytes.size() + 1, f);
  std::fclose(f);
  if (n != bytes.size())
    throw EpochError("epoch file " + path() + " has the wrong size");
  net::Reader r(bytes);
  const std::uint32_t magic = r.get_u32();
  const std::uint64_t epoch = r.get_u64();
  const std::uint32_t stated = r.get_u32();
  if (magic != kEpochMagic)
    throw EpochError("epoch file " + path() + " has a bad magic");
  if (stated != net::crc32(bytes.data(), 12))
    throw EpochError("epoch file " + path() + " fails its checksum");
  return epoch;
}

void EpochStore::store(std::uint64_t epoch) {
  const std::uint64_t current = load();
  if (epoch < current)
    throw EpochError("refusing to move epoch backwards (" +
                     std::to_string(epoch) + " < " + std::to_string(current) +
                     ")");
  net::Writer w;
  w.put_u32(kEpochMagic);
  w.put_u64(epoch);
  net::Bytes bytes = w.take();
  net::Writer tail;
  tail.put_u32(net::crc32(bytes.data(), bytes.size()));
  const net::Bytes crc = tail.take();
  bytes.insert(bytes.end(), crc.begin(), crc.end());

  const std::string tmp = path() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw EpochError(errno_message("cannot create " + tmp));
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string reason = errno_message("cannot write " + tmp);
      ::close(fd);
      std::remove(tmp.c_str());
      throw EpochError(reason);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string reason = errno_message("cannot fsync " + tmp);
    ::close(fd);
    std::remove(tmp.c_str());
    throw EpochError(reason);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path().c_str()) != 0) {
    const std::string reason = errno_message("cannot rename " + tmp);
    std::remove(tmp.c_str());
    throw EpochError(reason);
  }
  // Make the rename itself durable.
  const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace crowdml::replica
