#include "sim/delay_model.hpp"

#include <cassert>

#include "rng/distributions.hpp"

namespace crowdml::sim {

UniformDelay::UniformDelay(double tau) : tau_(tau) { assert(tau >= 0.0); }

double UniformDelay::sample(rng::Engine& eng) const {
  return tau_ == 0.0 ? 0.0 : rng::uniform(eng, 0.0, tau_);
}

FixedDelay::FixedDelay(double delay) : delay_(delay) { assert(delay >= 0.0); }

ExponentialDelay::ExponentialDelay(double mean) : mean_(mean) {
  assert(mean > 0.0);
}

double ExponentialDelay::sample(rng::Engine& eng) const {
  return rng::exponential(eng, 1.0 / mean_);
}

LossModel::LossModel(double probability) : probability_(probability) {
  assert(probability >= 0.0 && probability < 1.0);
}

bool LossModel::drop(rng::Engine& eng) const {
  return probability_ > 0.0 && rng::uniform(eng) < probability_;
}

}  // namespace crowdml::sim
