// Tests for the discrete-event kernel, delay/loss models, and churn.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/churn.hpp"
#include "sim/delay_model.hpp"
#include "sim/simulator.hpp"

using namespace crowdml;
using sim::Simulator;

TEST(Simulator, ProcessesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  EXPECT_EQ(s.processed(), 3u);
}

TEST(Simulator, FifoAmongSimultaneousEvents) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  double fired_at = -1.0;
  s.schedule_at(5.0, [&] {
    s.schedule_after(2.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, HandlersCanCascade) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(1.0, recurse);
  };
  s.schedule_at(0.0, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(s.now(), 99.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  for (int t = 1; t <= 10; ++t)
    s.schedule_at(static_cast<double>(t), [&] { ++fired; });
  s.run_until(5.0);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  EXPECT_EQ(s.pending(), 5u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator s;
  s.run_until(42.0);
  EXPECT_DOUBLE_EQ(s.now(), 42.0);
}

TEST(Simulator, ClearDropsPending) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.clear();
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
}

TEST(DelayModels, ZeroDelay) {
  rng::Engine eng(1);
  sim::ZeroDelay d;
  EXPECT_DOUBLE_EQ(d.sample(eng), 0.0);
  EXPECT_DOUBLE_EQ(d.max_delay(), 0.0);
}

TEST(DelayModels, UniformWithinBounds) {
  rng::Engine eng(2);
  sim::UniformDelay d(4.0);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = d.sample(eng);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 4.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 2.0, 0.1);
  EXPECT_DOUBLE_EQ(d.max_delay(), 4.0);
}

TEST(DelayModels, UniformZeroTau) {
  rng::Engine eng(3);
  sim::UniformDelay d(0.0);
  EXPECT_DOUBLE_EQ(d.sample(eng), 0.0);
}

TEST(DelayModels, Fixed) {
  rng::Engine eng(4);
  sim::FixedDelay d(1.5);
  EXPECT_DOUBLE_EQ(d.sample(eng), 1.5);
}

TEST(DelayModels, ExponentialMean) {
  rng::Engine eng(5);
  sim::ExponentialDelay d(3.0);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += d.sample(eng);
  EXPECT_NEAR(sum / 50000.0, 3.0, 0.1);
  EXPECT_DOUBLE_EQ(d.max_delay(), -1.0);
}

TEST(DelayModels, CloneProducesEquivalentModel) {
  sim::UniformDelay d(2.0);
  auto c = d.clone();
  EXPECT_DOUBLE_EQ(c->max_delay(), 2.0);
}

TEST(LossModel, ZeroNeverDrops) {
  rng::Engine eng(6);
  sim::LossModel loss(0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(loss.drop(eng));
}

TEST(LossModel, RateMatchesProbability) {
  rng::Engine eng(7);
  sim::LossModel loss(0.3);
  int drops = 0;
  for (int i = 0; i < 100000; ++i)
    if (loss.drop(eng)) ++drops;
  EXPECT_NEAR(drops / 100000.0, 0.3, 0.01);
}

TEST(Churn, DisabledIsAlwaysOnline) {
  rng::Engine eng(8);
  sim::ChurnModel churn;
  EXPECT_FALSE(churn.enabled());
  auto st = churn.initial_state(eng);
  for (double t = 0.0; t < 1000.0; t += 100.0)
    EXPECT_TRUE(churn.online_at(t, st, eng));
}

TEST(Churn, StateAlternates) {
  rng::Engine eng(9);
  sim::ChurnModel churn(10.0, 5.0);
  auto st = churn.initial_state(eng);
  const bool first = st.online;
  auto next = churn.next_state(st, eng);
  EXPECT_EQ(next.online, !first);
  EXPECT_GT(next.until, st.until);
}

TEST(Churn, LongRunOnlineFractionMatchesRatio) {
  rng::Engine eng(10);
  sim::ChurnModel churn(30.0, 10.0);  // expect 75% online
  auto st = churn.initial_state(eng);
  int online = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    if (churn.online_at(i * 0.5, st, eng)) ++online;
  EXPECT_NEAR(online / static_cast<double>(n), 0.75, 0.03);
}
