// Leader side of WAL shipping: accepts follower connections on a
// dedicated replication port and streams the durable store's log to each
// of them — segments first (the disk is the replication buffer; there is
// no in-memory queue to overflow), then the live tail as group commits
// land. Every frame carries the leader's epoch; a hello or ack bearing a
// higher epoch means this leader has been superseded and it fences
// itself: no further quorum waits succeed, so no checkin acked here can
// contradict the new leader's history. See docs/REPLICATION.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/server.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "replica/repl_session.hpp"
#include "store/durable_store.hpp"

namespace crowdml::replica {

struct ShipperOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see LogShipper::port()
  ReplAckMode ack_mode = ReplAckMode::kAsync;
  /// Follower acks required before await_quorum() releases a checkin;
  /// see quorum_follower_acks_for. Only meaningful under kQuorum.
  std::size_t quorum_follower_acks = 1;
  int quorum_timeout_ms = 5000;
  std::size_t batch_max_records = 256;
  std::size_t batch_max_bytes = 1u << 20;
  /// Deadline for each replication-socket send/recv. Followers that stall
  /// past it are disconnected (and simply reconnect later).
  int io_deadline_ms = 10'000;
  /// Lease heartbeats: when > 0, every session sends a kReplHeartbeat at
  /// least this often (and immediately after the hello), granting
  /// lease_ms of leader liveness. 0 disables (pre-failover behavior).
  int heartbeat_interval_ms = 0;
  /// Lease granted per heartbeat; 0 = 3 * heartbeat_interval_ms.
  std::uint32_t lease_ms = 0;
  /// Device-facing host:port advertised in heartbeats so replicas keep
  /// their checkin redirects pointed at the live leader ("" = omit).
  std::string advertise_leader_addr;
  /// Chunked snapshot transfer: at most this many checkpoint bytes per
  /// kReplSnapshot frame (a multi-GB state can neither stall the session
  /// loop nor exceed the frame-size cap), throttled to at most
  /// snapshot_max_bytes_per_sec (0 = unthrottled).
  std::size_t snapshot_chunk_bytes = 1u << 20;
  std::size_t snapshot_max_bytes_per_sec = 0;
  /// Shared HMAC key for all Repl* frames (empty = unauthenticated).
  ReplKey key;
  /// Multimodel pool instance this shipper's WAL stream belongs to
  /// (src/multimodel/; 0 = single-model). Stamped into every ReplAppend
  /// and verified against each hello: a follower for instance j is
  /// dropped rather than fed instance i's records.
  std::uint64_t instance_id = 0;
  obs::MetricsRegistry* metrics = nullptr;  ///< null = default_registry()
  obs::TraceSink* trace = nullptr;          ///< null disables
};

/// Majority of `followers` configured replicas: floor((F + 1) / 2), so
/// leader + that many followers is a strict majority of the F + 1 nodes.
std::size_t quorum_follower_acks_for(std::size_t followers);

class LogShipper {
 public:
  /// Starts the acceptor immediately. `server` and `store` must outlive
  /// the shipper; `epoch` is the leader's already-durable term. Throws
  /// std::runtime_error when the replication port cannot be bound.
  LogShipper(core::Server& server, store::DurableStore& store,
             std::uint64_t epoch, ShipperOptions options = {});
  ~LogShipper();

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint64_t epoch() const { return epoch_; }

  /// Advance the shipping watermark to the WAL's committed tail and wake
  /// idle sessions. Call after every successful commit_group().
  void notify_committed();

  /// Block until `quorum_follower_acks` followers durably hold `seq`
  /// (true), or the quorum times out / the leader is fenced / shutdown
  /// begins (false). Immediately true under kNone/kAsync.
  bool await_quorum(std::uint64_t seq);

  /// True once a follower presented a higher epoch: this leader is stale
  /// and must stop acking (quorum waits fail fast from then on).
  bool fenced() const { return fenced_.load(); }

  /// Update the device-facing address heartbeats advertise. Exists
  /// because the serving engine usually binds (and learns its ephemeral
  /// port) only after the shipper is constructed; the next heartbeat on
  /// every session picks the new address up.
  void set_advertise_leader_addr(const std::string& addr);

  std::size_t follower_sessions() const { return tracker_.sessions(); }
  long long heartbeats_sent() const { return heartbeats_sent_.value(); }
  long long auth_failures() const { return auth_failed_.value(); }

  void shutdown();

 private:
  void accept_loop();
  void session_loop(std::uint64_t session_id, net::TcpConnection conn);
  void fence(std::uint64_t observed_epoch);
  /// Stream `blob` (a serialized checkpoint at `version`) in bounded,
  /// rate-limited chunks starting at `offset`. Under want_ack modes each
  /// chunk waits for the follower's ack (fencing on a higher epoch, in
  /// which case `fenced_session` is set). `heartbeat` is invoked between
  /// chunks and inside throttle waits so the receiver's lease keeps
  /// renewing however slow the transfer runs (a throttled snapshot must
  /// not read as a dead leader). False on any failure.
  bool ship_snapshot_chunks(net::TcpConnection& conn, std::uint64_t session_id,
                            std::uint64_t version, const net::Bytes& blob,
                            std::uint64_t offset, bool want_ack,
                            bool* fenced_session,
                            const std::function<bool()>& heartbeat);

  core::Server& server_;
  store::DurableStore& store_;
  const std::uint64_t epoch_;
  ShipperOptions opts_;

  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> fenced_{false};

  AckTracker tracker_;

  // Committed watermark: sessions ship only through it, and sleep on the
  // condvar when caught up until notify_committed() moves it.
  std::mutex watermark_mu_;
  std::condition_variable watermark_cv_;
  std::uint64_t watermark_ = 0;

  // Live sessions, for shutdown_both() at shutdown; threads are joined.
  std::mutex sessions_mu_;
  std::map<std::uint64_t, net::TcpConnection*> live_conns_;
  std::vector<std::thread> session_threads_;
  std::uint64_t next_session_id_ = 1;

  // Guards opts_.advertise_leader_addr: set_advertise_leader_addr races
  // with heartbeats on live sessions.
  mutable std::mutex advertise_mu_;

  // Serialized-snapshot cache for resumable chunked transfers: a
  // follower that disconnected mid-transfer announces (version, offset)
  // in its next hello and resumes when the cache still holds that
  // version's exact bytes.
  std::mutex snap_cache_mu_;
  std::uint64_t snap_cache_version_ = 0;
  std::shared_ptr<const net::Bytes> snap_cache_;

  obs::Gauge& lag_records_;
  obs::Histogram& ship_seconds_;
  obs::Counter& records_shipped_;
  obs::Counter& snapshots_shipped_;
  obs::Counter& fenced_hellos_;
  obs::Counter& quorum_timeouts_;
  obs::Counter& followers_connected_;
  obs::Counter& heartbeats_sent_;
  obs::Counter& auth_failed_;
};

}  // namespace crowdml::replica
