// Minimal command-line flag parsing for the CLI tools (no external deps).
// Supports --name=value and --name value forms plus boolean --name.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace crowdml::tools {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0)
        throw std::runtime_error("unexpected positional argument: " + arg);
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  long long get_int(const std::string& name, long long fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }

  double get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  bool get_bool(const std::string& name, bool fallback = false) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Replication role flags for crowdml-server, validated as a unit (the
/// combinations are easy to get wrong; see docs/REPLICATION.md):
///   --role leader|follower          (default leader)
///   --leader-addr host:port         (follower only; required there)
///   --repl-ack none|async|quorum    (leader only)
///   --repl-port N                   (leader only; 0 = ephemeral)
///   --repl-followers N              (leader; sizes the quorum)
///   --epoch-dir DIR                 (default: the wal dir)
///   --promote-on-start              (leader only; bump the epoch)
/// `error` is non-empty when the combination is invalid.
struct ReplicaFlags {
  std::string role = "leader";
  std::string leader_host;
  std::uint16_t leader_port = 0;
  std::string leader_addr;  ///< the raw host:port, for redirect nacks
  std::string ack_mode = "none";
  std::string epoch_dir;
  long long followers = 2;
  bool promote_on_start = false;
  /// True when this leader runs a replication plane at all (a
  /// --repl-port was given or an ack mode other than none requested).
  bool repl_enabled = false;
  std::uint16_t repl_port = 0;
  std::string error;
};

inline ReplicaFlags parse_replica_flags(const Flags& flags) {
  ReplicaFlags r;
  r.role = flags.get("role", "leader");
  r.ack_mode = flags.get("repl-ack", "none");
  r.epoch_dir = flags.get("epoch-dir", "");
  r.followers = flags.get_int("repl-followers", 2);
  r.promote_on_start = flags.get_bool("promote-on-start");
  r.repl_port = static_cast<std::uint16_t>(flags.get_int("repl-port", 0));
  r.leader_addr = flags.get("leader-addr", "");
  const std::string wal_dir = flags.get("wal-dir", "");
  const std::string engine = flags.get("engine", "threads");

  if (r.role != "leader" && r.role != "follower") {
    r.error = "unknown --role " + r.role + " (leader|follower)";
    return r;
  }
  if (r.ack_mode != "none" && r.ack_mode != "async" && r.ack_mode != "quorum") {
    r.error = "unknown --repl-ack " + r.ack_mode + " (none|async|quorum)";
    return r;
  }

  if (r.role == "follower") {
    if (r.leader_addr.empty()) {
      r.error = "--role follower requires --leader-addr host:port";
      return r;
    }
    const auto colon = r.leader_addr.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= r.leader_addr.size()) {
      r.error = "--leader-addr must be host:port, got " + r.leader_addr;
      return r;
    }
    r.leader_host = r.leader_addr.substr(0, colon);
    long long port = 0;
    try {
      port = std::stoll(r.leader_addr.substr(colon + 1));
    } catch (const std::exception&) {
      port = 0;
    }
    if (port < 1 || port > 65535) {
      r.error = "--leader-addr port out of range in " + r.leader_addr;
      return r;
    }
    r.leader_port = static_cast<std::uint16_t>(port);
    if (wal_dir.empty()) {
      r.error = "--role follower requires --wal-dir (the replica's log)";
      return r;
    }
    if (engine != "epoll") {
      r.error = "--role follower requires --engine epoll (snapshot-board "
                "checkouts)";
      return r;
    }
    if (flags.has("repl-ack") || flags.has("repl-port") ||
        flags.has("promote-on-start") || flags.has("repl-followers")) {
      r.error = "--repl-ack/--repl-port/--repl-followers/--promote-on-start "
                "are leader flags; a follower learns them from its leader";
      return r;
    }
    return r;
  }

  // Leader.
  if (!r.leader_addr.empty()) {
    r.error = "--leader-addr is a follower flag (this node IS the leader)";
    return r;
  }
  r.repl_enabled = flags.has("repl-port") || r.ack_mode != "none" ||
                   r.promote_on_start;
  if (r.repl_enabled && wal_dir.empty()) {
    r.error = "replication requires --wal-dir (the WAL is the shipping "
              "buffer)";
    return r;
  }
  if (r.repl_enabled && engine != "epoll") {
    r.error = "replication requires --engine epoll (the shipping watermark "
              "advances on the group-commit path)";
    return r;
  }
  if (r.ack_mode == "quorum" && r.followers < 1) {
    r.error = "--repl-ack quorum requires --repl-followers >= 1";
    return r;
  }
  return r;
}

}  // namespace crowdml::tools
