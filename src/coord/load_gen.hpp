// Open-loop load generator: simulate 100k+ device checkin timelines on a
// handful of threads.
//
// A closed-loop client (send, wait, think, repeat) measures the server's
// latency *through its own throttling* — when the server slows, a closed
// loop slows its arrival rate with it and overload never shows. The
// open-loop generator instead schedules every simulated device's next
// checkin on a per-worker min-heap keyed by fire time and sends when the
// clock says so; when the server (or the generator itself) can't keep
// up, events fire late and the lag is *measured* (the tracking-error
// percentiles), not hidden.
//
// Each worker owns devices round-robin, one real TCP connection, and a
// private rng::Engine. Device timelines:
//
//   - think times are lognormal(mean, sigma) — heavy-tailed, never
//     negative, the standard human-inter-arrival shape;
//   - session lengths are Pareto(alpha) cycles — most devices do a few
//     checkins, a heavy tail does many — after which the device drops
//     out and rejoins Exp(rejoin_mean) later with a fresh session;
//   - an optional diurnal wave modulates the arrival rate sinusoidally
//     (think time is divided by 1 + a·sin(2πt/T));
//   - with honor_hints, a pace-steering hint on an ok ack pushes the
//     next fire time to max(think draw, hint) — exactly what
//     ReconnectingDeviceSession does with its deferred delay; a shed
//     nack's retry_after hint always wins (both modes honor it, the
//     pre-coordinator contract).
//
// Devices are timelines, not sockets: every device's checkin frame is
// pre-signed at fleet construction (the server authenticates per frame,
// not per connection), so a worker multiplexes thousands of identities
// over one connection and the generator's fd count stays O(workers).
//
// Everything is seeded; two runs with the same config draw identical
// timelines.
#pragma once

#include <cstdint>
#include <string>

#include "coord/device_class.hpp"
#include "net/auth.hpp"

namespace crowdml::coord {

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t devices = 1000;
  /// Steady-state measurement window; events before warmup_s are sent
  /// but not counted (the fleet's first wave and the steering policy's
  /// first measurements are transients).
  double duration_s = 5.0;
  double warmup_s = 1.0;
  /// Lognormal think time between a device's checkins.
  double think_mean_s = 1.0;
  double think_sigma = 0.5;  ///< sigma of the underlying normal
  /// Pareto session length (cycles per session) and exponential
  /// dropout/rejoin gap.
  double session_mean_cycles = 50.0;
  double pareto_alpha = 1.5;
  double rejoin_mean_s = 2.0;
  /// Diurnal wave: arrival rate scaled by 1 + amplitude·sin(2πt/period).
  /// 0 disables.
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 60.0;
  std::size_t workers = 4;
  /// Honor pace-steering hints on ok acks (shed retry_after hints are
  /// honored regardless — that contract predates the coordinator).
  bool honor_hints = true;
  std::uint64_t seed = 1;
  int io_deadline_ms = 5000;
  int connect_timeout_ms = 2000;
  /// Shape of the pre-signed checkin payloads; must match the server's
  /// model or every checkin is rejected.
  std::size_t param_dim = 16;
  std::size_t num_classes = 2;
  /// Device classes; devices are striped across the table's ids
  /// proportionally to each class's weight share.
  DeviceClassTable classes;
};

struct LoadGenStats {
  std::size_t devices = 0;
  double elapsed_s = 0.0;  ///< steady-state window actually measured
  long long checkins_sent = 0;
  long long ok_acks = 0;
  long long sheds = 0;     ///< retry_after nacks (queue overflow)
  long long rejected = 0;  ///< other nacks (should be 0 in a healthy run)
  long long failures = 0;  ///< transport failures (timeout, refused, drop)
  long long hints_seen = 0;
  double shed_rate = 0.0;  ///< sheds / checkins_sent
  double mean_hint_ms = 0.0;
  /// Ack round-trip latency percentiles (ms), successful exchanges only.
  double ack_p50_ms = 0.0, ack_p95_ms = 0.0, ack_p99_ms = 0.0;
  /// Tracking error (ms): how late events fired vs their scheduled time.
  /// Small = the generator kept its open-loop promise; growing = the
  /// generator (or the acks it waits on) saturated and arrivals degraded
  /// toward closed-loop.
  double lag_p50_ms = 0.0, lag_p95_ms = 0.0, lag_p99_ms = 0.0;
};

/// Enrolls `cfg.devices` identities in `auth` (the serving process's
/// registry), pre-signs their frames, runs the open-loop fleet against
/// host:port, and returns the steady-state stats. Blocks for roughly
/// warmup_s + duration_s.
LoadGenStats run_load_gen(const LoadGenConfig& cfg, net::AuthRegistry& auth);

}  // namespace crowdml::coord
