#include "data/thermostat.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "rng/distributions.hpp"

namespace crowdml::data {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// The ground-truth preference weights (in the normalized feature space).
/// Occupants like it warmer in the evening, cooler when it's hot outside,
/// warmer when the home is occupied, slightly cooler when humid.
constexpr double kTrueWeights[kThermostatDim] = {
    0.9,   // sin(time): evening warmth
    -0.3,  // cos(time)
    -1.2,  // outdoor temperature (normalized): hot out -> cooler setpoint
    0.8,   // occupancy
    -0.4,  // humidity
    0.3,   // weekend flag
    0.5,   // bias
};

}  // namespace

Dataset generate_thermostat(const ThermostatSpec& spec, rng::Engine& eng) {
  assert(spec.train_size > 0 && spec.test_size > 0);
  Dataset ds;
  ds.num_classes = 1;
  ds.feature_dim = kThermostatDim;

  const std::size_t total = spec.train_size + spec.test_size;
  for (std::size_t i = 0; i < total; ++i) {
    const double hour = rng::uniform(eng, 0.0, 24.0);
    linalg::Vector x(kThermostatDim);
    x[0] = std::sin(kTwoPi * hour / 24.0);
    x[1] = std::cos(kTwoPi * hour / 24.0);
    x[2] = rng::uniform(eng, -1.0, 1.0);  // outdoor temp, normalized
    x[3] = rng::uniform(eng) < 0.6 ? 1.0 : 0.0;  // occupied
    x[4] = rng::uniform(eng, 0.0, 1.0);          // humidity
    x[5] = rng::uniform(eng) < 2.0 / 7.0 ? 1.0 : 0.0;  // weekend
    x[6] = 1.0;                                        // bias

    double target = 0.0;
    for (std::size_t d = 0; d < kThermostatDim; ++d)
      target += kTrueWeights[d] * x[d];

    // L1-normalize the features (||x||_1 <= 1, required by the privacy
    // sensitivity analysis); scale the target by the same factor so the
    // linear relationship is preserved exactly, then add taste noise and
    // clamp into the model's residual-bound range.
    const double n1 = linalg::norm1(x);
    linalg::scal(1.0 / n1, x);
    target /= n1;
    target += rng::normal(eng, 0.0, spec.taste_noise);
    target = std::clamp(target, -1.0, 1.0);

    Sample s(std::move(x), target);
    (i < spec.train_size ? ds.train : ds.test).push_back(std::move(s));
  }
  return ds;
}

double thermostat_offset_to_celsius(double offset) {
  return 21.0 + 3.0 * offset;
}

}  // namespace crowdml::data
