// Draw-and-discard multi-model serving: k parallel appliers, one model
// instance each (Pihur et al., "Differentially-Private 'Draw and
// Discard' Machine Learning", PAPERS.md).
//
// The epoll engine's single applier thread is the last serialization
// point on the checkin path: every other layer scales out, but all
// updates still funnel through one thread, one WAL, one group-commit
// clock. The draw-and-discard scheme removes that ceiling by design
// rather than by sharding a shared model: the server keeps k
// *independent* model instances, and
//
//   draw     a checkout serves a uniformly drawn instance's snapshot
//            (each instance keeps its own pre-encoded Params frame on
//            its own ModelSnapshotBoard — still lock-free);
//   update   a checkin routes to a uniformly drawn instance's
//            CheckinQueue and is applied by that instance's applier
//            thread (w_i <- Pi_W[w_i - eta g^], the usual Routine 2);
//   discard  the updated instance's parameters then overwrite a
//            uniformly drawn victim instance, discarding the victim's
//            previous values.
//
// Because instances are independent, the k applier threads run truly in
// parallel — k WAL streams under one --wal-dir (see
// store::DurableStore::instance_dir), k group-commit clocks, k boards.
// The only cross-instance traffic is the discard step, which travels as
// an *overwrite record* through the victim's own queue and applier: every
// mutation of instance j still happens on j's applier thread, in j's
// arrival order, and lands in j's WAL (store::kOpaqueRecordMagic
// envelope). That is what keeps per-instance recovery bit-reproducible —
// replaying instance j's log replays the same checkins and the same
// overwrites in the same order, byte-for-byte equal to a never-crashed
// witness.
//
// Batching deviation: the paper discards once per client update; the
// applier here draws one victim per applied checkin (so the discard
// distribution is per-update uniform, which the seeded-RNG tests check)
// but coalesces same-victim draws within one drained batch into a single
// overwrite carrying the batch-final parameters. Expected copies of any
// one update remain 1 and the stationary variance bound k·sigma^2/(2k-1)
// is unaffected; see docs/PRIVACY.md "Draw-and-discard amplification".
//
// k = 1 degenerates exactly to the single-applier engine path: draws and
// routes always pick instance 0, the discard victim is always the
// updated instance itself (no overwrite is ever enqueued or logged), and
// the WAL namespace is the base directory — byte-identical state, WAL,
// and params frames (tests/multimodel_test.cpp proves it).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "coord/coordinator.hpp"
#include "core/protocol.hpp"
#include "core/server.hpp"
#include "engine/checkin_queue.hpp"
#include "engine/epoll_server.hpp"
#include "engine/snapshot_board.hpp"
#include "net/auth.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/durable_store.hpp"

namespace crowdml::multimodel {

/// The discard step on the wire/in the WAL: a full parameter image that
/// replaces the victim instance's w. Serialized inside the
/// store::kOpaqueRecordMagic envelope:
///
///   [u32 0xFFFFFFFF][u32 kind=1][u64 source_instance][vector w]
///
/// so a checkin record (whose payload opens with a codec length prefix,
/// capped far below 0xFFFFFFFF) can never be confused with one.
struct OverwriteRecord {
  std::uint64_t source_instance = 0;
  linalg::Vector w;

  net::Bytes serialize() const;
  /// Throws net::CodecError on a malformed or non-overwrite payload.
  static OverwriteRecord deserialize(const net::Bytes& payload);
};

struct PoolOptions {
  /// k. 1 reproduces the single-applier path bit for bit.
  std::size_t instances = 1;
  /// Seed for the draw/route/discard streams (deterministic given call
  /// order; per-instance discard streams are split from it by instance).
  std::uint64_t seed = 1;
  /// Per-instance CheckinQueue bound; a full queue sheds at the engine.
  std::size_t checkin_queue_max = 1024;
  /// Most checkins one applier wakeup applies (and group-commits).
  std::size_t checkin_batch_max = 256;
  /// Base directory for the per-instance WAL namespaces ("" = no
  /// durability). See store::DurableStore::instance_dir for the layout.
  std::string wal_dir;
  /// Template for each instance's store (the pool installs its own
  /// opaque_replay handler; group commit is always enabled).
  store::DurableStoreOptions store;
  /// Called after instance `i`'s successful commit_group — the
  /// replication shipper's notify/await chain hooks here. Returning
  /// false nacks the batch (same contract as EngineConfig::group_commit).
  std::function<bool(std::size_t instance)> on_commit;
  /// Pace steering with k > 1 (docs/SCALING.md "Pace steering"): builds
  /// instance `i`'s own Coordinator — k independent per-class clocks,
  /// each fed only by its own applier's commits and queue depth, each
  /// stamping consuming hints only on the checkin acks its instance
  /// applied. The clock lives where the commits it measures happen; a
  /// shared clock would meter k appliers' capacity through one bucket.
  /// Null = steering off (ack bytes unchanged). With a factory set,
  /// leave EngineConfig::coordinator null — checkout hints stay advisory
  /// and classless shed hints fall back to the engine's fixed retry.
  std::function<std::unique_ptr<coord::Coordinator>(std::size_t instance)>
      coordinator_factory;
  obs::MetricsRegistry* metrics = nullptr;  ///< null = default_registry()
  obs::TraceSink* trace = nullptr;          ///< null disables
};

class ModelInstancePool {
 public:
  /// Builds instance `i`'s core::Server (own updater, own RNG stream).
  using ServerFactory =
      std::function<std::unique_ptr<core::Server>(std::size_t instance)>;

  /// Constructs the k instances and, when wal_dir is set, recovers each
  /// from its own WAL namespace (independent recovery clocks) and
  /// attaches its applied-checkin hook with group commit enabled.
  /// Appliers do not run until start(). Throws store::WalError on
  /// unrecoverable per-instance state.
  ModelInstancePool(net::AuthRegistry& auth, const ServerFactory& factory,
                    PoolOptions options);
  ~ModelInstancePool();

  ModelInstancePool(const ModelInstancePool&) = delete;
  ModelInstancePool& operator=(const ModelInstancePool&) = delete;

  /// Start the k applier threads (each publishes its board first).
  void start();

  /// Close every queue, drain (every admitted request still answers),
  /// join the appliers, and sync the stores. Idempotent.
  void shutdown();

  std::size_t instances() const { return slots_.size(); }

  /// Uniform draw for a checkout — wire into EngineConfig::draw_snapshot.
  /// Lock-free (atomic splitmix64 stream + atomic board load).
  std::shared_ptr<const engine::ModelSnapshot> draw_snapshot();

  /// Install (or replace) the post-commit hook — see
  /// PoolOptions::on_commit. Must be called before start(); the
  /// replication PoolShipperSet wires its notify/quorum chain here.
  void set_on_commit(std::function<bool(std::size_t)> hook) {
    opts_.on_commit = std::move(hook);
  }

  /// Uniform routing for a checkin — wire into
  /// EngineConfig::route_checkin. False when the drawn instance's queue
  /// is full (the engine sheds with a retry_after nack).
  bool route_checkin(engine::CheckinWork&& work);

  core::Server& server(std::size_t i) { return *slots_[i]->server; }
  const core::Server& server(std::size_t i) const {
    return *slots_[i]->server;
  }
  const engine::ModelSnapshotBoard& board(std::size_t i) const {
    return slots_[i]->board;
  }
  /// Null when the pool has no durability layer.
  store::DurableStore* store(std::size_t i) {
    return slots_[i]->store.get();
  }
  /// Instance i's pacing clock; null when no coordinator_factory was set.
  coord::Coordinator* coordinator(std::size_t i) {
    return slots_[i]->coordinator.get();
  }

  /// Sum of instance versions (total updates applied pool-wide,
  /// overwrites included).
  std::uint64_t total_version() const;
  /// Every instance met its stopping criteria.
  bool stopped() const;

  // Seeded-draw accounting (the distribution sanity tests).
  std::vector<long long> draw_counts() const;     ///< checkout draws
  std::vector<long long> route_counts() const;    ///< checkin routes
  std::vector<long long> discard_counts() const;  ///< discard victims
  long long overwrites_applied() const {
    return overwrites_applied_.value();
  }
  /// Discards dropped because the victim's queue was full. Equivalent to
  /// the update surviving one extra round — harmless, but counted.
  long long overwrites_dropped() const { return overwrites_dropped_.value(); }

 private:
  struct Slot {
    std::size_t index = 0;
    std::unique_ptr<core::Server> server;
    std::unique_ptr<core::ProtocolServer> protocol;
    engine::ModelSnapshotBoard board;
    engine::CheckinQueue queue;
    std::unique_ptr<store::DurableStore> store;
    /// This instance's own pacing clock (null = steering off).
    std::unique_ptr<coord::Coordinator> coordinator;
    std::thread applier;
    /// Discard stream: deterministic per instance (seed split by index).
    std::uint64_t discard_state = 0;
    /// Overwrite records logged but not yet group-committed (applier
    /// thread only). Overwrites carry no client ack, so they owe no
    /// fsync of their own — they ride the next acked batch's commit.
    std::size_t lazy_records = 0;
    std::atomic<long long> draws{0};
    std::atomic<long long> routes{0};
    std::atomic<long long> discards{0};

    Slot(std::size_t idx, std::unique_ptr<core::Server> srv,
         net::AuthRegistry& auth, const PoolOptions& opts);
  };

  void applier_loop(Slot& slot);
  /// Uniform instance index from the shared atomic stream.
  std::size_t draw_index(std::atomic<std::uint64_t>& state);
  /// True when `frame` is a checkin whose `response` is an ok ack — the
  /// signal that one update was applied (and one discard draw is owed).
  static bool is_ok_checkin(const net::Bytes& frame,
                            const net::Bytes& response);

  PoolOptions opts_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> draw_state_;
  std::atomic<std::uint64_t> route_state_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  obs::Counter& overwrites_applied_;
  obs::Counter& overwrites_dropped_;
  obs::Counter& checkins_applied_;
  obs::Histogram& handle_seconds_;
};

/// Wire the pool into an engine config: checkout draws, checkin routing,
/// and the shutdown drain. The engine's own applier/board/queue idle.
void wire_engine(ModelInstancePool& pool, engine::EngineConfig& config);

/// Install the pool's overwrite-record replay handler on a store's
/// options: opaque WAL records deserialize as OverwriteRecords and apply
/// via Server::overwrite_parameters, leaving version == seq. Shared by
/// the pool's own stores and replication followers reconstructing a pool
/// (replica::FollowerOptions::store) so recovery and live apply agree.
void install_overwrite_replay(store::DurableStoreOptions& opts);

}  // namespace crowdml::multimodel
