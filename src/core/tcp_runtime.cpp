#include "core/tcp_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace crowdml::core {

namespace {

/// retry_after hint carried by a load-shed nack frame; -1 when the frame
/// is anything else (params, ok-ack, nack without a hint, garbage).
int shed_hint(const net::Bytes& frame) {
  if (frame.size() <= net::kFrameTypeOffset ||
      frame[net::kFrameTypeOffset] !=
          static_cast<std::uint8_t>(net::MessageType::kAck))
    return -1;
  try {
    const net::Frame f = net::decode_frame(frame);
    const net::AckMessage ack = net::AckMessage::deserialize(f.payload);
    if (ack.ok) return -1;
    const auto hint = net::parse_retry_after(ack.reason);
    return hint ? *hint : -1;
  } catch (const net::CodecError&) {
    return -1;
  }
}

/// Pace-steering hint carried by a *success* frame (docs/SCALING.md,
/// "Pace steering"): next_checkin_hint_ms from an ok-ack or a params
/// frame. 0 when absent, malformed, or a nack (shed nacks carry their
/// hint in the reason string and take the retry_after path instead).
/// Capped to int range defensively; the steering policy's own clamp is
/// far below that.
int pace_hint(const net::Bytes& frame) {
  if (frame.size() <= net::kFrameTypeOffset) return 0;
  const std::uint8_t type = frame[net::kFrameTypeOffset];
  try {
    std::uint32_t hint = 0;
    if (type == static_cast<std::uint8_t>(net::MessageType::kAck)) {
      const net::Frame f = net::decode_frame(frame);
      const net::AckMessage ack = net::AckMessage::deserialize(f.payload);
      if (!ack.ok) return 0;
      hint = ack.next_checkin_hint_ms;
    } else if (type == static_cast<std::uint8_t>(net::MessageType::kParams)) {
      const net::Frame f = net::decode_frame(frame);
      const net::ParamsMessage params = net::ParamsMessage::deserialize(f.payload);
      hint = params.next_checkin_hint_ms;
    }
    return static_cast<int>(std::min<std::uint32_t>(
        hint, static_cast<std::uint32_t>(std::numeric_limits<int>::max())));
  } catch (const net::CodecError&) {
    return 0;
  }
}

/// Redirect address carried by a "not leader" or "wrong shard" nack
/// frame; nullopt when the frame is anything else. Both reasons make
/// the same guarantee — the nack was issued before application — so the
/// session follows both through the one hop-capped path.
std::optional<std::string> redirect_target(const net::Bytes& frame) {
  if (frame.size() <= net::kFrameTypeOffset ||
      frame[net::kFrameTypeOffset] !=
          static_cast<std::uint8_t>(net::MessageType::kAck))
    return std::nullopt;
  try {
    const net::Frame f = net::decode_frame(frame);
    const net::AckMessage ack = net::AckMessage::deserialize(f.payload);
    if (ack.ok) return std::nullopt;
    if (auto leader = net::parse_leader_redirect(ack.reason)) return leader;
    return net::parse_shard_redirect(ack.reason);
  } catch (const net::CodecError&) {
    return std::nullopt;
  }
}

}  // namespace

TcpCrowdServer::TcpCrowdServer(Server& server, net::AuthRegistry& auth,
                               std::uint16_t port)
    : TcpCrowdServer(server, auth, TcpServerConfig{.port = port}) {}

TcpCrowdServer::TcpCrowdServer(Server& server, net::AuthRegistry& auth,
                               TcpServerConfig config)
    : config_(std::move(config)),
      protocol_(server, auth, config_.trace),
      counters_(config_.metrics),
      handle_seconds_(
          (config_.metrics ? *config_.metrics : obs::default_registry())
              .histogram("crowdml_server_handle_seconds",
                         "Whole request dispatch: decode, authenticate, "
                         "apply, encode",
                         obs::Provenance::kTiming)) {
  protocol_.set_secagg(config_.secagg);
  auto listener = net::TcpListener::bind(config_.bind_address, config_.port);
  if (!listener) throw std::runtime_error("TcpCrowdServer: bind failed");
  listener_ = std::move(*listener);
  port_ = listener_.port();
  acceptor_ = std::thread([this] { accept_loop(); });
  if (config_.reap_interval_ms > 0)
    reaper_ = std::thread([this] { reap_loop(); });
}

TcpCrowdServer::~TcpCrowdServer() { shutdown(); }

void TcpCrowdServer::accept_loop() {
  while (!stopping_.load()) {
    auto conn = listener_.accept();
    if (!conn) break;  // listener closed
    std::lock_guard lock(workers_mu_);
    if (stopping_.load()) break;
    reap_finished_locked();
    if (workers_.size() >= config_.max_connections) {
      // Graceful refusal: tell the device why before hanging up, so its
      // next backoff delay is informed rather than a mystery EOF.
      ++counters_.refused_connections;
      if (config_.trace)
        config_.trace->event("refusal", {{"reason", "server at capacity"}});
      const net::AckMessage nack{
          false, net::retry_after_reason("server at capacity",
                                         config_.capacity_retry_after_ms)};
      conn->set_deadline_ms(1000);
      conn->send_frame(
          net::encode_frame(net::MessageType::kAck, nack.serialize()));
      continue;  // conn destructs -> closed
    }
    ++counters_.accepted_connections;
    if (config_.trace) config_.trace->event("accept");
    auto c = std::make_shared<net::TcpConnection>(std::move(*conn));
    c->set_deadline_ms(config_.idle_timeout_ms);
    auto done = std::make_shared<std::atomic<bool>>(false);
    Worker w;
    w.conn = c;
    w.done = done;
    w.thread = std::thread([this, c, done] {
      serve(c);
      done->store(true);
    });
    workers_.push_back(std::move(w));
  }
}

void TcpCrowdServer::serve(const std::shared_ptr<net::TcpConnection>& conn) {
  while (!stopping_.load()) {
    auto frame = conn->recv_frame();
    if (!frame) {
      if (conn->last_error() == net::NetError::kTimeout) {
        ++counters_.idle_closed;
        if (config_.trace) config_.trace->event("idle_close");
      }
      break;  // EOF / error / idle deadline
    }
    net::Bytes response;
    {
      obs::TimedScope timer(handle_seconds_);
      response = protocol_.handle(*frame);
    }
    if (!conn->send_frame(response)) break;
  }
  conn->shutdown_both();
}

void TcpCrowdServer::reap_loop() {
  // Periodic reap so an idle listener (no accepts arriving) still joins
  // finished workers instead of holding their resources until the next
  // connection — or forever.
  std::unique_lock stop_lock(stop_mu_);
  while (!stopping_.load()) {
    stop_cv_.wait_for(stop_lock,
                      std::chrono::milliseconds(config_.reap_interval_ms),
                      [this] { return stopping_.load(); });
    if (stopping_.load()) break;
    std::lock_guard lock(workers_mu_);
    reap_finished_locked();
  }
}

void TcpCrowdServer::reap_finished_locked() {
  for (auto& w : workers_) {
    if (w.done->load() && w.thread.joinable()) {
      w.thread.join();
      ++counters_.reaped_workers;
    }
  }
  workers_.erase(std::remove_if(workers_.begin(), workers_.end(),
                                [](const Worker& w) {
                                  return !w.thread.joinable();
                                }),
                 workers_.end());
}

void TcpCrowdServer::shutdown() {
  if (stopping_.exchange(true)) return;
  {
    std::lock_guard lock(stop_mu_);
    stop_cv_.notify_all();
  }
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  if (reaper_.joinable()) reaper_.join();
  std::vector<Worker> workers;
  {
    std::lock_guard lock(workers_mu_);
    workers = std::move(workers_);
  }
  // Unblock workers parked in recv_frame, then join.
  for (auto& w : workers) w.conn->shutdown_both();
  for (auto& w : workers)
    if (w.thread.joinable()) w.thread.join();
}

TcpDeviceSession::TcpDeviceSession(const std::string& host, std::uint16_t port)
    : TcpDeviceSession(host, port, net::TcpConnection::kNoDeadline,
                       net::TcpConnection::kNoDeadline) {}

TcpDeviceSession::TcpDeviceSession(const std::string& host, std::uint16_t port,
                                   int io_deadline_ms, int connect_timeout_ms) {
  net::NetError err = net::NetError::kNone;
  auto conn = net::TcpConnection::connect(host, port, connect_timeout_ms, &err);
  if (!conn)
    throw std::runtime_error(std::string("TcpDeviceSession: connect failed (") +
                             net::net_error_name(err) + ")");
  conn_ = std::move(*conn);
  conn_.set_deadline_ms(io_deadline_ms);
}

std::optional<net::Bytes> TcpDeviceSession::exchange(const net::Bytes& request) {
  if (!conn_.send_frame(request)) {
    conn_.close();
    return std::nullopt;
  }
  auto reply = conn_.recv_frame();
  if (!reply) conn_.close();
  return reply;
}

DeviceClient::Exchange TcpDeviceSession::as_exchange() {
  return [this](const net::Bytes& req) { return exchange(req); };
}

ReconnectingDeviceSession::ReconnectingDeviceSession(
    std::string host, std::uint16_t port, ReconnectPolicy policy,
    rng::Engine eng, NetCounters* counters, obs::TraceSink* trace,
    std::uint64_t device_id)
    : host_(std::move(host)),
      port_(port),
      home_host_(host_),
      home_port_(port_),
      policy_(policy),
      eng_(eng),
      counters_(counters),
      trace_(trace),
      device_id_(device_id) {}

bool ReconnectingDeviceSession::try_connect() {
  try {
    session_.emplace(host_, port_, policy_.io_deadline_ms,
                     policy_.connect_timeout_ms);
  } catch (const std::runtime_error&) {
    session_.reset();
    return false;
  }
  if (ever_connected_) {
    ++reconnects_;
    if (counters_) ++counters_->reconnects;
    if (trace_) trace_->event("reconnect", {{"device", device_id_}});
  }
  ever_connected_ = true;
  return true;
}

void ReconnectingDeviceSession::note_secagg_fallback() {
  ++secagg_fallbacks_;
  if (counters_) ++counters_->secagg_fallbacks;
  if (trace_) trace_->event("secagg_fallback", {{"device", device_id_}});
}

void ReconnectingDeviceSession::backoff(int attempt) {
  const int shift = std::min(attempt - 1, 20);
  const long long base =
      std::min<long long>(static_cast<long long>(policy_.backoff_base_ms)
                              << shift,
                          policy_.backoff_max_ms);
  const double factor =
      rng::uniform(eng_, 1.0 - policy_.jitter, 1.0 + policy_.jitter);
  const auto delay = static_cast<long long>(static_cast<double>(base) * factor);
  if (delay > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

std::optional<net::Bytes> ReconnectingDeviceSession::exchange(
    const net::Bytes& request) {
  // A shed checkin's hint delays the next exchange (the shed request
  // itself is never replayed — see below).
  if (deferred_backoff_ms_ > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(deferred_backoff_ms_));
    deferred_backoff_ms_ = 0;
  }
  // A checkout (or any non-checkin frame) is idempotent and may be
  // replayed; a checkin must hit the wire at most once (Remark 1 — the
  // server may already have applied it, and the device's privacy
  // accountant already charged the minibatch).
  const bool replayable =
      request.size() <= net::kFrameTypeOffset ||
      request[net::kFrameTypeOffset] !=
          static_cast<std::uint8_t>(net::MessageType::kCheckin);

  int hinted_ms = -1;   // server-supplied backoff for the next attempt
  int redirect_hops = 0;  // not-leader hops followed this exchange
  bool skip_backoff = false;  // a redirect replays immediately
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (attempt > 1) {
      ++retries_;
      if (counters_) ++counters_->retries;
      if (trace_)
        trace_->event("retry", {{"device", device_id_}, {"attempt", attempt}});
      if (skip_backoff) {
        skip_backoff = false;
      } else if (hinted_ms >= 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(hinted_ms));
        hinted_ms = -1;
      } else {
        backoff(attempt);
      }
    }
    if (!session_ || !session_->connected()) {
      if (!try_connect()) {
        // A redirect target that never answers must not strand the
        // device: fall back to home, whose next leader will redirect us
        // correctly again.
        if (host_ != home_host_ || port_ != home_port_) {
          host_ = home_host_;
          port_ = home_port_;
          if (trace_)
            trace_->event("redirect_fallback_home", {{"device", device_id_}});
        }
        continue;
      }
    }
    if (!replayable) ++checkin_sends_;
    auto reply = session_->exchange(request);
    if (reply) {
      // Follow "not leader" before anything else: the nack was issued
      // before application, so replaying there is safe for every frame
      // type, checkins included.
      if (const auto leader = redirect_target(*reply)) {
        const auto hp = net::split_host_port(*leader);
        if (hp && redirect_hops < policy_.max_redirect_hops) {
          ++redirect_hops;
          ++redirects_followed_;
          if (counters_) ++counters_->redirects_followed;
          if (trace_)
            trace_->event("redirect_followed",
                          {{"device", device_id_}, {"leader", *leader}});
          host_ = hp->first;
          port_ = hp->second;
          session_->close();
          session_.reset();
          skip_backoff = true;
          continue;
        }
        return reply;  // hop cap hit or unparseable: surface the nack
      }
      const int hint = shed_hint(*reply);
      if (hint < 0) {
        // Success (or a nack with no shed hint). A pace-steering hint on
        // a success frame is NOT a failure: it never consumes an attempt
        // and never triggers backoff jitter — the server is scheduling
        // our *next* exchange, not rejecting this one. An ok-ack's hint
        // is the slot the coordinator reserved for us, so honor it as
        // the pre-exchange delay; a params frame's hint is advisory only
        // (the same cycle's checkin ack carries the binding one —
        // sleeping on both would pace one cycle twice).
        const int pace = pace_hint(*reply);
        if (pace > 0) {
          last_pace_hint_ms_ = pace;
          if ((*reply)[net::kFrameTypeOffset] ==
              static_cast<std::uint8_t>(net::MessageType::kAck)) {
            deferred_backoff_ms_ = std::max(deferred_backoff_ms_, pace);
            ++pace_hints_honored_;
            if (counters_) ++counters_->pace_hints_honored;
            if (trace_)
              trace_->event("pace_hint",
                            {{"device", device_id_}, {"delay_ms", pace}});
          }
        }
        return reply;
      }
      // The server shed this request and told us when to come back.
      ++retry_after_honored_;
      if (counters_) ++counters_->retry_after_honored;
      if (trace_)
        trace_->event("retry_after",
                      {{"device", device_id_}, {"delay_ms", hint}});
      if (!replayable) {
        // Never replay a checkin — honor the hint before the next cycle.
        deferred_backoff_ms_ = hint;
        return reply;
      }
      hinted_ms = hint;
      continue;
    }
    if (session_->last_error() == net::NetError::kTimeout) {
      ++timeouts_;
      if (counters_) ++counters_->timeouts;
      if (trace_) trace_->event("timeout", {{"device", device_id_}});
    }
    session_->close();
    if (!replayable) {
      ++checkins_abandoned_;
      if (counters_) ++counters_->checkins_abandoned;
      if (trace_) trace_->event("checkin_abandoned", {{"device", device_id_}});
      return std::nullopt;  // abandoned, never replayed
    }
  }
  return std::nullopt;
}

DeviceClient::Exchange ReconnectingDeviceSession::as_exchange() {
  return [this](const net::Bytes& req) { return exchange(req); };
}

}  // namespace crowdml::core
