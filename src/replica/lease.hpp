// Leader leases: the follower-side record of "the leader was alive and
// leading epoch E as of time T, for lease_ms". A lease is renewed by any
// authenticated leader frame (heartbeats in the steady state, appends and
// snapshots while catching up) and is never revoked explicitly — silence
// is the only failure signal, which is what makes the failover window a
// pure function of the timing parameters (docs/REPLICATION.md "Automatic
// failover semantics").
//
// Thread-safe: the replication thread renews while the main thread (or a
// test) polls held()/remaining_ms().
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace crowdml::replica {

class Lease {
 public:
  using Clock = std::chrono::steady_clock;

  /// Record a grant from the leader of `epoch`: alive for `lease_ms`
  /// from `now`, committed through `committed_seq`. Grants from an epoch
  /// below the last one seen are ignored (a deposed leader's straggler
  /// heartbeat must not extend its own lease); a deadline is never moved
  /// backwards.
  void renew(std::uint64_t epoch, std::uint64_t committed_seq,
             std::uint32_t lease_ms, Clock::time_point now = Clock::now());

  /// True when a grant exists and has not expired at `now`.
  bool held(Clock::time_point now = Clock::now()) const;

  /// True when a grant existed and its deadline has passed — the signal
  /// the failure detector turns into an election. Never true before the
  /// first grant: a follower that has not yet reached its leader has
  /// nothing to detect the failure of (the detector's own arm() deadline
  /// covers that window).
  bool expired(Clock::time_point now = Clock::now()) const;

  /// Milliseconds of lease left (0 when expired or never granted).
  long long remaining_ms(Clock::time_point now = Clock::now()) const;

  /// Epoch / committed watermark of the most recent grant (0 when none).
  std::uint64_t epoch() const;
  std::uint64_t committed_seq() const;

 private:
  mutable std::mutex mu_;
  bool granted_ = false;
  Clock::time_point deadline_{};
  std::uint64_t epoch_ = 0;
  std::uint64_t committed_seq_ = 0;
};

}  // namespace crowdml::replica
