#include "privacy/budget.hpp"

#include <cassert>
#include <cmath>

namespace crowdml::privacy {

double epsilon_from_inverse(double eps_inverse) {
  assert(eps_inverse >= 0.0);
  return eps_inverse == 0.0 ? kNoPrivacy : 1.0 / eps_inverse;
}

PrivacyBudget PrivacyBudget::gradient_dominated(double eps_gradient,
                                                double counter_fraction) {
  assert(eps_gradient > 0.0 && counter_fraction > 0.0);
  PrivacyBudget b;
  b.eps_gradient = eps_gradient;
  if (std::isinf(eps_gradient)) return b;
  b.eps_error = eps_gradient * counter_fraction;
  b.eps_label = eps_gradient * counter_fraction;
  return b;
}

PrivacyBudget PrivacyBudget::gaussian(double eps_gradient, double delta,
                                      double counter_fraction) {
  assert(delta > 0.0 && delta < 1.0);
  PrivacyBudget b = gradient_dominated(eps_gradient, counter_fraction);
  b.mechanism = NoiseMechanism::kGaussian;
  b.delta = delta;
  return b;
}

double PrivacyBudget::per_sample_epsilon(std::size_t num_classes) const {
  return eps_gradient + eps_error + static_cast<double>(num_classes) * eps_label;
}

bool PrivacyBudget::is_private() const {
  return !std::isinf(eps_gradient) || !std::isinf(eps_error) ||
         !std::isinf(eps_label);
}

}  // namespace crowdml::privacy
