#include "coord/coordinator.hpp"

#include <algorithm>

namespace crowdml::coord {

namespace {
obs::MetricsRegistry& registry_of(const CoordConfig& config) {
  return config.metrics ? *config.metrics : obs::default_registry();
}
}  // namespace

Coordinator::Coordinator(CoordConfig config, DeviceClassTable classes)
    : steering_(config.steering, std::move(classes)),
      checkout_hints_(registry_of(config).counter(
          "crowdml_coord_checkout_hints_total",
          "Advisory pace-steering hints attached to checkout responses",
          obs::Provenance::kTransportEvent)),
      checkin_hints_(registry_of(config).counter(
          "crowdml_coord_checkin_hints_total",
          "Consuming pace-steering hints attached to checkin acks (each "
          "reserves its class's next arrival slot)",
          obs::Provenance::kTransportEvent)),
      steered_sheds_(registry_of(config).counter(
          "crowdml_coord_steered_sheds_total",
          "Checkins shed despite steering; their retry hints reserved "
          "paced slots",
          obs::Provenance::kTransportEvent)),
      target_rate_(registry_of(config).gauge(
          "crowdml_coord_target_rate_per_s",
          "Steered checkin arrival-rate target (service rate x "
          "utilization x queue-headroom throttle)",
          obs::Provenance::kTransportEvent)),
      service_rate_(registry_of(config).gauge(
          "crowdml_coord_service_rate_per_s",
          "EWMA applier throughput, records / (apply + commit seconds)",
          obs::Provenance::kTiming)),
      pressure_(registry_of(config).gauge(
          "crowdml_coord_pressure",
          "Queue-fill overload signal in [0, 1]; 1 = throttle floor",
          obs::Provenance::kTransportEvent)),
      hint_ms_(registry_of(config).histogram(
          "crowdml_coord_hint_ms", "Issued next_checkin_hint_ms values",
          obs::Provenance::kTransportEvent,
          obs::exponential_bounds(1.0, 2.0, 16))) {}

std::uint32_t Coordinator::checkout_hint_ms(std::uint8_t class_id) {
  const std::uint32_t hint = steering_.peek_hint_ms(class_id);
  ++checkout_hints_;
  hint_ms_.observe(static_cast<double>(hint));
  return hint;
}

std::uint32_t Coordinator::checkin_hint_ms(std::uint8_t class_id) {
  const std::uint32_t hint = steering_.next_hint_ms(class_id);
  ++checkin_hints_;
  hint_ms_.observe(static_cast<double>(hint));
  return hint;
}

int Coordinator::shed_retry_after_ms(std::uint8_t class_id, int fallback_ms) {
  const std::uint32_t slot = steering_.next_hint_ms(class_id);
  ++steered_sheds_;
  // parse_retry_after rejects hints past an hour; steering's max_hint_ms
  // is already far below that, so the max() below stays parseable.
  return std::max(fallback_ms, static_cast<int>(slot));
}

void Coordinator::observe_commit(std::size_t records, double apply_seconds,
                                 double commit_seconds) {
  steering_.observe_commit(records, apply_seconds, commit_seconds);
  target_rate_.set(steering_.target_rate_per_s());
  service_rate_.set(steering_.service_rate_per_s());
  pressure_.set(steering_.pressure());
}

void Coordinator::observe_queue_depth(std::size_t depth) {
  steering_.observe_depth(depth);
}

}  // namespace crowdml::coord
