// Cross-shard model merging: fixed-point count-weighted averaging and
// the WAL record a merge leaves behind (docs/SHARDING.md).
//
// The merge is the paper's staleness story applied horizontally: each
// shard trains on its own slice of the fleet, and every merge cadence
// the director replaces all shard models with the checkin-count-
// weighted average — a delayed (stale) update whose convergence cost
// PAPER.md §IV already prices. The average is computed entirely in
// fixed-point integer arithmetic (secagg::quantize's 2^-20 grid,
// __int128 accumulators) so it is exactly deterministic: every replica
// of the computation — live, WAL replay, a replication follower —
// produces the same bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "net/messages.hpp"
#include "store/durable_store.hpp"

namespace crowdml::shard {

/// Opaque-record kind for a merge (multimodel overwrites are kind 1).
inline constexpr std::uint32_t kMergeRecordKind = 2;

/// The merge on disk: a full parameter image inside the
/// store::kOpaqueRecordMagic envelope —
///
///   [u32 0xFFFFFFFF][u32 kind=2][u64 merge_round][u64 total_checkins][vector w]
///
/// — logged at the version the apply produced, so recovery replays it
/// through Server::overwrite_parameters exactly like the live path and
/// the WAL shipper replicates it to followers like any checkin.
struct MergeRecord {
  std::uint64_t merge_round = 0;
  std::uint64_t total_checkins = 0;
  linalg::Vector w;

  net::Bytes serialize() const;
  /// Throws net::CodecError on a malformed or non-merge payload.
  static MergeRecord deserialize(const net::Bytes& payload);
};

/// Install the merge-record replay handler on a store's options: opaque
/// WAL records deserialize as MergeRecords and apply via
/// Server::overwrite_parameters, leaving version == seq. Shared by a
/// shard leader's own store and its replication followers
/// (replica::FollowerOptions::store), so recovery and live apply agree.
void install_merge_replay(store::DurableStoreOptions& opts);

/// Quantize a parameter vector to the secagg fixed-point grid (element-
/// wise secagg::quantize; two's-complement u64s on the wire).
std::vector<std::uint64_t> quantize_params(const linalg::Vector& w);

/// Invert quantize_params.
linalg::Vector dequantize_params(const std::vector<std::uint64_t>& q);

/// Count-weighted average of shard models, in fixed point:
///
///   merged[d] = (sum_i checkins_i * q_i[d]) / (sum_i checkins_i)
///
/// with __int128 accumulators and C++ truncating division — exactly
/// reproducible on every caller. Shards reporting zero checkins
/// contribute no weight (their model is about to be replaced by the
/// push anyway). Returns nullopt when the models disagree on dimension
/// or every shard reports zero checkins (nothing to merge; the
/// director skips the cycle).
std::optional<std::vector<std::uint64_t>> merge_models(
    const std::vector<net::ShardModelMessage>& models);

/// Sum of the models' checkin weights (the push's total_checkins).
std::uint64_t total_checkins(const std::vector<net::ShardModelMessage>& models);

}  // namespace crowdml::shard
