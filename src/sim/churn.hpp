// Device availability (churn) model.
//
// "Devices can join or leave the task at any time" (Fig. 2 caption).
// Each device alternates online/offline periods with exponential
// durations; a device that is offline neither collects samples nor
// communicates. The Section V experiments run churn-free; the integration
// tests exercise learning under churn.
#pragma once

#include "rng/engine.hpp"

namespace crowdml::sim {

class ChurnModel {
 public:
  /// mean_online / mean_offline in seconds; initial state online with
  /// probability mean_online / (mean_online + mean_offline).
  /// mean_offline == 0 disables churn (always online).
  ChurnModel(double mean_online_s, double mean_offline_s);

  /// Always-online model.
  ChurnModel();

  bool enabled() const { return mean_offline_s_ > 0.0; }

  struct State {
    bool online = true;
    double until = 0.0;  // sim time when the current period ends
  };

  State initial_state(rng::Engine& eng) const;
  State next_state(const State& current, rng::Engine& eng) const;

  /// Is the device online at time t, advancing `state` as needed?
  bool online_at(double t, State& state, rng::Engine& eng) const;

 private:
  double mean_online_s_;
  double mean_offline_s_;
};

}  // namespace crowdml::sim
