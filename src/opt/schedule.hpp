// Learning-rate schedules eta(t).
//
// The paper's default is eta(t) = c / sqrt(t) (Eq. 5); Remark 3 notes that
// adaptive rates can be substituted without affecting the privacy guarantee
// (the noise is added on-device, before the server-side update), so we also
// ship constant and 1/t schedules plus AdaGrad in updater.hpp.
#pragma once

#include <memory>

namespace crowdml::opt {

class LearningRateSchedule {
 public:
  virtual ~LearningRateSchedule() = default;
  /// Rate for iteration t (1-based).
  virtual double rate(long long t) const = 0;
  virtual std::unique_ptr<LearningRateSchedule> clone() const = 0;
};

/// eta(t) = c / sqrt(t) — Eq. (5).
class SqrtDecaySchedule final : public LearningRateSchedule {
 public:
  explicit SqrtDecaySchedule(double c);
  double rate(long long t) const override;
  std::unique_ptr<LearningRateSchedule> clone() const override;

 private:
  double c_;
};

/// eta(t) = c.
class ConstantSchedule final : public LearningRateSchedule {
 public:
  explicit ConstantSchedule(double c);
  double rate(long long t) const override;
  std::unique_ptr<LearningRateSchedule> clone() const override;

 private:
  double c_;
};

/// eta(t) = c / (t0 + t) — the classic Robbins-Monro rate for strongly
/// convex risks.
class InverseTSchedule final : public LearningRateSchedule {
 public:
  explicit InverseTSchedule(double c, double t0 = 0.0);
  double rate(long long t) const override;
  std::unique_ptr<LearningRateSchedule> clone() const override;

 private:
  double c_;
  double t0_;
};

}  // namespace crowdml::opt
