// Follower side of WAL shipping: connects to the leader's replication
// port, announces its durable position, and applies every shipped record
// through the same deterministic Server::handle_checkin path recovery
// uses — so leader and follower are byte-identical at equal log offsets
// (state, WAL bytes, and encoded parameter frames alike). Applied
// records are appended to the follower's own WAL and fsynced before the
// ack goes back: a ReplAck is a durability claim, which is what lets a
// quorum leader promise acked => replicated.
//
// Epoch fencing: frames below the follower's promised epoch are refused
// and the connection dropped (a deposed leader cannot feed us); frames
// above it are adopted — durably, via EpochStore, *before* any record of
// the new term is applied. See docs/REPLICATION.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/server.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "replica/epoch.hpp"
#include "store/durable_store.hpp"

namespace crowdml::replica {

struct FollowerOptions {
  std::string leader_host = "127.0.0.1";
  std::uint16_t leader_port = 0;
  std::uint64_t follower_id = 0;
  store::DurableStoreOptions store;
  /// Directory for the epoch register; "" = the store directory.
  std::string epoch_dir;
  int reconnect_backoff_ms = 200;
  int reconnect_backoff_max_ms = 2000;
  int io_deadline_ms = 10'000;
  int connect_timeout_ms = 2000;
  /// Called (from the replication thread) after each applied batch or
  /// installed snapshot — the serving engine republishes its snapshot
  /// board here so checkouts see the new parameters.
  std::function<void()> on_applied;
  obs::MetricsRegistry* metrics = nullptr;  ///< null = default_registry()
  obs::TraceSink* trace = nullptr;          ///< null disables
};

class Follower {
 public:
  /// Builds the durable store in `dir`, recovers `server` from it, and
  /// loads the promised epoch — but does not connect until start().
  /// Throws (WalError, EpochError) on unrecoverable local state.
  Follower(core::Server& server, std::string dir, FollowerOptions options);
  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  void start();
  void shutdown();

  std::uint64_t epoch() const { return epoch_.load(); }
  /// Highest WAL seq applied to the server (== the server's iteration).
  std::uint64_t applied_seq() const { return server_.version(); }
  bool connected() const { return connected_.load(); }
  /// A local divergence or disk failure stopped replication; the process
  /// must be restarted (recovery re-derives a consistent state).
  bool fatal() const { return fatal_.load(); }
  long long stale_frames_refused() const {
    return stale_frames_refused_.value();
  }
  long long snapshots_installed() const {
    return snapshots_installed_.value();
  }
  long long records_applied() const { return records_applied_.value(); }

  /// Compact the replica's store (snapshot + prune shipped history),
  /// from any thread; excluded against a concurrent snapshot install.
  /// False when compaction failed (the WAL stays intact).
  bool compact();

  /// The replica's store. Unsynchronized: only safe while the follower
  /// is not running (before start() / after shutdown()); while running,
  /// use compact() and the counters instead.
  store::DurableStore& store() { return *store_; }
  const store::DurableStore::RecoveryInfo& recovery_info() const {
    return recovery_;
  }

 private:
  void run();
  bool serve_connection(net::TcpConnection& conn);
  /// Apply one shipped batch; false => fatal_ was set.
  bool apply_records(const std::vector<net::ReplRecord>& records);
  bool install_snapshot(const net::ReplSnapshotMessage& snap);
  /// Highest seq this follower holds durably (what hello and acks claim).
  std::uint64_t durable_position() const;
  /// Adopt a frame's epoch: refuse stale (returns false, caller drops the
  /// connection), durably store newer before proceeding.
  bool accept_epoch(std::uint64_t frame_epoch);
  void set_fatal(const std::string& reason);

  core::Server& server_;
  std::string dir_;
  FollowerOptions opts_;
  EpochStore epoch_store_;
  std::unique_ptr<store::DurableStore> store_;
  store::DurableStore::RecoveryInfo recovery_;

  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> connected_{false};
  std::atomic<bool> fatal_{false};
  std::atomic<std::uint64_t> epoch_{0};

  std::mutex conn_mu_;
  net::TcpConnection* live_conn_ = nullptr;

  /// Serializes store_ replacement (snapshot install) against compact().
  std::mutex store_mu_;

  obs::Counter& records_applied_;
  obs::Counter& stale_frames_refused_;
  obs::Counter& snapshots_installed_;
  obs::Counter& reconnects_;
  obs::Gauge& epoch_gauge_;
  obs::Histogram& apply_seconds_;
};

}  // namespace crowdml::replica
