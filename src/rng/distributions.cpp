#include "rng/distributions.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>

namespace crowdml::rng {

double uniform(Engine& eng, double lo, double hi) {
  // 53-bit mantissa in [0, 1).
  const double u = static_cast<double>(eng() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

std::uint64_t uniform_index(Engine& eng, std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % n;
  std::uint64_t v;
  do {
    v = eng();
  } while (v >= limit);
  return v % n;
}

double normal(Engine& eng, double mean, double stddev) {
  double u1;
  do {
    u1 = uniform(eng);
  } while (u1 <= 0.0);
  const double u2 = uniform(eng);
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double exponential(Engine& eng, double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = uniform(eng);
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double laplace(Engine& eng, double scale) {
  assert(scale >= 0.0);
  if (scale == 0.0) return 0.0;
  const double u = uniform(eng, -0.5, 0.5);
  const double sign = u < 0.0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

namespace {
/// Geometric on {0,1,2,...} with success probability 1-p via inversion.
long long geometric(Engine& eng, double p) {
  if (p <= 0.0) return 0;
  double u;
  do {
    u = uniform(eng);
  } while (u <= 0.0);
  return static_cast<long long>(std::floor(std::log(u) / std::log(p)));
}
}  // namespace

long long discrete_laplace(Engine& eng, double alpha) {
  assert(alpha > 0.0);
  if (std::isinf(alpha)) return 0;
  const double p = std::exp(-alpha);
  return geometric(eng, p) - geometric(eng, p);
}

std::size_t categorical(Engine& eng, const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = uniform(eng, 0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: return last positive bucket
}

std::vector<std::size_t> shuffled_indices(Engine& eng, std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(eng, i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace crowdml::rng
