#include "privacy/accountant.hpp"

#include <cassert>

namespace crowdml::privacy {

PrivacyAccountant::PrivacyAccountant(PrivacyBudget budget, std::size_t num_classes)
    : budget_(budget), num_classes_(num_classes) {
  assert(num_classes >= 1);
}

void PrivacyAccountant::record_checkin(std::size_t batch_samples) {
  assert(batch_samples > 0);
  ++checkins_;
  samples_released_ += static_cast<long long>(batch_samples);
}

double PrivacyAccountant::per_sample_epsilon() const {
  return budget_.per_sample_epsilon(num_classes_);
}

double PrivacyAccountant::sequential_epsilon() const {
  return per_sample_epsilon() * static_cast<double>(checkins_);
}

}  // namespace crowdml::privacy
