// Reproduces Fig. 6 of the paper (see bench/figures.hpp for the driver).
#include "bench/figures.hpp"

int main() {
  return bench::delay_figure(bench::DatasetKind::kMnistLike, "Figure 6");
}
