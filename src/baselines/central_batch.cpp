#include "baselines/central_batch.hpp"

#include <cassert>

#include "privacy/mechanisms.hpp"

namespace crowdml::baselines {

BatchTrainResult train_central_batch(const models::Model& model,
                                     const models::SampleSet& train,
                                     const models::SampleSet& test,
                                     const BatchTrainerConfig& config) {
  assert(!train.empty());
  const std::size_t dim = model.param_dim();
  linalg::Vector w(dim, 0.0);
  linalg::Vector velocity(dim, 0.0);
  const double inv_n = 1.0 / static_cast<double>(train.size());

  for (long long it = 0; it < config.iterations; ++it) {
    linalg::Vector g(dim, 0.0);
    for (const models::Sample& s : train) model.add_loss_gradient(w, s, g);
    linalg::scal(inv_n, g);
    model.add_regularization_gradient(w, g);
    for (std::size_t i = 0; i < dim; ++i) {
      velocity[i] = config.momentum * velocity[i] - config.learning_rate * g[i];
      w[i] += velocity[i];
    }
    linalg::project_l2_ball(w, config.projection_radius);
  }

  BatchTrainResult result;
  result.final_train_risk = model.regularized_risk(w, train);
  if (!test.empty() && model.is_classifier())
    result.final_test_error = model.error_rate(w, test);
  result.w = std::move(w);
  return result;
}

models::SampleSet perturb_dataset(const models::SampleSet& samples,
                                  std::size_t num_classes, double eps_x,
                                  double eps_y, rng::Engine& eng) {
  models::SampleSet out;
  out.reserve(samples.size());
  for (const models::Sample& s : samples) {
    models::Sample p;
    p.x = privacy::perturb_features(eng, s.x, eps_x);
    p.y = static_cast<double>(
        privacy::perturb_label(eng, s.label(), num_classes, eps_y));
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace crowdml::baselines
