// Follower side of WAL shipping: connects to the leader's replication
// port, announces its durable position, and applies every shipped record
// through the same deterministic Server::handle_checkin path recovery
// uses — so leader and follower are byte-identical at equal log offsets
// (state, WAL bytes, and encoded parameter frames alike). Applied
// records are appended to the follower's own WAL and fsynced before the
// ack goes back: a ReplAck is a durability claim, which is what lets a
// quorum leader promise acked => replicated.
//
// Epoch fencing: frames below the follower's promised epoch are refused
// and the connection dropped (a deposed leader cannot feed us); frames
// above it are adopted — durably, via EpochStore, *before* any record of
// the new term is applied. See docs/REPLICATION.md.
//
// Automatic failover: when a FailureDetectorConfig is enabled the
// follower also runs a failure detector fed by the leader's lease
// heartbeats, a vote listener (so it can be an elector in someone else's
// campaign), and — when its own detector fires — a candidacy. Winning
// sets promoted(); the process's main loop then performs the
// leader-role handoff (new shipper on the freed vote port, engine
// redirect cleared). Granting a vote retargets this follower at the
// winner and severs the old leader session. All of it is zero-operator:
// the manual promote_on_start path remains only as a break-glass.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/server.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "replica/epoch.hpp"
#include "replica/failure_detector.hpp"
#include "replica/lease.hpp"
#include "store/durable_store.hpp"

namespace crowdml::replica {

struct FollowerOptions {
  std::string leader_host = "127.0.0.1";
  std::uint16_t leader_port = 0;
  std::uint64_t follower_id = 0;
  /// Multimodel pool instance this follower replicates (src/multimodel/;
  /// 0 = single-model). Announced in the hello and verified against
  /// every shipped batch, so crossed replication ports disconnect
  /// instead of feeding instance i's records into instance j's log.
  /// Replicating a pool also requires store.opaque_replay (the pool's
  /// overwrite-record handler): shipped streams carry overwrite records,
  /// which apply through that hook rather than handle_checkin.
  std::uint64_t instance_id = 0;
  store::DurableStoreOptions store;
  /// Directory for the epoch register; "" = the store directory.
  std::string epoch_dir;
  int reconnect_backoff_ms = 200;
  int reconnect_backoff_max_ms = 2000;
  int io_deadline_ms = 10'000;
  int connect_timeout_ms = 2000;
  /// Called (from the replication thread) after each applied batch or
  /// installed snapshot — the serving engine republishes its snapshot
  /// board here so checkouts see the new parameters.
  std::function<void()> on_applied;
  /// Failure detection / election. Disabled (min == 0) reproduces the
  /// manual-failover behavior exactly: no vote listener, no elections,
  /// recv blocks without a poll slice.
  FailureDetectorConfig detector;
  /// Vote listener port (0 = ephemeral). Only bound when the detector is
  /// enabled. After winning an election this port is freed and reused as
  /// the promoted node's replication port — which is exactly the
  /// repl_addr peers were told to reconnect to in the vote request.
  std::uint16_t vote_port = 0;
  /// Fellow followers' vote endpoints (the electorate, minus this node).
  std::vector<PeerAddr> peers;
  /// This node's device-facing host:port — advertised in vote requests
  /// so electors can repoint their checkin redirects at the winner.
  std::string device_addr;
  /// Host peers reach this node's vote/replication port on.
  std::string advertise_host = "127.0.0.1";
  /// Shared HMAC key for all Repl* frames (empty = unauthenticated).
  ReplKey key;
  /// Called (from the replication or vote thread) whenever the leader's
  /// device-facing address changes — wire the serving engine's
  /// set_checkin_redirect here so clients get redirected to the winner.
  std::function<void(const std::string&)> on_leader_changed;
  /// Recv poll slice while the detector is enabled: the replication
  /// thread wakes at least this often to check the election deadline
  /// even when the leader is silent.
  int heartbeat_poll_ms = 50;
  /// Seed for the detector's jitter draw (mixed with follower_id).
  std::uint64_t rng_seed = 0;
  obs::MetricsRegistry* metrics = nullptr;  ///< null = default_registry()
  obs::TraceSink* trace = nullptr;          ///< null disables
};

class Follower {
 public:
  /// Builds the durable store in `dir`, recovers `server` from it, and
  /// loads the promised epoch — but does not connect until start().
  /// Throws (WalError, EpochError) on unrecoverable local state.
  Follower(core::Server& server, std::string dir, FollowerOptions options);
  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  void start();
  void shutdown();

  std::uint64_t epoch() const { return epoch_.load(); }
  /// Highest epoch some leader actually spoke to this follower (what the
  /// hello advertises; see witnessed_epoch_ below).
  std::uint64_t witnessed_epoch() const { return witnessed_epoch_.load(); }
  /// Highest WAL seq applied to the server (== the server's iteration).
  std::uint64_t applied_seq() const { return server_.version(); }
  bool connected() const { return connected_.load(); }
  /// A local divergence or disk failure stopped replication; the process
  /// must be restarted (recovery re-derives a consistent state).
  bool fatal() const { return fatal_.load(); }
  /// This node won an election and must take over as leader. The
  /// replication thread has exited; the owner performs the handoff
  /// (shutdown(), rewire group commit, new shipper on vote_port(),
  /// republish, clear the redirect).
  bool promoted() const { return promoted_.load(); }
  /// The bound vote-listener port (0 when the detector is disabled).
  std::uint16_t vote_port() const;
  /// How far this replica's applied state trails the leader's committed
  /// watermark (records). Safe from any thread; feeds the engine's
  /// bounded-staleness checkout gate.
  std::uint64_t read_lag() const;
  /// Committed watermark from the most recent leader heartbeat.
  std::uint64_t leader_committed() const { return leader_committed_.load(); }
  const Lease& lease() const { return lease_; }
  long long stale_frames_refused() const {
    return stale_frames_refused_.value();
  }
  long long snapshots_installed() const {
    return snapshots_installed_.value();
  }
  long long records_applied() const { return records_applied_.value(); }
  long long lease_expirations() const { return lease_expirations_.value(); }
  long long elections_started() const { return elections_started_.value(); }
  long long elections_won() const { return elections_won_.value(); }
  long long elections_lost() const { return elections_lost_.value(); }
  long long auth_failures() const { return auth_failed_.value(); }

  /// Retarget the replication source (normally driven by granted votes;
  /// exposed for tests and manual repointing).
  void set_leader_address(const std::string& host, std::uint16_t port);

  /// Set the device-facing address advertised in this node's vote
  /// requests (known only once the serving engine binds). Must be called
  /// before start().
  void set_device_addr(const std::string& addr) { opts_.device_addr = addr; }

  /// Compact the replica's store (snapshot + prune shipped history),
  /// from any thread; excluded against a concurrent snapshot install.
  /// False when compaction failed (the WAL stays intact).
  bool compact();

  /// The replica's store. Unsynchronized: only safe while the follower
  /// is not running (before start() / after shutdown()); while running,
  /// use compact() and the counters instead.
  store::DurableStore& store() { return *store_; }
  const store::DurableStore::RecoveryInfo& recovery_info() const {
    return recovery_;
  }

 private:
  /// Why serve_connection returned: reconnect and keep following, stop
  /// on local corruption, or campaign (detector fired). kContinue is an
  /// internal handler outcome only (frame handled, keep the session).
  enum class ServeResult { kReconnect, kFatal, kElect, kContinue };

  void run();
  ServeResult serve_connection(net::TcpConnection& conn);
  /// Apply one shipped batch; false => fatal_ was set.
  bool apply_records(const std::vector<net::ReplRecord>& records);
  bool install_snapshot(std::uint64_t version, const net::Bytes& checkpoint);
  /// One kReplSnapshot chunk: buffer (or install when complete).
  /// kReconnect on reassembly desync, kFatal on install failure.
  ServeResult handle_snapshot_chunk(const net::ReplSnapshotMessage& snap);
  /// Highest seq this follower holds durably (what hello and acks claim).
  std::uint64_t durable_position() const;
  std::uint64_t durable_position_locked() const;
  /// Adopt a frame's epoch: refuse stale (returns false, caller drops the
  /// connection), durably store newer before proceeding.
  bool accept_epoch(std::uint64_t frame_epoch);
  /// Best-effort reply sent before dropping a connection whose frame was
  /// refused as stale: a ReplAck carrying the promised epoch, so a
  /// deposed leader that can still reach us fences itself and steps down
  /// instead of heartbeating old-epoch leases forever.
  void send_refusal_ack(net::TcpConnection& conn);
  /// Vote-listener handler: grant iff the candidate's term is news and
  /// its log is at least as long as ours; a grant durably bumps the
  /// promised epoch, retargets replication at the winner, and severs the
  /// old leader session.
  net::ReplVoteMessage grant_vote(const net::ReplVoteMessage& req);
  /// The detector fired: durably self-promise epoch+1 and campaign.
  void try_elect();
  void set_fatal(const std::string& reason);

  core::Server& server_;
  std::string dir_;
  FollowerOptions opts_;
  EpochStore epoch_store_;
  /// Separate durable register for the witnessed epoch (file
  /// "witnessed-epoch" beside the promised one). Kept apart so a restart
  /// cannot conflate a failed candidacy's promise with proof of a leader:
  /// reloading the promise as the witness would make the hello fence a
  /// perfectly live leader. Invariant: witnessed register <= promised
  /// register (a witness is always adopted as a promise first).
  EpochStore witnessed_store_;
  std::unique_ptr<store::DurableStore> store_;
  store::DurableStore::RecoveryInfo recovery_;

  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> connected_{false};
  std::atomic<bool> fatal_{false};
  std::atomic<bool> promoted_{false};
  std::atomic<std::uint64_t> epoch_{0};
  /// Highest epoch a leader has demonstrably *led* — the epoch of some
  /// frame this follower accepted (reloaded from witnessed_store_ at
  /// startup). The hello advertises this, not epoch_: a failed candidacy
  /// inflates the promised epoch, and advertising that — live or after a
  /// restart — would let one starved follower fence a perfectly live
  /// leader (the pre-vote disruption). Invariant: witnessed_epoch_ <=
  /// epoch_.
  std::atomic<std::uint64_t> witnessed_epoch_{0};
  std::atomic<std::uint64_t> leader_committed_{0};

  std::mutex conn_mu_;
  net::TcpConnection* live_conn_ = nullptr;

  /// Serializes store_ replacement (snapshot install) against compact()
  /// and against the vote thread reading durable_position().
  mutable std::mutex store_mu_;

  /// Serializes EpochStore writes: the vote thread (grants) and the
  /// replication thread (adoptions, candidacies) both bump it durably.
  std::mutex epoch_mu_;

  /// Current replication source; granted votes repoint it at the winner.
  std::mutex leader_mu_;
  std::string leader_host_;
  std::uint16_t leader_port_ = 0;
  std::string last_leader_device_addr_;

  Lease lease_;
  FailureDetector detector_;
  /// Nonce draws for this node's own campaigns (replication thread only).
  rng::Engine nonce_rng_;
  std::unique_ptr<VoteListener> votes_;

  /// Chunked-snapshot reassembly buffer (replication thread only). The
  /// hello's resume fields come from here so an interrupted transfer
  /// restarts at the first missing byte, not byte zero.
  std::uint64_t pending_snap_version_ = 0;
  std::uint64_t pending_snap_total_ = 0;
  net::Bytes pending_snap_;

  obs::Counter& records_applied_;
  obs::Counter& stale_frames_refused_;
  obs::Counter& snapshots_installed_;
  obs::Counter& reconnects_;
  obs::Counter& lease_expirations_;
  obs::Counter& elections_started_;
  obs::Counter& elections_won_;
  obs::Counter& elections_lost_;
  obs::Counter& auth_failed_;
  obs::Gauge& epoch_gauge_;
  obs::Histogram& apply_seconds_;
};

}  // namespace crowdml::replica
