// Tests for the CLI flag parser used by the tools.
#include <gtest/gtest.h>

#include "tools/flags.hpp"

using crowdml::tools::Flags;

namespace {

Flags parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

}  // namespace

TEST(Flags, EqualsForm) {
  const Flags f = parse({"--port=9000", "--host=localhost"});
  EXPECT_EQ(f.get_int("port", 0), 9000);
  EXPECT_EQ(f.get("host", ""), "localhost");
}

TEST(Flags, SpaceForm) {
  const Flags f = parse({"--port", "9000", "--lr", "0.5"});
  EXPECT_EQ(f.get_int("port", 0), 9000);
  EXPECT_DOUBLE_EQ(f.get_double("lr", 0.0), 0.5);
}

TEST(Flags, BareBoolean) {
  const Flags f = parse({"--verbose", "--port", "1"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_FALSE(f.get_bool("quiet"));
}

TEST(Flags, BooleanValues) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x"));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x"));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x"));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
}

TEST(Flags, Fallbacks) {
  const Flags f = parse({});
  EXPECT_EQ(f.get("missing", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
}

TEST(Flags, NegativeNumbersAsValues) {
  const Flags f = parse({"--target-error=-1.0", "--max-iterations=-1"});
  EXPECT_DOUBLE_EQ(f.get_double("target-error", 0.0), -1.0);
  EXPECT_EQ(f.get_int("max-iterations", 0), -1);
}

TEST(Flags, PositionalArgumentRejected) {
  EXPECT_THROW(parse({"oops"}), std::runtime_error);
}

TEST(Flags, LastValueWins) {
  const Flags f = parse({"--port=1", "--port=2"});
  EXPECT_EQ(f.get_int("port", 0), 2);
}

TEST(Flags, EmptyValueViaEquals) {
  const Flags f = parse({"--name="});
  EXPECT_TRUE(f.has("name"));
  EXPECT_EQ(f.get("name", "x"), "");
}

// --------------------------------------------- replication flag bundle

using crowdml::tools::ReplicaFlags;
using crowdml::tools::parse_replica_flags;

namespace {

ReplicaFlags replica(std::vector<std::string> args) {
  return parse_replica_flags(parse(std::move(args)));
}

}  // namespace

TEST(ReplicaFlags, LeaderDefaultsToNoReplication) {
  const ReplicaFlags r = replica({});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.role, "leader");
  EXPECT_FALSE(r.repl_enabled);
}

TEST(ReplicaFlags, LeaderQuorumSetup) {
  const ReplicaFlags r =
      replica({"--engine=epoll", "--wal-dir=wal", "--repl-ack=quorum",
               "--repl-followers=3", "--repl-port=7000"});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.repl_enabled);
  EXPECT_EQ(r.ack_mode, "quorum");
  EXPECT_EQ(r.followers, 3);
  EXPECT_EQ(r.repl_port, 7000);
}

TEST(ReplicaFlags, FollowerParsesLeaderAddr) {
  const ReplicaFlags r =
      replica({"--role=follower", "--leader-addr=10.1.2.3:9100",
               "--engine=epoll", "--wal-dir=replica"});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.leader_host, "10.1.2.3");
  EXPECT_EQ(r.leader_port, 9100);
  EXPECT_EQ(r.leader_addr, "10.1.2.3:9100");
}

TEST(ReplicaFlags, FollowerWithoutLeaderAddrRejected) {
  const ReplicaFlags r =
      replica({"--role=follower", "--engine=epoll", "--wal-dir=replica"});
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("--leader-addr"), std::string::npos) << r.error;
}

TEST(ReplicaFlags, FollowerLeaderAddrMalformedRejected) {
  for (const char* addr : {"nohost", "host:", ":9100", "host:0",
                           "host:65536", "host:abc", "host:-1"}) {
    const ReplicaFlags r =
        replica({"--role=follower", std::string("--leader-addr=") + addr,
                 "--engine=epoll", "--wal-dir=replica"});
    EXPECT_FALSE(r.error.empty()) << addr;
  }
  // IPv6-ish / multi-colon hosts split on the LAST colon.
  const ReplicaFlags r =
      replica({"--role=follower", "--leader-addr=fe80::1:9100",
               "--engine=epoll", "--wal-dir=replica"});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.leader_host, "fe80::1");
  EXPECT_EQ(r.leader_port, 9100);
}

TEST(ReplicaFlags, FollowerRequiresWalDirAndEpollEngine) {
  EXPECT_FALSE(replica({"--role=follower", "--leader-addr=h:1",
                        "--engine=epoll"})
                   .error.empty());
  EXPECT_FALSE(replica({"--role=follower", "--leader-addr=h:1",
                        "--wal-dir=replica"})
                   .error.empty());
  EXPECT_FALSE(replica({"--role=follower", "--leader-addr=h:1",
                        "--engine=threads", "--wal-dir=replica"})
                   .error.empty());
}

TEST(ReplicaFlags, FollowerRejectsLeaderOnlyFlags) {
  for (const char* flag : {"--repl-ack=async", "--repl-port=7000",
                           "--repl-followers=2", "--promote-on-start"}) {
    const ReplicaFlags r =
        replica({"--role=follower", "--leader-addr=h:1", "--engine=epoll",
                 "--wal-dir=replica", flag});
    EXPECT_FALSE(r.error.empty()) << flag;
  }
}

TEST(ReplicaFlags, LeaderRejectsLeaderAddr) {
  const ReplicaFlags r = replica({"--leader-addr=h:1"});
  EXPECT_FALSE(r.error.empty());
}

TEST(ReplicaFlags, ReplicationRequiresWalDirAndEpoll) {
  EXPECT_FALSE(replica({"--repl-ack=async", "--engine=epoll"}).error.empty());
  EXPECT_FALSE(
      replica({"--repl-ack=async", "--wal-dir=wal"}).error.empty());
  EXPECT_FALSE(replica({"--repl-ack=async", "--wal-dir=wal",
                        "--engine=threads"})
                   .error.empty());
}

TEST(ReplicaFlags, PromoteOnStartEnablesReplication) {
  const ReplicaFlags r =
      replica({"--promote-on-start", "--wal-dir=wal", "--engine=epoll"});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.repl_enabled);
  EXPECT_TRUE(r.promote_on_start);
}

TEST(ReplicaFlags, AdvertiseHostDefaultsAndValidation) {
  // Default suits single-host tests; multi-host deployments override it
  // so redirects and vote repl_addrs point somewhere reachable.
  EXPECT_EQ(replica({}).advertise_host, "127.0.0.1");
  const ReplicaFlags r =
      replica({"--advertise-host=10.0.0.7", "--repl-ack=async",
               "--wal-dir=wal", "--engine=epoll"});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.advertise_host, "10.0.0.7");

  // A bare host only: the advertised ports are the bound ones, so a
  // host:port here would silently double up.
  EXPECT_FALSE(replica({"--advertise-host=10.0.0.7:9100"}).error.empty());
  EXPECT_FALSE(replica({"--advertise-host="}).error.empty());

  // Valid for both roles.
  const ReplicaFlags f =
      replica({"--role=follower", "--leader-addr=h:1", "--engine=epoll",
               "--wal-dir=replica", "--advertise-host=replica-b"});
  EXPECT_TRUE(f.error.empty()) << f.error;
  EXPECT_EQ(f.advertise_host, "replica-b");
}

TEST(ReplicaFlags, UnknownRoleAndAckModeRejected) {
  EXPECT_FALSE(replica({"--role=observer"}).error.empty());
  EXPECT_FALSE(replica({"--repl-ack=sync", "--wal-dir=wal",
                        "--engine=epoll"})
                   .error.empty());
  EXPECT_FALSE(replica({"--repl-ack=quorum", "--repl-followers=0",
                        "--wal-dir=wal", "--engine=epoll"})
                   .error.empty());
}

// ------------------------------------------------------------ CoordFlags

namespace {

crowdml::tools::CoordFlags coordf(std::vector<std::string> args) {
  return crowdml::tools::parse_coord_flags(parse(std::move(args)));
}

}  // namespace

TEST(CoordFlags, DisabledByDefault) {
  const auto c = coordf({});
  EXPECT_TRUE(c.error.empty()) << c.error;
  EXPECT_FALSE(c.enabled);
  // Off means the default class table only.
  EXPECT_EQ(c.classes.size(), 1u);
}

TEST(CoordFlags, FullParse) {
  const auto c = coordf({"--coord-steering", "--engine=epoll",
                         "--coord-classes=fast:4,slow:2,flaky:1",
                         "--coord-target-utilization=0.8",
                         "--coord-min-hint-ms=10", "--coord-max-hint-ms=60000",
                         "--coord-init-rate=500"});
  ASSERT_TRUE(c.error.empty()) << c.error;
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.classes.size(), 4u);  // three declared + default
  EXPECT_DOUBLE_EQ(c.target_utilization, 0.8);
  EXPECT_EQ(c.min_hint_ms, 10);
  EXPECT_EQ(c.max_hint_ms, 60000);
  EXPECT_DOUBLE_EQ(c.init_rate, 500.0);
}

TEST(CoordFlags, CoordFlagsWithoutSteeringRejected) {
  EXPECT_FALSE(coordf({"--coord-classes=fast:1"}).error.empty());
  EXPECT_FALSE(coordf({"--coord-init-rate=100"}).error.empty());
  EXPECT_FALSE(coordf({"--coord-max-hint-ms=1000"}).error.empty());
}

TEST(CoordFlags, SteeringRequiresEpollLeader) {
  // Default engine is the thread-per-connection runtime: rejected.
  EXPECT_FALSE(coordf({"--coord-steering"}).error.empty());
  EXPECT_FALSE(
      coordf({"--coord-steering", "--engine=threads"}).error.empty());
  EXPECT_FALSE(coordf({"--coord-steering", "--engine=epoll",
                       "--role=follower"})
                   .error.empty());
  EXPECT_TRUE(
      coordf({"--coord-steering", "--engine=epoll"}).error.empty());
  // Pooled serving steers too: one coordinator per instance applier.
  EXPECT_TRUE(coordf({"--coord-steering", "--engine=epoll",
                      "--model-instances=4"})
                  .error.empty());
}

TEST(CoordFlags, MalformedClassSpecsRejected) {
  for (const char* spec :
       {"fast", "fast:0", "fast:-1", "fast:abc", "default:2", "a:1,a:2",
        "a:1,", "fa st:1"}) {
    const auto c = coordf({"--coord-steering", "--engine=epoll",
                           std::string("--coord-classes=") + spec});
    EXPECT_FALSE(c.error.empty()) << "accepted: " << spec;
    EXPECT_EQ(c.error.rfind("--coord-classes:", 0), 0u) << c.error;
  }
}

TEST(CoordFlags, NumericBoundsEnforced) {
  const std::vector<std::string> base = {"--coord-steering", "--engine=epoll"};
  auto with = [&](const std::string& extra) {
    auto args = base;
    args.push_back(extra);
    return coordf(args);
  };
  // Utilization is a fraction of measured capacity.
  EXPECT_FALSE(with("--coord-target-utilization=0").error.empty());
  EXPECT_FALSE(with("--coord-target-utilization=-0.5").error.empty());
  EXPECT_FALSE(with("--coord-target-utilization=1.5").error.empty());
  EXPECT_TRUE(with("--coord-target-utilization=1.0").error.empty());
  // Hints: >= 1ms, min <= max, max below the hour ceiling.
  EXPECT_FALSE(with("--coord-min-hint-ms=0").error.empty());
  EXPECT_FALSE(with("--coord-min-hint-ms=-5").error.empty());
  EXPECT_FALSE(with("--coord-max-hint-ms=1").error.empty());  // < min (5)
  EXPECT_FALSE(with("--coord-max-hint-ms=3600000").error.empty());
  // Rates must be positive.
  EXPECT_FALSE(with("--coord-init-rate=0").error.empty());
  EXPECT_FALSE(with("--coord-init-rate=-100").error.empty());
  // Malformed numerics are an error, not a silent default.
  EXPECT_FALSE(with("--coord-init-rate=fast").error.empty());
  EXPECT_FALSE(with("--coord-min-hint-ms=ten").error.empty());
}
