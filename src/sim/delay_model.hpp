// Communication-delay and message-loss models (Section IV-B3).
//
// The paper samples each delay leg (request / check-out / check-in)
// "randomly and uniformly from [0, tau]" — UniformDelay. Zero, fixed, and
// exponential variants support the tests and extensions ("we can test with
// any distribution other than uniform as well", footnote 7).
#pragma once

#include <memory>

#include "rng/engine.hpp"

namespace crowdml::sim {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// One delay draw in seconds (>= 0).
  virtual double sample(rng::Engine& eng) const = 0;
  /// Upper bound if one exists (used for the paper's Delta unit); -1 if
  /// unbounded.
  virtual double max_delay() const = 0;
  virtual std::unique_ptr<DelayModel> clone() const = 0;
};

class ZeroDelay final : public DelayModel {
 public:
  double sample(rng::Engine&) const override { return 0.0; }
  double max_delay() const override { return 0.0; }
  std::unique_ptr<DelayModel> clone() const override {
    return std::make_unique<ZeroDelay>();
  }
};

class UniformDelay final : public DelayModel {
 public:
  explicit UniformDelay(double tau);
  double sample(rng::Engine& eng) const override;
  double max_delay() const override { return tau_; }
  std::unique_ptr<DelayModel> clone() const override {
    return std::make_unique<UniformDelay>(tau_);
  }

 private:
  double tau_;
};

class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(double delay);
  double sample(rng::Engine&) const override { return delay_; }
  double max_delay() const override { return delay_; }
  std::unique_ptr<DelayModel> clone() const override {
    return std::make_unique<FixedDelay>(delay_);
  }

 private:
  double delay_;
};

class ExponentialDelay final : public DelayModel {
 public:
  explicit ExponentialDelay(double mean);
  double sample(rng::Engine& eng) const override;
  double max_delay() const override { return -1.0; }
  std::unique_ptr<DelayModel> clone() const override {
    return std::make_unique<ExponentialDelay>(mean_);
  }

 private:
  double mean_;
};

/// Bernoulli message loss.
class LossModel {
 public:
  explicit LossModel(double probability = 0.0);
  bool drop(rng::Engine& eng) const;
  double probability() const { return probability_; }

 private:
  double probability_;
};

}  // namespace crowdml::sim
