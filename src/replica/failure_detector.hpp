// Failure detection and leader election for automatic failover.
//
// Detection: each follower arms a jittered deadline drawn uniformly from
// [election_timeout_min_ms, election_timeout_max_ms]; any authenticated
// leader frame re-arms it with a fresh draw. The jitter keeps detectors
// from firing in lockstep, so elections rarely collide even when every
// follower loses the same leader at the same instant.
//
// Election: a candidate that saw its deadline pass durably promises
// epoch+1 to itself (EpochStore — "durable before solicited"), then asks
// every peer follower for a vote. A peer grants iff the proposed epoch
// exceeds the highest it has promised AND the candidate's durable log is
// at least as long as its own; the grant is itself a durable epoch bump,
// so each epoch elects at most one winner. A majority of the electorate
// (the followers; see election_majority) always intersects the quorum
// that acked any committed checkin, so the winner holds every acked
// record — the safety argument in docs/REPLICATION.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "replica/repl_session.hpp"
#include "rng/engine.hpp"

namespace crowdml::replica {

struct FailureDetectorConfig {
  /// 0 disables detection entirely (the pre-failover manual mode).
  int election_timeout_min_ms = 0;
  /// 0 = 2 * min. Must be >= min when both are set.
  int election_timeout_max_ms = 0;
};

/// The per-follower missed-heartbeat deadline. Thread-safe: the
/// replication thread observes, any thread may poll due().
class FailureDetector {
 public:
  using Clock = std::chrono::steady_clock;

  FailureDetector(FailureDetectorConfig cfg, rng::Engine rng);

  bool enabled() const { return cfg_.election_timeout_min_ms > 0; }

  /// (Re)start the deadline with a fresh jittered timeout. Called at
  /// startup (a leader that never appears is as dead as one that
  /// crashed) and after a lost election (so the next try de-synchronizes
  /// from the collider's).
  void arm(Clock::time_point now = Clock::now());

  /// Leader liveness observed (heartbeat / append / snapshot): push the
  /// deadline out by a fresh jittered timeout.
  void observe(Clock::time_point now = Clock::now());

  /// Deadline passed with no liveness in between — time to campaign.
  /// Always false when disabled.
  bool due(Clock::time_point now = Clock::now()) const;

  /// The jittered timeout of the current arming (ms); 0 before arm().
  int current_timeout_ms() const;

 private:
  int draw_timeout_ms();

  FailureDetectorConfig cfg_;
  rng::Engine rng_;
  mutable std::mutex mu_;
  bool armed_ = false;
  int timeout_ms_ = 0;
  Clock::time_point deadline_{};
};

/// One fellow follower's vote endpoint.
struct PeerAddr {
  std::string host;
  std::uint16_t port = 0;
  std::string raw;  ///< the original host:port, for logs
};

/// Parse a comma-separated --peers list ("h1:p1,h2:p2"). On a malformed
/// entry returns the empty list and writes a reason to `error` when
/// non-null. An empty string parses to an empty list (single-follower
/// deployments: the electorate is just this node).
std::vector<PeerAddr> parse_peer_list(const std::string& csv,
                                      std::string* error = nullptr);

/// Votes needed to win over an electorate of `n` followers (candidate
/// included): floor(n/2) + 1. With quorum acks requiring
/// (followers+1)/2 durable followers, any majority of followers
/// intersects every ack quorum — see the header comment.
std::size_t election_majority(std::size_t electorate);

struct ElectionOptions {
  /// The proposed epoch. The caller must have durably promised it to
  /// itself (EpochStore) before calling run_election.
  std::uint64_t epoch = 0;
  std::uint64_t candidate_id = 0;
  std::uint64_t last_seq = 0;  ///< candidate's durable log position
  /// Fresh random value per campaign; voters echo it (sealed), and
  /// run_election only counts ballots that echo it back. See
  /// ReplVoteMessage::nonce.
  std::uint64_t nonce = 0;
  std::string device_addr;     ///< where devices checkout/checkin if we win
  std::string repl_addr;       ///< where followers replicate from if we win
  std::vector<PeerAddr> peers;
  int connect_timeout_ms = 500;
  int io_deadline_ms = 1000;
  ReplKey key;
  obs::TraceSink* trace = nullptr;
};

struct ElectionResult {
  bool won = false;
  std::size_t grants = 0;      ///< granted votes, candidate's own included
  std::size_t electorate = 0;  ///< peers + self
  /// Highest epoch observed in any refusal above the proposed one
  /// (0 = none). The losing candidate adopts it before retrying so its
  /// next proposal is not dead on arrival.
  std::uint64_t higher_epoch_seen = 0;
};

/// Campaign for `opts.epoch`: one vote request per peer, sequentially
/// (elections are rare and peers few; jittered timeouts do the
/// de-synchronizing). Unreachable peers simply do not vote.
ElectionResult run_election(const ElectionOptions& opts);

/// Serves vote requests on a dedicated listener port (every follower
/// runs one). Each connection carries exactly one sealed kReplVote
/// request; the handler decides the grant — and must make any epoch
/// promise durable before returning granted=true. Unauthenticated or
/// malformed frames are dropped (repl_auth_failed), never granted and
/// never fenced on.
class VoteListener {
 public:
  using Handler =
      std::function<net::ReplVoteMessage(const net::ReplVoteMessage&)>;

  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral; see port()
    int io_deadline_ms = 2000;
    ReplKey key;
    obs::MetricsRegistry* metrics = nullptr;  ///< null = default_registry()
    obs::TraceSink* trace = nullptr;          ///< null disables
  };

  VoteListener(Options opts, Handler handler);
  ~VoteListener();

  VoteListener(const VoteListener&) = delete;
  VoteListener& operator=(const VoteListener&) = delete;

  /// Bind and spawn the accept thread. False when the port is taken.
  bool start();
  void shutdown();

  std::uint16_t port() const { return listener_.port(); }
  long long votes_served() const { return votes_served_.load(); }

 private:
  void accept_loop();

  Options opts_;
  Handler handler_;
  net::TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<long long> votes_served_{0};
  obs::Counter& auth_failed_;
};

}  // namespace crowdml::replica
