// TCP deployment of the Crowd-ML server and device clients.
//
// TcpCrowdServer accepts device connections on a listener thread and
// serves each connection on its own worker thread (frame in -> dispatch
// through ProtocolServer -> frame out), mirroring the prototype's
// Apache-fronted deployment. TcpDeviceSession is a device's persistent
// connection implementing DeviceClient's Exchange.
//
// Fault tolerance (Remark 1: devices ride a lossy public network and
// "retry later" when a leg is lost):
//   - the server enforces per-connection idle deadlines, caps concurrent
//     connections with a graceful refusal, and reaps finished worker
//     threads so long-lived deployments don't leak;
//   - ReconnectingDeviceSession wraps TcpDeviceSession with capped
//     exponential backoff + jitter, transparently re-establishing the
//     connection across drops. A checkout may be retried freely; a
//     checkin whose send already started is abandoned, never replayed —
//     the server may have applied it before the ack was lost, and a
//     replay would double-spend the minibatch's privacy budget.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.hpp"
#include "core/protocol.hpp"
#include "net/tcp.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "rng/engine.hpp"

namespace crowdml::core {

struct TcpServerConfig {
  /// Interface to listen on; "0.0.0.0" exposes the server beyond loopback.
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (see TcpCrowdServer::port())
  /// Concurrent-connection cap; further connections receive a
  /// "server at capacity" nack and are closed (counted as refused).
  std::size_t max_connections = 256;
  /// retry_after_ms hint appended to the capacity nack so a refused
  /// device backs off by what the server asked rather than guessing.
  int capacity_retry_after_ms = 250;
  /// Period of the background worker reaper. Without it, finished worker
  /// threads are only joined when the next connection arrives, so an idle
  /// listener holds dead-thread resources indefinitely. <= 0 disables.
  int reap_interval_ms = 1000;
  /// Per-connection receive deadline. A device silent for this long has
  /// its connection closed (counted as idle_closed); devices reconnect on
  /// their next cycle. kNoDeadline disables the reaper.
  int idle_timeout_ms = net::TcpConnection::kNoDeadline;
  /// Registry for the server's transport counters and dispatch-latency
  /// histogram (null = obs::default_registry()). Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// Sink for lifecycle trace events (accept, refusal, idle_close, plus
  /// the per-message events ProtocolServer emits: checkout, checkin,
  /// update_applied, staleness, rejections). Null disables tracing. Must
  /// outlive the server.
  obs::TraceSink* trace = nullptr;
  /// Secure-aggregation cohort manager (docs/PRIVACY.md); frame types
  /// 11-13 dispatch to it after authentication. Null disables. Must
  /// outlive the server.
  secagg::CohortManager* secagg = nullptr;
};

class TcpCrowdServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  /// Throws std::runtime_error if the bind fails.
  TcpCrowdServer(Server& server, net::AuthRegistry& auth, std::uint16_t port);

  /// Full configuration (bind address, connection cap, idle timeout).
  TcpCrowdServer(Server& server, net::AuthRegistry& auth,
                 TcpServerConfig config);
  ~TcpCrowdServer();

  TcpCrowdServer(const TcpCrowdServer&) = delete;
  TcpCrowdServer& operator=(const TcpCrowdServer&) = delete;

  std::uint16_t port() const { return port_; }
  const ProtocolServer& protocol() const { return protocol_; }

  /// Transport-health counters (accepted/refused/idle-closed/reaped).
  const NetCounters& net_counters() const { return counters_; }
  NetCountersSnapshot net_snapshot() const { return counters_.snapshot(); }

  /// Stop accepting, close the listener, and join all workers.
  void shutdown();

 private:
  struct Worker {
    std::thread thread;
    std::shared_ptr<net::TcpConnection> conn;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void reap_loop();
  void serve(const std::shared_ptr<net::TcpConnection>& conn);
  /// Join and drop workers whose serve loop has finished. Caller holds
  /// workers_mu_.
  void reap_finished_locked();

  TcpServerConfig config_;
  ProtocolServer protocol_;
  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::thread reaper_;
  std::mutex workers_mu_;
  std::vector<Worker> workers_;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;  ///< wakes the reaper on shutdown
  NetCounters counters_;
  /// Whole-dispatch latency (decode + auth + server update + encode).
  obs::Histogram& handle_seconds_;
};

/// A device's persistent TCP session; usable as DeviceClient::Exchange.
class TcpDeviceSession {
 public:
  /// Connects to the server; throws std::runtime_error on failure.
  /// The two-argument form keeps the legacy behavior: OS-default connect
  /// timeout, no I/O deadline.
  TcpDeviceSession(const std::string& host, std::uint16_t port);
  TcpDeviceSession(const std::string& host, std::uint16_t port,
                   int io_deadline_ms, int connect_timeout_ms);

  /// One request/response round trip, bounded by the I/O deadline when one
  /// was configured. nullopt on failure; the connection is closed so the
  /// caller can tell it needs to reconnect.
  std::optional<net::Bytes> exchange(const net::Bytes& request);

  DeviceClient::Exchange as_exchange();

  bool connected() const { return conn_.valid(); }
  net::NetError last_error() const { return conn_.last_error(); }
  void close() { conn_.close(); }

 private:
  net::TcpConnection conn_;
};

/// Backoff/retry policy for ReconnectingDeviceSession.
struct ReconnectPolicy {
  int connect_timeout_ms = 2000;
  int io_deadline_ms = 5000;
  /// Attempts per exchange() call (connects and replays combined).
  int max_attempts = 8;
  /// Backoff before attempt k is min(base << (k-1), max), jittered by
  /// a uniform factor in [1 - jitter, 1 + jitter].
  int backoff_base_ms = 10;
  int backoff_max_ms = 2000;
  double jitter = 0.5;
  /// "not leader" redirects followed within one exchange() before the
  /// nack is surfaced as-is (a loop of confused replicas must not trap
  /// the device). 0 disables following entirely.
  int max_redirect_hops = 4;
};

/// TcpDeviceSession wrapper that survives connection loss: it connects
/// lazily, re-establishes dropped connections with capped exponential
/// backoff + jitter, and replays failed requests — except checkins, which
/// are abandoned once their send has begun (see the header comment).
///
/// Failover: a "not leader; leader=<addr>" nack retargets the session at
/// the advertised leader and replays the request there — checkins
/// included, because the replica refuses them *before* application, so
/// the nacked frame was provably never applied (the one exception to
/// never-replay-a-checkin). If the redirect target cannot be reached the
/// session falls back to its home address (where a future leader's
/// redirect will point it again).
class ReconnectingDeviceSession {
 public:
  /// `counters`, when non-null, receives timeout/retry/reconnect events
  /// (shared across sessions; must outlive the session). `trace`, when
  /// non-null, receives the same events as structured JSONL lines tagged
  /// with `device_id` (use the enrolled id so traces join with the
  /// server's checkout/checkin events).
  ReconnectingDeviceSession(std::string host, std::uint16_t port,
                            ReconnectPolicy policy, rng::Engine eng,
                            NetCounters* counters = nullptr,
                            obs::TraceSink* trace = nullptr,
                            std::uint64_t device_id = 0);

  std::optional<net::Bytes> exchange(const net::Bytes& request);
  DeviceClient::Exchange as_exchange();

  long long reconnects() const { return reconnects_; }
  long long retries() const { return retries_; }
  long long timeouts() const { return timeouts_; }
  long long checkins_abandoned() const { return checkins_abandoned_; }
  /// Server retry_after hints honored (load-shed nacks; see
  /// net::parse_retry_after). A hinted checkout is retried after the
  /// hinted delay; a hinted checkin is still never replayed — the hint
  /// delays the *next* exchange instead.
  long long retry_after_honored() const { return retry_after_honored_; }
  /// Checkin frames handed to the socket at least once (each at most once
  /// — never replayed), for double-apply audits in chaos tests. A checkin
  /// replayed after a pre-application "not leader" nack counts again.
  long long checkin_frames_sent() const { return checkin_sends_; }
  /// Not-leader redirects followed to the advertised leader.
  long long redirects_followed() const { return redirects_followed_; }
  /// Pace-steering hints on *successful acks* honored as the delay
  /// before the next exchange (docs/SCALING.md, "Pace steering").
  /// Distinct from retry_after_honored: these are not failures — they
  /// consume no retry budget and trigger no backoff jitter. Params-frame
  /// hints are recorded in last_pace_hint_ms() but never slept on (the
  /// same cycle's checkin ack carries the binding hint).
  long long pace_hints_honored() const { return pace_hints_honored_; }
  /// Most recent pace hint seen on any success frame (ack or params);
  /// 0 until one arrives.
  int last_pace_hint_ms() const { return last_pace_hint_ms_; }
  /// Record that this device abandoned a secure-aggregation round for
  /// the classic LDP checkin (round aborted / no cohort). Called by the
  /// device driver, not exchange() — the fallback decision lives above
  /// the transport, but its count belongs with the session's transport
  /// health (crowdml_net_secagg_fallbacks_total).
  void note_secagg_fallback();
  long long secagg_fallbacks() const { return secagg_fallbacks_; }
  /// The address currently targeted (the home address until a redirect).
  const std::string& current_host() const { return host_; }
  std::uint16_t current_port() const { return port_; }

 private:
  bool try_connect();
  void backoff(int attempt);

  std::string host_;
  std::uint16_t port_;
  std::string home_host_;
  std::uint16_t home_port_;
  ReconnectPolicy policy_;
  rng::Engine eng_;
  NetCounters* counters_;
  obs::TraceSink* trace_;
  std::uint64_t device_id_;
  std::optional<TcpDeviceSession> session_;
  bool ever_connected_ = false;
  long long reconnects_ = 0;
  long long retries_ = 0;
  long long timeouts_ = 0;
  long long checkins_abandoned_ = 0;
  long long checkin_sends_ = 0;
  long long retry_after_honored_ = 0;
  long long redirects_followed_ = 0;
  long long pace_hints_honored_ = 0;
  long long secagg_fallbacks_ = 0;
  int last_pace_hint_ms_ = 0;
  /// Delay owed before the next exchange begins: a shed checkin's nack
  /// hint, or a pace-steering hint from a successful ack (the shed or
  /// acked request itself is not replayed).
  int deferred_backoff_ms_ = 0;
};

}  // namespace crowdml::core
