// Activity recognition end to end — the paper's Section V-B deployment,
// reproduced on the synthetic sensing substrate:
//
//   tri-axial accelerometer @ 20 Hz  ->  3.2 s windows  ->  64-bin FFT
//   ->  label-change-triggered samples  ->  7-device Crowd-ML  ->
//   a shared 3-class classifier, learned online with privacy.
#include <cstdio>
#include <memory>

#include "core/crowd_simulation.hpp"
#include "models/logistic_regression.hpp"
#include "sensing/feature_pipeline.hpp"

using namespace crowdml;

int main() {
  constexpr std::size_t kDevices = 7;  // as carried by the paper's students

  // Per-device sensing pipelines. Each device wanders through
  // Still / OnFoot / InVehicle with ~2-minute dwell times and emits a
  // labeled FFT feature whenever its activity changes.
  std::vector<std::shared_ptr<sensing::ActivityFeatureStream>> streams;
  rng::Engine root(20150411);
  for (std::size_t d = 0; d < kDevices; ++d) {
    sensing::ActivityFeatureStream::Options opt;
    opt.mean_dwell_seconds = 120.0;
    streams.push_back(
        std::make_shared<sensing::ActivityFeatureStream>(root.split(d), opt));
  }
  core::SampleSource source = [streams](std::size_t d) {
    return std::optional<models::Sample>(streams[d]->next());
  };

  // 3-class logistic regression on the 64-bin spectrum (Table I).
  models::MulticlassLogisticRegression model(3, 64, 0.0);

  core::CrowdSimConfig cfg;
  cfg.num_devices = kDevices;
  cfg.minibatch_size = 1;
  cfg.max_total_samples = 300;  // the paper's "first 300 samples"
  cfg.track_online_error = true;
  cfg.learning_rate_c = 100.0;
  cfg.projection_radius = 500.0;
  cfg.budget = privacy::PrivacyBudget::gradient_dominated(50.0);
  cfg.seed = 4;

  core::CrowdSimulation sim(model, cfg);
  const core::CrowdSimResult res = sim.run(source, {});

  std::printf("activity recognition, %zu devices, %lld samples\n", kDevices,
              res.samples_generated);
  std::printf("(every emitted sample marks an activity change; windows with"
              " unchanged labels are discarded, as in the paper)\n\n");
  std::printf("%10s %22s\n", "samples", "time-averaged error");
  const auto& pts = res.online_error.points();
  for (std::size_t mark = 25; mark <= pts.size(); mark += 25)
    std::printf("%10zu %22.4f\n", mark, pts[mark - 1].y);
  std::printf("\nfinal time-averaged error: %.4f (chance ~0.67)\n",
              res.online_error.final_value());
  std::printf("effective sampling reduction: device 0 computed %lld windows, "
              "emitted %lld samples\n",
              streams[0]->windows_seen(), streams[0]->samples_emitted());
  std::printf("per-sample privacy: eps = %.2f\n", res.per_sample_epsilon);
  return 0;
}
