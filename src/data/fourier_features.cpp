#include "data/fourier_features.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

#include "rng/distributions.hpp"

namespace crowdml::data {

void RandomFourierFeatures::fit(rng::Engine& eng, std::size_t input_dim,
                                std::size_t output_dim, double gamma) {
  assert(input_dim >= 1 && output_dim >= 1 && gamma > 0.0);
  // RBF spectral density: w ~ N(0, 2*gamma*I).
  const double sigma = std::sqrt(2.0 * gamma);
  frequencies_ = linalg::Matrix(output_dim, input_dim);
  for (std::size_t r = 0; r < output_dim; ++r)
    for (std::size_t c = 0; c < input_dim; ++c)
      frequencies_(r, c) = rng::normal(eng, 0.0, sigma);
  offsets_.resize(output_dim);
  for (double& b : offsets_)
    b = rng::uniform(eng, 0.0, 2.0 * std::numbers::pi);
}

linalg::Vector RandomFourierFeatures::transform(const linalg::Vector& x) const {
  assert(fitted() && x.size() == input_dim());
  linalg::Vector z = frequencies_.multiply(x);
  const double scale = std::sqrt(2.0 / static_cast<double>(output_dim()));
  for (std::size_t i = 0; i < z.size(); ++i)
    z[i] = scale * std::cos(z[i] + offsets_[i]);
  // Restore the privacy precondition ||z||_1 <= 1.
  const double n1 = linalg::norm1(z);
  if (n1 > 0.0) linalg::scal(1.0 / n1, z);
  return z;
}

void RandomFourierFeatures::transform(SampleSet& samples) const {
  for (Sample& s : samples) s.x = transform(s.x);
}

}  // namespace crowdml::data
