// Integration: the in-memory channel transport as a full Crowd-ML runtime
// (devices and server on threads, DuplexChannel frames instead of TCP) —
// the third deployment of the same transport-agnostic Device/Server code.
#include <gtest/gtest.h>

#include <thread>

#include "core/protocol.hpp"
#include "data/mixture.hpp"
#include "models/logistic_regression.hpp"
#include "net/channel.hpp"
#include "opt/schedule.hpp"

using namespace crowdml;

TEST(ChannelRuntime, CrowdLearnsOverDuplexChannels) {
  rng::Engine data_eng(88);
  data::MixtureSpec spec;
  spec.num_classes = 3;
  spec.raw_dim = 30;
  spec.latent_dim = 12;
  spec.pca_dim = 8;
  spec.separation = 3.5;
  spec.train_size = 900;
  spec.test_size = 300;
  const data::Dataset ds = data::generate_mixture(spec, data_eng);

  models::MulticlassLogisticRegression model(3, 8, 0.0);
  core::ServerConfig scfg;
  scfg.param_dim = model.param_dim();
  scfg.num_classes = 3;
  core::Server server(scfg,
                      std::make_unique<opt::SgdUpdater>(
                          std::make_unique<opt::SqrtDecaySchedule>(30.0), 500.0),
                      rng::Engine(1));
  net::AuthRegistry registry(rng::Engine(2));
  core::ProtocolServer protocol(server, registry);

  constexpr std::size_t kDevices = 4;
  rng::Engine shard_eng(3);
  const auto shards = data::shard_across_devices(ds.train, kDevices, shard_eng);

  // One duplex link per device; a server-side pump thread per link (the
  // same worker-per-connection shape as the TCP runtime).
  std::vector<net::DuplexChannel::Endpoint> device_ends;
  std::vector<std::thread> pumps;
  for (std::size_t d = 0; d < kDevices; ++d) {
    auto [server_end, device_end] = net::DuplexChannel::create();
    device_ends.push_back(device_end);
    pumps.emplace_back([end = server_end, &protocol]() mutable {
      while (auto frame = end.receive()) end.send(protocol.handle(*frame));
    });
  }

  std::vector<std::thread> device_threads;
  std::atomic<long long> cycles{0};
  for (std::size_t d = 0; d < kDevices; ++d) {
    device_threads.emplace_back([&, d] {
      core::DeviceConfig dc;
      dc.minibatch_size = 5;
      core::Device dev(dc, model, rng::Engine(100 + d));
      dev.set_credentials(registry.enroll());
      auto& link = device_ends[d];
      core::DeviceClient client(dev, [&link](const net::Bytes& req)
                                         -> std::optional<net::Bytes> {
        if (!link.send(req)) return std::nullopt;
        return link.receive();
      });
      for (int pass = 0; pass < 3; ++pass)
        for (const auto& s : shards[d])
          if (client.offer_sample(s)) ++cycles;
      link.close();  // device leaves; pump thread unblocks
    });
  }
  for (auto& t : device_threads) t.join();
  for (auto& t : pumps) t.join();

  EXPECT_GT(cycles.load(), 100);
  EXPECT_EQ(server.version(), static_cast<std::uint64_t>(cycles.load()));
  const double err = model.error_rate(server.parameters(), ds.test);
  EXPECT_LT(err, 0.15);
}
