// Reproduces Fig. 8 of the paper (see bench/figures.hpp for the driver).
#include "bench/figures.hpp"

int main() {
  return bench::privacy_figure(bench::DatasetKind::kCifarLike, "Figure 8");
}
