// Tests for learning-curve recording, aggregation, and emission.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/curves.hpp"

using namespace crowdml::metrics;

TEST(LearningCurve, RecordAndQuery) {
  LearningCurve c;
  EXPECT_TRUE(c.empty());
  c.record(0, 1.0);
  c.record(100, 0.5);
  c.record(200, 0.25);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.final_value(), 0.25);
}

TEST(LearningCurve, TailMean) {
  LearningCurve c;
  c.record(0, 1.0);
  c.record(1, 0.4);
  c.record(2, 0.2);
  EXPECT_DOUBLE_EQ(c.tail_mean(2), 0.3);
  EXPECT_DOUBLE_EQ(c.tail_mean(10), (1.0 + 0.4 + 0.2) / 3.0);  // clamped
}

TEST(CurveAggregator, MeanOfTrials) {
  CurveAggregator agg;
  LearningCurve a, b;
  a.record(0, 1.0);
  a.record(10, 0.2);
  b.record(0, 0.8);
  b.record(10, 0.4);
  agg.add_trial(a);
  agg.add_trial(b);
  EXPECT_EQ(agg.trials(), 2u);
  const LearningCurve m = agg.mean();
  EXPECT_DOUBLE_EQ(m.points()[0].y, 0.9);
  EXPECT_DOUBLE_EQ(m.points()[1].y, 0.3);
  EXPECT_DOUBLE_EQ(m.points()[1].x, 10.0);
}

TEST(CurveAggregator, StdDev) {
  CurveAggregator agg;
  LearningCurve a, b;
  a.record(0, 1.0);
  b.record(0, 3.0);
  agg.add_trial(a);
  agg.add_trial(b);
  EXPECT_NEAR(agg.stddev().points()[0].y, 1.0, 1e-12);
}

TEST(CurveAggregator, SingleTrialZeroStd) {
  CurveAggregator agg;
  LearningCurve a;
  a.record(0, 0.5);
  agg.add_trial(a);
  EXPECT_NEAR(agg.stddev().points()[0].y, 0.0, 1e-12);
}

TEST(TimeAveragedError, MatchesDefinition) {
  TimeAveragedError e;
  e.observe(true);
  EXPECT_DOUBLE_EQ(e.value(), 1.0);
  e.observe(false);
  EXPECT_DOUBLE_EQ(e.value(), 0.5);
  e.observe(false);
  e.observe(false);
  EXPECT_DOUBLE_EQ(e.value(), 0.25);
  EXPECT_EQ(e.count(), 4);
  // Curve recorded one point per observation.
  EXPECT_EQ(e.curve().size(), 4u);
  EXPECT_DOUBLE_EQ(e.curve().points()[3].x, 4.0);
}

TEST(TimeAveragedError, EmptyIsZero) {
  TimeAveragedError e;
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(WriteCurvesCsv, Format) {
  LearningCurve a, b;
  a.record(0, 0.9);
  a.record(5, 0.1);
  b.record(0, 0.8);
  b.record(5, 0.2);
  std::stringstream ss;
  write_curves_csv(ss, {"crowd", "central"}, {a, b});
  EXPECT_EQ(ss.str(), "x,crowd,central\n0,0.9,0.8\n5,0.1,0.2\n");
}

TEST(PrintCurveTable, ContainsHeaderAndValues) {
  LearningCurve a;
  for (int i = 0; i <= 100; ++i) a.record(i, 1.0 / (i + 1));
  std::stringstream ss;
  print_curve_table(ss, "iter", {"err"}, {a}, 10);
  const std::string out = ss.str();
  EXPECT_NE(out.find("iter"), std::string::npos);
  EXPECT_NE(out.find("err"), std::string::npos);
  EXPECT_NE(out.find("1.0000"), std::string::npos);
  // Last row always present.
  EXPECT_NE(out.find("100"), std::string::npos);
}
