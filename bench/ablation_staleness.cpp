// Ablation: quantitative validation of the Section IV-B3 latency analysis.
//
// The paper states that between a device's checkout and the server's
// receipt of its checkin, the server applies roughly
// (tau_co + tau_ci) * M * Fs / b other updates. With each delay leg
// uniform on [0, tau], E[tau_co + tau_ci] = tau, so the predicted mean
// staleness is tau * M * Fs / b. This bench measures the actual staleness
// inside the discrete-event simulator and compares.
#include "bench/common.hpp"

using namespace bench;

int main() {
  const Options opt = options();
  header("Ablation: parameter staleness vs delay (Section IV-B3)",
         "measured vs predicted staleness, MNIST-like", opt);

  const data::Dataset ds = [&] {
    rng::Engine eng(42);
    return data::make_mnist_like(eng, opt.scale);
  }();
  models::MulticlassLogisticRegression model(ds.num_classes, ds.feature_dim, 0.0);
  const auto max_samples = static_cast<long long>(2 * ds.train.size());

  std::printf("%8s %6s %18s %18s %14s %12s\n", "delta", "b", "measured mean",
              "predicted mean", "max", "final err");

  bool all_close = true;
  for (std::size_t b : {std::size_t{1}, std::size_t{20}}) {
    for (long long d : {10LL, 100LL, 1000LL}) {
      core::CrowdSimConfig cfg = crowd_base(max_samples, 1);
      cfg.minibatch_size = b;
      // Poisson sampling desynchronizes minibatch fills across the crowd;
      // with deterministic intervals every device checks in inside the
      // same 1/Fs window and the conditional checkin rate is M*Fs, not
      // M*Fs/b (a burstiness effect the paper's smooth-rate analysis
      // ignores — run with poisson_sampling=false to see it).
      cfg.poisson_sampling = true;
      const double tau = static_cast<double>(d) /
                         (static_cast<double>(kNumDevices) * cfg.sampling_rate_hz);
      cfg.delay = std::make_shared<sim::UniformDelay>(tau);
      cfg.eval_points = 4;

      rng::Engine shard_eng(5);
      auto shards = data::shard_across_devices(ds.train, cfg.num_devices, shard_eng);
      core::CrowdSimulation sim(model, cfg);
      const auto res =
          sim.run(core::make_cycling_source(std::move(shards)), ds.test);

      // Predicted: tau * M * Fs / b (expected two-leg delay = tau).
      const double predicted =
          tau * static_cast<double>(kNumDevices) * cfg.sampling_rate_hz /
          static_cast<double>(b);
      std::printf("%8lld %6zu %18.2f %18.2f %14llu %12.4f\n", d, b,
                  res.mean_staleness, predicted,
                  static_cast<unsigned long long>(res.max_staleness),
                  res.final_test_error);
      // Within a factor-of-2.5 band. Below-prediction deviations at large
      // tau are the one-outstanding-checkout throttle: a device stalls
      // while its round trip is in flight, lowering the concurrent update
      // rate below M*Fs/b.
      if (predicted >= 1.0 &&
          (res.mean_staleness < predicted / 2.5 ||
           res.mean_staleness > predicted * 2.0))
        all_close = false;
    }
  }
  check(all_close,
        "measured staleness tracks (tau_co + tau_ci) * M * Fs / b (2-2.5x band)");
  return 0;
}
