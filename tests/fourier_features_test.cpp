// Tests for the random Fourier feature map (kernelized Crowd-ML).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/central_batch.hpp"
#include "data/fourier_features.hpp"
#include "models/logistic_regression.hpp"
#include "rng/distributions.hpp"

using namespace crowdml;

TEST(FourierFeatures, Dimensions) {
  rng::Engine eng(1);
  data::RandomFourierFeatures rff;
  EXPECT_FALSE(rff.fitted());
  rff.fit(eng, 4, 32, 1.0);
  EXPECT_TRUE(rff.fitted());
  EXPECT_EQ(rff.input_dim(), 4u);
  EXPECT_EQ(rff.output_dim(), 32u);
  EXPECT_EQ(rff.transform(linalg::Vector{0.1, 0.2, 0.3, 0.4}).size(), 32u);
}

TEST(FourierFeatures, OutputL1Bounded) {
  rng::Engine eng(2);
  data::RandomFourierFeatures rff;
  rff.fit(eng, 3, 64, 2.0);
  for (int i = 0; i < 50; ++i) {
    linalg::Vector x(3);
    for (double& v : x) v = rng::normal(eng);
    EXPECT_LE(linalg::norm1(rff.transform(x)), 1.0 + 1e-9);
  }
}

TEST(FourierFeatures, DeterministicGivenEngineState) {
  rng::Engine a(3), b(3);
  data::RandomFourierFeatures ra, rb;
  ra.fit(a, 2, 16, 1.0);
  rb.fit(b, 2, 16, 1.0);
  const linalg::Vector x{0.5, -0.25};
  EXPECT_EQ(ra.transform(x), rb.transform(x));
}

TEST(FourierFeatures, TransformSampleSetInPlace) {
  rng::Engine eng(4);
  data::RandomFourierFeatures rff;
  rff.fit(eng, 2, 8, 1.0);
  models::SampleSet set{models::Sample({0.1, 0.2}, 1.0)};
  rff.transform(set);
  EXPECT_EQ(set[0].x.size(), 8u);
  EXPECT_EQ(set[0].y, 1.0);  // labels untouched
}

TEST(FourierFeatures, MakesCircularDataLinearlySeparable) {
  // Circle-inside-ring: linearly inseparable in R^2; the RFF map makes a
  // linear classifier work — the "wide range of algorithms" claim.
  rng::Engine eng(5);
  models::SampleSet raw;
  for (int i = 0; i < 1200; ++i) {
    const double angle = rng::uniform(eng, 0.0, 6.2831853);
    const bool ring = i % 2 == 0;
    const double radius = ring ? rng::uniform(eng, 1.6, 2.2)
                               : rng::uniform(eng, 0.0, 0.9);
    raw.emplace_back(
        linalg::Vector{radius * std::cos(angle), radius * std::sin(angle)},
        ring ? 1.0 : 0.0);
  }
  models::SampleSet train(raw.begin(), raw.begin() + 900);
  models::SampleSet test(raw.begin() + 900, raw.end());

  baselines::BatchTrainerConfig cfg;
  cfg.iterations = 300;
  cfg.learning_rate = 30.0;
  cfg.projection_radius = 500.0;

  models::MulticlassLogisticRegression linear(2, 2, 0.0);
  const double linear_err =
      baselines::train_central_batch(linear, train, test, cfg).final_test_error;
  EXPECT_GT(linear_err, 0.3);  // hopeless in raw coordinates

  data::RandomFourierFeatures rff;
  rff.fit(eng, 2, 200, 1.0);
  rff.transform(train);
  rff.transform(test);
  models::MulticlassLogisticRegression kernelized(2, 200, 0.0);
  cfg.learning_rate = 200.0;
  const double rff_err =
      baselines::train_central_batch(kernelized, train, test, cfg)
          .final_test_error;
  EXPECT_LT(rff_err, 0.1);
}
