// Reproduces Fig. 5 of the paper (see bench/figures.hpp for the driver).
#include "bench/figures.hpp"

int main() {
  return bench::privacy_figure(bench::DatasetKind::kMnistLike, "Figure 5");
}
