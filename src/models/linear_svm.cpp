#include "models/linear_svm.hpp"

#include <cassert>
#include <limits>

namespace crowdml::models {

MulticlassSvm::MulticlassSvm(std::size_t classes, std::size_t dim, double lambda)
    : Model(lambda), classes_(classes), dim_(dim) {
  assert(classes >= 2 && dim >= 1 && lambda >= 0.0);
}

linalg::Vector MulticlassSvm::scores(const linalg::Vector& w,
                                     const linalg::Vector& x) const {
  assert(w.size() == param_dim() && x.size() == dim_);
  linalg::Vector s(classes_, 0.0);
  for (std::size_t k = 0; k < classes_; ++k) {
    const double* wk = w.data() + k * dim_;
    double acc = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) acc += wk[d] * x[d];
    s[k] = acc;
  }
  return s;
}

double MulticlassSvm::predict(const linalg::Vector& w, const linalg::Vector& x) const {
  return static_cast<double>(linalg::argmax(scores(w, x)));
}

double MulticlassSvm::loss(const linalg::Vector& w, const Sample& s) const {
  const auto y = static_cast<std::size_t>(s.label());
  assert(y < classes_);
  const linalg::Vector sc = scores(w, s.x);
  double best_other = -std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < classes_; ++k)
    if (k != y) best_other = std::max(best_other, sc[k]);
  return std::max(0.0, 1.0 + best_other - sc[y]);
}

void MulticlassSvm::add_loss_gradient(const linalg::Vector& w, const Sample& s,
                                      linalg::Vector& g) const {
  assert(g.size() == param_dim());
  const auto y = static_cast<std::size_t>(s.label());
  const linalg::Vector sc = scores(w, s.x);
  std::size_t violator = classes_;
  double best_other = -std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < classes_; ++k) {
    if (k == y) continue;
    if (sc[k] > best_other) {
      best_other = sc[k];
      violator = k;
    }
  }
  if (1.0 + best_other - sc[y] <= 0.0) return;  // zero subgradient region
  double* gv = g.data() + violator * dim_;
  double* gy = g.data() + y * dim_;
  for (std::size_t d = 0; d < dim_; ++d) {
    gv[d] += s.x[d];
    gy[d] -= s.x[d];
  }
}

}  // namespace crowdml::models
