#include "secagg/client.hpp"

#include <utility>

namespace crowdml::secagg {

const char* round_outcome_name(RoundOutcome o) {
  switch (o) {
    case RoundOutcome::kApplied: return "applied";
    case RoundOutcome::kAborted: return "aborted";
    case RoundOutcome::kNoCohort: return "no_cohort";
    case RoundOutcome::kFailed: return "failed";
  }
  return "unknown";
}

RoundClient::RoundClient(RoundClientConfig config, net::DeviceCredentials creds,
                         Exchange exchange)
    : config_(std::move(config)),
      creds_(std::move(creds)),
      exchange_(std::move(exchange)) {}

std::optional<net::SecAggAssignMessage> RoundClient::poll_assign(
    RoundResult& result) {
  net::SecAggAssignMessage req;
  req.request = true;
  req.device_id = creds_.device_id;
  req.device_class = config_.device_class;
  req.auth_tag = creds_.sign(req.body());
  const net::Bytes frame =
      net::encode_frame(net::MessageType::kSecAggAssign, req.serialize());

  for (std::size_t poll = 0; poll < config_.max_polls; ++poll) {
    const auto reply = exchange_(frame);
    if (!reply) {
      result.error = "assign exchange failed";
      return std::nullopt;
    }
    net::SecAggAssignMessage resp;
    try {
      const net::Frame f = net::decode_frame(*reply);
      if (f.type != net::MessageType::kSecAggAssign) {
        result.error = "unexpected assign response type";
        return std::nullopt;
      }
      resp = net::SecAggAssignMessage::deserialize(f.payload);
    } catch (const net::CodecError& e) {
      result.error = std::string("malformed assign response: ") + e.what();
      return std::nullopt;
    }
    switch (resp.status) {
      case net::kSecAggAssignAssigned:
        return resp;
      case net::kSecAggAssignFallback:
        result.outcome = RoundOutcome::kNoCohort;
        return std::nullopt;
      default:  // pending — honor the server's retry hint
        if (config_.sleep_ms) config_.sleep_ms(resp.retry_after_ms);
        break;
    }
  }
  result.error = "assign poll budget exhausted";
  return std::nullopt;
}

net::SecAggMaskedMessage RoundClient::build_masked(
    const MaskedContribution& c, const net::SecAggAssignMessage& assign) {
  // Words layout must match CohortManager::complete_locked: [g | ne | ny].
  std::vector<std::uint64_t> words;
  words.reserve(c.g.size() + 1 + c.ny.size());
  words.insert(words.end(), c.g.begin(), c.g.end());
  words.push_back(c.ne);
  words.insert(words.end(), c.ny.begin(), c.ny.end());
  mask_against_roster(words, config_.fleet_key, creds_.device_id,
                      assign.roster, assign.round_id);

  net::SecAggMaskedMessage msg;
  msg.device_id = creds_.device_id;
  msg.round_id = assign.round_id;
  msg.param_version = c.param_version;
  msg.ns = c.ns;
  msg.masked_g.assign(words.begin(),
                      words.begin() + static_cast<std::ptrdiff_t>(c.g.size()));
  msg.masked_ne = words[c.g.size()];
  msg.masked_ny.assign(words.begin() +
                           static_cast<std::ptrdiff_t>(c.g.size() + 1),
                       words.end());
  msg.auth_tag = creds_.sign(msg.body());
  return msg;
}

std::optional<net::SecAggRevealMessage> RoundClient::exchange_reveal(
    const net::SecAggRevealMessage& req) {
  const auto reply = exchange_(
      net::encode_frame(net::MessageType::kSecAggReveal, req.serialize()));
  if (!reply) return std::nullopt;
  try {
    const net::Frame f = net::decode_frame(*reply);
    if (f.type != net::MessageType::kSecAggReveal) return std::nullopt;
    return net::SecAggRevealMessage::deserialize(f.payload);
  } catch (const net::CodecError&) {
    return std::nullopt;
  }
}

RoundResult RoundClient::run(const MaskedContribution& contribution) {
  RoundResult result;

  const auto assign = poll_assign(result);
  if (!assign) return result;  // outcome/error already set
  result.round_id = assign->round_id;

  // Submit the masked blob. An ok ack means "accepted into the round".
  const net::SecAggMaskedMessage masked = build_masked(contribution, *assign);
  const auto ack_reply = exchange_(
      net::encode_frame(net::MessageType::kSecAggMasked, masked.serialize()));
  if (!ack_reply) {
    result.error = "masked exchange failed";
    return result;
  }
  try {
    const net::Frame f = net::decode_frame(*ack_reply);
    if (f.type != net::MessageType::kAck) {
      result.error = "unexpected masked response type";
      return result;
    }
    const net::AckMessage ack = net::AckMessage::deserialize(f.payload);
    if (!ack.ok) {
      result.error = "masked checkin refused: " + ack.reason;
      return result;
    }
  } catch (const net::CodecError& e) {
    result.error = std::string("malformed masked response: ") + e.what();
    return result;
  }

  // Poll the round status until it resolves, revealing seeds if asked.
  for (std::size_t poll = 0; poll < config_.max_polls; ++poll) {
    net::SecAggRevealMessage req;
    req.request = true;
    req.device_id = creds_.device_id;
    req.round_id = assign->round_id;
    req.auth_tag = creds_.sign(req.body());
    const auto resp = exchange_reveal(req);
    if (!resp) {
      result.error = "reveal exchange failed";
      return result;
    }
    switch (resp->status) {
      case net::kSecAggRoundComplete:
        result.outcome = RoundOutcome::kApplied;
        return result;
      case net::kSecAggRoundAborted:
        result.outcome = RoundOutcome::kAborted;
        return result;
      case net::kSecAggRoundRecovering: {
        // Any fleet-key holder can derive any pairwise seed, so one
        // revealer suffices: submit every (survivor, dead) seed at once.
        net::SecAggRevealMessage reveal;
        reveal.request = true;
        reveal.device_id = creds_.device_id;
        reveal.round_id = assign->round_id;
        for (const std::uint64_t s : resp->survivors) {
          for (const std::uint64_t d : resp->dead) {
            net::SecAggSeedShare share;
            share.a = s;
            share.b = d;
            share.seed =
                pairwise_seed(config_.fleet_key, s, d, assign->round_id);
            reveal.seeds.push_back(share);
          }
        }
        reveal.auth_tag = creds_.sign(reveal.body());
        result.recovered = true;
        const auto after = exchange_reveal(reveal);
        if (!after) {
          result.error = "seed reveal exchange failed";
          return result;
        }
        if (after->status == net::kSecAggRoundComplete) {
          result.outcome = RoundOutcome::kApplied;
          return result;
        }
        if (after->status == net::kSecAggRoundAborted) {
          result.outcome = RoundOutcome::kAborted;
          return result;
        }
        break;  // still recovering/collecting — keep polling
      }
      default:  // collecting — wait for peers
        if (config_.sleep_ms) config_.sleep_ms(resp->retry_after_ms);
        break;
    }
  }
  result.error = "status poll budget exhausted";
  return result;
}

}  // namespace crowdml::secagg
