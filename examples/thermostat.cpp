// Crowd regression — the paper's smart-thermostat motivating application
// (Section I-A): a crowd of homes privately learns a shared setpoint
// predictor. Demonstrates the "predictor" half of Crowd-ML's
// classifier/predictor framing with the ridge regression model, including
// its residual-clipped DP sensitivity.
#include <cstdio>

#include "core/crowd_simulation.hpp"
#include "data/thermostat.hpp"
#include "models/ridge_regression.hpp"

using namespace crowdml;

int main() {
  // 1. The workload: contexts (time, weather, occupancy...) -> preferred
  //    setpoint offsets, across many homes.
  rng::Engine data_eng(21);
  data::ThermostatSpec spec;
  const data::Dataset ds = data::generate_thermostat(spec, data_eng);
  std::printf("thermostat dataset: %zu train / %zu test contexts, %zu dims\n",
              ds.train.size(), ds.test.size(), ds.feature_dim);

  // 2. Ridge regression with residual clipping at 1.0 — per-sample L1
  //    gradient sensitivity 2*bound, the regression analogue of Table I's
  //    4/b analysis.
  models::RidgeRegression model(data::kThermostatDim, /*lambda=*/1e-4,
                                /*residual_bound=*/1.0);

  // 3. 200 homes, minibatch 10, per-sample epsilon ~ 10 on the gradient.
  core::CrowdSimConfig cfg;
  cfg.num_devices = 200;
  cfg.minibatch_size = 10;
  cfg.budget = privacy::PrivacyBudget::gradient_dominated(10.0);
  cfg.delay = std::make_shared<sim::UniformDelay>(1.0);
  cfg.max_total_samples = static_cast<long long>(3 * ds.train.size());
  cfg.eval_points = 10;
  cfg.learning_rate_c = 3.0;
  cfg.projection_radius = 50.0;
  cfg.seed = 12;

  rng::Engine shard_eng(34);
  auto shards = data::shard_across_devices(ds.train, cfg.num_devices, shard_eng);
  core::CrowdSimulation sim(model, cfg);
  const auto res =
      sim.run(core::make_cycling_source(std::move(shards)), ds.test);

  // 4. Results — the curve is mean absolute error in normalized target
  //    units; 1 unit = 3 C of setpoint range.
  std::printf("\n%12s %16s %14s\n", "samples", "test MAE", "(deg C)");
  for (const auto& p : res.test_error.points())
    std::printf("%12.0f %16.4f %14.2f\n", p.x, p.y, 3.0 * p.y);
  std::printf("\nfinal MAE: %.4f normalized (= %.2f deg C)\n",
              res.final_test_error, 3.0 * res.final_test_error);
  std::printf("per-sample epsilon: %.2f\n", res.per_sample_epsilon);

  // 5. Inspect the learned policy on two contrasting contexts.
  auto context = [](double hour, double outdoor, double occupied) {
    linalg::Vector x(data::kThermostatDim);
    x[0] = std::sin(2.0 * 3.14159265358979 * hour / 24.0);
    x[1] = std::cos(2.0 * 3.14159265358979 * hour / 24.0);
    x[2] = outdoor;
    x[3] = occupied;
    x[4] = 0.5;
    x[5] = 0.0;
    x[6] = 1.0;
    linalg::l1_normalize(x);
    return x;
  };
  const double evening_home =
      model.predict(res.final_parameters, context(20.0, -0.5, 1.0));
  const double noon_empty =
      model.predict(res.final_parameters, context(12.0, 0.8, 0.0));
  std::printf("learned policy: cold evening at home -> %.1f C, "
              "hot noon, empty house -> %.1f C\n",
              data::thermostat_offset_to_celsius(evening_home),
              data::thermostat_offset_to_celsius(noon_empty));
  return res.final_test_error < 0.25 ? 0 : 1;
}
