#!/bin/sh
# Sharded-cluster smoke test, with real processes and SIGKILL:
#   (1) two shard leaders behind one --shard-map partition the device-id
#       space under one --wal-dir (wal/shard-000, wal/shard-001), devices
#       hash-route to their home shard via crowdml-device --shard-map;
#   (2) a device deliberately pointed at the WRONG shard rides the
#       "wrong shard" nack redirect to its home shard — no operator, no
#       lost checkin;
#   (3) the merge director (shard 0) completes at least one cross-shard
#       count-weighted merge round while both shards train;
#   (4) SIGKILL one shard leader mid-run and restart it with the same
#       flags: it recovers from its own WAL namespace at or past the last
#       reported iteration (--fsync always => no acked checkin lost), and
#       its devices ride out the outage via ReconnectingDeviceSession.
# Run by ctest with the build directory as argument.
set -eu
BUILD_DIR="$1"
WORK=$(mktemp -d)
PIDS=""
trap 'kill -9 $PIDS 2>/dev/null || true; rm -rf "$WORK"' EXIT
cd "$WORK"

"$BUILD_DIR/tools/crowdml-make-dataset" --kind mnist --scale 0.05 --shards 4 \
    --shard-prefix dev_ --seed 42

SERVER="$BUILD_DIR/tools/crowdml-server"
COMMON="--classes 10 --dim 50 --auth-seed 7 --enroll 4 --engine epoll \
        --fsync always --report-every 0.2 --max-iterations 100000"

# The shard map names both device ports before either server has bound,
# so they need fixed ports. Derive from the PID to avoid clashes.
SP0=$(( 22000 + ($$ % 20000) ))
SP1=$(( SP0 + 1 ))
MAP="127.0.0.1:$SP0,127.0.0.1:$SP1"

# Shared HMAC key sealing the cross-shard merge frames.
printf '6b1df3a0c4e55b27188f9ad02c637e41aa55bc0912fd8e7634cb10a9d2ef4873\n' \
    > key.hex

wait_line() {  # wait_line LOG SED_PATTERN TRIES -> prints first capture
  _out=""
  for _i in $(seq 1 "$3"); do
    _out=$(sed -n "$2" "$1" 2>/dev/null | head -1)
    [ -n "$_out" ] && break
    sleep 0.1
  done
  [ -n "$_out" ] || { echo "timed out waiting for $2 in $1" >&2; cat "$1" >&2; exit 1; }
  echo "$_out"
}

# --- (1) Two shard leaders under one --wal-dir. Only shard 0 runs the
# merge director; both seal Shard* frames with the shared key. The same
# --auth-seed enrolls the same device keys fleet-wide.
start_shard() {  # start_shard ID PORT EXTRA LOG
  # shellcheck disable=SC2086
  $SERVER --port "$2" $COMMON --keys-out "keys$1.csv" --wal-dir wal \
      --shard-map "$MAP" --shard-id "$1" --repl-key-file key.hex \
      $3 >> "$4" 2>&1 &
}
start_shard 0 "$SP0" "--shard-merge-ms 300" shard0.log
S0_PID=$!
PIDS="$PIDS $S0_PID"
start_shard 1 "$SP1" "" shard1.log
S1_PID=$!
PIDS="$PIDS $S1_PID"
wait_line shard0.log 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' 50 > /dev/null
wait_line shard1.log 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' 50 > /dev/null
grep -q "config: shard-id=0 shards=2" shard0.log || {
  echo "shard 0 missing shard config line"; cat shard0.log; exit 1; }
grep -q "shard merge director: 2 shard(s)" shard0.log || {
  echo "shard 0 did not start the merge director"; cat shard0.log; exit 1; }
cmp -s keys0.csv keys1.csv || { echo "shards enrolled different keys"; exit 1; }
[ -d wal/shard-000 ] && [ -d wal/shard-001 ] || {
  echo "per-shard WAL namespaces missing"; ls -R wal; exit 1; }

# --- Devices hash-route to their home shard via --shard-map.
run_device() {  # run_device DATA KEY PASSES LOG EXTRA
  # shellcheck disable=SC2086
  "$BUILD_DIR/tools/crowdml-device" --shard-map "$MAP" \
      --data "$1" --key "$2" --minibatch 10 --epsilon 50 --passes "$3" \
      --classes 10 --max-attempts 60 --backoff-max-ms 500 \
      --connect-timeout-ms 1000 $5 > "$4" 2>&1 &
}
KEY1=$(sed -n 1p keys0.csv); KEY2=$(sed -n 2p keys0.csv)
KEY3=$(sed -n 3p keys0.csv); KEY4=$(sed -n 4p keys0.csv)
run_device dev_0.csv "$KEY1" 2 dev1.log ""
DEV1=$!
run_device dev_1.csv "$KEY2" 2 dev2.log ""
DEV2=$!
run_device dev_2.csv "$KEY3" 2 dev3.log ""
DEV3=$!
run_device dev_3.csv "$KEY4" 2 dev4.log ""
DEV4=$!
for d in $DEV1 $DEV2 $DEV3 $DEV4; do
  wait $d || { echo "phase-1 device failed"; cat dev?.log; exit 1; }
done
ACKED=$(sed -n 's/.*passes, \([0-9]*\) checkins.*/\1/p' dev?.log |
    awk '{s+=$1} END {print s+0}')
[ "$ACKED" -ge 40 ] || { echo "too few acked checkins ($ACKED)"; exit 1; }
# The partition must be real: every device printed its home shard, and
# with the correct map nobody needed a redirect.
HOMES=$(sed -n 's/^shard-map: device [0-9]* homed to shard \([0-9]*\).*/\1/p' \
    dev?.log | sort -u | tr '\n' ' ')
echo "device homes: $HOMES"
[ "$(echo "$HOMES" | wc -w)" -ge 2 ] || {
  echo "all devices hashed to one shard — partition untested"; exit 1; }

# --- (2) Point device 1 at the shard that is NOT its home (no map): its
# checkin draws the "wrong shard" nack and the session follows the
# redirect to the home shard.
HOME1=$(sed -n 's/^shard-map: device [0-9]* homed to shard \([0-9]*\).*/\1/p' \
    dev1.log)
[ -n "$HOME1" ] || { echo "device 1 never printed its home shard"; cat dev1.log; exit 1; }
WRONG_PORT=$SP1
[ "$HOME1" = "1" ] && WRONG_PORT=$SP0
"$BUILD_DIR/tools/crowdml-device" --host 127.0.0.1 --port "$WRONG_PORT" \
    --data dev_0.csv --key "$KEY1" --minibatch 10 --epsilon 50 --passes 1 \
    --classes 10 --max-attempts 60 --backoff-max-ms 500 \
    --connect-timeout-ms 1000 > dev_wrong.log 2>&1 || {
  echo "mishomed device failed"; cat dev_wrong.log; exit 1; }
REDIR=$(sed -n 's/.* \([0-9]*\) redirects followed.*/\1/p' dev_wrong.log)
[ "${REDIR:-0}" -ge 1 ] || {
  echo "mishomed device was never redirected (followed ${REDIR:-0})"
  cat dev_wrong.log; exit 1; }

# Give the director a couple of 300ms cycles with both shards loaded.
sleep 1

# --- (4) SIGKILL device 1's home shard mid-run, restart it on the same
# port with the same flags. --fsync always: the recovered iteration must
# be at or past the last report — no acked checkin lost. 100 passes
# (~7500 checkins, several seconds at fsync-per-batch rates) so the kill
# 0.7s in is guaranteed to land while the device is still streaming.
if [ "$HOME1" = "0" ]; then
  KILL_PID=$S0_PID; KILL_PORT=$SP0; KILL_ID=0; KILL_LOG=shard0.log
  KILL_EXTRA="--shard-merge-ms 300"
else
  KILL_PID=$S1_PID; KILL_PORT=$SP1; KILL_ID=1; KILL_LOG=shard1.log
  KILL_EXTRA=""
fi
run_device dev_0.csv "$KEY1" 100 dev5.log ""
DEV5=$!
sleep 0.7
kill -9 $KILL_PID
wait $KILL_PID 2>/dev/null || true
PRE=$(sed -n 's/^iteration t: *\([0-9]*\).*/\1/p' "$KILL_LOG" | tail -1)
[ -n "$PRE" ] || PRE=0

start_shard "$KILL_ID" "$KILL_PORT" "$KILL_EXTRA" shard_restart.log
RESTART_PID=$!
PIDS="$PIDS $RESTART_PID"
RECOVERED=$(wait_line shard_restart.log \
    's/^recovered state: iteration \([0-9]*\).*/\1/p' 50)
[ "$RECOVERED" -ge "$PRE" ] || {
  echo "acked checkin lost: shard $KILL_ID recovered $RECOVERED < $PRE"
  cat shard_restart.log; exit 1; }

wait $DEV5 || { echo "phase-2 device failed"; cat dev5.log; exit 1; }
RECONNECTS=$(sed -n 's/^transport: \([0-9]*\) reconnects.*/\1/p' dev5.log)
[ "${RECONNECTS:-0}" -ge 1 ] || {
  echo "device never reconnected across the shard crash"; cat dev5.log; exit 1; }

# --- (3) Clean shutdown; the director must have completed >= 1 merge
# round (both shards were up and training through phase 1).
if [ "$KILL_ID" = "0" ]; then
  DIRECTOR_LOG=shard_restart.log
  kill -TERM $RESTART_PID 2>/dev/null || true
  wait $RESTART_PID 2>/dev/null || true
  kill -TERM $S1_PID 2>/dev/null || true
  wait $S1_PID 2>/dev/null || true
  # The restarted director may not have had two live merge rounds yet;
  # the pre-crash director's rounds count from the original log.
  ROUNDS=$(sed -n 's/^merge director: \([0-9]*\) round(s) completed.*/\1/p' \
      shard0.log shard_restart.log | awk '{s+=$1} END {print s+0}')
else
  DIRECTOR_LOG=shard0.log
  kill -TERM $S0_PID 2>/dev/null || true
  wait $S0_PID 2>/dev/null || true
  kill -TERM $RESTART_PID 2>/dev/null || true
  wait $RESTART_PID 2>/dev/null || true
  ROUNDS=$(sed -n 's/^merge director: \([0-9]*\) round(s) completed.*/\1/p' \
      shard0.log)
fi
[ "${ROUNDS:-0}" -ge 1 ] || {
  echo "merge director completed no rounds"; cat "$DIRECTOR_LOG"; exit 1; }

echo "shard-smoke OK ($ACKED acked across homes [$HOMES], $REDIR redirect(s)" \
     "followed, shard $KILL_ID recovered at $RECOVERED >= $PRE," \
     "$ROUNDS merge round(s))"
