// Write-ahead log of sanitized checkin records.
//
// The paper's prototype persists server state in MySQL so the crowd's
// accumulated progress survives restarts (Section V); this is the
// reproduction's equivalent, built for a parameter server: an append-only
// log whose records are the post-sanitization checkin payloads the server
// already held. Each record wraps a `net::codec`-encoded body in a
// CRC-framed envelope mirroring the wire frame layout, so WAL contents
// are exactly the eps-DP data of Eqs. 10-12 — persisting them adds no
// privacy surface (same argument as core/checkpoint.hpp).
//
// Layout of one record (all integers little-endian, via net::codec):
//
//   [magic "CRWL" 4B][seq u64][payload_len u32][payload][crc32]
//
// with the CRC-32 (IEEE) computed over seq + payload_len + payload.
// `seq` is the server iteration the record produced (strictly
// increasing), which is what lets recovery skip records a snapshot
// already covers.
//
// Segments: the log is a directory of `wal-<first_seq>.log` files; the
// active segment rotates once it exceeds `segment_max_bytes`. Sealed
// segments are immutable and can be deleted wholesale once a snapshot
// covers their last record (`truncate_through`).
//
// Durability is governed by FsyncPolicy:
//   kAlways — fsync after every append (acked => on disk);
//   kEveryN — fsync once per `fsync_every` appends (bounded loss window);
//   kNever  — never fsync; the OS flushes when it pleases (crash of the
//             process alone loses nothing, losing power may).
//
// Recovery (`open_and_replay`) scans segments in order and tolerates a
// *torn tail*: a bad frame in the final segment that extends to EOF —
// exactly what a crash mid-append leaves behind — truncates the file at
// the last good record and recovery completes cleanly. A bad record
// anywhere else (a sealed segment, or a frame in the final segment that
// a decodable record still follows) is real corruption and throws
// WalError; refusing to guess beats silently dropping applied updates.
// Appends uphold the same invariant from the other side: a failed write
// ftruncates its partial record away so a retry can never append valid
// records after junk, and if even that rollback fails the log refuses
// all further appends, leaving the junk at EOF where the torn-tail rule
// handles it.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/codec.hpp"
#include "obs/metrics.hpp"

namespace crowdml::store {

class WalError : public std::runtime_error {
 public:
  explicit WalError(const std::string& what) : std::runtime_error(what) {}
};

enum class FsyncPolicy { kAlways, kEveryN, kNever };

const char* fsync_policy_name(FsyncPolicy p);

/// Parse "always", "never", or "every-N" (N >= 1, e.g. "every-64").
/// On "every-N", `*every_n` receives N. Throws std::invalid_argument.
FsyncPolicy parse_fsync_policy(const std::string& spec, long long* every_n);

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryN;
  long long fsync_every = 64;  ///< for kEveryN
  std::size_t segment_max_bytes = 4u << 20;
  /// Registry for append/fsync latency histograms and record/byte/rotation
  /// counters (null = obs::default_registry()). Must outlive the log.
  obs::MetricsRegistry* metrics = nullptr;
};

struct WalRecord {
  std::uint64_t seq = 0;
  net::Bytes payload;
};

/// Encode one record (exposed for tests and fuzzing).
net::Bytes encode_wal_record(std::uint64_t seq, const net::Bytes& payload);

/// Decode the record starting at `buf[*offset]`, advancing `*offset` past
/// it on success. Throws WalError on truncation, bad magic, an absurd
/// length, or CRC mismatch; `*offset` is left unchanged so the caller
/// knows the exact byte where the log stopped being believable.
WalRecord decode_wal_record(const net::Bytes& buf, std::size_t* offset);

/// Stateless read of up to `max_records` records with seq > from_seq from
/// the segment files in `dir`, in seq order — the replication shipper's
/// view of the log (the disk IS the replication buffer; nothing is queued
/// in memory for slow followers). Safe to call while another thread
/// appends: a partial record at the tail (an append in progress, or a
/// torn tail recovery has not yet trimmed) ends the scan instead of
/// throwing. Sets `*gap` (may be null) when the oldest surviving record
/// already exceeds from_seq + 1 — compaction pruned history the caller
/// needs, so it must catch up from a snapshot instead.
std::vector<WalRecord> read_wal_records(const std::string& dir,
                                        std::uint64_t from_seq,
                                        std::size_t max_records,
                                        bool* gap = nullptr);

struct ReplayStats {
  std::uint64_t records_applied = 0;
  std::uint64_t records_skipped = 0;  ///< seq <= from_seq (snapshot covers)
  std::uint64_t last_seq = 0;         ///< 0 when the log is empty
  std::size_t segments_scanned = 0;
  bool torn_tail_truncated = false;
  std::size_t torn_bytes_dropped = 0;
};

/// The log itself. Thread-safe: appends, sync, and truncate_through may
/// race (the parameter server appends from connection workers while the
/// main thread compacts); open_and_replay must happen-before any append.
class WriteAheadLog {
 public:
  /// Creates `dir` if missing. No file is touched until open_and_replay
  /// (recovery) or the first append.
  WriteAheadLog(std::string dir, WalOptions options);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  using Apply = std::function<void(std::uint64_t seq, const net::Bytes& payload)>;

  /// Scan segments in seq order, call `apply` for every record with
  /// seq > from_seq, truncate a torn tail (final segment only), and leave
  /// the log positioned for appending. Must be called exactly once,
  /// before any append. Throws WalError on mid-log corruption.
  ReplayStats open_and_replay(std::uint64_t from_seq, const Apply& apply);

  /// Append one record and make it durable per the fsync policy before
  /// returning. `seq` must exceed every previously appended/replayed seq.
  /// Throws WalError on I/O failure or a non-monotonic seq.
  void append(std::uint64_t seq, const net::Bytes& payload);

  /// Group commit: append every record (in order, seqs strictly
  /// increasing), then fsync ONCE per the policy — under kAlways the
  /// whole batch costs a single fsync, which is what makes batched
  /// checkin application cheap (see engine::EpollCrowdServer). Throws
  /// WalError at the first failing record: earlier records are written
  /// (durable per policy), the failing one is rolled back, later ones are
  /// untouched — the caller can tell them apart via last_seq().
  void append_batch(const std::vector<WalRecord>& records);

  /// Force an fsync of the active segment (no-op when nothing is unsynced).
  void sync();

  /// Delete sealed segments whose records are all <= seq (the active
  /// segment is never deleted). Returns how many files were removed.
  std::size_t truncate_through(std::uint64_t seq);

  const std::string& dir() const { return dir_; }
  std::uint64_t last_seq() const;
  long long appended_records() const;
  long long fsyncs() const;
  long long rotations() const;
  std::size_t segment_count() const;  ///< sealed + active, on disk

 private:
  struct Segment {
    std::string path;
    std::uint64_t first_seq = 0;
    std::uint64_t last_seq = 0;
  };

  void open_segment_locked(std::uint64_t first_seq, bool append_to_existing);
  /// Write one record (rotating first if due) without any fsync; the
  /// caller applies the fsync policy afterwards (per record for append,
  /// once per batch for append_batch).
  void append_one_locked(std::uint64_t seq, const net::Bytes& payload);
  void policy_fsync_locked();
  void close_active_locked(bool fsync_it);
  void write_all_locked(const net::Bytes& bytes);
  void fsync_active_locked();
  void fsync_dir() const;  ///< make renames/creates in dir_ durable

  std::string dir_;
  WalOptions opts_;

  mutable std::mutex mu_;
  bool opened_ = false;
  bool broken_ = false;  ///< partial write left junk we could not roll back
  int fd_ = -1;  ///< active segment, -1 until first append needs it
  Segment active_;
  std::size_t active_bytes_ = 0;
  bool active_has_records_ = false;
  std::vector<Segment> sealed_;
  std::uint64_t last_seq_ = 0;
  long long unsynced_ = 0;
  long long appended_ = 0;
  long long fsyncs_ = 0;
  long long rotations_ = 0;

  obs::Histogram& append_seconds_;
  obs::Histogram& fsync_seconds_;
  obs::Counter& records_total_;
  obs::Counter& bytes_total_;
  obs::Counter& rotations_total_;
  obs::Counter& torn_truncations_total_;
};

}  // namespace crowdml::store
